// Fault-perturbation stress: hammer every workload with aggressive
// multi-structure corruption mid-run. Whatever the fault does, the
// simulator must terminate in one of the four defined outcomes — never
// crash, assert, or hang past the watchdog.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fi/injectors.h"
#include "src/workloads/workload.h"

namespace gras {
namespace {

/// Chaos hook: flips a bit somewhere every `period` cycles, across all
/// structures, live or dead — far beyond the single-fault model.
class ChaosInjector final : public sim::FaultHook {
 public:
  ChaosInjector(Rng rng, std::uint64_t period) : rng_(rng), period_(period) {}

  void on_cycle(sim::Gpu& gpu, std::uint64_t cycle) override {
    if (cycle < next_) return;
    next_ = cycle + period_;
    switch (rng_.below(5)) {
      case 0: {
        sim::RegFile& rf = gpu.sm(rng_.below(gpu.num_sms())).regfile();
        rf.flip_bit(rng_.below(rf.bit_count()));
        break;
      }
      case 1: {
        sim::SharedMem& smem = gpu.sm(rng_.below(gpu.num_sms())).shared_mem();
        smem.flip_bit(rng_.below(smem.bit_count()));
        break;
      }
      case 2: {
        sim::Cache& l1 = gpu.sm(rng_.below(gpu.num_sms())).l1d();
        l1.flip_data_bit(rng_.below(l1.data_bit_count()));
        break;
      }
      case 3:
        gpu.l2().flip_data_bit(rng_.below(gpu.l2().data_bit_count()));
        break;
      case 4:
        gpu.l2().flip_tag_bit(rng_.below(gpu.l2().line_count()),
                              static_cast<unsigned>(rng_.below(24)));
        break;
    }
  }
  std::uint64_t next_trigger() const override { return next_; }

 private:
  Rng rng_;
  std::uint64_t period_;
  std::uint64_t next_ = 0;
};

class FaultStress : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultStress, ChaosAlwaysTerminatesInADefinedOutcome) {
  const auto app = workloads::make_benchmark(GetParam());
  const sim::GpuConfig config = sim::make_config("gv100-scaled");
  sim::Gpu golden_gpu(config);
  const auto golden = workloads::run_app(*app, golden_gpu);
  ASSERT_TRUE(golden.completed());

  for (int trial = 0; trial < 5; ++trial) {
    ChaosInjector chaos(Rng::for_sample(0xc4a05, trial), /*period=*/200);
    sim::Gpu gpu(config);
    // Tight watchdog keeps fault-induced livelocks cheap.
    std::vector<std::uint64_t> budgets;
    for (const auto& l : golden_gpu.launches()) budgets.push_back(l.cycles() * 10 + 2000);
    gpu.set_launch_budgets(budgets, golden_gpu.cycle() * 10 + 2000);
    gpu.set_fault_hook(&chaos);
    const auto out = workloads::run_app(*app, gpu);
    // Any of the four outcomes is legal; the process surviving is the test.
    SUCCEED() << GetParam() << " trial " << trial << " -> "
              << sim::trap_name(out.trap);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, FaultStress,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gras
