// Trap (DUE) detection: out-of-bounds / misaligned accesses, parameter
// violations, invalid control transfers and the watchdog.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

TEST(Traps, GlobalOutOfBounds) {
  KernelRunner runner(R"(
.kernel t
    MOV R0, 0x700000      // far past any allocation
    LDG R1, [R0]
    EXIT
)");
  const auto result = runner.launch({1, 1, 1}, {1, 1, 1}, {});
  EXPECT_EQ(result.trap, sim::TrapKind::OobGlobal);
}

TEST(Traps, NullishGlobalAccess) {
  KernelRunner runner(R"(
.kernel t
    MOV R0, 16            // inside the unmapped guard page
    LDG R1, [R0]
    EXIT
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {}).trap, sim::TrapKind::OobGlobal);
}

TEST(Traps, MisalignedGlobal) {
  KernelRunner runner(R"(
.kernel t
.param buf ptr
    MOV R0, c[buf]
    IADD R0, R0, 2
    LDG R1, [R0]
    EXIT
)");
  const auto buf = runner.alloc(std::vector<std::uint32_t>(16, 0));
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {buf}).trap,
            sim::TrapKind::MisalignedGlobal);
}

TEST(Traps, StoreOutOfBoundsAlsoTraps) {
  KernelRunner runner(R"(
.kernel t
    MOV R0, 0x700000
    STG [R0], 1
    EXIT
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {}).trap, sim::TrapKind::OobGlobal);
}

TEST(Traps, SharedOutOfBounds) {
  KernelRunner runner(R"(
.kernel t
.smem 256
    MOV R0, 0x100000      // way past the SM's shared memory
    LDS R1, [R0]
    EXIT
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {}).trap, sim::TrapKind::OobShared);
}

TEST(Traps, MisalignedShared) {
  KernelRunner runner(R"(
.kernel t
.smem 256
    MOV R0, 5
    STS [R0], 1
    EXIT
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {}).trap,
            sim::TrapKind::MisalignedShared);
}

TEST(Traps, SharedSpilloverIsSilent) {
  // Access past the CTA's own allocation but inside the SM's shared memory:
  // silent wrong-data behaviour, not a trap (matches real hardware).
  KernelRunner runner(R"(
.kernel t
.smem 256
.param out ptr
    MOV R0, 0x400         // 1 KiB: beyond our 256 B, inside the SM's smem
    LDS R1, [R0]
    MOV R2, c[out]
    STG [R2], R1
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(4, 0xffffffff));
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {out}).trap, sim::TrapKind::None);
}

TEST(Traps, ParamOutOfBounds) {
  KernelRunner runner(R"(
.kernel t
.param a u32
    MOV R0, c[0x40]       // reads past the supplied parameter block
    EXIT
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {5}).trap, sim::TrapKind::ParamOob);
}

TEST(Traps, RunningOffTheEndIsInvalidPc) {
  KernelRunner runner(R"(
.kernel t
    NOP
    NOP
)");
  EXPECT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {}).trap, sim::TrapKind::InvalidPc);
}

TEST(Traps, WatchdogCatchesInfiniteLoop) {
  KernelRunner runner(R"(
.kernel t
loop:
    BRA loop
)");
  runner.gpu().set_launch_budgets({5000});
  EXPECT_EQ(runner.launch({1, 1, 1}, {32, 1, 1}, {}).trap, sim::TrapKind::Watchdog);
}

TEST(Traps, WatchdogCatchesBarrierDeadlock) {
  // Half the warps skip the barrier into an infinite loop: the other half
  // can never be released (their loop keeps the CTA alive), watchdog fires.
  KernelRunner runner(R"(
.kernel t
    S2R R0, SR_TID.X
    ISETP.LT P0, R0, 32
    @P0 BRA wait
loop:
    BRA loop
wait:
    BAR
    BAR
    EXIT
)");
  runner.gpu().set_launch_budgets({5000});
  EXPECT_EQ(runner.launch({1, 1, 1}, {64, 1, 1}, {}).trap, sim::TrapKind::Watchdog);
}

TEST(Traps, LaunchAbortFreesResourcesForNextLaunch) {
  KernelRunner runner(R"(
.kernel t
.param mode u32
.param out ptr
    MOV R0, c[mode]
    ISETP.NE P0, R0, RZ
    MOV R1, 0x700000
    @P0 LDG R2, [R1]       // traps when mode != 0
    MOV R3, c[out]
    STG [R3], 42
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(1, 0));
  EXPECT_EQ(runner.launch({4, 1, 1}, {64, 1, 1}, {1, out}).trap,
            sim::TrapKind::OobGlobal);
  // The same GPU must accept and complete a follow-up launch.
  const auto second = runner.launch({4, 1, 1}, {64, 1, 1}, {0, out});
  EXPECT_EQ(second.trap, sim::TrapKind::None);
  EXPECT_EQ(runner.read(0)[0], 42u);
}

TEST(Traps, OversizedCtaIsALaunchError) {
  KernelRunner runner(R"(
.kernel t
    EXIT
)");
  // More warps than an SM supports -> host-level error, not a DUE.
  EXPECT_THROW(runner.launch({1, 1, 1}, {4096, 1, 1}, {}), std::invalid_argument);
}

TEST(Traps, OversizedSmemIsALaunchError) {
  sim::GpuConfig config = testing::test_config();
  KernelRunner runner(R"(
.kernel t
.smem 1048576
    EXIT
)", config);
  EXPECT_THROW(runner.launch({1, 1, 1}, {32, 1, 1}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace gras
