#include "src/sim/regfile.h"

#include <gtest/gtest.h>

namespace gras::sim {
namespace {

TEST(RegFile, AllocatesContiguousBlocks) {
  RegFile rf(256);
  const auto a = rf.allocate(64);
  const auto b = rf.allocate(64);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(rf.allocated_count(), 128u);
}

TEST(RegFile, FailsWhenFull) {
  RegFile rf(100);
  EXPECT_TRUE(rf.allocate(60).has_value());
  EXPECT_FALSE(rf.allocate(60).has_value());
  EXPECT_TRUE(rf.allocate(40).has_value());
}

TEST(RegFile, FreeEnablesReuse) {
  RegFile rf(100);
  const auto a = rf.allocate(100);
  ASSERT_TRUE(a);
  rf.free(*a, 100);
  EXPECT_EQ(rf.allocated_count(), 0u);
  EXPECT_TRUE(rf.allocate(100).has_value());
}

TEST(RegFile, FreedCellsKeepStaleData) {
  RegFile rf(64);
  const auto a = rf.allocate(8);
  rf.write(*a, 0xdead);
  rf.free(*a, 8);
  EXPECT_EQ(rf.read(*a), 0xdeadu);  // stale, dead data
  EXPECT_FALSE(rf.is_allocated(*a));
}

TEST(RegFile, FirstFitReusesGaps) {
  RegFile rf(64);
  const auto a = rf.allocate(16);
  const auto b = rf.allocate(16);
  ASSERT_TRUE(a && b);
  rf.free(*a, 16);
  const auto c = rf.allocate(8);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);  // fills the first gap
}

TEST(RegFile, AllocatedCellSelectsKth) {
  RegFile rf(256);
  const auto a = rf.allocate(4);   // cells 0..3
  (void)a;
  const auto b = rf.allocate(4);   // cells 4..7
  rf.free(*b, 4);
  const auto c = rf.allocate(8);   // cells 4..11 (first fit spans the gap? no:
  // first-fit finds 8 contiguous free cells starting at 4)
  ASSERT_TRUE(c);
  // Allocated: 0..3 and 4..11 -> k-th allocated cell is simply k here.
  for (std::uint32_t k = 0; k < rf.allocated_count(); ++k) {
    const std::uint32_t cell = rf.allocated_cell(k);
    EXPECT_TRUE(rf.is_allocated(cell));
    EXPECT_EQ(cell, k);
  }
}

TEST(RegFile, AllocatedCellSkipsHoles) {
  RegFile rf(256);
  const auto a = rf.allocate(4);
  const auto b = rf.allocate(4);
  const auto c = rf.allocate(4);
  (void)a; (void)c;
  rf.free(*b, 4);
  // Allocated cells: 0..3 and 8..11.
  EXPECT_EQ(rf.allocated_cell(0), 0u);
  EXPECT_EQ(rf.allocated_cell(3), 3u);
  EXPECT_EQ(rf.allocated_cell(4), 8u);
  EXPECT_EQ(rf.allocated_cell(7), 11u);
}

TEST(RegFile, FlipBitTargetsCellAndBit) {
  RegFile rf(16);
  rf.write(3, 0);
  rf.flip_bit(3 * 32 + 5);
  EXPECT_EQ(rf.read(3), 1u << 5);
  rf.flip_bit(3 * 32 + 5);
  EXPECT_EQ(rf.read(3), 0u);
}

TEST(RegFile, BitCount) {
  RegFile rf(1024);
  EXPECT_EQ(rf.bit_count(), 1024u * 32);
  rf.allocate(100);
  EXPECT_EQ(rf.allocated_bit_count(), 100u * 32);
}

TEST(SharedMem, AllocationIsGranular) {
  SharedMem sm(4096);
  const auto a = sm.allocate(100);   // rounds to 256
  ASSERT_TRUE(a);
  EXPECT_EQ(sm.allocated_bytes(), 256u);
  const auto b = sm.allocate(300);   // rounds to 512
  ASSERT_TRUE(b);
  EXPECT_EQ(sm.allocated_bytes(), 768u);
  sm.free(*a, 100);
  EXPECT_EQ(sm.allocated_bytes(), 512u);
}

TEST(SharedMem, ZeroByteAllocationStillReservesAGranule) {
  SharedMem sm(1024);
  const auto a = sm.allocate(0);
  ASSERT_TRUE(a);
  EXPECT_EQ(sm.allocated_bytes(), 256u);
}

TEST(SharedMem, FailsWhenFull) {
  SharedMem sm(1024);
  EXPECT_TRUE(sm.allocate(1024).has_value());
  EXPECT_FALSE(sm.allocate(1).has_value());
}

TEST(SharedMem, ReadWriteU32) {
  SharedMem sm(1024);
  sm.write_u32(100, 0xabcdef01);
  EXPECT_EQ(sm.read_u32(100), 0xabcdef01u);
  // Out-of-backing accesses are inert.
  sm.write_u32(2000, 1);
  EXPECT_EQ(sm.read_u32(2000), 0u);
}

TEST(SharedMem, FlipBit) {
  SharedMem sm(1024);
  sm.write_u32(0, 0);
  sm.flip_bit(7);
  EXPECT_EQ(sm.read_u32(0), 0x80u);
}

TEST(SharedMem, AllocatedByteEnumerates) {
  SharedMem sm(1024);
  const auto a = sm.allocate(256);
  (void)a;
  const auto b = sm.allocate(256);
  sm.free(*b, 256);
  const auto c = sm.allocate(512);
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, 256u);  // reuses the gap + next granule
  for (std::uint32_t k = 0; k < sm.allocated_bytes(); ++k) {
    EXPECT_TRUE(sm.is_allocated(sm.allocated_byte(k)));
  }
}


TEST(RegFile, FragmentedFreeSpaceIsNotContiguous) {
  RegFile rf(192);
  const auto a = rf.allocate(64);
  const auto b = rf.allocate(64);
  const auto c = rf.allocate(64);
  ASSERT_TRUE(a && b && c);
  rf.free(*a, 64);
  rf.free(*c, 64);
  // 128 cells free in total, but no contiguous 100-cell run.
  EXPECT_FALSE(rf.allocate(100).has_value());
  EXPECT_TRUE(rf.allocate(64).has_value());
}

TEST(RegFile, FastRejectWhenNearlyFull) {
  RegFile rf(16384);
  ASSERT_TRUE(rf.allocate(9000).has_value());
  // More than the remaining free cells: must fail (and does so in O(1)).
  EXPECT_FALSE(rf.allocate(9000).has_value());
  EXPECT_TRUE(rf.allocate(7000).has_value());
}

TEST(RegFile, WordBoundaryRunsAreFound) {
  RegFile rf(256);
  // Fill cells 0..62, leaving a run that starts mid-word and crosses words.
  ASSERT_TRUE(rf.allocate(63).has_value());
  const auto r = rf.allocate(100);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 63u);
}

}  // namespace
}  // namespace gras::sim
