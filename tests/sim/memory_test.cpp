#include "src/sim/memory.h"

#include <gtest/gtest.h>

#include "src/sim/config.h"

namespace gras::sim {
namespace {

TEST(GlobalMemory, AllocationsAreAlignedAndDisjoint) {
  GlobalMemory mem(1 << 20);
  const std::uint32_t a = mem.allocate(100);
  const std::uint32_t b = mem.allocate(100);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(a, GlobalMemory::kBase);
}

TEST(GlobalMemory, ThrowsWhenExhausted) {
  GlobalMemory mem(64 * 1024);
  EXPECT_THROW(mem.allocate(1 << 20), std::bad_alloc);
}

TEST(GlobalMemory, BoundsChecking) {
  GlobalMemory mem(1 << 20);
  const std::uint32_t a = mem.allocate(256);
  EXPECT_TRUE(mem.in_bounds(a, 4));
  EXPECT_TRUE(mem.in_bounds(a + 252, 4));
  EXPECT_FALSE(mem.in_bounds(a + 256, 4));   // past high-water mark
  EXPECT_FALSE(mem.in_bounds(0, 4));          // guard page
  EXPECT_FALSE(mem.in_bounds(100, 4));        // below kBase
  EXPECT_FALSE(mem.in_bounds(~0ull - 2, 4));  // overflow
}

TEST(GlobalMemory, ReadWriteRoundTrip) {
  GlobalMemory mem(1 << 20);
  const std::uint32_t a = mem.allocate(16);
  const std::uint8_t in[4] = {1, 2, 3, 4};
  mem.write(a, in);
  std::uint8_t out[4] = {};
  mem.read(a, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

TEST(GlobalMemory, OutOfBackingReadsZero) {
  GlobalMemory mem(4096 + 256);
  std::uint8_t out[8] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  mem.read(mem.size() + 100, out);
  for (std::uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(GlobalMemory, ResetClearsAllocatorAndData) {
  GlobalMemory mem(1 << 20);
  const std::uint32_t a = mem.allocate(16);
  const std::uint8_t in[4] = {9, 9, 9, 9};
  mem.write(a, in);
  mem.reset();
  EXPECT_EQ(mem.allocate(16), a);  // allocator rewound
  std::uint8_t out[4] = {1, 1, 1, 1};
  mem.read(a, out);
  EXPECT_EQ(out[0], 0);
}

TEST(Config, PresetsExist) {
  const GpuConfig scaled = make_config("gv100-scaled");
  EXPECT_EQ(scaled.name, "gv100-scaled");
  const GpuConfig full = make_config("gv100");
  EXPECT_EQ(full.name, "gv100");
  // The faithful preset has Volta-sized structures.
  EXPECT_EQ(full.regs_per_sm, 64u * 1024);         // 256 KiB RF per SM
  EXPECT_EQ(full.smem_bytes_per_sm, 96u * 1024);
  EXPECT_GT(full.rf_bits_total(), scaled.rf_bits_total());
}

TEST(Config, UnknownPresetThrows) {
  EXPECT_THROW(make_config("h100"), std::invalid_argument);
}

TEST(Config, DerivedBitCountsAreConsistent) {
  const GpuConfig c = make_config("gv100-scaled");
  EXPECT_EQ(c.rf_bits_total(), std::uint64_t{c.regs_per_sm} * 32 * c.num_sms);
  EXPECT_EQ(c.l1d_bits_total(), c.l1d.data_bits() * c.num_sms);
  EXPECT_EQ(c.l2_bits_total(), c.l2.data_bits());
  EXPECT_EQ(c.max_threads_per_sm(), c.max_warps_per_sm * c.warp_size);
}

}  // namespace
}  // namespace gras::sim
