// SIMT control-flow tests: predication, SSY/SYNC divergence, nesting,
// divergent loop exits, guarded EXIT and barrier semantics.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

TEST(Divergence, PredicatedExitSplitsWarp) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    ISETP.GE P0, R0, 16
    @P0 EXIT
    MOV R1, 7
    ISCADD R2, R0, c[out], 2
    STG [R2], R1
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], i < 16 ? 7u : 0u);
}

TEST(Divergence, IfElseBothPathsExecute) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    AND R1, R0, 1
    ISETP.EQ P0, R1, RZ
    SSY join
    @P0 BRA even
    MOV R2, 100       // odd path
    SYNC
even:
    MOV R2, 200       // even path
    SYNC
join:
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], (i % 2 == 0) ? 200u : 100u) << i;
  }
}

TEST(Divergence, UniformBranchNeedsNoSync) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    SSY join
    ISETP.GE P0, R0, RZ     // uniformly true
    @P0 BRA taken
    MOV R2, 1
    SYNC
taken:
    MOV R2, 2
    SYNC
join:
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  for (std::uint32_t v : runner.read(0)) EXPECT_EQ(v, 2u);
}

TEST(Divergence, NestedSsyRegions) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R2, 0
    AND R1, R0, 1
    ISETP.EQ P0, R1, RZ
    SSY join_outer
    @P0 BRA outer_even
    // odd half: nested split on bit 1
    AND R1, R0, 2
    ISETP.EQ P1, R1, RZ
    SSY join_inner
    @P1 BRA inner_a
    IADD R2, R2, 1        // odd, bit1 set
    SYNC
inner_a:
    IADD R2, R2, 10       // odd, bit1 clear
    SYNC
join_inner:
    IADD R2, R2, 100      // all odd threads
    SYNC
outer_even:
    IADD R2, R2, 1000     // even threads
    SYNC
join_outer:
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (i % 2 == 0) EXPECT_EQ(out[i], 1000u) << i;
    else if (i & 2) EXPECT_EQ(out[i], 101u) << i;
    else EXPECT_EQ(out[i], 110u) << i;
  }
}

TEST(Divergence, LoopWithPerThreadTripCounts) {
  // Thread i iterates i+1 times; SSY/SYNC reconverges everyone.
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R1, 0             // counter
    MOV R2, 0             // i
    SSY done
loop:
    IADD R1, R1, 1
    IADD R2, R2, 1
    ISETP.LE P0, R2, R0
    @P0 BRA loop
    SYNC
done:
    IADD R1, R1, 1000     // proves reconvergence
    ISCADD R3, R0, c[out], 2
    STG [R3], R1
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], i + 1 + 1000) << i;
}

TEST(Divergence, ExitInsideDivergentRegion) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    ISETP.LT P0, R0, 8
    SSY join
    @P0 BRA low
    // high threads write then exit inside the region
    MOV R2, 5
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
low:
    MOV R2, 9
    SYNC
join:
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], i < 8 ? 9u : 5u) << i;
}

TEST(Divergence, PartialWarpStartsWithCorrectMask) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    ISCADD R3, R0, c[out], 2
    STG [R3], 1
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  // 20 threads: lanes 20..31 never run.
  ASSERT_TRUE(runner.launch({1, 1, 1}, {20, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], i < 20 ? 1u : 0u);
}

TEST(Barrier, SynchronizesSharedMemoryAcrossWarps) {
  // Warp 0 writes, all warps barrier, warp 1 reads warp 0's values.
  KernelRunner runner(R"(
.kernel t
.smem 256
.param out ptr
    S2R R0, SR_TID.X
    ISETP.LT P0, R0, 32
    SHL R1, R0, 2
    IMAD R2, R0, 3, RZ
    @P0 STS [R1], R2           // warp 0 fills slots 0..31
    BAR
    ISETP.GE P1, R0, 32
    @!P1 EXIT
    IADD R3, R0, -32
    SHL R4, R3, 2
    LDS R5, [R4]
    ISCADD R6, R3, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {64, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * 3) << i;
}

TEST(Barrier, ReleasesWhenRemainingWarpExits) {
  // Warp 1 exits immediately; warp 0's barrier must still release.
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    ISETP.GE P0, R0, 32
    @P0 EXIT
    BAR
    ISCADD R1, R0, c[out], 2
    STG [R1], 1
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  const auto result = runner.launch({1, 1, 1}, {64, 1, 1}, {dout});
  ASSERT_TRUE(result.ok()) << sim::trap_name(result.trap);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(runner.read(0)[i], 1u);
}

TEST(Barrier, LoopedBarriersStayInLockstep) {
  KernelRunner runner(R"(
.kernel t
.smem 1024
.param out ptr
    S2R R0, SR_TID.X
    SHL R1, R0, 2
    STS [R1], R0
    MOV R2, 0
loop:
    BAR
    // read the neighbour's slot and add it
    IADD R3, R0, 1
    AND R3, R3, 63
    SHL R4, R3, 2
    LDS R5, [R4]
    BAR
    STS [R1], R5
    IADD R2, R2, 1
    ISETP.LT P0, R2, 64
    @P0 BRA loop
    LDS R6, [R1]
    ISCADD R7, R0, c[out], 2
    STG [R7], R6
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {64, 1, 1}, {dout}).ok());
  // After 64 rotations of a 64-slot ring, every thread holds its own id.
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i) << i;
}

}  // namespace
}  // namespace gras
