// Functional correctness of the ALU: every binary/ternary/unary opcode is
// executed on the simulator over a sweep of values (including sign, overflow
// and special-float cases) and compared with host-side reference semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/common/rng.h"
#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::bitsf;
using testing::fbits;
using testing::KernelRunner;

constexpr std::uint32_t kN = 64;

std::vector<std::uint32_t> test_values() {
  std::vector<std::uint32_t> v = {0u,          1u,          2u,        0xffffffffu,
                                  0x80000000u, 0x7fffffffu, 123456u,   0xdeadbeefu,
                                  31u,         32u,         0xffffu,   0x10000u};
  Rng rng(77);
  while (v.size() < kN) v.push_back(static_cast<std::uint32_t>(rng()));
  return v;
}

std::vector<std::uint32_t> float_values() {
  std::vector<std::uint32_t> v = {fbits(0.0f),  fbits(-0.0f), fbits(1.0f),
                                  fbits(-2.5f), fbits(1e20f), fbits(-1e-20f),
                                  fbits(3.14159f), fbits(255.0f)};
  Rng rng(78);
  while (v.size() < kN) {
    v.push_back(fbits(static_cast<float>(rng.uniform() * 200.0 - 100.0)));
  }
  return v;
}

struct BinOpCase {
  const char* mnemonic;
  bool float_inputs;
  std::function<std::uint32_t(std::uint32_t, std::uint32_t)> reference;
};

class BinaryOp : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinaryOp, MatchesHostSemantics) {
  const BinOpCase& tc = GetParam();
  std::string src = R"(
.kernel op_test
.param a ptr
.param b ptr
.param out ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R3, c[b], 2
    LDG R7, [R6]
    )";
  src += tc.mnemonic;
  src += R"( R8, R5, R7
    ISCADD R9, R3, c[out], 2
    STG [R9], R8
    EXIT
)";
  KernelRunner runner(src);
  const auto a = tc.float_inputs ? float_values() : test_values();
  auto b = tc.float_inputs ? float_values() : test_values();
  std::reverse(b.begin(), b.end());
  const std::uint32_t da = runner.alloc(a);
  const std::uint32_t db = runner.alloc(b);
  const std::uint32_t dout = runner.alloc(std::vector<std::uint32_t>(kN, 0));
  const auto result = runner.launch({kN / 32, 1, 1}, {32, 1, 1}, {da, db, dout, kN});
  ASSERT_TRUE(result.ok()) << sim::trap_name(result.trap);
  const auto out = runner.read(2);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], tc.reference(a[i], b[i])) << tc.mnemonic << " at " << i;
  }
}

std::uint32_t s(std::int32_t v) { return static_cast<std::uint32_t>(v); }
std::int32_t i32(std::uint32_t v) { return static_cast<std::int32_t>(v); }

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, BinaryOp,
    ::testing::Values(
        BinOpCase{"IADD", false, [](auto a, auto b) { return a + b; }},
        BinOpCase{"ISUB", false, [](auto a, auto b) { return a - b; }},
        BinOpCase{"IMUL", false,
                  [](auto a, auto b) {
                    return static_cast<std::uint32_t>(i32(a) * std::int64_t{i32(b)});
                  }},
        BinOpCase{"SHL", false, [](auto a, auto b) { return a << (b & 31); }},
        BinOpCase{"SHR", false, [](auto a, auto b) { return a >> (b & 31); }},
        BinOpCase{"ASR", false, [](auto a, auto b) { return s(i32(a) >> (b & 31)); }},
        BinOpCase{"AND", false, [](auto a, auto b) { return a & b; }},
        BinOpCase{"OR", false, [](auto a, auto b) { return a | b; }},
        BinOpCase{"XOR", false, [](auto a, auto b) { return a ^ b; }},
        BinOpCase{"IMIN", false, [](auto a, auto b) { return s(std::min(i32(a), i32(b))); }},
        BinOpCase{"IMAX", false, [](auto a, auto b) { return s(std::max(i32(a), i32(b))); }}),
    [](const auto& info) { return info.param.mnemonic; });

INSTANTIATE_TEST_SUITE_P(
    FloatOps, BinaryOp,
    ::testing::Values(
        BinOpCase{"FADD", true, [](auto a, auto b) { return fbits(bitsf(a) + bitsf(b)); }},
        BinOpCase{"FSUB", true, [](auto a, auto b) { return fbits(bitsf(a) - bitsf(b)); }},
        BinOpCase{"FMUL", true, [](auto a, auto b) { return fbits(bitsf(a) * bitsf(b)); }},
        BinOpCase{"FMIN", true,
                  [](auto a, auto b) { return fbits(std::fmin(bitsf(a), bitsf(b))); }},
        BinOpCase{"FMAX", true,
                  [](auto a, auto b) { return fbits(std::fmax(bitsf(a), bitsf(b))); }}),
    [](const auto& info) { return info.param.mnemonic; });

struct UnaryCase {
  const char* text;  // instruction text using R5 -> R8
  bool float_inputs;
  std::function<std::uint32_t(std::uint32_t)> reference;
  const char* label;
};

class UnaryOp : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryOp, MatchesHostSemantics) {
  const UnaryCase& tc = GetParam();
  std::string src = R"(
.kernel op_test
.param a ptr
.param out ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[a], 2
    LDG R5, [R4]
    )";
  src += tc.text;
  src += R"(
    ISCADD R9, R3, c[out], 2
    STG [R9], R8
    EXIT
)";
  KernelRunner runner(src);
  auto a = tc.float_inputs ? float_values() : test_values();
  if (tc.float_inputs) {
    // Positive-only values keep RCP/SQRT/LOG well-defined.
    for (auto& v : a) v = fbits(std::fabs(bitsf(v)) + 0.5f);
  }
  const std::uint32_t da = runner.alloc(a);
  const std::uint32_t dout = runner.alloc(std::vector<std::uint32_t>(kN, 0));
  const auto result = runner.launch({kN / 32, 1, 1}, {32, 1, 1}, {da, dout, kN});
  ASSERT_TRUE(result.ok()) << sim::trap_name(result.trap);
  const auto out = runner.read(1);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], tc.reference(a[i])) << tc.label << " at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Unaries, UnaryOp,
    ::testing::Values(
        UnaryCase{"MOV R8, R5", false, [](auto a) { return a; }, "MOV"},
        UnaryCase{"NOT R8, R5", false, [](auto a) { return ~a; }, "NOT"},
        UnaryCase{"I2F R8, R5", false, [](auto a) { return fbits(static_cast<float>(i32(a))); },
                  "I2F"},
        UnaryCase{"MUFU.RCP R8, R5", true,
                  [](auto a) { return fbits(1.0f / bitsf(a)); }, "RCP"},
        UnaryCase{"MUFU.SQRT R8, R5", true,
                  [](auto a) { return fbits(std::sqrt(bitsf(a))); }, "SQRT"},
        UnaryCase{"MUFU.EXP R8, R5", true,
                  [](auto a) { return fbits(std::exp(bitsf(a))); }, "EXP"},
        UnaryCase{"MUFU.LOG R8, R5", true,
                  [](auto a) { return fbits(std::log(bitsf(a))); }, "LOG"},
        UnaryCase{"MUFU.EX2 R8, R5", true,
                  [](auto a) { return fbits(std::exp2(bitsf(a))); }, "EX2"},
        UnaryCase{"MUFU.LG2 R8, R5", true,
                  [](auto a) { return fbits(std::log2(bitsf(a))); }, "LG2"}),
    [](const auto& info) { return info.param.label; });

TEST(TernaryOps, ImadMatchesHost) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
.param n u32
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    IMAD R8, R5, 3, R5
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  const auto a = test_values();
  const auto da = runner.alloc(a);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(kN, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {kN, 1, 1}, {da, dout, kN}).ok());
  const auto out = runner.read(1);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], a[i] * 3 + a[i]);
  }
}

TEST(TernaryOps, FfmaUsesFusedSemantics) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
.param n u32
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    FFMA R8, R5, R5, R5
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  const auto a = float_values();
  const auto da = runner.alloc(a);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(kN, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {kN, 1, 1}, {da, dout, kN}).ok());
  const auto out = runner.read(1);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], fbits(std::fmaf(bitsf(a[i]), bitsf(a[i]), bitsf(a[i]))));
  }
}

TEST(TernaryOps, IscaddShifts) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R8, R2, 100, 4
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], (i << 4) + 100);
}

TEST(CompareSelect, IsetpAndSel) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
.param n u32
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    ISETP.LT P1, R5, 0
    SEL R8, 1, RZ, P1        // 1 when negative, else 0
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  const auto a = test_values();
  const auto da = runner.alloc(a);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(kN, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {kN, 1, 1}, {da, dout, kN}).ok());
  const auto out = runner.read(1);
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], i32(a[i]) < 0 ? 1u : 0u);
  }
}

TEST(CompareSelect, FsetpComparesFloats) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    FSETP.GT P1, R5, 0.5f
    SEL R8, 7, 3, P1
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  std::vector<std::uint32_t> a;
  for (int i = 0; i < 32; ++i) a.push_back(fbits(static_cast<float>(i) * 0.1f));
  const auto da = runner.alloc(a);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {da, dout}).ok());
  const auto out = runner.read(1);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], bitsf(a[i]) > 0.5f ? 7u : 3u);
  }
}

TEST(F2I, SaturatesAndHandlesNan) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    F2I R8, R5
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)");
  const std::vector<std::uint32_t> a = {
      fbits(1.9f), fbits(-1.9f), fbits(0.0f),   fbits(1e30f),
      fbits(-1e30f), fbits(std::nanf("")), fbits(2147483000.0f), fbits(42.0f)};
  const auto da = runner.alloc(a);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(8, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {8, 1, 1}, {da, dout}).ok());
  const auto out = runner.read(1);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], s(-1));
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[3], 0x7fffffffu);   // saturate high
  EXPECT_EQ(out[4], 0x80000000u);   // saturate low
  EXPECT_EQ(out[5], 0u);            // NaN -> 0
  EXPECT_EQ(out[7], 42u);
}

TEST(SpecialRegs, AllIndicesCorrect) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_NTID.X
    S2R R4, SR_LANEID
    S2R R5, SR_WARPID
    S2R R6, SR_NCTAID.X
    S2R R7, SR_NTID.Y
    // linear thread index within the launch
    IMAD R10, R1, R3, R0          // tid.y*ntid.x + tid.x
    IMUL R11, R3, R7              // threads per cta
    IMAD R10, R2, R11, R10
    // pack checks: out[linear*4 + k]
    SHL R12, R10, 2
    ISCADD R13, R12, c[out], 2
    STG [R13], R4
    STG [R13+4], R5
    STG [R13+8], R6
    STG [R13+12], R3
    EXIT
)");
  const std::uint32_t total = 2 * 8 * 8;  // 2 CTAs of 8x8 threads
  const auto dout = runner.alloc(std::vector<std::uint32_t>(total * 4, 0));
  ASSERT_TRUE(runner.launch({2, 1, 1}, {8, 8, 1}, {dout}).ok());
  const auto out = runner.read(0);
  for (std::uint32_t lin = 0; lin < total; ++lin) {
    const std::uint32_t in_cta = lin % 64;
    EXPECT_EQ(out[lin * 4 + 0], in_cta % 32) << "laneid";
    EXPECT_EQ(out[lin * 4 + 1], in_cta / 32) << "warpid";
    EXPECT_EQ(out[lin * 4 + 2], 2u) << "nctaid.x";
    EXPECT_EQ(out[lin * 4 + 3], 8u) << "ntid.x";
  }
}

}  // namespace
}  // namespace gras
