// Fast functional backend (DESIGN.md §11): the direct-threaded interpreter
// must reproduce the timing core's *architectural* results — memory images
// and trap classification — exactly, kernel by kernel, because campaign
// samples run their fault-free prefix on it and hand off to the timing core
// at a launch boundary. Also covers the handoff support machinery: per-
// boundary L2 residues, the architectural memory hash, plan validation, and
// the functional_safe eligibility gate.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "src/sim/backend.h"
#include "src/sim/functional.h"
#include "src/sim/gpu.h"
#include "tests/testing/sim_helpers.h"

namespace gras::sim {
namespace {

using testing::KernelRunner;

TEST(Backend, NamesRoundTrip) {
  EXPECT_STREQ(backend_name(BackendKind::Timing), "timing");
  EXPECT_STREQ(backend_name(BackendKind::Functional), "functional");
  EXPECT_EQ(backend_from_name("timing"), BackendKind::Timing);
  EXPECT_EQ(backend_from_name("functional"), BackendKind::Functional);
  EXPECT_EQ(backend_from_name("warp-speed"), std::nullopt);
  EXPECT_EQ(backend_from_name(""), std::nullopt);
}

TEST(Backend, FunctionalSafeGatesOldValueAtomics) {
  KernelRunner plain(R"(
.kernel t
    MOV R0, 0
    EXIT
)");
  EXPECT_TRUE(functional_safe(plain.kernel()));

  // RED.ADD discards the old value, so any warp interleaving commutes to the
  // same memory image — eligible.
  KernelRunner red(R"(
.kernel t
.param buf ptr
    MOV R0, c[buf]
    RED.ADD [R0], 1
    EXIT
)");
  EXPECT_TRUE(functional_safe(red.kernel()));

  // ATOM.ADD returns the old value, which depends on warp interleaving —
  // not eligible for the any-schedule functional interpreter.
  KernelRunner atom(R"(
.kernel t
.param buf ptr
    MOV R1, c[buf]
    ATOM.ADD R0, [R1], 1
    EXIT
)");
  EXPECT_FALSE(functional_safe(atom.kernel()));
}

/// Runs `runner`'s kernel on the functional backend directly (against the
/// runner's Gpu memory) and returns the trap it reports. The LaunchContext
/// is built the same way Gpu::launch builds one.
TrapKind run_functional(KernelRunner& runner, Dim3 grid, Dim3 block,
                        std::vector<std::uint32_t> params,
                        std::uint64_t deadline = 10'000'000) {
  const GpuConfig config = testing::test_config();
  LaunchContext ctx;
  ctx.kernel = &runner.kernel();
  ctx.grid = grid;
  ctx.block = block;
  ctx.params = std::move(params);
  ctx.threads_per_cta = block.x * block.y;
  ctx.warps_per_cta = (ctx.threads_per_cta + config.warp_size - 1) / config.warp_size;
  ctx.regs_per_thread = std::max<std::uint8_t>(runner.kernel().num_regs, 1);
  SimStats stats;
  ctx.stats = &stats;
  LaunchRecord scratch;
  FunctionalBackend backend(config, runner.gpu().gmem());
  backend.run_launch(ctx, scratch, deadline);
  return ctx.trap;
}

TEST(FunctionalBackend, MatchesTimingMemoryImage) {
  // A kernel with divergence, shared memory, global loads and stores: each
  // thread conditionally scales its element, then a barrier-separated pass
  // reads a neighbour through shared memory.
  const std::string source = R"(
.kernel t
.param src ptr
.param dst ptr
.smem 256
    S2R R0, SR_TID.X
    MOV R1, c[src]
    ISCADD R2, R0, R1, 2
    LDG R3, [R2]
    SHL R4, R0, 2
    STS [R4], R3
    BAR
    XOR R5, R0, 1
    SHL R5, R5, 2
    LDS R6, [R5]
    ISETP.LT P0, R0, 32
@P0 IADD R6, R6, 100
    MOV R7, c[dst]
    ISCADD R8, R0, R7, 2
    STG [R8], R6
    EXIT
)";
  std::vector<std::uint32_t> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint32_t>(i * 3 + 7);
  }

  KernelRunner timing(source);
  const std::uint32_t t_src = timing.alloc(input);
  const std::uint32_t t_dst = timing.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_EQ(timing.launch({1, 1, 1}, {64, 1, 1}, {t_src, t_dst}).trap, TrapKind::None);

  KernelRunner functional(source);
  const std::uint32_t f_src = functional.alloc(input);
  const std::uint32_t f_dst = functional.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_EQ(f_src, t_src);  // the bump allocator is deterministic
  ASSERT_EQ(f_dst, t_dst);
  EXPECT_EQ(run_functional(functional, {1, 1, 1}, {64, 1, 1}, {f_src, f_dst}),
            TrapKind::None);

  EXPECT_EQ(functional.read(1), timing.read(1));
}

TEST(FunctionalBackend, MultiCtaGridMatchesTiming) {
  const std::string source = R"(
.kernel t
.param buf ptr
    S2R R0, SR_CTAID.X
    S2R R1, SR_TID.X
    IMAD R2, R0, 32, R1
    MOV R3, c[buf]
    ISCADD R4, R2, R3, 2
    LDG R5, [R4]
    IMUL R5, R5, 5
    STG [R4], R5
    EXIT
)";
  std::vector<std::uint32_t> input(256);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<std::uint32_t>(i);

  KernelRunner timing(source);
  const std::uint32_t t_buf = timing.alloc(input);
  ASSERT_EQ(timing.launch({8, 1, 1}, {32, 1, 1}, {t_buf}).trap, TrapKind::None);

  KernelRunner functional(source);
  const std::uint32_t f_buf = functional.alloc(input);
  EXPECT_EQ(run_functional(functional, {8, 1, 1}, {32, 1, 1}, {f_buf}),
            TrapKind::None);

  EXPECT_EQ(functional.read(0), timing.read(0));
}

TEST(FunctionalBackend, TrapClassificationMatchesTiming) {
  // The same malformed kernels must produce the same TrapKind under both
  // backends, so a trap inside a functional prefix classifies as the same
  // DUE a pure-timing replay would report.
  struct Case {
    const char* source;
    TrapKind expected;
  };
  const Case cases[] = {
      {R"(
.kernel t
.param buf ptr
    MOV R0, 0x700000
    LDG R1, [R0]
    EXIT
)",
       TrapKind::OobGlobal},
      {R"(
.kernel t
.param buf ptr
    MOV R0, c[buf]
    IADD R0, R0, 2
    LDG R1, [R0]
    EXIT
)",
       TrapKind::MisalignedGlobal},
      {R"(
.kernel t
.param buf ptr
.smem 64
    MOV R0, 0x40000
    LDS R1, [R0]
    EXIT
)",
       TrapKind::OobShared},
  };
  for (const Case& c : cases) {
    KernelRunner timing(c.source);
    const std::uint32_t t_buf = timing.alloc(std::vector<std::uint32_t>(16, 0));
    EXPECT_EQ(timing.launch({1, 1, 1}, {1, 1, 1}, {t_buf}).trap, c.expected);
    KernelRunner functional(c.source);
    const std::uint32_t f_buf = functional.alloc(std::vector<std::uint32_t>(16, 0));
    EXPECT_EQ(run_functional(functional, {1, 1, 1}, {1, 1, 1}, {f_buf}), c.expected);
  }
}

TEST(FunctionalBackend, InstructionBudgetTrapsAsWatchdog) {
  // An infinite loop exhausts the cycle-derived instruction budget and
  // reports Watchdog, the same classification the timing watchdog gives.
  const char* source = R"(
.kernel t
loop:
    BRA loop
)";
  KernelRunner functional(source);
  EXPECT_EQ(run_functional(functional, {1, 1, 1}, {1, 1, 1}, {}, /*deadline=*/5000),
            TrapKind::Watchdog);
}

TEST(Residue, RecordedAtEveryLaunchBoundary) {
  const char* source = R"(
.kernel t
.param buf ptr
    MOV R0, c[buf]
    LDG R1, [R0]
    IADD R1, R1, 1
    STG [R0], R1
    EXIT
)";
  KernelRunner runner(source);
  const std::uint32_t buf = runner.alloc({41});
  ResidueStore residues;
  runner.gpu().set_residue_sink(&residues);
  ASSERT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {buf}).trap, TrapKind::None);
  ASSERT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {buf}).trap, TrapKind::None);
  EXPECT_EQ(residues.size(), 2u);
  ASSERT_NE(residues.at(0), nullptr);
  ASSERT_NE(residues.at(1), nullptr);
  EXPECT_EQ(residues.at(2), nullptr);
  // The recorded hash matches the image the device holds now only if memory
  // did not change since; boundary hashes must differ once the kernel has
  // bumped the counter.
  EXPECT_NE(residues.at(0)->mem_hash, residues.at(1)->mem_hash);
  EXPECT_EQ(runner.read(0), (std::vector<std::uint32_t>{43}));
}

TEST(Residue, ArchMemHashSeesThroughDirtyL2) {
  // arch_mem_hash must fingerprint the *architectural* image: a value still
  // dirty in the L2 hashes the same as after it reaches DRAM.
  const char* source = R"(
.kernel t
.param buf ptr
    MOV R0, c[buf]
    STG [R0], 77
    EXIT
)";
  KernelRunner runner(source);
  const std::uint32_t buf = runner.alloc({0});
  const std::uint64_t before = runner.gpu().arch_mem_hash();
  ASSERT_EQ(runner.launch({1, 1, 1}, {1, 1, 1}, {buf}).trap, TrapKind::None);
  const std::uint64_t dirty = runner.gpu().arch_mem_hash();
  EXPECT_NE(dirty, before);
  runner.gpu().l2().flush();
  EXPECT_EQ(runner.gpu().arch_mem_hash(), dirty);
}

TEST(FunctionalPlan, RejectsMalformedPlans) {
  KernelRunner runner(R"(
.kernel t
    EXIT
)");
  Gpu& gpu = runner.gpu();
  // No residue: the handoff could not re-warm the L2.
  FunctionalPlan no_residue;
  no_residue.handoff_launch = 1;
  EXPECT_THROW(gpu.set_functional_plan(std::move(no_residue)), std::logic_error);
  BoundaryResidue residue;
  residue.l2 = gpu.l2().snapshot();
  residue.mem_hash = gpu.arch_mem_hash();
  // Residue without per-SM boundary state: the handoff could not re-install
  // the residual RF/SMEM images.
  FunctionalPlan no_sms;
  no_sms.handoff_launch = 1;
  no_sms.residue = &residue;
  EXPECT_THROW(gpu.set_functional_plan(std::move(no_sms)), std::logic_error);
  for (std::uint32_t i = 0; i < gpu.num_sms(); ++i) {
    residue.sms.push_back(gpu.sm(i).snapshot());
  }
  // Handoff not ahead of the current launch index.
  FunctionalPlan behind;
  behind.handoff_launch = 0;
  behind.residue = &residue;
  EXPECT_THROW(gpu.set_functional_plan(std::move(behind)), std::logic_error);
}

}  // namespace
}  // namespace gras::sim
