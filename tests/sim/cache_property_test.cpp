// Property test: an arbitrary interleaving of reads, writes, atomics,
// flushes and host peeks/pokes through the cache hierarchy must agree with
// a flat reference memory at every step, for any cache geometry.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/cache.h"
#include "src/sim/memory.h"

namespace gras::sim {
namespace {

struct Geometry {
  CacheConfig l1;
  CacheConfig l2;
  const char* label;
};

class CacheProperty : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheProperty, AgreesWithFlatMemoryModel) {
  const Geometry& g = GetParam();
  GlobalMemory mem(1 << 18);
  Dram dram(mem, 50);
  Cache l2(g.l2, dram, "L2");
  Cache l1(g.l1, l2, "L1");

  const std::uint32_t base = mem.allocate(1 << 16);
  std::vector<std::uint32_t> reference(1 << 14, 0);  // model of the region
  Rng rng(0x5eed);
  std::uint64_t now = 0;

  for (int step = 0; step < 20000; ++step) {
    now += rng.below(30);
    const std::uint32_t word = static_cast<std::uint32_t>(rng.below(reference.size()));
    const std::uint64_t addr = base + std::uint64_t{word} * 4;
    const std::uint64_t line = addr & ~std::uint64_t{g.l1.line_bytes - 1};
    const std::uint32_t offset = static_cast<std::uint32_t>(addr - line);
    switch (rng.below(6)) {
      case 0: {  // read through L1
        std::uint32_t out = 0;
        l1.read_line(line, {&offset, 1}, {&out, 1}, now);
        ASSERT_EQ(out, reference[word]) << "step " << step;
        break;
      }
      case 1: {  // write through L1 (write-through path)
        const std::uint32_t value = static_cast<std::uint32_t>(rng());
        LineOp op{offset, value};
        l1.write_line(line, {&op, 1}, now);
        reference[word] = value;
        break;
      }
      case 2: {  // write directly at L2 (write-back path)
        const std::uint32_t value = static_cast<std::uint32_t>(rng());
        LineOp op{offset, value};
        l2.write_line(line, {&op, 1}, now);
        reference[word] = value;
        // L1 may hold a stale copy; mimic the simulator's discipline where
        // L2-direct writes (atomics) never race same-line L1 reads within a
        // launch by invalidating L1 here.
        l1.flush();
        break;
      }
      case 3: {  // atomic at L2
        std::uint32_t old = 0;
        l2.atomic_add(addr, 7, old, now);
        ASSERT_EQ(old, reference[word]) << "step " << step;
        reference[word] += 7;
        l1.flush();
        break;
      }
      case 4: {  // host peek (coherent read below L1: L1 is write-through)
        std::uint32_t out = 0;
        l2.peek(addr, {reinterpret_cast<std::uint8_t*>(&out), 4});
        ASSERT_EQ(out, reference[word]) << "step " << step;
        break;
      }
      case 5: {  // occasional launch-boundary flush
        if (rng.below(50) == 0) {
          l1.flush();
          if (rng.below(4) == 0) l2.flush();
        }
        break;
      }
    }
  }

  // Final: flush everything; raw memory must equal the reference model.
  l1.flush();
  l2.flush();
  for (std::size_t w = 0; w < reference.size(); ++w) {
    std::uint32_t raw = 0;
    mem.read(base + w * 4, {reinterpret_cast<std::uint8_t*>(&raw), 4});
    ASSERT_EQ(raw, reference[w]) << "word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(
        Geometry{{8, 2, 128, 5, 2, false}, {16, 4, 128, 20, 4, true}, "small"},
        Geometry{{32, 4, 128, 28, 8, false}, {256, 8, 128, 190, 32, true}, "default"},
        Geometry{{1, 1, 128, 1, 1, false}, {1, 2, 128, 10, 1, true}, "tiny_thrash"},
        Geometry{{4, 8, 128, 5, 16, false}, {8, 16, 128, 20, 16, true}, "associative"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace gras::sim
