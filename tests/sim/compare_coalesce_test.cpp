// Parameterized coverage of all comparison operators and of warp-level
// memory coalescing.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::bitsf;
using testing::fbits;
using testing::KernelRunner;

struct CmpCase {
  const char* suffix;
  bool float_cmp;
  std::function<bool(std::int32_t, std::int32_t)> iref;
  std::function<bool(float, float)> fref;
};

class CompareOp : public ::testing::TestWithParam<CmpCase> {};

TEST_P(CompareOp, AllSixOperators) {
  const CmpCase& tc = GetParam();
  std::string src = R"(
.kernel t
.param a ptr
.param b ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R2, c[b], 2
    LDG R7, [R6]
    )";
  src += tc.float_cmp ? "FSETP." : "ISETP.";
  src += tc.suffix;
  src += R"( P1, R5, R7
    SEL R8, 1, RZ, P1
    ISCADD R9, R2, c[out], 2
    STG [R9], R8
    EXIT
)";
  KernelRunner runner(src);
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < 32; ++i) {
    if (tc.float_cmp) {
      a.push_back(fbits(static_cast<float>(i % 7) - 3.0f));
      b.push_back(fbits(static_cast<float>(i % 5) - 2.0f));
    } else {
      a.push_back(static_cast<std::uint32_t>(i % 7 - 3));
      b.push_back(static_cast<std::uint32_t>(i % 5 - 2));
    }
  }
  const auto da = runner.alloc(a);
  const auto db = runner.alloc(b);
  const auto dout = runner.alloc(std::vector<std::uint32_t>(32, 7));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {da, db, dout}).ok());
  const auto out = runner.read(2);
  for (int i = 0; i < 32; ++i) {
    const bool expect = tc.float_cmp
                            ? tc.fref(bitsf(a[i]), bitsf(b[i]))
                            : tc.iref(static_cast<std::int32_t>(a[i]),
                                      static_cast<std::int32_t>(b[i]));
    EXPECT_EQ(out[i], expect ? 1u : 0u) << tc.suffix << " lane " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Integer, CompareOp,
    ::testing::Values(
        CmpCase{"EQ", false, [](auto a, auto b) { return a == b; }, {}},
        CmpCase{"NE", false, [](auto a, auto b) { return a != b; }, {}},
        CmpCase{"LT", false, [](auto a, auto b) { return a < b; }, {}},
        CmpCase{"LE", false, [](auto a, auto b) { return a <= b; }, {}},
        CmpCase{"GT", false, [](auto a, auto b) { return a > b; }, {}},
        CmpCase{"GE", false, [](auto a, auto b) { return a >= b; }, {}}),
    [](const auto& info) { return std::string("I") + info.param.suffix; });

INSTANTIATE_TEST_SUITE_P(
    Float, CompareOp,
    ::testing::Values(
        CmpCase{"EQ", true, {}, [](auto a, auto b) { return a == b; }},
        CmpCase{"NE", true, {}, [](auto a, auto b) { return a != b; }},
        CmpCase{"LT", true, {}, [](auto a, auto b) { return a < b; }},
        CmpCase{"LE", true, {}, [](auto a, auto b) { return a <= b; }},
        CmpCase{"GT", true, {}, [](auto a, auto b) { return a > b; }},
        CmpCase{"GE", true, {}, [](auto a, auto b) { return a >= b; }}),
    [](const auto& info) { return std::string("F") + info.param.suffix; });

TEST(Coalescing, WarpLoadOfOneLineIsOneAccess) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R2, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32, 1));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  // 32 consecutive 4-byte accesses = exactly one 128-byte line each way.
  EXPECT_EQ(runner.gpu().launches()[0].stats.l1d.accesses, 2u);
}

TEST(Coalescing, StridedAccessFansOut) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    SHL R3, R2, 5             // stride 32 words = one line per lane
    ISCADD R4, R3, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R2, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32 * 32, 2));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  // The strided load touches 32 distinct lines; the store stays coalesced.
  EXPECT_EQ(runner.gpu().launches()[0].stats.l1d.accesses, 32u + 1u);
}

TEST(Coalescing, PartiallyActiveWarpTouchesFewerLines) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISETP.GE P0, R2, 8
    @P0 EXIT
    SHL R3, R2, 5
    ISCADD R4, R3, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R2, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32 * 32, 3));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  EXPECT_EQ(runner.gpu().launches()[0].stats.l1d.accesses, 8u + 1u);
}

TEST(Coalescing, GuardedStoreWritesOnlyActiveLanes) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R2, SR_TID.X
    AND R3, R2, 1
    ISETP.EQ P0, R3, RZ
    ISCADD R4, R2, c[out], 2
    MOV R5, 9
    @P0 STG [R4], R5
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  const auto result = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(result[i], (i % 2 == 0) ? 9u : 0u) << i;
  }
}

}  // namespace
}  // namespace gras
