// Implicit divergence frames: a divergent branch *without* an enclosing SSY
// (which only fault-perturbed control flow produces in practice) must
// serialize both paths and retire them via EXIT — defined behaviour, no
// wedging.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

TEST(ImplicitDivergence, BothPathsRunToExit) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    AND R1, R0, 1
    ISETP.EQ P0, R1, RZ
    @P0 BRA even            // divergent, no SSY
    MOV R2, 100
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
even:
    MOV R2, 200
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  const auto result = runner.launch({1, 1, 1}, {32, 1, 1}, {out});
  ASSERT_TRUE(result.ok()) << sim::trap_name(result.trap);
  const auto values = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(values[i], (i % 2 == 0) ? 200u : 100u) << i;
  }
}

TEST(ImplicitDivergence, StraySyncIsANoop) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    SYNC                    // no frame: must be ignored
    ISCADD R1, R0, c[out], 2
    STG [R1], 5
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  for (std::uint32_t v : runner.read(0)) EXPECT_EQ(v, 5u);
}

TEST(ImplicitDivergence, NestedImplicitSplitsStillDrain) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    AND R1, R0, 1
    ISETP.EQ P0, R1, RZ
    @P0 BRA half            // first unstructured split
    AND R1, R0, 2
    ISETP.EQ P1, R1, RZ
    @P1 BRA quarter         // second split inside the first taken path
    MOV R2, 1
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
quarter:
    MOV R2, 2
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
half:
    MOV R2, 3
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  const auto values = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    const std::uint32_t expect = (i % 2 == 0) ? 3u : ((i & 2) == 0 ? 2u : 1u);
    EXPECT_EQ(values[i], expect) << i;
  }
}

}  // namespace
}  // namespace gras
