// Device-level tests: CTA scheduling across SMs and waves, launch records,
// statistics, host memcpy coherence and cross-launch state.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

constexpr char kCountKernel[] = R"(
.kernel count
.param out ptr
.param n u32
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    ISETP.GE P0, R3, c[n]
    @P0 EXIT
    ISCADD R4, R3, c[out], 2
    IADD R5, R3, 1
    STG [R4], R5
    EXIT
)";

TEST(Gpu, MultiWaveExecutionCoversAllCtas) {
  // 64 CTAs on a 4-SM, 8-CTA-slot device: several waves.
  KernelRunner runner(kCountKernel);
  const std::uint32_t n = 64 * 64;
  const auto out = runner.alloc(std::vector<std::uint32_t>(n, 0));
  ASSERT_TRUE(runner.launch({64, 1, 1}, {64, 1, 1}, {out, n}).ok());
  const auto result = runner.read(0);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(result[i], i + 1);
}

TEST(Gpu, TwoDimensionalGridMapsCtaIds) {
  KernelRunner runner(R"(
.kernel grid2d
.param out ptr
    S2R R0, SR_CTAID.X
    S2R R1, SR_CTAID.Y
    S2R R2, SR_NCTAID.X
    IMAD R3, R1, R2, R0          // linear CTA id
    ISCADD R4, R3, c[out], 2
    MOV R5, 1
    STG [R4], R5
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(12, 0));
  ASSERT_TRUE(runner.launch({4, 3, 1}, {1, 1, 1}, {out}).ok());
  for (std::uint32_t v : runner.read(0)) EXPECT_EQ(v, 1u);
}

TEST(Gpu, GridZIsVisible) {
  KernelRunner runner(R"(
.kernel gz
.param out ptr
    S2R R0, SR_CTAID.Z
    S2R R1, SR_CTAID.X
    S2R R2, SR_NCTAID.X
    IMAD R3, R0, R2, R1
    ISCADD R4, R3, c[out], 2
    STG [R4], R0
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(6, 0xff));
  ASSERT_TRUE(runner.launch({2, 1, 3}, {1, 1, 1}, {out}).ok());
  const auto result = runner.read(0);
  for (std::uint32_t z = 0; z < 3; ++z) {
    EXPECT_EQ(result[z * 2], z);
    EXPECT_EQ(result[z * 2 + 1], z);
  }
}

TEST(Gpu, LaunchRecordsFormContiguousWindows) {
  KernelRunner runner(kCountKernel);
  const auto out = runner.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {64, 1, 1}, {out, 64}).ok());
  ASSERT_TRUE(runner.launch({1, 1, 1}, {64, 1, 1}, {out, 64}).ok());
  const auto& launches = runner.gpu().launches();
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_LT(launches[0].start_cycle, launches[0].end_cycle);
  EXPECT_EQ(launches[0].end_cycle, launches[1].start_cycle);
  EXPECT_EQ(launches[1].end_cycle, runner.gpu().cycle());
  EXPECT_EQ(launches[0].kernel, "count");
  EXPECT_EQ(launches[0].threads, 64u);
}

TEST(Gpu, InstructionCountersArePopulated) {
  KernelRunner runner(kCountKernel);
  const auto out = runner.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {64, 1, 1}, {out, 64}).ok());
  const auto& rec = runner.gpu().launches()[0];
  // 2 warps x 10 instructions (the guarded EXIT issues with no lanes).
  EXPECT_EQ(rec.stats.warp_instrs, 20u);
  EXPECT_EQ(rec.stats.thread_instrs, 64u * 9);
  // GPR writers: S2R x3, IMAD, ISCADD, IADD -> 6 per thread.
  EXPECT_EQ(rec.gp_end - rec.gp_begin, 64u * 6);
  EXPECT_EQ(rec.ld_end - rec.ld_begin, 0u);
  EXPECT_EQ(rec.stats.store_instrs, 2u);  // one STG per warp
  EXPECT_EQ(rec.stats.load_instrs, 0u);
}

TEST(Gpu, LoadCountersTrackLoads) {
  KernelRunner runner(R"(
.kernel lk
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDG R5, [R4]
    ISCADD R6, R2, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32, 3));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  const auto& rec = runner.gpu().launches()[0];
  EXPECT_EQ(rec.ld_end - rec.ld_begin, 32u);
  EXPECT_EQ(rec.stats.load_instrs, 1u);
  EXPECT_EQ(rec.stats.l1d.accesses, 2u);  // one load line + one store line
}

TEST(Gpu, TextureLoadsGoThroughL1T) {
  KernelRunner runner(R"(
.kernel tk
.param a ptr
.param out ptr
    S2R R2, SR_TID.X
    ISCADD R4, R2, c[a], 2
    LDT R5, [R4]
    ISCADD R6, R2, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32, 9));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  const auto& rec = runner.gpu().launches()[0];
  EXPECT_EQ(rec.stats.l1t.accesses, 1u);
  EXPECT_EQ(runner.read(1)[0], 9u);
}

TEST(Gpu, OccupancyIsBetweenZeroAndOne) {
  KernelRunner runner(kCountKernel);
  const auto out = runner.alloc(std::vector<std::uint32_t>(4096, 0));
  ASSERT_TRUE(runner.launch({16, 1, 1}, {256, 1, 1}, {out, 4096}).ok());
  const auto& rec = runner.gpu().launches()[0];
  const double occ = rec.stats.occupancy(runner.gpu().config().max_warps_per_sm);
  EXPECT_GT(occ, 0.0);
  EXPECT_LE(occ, 1.0);
}

TEST(Gpu, MemsetFillsWords) {
  KernelRunner runner(kCountKernel);
  const auto addr = runner.gpu().malloc(64);
  runner.gpu().memset_d32(addr, 0xdeadbeef, 16);
  std::vector<std::uint32_t> out(16);
  runner.gpu().memcpy_d2h(out.data(), addr, 64);
  for (std::uint32_t v : out) EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(Gpu, DeviceDataPersistsAcrossLaunches) {
  KernelRunner runner(R"(
.kernel inc
.param buf ptr
    S2R R0, SR_TID.X
    ISCADD R1, R0, c[buf], 2
    LDG R2, [R1]
    IADD R2, R2, 1
    STG [R1], R2
    EXIT
)");
  const auto buf = runner.alloc(std::vector<std::uint32_t>(32, 0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {buf}).ok());
  }
  for (std::uint32_t v : runner.read(0)) EXPECT_EQ(v, 5u);
}

TEST(Gpu, AtomicsAccumulateAcrossCtas) {
  KernelRunner runner(R"(
.kernel atom
.param counter ptr
    MOV R0, c[counter]
    RED.ADD [R0], 1
    EXIT
)");
  const auto counter = runner.alloc(std::vector<std::uint32_t>(1, 0));
  ASSERT_TRUE(runner.launch({8, 1, 1}, {64, 1, 1}, {counter}).ok());
  EXPECT_EQ(runner.read(0)[0], 8u * 64);
}

TEST(Gpu, AtomAddReturnsUniqueTickets) {
  KernelRunner runner(R"(
.kernel tickets
.param counter ptr
.param out ptr
    S2R R0, SR_CTAID.X
    S2R R1, SR_NTID.X
    S2R R2, SR_TID.X
    IMAD R3, R0, R1, R2
    MOV R4, c[counter]
    ATOM.ADD R5, [R4], 1
    ISCADD R6, R3, c[out], 2
    STG [R6], R5
    EXIT
)");
  const auto counter = runner.alloc(std::vector<std::uint32_t>(1, 0));
  const auto out = runner.alloc(std::vector<std::uint32_t>(128, 0xffffffff));
  ASSERT_TRUE(runner.launch({2, 1, 1}, {64, 1, 1}, {counter, out}).ok());
  auto tickets = runner.read(1);
  std::sort(tickets.begin(), tickets.end());
  for (std::uint32_t i = 0; i < 128; ++i) EXPECT_EQ(tickets[i], i);
}

TEST(Gpu, CycleCountGrowsWithWork) {
  KernelRunner small(kCountKernel);
  const auto out1 = small.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_TRUE(small.launch({1, 1, 1}, {64, 1, 1}, {out1, 64}).ok());
  const auto small_cycles = small.gpu().cycle();

  KernelRunner big(kCountKernel);
  const auto out2 = big.alloc(std::vector<std::uint32_t>(8192, 0));
  ASSERT_TRUE(big.launch({128, 1, 1}, {64, 1, 1}, {out2, 8192}).ok());
  EXPECT_GT(big.gpu().cycle(), small_cycles);
}

TEST(Gpu, RejectsMismatchedLineSizes) {
  sim::GpuConfig config = testing::test_config();
  config.l1d.line_bytes = 64;
  EXPECT_THROW(sim::Gpu{config}, std::invalid_argument);
}

TEST(Gpu, EmptyLaunchIsRejected) {
  KernelRunner runner(kCountKernel);
  EXPECT_THROW(runner.launch({0, 1, 1}, {32, 1, 1}, {0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace gras
