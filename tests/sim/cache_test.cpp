// Cache hierarchy unit tests: hit/miss behaviour, LRU, write policies,
// MSHR accounting, host-coherent peek/poke, and — most importantly for this
// project — the fault-propagation and fault-masking paths the paper's
// cross-layer analysis depends on.
#include "src/sim/cache.h"

#include <gtest/gtest.h>

#include "src/sim/memory.h"

namespace gras::sim {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : mem_(1 << 20),
        dram_(mem_, 100),
        l2_(CacheConfig{16, 4, 128, 20, 4, /*write_back=*/true}, dram_, "L2"),
        l1_(CacheConfig{8, 2, 128, 5, 2, /*write_back=*/false}, l2_, "L1") {}

  void write_word(Cache& c, std::uint64_t addr, std::uint32_t value, std::uint64_t now = 0) {
    const std::uint64_t line = addr & ~std::uint64_t{127};
    LineOp op{static_cast<std::uint32_t>(addr - line), value};
    c.write_line(line, {&op, 1}, now);
  }

  std::uint32_t read_word(Cache& c, std::uint64_t addr, std::uint64_t now = 0) {
    const std::uint64_t line = addr & ~std::uint64_t{127};
    const std::uint32_t off = static_cast<std::uint32_t>(addr - line);
    std::uint32_t out = 0;
    c.read_line(line, {&off, 1}, {&out, 1}, now);
    return out;
  }

  GlobalMemory mem_;
  Dram dram_;
  Cache l2_;
  Cache l1_;
};

TEST_F(CacheTest, ReadMissFillsFromMemory) {
  const std::uint32_t addr = mem_.allocate(1024);
  std::uint32_t v = 0x12345678;
  mem_.write(addr, {reinterpret_cast<std::uint8_t*>(&v), 4});
  EXPECT_EQ(read_word(l1_, addr), 0x12345678u);
  EXPECT_EQ(l1_.stats().misses, 1u);
  EXPECT_EQ(l1_.stats().fills, 1u);
  // Second read hits.
  EXPECT_EQ(read_word(l1_, addr, 1000), 0x12345678u);
  EXPECT_EQ(l1_.stats().hits, 1u);
}

TEST_F(CacheTest, MissLatencyExceedsHitLatency) {
  const std::uint32_t addr = mem_.allocate(1024);
  const std::uint64_t line = addr & ~std::uint64_t{127};
  const std::uint32_t off = 0;
  std::uint32_t out;
  const std::uint64_t miss_ready = l1_.read_line(line, {&off, 1}, {&out, 1}, 0);
  const std::uint64_t hit_ready = l1_.read_line(line, {&off, 1}, {&out, 1}, 10000);
  EXPECT_GT(miss_ready, 100u);            // through L2 to DRAM
  EXPECT_EQ(hit_ready, 10000u + 5);       // L1 hit latency
}

TEST_F(CacheTest, WriteThroughUpdatesNextLevelImmediately) {
  const std::uint32_t addr = mem_.allocate(1024);
  write_word(l1_, addr, 0xabcd);
  // L1 did not allocate (write-no-allocate) but L2 did (write-allocate).
  EXPECT_EQ(read_word(l2_, addr, 50), 0xabcdu);
  // DRAM is stale until L2 evicts: write-back semantics.
  std::uint32_t raw = 0;
  mem_.read(addr, {reinterpret_cast<std::uint8_t*>(&raw), 4});
  EXPECT_EQ(raw, 0u);
}

TEST_F(CacheTest, DirtyEvictionWritesBack) {
  const std::uint32_t base = mem_.allocate(1 << 18);
  write_word(l2_, base, 0x11);
  // Touch enough conflicting lines to evict the dirty one (same set every
  // 16*128 bytes; 4 ways).
  for (int i = 1; i <= 4; ++i) read_word(l2_, base + i * 16 * 128, 100 * i);
  std::uint32_t raw = 0;
  mem_.read(base, {reinterpret_cast<std::uint8_t*>(&raw), 4});
  EXPECT_EQ(raw, 0x11u);
  EXPECT_GE(l2_.stats().writebacks, 1u);
}

TEST_F(CacheTest, LruPrefersOldest) {
  const std::uint32_t base = mem_.allocate(1 << 18);
  // Fill all 4 ways of one set, touch way 0 again, insert a 5th line:
  // way holding line 1 (oldest) must be evicted.
  for (int i = 0; i < 4; ++i) read_word(l2_, base + i * 16 * 128, i);
  read_word(l2_, base + 0 * 16 * 128, 10);       // refresh line 0
  read_word(l2_, base + 4 * 16 * 128, 20);       // evict line 1
  l2_.reset_stats();
  read_word(l2_, base + 0 * 16 * 128, 30);
  EXPECT_EQ(l2_.stats().hits, 1u);               // line 0 still resident
  read_word(l2_, base + 1 * 16 * 128, 40);
  EXPECT_EQ(l2_.stats().misses, 1u);             // line 1 was the victim
}

TEST_F(CacheTest, PendingHitCountsMergedMisses) {
  const std::uint32_t addr = mem_.allocate(1024);
  const std::uint64_t line = addr & ~std::uint64_t{127};
  const std::uint32_t off = 0;
  std::uint32_t out;
  l2_.read_line(line, {&off, 1}, {&out, 1}, 0);    // miss, fill in flight
  l2_.read_line(line, {&off, 1}, {&out, 1}, 1);    // merged into the fill
  EXPECT_EQ(l2_.stats().pending_hits, 1u);
}

TEST_F(CacheTest, ReservationFailWhenMshrsFull) {
  const std::uint32_t base = mem_.allocate(1 << 18);
  std::uint32_t out;
  const std::uint32_t off = 0;
  // L1 has 2 MSHRs; issue 3 distinct-line misses at the same cycle.
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t line = (base + i * 128) & ~std::uint64_t{127};
    l1_.read_line(line, {&off, 1}, {&out, 1}, 0);
  }
  EXPECT_GE(l1_.stats().reservation_fails, 1u);
}

TEST_F(CacheTest, PeekSeesDirtyData) {
  const std::uint32_t addr = mem_.allocate(1024);
  write_word(l2_, addr, 0x77);
  std::uint32_t out = 0;
  l2_.peek(addr, {reinterpret_cast<std::uint8_t*>(&out), 4});
  EXPECT_EQ(out, 0x77u);
}

TEST_F(CacheTest, PokeUpdatesResidentLineAndMemory) {
  const std::uint32_t addr = mem_.allocate(1024);
  read_word(l2_, addr);  // make resident
  const std::uint32_t v = 0x55aa;
  l2_.poke(addr, {reinterpret_cast<const std::uint8_t*>(&v), 4});
  EXPECT_EQ(read_word(l2_, addr, 100), 0x55aau);
  std::uint32_t raw = 0;
  mem_.read(addr, {reinterpret_cast<std::uint8_t*>(&raw), 4});
  EXPECT_EQ(raw, 0x55aau);
}

TEST_F(CacheTest, FlushWritesBackAndInvalidates) {
  const std::uint32_t addr = mem_.allocate(1024);
  write_word(l2_, addr, 0x99);
  l2_.flush();
  std::uint32_t raw = 0;
  mem_.read(addr, {reinterpret_cast<std::uint8_t*>(&raw), 4});
  EXPECT_EQ(raw, 0x99u);
  l2_.reset_stats();
  read_word(l2_, addr, 1000);
  EXPECT_EQ(l2_.stats().misses, 1u);  // nothing resident after flush
}

TEST_F(CacheTest, AtomicAddReturnsOldValue) {
  const std::uint32_t addr = mem_.allocate(1024);
  write_word(l2_, addr, 10);
  std::uint32_t old = 0;
  l2_.atomic_add(addr, 5, old, 100);
  EXPECT_EQ(old, 10u);
  EXPECT_EQ(read_word(l2_, addr, 200), 15u);
}

// --- The fault paths the paper's mechanisms rest on ---

TEST_F(CacheTest, FaultInLiveLineCorruptsSubsequentReads) {
  const std::uint32_t addr = mem_.allocate(1024);
  write_word(l2_, addr, 0);
  // Find which bit of the data array holds our word: flip every bit until
  // the read changes... instead, use determinism: line was just allocated,
  // flip bit 0 of every line and check the value changed by exactly 1.
  std::uint32_t before = read_word(l2_, addr, 10);
  for (std::uint64_t bit = 0; bit < l2_.data_bit_count(); bit += 8 * 128 * 4) {
    // flip bit 0 of the first word of every line
    l2_.flip_data_bit(bit);
  }
  std::uint32_t after = read_word(l2_, addr, 20);
  EXPECT_EQ(after, before ^ 1u);
}

TEST_F(CacheTest, FaultInCleanLineIsMaskedByEviction) {
  // Paper §V-B: a corrupted clean line that is evicted never writes back,
  // so the fault vanishes (hardware masking invisible to software).
  const std::uint32_t base = mem_.allocate(1 << 18);
  std::uint32_t v = 0xcafe;
  mem_.write(base, {reinterpret_cast<std::uint8_t*>(&v), 4});
  EXPECT_EQ(read_word(l2_, base), 0xcafeu);  // clean resident copy
  // Corrupt all data bits' first word as above.
  for (std::uint64_t bit = 0; bit < l2_.data_bit_count(); bit += 8 * 128 * 4) {
    l2_.flip_data_bit(bit);
  }
  // Evict by filling the set.
  for (int i = 1; i <= 4; ++i) read_word(l2_, base + i * 16 * 128, 100 * i);
  // Re-read: the line refills from untouched memory — fault masked.
  EXPECT_EQ(read_word(l2_, base, 10000), 0xcafeu);
}

TEST_F(CacheTest, FaultInDirtyLineReachesMemoryOnWriteback) {
  // Paper §IV-B: a fault in a dirty line holding output data is written
  // back without any masking opportunity -> guaranteed SDC.
  const std::uint32_t base = mem_.allocate(1 << 18);
  write_word(l2_, base, 0x1000);
  for (std::uint64_t bit = 0; bit < l2_.data_bit_count(); bit += 8 * 128 * 4) {
    l2_.flip_data_bit(bit);
  }
  l2_.flush();
  std::uint32_t raw = 0;
  mem_.read(base, {reinterpret_cast<std::uint8_t*>(&raw), 4});
  EXPECT_EQ(raw, 0x1001u);  // corrupted value persisted
}

TEST_F(CacheTest, FaultInInvalidLineIsDead) {
  const std::uint32_t addr = mem_.allocate(1024);
  std::uint32_t v = 0xbeef;
  mem_.write(addr, {reinterpret_cast<std::uint8_t*>(&v), 4});
  // Flip bits while nothing is resident.
  for (std::uint64_t bit = 0; bit < 1000; ++bit) l2_.flip_data_bit(bit);
  EXPECT_EQ(read_word(l2_, addr), 0xbeefu);  // fill overwrites stale bits
}

TEST_F(CacheTest, TagFlipLosesLine) {
  const std::uint32_t addr = mem_.allocate(1024);
  std::uint32_t v = 0xaaaa;
  mem_.write(addr, {reinterpret_cast<std::uint8_t*>(&v), 4});
  read_word(l2_, addr);
  for (std::uint64_t i = 0; i < l2_.line_count(); ++i) l2_.flip_tag_bit(i, 3);
  l2_.reset_stats();
  EXPECT_EQ(read_word(l2_, addr, 1000), 0xaaaau);  // refetched from memory
  EXPECT_EQ(l2_.stats().misses, 1u);
}

TEST_F(CacheTest, ValidFlipInvalidatesLine) {
  const std::uint32_t addr = mem_.allocate(1024);
  read_word(l2_, addr);
  std::uint64_t resident = 0;
  for (std::uint64_t i = 0; i < l2_.line_count(); ++i) resident += l2_.line_valid(i);
  EXPECT_EQ(resident, 1u);
  for (std::uint64_t i = 0; i < l2_.line_count(); ++i) l2_.flip_valid_bit(i);
  std::uint64_t now_valid = 0;
  for (std::uint64_t i = 0; i < l2_.line_count(); ++i) now_valid += l2_.line_valid(i);
  EXPECT_EQ(now_valid, l2_.line_count() - 1);
}

TEST(CacheConfigTest, SizesDeriveFromGeometry) {
  CacheConfig c{32, 4, 128, 10, 8, true};
  EXPECT_EQ(c.data_bytes(), 32u * 4 * 128);
  EXPECT_EQ(c.data_bits(), 32u * 4 * 128 * 8);
}

}  // namespace
}  // namespace gras::sim
