// Cross-launch behaviour: L1 flushing at kernel boundaries, L2 persistence,
// fault persistence across launches, and the fast-forward optimization's
// cycle-accuracy.
#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

constexpr char kLoadStore[] = R"(
.kernel copy
.param src ptr
.param dst ptr
    S2R R0, SR_TID.X
    ISCADD R1, R0, c[src], 2
    LDG R2, [R1]
    ISCADD R3, R0, c[dst], 2
    STG [R3], R2
    EXIT
)";

TEST(CrossLaunch, L1IsFlushedBetweenLaunches) {
  KernelRunner runner(kLoadStore);
  const auto src = runner.alloc(std::vector<std::uint32_t>(32, 5));
  const auto dst = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  const auto first = runner.gpu().launches()[0].stats.l1d;
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  const auto second = runner.gpu().launches()[1].stats.l1d;
  // The second launch re-misses on the loads: nothing survives the flush.
  EXPECT_EQ(second.misses, first.misses);
}

TEST(CrossLaunch, L2PersistsAcrossLaunches) {
  KernelRunner runner(kLoadStore);
  const auto src = runner.alloc(std::vector<std::uint32_t>(32, 5));
  const auto dst = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  const auto first = runner.gpu().launches()[0].stats.l2;
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  const auto second = runner.gpu().launches()[1].stats.l2;
  // L2 keeps the lines: the second launch's L1 fills hit in L2.
  EXPECT_LT(second.misses, first.misses + 1);
  EXPECT_GT(second.hits, 0u);
}

TEST(CrossLaunch, L1FaultDoesNotLeakIntoNextLaunch) {
  // Corrupt every L1D line between launches: the flush (write-through L1,
  // nothing dirty) must discard the corruption.
  KernelRunner runner(kLoadStore);
  const auto src = runner.alloc(std::vector<std::uint32_t>(32, 5));
  const auto dst = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  // After end_launch, L1 is already flushed; corrupt it anyway and re-run.
  for (std::uint32_t s = 0; s < runner.gpu().num_sms(); ++s) {
    sim::Cache& l1 = runner.gpu().sm(s).l1d();
    for (std::uint64_t b = 0; b < l1.data_bit_count(); b += 1024) l1.flip_data_bit(b);
  }
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  for (std::uint32_t v : runner.read(1)) EXPECT_EQ(v, 5u);
}

TEST(CrossLaunch, DirtyL2FaultSurvivesIntoLaterReads) {
  // The paper's §IV-B mechanism across kernels: corrupt the destination
  // buffer's dirty L2 lines after launch 1; the host read (and any later
  // kernel) sees the corruption.
  KernelRunner runner(kLoadStore);
  const auto src = runner.alloc(std::vector<std::uint32_t>(32, 5));
  const auto dst = runner.alloc(std::vector<std::uint32_t>(32, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {src, dst}).ok());
  sim::Cache& l2 = runner.gpu().l2();
  for (std::uint64_t b = 0; b < l2.data_bit_count(); b += 32) {
    l2.flip_data_bit(b);  // flip bit 0 of every word in the array
  }
  bool any_corrupted = false;
  for (std::uint32_t v : runner.read(1)) any_corrupted |= v != 5u;
  EXPECT_TRUE(any_corrupted);
}

TEST(CrossLaunch, FastForwardDoesNotChangeCycleCounts) {
  // A hook that triggers at every cycle disables the idle-skip entirely;
  // total cycles must be identical with and without it.
  class EveryCycle final : public sim::FaultHook {
   public:
    void on_cycle(sim::Gpu&, std::uint64_t cycle) override { last_ = cycle; }
    std::uint64_t next_trigger() const override { return last_ + 1; }

   private:
    std::uint64_t last_ = 0;
  };

  std::uint64_t cycles_plain = 0;
  {
    KernelRunner runner(kLoadStore);
    const auto src = runner.alloc(std::vector<std::uint32_t>(256, 1));
    const auto dst = runner.alloc(std::vector<std::uint32_t>(256, 0));
    ASSERT_TRUE(runner.launch({8, 1, 1}, {32, 1, 1}, {src, dst}).ok());
    cycles_plain = runner.gpu().cycle();
  }
  {
    KernelRunner runner(kLoadStore);
    const auto src = runner.alloc(std::vector<std::uint32_t>(256, 1));
    const auto dst = runner.alloc(std::vector<std::uint32_t>(256, 0));
    EveryCycle hook;
    runner.gpu().set_fault_hook(&hook);
    ASSERT_TRUE(runner.launch({8, 1, 1}, {32, 1, 1}, {src, dst}).ok());
    EXPECT_EQ(runner.gpu().cycle(), cycles_plain);
  }
}

TEST(CrossLaunch, GoldenCycleCountsAreStableAcrossGpuInstances) {
  KernelRunner a(kLoadStore), b(kLoadStore);
  const auto sa = a.alloc(std::vector<std::uint32_t>(64, 9));
  const auto da = a.alloc(std::vector<std::uint32_t>(64, 0));
  const auto sb = b.alloc(std::vector<std::uint32_t>(64, 9));
  const auto db = b.alloc(std::vector<std::uint32_t>(64, 0));
  ASSERT_TRUE(a.launch({2, 1, 1}, {32, 1, 1}, {sa, da}).ok());
  ASSERT_TRUE(b.launch({2, 1, 1}, {32, 1, 1}, {sb, db}).ok());
  EXPECT_EQ(a.gpu().cycle(), b.gpu().cycle());
}

}  // namespace
}  // namespace gras
