// Durable-orchestrator batching tests: with --batch K the journal must stay
// byte-identical to an unbatched run (single-threaded, so the batch=1 append
// order is ascending too), a batch spanning the Wilson early-stop boundary
// must stop at the same deterministic chunk, and a SIGKILL mid-batch must
// resume to the bit-identical result — the exactly-once journal contract.
#include "src/orchestrator/orchestrator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace gras::orchestrator {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "gras_batch_test";
  std::filesystem::create_directories(dir);
  return dir;
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void expect_same_result(const campaign::CampaignResult& a,
                        const campaign::CampaignResult& b) {
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.timeout, b.counts.timeout);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.control_path_masked, b.control_path_masked);
  EXPECT_EQ(a.injected, b.injected);
}

class BatchDurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = workloads::make_benchmark("va");
    golden_ = campaign::run_golden(*app_, config(), campaign::Checkpointing::On);
  }

  campaign::CampaignSpec spec_of(campaign::Target target, std::uint64_t samples) {
    campaign::CampaignSpec spec;
    spec.kernel = "va_k1";
    spec.target = target;
    spec.samples = samples;
    spec.seed = 2024;
    return spec;
  }

  std::unique_ptr<workloads::App> app_;
  campaign::GoldenRun golden_;
  // Single worker: the batch=1 journal then appends in ascending index order
  // too, making whole-file byte comparison meaningful (the CI smoke pins
  // GRAS_THREADS=1 for the same reason).
  ThreadPool pool_{1};
};

TEST_F(BatchDurableTest, JournalByteIdenticalToUnbatched) {
  for (const campaign::Target target :
       {campaign::Target::RF, campaign::Target::Svf}) {
    const auto spec = spec_of(target, 48);
    const auto base_path = temp_dir() / (std::string("b1-") +
                                         campaign::target_name(target) + ".jrnl");
    DurableOptions base;
    base.journal = base_path;
    base.resume = false;
    const auto unbatched = run_durable(*app_, config(), golden_, spec, pool_, base);

    const auto batch_path = temp_dir() / (std::string("b8-") +
                                          campaign::target_name(target) + ".jrnl");
    DurableOptions batched;
    batched.journal = batch_path;
    batched.resume = false;
    batched.batch = 8;
    const auto result = run_durable(*app_, config(), golden_, spec, pool_, batched);

    expect_same_result(result.result, unbatched.result);
    EXPECT_EQ(result.executed, 48u);
    EXPECT_EQ(file_bytes(batch_path), file_bytes(base_path))
        << campaign::target_name(target);
  }
}

TEST_F(BatchDurableTest, BatchSpansEarlyStopBoundary) {
  // A generous margin stops after few chunks; with chunk 16 and batch 8 the
  // final chunk's samples ran as batched groups. The stop point (a chunk
  // boundary) and the journal — records plus the early-stop marker — must
  // match the unbatched run byte for byte.
  const auto spec = spec_of(campaign::Target::RF, 96);
  DurableOptions base;
  base.journal = temp_dir() / "stop-b1.jrnl";
  base.resume = false;
  base.margin = 0.20;
  base.chunk = 16;
  const auto unbatched = run_durable(*app_, config(), golden_, spec, pool_, base);
  ASSERT_TRUE(unbatched.early_stopped);
  ASSERT_LT(unbatched.executed, 96u);

  DurableOptions batched = base;
  batched.journal = temp_dir() / "stop-b8.jrnl";
  batched.batch = 8;
  const auto result = run_durable(*app_, config(), golden_, spec, pool_, batched);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.executed, unbatched.executed);
  expect_same_result(result.result, unbatched.result);
  EXPECT_EQ(file_bytes(batched.journal), file_bytes(base.journal));
}

TEST_F(BatchDurableTest, KillMidBatchResumesBitIdentical) {
  const auto spec = spec_of(campaign::Target::Svf, 48);
  const auto reference =
      campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  const auto path = temp_dir() / "killed-batch.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  options.batch = 8;
  run_durable(*app_, config(), golden_, spec, pool_, options);
  const std::string bytes = file_bytes(path);

  // A SIGKILL can land anywhere — between chunks, inside a batched group's
  // buffered appends, or mid-record. Cut at several points (record counts
  // chosen to fall inside batch groups) and resume with batching still on.
  const std::size_t header_bytes = bytes.size() - spec.samples * kRecordBytes;
  const std::size_t cuts[] = {header_bytes,
                              header_bytes + 3 * kRecordBytes,
                              header_bytes + 11 * kRecordBytes + 7,
                              header_bytes + 29 * kRecordBytes,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    DurableOptions resume;
    resume.journal = path;
    resume.resume = true;
    resume.batch = 8;
    const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
    expect_same_result(resumed.result, reference);
    EXPECT_EQ(resumed.replayed + resumed.executed, 48u) << "cut at " << cut;
    EXPECT_EQ(file_bytes(path), bytes) << "cut at " << cut;
  }
}

TEST_F(BatchDurableTest, BatchedResumeOfUnbatchedJournalAndBack) {
  // Switching batch sizes across resumes must be seamless: the journal
  // carries no batching state, only per-sample records.
  const auto spec = spec_of(campaign::Target::RF, 32);
  const auto path = temp_dir() / "switch.jrnl";
  DurableOptions first;
  first.journal = path;
  first.resume = false;
  const auto full = run_durable(*app_, config(), golden_, spec, pool_, first);
  const std::string bytes = file_bytes(path);

  const std::size_t header_bytes = bytes.size() - spec.samples * kRecordBytes;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::size_t cut = header_bytes + 13 * kRecordBytes;
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
  }
  DurableOptions resume;
  resume.journal = path;
  resume.resume = true;
  resume.batch = 4;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
  expect_same_result(resumed.result, full.result);
  EXPECT_EQ(resumed.replayed, 13u);
  EXPECT_EQ(resumed.executed, 19u);
  EXPECT_EQ(file_bytes(path), bytes);
}

}  // namespace
}  // namespace gras::orchestrator
