// replay_sample: any journaled sample re-executes bit-identically (Masked,
// SDC and DUE alike), divergence against a tampered journal is detected, and
// the error paths name their cause.
#include "src/orchestrator/replay.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/orchestrator/orchestrator.h"
#include "src/workloads/workload.h"

namespace gras::orchestrator {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

std::filesystem::path temp_dir() {
  // Per-process directory: each ctest entry is its own process and rebuilds
  // the fixture, so a shared path would let concurrent entries truncate the
  // journal out from under a sibling mid-read.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gras_replay_test." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

/// One 200-sample va/RF campaign journaled once and shared by all tests.
/// 200 samples at seed 2024 produce a healthy mix of Masked, SDC and DUE.
const std::filesystem::path& fixture_journal() {
  static const std::filesystem::path path = [] {
    const auto p = temp_dir() / "fixture.jrnl";
    const auto app = workloads::make_benchmark("va");
    const auto golden = campaign::run_golden(*app, config());
    campaign::CampaignSpec spec;
    spec.kernel = "va_k1";
    spec.target = campaign::Target::RF;
    spec.samples = 200;
    spec.seed = 2024;
    ThreadPool pool(4);
    DurableOptions options;
    options.journal = p;
    options.resume = false;
    run_durable(*app, config(), golden, spec, pool, options);
    return p;
  }();
  return path;
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

TEST(Replay, ReproducesEachOutcomeClassBitIdentically) {
  const auto contents = read_journal(fixture_journal());
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->version, kJournalVersion);
  for (const fi::Outcome want :
       {fi::Outcome::Masked, fi::Outcome::SDC, fi::Outcome::DUE}) {
    const auto it = std::find_if(
        contents->records.begin(), contents->records.end(),
        [&](const JournalRecord& r) { return r.outcome == want; });
    ASSERT_NE(it, contents->records.end()) << fi::outcome_name(want);
    const ReplayResult res = replay_sample(fixture_journal(), it->index);
    EXPECT_TRUE(res.matches()) << fi::outcome_name(want) << " sample " << it->index
                               << ": outcome " << res.outcome_match << " cycles "
                               << res.cycles_match << " fault " << res.fault_match
                               << " signature " << res.signature_match;
    EXPECT_EQ(res.rerun.outcome, want);
    EXPECT_EQ(res.rerun.cycles, it->cycles);
    if (want == fi::Outcome::SDC) {
      EXPECT_TRUE(res.journaled.has_signature);
      EXPECT_FALSE(res.divergent.empty());
    } else {
      EXPECT_TRUE(res.divergent.empty());
    }
  }
}

TEST(Replay, JournalCarriesProvenanceAndSignatures) {
  // Every injected RF sample must journal where the flip landed; every SDC
  // must journal what the corruption looked like — and nothing else may.
  const auto contents = read_journal(fixture_journal());
  ASSERT_TRUE(contents.has_value());
  for (const JournalRecord& r : contents->records) {
    if (r.injected) {
      EXPECT_EQ(r.fault.level, fi::FaultLevel::Microarch) << "sample " << r.index;
      EXPECT_EQ(r.fault.structure, fi::Structure::RF) << "sample " << r.index;
      EXPECT_GE(r.fault.width, 1u) << "sample " << r.index;
    }
    EXPECT_EQ(r.has_signature, r.outcome == fi::Outcome::SDC)
        << "sample " << r.index;
    if (r.has_signature) {
      EXPECT_TRUE(r.signature.mismatch()) << "sample " << r.index;
    }
  }
}

TEST(Replay, DivergentWordListRespectsCap) {
  const auto contents = read_journal(fixture_journal());
  ASSERT_TRUE(contents.has_value());
  const auto it = std::find_if(
      contents->records.begin(), contents->records.end(),
      [](const JournalRecord& r) { return r.outcome == fi::Outcome::SDC; });
  ASSERT_NE(it, contents->records.end());
  const ReplayResult res = replay_sample(fixture_journal(), it->index, 1);
  EXPECT_EQ(res.divergent.size(), 1u);
  EXPECT_NE(res.divergent[0].golden, res.divergent[0].faulty);
}

TEST(Replay, DetectsTamperedOutcome) {
  // Flip a journaled Masked outcome to SDC (re-fixing the record checksum so
  // the journal still parses); the rerun must report divergence.
  std::string bytes;
  {
    std::ifstream in(fixture_journal(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto contents = read_journal(fixture_journal());
  ASSERT_TRUE(contents.has_value());
  const auto it = std::find_if(
      contents->records.begin(), contents->records.end(),
      [](const JournalRecord& r) { return r.outcome == fi::Outcome::Masked; });
  ASSERT_NE(it, contents->records.end());
  const std::size_t pos =
      static_cast<std::size_t>(it - contents->records.begin());
  const std::size_t header_bytes =
      bytes.size() - contents->records.size() * kRecordBytes;
  const std::size_t off = header_bytes + pos * kRecordBytes;
  bytes[off + 16] = static_cast<char>(fi::Outcome::SDC);
  // v4 records checksum their full 236-byte prefix (class provenance
  // included); re-fix it so the tampered record still parses.
  const auto sum = static_cast<std::uint32_t>(
      fnv1a(bytes.data() + off, kRecordBytes - 4));
  std::memcpy(bytes.data() + off + kRecordBytes - 4, &sum, 4);
  const auto tampered = temp_dir() / "tampered.jrnl";
  {
    std::ofstream out(tampered, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const ReplayResult res = replay_sample(tampered, it->index);
  EXPECT_FALSE(res.outcome_match);
  EXPECT_FALSE(res.matches());
  EXPECT_EQ(res.rerun.outcome, fi::Outcome::Masked);
}

TEST(Replay, ThrowsOnUnjournaledIndex) {
  EXPECT_THROW(replay_sample(fixture_journal(), 1000000), std::runtime_error);
}

TEST(Replay, ThrowsOnMissingJournal) {
  EXPECT_THROW(replay_sample(temp_dir() / "no_such.jrnl", 0), std::runtime_error);
}

}  // namespace
}  // namespace gras::orchestrator
