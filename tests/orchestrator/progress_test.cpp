// JsonlProgress::to_json: every snapshot must serialize to one valid JSON
// line — non-finite doubles are clamped (not printed as `inf`/`nan`) and
// extreme finite values grow the buffer instead of truncating the object.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/orchestrator/progress.h"

namespace gras::orchestrator {
namespace {

TEST(JsonlProgressToJson, EmitsAllFields) {
  ProgressSnapshot s;
  s.completed = 5;
  s.total = 10;
  s.counts.masked = 3;
  s.counts.sdc = 1;
  s.counts.timeout = 0;
  s.counts.due = 1;
  s.injected = 4;
  s.control_path_masked = 2;
  s.samples_per_sec = 123.456;
  s.eta_seconds = 2.0;
  s.fr_ci.estimate = 0.4;
  s.fr_ci.lower = 0.3;
  s.fr_ci.upper = 0.5;
  s.done = true;
  const std::string j = JsonlProgress::to_json(s);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"completed\":5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"total\":10"), std::string::npos) << j;
  EXPECT_NE(j.find("\"masked\":3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"sdc\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"injected\":4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"samples_per_sec\":123.46"), std::string::npos) << j;
  EXPECT_NE(j.find("\"eta_seconds\":2.0"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fr\":0.400000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fr_margin\":0.100000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"early_stopped\":false"), std::string::npos) << j;
  EXPECT_NE(j.find("\"done\":true"), std::string::npos) << j;
}

TEST(JsonlProgressToJson, ClampsNonFiniteToZero) {
  // Before the first executed sample the ETA is remaining/0 = inf, and a
  // degenerate CI can carry NaN; %f would render "inf"/"nan", which no JSON
  // parser accepts. All non-finite doubles clamp to 0.
  ProgressSnapshot s;
  s.eta_seconds = std::numeric_limits<double>::infinity();
  s.samples_per_sec = std::nan("");
  s.fr_ci.estimate = std::nan("");
  s.fr_ci.lower = -std::numeric_limits<double>::infinity();
  s.fr_ci.upper = std::numeric_limits<double>::infinity();  // margin() = inf
  const std::string j = JsonlProgress::to_json(s);
  EXPECT_EQ(j.find("inf"), std::string::npos) << j;
  EXPECT_EQ(j.find("nan"), std::string::npos) << j;
  EXPECT_NE(j.find("\"samples_per_sec\":0.00"), std::string::npos) << j;
  EXPECT_NE(j.find("\"eta_seconds\":0.0"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fr\":0.000000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fr_margin\":0.000000"), std::string::npos) << j;
}

TEST(JsonlProgressToJson, HugeFiniteValuesAreNotTruncated) {
  // %.2f renders 1e308 as ~310 digits; two such fields overflow the old
  // fixed 512-byte buffer, which used to cut the line mid-field. The retry
  // path must return the complete object.
  ProgressSnapshot s;
  s.samples_per_sec = 1e308;
  s.eta_seconds = 1e308;
  const std::string j = JsonlProgress::to_json(s);
  EXPECT_GT(j.size(), 512u);
  EXPECT_NE(j.find("\"done\":false}"), std::string::npos);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 1);
  EXPECT_EQ(std::count(j.begin(), j.end(), '}'), 1);
  EXPECT_EQ(j.back(), '}');
}

}  // namespace
}  // namespace gras::orchestrator
