// Journal v3: the header carries the writing binary's build provenance,
// the fingerprint deliberately ignores it (resume/merge across rebuilds),
// and v2 journals — no build string — still read and resume cleanly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/build_info.h"
#include "src/orchestrator/journal.h"

namespace gras::orchestrator {
namespace {

std::filesystem::path temp_journal(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_journal_v3_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

JournalHeader example_header() {
  JournalHeader h;
  h.app = "va";
  h.kernel = "va_k1";
  h.config = "gv100-scaled";
  h.target = "RF";
  h.build = "gras feedc0ffee12 Release (gcc 13.2.0)";
  h.samples = 50;
  h.seed = 7;
  h.margin = 0.0;
  h.confidence = 0.99;
  return h;
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Hand-builds a v2 journal header (version field = 2, no build string) —
/// the bytes an older build would have written — with zero records.
std::string build_v2_header(const JournalHeader& h) {
  std::string out;
  out.append("GRASJRN1", 8);
  const auto u32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
  };
  const auto u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto f64 = [&out](double v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto str = [&](const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  };
  u32(2);  // version
  u32(h.shard_index);
  u32(h.shard_count);
  u32(0);  // reserved
  u64(h.samples);
  u64(h.seed);
  f64(h.margin);
  f64(h.confidence);
  str(h.app);
  str(h.kernel);
  str(h.config);
  str(h.target);
  // v2 ends here: no build string before the checksum.
  u64(fnv1a(out.data(), out.size()));
  return out;
}

TEST(JournalV3, BuildProvenanceRoundTrips) {
  const auto path = temp_journal("v3_build.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, example_header());
    ASSERT_NE(writer, nullptr);
    JournalRecord r;
    r.index = 0;
    r.cycles = 1234;
    writer->append(r);
    writer->sync();
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, kJournalVersion);
  EXPECT_EQ(contents->header.build, example_header().build);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].cycles, 1234u);
}

TEST(JournalV3, FingerprintIgnoresBuild) {
  const JournalHeader a = example_header();
  JournalHeader b = example_header();
  b.build = "gras 0123456789ab Debug (clang 17.0.1)";
  // Same campaign run by a different binary: still resumable/mergeable.
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_TRUE(a.same_campaign(b));
  // But the identity fields still matter.
  JournalHeader c = example_header();
  c.seed = a.seed + 1;
  EXPECT_FALSE(a.same_campaign(c));
}

TEST(JournalV3, ResumedV2JournalKeepsItsVersionAndEmptyBuild) {
  const auto path = temp_journal("v2_resumed.jrnl");
  std::ofstream(path, std::ios::binary) << build_v2_header(example_header());
  auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->version, 2u);
  EXPECT_TRUE(contents->header.build.empty());
  EXPECT_TRUE(contents->header.same_campaign(example_header()));
  {
    auto writer = JournalWriter::open_resumed(path, *contents);
    ASSERT_NE(writer, nullptr);
    JournalRecord r;
    r.index = 0;
    r.cycles = 99;
    writer->append(r);
    writer->sync();
  }
  const auto reread = read_journal(path);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->version, 2u);  // resuming never upgrades the file
  EXPECT_TRUE(reread->header.build.empty());
  EXPECT_EQ(reread->dropped_bytes, 0u);
  ASSERT_EQ(reread->records.size(), 1u);
  EXPECT_EQ(reread->records[0].cycles, 99u);
}

TEST(JournalV3, OrchestratorStampsTheRunningBuild) {
  // open_fresh writes whatever the header carries; the orchestrator fills
  // it from build_summary(). Mirror that here and check the round trip.
  JournalHeader h = example_header();
  h.build = build_summary();
  const auto path = temp_journal("v3_stamped.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, h);
    ASSERT_NE(writer, nullptr);
    writer->sync();
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->header.build, build_summary());
}

}  // namespace
}  // namespace gras::orchestrator
