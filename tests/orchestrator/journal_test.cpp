// Journal file-format robustness: round trips, torn tails, bit flips,
// damaged headers, campaign fingerprints.
#include "src/orchestrator/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace gras::orchestrator {
namespace {

std::filesystem::path temp_journal(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_journal_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

JournalHeader example_header() {
  JournalHeader h;
  h.app = "va";
  h.kernel = "va_k1";
  h.config = "gv100-scaled";
  h.target = "RF";
  h.samples = 100;
  h.seed = 2024;
  h.shard_index = 0;
  h.shard_count = 1;
  h.margin = 0.0;
  h.confidence = 0.99;
  return h;
}

JournalRecord example_record(std::uint64_t index) {
  JournalRecord r;
  r.index = index;
  r.cycles = 1000 + index;
  r.outcome = static_cast<fi::Outcome>(index % 4);
  r.injected = index % 2 == 0;
  r.control_path = index % 3 == 0;
  return r;
}

void write_records(const std::filesystem::path& path, std::uint64_t n) {
  auto writer = JournalWriter::open_fresh(path, example_header());
  ASSERT_NE(writer, nullptr);
  for (std::uint64_t i = 0; i < n; ++i) writer->append(example_record(i));
  writer->sync();
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, RoundTripsHeaderAndRecords) {
  const auto path = temp_journal("roundtrip.jrnl");
  write_records(path, 10);
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_TRUE(contents->header.same_campaign(example_header()));
  EXPECT_EQ(contents->header.app, "va");
  EXPECT_EQ(contents->header.kernel, "va_k1");
  EXPECT_EQ(contents->header.target, "RF");
  EXPECT_EQ(contents->header.samples, 100u);
  ASSERT_EQ(contents->records.size(), 10u);
  EXPECT_EQ(contents->dropped_bytes, 0u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const JournalRecord& r = contents->records[i];
    const JournalRecord want = example_record(i);
    EXPECT_EQ(r.index, want.index);
    EXPECT_EQ(r.cycles, want.cycles);
    EXPECT_EQ(r.outcome, want.outcome);
    EXPECT_EQ(r.injected, want.injected);
    EXPECT_EQ(r.control_path, want.control_path);
  }
}

TEST(Journal, MissingFileIsNullopt) {
  EXPECT_FALSE(read_journal(temp_journal("never_written.jrnl")).has_value());
}

TEST(Journal, TornTailRecordIsDropped) {
  const auto path = temp_journal("torn.jrnl");
  write_records(path, 8);
  const std::string bytes = slurp(path);
  // Cut mid-record, as a SIGKILL during the final write would.
  spit(path, bytes.substr(0, bytes.size() - kRecordBytes / 2));
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 7u);
  EXPECT_EQ(contents->dropped_bytes, kRecordBytes / 2);
  EXPECT_EQ(contents->valid_bytes + contents->dropped_bytes,
            std::filesystem::file_size(path));
}

TEST(Journal, BitFlippedRecordDropsItAndTheTail) {
  const auto path = temp_journal("bitflip.jrnl");
  write_records(path, 8);
  std::string bytes = slurp(path);
  // Flip one bit inside record 5's payload; records 5..7 become untrusted.
  const std::size_t header_bytes = bytes.size() - 8 * kRecordBytes;
  bytes[header_bytes + 5 * kRecordBytes + 3] ^= 0x10;
  spit(path, bytes);
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 5u);
  EXPECT_EQ(contents->dropped_bytes, 3 * kRecordBytes);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(contents->records[i].index, i);
  }
}

TEST(Journal, DamagedHeaderInvalidatesTheJournal) {
  const auto path = temp_journal("bad_header.jrnl");
  write_records(path, 4);
  std::string bytes = slurp(path);
  bytes[12] ^= 0x01;  // inside the fixed header fields
  spit(path, bytes);
  EXPECT_FALSE(read_journal(path).has_value());
}

TEST(Journal, TruncatedHeaderInvalidatesTheJournal) {
  const auto path = temp_journal("short_header.jrnl");
  write_records(path, 4);
  spit(path, slurp(path).substr(0, 20));
  EXPECT_FALSE(read_journal(path).has_value());
}

TEST(Journal, EarlyStopMarkerIsSurfacedSeparately) {
  const auto path = temp_journal("early_stop.jrnl");
  auto writer = JournalWriter::open_fresh(path, example_header());
  ASSERT_NE(writer, nullptr);
  for (std::uint64_t i = 0; i < 3; ++i) writer->append(example_record(i));
  JournalRecord marker;
  marker.kind = JournalRecord::kEarlyStop;
  marker.index = 3;
  writer->append(marker);
  writer->sync();
  writer.reset();
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 3u);
  ASSERT_TRUE(contents->early_stop_consumed.has_value());
  EXPECT_EQ(*contents->early_stop_consumed, 3u);
}

TEST(Journal, ResumedWriterTruncatesTheTailAndAppends) {
  const auto path = temp_journal("resumed.jrnl");
  write_records(path, 6);
  std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 10));  // torn tail
  auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), 5u);
  auto writer = JournalWriter::open_resumed(path, *contents);
  ASSERT_NE(writer, nullptr);
  writer->append(example_record(5));
  writer->append(example_record(6));
  writer->sync();
  writer.reset();
  const auto reread = read_journal(path);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->records.size(), 7u);
  EXPECT_EQ(reread->dropped_bytes, 0u);
  EXPECT_EQ(reread->records[6].index, 6u);
}

TEST(Journal, FingerprintSeparatesCampaigns) {
  const JournalHeader base = example_header();
  JournalHeader other = base;
  other.kernel = "va_k2";
  EXPECT_FALSE(base.same_campaign(other));
  other = base;
  other.seed = 7;
  EXPECT_FALSE(base.same_campaign(other));
  other = base;
  other.samples = 101;
  EXPECT_FALSE(base.same_campaign(other));
  other = base;
  other.margin = 0.05;
  EXPECT_FALSE(base.same_campaign(other));
  // Shard position is deliberately not part of the campaign identity.
  other = base;
  other.shard_index = 1;
  other.shard_count = 2;
  EXPECT_TRUE(base.same_campaign(other));
}

}  // namespace
}  // namespace gras::orchestrator
