// Journal v4: per-record fault-site equivalence-class provenance (class id +
// population weight) for pruned campaigns. The version matrix below checks
// that v1..v4 files all read through the same API, that writers append in
// the version of the file they resume (never upgrading it), and that the
// class fields survive exactly where the format can carry them.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/orchestrator/journal.h"

namespace gras::orchestrator {
namespace {

std::filesystem::path temp_journal(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_journal_v4_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

JournalHeader example_header() {
  JournalHeader h;
  h.app = "va";
  h.kernel = "va_k1";
  h.config = "gv100-scaled";
  h.target = "SVF";
  h.samples = 64;
  h.seed = 2024;
  h.margin = 0.0;
  h.confidence = 0.99;
  return h;
}

/// A pruned-campaign record: class provenance plus the usual v2 payload.
JournalRecord pruned_record(std::uint64_t index) {
  JournalRecord r;
  r.index = index;
  r.cycles = 7000 + index;
  r.outcome = fi::Outcome::SDC;
  r.injected = true;
  r.fault.level = fi::FaultLevel::Software;
  r.fault.structure = fi::Structure::RF;
  r.fault.site = 40 + index;
  r.fault.bit = 11;
  r.fault.width = 1;
  r.has_signature = true;
  r.signature.words_total = 1024;
  r.signature.words_mismatched = 3;
  r.class_id = static_cast<std::uint32_t>(100 + index);
  r.class_weight = 5000 + index;
  return r;
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Hand-builds a record-free journal header of any past version — the bytes
/// an older build would have written (v1/v2: no build string; v3: build
/// string before the checksum).
std::string build_old_header(std::uint32_t version, const JournalHeader& h) {
  std::string out;
  out.append("GRASJRN1", 8);
  const auto u32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
  };
  const auto u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto f64 = [&out](double v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto str = [&](const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  };
  u32(version);
  u32(h.shard_index);
  u32(h.shard_count);
  u32(0);  // reserved
  u64(h.samples);
  u64(h.seed);
  f64(h.margin);
  f64(h.confidence);
  str(h.app);
  str(h.kernel);
  str(h.config);
  str(h.target);
  if (version >= 3) str(h.build);
  u64(fnv1a(out.data(), out.size()));
  return out;
}

/// Creates a journal of the requested on-disk version holding `n` pruned
/// records: fresh for the current version, a hand-built old header resumed
/// by the writer (which appends in the file's own version) otherwise.
std::filesystem::path make_versioned_journal(std::uint32_t version, const char* name,
                                             std::uint64_t n) {
  const auto path = temp_journal(name);
  std::unique_ptr<JournalWriter> writer;
  if (version == kJournalVersion) {
    writer = JournalWriter::open_fresh(path, example_header());
  } else {
    std::ofstream(path, std::ios::binary) << build_old_header(version, example_header());
    const auto contents = read_journal(path);
    EXPECT_TRUE(contents.has_value());
    EXPECT_EQ(contents->version, version);
    writer = JournalWriter::open_resumed(path, *contents);
  }
  EXPECT_NE(writer, nullptr);
  for (std::uint64_t i = 0; i < n; ++i) writer->append(pruned_record(i));
  writer->sync();
  return path;
}

TEST(JournalV4, VersionMatrixReadsUniformly) {
  const struct {
    std::uint32_t version;
    const char* name;
    std::size_t record_bytes;
  } cases[] = {
      {1, "matrix_v1.jrnl", kRecordBytesV1},
      {2, "matrix_v2.jrnl", kRecordBytesV2},
      {3, "matrix_v3.jrnl", kRecordBytesV2},
      {4, "matrix_v4.jrnl", kRecordBytes},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.version);
    const auto path = make_versioned_journal(c.version, c.name, 3);
    const auto contents = read_journal(path);
    ASSERT_TRUE(contents.has_value());
    EXPECT_EQ(contents->version, c.version);
    EXPECT_EQ(record_bytes_of(c.version), c.record_bytes);
    EXPECT_EQ(contents->dropped_bytes, 0u);
    EXPECT_TRUE(contents->header.same_campaign(example_header()));
    ASSERT_EQ(contents->records.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
      const JournalRecord& r = contents->records[i];
      // The core sample identity reads identically from every version.
      EXPECT_EQ(r.index, i);
      EXPECT_EQ(r.cycles, 7000 + i);
      EXPECT_EQ(r.outcome, fi::Outcome::SDC);
      EXPECT_TRUE(r.injected);
      if (c.version >= 2) {
        EXPECT_EQ(r.fault.level, fi::FaultLevel::Software);
        EXPECT_EQ(r.fault.site, 40 + i);
        ASSERT_TRUE(r.has_signature);
        EXPECT_EQ(r.signature.words_mismatched, 3u);
      }
      if (c.version >= 4) {
        EXPECT_EQ(r.class_id, 100 + i);
        EXPECT_EQ(r.class_weight, 5000 + i);
      } else {
        // Older layouts cannot carry class provenance: defaults on read.
        EXPECT_EQ(r.class_id, 0u);
        EXPECT_EQ(r.class_weight, 0u);
      }
    }
  }
}

TEST(JournalV4, FreshJournalsAreV4) {
  const auto path = temp_journal("fresh_is_v4.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, example_header());
    ASSERT_NE(writer, nullptr);
    writer->append(pruned_record(0));
    writer->sync();
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, 4u);
  EXPECT_EQ(kJournalVersion, 4u);
}

TEST(JournalV4, ResumedV3JournalStaysV3AndDropsClassFields) {
  const auto path = make_versioned_journal(3, "v3_stays_v3.jrnl", 2);
  const auto size_after = std::filesystem::file_size(path);
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, 3u);
  // Two 228-byte v2-layout records were appended — not 240-byte v4 ones.
  EXPECT_EQ(size_after, contents->valid_bytes);
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[1].class_id, 0u);
  EXPECT_EQ(contents->records[1].class_weight, 0u);
}

TEST(JournalV4, UnprunedRecordsCarryZeroWeight) {
  // Weight 0 is the "unpruned record" sentinel: a default-constructed record
  // round-trips it untouched, so brute-force campaigns need no special case.
  const auto path = temp_journal("unpruned_zero.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, example_header());
    ASSERT_NE(writer, nullptr);
    JournalRecord r;
    r.index = 9;
    writer->append(r);
    writer->sync();
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].class_id, 0u);
  EXPECT_EQ(contents->records[0].class_weight, 0u);
}

TEST(JournalV4, WireCodecCarriesClassProvenance) {
  // encode/decode_record is the fabric's frame codec; it must speak v4 so a
  // pruned record crosses the network bit-identical to its on-disk form.
  char buf[kRecordBytes];
  const JournalRecord want = pruned_record(7);
  encode_record(want, buf);
  JournalRecord got;
  ASSERT_TRUE(decode_record(buf, got));
  EXPECT_EQ(got.index, want.index);
  EXPECT_EQ(got.class_id, want.class_id);
  EXPECT_EQ(got.class_weight, want.class_weight);
  // Damage inside the class fields must fail the checksum, not pass through.
  buf[230] ^= 0x01;
  EXPECT_FALSE(decode_record(buf, got));
}

TEST(JournalV4, BitFlippedV4RecordDropsTail) {
  const auto path = make_versioned_journal(4, "v4_bitflip.jrnl", 4);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t header_bytes = bytes.size() - 4 * kRecordBytes;
  bytes[header_bytes + 2 * kRecordBytes + 228] ^= 0x10;  // inside class_weight
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->dropped_bytes, 2 * kRecordBytes);
}

}  // namespace
}  // namespace gras::orchestrator
