// Journal v2 format: fault provenance + SDC signature round trips, and
// backward compatibility with v1 journals (read and append-in-place).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/orchestrator/journal.h"

namespace gras::orchestrator {
namespace {

std::filesystem::path temp_journal(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_journal_v2_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

JournalHeader example_header() {
  JournalHeader h;
  h.app = "va";
  h.kernel = "va_k1";
  h.config = "gv100-scaled";
  h.target = "RF";
  h.samples = 100;
  h.seed = 2024;
  h.margin = 0.0;
  h.confidence = 0.99;
  return h;
}

/// A record exercising every v2 field.
JournalRecord full_record(std::uint64_t index) {
  JournalRecord r;
  r.index = index;
  r.cycles = 5000 + index;
  r.outcome = fi::Outcome::SDC;
  r.injected = true;
  r.fault.level = fi::FaultLevel::Microarch;
  r.fault.structure = fi::Structure::SMEM;
  r.fault.sm = 3;
  r.fault.site = 0xdeadbeefULL + index;
  r.fault.bit = 5;
  r.fault.width = 3;
  r.fault.trigger = 123456 + index;
  r.fault.launch = 2;
  r.has_signature = true;
  r.signature.words_total = 4096;
  r.signature.words_mismatched = 7;
  r.signature.buffers_affected = 2;
  r.signature.first_word = 100 + index;
  r.signature.last_word = 900;
  r.signature.max_rel_error = 0.125;
  r.signature.bit_flips[0] = 1;
  r.signature.bit_flips[17] = 4;
  r.signature.bit_flips[31] = 2;
  return r;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Hand-builds a v1 journal file: the v1 header (version field = 1) followed
/// by 24-byte v1 records — the format an older build would have written.
std::string build_v1_journal(const JournalHeader& h, std::uint64_t records) {
  std::string out;
  out.append("GRASJRN1", 8);
  const auto u32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
  };
  const auto u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto f64 = [&out](double v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  };
  const auto str = [&](const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  };
  u32(1);  // version
  u32(h.shard_index);
  u32(h.shard_count);
  u32(0);  // reserved
  u64(h.samples);
  u64(h.seed);
  f64(h.margin);
  f64(h.confidence);
  str(h.app);
  str(h.kernel);
  str(h.config);
  str(h.target);
  u64(fnv1a(out.data(), out.size()));
  for (std::uint64_t i = 0; i < records; ++i) {
    char rec[kRecordBytesV1] = {};
    const std::uint64_t cycles = 1000 + i;
    std::memcpy(rec, &i, 8);
    std::memcpy(rec + 8, &cycles, 8);
    rec[16] = static_cast<char>(i % 4);  // outcome
    rec[17] = 1;                         // injected
    const auto sum = static_cast<std::uint32_t>(fnv1a(rec, 20));
    std::memcpy(rec + 20, &sum, 4);
    out.append(rec, kRecordBytesV1);
  }
  return out;
}

TEST(JournalV2, RoundTripsProvenanceAndSignature) {
  const auto path = temp_journal("v2_roundtrip.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, example_header());
    ASSERT_NE(writer, nullptr);
    for (std::uint64_t i = 0; i < 5; ++i) writer->append(full_record(i));
    writer->sync();
  }
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, kJournalVersion);
  ASSERT_EQ(contents->records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const JournalRecord& r = contents->records[i];
    const JournalRecord want = full_record(i);
    EXPECT_EQ(r.index, want.index);
    EXPECT_EQ(r.cycles, want.cycles);
    EXPECT_EQ(r.outcome, want.outcome);
    EXPECT_EQ(r.fault.level, want.fault.level);
    EXPECT_EQ(r.fault.structure, want.fault.structure);
    EXPECT_EQ(r.fault.sm, want.fault.sm);
    EXPECT_EQ(r.fault.site, want.fault.site);
    EXPECT_EQ(r.fault.bit, want.fault.bit);
    EXPECT_EQ(r.fault.width, want.fault.width);
    EXPECT_EQ(r.fault.trigger, want.fault.trigger);
    EXPECT_EQ(r.fault.launch, want.fault.launch);
    ASSERT_TRUE(r.has_signature);
    EXPECT_EQ(r.signature.words_total, want.signature.words_total);
    EXPECT_EQ(r.signature.words_mismatched, want.signature.words_mismatched);
    EXPECT_EQ(r.signature.buffers_affected, want.signature.buffers_affected);
    EXPECT_EQ(r.signature.first_word, want.signature.first_word);
    EXPECT_EQ(r.signature.last_word, want.signature.last_word);
    EXPECT_EQ(r.signature.max_rel_error, want.signature.max_rel_error);
    EXPECT_EQ(r.signature.bit_flips, want.signature.bit_flips);
  }
}

TEST(JournalV2, ReadsV1Journals) {
  const auto path = temp_journal("v1_readable.jrnl");
  spit(path, build_v1_journal(example_header(), 6));
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, 1u);
  EXPECT_TRUE(contents->header.same_campaign(example_header()));
  ASSERT_EQ(contents->records.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(contents->records[i].index, i);
    EXPECT_EQ(contents->records[i].cycles, 1000 + i);
    // v1 carries no provenance: the fault record stays at its default.
    EXPECT_EQ(contents->records[i].fault.level, fi::FaultLevel::None);
    EXPECT_FALSE(contents->records[i].has_signature);
  }
}

TEST(JournalV2, ResumedV1JournalKeepsAppendingV1Records) {
  const auto path = temp_journal("v1_resumed.jrnl");
  spit(path, build_v1_journal(example_header(), 3));
  auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->version, 1u);
  {
    auto writer = JournalWriter::open_resumed(path, *contents);
    ASSERT_NE(writer, nullptr);
    writer->append(full_record(3));  // v2-rich record, serialized as v1
    writer->sync();
  }
  // The appended record must be a 24-byte v1 record, and the whole file must
  // still parse as v1 with no dropped tail.
  EXPECT_EQ(std::filesystem::file_size(path),
            contents->valid_bytes + kRecordBytesV1);
  const auto reread = read_journal(path);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->version, 1u);
  EXPECT_EQ(reread->dropped_bytes, 0u);
  ASSERT_EQ(reread->records.size(), 4u);
  EXPECT_EQ(reread->records[3].index, 3u);
  EXPECT_EQ(reread->records[3].outcome, fi::Outcome::SDC);
  // Provenance and signature are not representable in v1 and are dropped.
  EXPECT_EQ(reread->records[3].fault.level, fi::FaultLevel::None);
  EXPECT_FALSE(reread->records[3].has_signature);
}

TEST(JournalV2, UnknownVersionIsRejected) {
  const auto path = temp_journal("future_version.jrnl");
  std::string bytes = build_v1_journal(example_header(), 1);
  // Patch the version field to a future value; the header checksum must be
  // recomputed or the reader would reject on damage instead of version.
  const std::uint32_t future = kJournalVersion + 1;
  std::memcpy(bytes.data() + 8, &future, 4);
  const std::size_t body = bytes.size() - kRecordBytesV1 - 8;
  const std::uint64_t sum = fnv1a(bytes.data(), body);
  std::memcpy(bytes.data() + body, &sum, 8);
  spit(path, bytes);
  EXPECT_FALSE(read_journal(path).has_value());
}

TEST(JournalV2, BitFlippedV2RecordDropsTail) {
  const auto path = temp_journal("v2_bitflip.jrnl");
  {
    auto writer = JournalWriter::open_fresh(path, example_header());
    ASSERT_NE(writer, nullptr);
    for (std::uint64_t i = 0; i < 4; ++i) writer->append(full_record(i));
    writer->sync();
  }
  std::string bytes = slurp(path);
  const std::size_t header_bytes = bytes.size() - 4 * kRecordBytes;
  bytes[header_bytes + 2 * kRecordBytes + 100] ^= 0x40;  // inside signature
  spit(path, bytes);
  const auto contents = read_journal(path);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->dropped_bytes, 2 * kRecordBytes);
}

TEST(JournalV2, FsyncParentDirHandlesExistingAndMissingDirs) {
  EXPECT_TRUE(fsync_parent_dir(temp_journal("any_name.jrnl")));
  EXPECT_FALSE(fsync_parent_dir(
      std::filesystem::temp_directory_path() / "gras_no_such_dir_xyz" / "f"));
}

}  // namespace
}  // namespace gras::orchestrator
