// Progress machinery under an injectable fake clock — no real sleeps:
// RateTracker throughput/ETA math, StderrProgress throttling, and the
// JsonlProgress stream shape (build record first, metrics records
// interleaving with progress records at the configured interval).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/orchestrator/progress.h"

namespace gras::orchestrator {
namespace {

std::filesystem::path temp_jsonl(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_progress_clock_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);  // JsonlProgress appends
  return path;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The "type" tag of one JSONL record ("build", "progress", "metrics").
std::string type_of(const std::string& line) {
  const std::string pat = "{\"type\":\"";
  if (line.rfind(pat, 0) != 0) return "";
  const std::size_t end = line.find('"', pat.size());
  return end == std::string::npos ? "" : line.substr(pat.size(), end - pat.size());
}

TEST(RateTrackerFakeClock, RateAndEtaFollowTheClock) {
  double t = 100.0;
  RateTracker tracker([&t] { return t; });
  // No time has passed: rate and ETA are unknown, reported as 0.
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.rate(10), 0.0);
  EXPECT_DOUBLE_EQ(tracker.eta(10, 90), 0.0);

  t = 104.0;  // 4 seconds, 10 samples -> 2.5/s; 90 remaining -> 36 s
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 4.0);
  EXPECT_DOUBLE_EQ(tracker.rate(10), 2.5);
  EXPECT_DOUBLE_EQ(tracker.eta(10, 90), 36.0);
  EXPECT_DOUBLE_EQ(tracker.eta(0, 90), 0.0);  // nothing done yet: no rate

  tracker.reset();  // window restarts at t=104
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 0.0);
  t = 106.0;
  EXPECT_DOUBLE_EQ(tracker.rate(4), 2.0);
}

TEST(RateTrackerFakeClock, BackwardsClockClampsToZero) {
  double t = 50.0;
  RateTracker tracker([&t] { return t; });
  t = 49.0;  // e.g. a reset racing a stale reading
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.rate(5), 0.0);
  EXPECT_DOUBLE_EQ(tracker.eta(5, 5), 0.0);
}

TEST(StderrProgressFakeClock, ThrottlesIntermediateSnapshots) {
  double t = 0.0;
  StderrProgress sink(0.5, [&t] { return t; });
  ProgressSnapshot s;
  s.total = 100;

  const auto emit_at = [&](double when, std::uint64_t completed, bool done) {
    t = when;
    s.completed = completed;
    s.done = done;
    ::testing::internal::CaptureStderr();
    sink.on_progress(s);
    return ::testing::internal::GetCapturedStderr();
  };

  EXPECT_FALSE(emit_at(0.0, 10, false).empty());  // first snapshot always prints
  EXPECT_TRUE(emit_at(0.2, 20, false).empty());   // 0.2 s since last: throttled
  EXPECT_TRUE(emit_at(0.49, 30, false).empty());
  EXPECT_FALSE(emit_at(0.5, 40, false).empty());  // interval reached
  EXPECT_TRUE(emit_at(0.6, 50, false).empty());
  // The final snapshot always prints, throttle or not, with a newline.
  const std::string last = emit_at(0.61, 100, true);
  ASSERT_FALSE(last.empty());
  EXPECT_EQ(last.back(), '\n');
}

TEST(JsonlProgressFakeClock, MetricsRecordsInterleaveAtTheInterval) {
  telemetry::counter("test.pc.samples").reset();
  double t = 0.0;
  const auto path = temp_jsonl("interleave.jsonl");
  {
    JsonlProgress sink(path.string(), 2.0, [&t] { return t; });
    ProgressSnapshot s;
    s.total = 40;
    const auto emit = [&](double when, std::uint64_t completed, bool done) {
      t = when;
      s.completed = completed;
      s.done = done;
      telemetry::counter("test.pc.samples").add(10);
      sink.on_progress(s);
    };
    emit(0.0, 10, false);  // first: metrics (nothing emitted yet)
    emit(1.0, 20, false);  // 1 s since last metrics: progress only
    emit(2.0, 30, false);  // interval reached: metrics again
    emit(2.5, 40, true);   // done: metrics always
  }

  const std::vector<std::string> lines = read_lines(path);
  std::vector<std::string> types;
  types.reserve(lines.size());
  for (const std::string& line : lines) types.push_back(type_of(line));
  EXPECT_EQ(types, (std::vector<std::string>{"build", "progress", "metrics",
                                             "progress", "progress", "metrics",
                                             "progress", "metrics"}));

  // The build record carries provenance keys; each metrics record is tied to
  // the progress record that triggered it and embeds a registry snapshot.
  EXPECT_NE(lines[0].find("\"git_sha\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[2].find("\"completed\":10"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"test.pc.samples\":10"), std::string::npos) << lines[2];
  EXPECT_NE(lines[5].find("\"completed\":30"), std::string::npos) << lines[5];
  EXPECT_NE(lines[5].find("\"test.pc.samples\":30"), std::string::npos) << lines[5];
  EXPECT_NE(lines[7].find("\"completed\":40"), std::string::npos) << lines[7];
}

TEST(JsonlProgressFakeClock, ZeroIntervalDisablesMetricsRecords) {
  double t = 0.0;
  const auto path = temp_jsonl("no_metrics.jsonl");
  {
    JsonlProgress sink(path.string(), 0.0, [&t] { return t; });
    ProgressSnapshot s;
    s.total = 10;
    s.completed = 10;
    s.done = true;
    t = 100.0;
    sink.on_progress(s);  // even the final snapshot emits no metrics record
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(type_of(lines[0]), "build");
  EXPECT_EQ(type_of(lines[1]), "progress");
}

}  // namespace
}  // namespace gras::orchestrator
