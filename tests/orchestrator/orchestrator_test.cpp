// Durable orchestrator tests: crash/resume bit-exactness, shard merging,
// margin-driven early stop, progress snapshots, cache routing.
#include "src/orchestrator/orchestrator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/orchestrator/cache.h"
#include "src/workloads/workload.h"

namespace gras::orchestrator {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "gras_orch_test";
  std::filesystem::create_directories(dir);
  return dir;
}

campaign::CampaignSpec spec_of(campaign::Target target, std::uint64_t samples) {
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = target;
  spec.samples = samples;
  spec.seed = 2024;
  return spec;
}

void expect_same_result(const campaign::CampaignResult& a,
                        const campaign::CampaignResult& b) {
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.timeout, b.counts.timeout);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.control_path_masked, b.control_path_masked);
  EXPECT_EQ(a.injected, b.injected);
}

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = workloads::make_benchmark("va");
    golden_ = campaign::run_golden(*app_, config());
  }

  std::unique_ptr<workloads::App> app_;
  campaign::GoldenRun golden_;
  ThreadPool pool_{4};
};

TEST_F(OrchestratorTest, MatchesInMemoryCampaign) {
  const auto spec = spec_of(campaign::Target::RF, 80);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  DurableOptions options;
  options.journal = temp_dir() / "match.jrnl";
  options.resume = false;
  const auto durable = run_durable(*app_, config(), golden_, spec, pool_, options);
  expect_same_result(durable.result, reference);
  EXPECT_EQ(durable.executed, 80u);
  EXPECT_EQ(durable.replayed, 0u);
  EXPECT_FALSE(durable.early_stopped);

  DurableOptions in_memory;
  in_memory.journaled = false;
  const auto unjournaled =
      run_durable(*app_, config(), golden_, spec, pool_, in_memory);
  expect_same_result(unjournaled.result, reference);
  EXPECT_TRUE(unjournaled.journal.empty());
}

TEST_F(OrchestratorTest, KillAndResumeIsBitIdentical) {
  const auto spec = spec_of(campaign::Target::Svf, 70);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  const auto path = temp_dir() / "killed.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  run_durable(*app_, config(), golden_, spec, pool_, options);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // A SIGKILL leaves an arbitrary prefix, possibly mid-record. Replay from
  // several cut points, including one that also flips a bit in the tail.
  const std::size_t header_bytes = bytes.size() - spec.samples * kRecordBytes;
  const std::size_t cuts[] = {header_bytes, header_bytes + 3,
                              header_bytes + 17 * kRecordBytes,
                              header_bytes + 41 * kRecordBytes + 11,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    DurableOptions resume;
    resume.journal = path;
    resume.resume = true;
    const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
    expect_same_result(resumed.result, reference);
    EXPECT_EQ(resumed.replayed + resumed.executed, 70u) << "cut at " << cut;
  }

  // Bit-flip damage inside a record: the damaged suffix is re-run.
  std::string flipped = bytes;
  flipped[header_bytes + 20 * kRecordBytes + 9] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  DurableOptions resume;
  resume.journal = path;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
  expect_same_result(resumed.result, reference);
  EXPECT_EQ(resumed.replayed, 20u);
  EXPECT_EQ(resumed.executed, 50u);
}

TEST_F(OrchestratorTest, ResumeRejectsADifferentCampaign) {
  const auto path = temp_dir() / "mismatch.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  run_durable(*app_, config(), golden_, spec_of(campaign::Target::RF, 30), pool_,
              options);
  DurableOptions resume;
  resume.journal = path;
  resume.resume = true;
  auto other = spec_of(campaign::Target::RF, 30);
  other.seed = 7;
  EXPECT_THROW(run_durable(*app_, config(), golden_, other, pool_, resume),
               std::runtime_error);
}

TEST_F(OrchestratorTest, ShardsMergeToTheUnshardedHistogram) {
  const auto spec = spec_of(campaign::Target::RF, 90);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  for (const std::uint32_t shards : {2u, 4u}) {
    std::vector<std::filesystem::path> journals;
    std::uint64_t total_executed = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
      DurableOptions options;
      options.journal = temp_dir() / ("shard." + std::to_string(shards) + "." +
                                      std::to_string(i) + ".jrnl");
      options.resume = false;
      options.shard = ShardSpec{i, shards};
      const auto r = run_durable(*app_, config(), golden_, spec, pool_, options);
      total_executed += r.executed;
      journals.push_back(options.journal);
    }
    EXPECT_EQ(total_executed, 90u);
    const MergedCampaign merged = merge_shards(journals);
    expect_same_result(merged.result, reference);
    EXPECT_EQ(merged.header.shard_count, shards);
    EXPECT_FALSE(merged.early_stopped);
    EXPECT_EQ(merged.result.spec.kernel, "va_k1");
    EXPECT_EQ(merged.result.spec.target, campaign::Target::RF);
  }
}

TEST_F(OrchestratorTest, MergeRejectsBadShardSets) {
  const auto spec = spec_of(campaign::Target::RF, 40);
  std::vector<std::filesystem::path> journals;
  for (std::uint32_t i = 0; i < 2; ++i) {
    DurableOptions options;
    options.journal = temp_dir() / ("merge_bad." + std::to_string(i) + ".jrnl");
    options.resume = false;
    options.shard = ShardSpec{i, 2};
    run_durable(*app_, config(), golden_, spec, pool_, options);
    journals.push_back(options.journal);
  }
  // Missing shard.
  EXPECT_THROW(merge_shards({journals[0]}), std::runtime_error);
  // Duplicate shard.
  EXPECT_THROW(merge_shards({journals[0], journals[0]}), std::runtime_error);
  // Foreign journal in the set (different campaign).
  DurableOptions other;
  other.journal = temp_dir() / "merge_bad.other.jrnl";
  other.resume = false;
  other.shard = ShardSpec{1, 2};
  auto other_spec = spec;
  other_spec.seed = 99;
  run_durable(*app_, config(), golden_, other_spec, pool_, other);
  EXPECT_THROW(merge_shards({journals[0], other.journal}), std::runtime_error);
  // Incomplete shard: cut half of shard 1's records off.
  const auto size = std::filesystem::file_size(journals[1]);
  std::filesystem::resize_file(journals[1], size - 5 * kRecordBytes);
  EXPECT_THROW(merge_shards({journals[0], journals[1]}), std::runtime_error);
}

TEST_F(OrchestratorTest, EarlyStopIsDeterministicAndResumable) {
  // VA / SVF fails almost always, so a loose margin is reached quickly.
  auto spec = spec_of(campaign::Target::Svf, 2000);
  const auto path = temp_dir() / "early.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  options.margin = 0.10;
  options.chunk = 32;
  const auto first = run_durable(*app_, config(), golden_, spec, pool_, options);
  EXPECT_TRUE(first.early_stopped);
  EXPECT_LT(first.result.counts.total(), 2000u);
  EXPECT_EQ(first.result.counts.total() % 32, 0u);  // chunk-boundary stop
  EXPECT_LE(first.result.fr_ci(options.confidence).margin(), 0.10);

  // Identical decisions with a different thread count.
  ThreadPool one(1);
  DurableOptions fresh = options;
  fresh.journal = temp_dir() / "early_one_thread.jrnl";
  const auto serial = run_durable(*app_, config(), golden_, spec, one, fresh);
  EXPECT_EQ(serial.result.counts.total(), first.result.counts.total());
  expect_same_result(serial.result, first.result);

  // Resuming a finished early-stopped journal replays without executing.
  DurableOptions resume = options;
  resume.resume = true;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
  EXPECT_TRUE(resumed.early_stopped);
  EXPECT_EQ(resumed.executed, 0u);
  expect_same_result(resumed.result, first.result);

  // A killed early-stopped campaign resumes to the same stop point.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const auto rekilled = run_durable(*app_, config(), golden_, spec, pool_, resume);
  EXPECT_TRUE(rekilled.early_stopped);
  expect_same_result(rekilled.result, first.result);
}

TEST_F(OrchestratorTest, ProgressSnapshotsArriveInOrder) {
  struct Capture : ProgressSink {
    std::vector<ProgressSnapshot> snapshots;
    void on_progress(const ProgressSnapshot& s) override { snapshots.push_back(s); }
  } capture;

  const auto spec = spec_of(campaign::Target::RF, 100);
  DurableOptions options;
  options.journaled = false;
  options.chunk = 25;
  options.progress = &capture;
  run_durable(*app_, config(), golden_, spec, pool_, options);

  ASSERT_EQ(capture.snapshots.size(), 4u);  // one per chunk
  std::uint64_t prev = 0;
  for (const auto& s : capture.snapshots) {
    EXPECT_GT(s.completed, prev);
    prev = s.completed;
    EXPECT_EQ(s.total, 100u);
    EXPECT_EQ(s.counts.total(), s.completed);
  }
  EXPECT_TRUE(capture.snapshots.back().done);
  EXPECT_EQ(capture.snapshots.back().completed, 100u);

  const std::string json = JsonlProgress::to_json(capture.snapshots.back());
  EXPECT_NE(json.find("\"completed\":100"), std::string::npos);
  EXPECT_NE(json.find("\"done\":true"), std::string::npos);
}

TEST_F(OrchestratorTest, MergeListsEveryProblemInOneError) {
  const auto spec = spec_of(campaign::Target::RF, 40);
  std::vector<std::filesystem::path> journals;
  for (std::uint32_t i = 0; i < 2; ++i) {
    DurableOptions options;
    options.journal = temp_dir() / ("merge_list." + std::to_string(i) + ".jrnl");
    options.resume = false;
    options.shard = ShardSpec{i, 2};
    run_durable(*app_, config(), golden_, spec, pool_, options);
    journals.push_back(options.journal);
  }
  DurableOptions foreign;
  foreign.journal = temp_dir() / "merge_list.foreign.jrnl";
  foreign.resume = false;
  foreign.shard = ShardSpec{1, 2};
  auto foreign_spec = spec;
  foreign_spec.seed = 99;
  run_durable(*app_, config(), golden_, foreign_spec, pool_, foreign);
  const auto size = std::filesystem::file_size(journals[1]);
  std::filesystem::resize_file(journals[1], size - 5 * kRecordBytes);

  // One invocation carrying four distinct problems: wrong journal count,
  // a duplicated shard 0, a foreign campaign, and a truncated shard 1. All
  // four must surface in a single error, each tagged with its file.
  try {
    merge_shards({journals[0], journals[0], foreign.journal, journals[1]});
    FAIL() << "merge_shards accepted a broken shard set";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 problem(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("2 shards but 4 journals"), std::string::npos) << what;
    EXPECT_NE(what.find("repeats shard 0/2 (duplicate journal?)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("fingerprint mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("seed 99"), std::string::npos) << what;
    EXPECT_NE(what.find("incomplete shard; resume it first"), std::string::npos)
        << what;
    EXPECT_NE(what.find(journals[0].string()), std::string::npos) << what;
    EXPECT_NE(what.find(journals[1].string()), std::string::npos) << what;
    EXPECT_NE(what.find(foreign.journal.string()), std::string::npos) << what;
  }
}

TEST_F(OrchestratorTest, ResumedCampaignEtaExcludesReplayTime) {
  const auto spec = spec_of(campaign::Target::RF, 70);
  const auto path = temp_dir() / "eta.jrnl";
  std::filesystem::remove(path);
  {
    // Single-threaded so the streamed journal is a clean index-order prefix
    // after truncation.
    ThreadPool one(1);
    DurableOptions options;
    options.journal = path;
    options.resume = false;
    run_durable(*app_, config(), golden_, spec, one, options);
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 30 * kRecordBytes);

  // Fake clock: the first reading (tracker construction at entry) is 0; all
  // later readings return `now`, which starts at 500 — as if replaying the
  // 40 journaled records took 500 seconds — and advances only from the
  // progress callback below.
  auto now = std::make_shared<double>(500.0);
  auto calls = std::make_shared<int>(0);
  struct Capture : ProgressSink {
    std::shared_ptr<double> now;
    std::vector<ProgressSnapshot> snapshots;
    void on_progress(const ProgressSnapshot& s) override {
      snapshots.push_back(s);
      if (s.completed == 50) *now = 505.0;
      if (s.completed == 60) *now = 510.0;
    }
  } capture;
  capture.now = now;

  DurableOptions resume;
  resume.journal = path;
  resume.resume = true;
  resume.chunk = 10;
  resume.progress = &capture;
  resume.clock = [now, calls] { return (*calls)++ == 0 ? 0.0 : *now; };
  const auto r = run_durable(*app_, config(), golden_, spec, pool_, resume);
  EXPECT_EQ(r.replayed, 40u);
  EXPECT_EQ(r.executed, 30u);

  ASSERT_EQ(capture.snapshots.size(), 7u);  // one per chunk of 10
  // Replay chunks report no throughput, and the first executed chunk opens
  // the measurement window (no time has passed inside it yet).
  EXPECT_EQ(capture.snapshots[3].samples_per_sec, 0.0);
  EXPECT_EQ(capture.snapshots[4].completed, 50u);
  EXPECT_EQ(capture.snapshots[4].samples_per_sec, 0.0);
  // 20 executed samples over the 5 seconds since the window opened: the 500
  // seconds spent replaying dilute neither the rate nor the ETA.
  EXPECT_EQ(capture.snapshots[5].completed, 60u);
  EXPECT_DOUBLE_EQ(capture.snapshots[5].samples_per_sec, 4.0);
  EXPECT_DOUBLE_EQ(capture.snapshots[5].eta_seconds, 2.5);
  EXPECT_DOUBLE_EQ(capture.snapshots[6].samples_per_sec, 3.0);
  EXPECT_DOUBLE_EQ(capture.snapshots[6].eta_seconds, 0.0);
  EXPECT_TRUE(capture.snapshots[6].done);
}

TEST_F(OrchestratorTest, CachedCampaignRoutesThroughTheOrchestrator) {
  const auto dir = temp_dir() / "cache_route";
  std::filesystem::remove_all(dir);
  ::setenv("GRAS_CACHE", dir.string().c_str(), 1);
  const auto spec = spec_of(campaign::Target::RF, 25);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);
  const auto cached = cached_campaign(*app_, config(), golden_, spec, pool_);
  expect_same_result(cached, reference);
  // The recovery journal is cleaned up once the result is memoized.
  EXPECT_TRUE(std::filesystem::is_empty(dir / "journals"));
  const auto again = cached_campaign(*app_, config(), golden_, spec, pool_);
  expect_same_result(again, reference);
  ::unsetenv("GRAS_CACHE");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gras::orchestrator
