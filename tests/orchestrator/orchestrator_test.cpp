// Durable orchestrator tests: crash/resume bit-exactness, shard merging,
// margin-driven early stop, progress snapshots, cache routing.
#include "src/orchestrator/orchestrator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/orchestrator/cache.h"
#include "src/workloads/workload.h"

namespace gras::orchestrator {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "gras_orch_test";
  std::filesystem::create_directories(dir);
  return dir;
}

campaign::CampaignSpec spec_of(campaign::Target target, std::uint64_t samples) {
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = target;
  spec.samples = samples;
  spec.seed = 2024;
  return spec;
}

void expect_same_result(const campaign::CampaignResult& a,
                        const campaign::CampaignResult& b) {
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.timeout, b.counts.timeout);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.control_path_masked, b.control_path_masked);
  EXPECT_EQ(a.injected, b.injected);
}

class OrchestratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = workloads::make_benchmark("va");
    golden_ = campaign::run_golden(*app_, config());
  }

  std::unique_ptr<workloads::App> app_;
  campaign::GoldenRun golden_;
  ThreadPool pool_{4};
};

TEST_F(OrchestratorTest, MatchesInMemoryCampaign) {
  const auto spec = spec_of(campaign::Target::RF, 80);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  DurableOptions options;
  options.journal = temp_dir() / "match.jrnl";
  options.resume = false;
  const auto durable = run_durable(*app_, config(), golden_, spec, pool_, options);
  expect_same_result(durable.result, reference);
  EXPECT_EQ(durable.executed, 80u);
  EXPECT_EQ(durable.replayed, 0u);
  EXPECT_FALSE(durable.early_stopped);

  DurableOptions in_memory;
  in_memory.journaled = false;
  const auto unjournaled =
      run_durable(*app_, config(), golden_, spec, pool_, in_memory);
  expect_same_result(unjournaled.result, reference);
  EXPECT_TRUE(unjournaled.journal.empty());
}

TEST_F(OrchestratorTest, KillAndResumeIsBitIdentical) {
  const auto spec = spec_of(campaign::Target::Svf, 70);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  const auto path = temp_dir() / "killed.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  run_durable(*app_, config(), golden_, spec, pool_, options);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // A SIGKILL leaves an arbitrary prefix, possibly mid-record. Replay from
  // several cut points, including one that also flips a bit in the tail.
  const std::size_t header_bytes = bytes.size() - spec.samples * kRecordBytes;
  const std::size_t cuts[] = {header_bytes, header_bytes + 3,
                              header_bytes + 17 * kRecordBytes,
                              header_bytes + 41 * kRecordBytes + 11,
                              bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    DurableOptions resume;
    resume.journal = path;
    resume.resume = true;
    const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
    expect_same_result(resumed.result, reference);
    EXPECT_EQ(resumed.replayed + resumed.executed, 70u) << "cut at " << cut;
  }

  // Bit-flip damage inside a record: the damaged suffix is re-run.
  std::string flipped = bytes;
  flipped[header_bytes + 20 * kRecordBytes + 9] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  DurableOptions resume;
  resume.journal = path;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
  expect_same_result(resumed.result, reference);
  EXPECT_EQ(resumed.replayed, 20u);
  EXPECT_EQ(resumed.executed, 50u);
}

TEST_F(OrchestratorTest, ResumeRejectsADifferentCampaign) {
  const auto path = temp_dir() / "mismatch.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  run_durable(*app_, config(), golden_, spec_of(campaign::Target::RF, 30), pool_,
              options);
  DurableOptions resume;
  resume.journal = path;
  resume.resume = true;
  auto other = spec_of(campaign::Target::RF, 30);
  other.seed = 7;
  EXPECT_THROW(run_durable(*app_, config(), golden_, other, pool_, resume),
               std::runtime_error);
}

TEST_F(OrchestratorTest, ShardsMergeToTheUnshardedHistogram) {
  const auto spec = spec_of(campaign::Target::RF, 90);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);

  for (const std::uint32_t shards : {2u, 4u}) {
    std::vector<std::filesystem::path> journals;
    std::uint64_t total_executed = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
      DurableOptions options;
      options.journal = temp_dir() / ("shard." + std::to_string(shards) + "." +
                                      std::to_string(i) + ".jrnl");
      options.resume = false;
      options.shard = ShardSpec{i, shards};
      const auto r = run_durable(*app_, config(), golden_, spec, pool_, options);
      total_executed += r.executed;
      journals.push_back(options.journal);
    }
    EXPECT_EQ(total_executed, 90u);
    const MergedCampaign merged = merge_shards(journals);
    expect_same_result(merged.result, reference);
    EXPECT_EQ(merged.header.shard_count, shards);
    EXPECT_FALSE(merged.early_stopped);
    EXPECT_EQ(merged.result.spec.kernel, "va_k1");
    EXPECT_EQ(merged.result.spec.target, campaign::Target::RF);
  }
}

TEST_F(OrchestratorTest, MergeRejectsBadShardSets) {
  const auto spec = spec_of(campaign::Target::RF, 40);
  std::vector<std::filesystem::path> journals;
  for (std::uint32_t i = 0; i < 2; ++i) {
    DurableOptions options;
    options.journal = temp_dir() / ("merge_bad." + std::to_string(i) + ".jrnl");
    options.resume = false;
    options.shard = ShardSpec{i, 2};
    run_durable(*app_, config(), golden_, spec, pool_, options);
    journals.push_back(options.journal);
  }
  // Missing shard.
  EXPECT_THROW(merge_shards({journals[0]}), std::runtime_error);
  // Duplicate shard.
  EXPECT_THROW(merge_shards({journals[0], journals[0]}), std::runtime_error);
  // Foreign journal in the set (different campaign).
  DurableOptions other;
  other.journal = temp_dir() / "merge_bad.other.jrnl";
  other.resume = false;
  other.shard = ShardSpec{1, 2};
  auto other_spec = spec;
  other_spec.seed = 99;
  run_durable(*app_, config(), golden_, other_spec, pool_, other);
  EXPECT_THROW(merge_shards({journals[0], other.journal}), std::runtime_error);
  // Incomplete shard: cut half of shard 1's records off.
  const auto size = std::filesystem::file_size(journals[1]);
  std::filesystem::resize_file(journals[1], size - 5 * kRecordBytes);
  EXPECT_THROW(merge_shards({journals[0], journals[1]}), std::runtime_error);
}

TEST_F(OrchestratorTest, EarlyStopIsDeterministicAndResumable) {
  // VA / SVF fails almost always, so a loose margin is reached quickly.
  auto spec = spec_of(campaign::Target::Svf, 2000);
  const auto path = temp_dir() / "early.jrnl";
  DurableOptions options;
  options.journal = path;
  options.resume = false;
  options.margin = 0.10;
  options.chunk = 32;
  const auto first = run_durable(*app_, config(), golden_, spec, pool_, options);
  EXPECT_TRUE(first.early_stopped);
  EXPECT_LT(first.result.counts.total(), 2000u);
  EXPECT_EQ(first.result.counts.total() % 32, 0u);  // chunk-boundary stop
  EXPECT_LE(first.result.fr_ci(options.confidence).margin(), 0.10);

  // Identical decisions with a different thread count.
  ThreadPool one(1);
  DurableOptions fresh = options;
  fresh.journal = temp_dir() / "early_one_thread.jrnl";
  const auto serial = run_durable(*app_, config(), golden_, spec, one, fresh);
  EXPECT_EQ(serial.result.counts.total(), first.result.counts.total());
  expect_same_result(serial.result, first.result);

  // Resuming a finished early-stopped journal replays without executing.
  DurableOptions resume = options;
  resume.resume = true;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, resume);
  EXPECT_TRUE(resumed.early_stopped);
  EXPECT_EQ(resumed.executed, 0u);
  expect_same_result(resumed.result, first.result);

  // A killed early-stopped campaign resumes to the same stop point.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const auto rekilled = run_durable(*app_, config(), golden_, spec, pool_, resume);
  EXPECT_TRUE(rekilled.early_stopped);
  expect_same_result(rekilled.result, first.result);
}

TEST_F(OrchestratorTest, ProgressSnapshotsArriveInOrder) {
  struct Capture : ProgressSink {
    std::vector<ProgressSnapshot> snapshots;
    void on_progress(const ProgressSnapshot& s) override { snapshots.push_back(s); }
  } capture;

  const auto spec = spec_of(campaign::Target::RF, 100);
  DurableOptions options;
  options.journaled = false;
  options.chunk = 25;
  options.progress = &capture;
  run_durable(*app_, config(), golden_, spec, pool_, options);

  ASSERT_EQ(capture.snapshots.size(), 4u);  // one per chunk
  std::uint64_t prev = 0;
  for (const auto& s : capture.snapshots) {
    EXPECT_GT(s.completed, prev);
    prev = s.completed;
    EXPECT_EQ(s.total, 100u);
    EXPECT_EQ(s.counts.total(), s.completed);
  }
  EXPECT_TRUE(capture.snapshots.back().done);
  EXPECT_EQ(capture.snapshots.back().completed, 100u);

  const std::string json = JsonlProgress::to_json(capture.snapshots.back());
  EXPECT_NE(json.find("\"completed\":100"), std::string::npos);
  EXPECT_NE(json.find("\"done\":true"), std::string::npos);
}

TEST_F(OrchestratorTest, CachedCampaignRoutesThroughTheOrchestrator) {
  const auto dir = temp_dir() / "cache_route";
  std::filesystem::remove_all(dir);
  ::setenv("GRAS_CACHE", dir.string().c_str(), 1);
  const auto spec = spec_of(campaign::Target::RF, 25);
  const auto reference = campaign::run_campaign(*app_, config(), golden_, spec, pool_);
  const auto cached = cached_campaign(*app_, config(), golden_, spec, pool_);
  expect_same_result(cached, reference);
  // The recovery journal is cleaned up once the result is memoized.
  EXPECT_TRUE(std::filesystem::is_empty(dir / "journals"));
  const auto again = cached_campaign(*app_, config(), golden_, spec, pool_);
  expect_same_result(again, reference);
  ::unsetenv("GRAS_CACHE");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gras::orchestrator
