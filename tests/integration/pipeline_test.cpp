// End-to-end integration: golden run -> campaigns -> consolidation ->
// cross-layer comparison, exercising the full pipeline the bench harnesses
// use, on a reduced scale.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/orchestrator/cache.h"
#include "src/campaign/campaign.h"
#include "src/harden/tmr.h"
#include "src/analysis/analysis.h"
#include "src/metrics/metrics.h"
#include "src/workloads/workload.h"

namespace gras {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

constexpr std::uint64_t kSamples = 60;

TEST(Pipeline, FullAvfSvfComparisonForOneApp) {
  const auto app = workloads::make_benchmark("scp");
  const auto golden = campaign::run_golden(*app, config());
  ThreadPool pool(2);
  const campaign::Target targets[] = {
      campaign::Target::RF,  campaign::Target::SMEM, campaign::Target::L1D,
      campaign::Target::L1T, campaign::Target::L2,   campaign::Target::Svf};
  const auto campaigns = campaign::run_kernel_sweep(*app, config(), golden, "scp_k1",
                                                    targets, kSamples, 1, pool);
  const auto k = metrics::consolidate_kernel(golden, "scp_k1", campaigns, config());
  const auto bits = metrics::StructureBits::from(config());
  const auto chip = k.chip_avf(bits);

  // Structural expectations that mirror the paper:
  // SVF (software-only view) is far larger than the chip AVF.
  EXPECT_GT(k.svf.value(), chip.value());
  // The chip AVF is dominated by the register file contribution.
  EXPECT_GE(chip.value(), k.avf(fi::Structure::RF).value() *
                              (static_cast<double>(bits.rf) / bits.total()) * 0.99);
  // All values are probabilities.
  EXPECT_GE(chip.value(), 0.0);
  EXPECT_LE(chip.value(), 1.0);
  EXPECT_LE(k.svf.value(), 1.0);
}

TEST(Pipeline, AppConsolidationUsesAllKernels) {
  const auto app = workloads::make_benchmark("bfs");
  const auto golden = campaign::run_golden(*app, config());
  ThreadPool pool(2);
  metrics::AppReliability rel;
  rel.app = app->name();
  const campaign::Target targets[] = {campaign::Target::RF, campaign::Target::Svf};
  for (const auto& kernel : golden.kernel_names()) {
    const auto campaigns = campaign::run_kernel_sweep(*app, config(), golden, kernel,
                                                      targets, kSamples / 2, 2, pool);
    rel.kernels.push_back(metrics::consolidate_kernel(golden, kernel, campaigns, config()));
  }
  ASSERT_EQ(rel.kernels.size(), 2u);
  const double svf = rel.svf().value();
  EXPECT_GE(svf, std::min(rel.kernels[0].svf.value(), rel.kernels[1].svf.value()));
  EXPECT_LE(svf, std::max(rel.kernels[0].svf.value(), rel.kernels[1].svf.value()));
}

TEST(Pipeline, TmrEliminatesSvfSdcsWithoutHostCommonMode) {
  // hotspot has no host-visible intermediate reads, so TMR's per-copy
  // isolation is complete and the software-level view shows SDCs eliminated
  // (the paper's Insight #5). Kernels that feed reductions back through the
  // non-triplicated host (backprop, srad_v1) legitimately retain some — the
  // paper's own Fig. 7 shows BackProp K1's SVF *increasing* under TMR.
  const auto base = workloads::make_benchmark("hotspot");
  const auto tmr = harden::harden(*base);
  const auto golden_base = campaign::run_golden(*base, config());
  const auto golden_tmr = campaign::run_golden(*tmr, config());
  ThreadPool pool(2);
  campaign::CampaignSpec spec;
  spec.kernel = "hotspot_k1";
  spec.target = campaign::Target::Svf;
  spec.samples = kSamples;
  const auto before = campaign::run_campaign(*base, config(), golden_base, spec, pool);
  const auto after = campaign::run_campaign(*tmr, config(), golden_tmr, spec, pool);
  EXPECT_GT(before.counts.sdc, 0u);
  EXPECT_LT(after.counts.sdc, std::max<std::uint64_t>(before.counts.sdc / 4, 1));
  // DUEs are not eliminated (and typically grow, paper §IV-B).
  EXPECT_GT(after.counts.due + after.counts.timeout, 0u);
}

TEST(Pipeline, ControlPathProxyDetectsTimingOnlyChanges) {
  // RF faults frequently perturb loop predicates without corrupting the
  // output; across enough samples at least one masked run must differ in
  // cycle count (Fig. 11's proxy).
  const auto app = workloads::make_benchmark("bfs");
  const auto golden = campaign::run_golden(*app, config());
  ThreadPool pool(2);
  campaign::CampaignSpec spec;
  spec.kernel = "bfs_k1";
  spec.target = campaign::Target::RF;
  spec.samples = 100;
  const auto result = campaign::run_campaign(*app, config(), golden, spec, pool);
  EXPECT_LE(result.control_path_masked, result.counts.masked);
}

TEST(Pipeline, TrendTableFromTwoApps) {
  ThreadPool pool(2);
  std::vector<analysis::TrendPoint> points;
  for (const char* name : {"va", "scp"}) {
    const auto app = workloads::make_benchmark(name);
    const auto golden = campaign::run_golden(*app, config());
    const campaign::Target targets[] = {campaign::Target::RF, campaign::Target::Svf};
    metrics::AppReliability rel;
    for (const auto& kernel : golden.kernel_names()) {
      const auto campaigns = campaign::run_kernel_sweep(*app, config(), golden, kernel,
                                                        targets, kSamples, 3, pool);
      rel.kernels.push_back(
          metrics::consolidate_kernel(golden, kernel, campaigns, config()));
    }
    points.push_back({name, rel.avf_rf().value(), rel.svf().value()});
  }
  const auto counts = analysis::count_trends(points);
  EXPECT_EQ(counts.total(), 1u);
}

TEST(Cache, CampaignCacheRoundTrips) {
  const auto app = workloads::make_benchmark("va");
  const auto golden = campaign::run_golden(*app, config());
  ThreadPool pool(2);
  const auto dir = std::filesystem::temp_directory_path() / "gras_cache_test";
  std::filesystem::remove_all(dir);
  ::setenv("GRAS_CACHE", dir.string().c_str(), 1);
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = campaign::Target::Svf;
  spec.samples = 20;
  const auto first = orchestrator::cached_campaign(*app, config(), golden, spec, pool);
  const auto second = orchestrator::cached_campaign(*app, config(), golden, spec, pool);
  EXPECT_EQ(first.counts.masked, second.counts.masked);
  EXPECT_EQ(first.counts.sdc, second.counts.sdc);
  EXPECT_EQ(first.injected, second.injected);
  EXPECT_TRUE(std::filesystem::exists(dir));
  ::unsetenv("GRAS_CACHE");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gras
