// Cross-matrix smoke: every app x every injection target executes a few
// samples without crashing, and the outcome histogram is well-formed. This
// guards the full campaign surface (including the SVF source modes) against
// regressions in any single workload.
#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/workloads/workload.h"

namespace gras {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

class CampaignMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(CampaignMatrix, EveryTargetRunsOnEveryApp) {
  const auto app = workloads::make_benchmark(GetParam());
  const auto golden = campaign::run_golden(*app, config());
  ThreadPool pool(2);
  // First kernel keeps the matrix affordable; targets cover all nine modes.
  const std::string kernel = golden.kernel_names().front();
  for (const campaign::Target target :
       {campaign::Target::RF, campaign::Target::SMEM, campaign::Target::L1D,
        campaign::Target::L1T, campaign::Target::L2, campaign::Target::Svf,
        campaign::Target::SvfLd, campaign::Target::SvfSrcOnce,
        campaign::Target::SvfSrcReuse}) {
    campaign::CampaignSpec spec;
    spec.kernel = kernel;
    spec.target = target;
    spec.samples = 4;
    spec.seed = 99;
    const auto r = campaign::run_campaign(*app, config(), golden, spec, pool);
    EXPECT_EQ(r.counts.total(), 4u)
        << GetParam() << "/" << campaign::target_name(target);
    EXPECT_LE(r.injected, 4u);
    EXPECT_LE(r.control_path_masked, r.counts.masked);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CampaignMatrix,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gras
