// CorruptionSignature unit tests: compare_outputs must classify exactly like
// the old boolean output comparison while capturing the SDC anatomy fields.
#include <gtest/gtest.h>

#include <cstring>

#include "src/workloads/workload.h"

namespace gras::workloads {
namespace {

RunOutput make_output(std::initializer_list<std::vector<std::uint8_t>> buffers) {
  RunOutput o;
  o.outputs.assign(buffers);
  return o;
}

std::vector<std::uint8_t> words(std::initializer_list<std::uint32_t> values) {
  std::vector<std::uint8_t> out(values.size() * 4);
  std::size_t i = 0;
  for (std::uint32_t v : values) {
    std::memcpy(out.data() + i * 4, &v, 4);
    ++i;
  }
  return out;
}

TEST(CompareOutputs, IdenticalOutputsHaveNoMismatch) {
  const RunOutput golden = make_output({words({1, 2, 3}), words({4, 5})});
  const CorruptionSignature sig = compare_outputs(golden, golden);
  EXPECT_FALSE(sig.mismatch());
  EXPECT_EQ(sig.words_total, 5u);
  EXPECT_EQ(sig.words_mismatched, 0u);
  EXPECT_EQ(sig.buffers_affected, 0u);
  EXPECT_EQ(sig.spatial_extent(), 0u);
}

TEST(CompareOutputs, SingleBitFlipIsLocalized) {
  const RunOutput golden = make_output({words({10, 20, 30, 40})});
  RunOutput faulty = golden;
  faulty.outputs[0][9] ^= 0x04;  // word 2, byte 1 -> bit 10
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_TRUE(sig.mismatch());
  EXPECT_EQ(sig.mismatch(), faulty.outputs != golden.outputs);
  EXPECT_EQ(sig.words_mismatched, 1u);
  EXPECT_EQ(sig.first_word, 2u);
  EXPECT_EQ(sig.last_word, 2u);
  EXPECT_EQ(sig.spatial_extent(), 1u);
  EXPECT_EQ(sig.buffers_affected, 1u);
  std::uint64_t total_flips = 0;
  for (unsigned b = 0; b < 32; ++b) total_flips += sig.bit_flips[b];
  EXPECT_EQ(total_flips, 1u);
  EXPECT_EQ(sig.bit_flips[10], 1u);
}

TEST(CompareOutputs, GlobalWordIndicesSpanBuffers) {
  // Buffer 0 holds 3 words, so buffer 1's words start at global index 3.
  const RunOutput golden = make_output({words({1, 2, 3}), words({4, 5, 6})});
  RunOutput faulty = golden;
  faulty.outputs[0][0] ^= 0xff;   // global word 0
  faulty.outputs[1][8] ^= 0x01;   // buffer 1 word 2 -> global word 5
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_EQ(sig.words_mismatched, 2u);
  EXPECT_EQ(sig.first_word, 0u);
  EXPECT_EQ(sig.last_word, 5u);
  EXPECT_EQ(sig.spatial_extent(), 6u);
  EXPECT_EQ(sig.buffers_affected, 2u);
}

TEST(CompareOutputs, TrailingPartialWordIsZeroPadded) {
  // 6-byte buffers: word 1 is the 2-byte tail. Corrupt its last byte.
  RunOutput golden = make_output({{1, 2, 3, 4, 5, 6}});
  RunOutput faulty = golden;
  faulty.outputs[0][5] = 0x66;
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_EQ(sig.words_total, 2u);
  EXPECT_EQ(sig.words_mismatched, 1u);
  EXPECT_EQ(sig.first_word, 1u);
}

TEST(CompareOutputs, RelativeErrorOverFloatWords) {
  const float g = 2.0f, f = 3.0f;
  std::uint32_t gw, fw;
  std::memcpy(&gw, &g, 4);
  std::memcpy(&fw, &f, 4);
  const RunOutput golden = make_output({words({gw, gw})});
  const RunOutput faulty = make_output({words({gw, fw})});
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_DOUBLE_EQ(sig.max_rel_error, 0.5);  // |3-2| / |2|
}

TEST(CompareOutputs, NanCorruptionLeavesRelErrorZero) {
  const float g = 2.0f;
  std::uint32_t gw;
  std::memcpy(&gw, &g, 4);
  const std::uint32_t nan_bits = 0x7fc00000;
  const RunOutput golden = make_output({words({gw})});
  const RunOutput faulty = make_output({words({nan_bits})});
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_TRUE(sig.mismatch());
  EXPECT_EQ(sig.max_rel_error, 0.0);
}

TEST(CompareOutputs, ShapeMismatchAlwaysCounts) {
  // A missing buffer whose words were all zero pads to identical word
  // streams; the signature must still report a mismatch so classification
  // stays equivalent to outputs != golden.outputs.
  const RunOutput golden = make_output({words({7}), words({0})});
  const RunOutput faulty = make_output({words({7})});
  ASSERT_NE(golden, faulty);
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_TRUE(sig.mismatch());
  EXPECT_GE(sig.buffers_affected, 1u);
}

TEST(CompareOutputs, SizeMismatchWithZeroTailCounts) {
  // Same first word; faulty has two trailing zero bytes that pad to the same
  // words. Byte-wise the buffers differ, so the signature must say mismatch.
  const RunOutput golden = make_output({words({9})});
  RunOutput faulty = golden;
  faulty.outputs[0].push_back(0);
  faulty.outputs[0].push_back(0);
  ASSERT_NE(golden, faulty);
  const CorruptionSignature sig = compare_outputs(golden, faulty);
  EXPECT_TRUE(sig.mismatch());
}

}  // namespace
}  // namespace gras::workloads
