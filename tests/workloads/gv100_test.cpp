// The faithful-size "gv100" preset must run the suite too (campaigns default
// to gv100-scaled; GRAS_CONFIG=gv100 switches the bench harnesses over).
#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/metrics/metrics.h"
#include "src/workloads/workload.h"

namespace gras::workloads {
namespace {

TEST(Gv100Preset, RunsBenchmarksToCompletion) {
  const sim::GpuConfig config = sim::make_config("gv100");
  for (const char* name : {"va", "scp", "bfs"}) {
    const auto app = make_benchmark(name);
    sim::Gpu gpu(config);
    const RunOutput out = run_app(*app, gpu);
    EXPECT_EQ(out.trap, sim::TrapKind::None) << name;
  }
}

TEST(Gv100Preset, OutputsMatchScaledConfig) {
  // Timing differs between presets, but functional results must not.
  for (const char* name : {"va", "hotspot"}) {
    const auto app = make_benchmark(name);
    sim::Gpu big(sim::make_config("gv100"));
    sim::Gpu small(sim::make_config("gv100-scaled"));
    EXPECT_EQ(run_app(*app, big).outputs, run_app(*app, small).outputs) << name;
  }
}

TEST(Gv100Preset, DeratingFactorsShrinkOnTheBigChip) {
  const auto app = make_benchmark("scp");
  const auto big = campaign::run_golden(*app, sim::make_config("gv100"));
  const auto small = campaign::run_golden(*app, sim::make_config("gv100-scaled"));
  EXPECT_LT(gras::metrics::rf_derating(big, "scp_k1", sim::make_config("gv100")),
            gras::metrics::rf_derating(small, "scp_k1", sim::make_config("gv100-scaled")));
}

}  // namespace
}  // namespace gras::workloads
