// Functional validation of the benchmark kernels against CPU reference
// implementations. Inputs are taken from each app's declared buffers, so
// the references share no code with the kernels.
//
// Integer benchmarks (NW, PathFinder, BFS) and element-wise float
// benchmarks (VA, SCP, HotSpot, K-Means, BackProp) are checked bit-exactly
// by replicating the kernel's operation order; LUD and SRAD are checked
// against tolerance-based references (their blocked/tiled schedules reorder
// float operations).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <queue>
#include <vector>

#include "src/sim/config.h"
#include "src/workloads/workload.h"

namespace gras::workloads {
namespace {

std::vector<float> floats_of(const std::vector<std::uint8_t>& bytes) {
  std::vector<float> out(bytes.size() / 4);
  std::memcpy(out.data(), bytes.data(), out.size() * 4);
  return out;
}

std::vector<std::uint32_t> words_of(const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint32_t> out(bytes.size() / 4);
  std::memcpy(out.data(), bytes.data(), out.size() * 4);
  return out;
}

const BufferSpec& buffer(const App& app, std::string_view name) {
  for (const auto& spec : app.buffers()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range(std::string(name));
}

RunOutput run(const App& app) {
  sim::Gpu gpu(sim::make_config("gv100-scaled"));
  RunOutput out = run_app(app, gpu);
  EXPECT_EQ(out.trap, sim::TrapKind::None);
  return out;
}

TEST(Reference, VaMatchesExactly) {
  const auto app = make_benchmark("va");
  const auto a = floats_of(buffer(*app, "a").host_init);
  const auto b = floats_of(buffer(*app, "b").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  ASSERT_EQ(out.size(), a.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], a[i] + b[i]) << i;
  }
}

TEST(Reference, ScpMatchesExactly) {
  const auto app = make_benchmark("scp");
  const auto a = floats_of(buffer(*app, "a").host_init);
  const auto b = floats_of(buffer(*app, "b").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  const std::uint32_t pairs = static_cast<std::uint32_t>(out.size());
  const std::uint32_t elems = static_cast<std::uint32_t>(a.size()) / pairs;
  const std::uint32_t block = 128;
  for (std::uint32_t p = 0; p < pairs; ++p) {
    // Per-thread strided FFMA accumulation...
    std::vector<float> acc(block, 0.0f);
    for (std::uint32_t t = 0; t < block; ++t) {
      for (std::uint32_t i = t; i < elems; i += block) {
        const std::uint32_t e = p * elems + i;
        acc[t] = std::fmaf(a[e], b[e], acc[t]);
      }
    }
    // ...then the shared-memory tree reduction: s[t] = s[t+stride] + s[t].
    for (std::uint32_t stride = block / 2; stride > 0; stride /= 2) {
      for (std::uint32_t t = 0; t < stride; ++t) acc[t] = acc[t + stride] + acc[t];
    }
    EXPECT_EQ(out[p], acc[0]) << "pair " << p;
  }
}

TEST(Reference, HotspotMatchesExactly) {
  const auto app = make_benchmark("hotspot");
  std::vector<float> temp = floats_of(buffer(*app, "temp0").host_init);
  const auto power = floats_of(buffer(*app, "power").host_init);
  const std::uint32_t dim = 64;
  // Constants as in the app.
  const float sdc = 0.001365333f;
  const float rx = 1.0f / 0.520833f, ry = 1.0f / 0.104166f,
              rz = 1.0f / 0.000078f * 1e-4f;
  const float amb = 80.0f;
  for (int step = 0; step < 2; ++step) {
    std::vector<float> next(temp.size());
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        const auto at = [&](int rr, int cc) {
          rr = std::clamp(rr, 0, static_cast<int>(dim) - 1);
          cc = std::clamp(cc, 0, static_cast<int>(dim) - 1);
          return temp[rr * dim + cc];
        };
        const float tc = temp[r * dim + c];
        const float m2c = tc * -2.0f;
        // Operation order mirrors the kernel exactly.
        const float t1 = ((at(r - 1, c) + at(r + 1, c)) + m2c) * ry;
        const float t2 = ((at(r, c - 1) + at(r, c + 1)) + m2c) * rx;
        const float t3 = (amb - tc) * rz;
        const float sum = ((power[r * dim + c] + t1) + t2) + t3;
        next[r * dim + c] = tc + sum * sdc;
      }
    }
    temp = std::move(next);
  }
  const auto out = floats_of(run(*app).outputs.at(0));
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], temp[i]) << i;
}

TEST(Reference, PathfinderMatchesGlobalDp) {
  const auto app = make_benchmark("pathfinder");
  const auto wall = words_of(buffer(*app, "wall").host_init);
  const auto out = words_of(run(*app).outputs.at(0));
  const std::uint32_t cols = static_cast<std::uint32_t>(out.size());
  const std::uint32_t rows = static_cast<std::uint32_t>(wall.size()) / cols;
  std::vector<std::int32_t> dp(cols);
  for (std::uint32_t x = 0; x < cols; ++x) dp[x] = static_cast<std::int32_t>(wall[x]);
  for (std::uint32_t r = 1; r < rows; ++r) {
    std::vector<std::int32_t> next(cols);
    for (std::uint32_t x = 0; x < cols; ++x) {
      std::int32_t best = dp[x];
      if (x > 0) best = std::min(best, dp[x - 1]);
      if (x + 1 < cols) best = std::min(best, dp[x + 1]);
      next[x] = static_cast<std::int32_t>(wall[r * cols + x]) + best;
    }
    dp = std::move(next);
  }
  for (std::uint32_t x = 0; x < cols; ++x) {
    EXPECT_EQ(static_cast<std::int32_t>(out[x]), dp[x]) << x;
  }
}

TEST(Reference, NwMatchesGlobalDp) {
  const auto app = make_benchmark("nw");
  const auto ref = words_of(buffer(*app, "ref").host_init);
  const auto init = words_of(buffer(*app, "mat").host_init);
  const auto out = words_of(run(*app).outputs.at(0));
  const std::uint32_t cols = 65;
  const std::int32_t penalty = 2;
  std::vector<std::int32_t> dp(init.size());
  for (std::size_t i = 0; i < init.size(); ++i) dp[i] = static_cast<std::int32_t>(init[i]);
  for (std::uint32_t r = 1; r < cols; ++r) {
    for (std::uint32_t c = 1; c < cols; ++c) {
      const std::int32_t diag =
          dp[(r - 1) * cols + c - 1] + static_cast<std::int32_t>(ref[r * cols + c]);
      const std::int32_t left = dp[r * cols + c - 1] - penalty;
      const std::int32_t up = dp[(r - 1) * cols + c] - penalty;
      dp[r * cols + c] = std::max(diag, std::max(left, up));
    }
  }
  for (std::uint32_t r = 1; r < cols; ++r) {
    for (std::uint32_t c = 1; c < cols; ++c) {
      EXPECT_EQ(static_cast<std::int32_t>(out[r * cols + c]), dp[r * cols + c])
          << r << "," << c;
    }
  }
}

TEST(Reference, BfsMatchesCpuBfs) {
  const auto app = make_benchmark("bfs");
  const auto nodes = words_of(buffer(*app, "nodes").host_init);
  const auto edges = words_of(buffer(*app, "edges").host_init);
  const auto out = words_of(run(*app).outputs.at(0));
  const std::uint32_t n = static_cast<std::uint32_t>(out.size());
  std::vector<std::int32_t> cost(n, -1);
  std::queue<std::uint32_t> q;
  cost[0] = 0;
  q.push(0);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    const std::uint32_t start = nodes[u * 2], count = nodes[u * 2 + 1];
    for (std::uint32_t e = start; e < start + count; ++e) {
      const std::uint32_t v = edges[e];
      if (cost[v] == -1) {
        cost[v] = cost[u] + 1;
        q.push(v);
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(out[i]), cost[i]) << "node " << i;
  }
}

TEST(Reference, KmeansMatchesExactly) {
  const auto app = make_benchmark("kmeans");
  const auto features = floats_of(buffer(*app, "features").host_init);
  auto centres = floats_of(buffer(*app, "clusters").host_init);
  const auto out = words_of(run(*app).outputs.at(0));
  const std::uint32_t n = static_cast<std::uint32_t>(out.size());
  const std::uint32_t k = 5, f = 8;
  std::vector<std::uint32_t> membership(n, 0);
  for (int iter = 0; iter < 2; ++iter) {
    for (std::uint32_t p = 0; p < n; ++p) {
      std::uint32_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (std::uint32_t c = 0; c < k; ++c) {
        float dist = 0.0f;
        for (std::uint32_t j = 0; j < f; ++j) {
          const float d = features[p * f + j] - centres[c * f + j];
          dist = std::fmaf(d, d, dist);
        }
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      membership[p] = best;
    }
    if (iter == 1) break;
    // Host centre recomputation, replicated from the app.
    std::vector<float> sums(k * f, 0.0f);
    std::vector<std::uint32_t> counts(k, 0);
    for (std::uint32_t p = 0; p < n; ++p) {
      counts[membership[p]] += 1;
      for (std::uint32_t j = 0; j < f; ++j) {
        sums[membership[p] * f + j] += features[p * f + j];
      }
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::uint32_t j = 0; j < f; ++j) {
        sums[c * f + j] /= static_cast<float>(counts[c]);
      }
    }
    centres = sums;
  }
  for (std::uint32_t p = 0; p < n; ++p) EXPECT_EQ(out[p], membership[p]) << p;
}

TEST(Reference, BackpropMatchesExactly) {
  const auto app = make_benchmark("backprop");
  const auto input = floats_of(buffer(*app, "input").host_init);
  auto w = floats_of(buffer(*app, "w").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  const std::uint32_t in_n = 512, hid = 16, blocks = in_n / hid, hidp1 = hid + 1;

  // K1: per-block shared-memory products + ty-tree reduction.
  std::vector<float> partial(blocks * hid);
  for (std::uint32_t by = 0; by < blocks; ++by) {
    float wm[16][16];
    for (std::uint32_t ty = 0; ty < hid; ++ty) {
      const std::uint32_t node = by * 16 + ty + 1;
      for (std::uint32_t tx = 0; tx < hid; ++tx) {
        wm[ty][tx] = w[node * hidp1 + tx + 1] * input[node];
      }
    }
    for (std::uint32_t s = 1; s < 16; s *= 2) {
      for (std::uint32_t ty = 0; ty < 16; ++ty) {
        if (ty % (2 * s) == 0) {
          for (std::uint32_t tx = 0; tx < hid; ++tx) wm[ty][tx] += wm[ty + s][tx];
        }
      }
    }
    for (std::uint32_t tx = 0; tx < hid; ++tx) partial[by * hid + tx] = wm[0][tx];
  }

  // Host: sums, sigmoid, deltas (replicated from the app).
  std::vector<float> delta(hid + 1, 0.0f);
  for (std::uint32_t j = 0; j < hid; ++j) {
    float sum = 0.0f;
    for (std::uint32_t b = 0; b < blocks; ++b) sum += partial[b * hid + j];
    sum += w[j + 1];
    const float hidden = 1.0f / (1.0f + std::exp(-sum));
    delta[j + 1] = hidden * (1.0f - hidden) * (0.1f - hidden);
  }

  // K2: weight adjustment with momentum (oldw starts at zero).
  std::vector<float> expected = w;
  for (std::uint32_t node = 1; node <= in_n; ++node) {
    for (std::uint32_t tx = 0; tx < hid; ++tx) {
      const float dv = (delta[tx + 1] * input[node]) * 0.3f + 0.0f * 0.3f;
      expected[node * hidp1 + tx + 1] += dv;
    }
  }
  for (std::uint32_t tx = 0; tx < hid; ++tx) {
    expected[tx + 1] += delta[tx + 1] * 0.3f;
  }

  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST(Reference, LudFactorsReconstrubeMatrix) {
  const auto app = make_benchmark("lud");
  const auto m = floats_of(buffer(*app, "m").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  const std::uint32_t n = 64;
  // out holds L (unit diagonal, below) and U (on/above). Check L*U == m.
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::uint32_t k = 0; k <= std::min(r, c); ++k) {
        const double l = k == r ? 1.0 : out[r * n + k];
        const double u = out[k * n + c];
        acc += l * u;
      }
      EXPECT_NEAR(acc, m[r * n + c], 1e-2) << r << "," << c;
    }
  }
}

TEST(Reference, SradV1StaysCloseToCpuReference) {
  const auto app = make_benchmark("srad_v1");
  std::vector<float> img = floats_of(buffer(*app, "img").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  const std::uint32_t dim = 64;
  const float lambda = 0.5f;
  for (auto& v : img) v = std::exp(v / 255.0f);
  for (int iter = 0; iter < 2; ++iter) {
    double sum = 0.0, sum2 = 0.0;
    for (float v : img) {
      sum += v;
      sum2 += static_cast<double>(v) * v;
    }
    const double mean = sum / img.size();
    const double var = sum2 / img.size() - mean * mean;
    const float q0 = static_cast<float>(var / (mean * mean));
    std::vector<float> dn(img.size()), ds(img.size()), dw(img.size()), de(img.size()),
        cc(img.size());
    const auto at = [&](int r, int c) {
      r = std::clamp(r, 0, static_cast<int>(dim) - 1);
      c = std::clamp(c, 0, static_cast<int>(dim) - 1);
      return img[r * dim + c];
    };
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        const std::uint32_t i = r * dim + c;
        const float ic = img[i];
        dn[i] = at(r - 1, c) - ic;
        ds[i] = at(r + 1, c) - ic;
        dw[i] = at(r, c - 1) - ic;
        de[i] = at(r, c + 1) - ic;
        const float g2 =
            (dn[i] * dn[i] + ds[i] * ds[i] + dw[i] * dw[i] + de[i] * de[i]) / (ic * ic);
        const float l = (dn[i] + ds[i] + dw[i] + de[i]) / ic;
        const float num = 0.5f * g2 - 0.0625f * (l * l);
        const float den = 1.0f + 0.25f * l;
        const float qsqr = num / (den * den);
        const float den2 = (qsqr - q0) / (q0 * (1.0f + q0));
        cc[i] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
      }
    }
    std::vector<float> next = img;
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        const std::uint32_t i = r * dim + c;
        const float cs = cc[std::min(r + 1, dim - 1) * dim + c];
        const float ce = cc[r * dim + std::min(c + 1, dim - 1)];
        const float d = cc[i] * dn[i] + cs * ds[i] + cc[i] * dw[i] + ce * de[i];
        next[i] = img[i] + 0.25f * lambda * d;
      }
    }
    img = std::move(next);
  }
  for (auto& v : img) v = std::log(v) * 255.0f;
  ASSERT_EQ(out.size(), img.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], img[i], 0.05f + 0.01f * std::fabs(img[i])) << i;
  }
}

TEST(Reference, SradV2StaysCloseToCpuReference) {
  const auto app = make_benchmark("srad_v2");
  std::vector<float> img = floats_of(buffer(*app, "img").host_init);
  const auto out = floats_of(run(*app).outputs.at(0));
  const std::uint32_t dim = 64;
  const float lambda = 0.5f;
  for (int iter = 0; iter < 2; ++iter) {
    float sum = 0.0f, sum2 = 0.0f;
    for (float v : img) {
      sum += v;
      sum2 += v * v;
    }
    const float mean = sum / img.size();
    const float var = sum2 / img.size() - mean * mean;
    const float q0 = var / (mean * mean);
    std::vector<float> dn(img.size()), ds(img.size()), dw(img.size()), de(img.size()),
        cc(img.size());
    const auto at = [&](int r, int c) {
      r = std::clamp(r, 0, static_cast<int>(dim) - 1);
      c = std::clamp(c, 0, static_cast<int>(dim) - 1);
      return img[r * dim + c];
    };
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        const std::uint32_t i = r * dim + c;
        const float ic = img[i];
        dn[i] = at(r - 1, c) - ic;
        ds[i] = at(r + 1, c) - ic;
        dw[i] = at(r, c - 1) - ic;
        de[i] = at(r, c + 1) - ic;
        const float g2 =
            (dn[i] * dn[i] + ds[i] * ds[i] + dw[i] * dw[i] + de[i] * de[i]) / (ic * ic);
        const float l = (dn[i] + ds[i] + dw[i] + de[i]) / ic;
        const float num = 0.5f * g2 - 0.0625f * (l * l);
        const float den = 1.0f + 0.25f * l;
        const float qsqr = num / (den * den);
        const float den2 = (qsqr - q0) / (q0 * (1.0f + q0));
        cc[i] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
      }
    }
    std::vector<float> next = img;
    for (std::uint32_t r = 0; r < dim; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        const std::uint32_t i = r * dim + c;
        const float cs = cc[std::min(r + 1, dim - 1) * dim + c];
        const float ce = cc[r * dim + std::min(c + 1, dim - 1)];
        const float d = cc[i] * dn[i] + cs * ds[i] + cc[i] * dw[i] + ce * de[i];
        next[i] = img[i] + 0.25f * lambda * d;
      }
    }
    img = std::move(next);
  }
  ASSERT_EQ(out.size(), img.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], img[i], 0.02f + 0.01f * std::fabs(img[i])) << i;
  }
}

}  // namespace
}  // namespace gras::workloads
