// Size-parameterized workload variants (used by the input-size ablation).
#include <gtest/gtest.h>

#include <cstring>

#include "src/workloads/app_base.h"

namespace gras::workloads {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(SizedVariants, DefaultSizeKeepsCanonicalName) {
  EXPECT_EQ(make_va()->name(), "va");
  EXPECT_EQ(make_hotspot()->name(), "hotspot");
}

TEST(SizedVariants, NonDefaultSizesGetDistinctNames) {
  EXPECT_EQ(make_va_sized(1024)->name(), "va@1024");
  EXPECT_EQ(make_hotspot_sized(32, 2)->name(), "hotspot@32x2");
}

class VaSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VaSizes, ComputesCorrectSums) {
  const auto app = make_va_sized(GetParam());
  sim::Gpu gpu(config());
  const RunOutput out = run_app(*app, gpu);
  ASSERT_TRUE(out.completed());
  EXPECT_EQ(out.outputs.at(0).size(), GetParam() * 4u);
  // Spot-check one element against the declared inputs.
  const auto& a = app->buffers()[0].host_init;
  const auto& b = app->buffers()[1].host_init;
  float fa, fb, fc;
  std::memcpy(&fa, a.data() + 40, 4);
  std::memcpy(&fb, b.data() + 40, 4);
  std::memcpy(&fc, out.outputs[0].data() + 40, 4);
  EXPECT_EQ(fc, fa + fb);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VaSizes, ::testing::Values(256u, 1024u, 16384u));

TEST(SizedVariants, HotspotScalesCycles) {
  sim::Gpu small_gpu(config()), big_gpu(config());
  run_app(*make_hotspot_sized(32, 2), small_gpu);
  run_app(*make_hotspot_sized(128, 2), big_gpu);
  EXPECT_GT(big_gpu.cycle(), small_gpu.cycle());
}

}  // namespace
}  // namespace gras::workloads
