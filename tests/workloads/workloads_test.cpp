// Structural tests over the benchmark suite: the paper's 11 applications and
// 23 kernels, completion, determinism, and golden-run bookkeeping.
#include "src/workloads/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/campaign/campaign.h"
#include "src/sim/config.h"

namespace gras::workloads {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(Suite, HasThePapersElevenBenchmarks) {
  const auto names = benchmark_names();
  EXPECT_EQ(names.size(), 11u);
  const std::set<std::string> expected = {"srad_v1", "srad_v2", "kmeans",     "hotspot",
                                          "lud",     "scp",     "va",         "nw",
                                          "pathfinder", "backprop", "bfs"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(Suite, HasThePapersTwentyThreeKernels) {
  // §II-D: 11 benchmarks, 23 kernels.
  std::size_t kernels = 0;
  for (const auto& app : make_all_benchmarks()) kernels += app->kernels().size();
  EXPECT_EQ(kernels, 23u);
}

TEST(Suite, PaperKernelCountsPerApp) {
  const std::map<std::string, std::size_t> expected = {
      {"srad_v1", 6}, {"srad_v2", 2}, {"kmeans", 2}, {"hotspot", 1},
      {"lud", 3},     {"scp", 1},     {"va", 1},     {"nw", 2},
      {"pathfinder", 1}, {"backprop", 2}, {"bfs", 2}};
  for (const auto& [name, count] : expected) {
    EXPECT_EQ(make_benchmark(name)->kernels().size(), count) << name;
  }
}

TEST(Suite, UnknownBenchmarkThrows) {
  EXPECT_THROW(make_benchmark("quicksort"), std::out_of_range);
}

TEST(Suite, KernelNamesAreUniquePerApp) {
  for (const auto& app : make_all_benchmarks()) {
    std::set<std::string> names;
    for (const auto& k : app->kernels()) {
      EXPECT_TRUE(names.insert(k.name).second) << app->name() << "/" << k.name;
    }
  }
}

TEST(Suite, KernelLookupWorks) {
  const auto app = make_benchmark("bfs");
  EXPECT_EQ(app->kernel("bfs_k1").name, "bfs_k1");
  EXPECT_THROW(app->kernel("nope"), std::out_of_range);
}

class EveryApp : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryApp, CompletesWithoutTrap) {
  const auto app = make_benchmark(GetParam());
  sim::Gpu gpu(config());
  const RunOutput out = run_app(*app, gpu);
  EXPECT_EQ(out.trap, sim::TrapKind::None);
  ASSERT_FALSE(out.outputs.empty());
  for (const auto& buf : out.outputs) EXPECT_FALSE(buf.empty());
}

TEST_P(EveryApp, IsDeterministic) {
  const auto app = make_benchmark(GetParam());
  sim::Gpu gpu1(config()), gpu2(config());
  const RunOutput a = run_app(*app, gpu1);
  const RunOutput b = run_app(*app, gpu2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(gpu1.cycle(), gpu2.cycle());
}

TEST_P(EveryApp, EveryDeclaredKernelActuallyLaunches) {
  const auto app = make_benchmark(GetParam());
  const auto golden = campaign::run_golden(*app, config());
  for (const auto& k : app->kernels()) {
    EXPECT_FALSE(golden.launches_of(k.name).empty()) << k.name;
    EXPECT_GT(golden.kernel_cycles(k.name), 0u) << k.name;
    EXPECT_GT(golden.kernel_gp_instrs(k.name), 0u) << k.name;
  }
}

TEST_P(EveryApp, OutputChangesWhenOutputBufferDiffers) {
  // Outputs must actually depend on computation: a golden output buffer
  // can't be all zeros (zero-filled scratch would hide SDCs).
  const auto app = make_benchmark(GetParam());
  sim::Gpu gpu(config());
  const RunOutput out = run_app(*app, gpu);
  bool any_nonzero = false;
  for (const auto& buf : out.outputs) {
    for (std::uint8_t b : buf) any_nonzero |= b != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EveryApp,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST(GoldenRun, KernelNamesInFirstLaunchOrder) {
  const auto app = make_benchmark("srad_v1");
  const auto golden = campaign::run_golden(*app, config());
  const auto names = golden.kernel_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "srad1_extract");
  EXPECT_EQ(names.back(), "srad1_compress");
}

TEST(GoldenRun, BudgetsAreTenTimesCycles) {
  const auto app = make_benchmark("va");
  const auto golden = campaign::run_golden(*app, config());
  ASSERT_EQ(golden.budgets.size(), golden.launches.size());
  EXPECT_EQ(golden.budgets[0], golden.launches[0].cycles() * 10 + 2000);
  EXPECT_GT(golden.overflow_budget, 0u);
}

TEST(GoldenRun, StatsAggregateAcrossLaunches) {
  const auto app = make_benchmark("hotspot");
  const auto golden = campaign::run_golden(*app, config());
  const auto stats = golden.kernel_stats("hotspot_k1");
  // Two launches of the same kernel: aggregated counters double up.
  EXPECT_EQ(stats.warp_instrs,
            golden.launches[0].stats.warp_instrs + golden.launches[1].stats.warp_instrs);
  EXPECT_GT(stats.l1d.accesses, 0u);
  EXPECT_GT(stats.l1t.accesses, 0u);  // power map goes through the texture path
  EXPECT_GT(stats.smem_instrs, 0u);
}

}  // namespace
}  // namespace gras::workloads
