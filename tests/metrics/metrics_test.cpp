// AVF/SVF arithmetic tests against the paper's formulas (§II-B, §II-C),
// using synthetic campaign results with known histograms.
#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include "src/workloads/workload.h"

namespace gras::metrics {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

campaign::CampaignResult synthetic(campaign::Target target, std::uint64_t masked,
                                   std::uint64_t sdc, std::uint64_t timeout,
                                   std::uint64_t due) {
  campaign::CampaignResult r;
  r.spec.target = target;
  r.counts.masked = masked;
  r.counts.sdc = sdc;
  r.counts.timeout = timeout;
  r.counts.due = due;
  return r;
}

TEST(StructureBits, DeriveFromConfig) {
  const StructureBits bits = StructureBits::from(config());
  const auto c = config();
  EXPECT_EQ(bits.rf, std::uint64_t{c.regs_per_sm} * 32 * c.num_sms);
  EXPECT_EQ(bits.l2, c.l2.data_bits());
  EXPECT_EQ(bits.total(), bits.rf + bits.smem + bits.l1d + bits.l1t + bits.l2);
  EXPECT_EQ(bits.cache_total(), bits.l1d + bits.l1t + bits.l2);
  // The register file dominates the chip (paper footnote 2).
  EXPECT_GT(bits.rf, bits.l1d + bits.l1t);
}

TEST(Breakdown, ValueIsSumOfClasses) {
  Breakdown b{0.1, 0.02, 0.03};
  EXPECT_DOUBLE_EQ(b.value(), 0.15);
  const Breakdown s = b.scaled(0.5);
  EXPECT_DOUBLE_EQ(s.sdc, 0.05);
  EXPECT_DOUBLE_EQ(s.value(), 0.075);
  Breakdown acc;
  acc += b;
  acc += s;
  EXPECT_DOUBLE_EQ(acc.value(), 0.225);
}

TEST(Breakdown, OfCountsMatchesFr) {
  const auto r = synthetic(campaign::Target::RF, 70, 20, 4, 6);
  const Breakdown b = breakdown_of(r.counts);
  EXPECT_DOUBLE_EQ(b.sdc, 0.20);
  EXPECT_DOUBLE_EQ(b.timeout, 0.04);
  EXPECT_DOUBLE_EQ(b.due, 0.06);
  EXPECT_DOUBLE_EQ(b.value(), r.counts.failure_rate());
}

TEST(Derating, RfFollowsPaperFormula) {
  const auto app = workloads::make_benchmark("va");
  const auto golden = campaign::run_golden(*app, config());
  const double df = rf_derating(golden, "va_k1", config());
  const auto& l = golden.launches[0];
  const double expected = static_cast<double>(l.regs_per_thread) * 32.0 *
                          static_cast<double>(l.threads) /
                          static_cast<double>(config().rf_bits_total());
  EXPECT_DOUBLE_EQ(df, std::min(1.0, expected));
  EXPECT_GT(df, 0.0);
  EXPECT_LE(df, 1.0);
}

TEST(Derating, SmemZeroWhenKernelUsesNone) {
  const auto app = workloads::make_benchmark("va");
  const auto golden = campaign::run_golden(*app, config());
  EXPECT_DOUBLE_EQ(smem_derating(golden, "va_k1", config()), 0.0);
}

TEST(Derating, SmemPositiveWhenKernelUsesShared) {
  const auto app = workloads::make_benchmark("scp");
  const auto golden = campaign::run_golden(*app, config());
  EXPECT_GT(smem_derating(golden, "scp_k1", config()), 0.0);
}

/// Hand-assembled single-launch golden run for derating arithmetic.
campaign::GoldenRun golden_with_launch(sim::LaunchRecord l) {
  campaign::GoldenRun g;
  l.kernel = "k";
  if (l.end_cycle == 0) l.end_cycle = 1000;
  g.launches.push_back(std::move(l));
  g.build_index();
  return g;
}

TEST(Derating, SmemWeighsResidentCtasNotGridSize) {
  // Regression: SMEM derating used to weight by grid.count(), which
  // saturates DF at 1 for any grid larger than the device and overstates
  // SMEM AVF. The launch's observed peak residency is the real footprint.
  sim::LaunchRecord l;
  l.grid = {10000, 1, 1};  // far more CTAs than the device can hold
  l.block = {32, 1, 1};
  l.smem_per_cta = 1024;
  l.peak_resident_ctas = 8;
  const double df = smem_derating(golden_with_launch(l), "k", config());
  // 1024 B * 8 bits * 8 resident CTAs / (16384 B * 8 * 4 SMs).
  EXPECT_DOUBLE_EQ(df, 1024.0 * 8.0 * 8.0 /
                           static_cast<double>(config().smem_bits_total()));
  EXPECT_LT(df, 1.0);
}

TEST(Derating, SmemFallsBackToOccupancyBound) {
  // Hand-assembled records carry no observed peak; the bound from per-SM
  // occupancy limits (CTA slots, warp slots, registers, granule-rounded
  // smem) takes its place. Here: min(8 CTA slots, 16 warp slots / 1,
  // 16384/1024 regs, 16384/512 smem granules) = 8 per SM, x4 SMs = 32.
  sim::LaunchRecord l;
  l.grid = {10000, 1, 1};
  l.block = {32, 1, 1};
  l.smem_per_cta = 512;
  l.regs_per_thread = 32;
  const double df = smem_derating(golden_with_launch(l), "k", config());
  EXPECT_DOUBLE_EQ(df, 512.0 * 8.0 * 32.0 /
                           static_cast<double>(config().smem_bits_total()));
  EXPECT_LT(df, 1.0);
}

TEST(Derating, SmemSmallGridIsNotInflatedToTheBound) {
  // A grid smaller than the residency bound holds only grid.count() CTAs.
  sim::LaunchRecord l;
  l.grid = {2, 1, 1};
  l.block = {32, 1, 1};
  l.smem_per_cta = 512;
  const double df = smem_derating(golden_with_launch(l), "k", config());
  EXPECT_DOUBLE_EQ(df, 512.0 * 8.0 * 2.0 /
                           static_cast<double>(config().smem_bits_total()));
}

TEST(Derating, GoldenLaunchesRecordPeakResidency) {
  // run_golden must observe the real peak so smem_derating never needs the
  // fallback for simulated launches.
  const auto app = workloads::make_benchmark("scp");
  const auto golden = campaign::run_golden(*app, config());
  for (const auto& l : golden.launches) {
    EXPECT_GT(l.peak_resident_ctas, 0u) << l.kernel;
    EXPECT_LE(l.peak_resident_ctas, l.grid.count()) << l.kernel;
  }
}

TEST(KernelReliability, AvfIsFrTimesDf) {
  KernelReliability k;
  k.fr[fi::Structure::RF] = Breakdown{0.2, 0.0, 0.1};
  k.df[fi::Structure::RF] = 0.25;
  const Breakdown avf = k.avf(fi::Structure::RF);
  EXPECT_DOUBLE_EQ(avf.sdc, 0.05);
  EXPECT_DOUBLE_EQ(avf.due, 0.025);
  EXPECT_DOUBLE_EQ(avf.value(), 0.075);
}

TEST(KernelReliability, MissingStructureContributesZero) {
  KernelReliability k;
  EXPECT_DOUBLE_EQ(k.avf(fi::Structure::L2).value(), 0.0);
  EXPECT_DOUBLE_EQ(k.chip_avf(StructureBits::from(config())).value(), 0.0);
}

TEST(KernelReliability, ChipAvfIsSizeWeighted) {
  // Two structures with hand sizes: AVF(chip) = sum size_h/total * AVF(h).
  KernelReliability k;
  k.fr[fi::Structure::RF] = Breakdown{0.4, 0.0, 0.0};
  k.df[fi::Structure::RF] = 1.0;
  k.fr[fi::Structure::L2] = Breakdown{0.1, 0.0, 0.0};
  k.df[fi::Structure::L2] = 1.0;
  StructureBits bits;
  bits.rf = 300;
  bits.l2 = 100;
  const Breakdown chip = k.chip_avf(bits);
  EXPECT_NEAR(chip.sdc, 0.4 * 0.75 + 0.1 * 0.25, 1e-12);
}

TEST(KernelReliability, AvfCacheWeighsOnlyCaches) {
  KernelReliability k;
  k.fr[fi::Structure::RF] = Breakdown{1.0, 0.0, 0.0};  // must not contribute
  k.df[fi::Structure::RF] = 1.0;
  k.fr[fi::Structure::L1D] = Breakdown{0.2, 0.0, 0.0};
  k.df[fi::Structure::L1D] = 1.0;
  k.fr[fi::Structure::L2] = Breakdown{0.4, 0.0, 0.0};
  k.df[fi::Structure::L2] = 1.0;
  StructureBits bits;
  bits.rf = 1000;
  bits.l1d = 100;
  bits.l1t = 0;
  bits.l2 = 300;
  const Breakdown cache = k.avf_cache(bits);
  EXPECT_NEAR(cache.sdc, 0.2 * 0.25 + 0.4 * 0.75, 1e-12);
}

TEST(AppReliability, CycleWeightedAvf) {
  // Paper: AVF(app) = sum AVF(k) * cycles(k) / total cycles.
  AppReliability app;
  KernelReliability k1;
  k1.fr[fi::Structure::RF] = Breakdown{0.3, 0.0, 0.0};
  k1.df[fi::Structure::RF] = 1.0;
  k1.cycles = 100;
  k1.instructions = 10;
  KernelReliability k2;
  k2.fr[fi::Structure::RF] = Breakdown{0.6, 0.0, 0.0};
  k2.df[fi::Structure::RF] = 1.0;
  k2.cycles = 300;
  k2.instructions = 90;
  app.kernels = {k1, k2};
  EXPECT_NEAR(app.avf_rf().sdc, 0.3 * 0.25 + 0.6 * 0.75, 1e-12);
}

TEST(AppReliability, InstructionWeightedSvf) {
  AppReliability app;
  KernelReliability k1;
  k1.svf = Breakdown{0.5, 0.0, 0.0};
  k1.cycles = 1000;
  k1.instructions = 10;
  KernelReliability k2;
  k2.svf = Breakdown{0.1, 0.0, 0.0};
  k2.cycles = 1;
  k2.instructions = 90;
  app.kernels = {k1, k2};
  // SVF weighting ignores cycles entirely.
  EXPECT_NEAR(app.svf().sdc, 0.5 * 0.1 + 0.1 * 0.9, 1e-12);
}

TEST(AppReliability, EmptyIsZero) {
  AppReliability app;
  EXPECT_DOUBLE_EQ(app.svf().value(), 0.0);
  EXPECT_DOUBLE_EQ(app.chip_avf(StructureBits::from(config())).value(), 0.0);
}

TEST(Consolidate, BuildsFromCampaigns) {
  const auto app = workloads::make_benchmark("scp");
  const auto golden = campaign::run_golden(*app, config());
  campaign::KernelCampaigns campaigns;
  campaigns.emplace(campaign::Target::RF, synthetic(campaign::Target::RF, 8, 2, 0, 0));
  campaigns.emplace(campaign::Target::Svf, synthetic(campaign::Target::Svf, 5, 5, 0, 0));
  campaigns.emplace(campaign::Target::SvfLd,
                    synthetic(campaign::Target::SvfLd, 9, 1, 0, 0));
  const KernelReliability k = consolidate_kernel(golden, "scp_k1", campaigns, config());
  EXPECT_EQ(k.kernel, "scp_k1");
  EXPECT_DOUBLE_EQ(k.fr.at(fi::Structure::RF).sdc, 0.2);
  EXPECT_DOUBLE_EQ(k.svf.sdc, 0.5);
  EXPECT_DOUBLE_EQ(k.svf_ld.sdc, 0.1);
  EXPECT_EQ(k.cycles, golden.kernel_cycles("scp_k1"));
  EXPECT_EQ(k.instructions, golden.kernel_gp_instrs("scp_k1"));
  EXPECT_DOUBLE_EQ(k.df.at(fi::Structure::L1D), 1.0);
  EXPECT_GT(k.df.at(fi::Structure::RF), 0.0);
}

}  // namespace
}  // namespace gras::metrics
