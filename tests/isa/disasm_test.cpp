#include "src/isa/disasm.h"

#include <gtest/gtest.h>

#include "src/assembler/assembler.h"

namespace gras::isa {
namespace {

TEST(Disasm, RendersGuardsAndOperands) {
  Instr i;
  i.op = Op::IMAD;
  i.guard = 0;
  i.guard_neg = true;
  i.dst = 4;
  i.a = Operand::gpr(0);
  i.b = Operand::imm(0x10);
  i.c = Operand::gpr(3);
  EXPECT_EQ(disassemble(i), "@!P0 IMAD R4, R0, 0x10, R3");
}

TEST(Disasm, RendersMemoryOffsets) {
  Instr i;
  i.op = Op::LDG;
  i.dst = 6;
  i.a = Operand::gpr(4);
  i.mem_offset = 16;
  EXPECT_EQ(disassemble(i), "LDG R6, [R4+16]");
  i.mem_offset = -4;
  EXPECT_EQ(disassemble(i), "LDG R6, [R4-4]");
}

TEST(Disasm, RendersNamedParams) {
  Kernel k;
  k.params.push_back({"src", true, 0});
  Instr i;
  i.op = Op::MOV;
  i.dst = 1;
  i.a = Operand::param(0);
  EXPECT_EQ(disassemble(i, &k), "MOV R1, c[src]");
  EXPECT_EQ(disassemble(i), "MOV R1, c[0x0]");
}

TEST(Disasm, RendersCompareAndMufuSuffixes) {
  Instr i;
  i.op = Op::ISETP;
  i.cmp = Cmp::LT;
  i.pdst = 2;
  i.a = Operand::gpr(1);
  i.b = Operand::gpr(3);
  EXPECT_EQ(disassemble(i), "ISETP.LT P2, R1, R3");

  Instr m;
  m.op = Op::MUFU;
  m.mufu = Mufu::SQRT;
  m.dst = 5;
  m.a = Operand::gpr(5);
  EXPECT_EQ(disassemble(m), "MUFU.SQRT R5, R5");
}

TEST(Disasm, RendersBranchTargets) {
  Instr i;
  i.op = Op::BRA;
  i.target = 12;
  EXPECT_EQ(disassemble(i), "BRA #12");
}

TEST(Disasm, WholeKernelListsEveryInstruction) {
  const auto kernel = assembler::assemble_kernel(R"(
.kernel t
.param n u32
    S2R R0, SR_TID.X
    ISETP.GE P0, R0, c[n]
    @P0 EXIT
    EXIT
)");
  const std::string text = disassemble(kernel);
  EXPECT_NE(text.find("S2R R0, SR_TID.X"), std::string::npos);
  EXPECT_NE(text.find("@P0 EXIT"), std::string::npos);
  EXPECT_NE(text.find(".kernel t"), std::string::npos);
}

}  // namespace
}  // namespace gras::isa
