#include "src/isa/isa.h"

#include <gtest/gtest.h>

namespace gras::isa {
namespace {

Instr make(Op op, std::uint8_t dst = kRegRZ) {
  Instr i;
  i.op = op;
  i.dst = dst;
  return i;
}

TEST(WritesGpr, AluWithRealDst) {
  EXPECT_TRUE(make(Op::IADD, 3).writes_gpr());
  EXPECT_TRUE(make(Op::FFMA, 0).writes_gpr());
  EXPECT_TRUE(make(Op::MUFU, 10).writes_gpr());
  EXPECT_TRUE(make(Op::LDG, 5).writes_gpr());
  EXPECT_TRUE(make(Op::LDS, 5).writes_gpr());
  EXPECT_TRUE(make(Op::ATOM_ADD, 5).writes_gpr());
}

TEST(WritesGpr, RzDestinationDoesNot) {
  EXPECT_FALSE(make(Op::IADD, kRegRZ).writes_gpr());
}

TEST(WritesGpr, NonWritersDoNot) {
  EXPECT_FALSE(make(Op::STG, 3).writes_gpr());
  EXPECT_FALSE(make(Op::BRA, 3).writes_gpr());
  EXPECT_FALSE(make(Op::ISETP, 3).writes_gpr());
  EXPECT_FALSE(make(Op::BAR, 3).writes_gpr());
  EXPECT_FALSE(make(Op::EXIT, 3).writes_gpr());
  EXPECT_FALSE(make(Op::RED_ADD, 3).writes_gpr());
}

TEST(Classification, Loads) {
  EXPECT_TRUE(make(Op::LDG).is_load());
  EXPECT_TRUE(make(Op::LDT).is_load());
  EXPECT_TRUE(make(Op::LDS).is_load());
  EXPECT_FALSE(make(Op::STG).is_load());
  EXPECT_FALSE(make(Op::IADD).is_load());
}

TEST(Classification, StoresAndShared) {
  EXPECT_TRUE(make(Op::STG).is_store());
  EXPECT_TRUE(make(Op::STS).is_store());
  EXPECT_FALSE(make(Op::LDG).is_store());
  EXPECT_TRUE(make(Op::LDS).is_shared_mem());
  EXPECT_TRUE(make(Op::STS).is_shared_mem());
  EXPECT_FALSE(make(Op::LDG).is_shared_mem());
}

TEST(Operand, FloatImmediateRoundTrips) {
  const Operand op = Operand::fimm(1.5f);
  EXPECT_EQ(op.kind, OperandKind::Imm);
  float back;
  __builtin_memcpy(&back, &op.value, 4);
  EXPECT_EQ(back, 1.5f);
}

TEST(Kernel, RecountRegistersTracksMaxUsed) {
  Kernel k;
  Instr i = make(Op::IADD, 7);
  i.a = Operand::gpr(3);
  i.b = Operand::gpr(12);
  k.code.push_back(i);
  k.recount_registers();
  EXPECT_EQ(k.num_regs, 13);
}

TEST(Kernel, RecountIgnoresRz) {
  Kernel k;
  Instr i = make(Op::MOV, 2);
  i.a = Operand::gpr(kRegRZ);
  k.code.push_back(i);
  k.recount_registers();
  EXPECT_EQ(k.num_regs, 3);
}

TEST(Kernel, ParamOffsetLookup) {
  Kernel k;
  k.name = "t";
  k.params.push_back({"a", true, 0});
  k.params.push_back({"n", false, 4});
  EXPECT_EQ(k.param_offset("n"), 4u);
  EXPECT_THROW(k.param_offset("missing"), std::out_of_range);
}

TEST(Names, AreStable) {
  EXPECT_STREQ(op_name(Op::IMAD), "IMAD");
  EXPECT_STREQ(op_name(Op::ATOM_ADD), "ATOM.ADD");
  EXPECT_STREQ(cmp_name(Cmp::GE), "GE");
  EXPECT_STREQ(mufu_name(Mufu::EXP), "EXP");
  EXPECT_STREQ(sreg_name(SpecialReg::CTAID_Z), "SR_CTAID.Z");
}

}  // namespace
}  // namespace gras::isa
