// Build provenance: every field is populated, and the summary/JSON forms
// that get stamped into journals, traces and benchmark output are
// well-formed and consistent with each other.
#include <gtest/gtest.h>

#include <string>

#include "src/common/build_info.h"

namespace gras {
namespace {

TEST(BuildInfo, FieldsArePopulated) {
  const BuildInfo& b = build_info();
  EXPECT_FALSE(b.git_sha.empty());
  EXPECT_FALSE(b.compiler.empty());
  EXPECT_FALSE(b.build_type.empty());
  // This test suite is always compiled by gcc or clang.
  EXPECT_TRUE(b.compiler.rfind("gcc ", 0) == 0 ||
              b.compiler.rfind("clang ", 0) == 0)
      << b.compiler;
}

TEST(BuildInfo, SummaryEmbedsEveryIdentityField) {
  const BuildInfo& b = build_info();
  const std::string s = build_summary();
  EXPECT_EQ(s.rfind("gras ", 0), 0u) << s;
  EXPECT_NE(s.find(b.git_sha), std::string::npos) << s;
  EXPECT_NE(s.find(b.build_type), std::string::npos) << s;
  EXPECT_NE(s.find(b.compiler), std::string::npos) << s;
  // Stable across calls: the summary keys journal/trace attribution.
  EXPECT_EQ(s, build_summary());
}

TEST(BuildInfo, JsonCarriesAllKeys) {
  const std::string j = build_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"git_sha\":\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"compiler\":\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"build_type\":\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"flags\":\""), std::string::npos) << j;
}

}  // namespace
}  // namespace gras
