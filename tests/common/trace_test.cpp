// Span tracing: disabled spans are no-ops, recorded spans collect in
// nesting order with thread labels, self-time attribution never
// double-counts nested phases, and trace files round-trip through the
// exporter/parser with deterministic `gras stats` rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/build_info.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras::trace {
namespace {

std::filesystem::path temp_trace(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_trace_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

/// The trace module is process-global; every test starts and ends with a
/// clean, disabled session so tests cannot leak spans into each other.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

Event make_event(std::uint32_t tid, const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  Event e;
  e.name = name;
  e.cat = "phase";
  e.tid = tid;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  return e;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(enabled());
  {
    const Span a("never");
    const Span b("never", "sim", "index", 42);
  }
  EXPECT_TRUE(collect().empty());
  EXPECT_EQ(dropped_events(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpansInOrder) {
  start();
  ASSERT_TRUE(enabled());
  {
    const Span outer("outer");
    { const Span inner("inner", "sim", "index", 7); }
    { const Span inner("inner", "sim", "index", 8); }
  }
  stop();
  EXPECT_FALSE(enabled());

  const std::vector<Event> events = collect();
  ASSERT_EQ(events.size(), 3u);
  // collect() orders each thread's events parent-before-child.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].cat, "phase");
  EXPECT_TRUE(events[0].arg_name.empty());
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].cat, "sim");
  EXPECT_EQ(events[1].arg_name, "index");
  EXPECT_EQ(events[1].arg, 7u);
  EXPECT_EQ(events[2].arg, 8u);
  // Nesting: the outer span contains both inner spans.
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns,
              events[0].start_ns + events[0].dur_ns);
  }
  EXPECT_LE(events[1].start_ns + events[1].dur_ns, events[2].start_ns);
}

TEST_F(TraceTest, StopEndsRecording) {
  start();
  { const Span a("kept"); }
  stop();
  { const Span b("discarded"); }
  const std::vector<Event> events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
}

TEST_F(TraceTest, StartClearsThePreviousSession) {
  start();
  { const Span a("first_session"); }
  start();
  { const Span b("second_session"); }
  stop();
  const std::vector<Event> events = collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second_session");
}

TEST_F(TraceTest, ThreadsGetDistinctTidsAndLabels) {
  start();
  set_thread_name("trace-test-main");
  { const Span a("main_work"); }
  std::thread helper([] {
    set_thread_name("trace-test-helper");
    const Span b("helper_work", "pool");
  });
  helper.join();
  stop();

  const std::vector<Event> events = collect();
  ASSERT_EQ(events.size(), 2u);
  const Event* main_ev = nullptr;
  const Event* helper_ev = nullptr;
  for (const Event& e : events) {
    if (e.name == "main_work") main_ev = &e;
    if (e.name == "helper_work") helper_ev = &e;
  }
  ASSERT_NE(main_ev, nullptr);
  ASSERT_NE(helper_ev, nullptr);
  EXPECT_EQ(main_ev->thread, "trace-test-main");
  EXPECT_EQ(helper_ev->thread, "trace-test-helper");
  EXPECT_NE(main_ev->tid, helper_ev->tid);
}

TEST_F(TraceTest, PhaseTotalsSeparatesSelfFromNestedTime) {
  // tid 1: outer [0,1000) containing inner [100,300) with leaf [150,200)
  //        and inner [400,500); tid 2: bare outer [0,600).
  std::vector<Event> events;
  events.push_back(make_event(1, "outer", 0, 1000));
  events.push_back(make_event(1, "inner", 100, 200));
  events.push_back(make_event(1, "leaf", 150, 50));
  events.push_back(make_event(1, "inner", 400, 100));
  events.push_back(make_event(2, "outer", 0, 600));

  const std::vector<PhaseTotal> totals = phase_totals(events);
  ASSERT_EQ(totals.size(), 3u);
  // Sorted by self time descending.
  EXPECT_EQ(totals[0].name, "outer");
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[0].total_ns, 1600u);
  // outer self: 1000 - (200 + 100) direct children, plus the bare 600.
  EXPECT_EQ(totals[0].self_ns, 1300u);
  EXPECT_EQ(totals[1].name, "inner");
  EXPECT_EQ(totals[1].count, 2u);
  EXPECT_EQ(totals[1].total_ns, 300u);
  // The leaf nests in the first inner, not in outer: inner self 300 - 50.
  EXPECT_EQ(totals[1].self_ns, 250u);
  EXPECT_EQ(totals[2].name, "leaf");
  EXPECT_EQ(totals[2].self_ns, 50u);

  // Self times always partition the traced time exactly.
  std::uint64_t self_sum = 0;
  for (const PhaseTotal& t : totals) self_sum += t.self_ns;
  EXPECT_EQ(self_sum, 1000u + 600u);
}

TEST_F(TraceTest, PhaseTotalsNeverNestsAcrossThreads) {
  // tid 2's span falls inside tid 1's window but runs on another thread:
  // it must not be subtracted from tid 1's self time.
  std::vector<Event> events;
  events.push_back(make_event(1, "a", 0, 100));
  events.push_back(make_event(2, "b", 10, 20));
  const std::vector<PhaseTotal> totals = phase_totals(events);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "a");
  EXPECT_EQ(totals[0].self_ns, 100u);
  EXPECT_EQ(totals[1].name, "b");
  EXPECT_EQ(totals[1].self_ns, 20u);
}

TEST_F(TraceTest, WriteAndReadFileRoundTrips) {
  telemetry::counter("test.trace.roundtrip").add(3);
  start();
  set_thread_name("trace-test-rt");
  {
    const Span outer("rt_outer");
    const Span inner("rt_inner", "sim", "launch", 11);
  }
  stop();

  const auto path = temp_trace("roundtrip.json");
  ASSERT_TRUE(write_file(path));

  const auto parsed = read_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->build, build_summary());
  EXPECT_EQ(parsed->dropped, 0u);

  const std::vector<Event> original = collect();
  ASSERT_EQ(parsed->events.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->events[i].name, original[i].name);
    EXPECT_EQ(parsed->events[i].cat, original[i].cat);
    EXPECT_EQ(parsed->events[i].tid, original[i].tid);
    EXPECT_EQ(parsed->events[i].thread, "trace-test-rt");
    // The writer prints microseconds with 3 decimals: exact nanoseconds.
    EXPECT_EQ(parsed->events[i].start_ns, original[i].start_ns);
    EXPECT_EQ(parsed->events[i].dur_ns, original[i].dur_ns);
  }

  // Counter events carry the registry snapshot at export time.
  bool found = false;
  for (const auto& [name, value] : parsed->counters) {
    if (name == "test.trace.roundtrip") {
      found = true;
      EXPECT_GE(value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, ToJsonEmitsUniformEventObjects) {
  start();
  { const Span a("json_span", "phase", "index", 5); }
  stop();
  const std::string json = to_json(collect());
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"name\":\"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"index\":5}"), std::string::npos);
}

TEST_F(TraceTest, ReadFileRejectsForeignFiles) {
  EXPECT_FALSE(read_file(temp_trace("missing.json")).has_value());
  const auto path = temp_trace("garbage.json");
  std::ofstream(path) << "not a trace\n";
  EXPECT_FALSE(read_file(path).has_value());
}

TEST_F(TraceTest, RenderStatsIsDeterministic) {
  ParsedTrace parsed;
  parsed.build = "gras test-sha Debug (test)";
  parsed.dropped = 2;
  parsed.events.push_back(make_event(1, "outer", 0, 2'000'000));
  parsed.events.push_back(make_event(1, "inner", 500'000, 1'000'000));
  parsed.counters.emplace_back("sim.cycles", 12345);

  const std::string a = render_stats(parsed);
  const std::string b = render_stats(parsed);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("build: gras test-sha Debug (test)"), std::string::npos) << a;
  EXPECT_NE(a.find("events: 2, dropped: 2"), std::string::npos) << a;
  EXPECT_NE(a.find("outer"), std::string::npos);
  EXPECT_NE(a.find("sim.cycles"), std::string::npos);
  EXPECT_NE(a.find("12345"), std::string::npos);
}

}  // namespace
}  // namespace gras::trace
