#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gras {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) counts[rng.below(kBuckets)] += 1;
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForSampleIsDeterministic) {
  Rng a = Rng::for_sample(100, 5);
  Rng b = Rng::for_sample(100, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForSampleStreamsAreIndependent) {
  // Consecutive sample indices must give uncorrelated streams.
  Rng a = Rng::for_sample(100, 5);
  Rng b = Rng::for_sample(100, 6);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

TEST(Splitmix, KnownProperties) {
  std::uint64_t s1 = 0, s2 = 0;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  EXPECT_EQ(a, b);               // deterministic
  EXPECT_NE(splitmix64(s1), a);  // state advances
}

}  // namespace
}  // namespace gras
