// Telemetry registry: get-or-create identity, kind-mismatch rejection,
// log2 histogram quantiles, snapshot flattening and JSON export, and
// reset() semantics (zeroes values, keeps references valid).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/metrics_registry.h"

namespace gras::telemetry {
namespace {

// The registry is process-global and shared with every other test in this
// binary, so tests register under a reserved "test.mr." prefix and only
// assert on their own entries.

TEST(MetricsRegistry, CounterAccumulatesAndIsStable) {
  Counter& c = counter("test.mr.counter");
  c.reset();
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  // Same name, same object: hot paths may cache the reference.
  EXPECT_EQ(&c, &counter("test.mr.counter"));
}

TEST(MetricsRegistry, GaugeHoldsLastWrite) {
  Gauge& g = gauge("test.mr.gauge");
  g.set(42);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  counter("test.mr.kind");
  EXPECT_THROW(gauge("test.mr.kind"), std::logic_error);
  EXPECT_THROW(histogram("test.mr.kind"), std::logic_error);
  // The original registration survives the failed lookups.
  counter("test.mr.kind").add();
  EXPECT_GE(counter("test.mr.kind").value(), 1u);
}

TEST(MetricsRegistry, HistogramBucketsByBitWidth) {
  Histogram& h = histogram("test.mr.hist");
  h.reset();
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (const std::uint64_t v : {1u, 2u, 3u, 4u}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  // Quantiles report the upper bound of the containing log2 bucket:
  // rank 2 of {1,2,3,4} lands in the bit_width==2 bucket ({2,3}) -> 3.
  EXPECT_EQ(h.quantile(0.5), 3u);
  // rank = trunc(q*n): 0.99 -> rank 3, still the {2,3} bucket.
  EXPECT_EQ(h.quantile(0.99), 3u);
  // rank 4 lands in the bit_width==3 bucket ({4}) -> 7.
  EXPECT_EQ(h.quantile(1.0), 7u);
  EXPECT_EQ(h.quantile(0.0), 1u);  // rank clamps to 1: bucket of value 1
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricsRegistry, SnapshotReportsEveryKindSorted) {
  counter("test.mr.snap.c").reset();
  counter("test.mr.snap.c").add(9);
  gauge("test.mr.snap.g").set(4);
  Histogram& h = histogram("test.mr.snap.h");
  h.reset();
  h.observe(100);

  std::vector<MetricValue> mine;
  for (const MetricValue& v : Registry::instance().snapshot()) {
    if (v.name.rfind("test.mr.snap.", 0) == 0) mine.push_back(v);
  }
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].name, "test.mr.snap.c");
  EXPECT_EQ(mine[0].kind, MetricValue::Kind::Counter);
  EXPECT_EQ(mine[0].value, 9);
  EXPECT_EQ(mine[1].name, "test.mr.snap.g");
  EXPECT_EQ(mine[1].kind, MetricValue::Kind::Gauge);
  EXPECT_EQ(mine[1].value, 4);
  EXPECT_EQ(mine[2].name, "test.mr.snap.h");
  EXPECT_EQ(mine[2].kind, MetricValue::Kind::Histogram);
  EXPECT_EQ(mine[2].value, 1);  // count
  EXPECT_EQ(mine[2].sum, 100u);
  EXPECT_EQ(mine[2].max, 100u);
  EXPECT_EQ(mine[2].p50, 127u);  // bit_width(100) == 7 -> upper bound 127
}

TEST(MetricsRegistry, FlatSnapshotExpandsHistogramsAndKeepsGaugeSign) {
  counter("test.mr.flat.c").reset();
  counter("test.mr.flat.c").add(2);
  gauge("test.mr.flat.g").set(-5);  // gauges export signed, not clamped
  Histogram& h = histogram("test.mr.flat.h");
  h.reset();
  h.observe(8);

  std::vector<std::pair<std::string, std::int64_t>> mine;
  for (const auto& kv : Registry::instance().flat_snapshot()) {
    if (kv.first.rfind("test.mr.flat.", 0) == 0) mine.push_back(kv);
  }
  ASSERT_EQ(mine.size(), 7u);
  EXPECT_EQ(mine[0], (std::pair<std::string, std::int64_t>{"test.mr.flat.c", 2}));
  EXPECT_EQ(mine[1], (std::pair<std::string, std::int64_t>{"test.mr.flat.g", -5}));
  EXPECT_EQ(mine[2].first, "test.mr.flat.h.count");
  EXPECT_EQ(mine[2].second, 1);
  EXPECT_EQ(mine[3].first, "test.mr.flat.h.sum");
  EXPECT_EQ(mine[3].second, 8);
  EXPECT_EQ(mine[4].first, "test.mr.flat.h.p50");
  EXPECT_EQ(mine[5].first, "test.mr.flat.h.p99");
  EXPECT_EQ(mine[6].first, "test.mr.flat.h.max");
  EXPECT_EQ(mine[6].second, 8);
}

TEST(MetricsRegistry, QuantileEdges) {
  Histogram& h = histogram("test.mr.qedge");
  h.reset();
  // Empty: every quantile is 0.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  // Single bucket: every quantile reports that bucket's upper bound.
  h.observe(5);  // bit_width(5) == 3 -> upper bound 7
  EXPECT_EQ(h.quantile(0.0), 7u);
  EXPECT_EQ(h.quantile(0.5), 7u);
  EXPECT_EQ(h.quantile(0.99), 7u);
  EXPECT_EQ(h.quantile(1.0), 7u);
  // Zero observations land in bucket 0, whose upper bound is 0.
  h.reset();
  h.observe(0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(MetricsRegistry, SnapshotJsonIsOneFlatObject) {
  counter("test.mr.json.c").reset();
  counter("test.mr.json.c").add(17);
  const std::string j = Registry::instance().snapshot_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"test.mr.json.c\":17"), std::string::npos) << j;
}

TEST(MetricsRegistry, SnapshotJsonEscapesHostileNames) {
  // Nothing stops a caller registering a name with quotes, backslashes, or
  // control characters; the JSON export must stay parseable anyway.
  counter("test.mr.esc.\"quote\\back\nline").reset();
  counter("test.mr.esc.\"quote\\back\nline").add(3);
  const std::string j = Registry::instance().snapshot_json();
  EXPECT_NE(j.find("\"test.mr.esc.\\\"quote\\\\back\\u000aline\":3"),
            std::string::npos)
      << j;
  // No raw control characters or unescaped quotes survive in the output.
  for (const char c : j) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsReferences) {
  Counter& c = counter("test.mr.reset.c");
  c.add(100);
  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the pre-reset reference still feeds the same metric
  EXPECT_EQ(counter("test.mr.reset.c").value(), 1u);
}

}  // namespace
}  // namespace gras::telemetry
