#include "src/common/bitops.h"

#include <gtest/gtest.h>

#include <vector>

namespace gras {
namespace {

TEST(FlipBitU32, FlipsSingleBit) {
  EXPECT_EQ(flip_bit(0u, 0), 1u);
  EXPECT_EQ(flip_bit(0u, 31), 0x80000000u);
  EXPECT_EQ(flip_bit(0xffffffffu, 7), 0xffffff7fu);
}

TEST(FlipBitU32, IsInvolution) {
  for (unsigned bit = 0; bit < 32; ++bit) {
    EXPECT_EQ(flip_bit(flip_bit(0xdeadbeefu, bit), bit), 0xdeadbeefu);
  }
}

TEST(FlipBitU32, WrapsBitIndex) {
  EXPECT_EQ(flip_bit(0u, 32), 1u);  // bit & 31
}

TEST(FlipBitSpan, FlipsCorrectByteAndBit) {
  std::vector<std::uint8_t> bytes(4, 0);
  flip_bit(std::span<std::uint8_t>(bytes), 0);
  EXPECT_EQ(bytes[0], 1);
  flip_bit(std::span<std::uint8_t>(bytes), 9);
  EXPECT_EQ(bytes[1], 2);
  flip_bit(std::span<std::uint8_t>(bytes), 31);
  EXPECT_EQ(bytes[3], 0x80);
}

TEST(FlipBitSpan, OutOfRangeIsIgnored) {
  std::vector<std::uint8_t> bytes(2, 0);
  flip_bit(std::span<std::uint8_t>(bytes), 100);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[1], 0);
}

TEST(ReadBit, MatchesFlips) {
  std::vector<std::uint8_t> bytes(8, 0);
  std::span<std::uint8_t> s(bytes);
  EXPECT_FALSE(read_bit(s, 42));
  flip_bit(s, 42);
  EXPECT_TRUE(read_bit(s, 42));
  EXPECT_FALSE(read_bit(s, 41));
  EXPECT_FALSE(read_bit(s, 43));
}

TEST(Popcount, CountsBits) {
  std::vector<std::uint8_t> bytes = {0xff, 0x0f, 0x01, 0x00};
  EXPECT_EQ(popcount(std::span<const std::uint8_t>(bytes)), 13u);
}

TEST(CeilDiv, Rounds) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(IsPow2, Classifies) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Log2Pow2, Computes) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(128), 7u);
}

}  // namespace
}  // namespace gras
