#include "src/common/table.h"

#include <gtest/gtest.h>

namespace gras {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, PctScalesBy100) {
  EXPECT_EQ(TextTable::pct(0.1234, 2), "12.34");
  EXPECT_EQ(TextTable::pct(1.0, 1), "100.0");
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable t({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace gras
