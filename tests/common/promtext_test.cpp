// Prometheus text exposition: name sanitization, label escaping, registry
// rendering (counter/gauge/histogram with cumulative log2 buckets), and the
// embedded HTTP listener probed with a raw socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/promtext.h"

namespace gras::promtext {
namespace {

TEST(Promtext, MetricNameSanitizes) {
  EXPECT_EQ(metric_name("fabric.records.received"),
            "gras_fabric_records_received");
  EXPECT_EQ(metric_name("a.b", "x_"), "x_a_b");
  EXPECT_EQ(metric_name("ok_name:sub"), "gras_ok_name:sub");
  // Everything outside [a-zA-Z0-9_:] maps to '_'.
  EXPECT_EQ(metric_name("sp ace-dash\"quote"), "gras_sp_ace_dash_quote");
  EXPECT_EQ(metric_name(""), "gras_");
}

TEST(Promtext, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

TEST(Promtext, WriterEmitsFamiliesAndSamples) {
  Writer w;
  w.family("m", "help text", "gauge");
  w.sample("m", {}, std::int64_t{-3});
  w.sample("m", {{"k", "v"}, {"k2", "x\"y"}}, std::uint64_t{7});
  w.sample("m", {}, 1.5);
  EXPECT_EQ(w.text(),
            "# HELP m help text\n"
            "# TYPE m gauge\n"
            "m -3\n"
            "m{k=\"v\",k2=\"x\\\"y\"} 7\n"
            "m 1.5\n");
}

TEST(Promtext, RenderRegistryCounterAndGauge) {
  std::vector<telemetry::MetricValue> snap(2);
  snap[0].name = "fab.sent";
  snap[0].kind = telemetry::MetricValue::Kind::Counter;
  snap[0].value = 12;
  snap[1].name = "queue.depth";
  snap[1].kind = telemetry::MetricValue::Kind::Gauge;
  snap[1].value = -4;  // gauges keep their sign
  const std::string text = render_registry(snap);
  EXPECT_NE(text.find("# TYPE gras_fab_sent_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gras_fab_sent_total 12\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE gras_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("gras_queue_depth -4\n"), std::string::npos) << text;
}

TEST(Promtext, RenderRegistryHistogramBucketsAreCumulative) {
  telemetry::MetricValue h;
  h.name = "lat";
  h.kind = telemetry::MetricValue::Kind::Histogram;
  h.value = 6;  // count
  h.sum = 30;
  h.buckets.assign(64, 0);
  h.buckets[1] = 2;  // values with bit_width 1 (just 1), le="1"
  h.buckets[3] = 4;  // values in [4,7], le="7"
  const std::string text = render_registry({h});
  // Cumulative counts: le="0" 0, le="1" 2, le="3" 2, le="7" 6, +Inf 6.
  EXPECT_NE(text.find("gras_lat_bucket{le=\"0\"} 0\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gras_lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("gras_lat_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("gras_lat_bucket{le=\"7\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("gras_lat_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("gras_lat_sum 30\n"), std::string::npos);
  EXPECT_NE(text.find("gras_lat_count 6\n"), std::string::npos);
  // Trailing empty buckets are elided: nothing past le="7" but +Inf.
  EXPECT_EQ(text.find("le=\"15\""), std::string::npos) << text;
}

// Issues one HTTP request against 127.0.0.1:port and returns the raw
// response (empty on any socket failure).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string out;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    ::send(fd, request.data(), request.size(), 0);
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

TEST(Promtext, HttpServerServesMetricsAnd404s) {
  MetricsHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start("127.0.0.1", 0,
                           [] { return std::string("test_metric 1\n"); },
                           &error))
      << error;
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_request(
      server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos) << ok;
  EXPECT_NE(ok.find("test_metric 1\n"), std::string::npos) << ok;

  const std::string root =
      http_request(server.port(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(root.find("200 OK"), std::string::npos) << root;

  const std::string missing =
      http_request(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos) << missing;

  const std::string post =
      http_request(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos) << post;

  const std::uint16_t port = server.port();
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_TRUE(http_request(port, "GET /metrics HTTP/1.1\r\n\r\n").empty());
}

TEST(Promtext, WritePortFilePublishesAtomically) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "gras_promtext_port_test.txt";
  std::string error;
  ASSERT_TRUE(write_port_file(path, 12345, &error)) << error;
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "12345");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gras::promtext
