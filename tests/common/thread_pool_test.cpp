#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gras {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count += 1; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count += 1; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count() + 1, 1u);  // spawned = threads - 1
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count += 1; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, LargeBatchCompletes) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100000, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100000ull * 99999 / 2);
}

}  // namespace
}  // namespace gras
