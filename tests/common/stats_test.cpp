#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gras {
namespace {

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(ZForConfidence, MatchesQuantile) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(z_for_confidence(0.99), 2.575829, 1e-5);
}

TEST(PaperSampleSize, ThreeThousandGives235Margin) {
  // The paper (§II-A): 3,000 injections -> 99% CI with ~+/-2.35% margin.
  EXPECT_NEAR(margin_for_samples(3000, 0.99), 0.0235, 0.0003);
}

TEST(RequiredSamples, InvertsMargin) {
  const std::uint64_t n = required_samples(0.0235, 0.99, ~std::uint64_t{0} >> 1);
  EXPECT_NEAR(static_cast<double>(n), 3000.0, 30.0);
}

TEST(RequiredSamples, FinitePopulationReducesSamples) {
  const std::uint64_t small = required_samples(0.01, 0.99, 10'000);
  const std::uint64_t large = required_samples(0.01, 0.99, 100'000'000);
  EXPECT_LT(small, large);
  EXPECT_LE(small, 10'000u);
}

TEST(RequiredSamples, EdgeCases) {
  EXPECT_EQ(required_samples(0.01, 0.99, 0), 0u);
  EXPECT_EQ(required_samples(0.0, 0.99, 100), 0u);
}

TEST(WaldInterval, CentersOnEstimate) {
  const ProportionCi ci = wald_interval(50, 100, 0.95);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.5);
  EXPECT_NEAR(ci.margin(), 1.959964 * std::sqrt(0.25 / 100), 1e-6);
  EXPECT_NEAR(ci.lower, 0.5 - ci.margin(), 1e-12);
}

TEST(WaldInterval, ClampsToUnitInterval) {
  const ProportionCi lo = wald_interval(0, 100, 0.99);
  EXPECT_EQ(lo.lower, 0.0);
  const ProportionCi hi = wald_interval(100, 100, 0.99);
  EXPECT_EQ(hi.upper, 1.0);
}

TEST(WaldInterval, ZeroTrialsIsNoInformation) {
  // Zero trials must yield the vacuous interval [0, 1], never [0, 0]: a
  // zero-width interval would satisfy any early-stop margin before a single
  // sample has run.
  const ProportionCi ci = wald_interval(0, 0, 0.99);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 1.0);
  EXPECT_DOUBLE_EQ(ci.margin(), 0.5);
}

TEST(WilsonInterval, ZeroTrialsIsNoInformation) {
  const ProportionCi ci = wilson_interval(0, 0, 0.99);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 1.0);
}

TEST(WilsonInterval, NeverDegenerateAtExtremes) {
  const ProportionCi ci = wilson_interval(0, 100, 0.99);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_GT(ci.upper, 0.0);  // Wilson upper bound stays informative
  EXPECT_LT(ci.upper, 0.1);
}

TEST(WilsonInterval, ContainsEstimateForModerateP) {
  const ProportionCi ci = wilson_interval(30, 100, 0.95);
  EXPECT_LT(ci.lower, 0.3);
  EXPECT_GT(ci.upper, 0.3);
}

TEST(WilsonInterval, NarrowerWithMoreSamples) {
  const ProportionCi a = wilson_interval(30, 100, 0.95);
  const ProportionCi b = wilson_interval(300, 1000, 0.95);
  EXPECT_LT(b.margin(), a.margin());
}

TEST(WilsonIntervalReal, MatchesIntegerWilson) {
  const ProportionCi integer = wilson_interval(30, 100, 0.95);
  const ProportionCi real = wilson_interval_real(30.0, 100.0, 0.95);
  EXPECT_DOUBLE_EQ(real.estimate, integer.estimate);
  EXPECT_DOUBLE_EQ(real.lower, integer.lower);
  EXPECT_DOUBLE_EQ(real.upper, integer.upper);
}

TEST(WilsonIntervalReal, FractionalEffectiveSampleSize) {
  // Weighted estimators feed fractional (Kish) trial counts; fewer effective
  // trials must widen the interval, smoothly.
  const ProportionCi big = wilson_interval_real(7.5, 25.0, 0.99);
  const ProportionCi small = wilson_interval_real(1.86, 6.2, 0.99);
  EXPECT_NEAR(big.estimate, 0.3, 1e-12);
  EXPECT_NEAR(small.estimate, 0.3, 1e-12);
  EXPECT_GT(small.margin(), big.margin());
  EXPECT_GE(small.lower, 0.0);
  EXPECT_LE(small.upper, 1.0);
}

TEST(WilsonIntervalReal, DegenerateInputsAreNoInformation) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const ProportionCi ci :
       {wilson_interval_real(0.0, 0.0, 0.99), wilson_interval_real(1.0, -3.0, 0.99),
        wilson_interval_real(nan, 10.0, 0.99), wilson_interval_real(5.0, nan, 0.99),
        wilson_interval_real(5.0, inf, 0.99), wilson_interval_real(5.0, 10.0, nan)}) {
    EXPECT_EQ(ci.estimate, 0.0);
    EXPECT_EQ(ci.lower, 0.0);
    EXPECT_EQ(ci.upper, 1.0);
  }
}

TEST(WilsonIntervalReal, ClampsSuccessesToTrials) {
  // successes > trials (possible from accumulated rounding) clamps p to 1.
  const ProportionCi ci = wilson_interval_real(10.5, 10.0, 0.99);
  EXPECT_DOUBLE_EQ(ci.estimate, 1.0);
  EXPECT_EQ(ci.upper, 1.0);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_TRUE(std::isfinite(ci.lower));
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace gras
