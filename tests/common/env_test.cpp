#include "src/common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gras {
namespace {

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("GRAS_TEST_VAR");
  EXPECT_EQ(env_u64("GRAS_TEST_VAR", 7), 7u);
  EXPECT_EQ(env_str("GRAS_TEST_VAR", "dflt"), "dflt");
}

TEST(Env, ParsesSetValues) {
  ::setenv("GRAS_TEST_VAR", "1234", 1);
  EXPECT_EQ(env_u64("GRAS_TEST_VAR", 7), 1234u);
  EXPECT_EQ(env_str("GRAS_TEST_VAR", "dflt"), "1234");
  ::unsetenv("GRAS_TEST_VAR");
}

TEST(Env, GarbageFallsBack) {
  ::setenv("GRAS_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_u64("GRAS_TEST_VAR", 9), 9u);
  ::setenv("GRAS_TEST_VAR", "", 1);
  EXPECT_EQ(env_u64("GRAS_TEST_VAR", 9), 9u);
  ::unsetenv("GRAS_TEST_VAR");
}

TEST(Env, NamedKnobsHaveDocumentedDefaults) {
  ::unsetenv("GRAS_INJECTIONS");
  ::unsetenv("GRAS_SEED");
  ::unsetenv("GRAS_CONFIG");
  EXPECT_EQ(env_injections(), 300u);
  EXPECT_EQ(env_seed(), 2024u);
  EXPECT_EQ(env_config(), "gv100-scaled");
}

}  // namespace
}  // namespace gras
