// Shared helpers for simulator tests: assemble-and-run one kernel with
// device buffers, read results back.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "src/assembler/assembler.h"
#include "src/sim/config.h"
#include "src/sim/gpu.h"

namespace gras::testing {

inline sim::GpuConfig test_config() {
  sim::GpuConfig c = sim::make_config("gv100-scaled");
  return c;
}

/// One device buffer for a kernel run.
struct DevBuf {
  std::vector<std::uint32_t> data;  // uploaded before, downloaded after
  std::uint32_t addr = 0;
};

/// Runs `source` (one kernel) with the given buffers; params are built by
/// the caller from buf addresses after allocation via the callback.
class KernelRunner {
 public:
  explicit KernelRunner(const std::string& source)
      : config_(test_config()), gpu_(config_), kernel_(assembler::assemble_kernel(source)) {}

  KernelRunner(const std::string& source, sim::GpuConfig config)
      : config_(std::move(config)), gpu_(config_), kernel_(assembler::assemble_kernel(source)) {}

  std::uint32_t alloc(std::vector<std::uint32_t> init) {
    const auto bytes = init.size() * 4;
    const std::uint32_t addr = gpu_.malloc(bytes);
    gpu_.memcpy_h2d(addr, init.data(), bytes);
    bufs_.push_back({std::move(init), addr});
    return addr;
  }

  std::uint32_t alloc_f(const std::vector<float>& init) {
    std::vector<std::uint32_t> words(init.size());
    std::memcpy(words.data(), init.data(), init.size() * 4);
    return alloc(std::move(words));
  }

  sim::LaunchResult launch(sim::Dim3 grid, sim::Dim3 block,
                           std::vector<std::uint32_t> params) {
    return gpu_.launch(kernel_, grid, block, std::move(params));
  }

  /// Downloads a buffer by its allocation order.
  std::vector<std::uint32_t> read(std::size_t index) {
    DevBuf& b = bufs_.at(index);
    std::vector<std::uint32_t> out(b.data.size());
    gpu_.memcpy_d2h(out.data(), b.addr, out.size() * 4);
    return out;
  }

  std::vector<float> read_f(std::size_t index) {
    const auto words = read(index);
    std::vector<float> out(words.size());
    std::memcpy(out.data(), words.data(), words.size() * 4);
    return out;
  }

  sim::Gpu& gpu() { return gpu_; }
  const isa::Kernel& kernel() const { return kernel_; }

 private:
  sim::GpuConfig config_;
  sim::Gpu gpu_;
  isa::Kernel kernel_;
  std::vector<DevBuf> bufs_;
};

inline std::uint32_t fbits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

inline float bitsf(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

}  // namespace gras::testing
