// DMR (detection-only duplication) tests.
#include "src/harden/dmr.h"

#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/workloads/workload.h"

namespace gras::harden {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(DmrApp, DuplicatesBuffers) {
  const auto base = workloads::make_benchmark("va");
  const DmrApp dmr(*base);
  EXPECT_EQ(dmr.name(), "va_dmr");
  for (const auto& spec : dmr.buffers()) {
    EXPECT_EQ(spec.bytes, std::uint64_t{dmr.copy_stride()} * 2);
  }
}

class DmrEveryApp : public ::testing::TestWithParam<std::string> {};

TEST_P(DmrEveryApp, FaultFreeOutputMatchesBase) {
  const auto base = workloads::make_benchmark(GetParam());
  const auto dmr = harden_dmr(*base);
  sim::Gpu g1(config()), g2(config());
  const auto base_out = workloads::run_app(*base, g1);
  const auto dmr_out = workloads::run_app(*dmr, g2);
  ASSERT_TRUE(dmr_out.completed());
  EXPECT_EQ(base_out.outputs, dmr_out.outputs);
  // Duplication costs less than triplication.
  EXPECT_GT(g2.cycle(), g1.cycle());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DmrEveryApp,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST(DmrVote, MismatchIsDetectedAsDue) {
  const auto base = workloads::make_benchmark("va");
  const DmrApp dmr(*base);
  const std::uint64_t stride = dmr.copy_stride();
  workloads::RunOutput raw;
  std::vector<std::uint8_t> buf(stride * 2, 3);
  buf[10] = 4;  // copies disagree
  raw.outputs.push_back(buf);
  const auto checked = dmr.postprocess(raw);
  EXPECT_EQ(checked.trap, sim::TrapKind::HostCheck);
}

TEST(DmrVote, AgreementPassesThrough) {
  const auto base = workloads::make_benchmark("va");
  const DmrApp dmr(*base);
  const std::uint64_t stride = dmr.copy_stride();
  workloads::RunOutput raw;
  raw.outputs.emplace_back(stride * 2, 9);
  const auto checked = dmr.postprocess(raw);
  ASSERT_TRUE(checked.completed());
  EXPECT_EQ(checked.outputs[0].size(), base->buffers().back().bytes);
  for (std::uint8_t b : checked.outputs[0]) EXPECT_EQ(b, 9);
}

TEST(DmrEndToEnd, ConvertsSdcToDue) {
  const auto base = workloads::make_benchmark("va");
  const auto dmr = harden_dmr(*base);
  const auto golden_base = campaign::run_golden(*base, config());
  const auto golden_dmr = campaign::run_golden(*dmr, config());
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = campaign::Target::Svf;
  spec.samples = 60;
  ThreadPool pool(2);
  const auto before = campaign::run_campaign(*base, config(), golden_base, spec, pool);
  const auto after = campaign::run_campaign(*dmr, config(), golden_dmr, spec, pool);
  // Detection: SDCs collapse, DUEs grow correspondingly.
  EXPECT_GT(before.counts.sdc, 0u);
  EXPECT_LT(after.counts.sdc, std::max<std::uint64_t>(before.counts.sdc / 4, 1));
  EXPECT_GT(after.counts.due, before.counts.due);
}

}  // namespace
}  // namespace gras::harden
