// Property sweep: the TMR transform must be valid for every kernel of every
// benchmark — prologue size, register budget, operand rewrites, target
// shifts — and hardened kernels must stay within the SM's resources.
#include <gtest/gtest.h>

#include "src/harden/tmr.h"
#include "src/workloads/workload.h"

namespace gras::harden {
namespace {

class TransformSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(TransformSweep, EveryKernelTransformsCleanly) {
  const auto app = workloads::make_benchmark(GetParam());
  for (const isa::Kernel& k : app->kernels()) {
    const isa::Kernel h = tmr_transform(k, 0x4000);
    std::size_t pointers = 0;
    for (const auto& p : k.params) pointers += p.is_pointer;
    // Prologue: one S2R plus MOV+IMAD per pointer param.
    EXPECT_EQ(h.code.size(), k.code.size() + 1 + 2 * pointers) << k.name;
    EXPECT_EQ(h.num_regs, k.num_regs + 1 + pointers) << k.name;
    EXPECT_LT(h.num_regs, isa::kRegRZ) << k.name;
    EXPECT_EQ(h.smem_bytes, k.smem_bytes) << k.name;
    EXPECT_EQ(h.params.size(), k.params.size()) << k.name;

    const std::uint32_t shift = static_cast<std::uint32_t>(1 + 2 * pointers);
    for (std::size_t i = 0; i < k.code.size(); ++i) {
      const isa::Instr& orig = k.code[i];
      const isa::Instr& hard = h.code[i + shift];
      EXPECT_EQ(hard.op, orig.op) << k.name << " @" << i;
      if (orig.op == isa::Op::BRA || orig.op == isa::Op::SSY) {
        EXPECT_EQ(hard.target, orig.target + shift) << k.name << " @" << i;
      }
      // No pointer-param operand survives in the body.
      for (const isa::Operand* op : {&hard.a, &hard.b, &hard.c}) {
        if (op->kind != isa::OperandKind::Param) continue;
        for (const auto& p : k.params) {
          if (p.is_pointer) {
            EXPECT_NE(op->value, p.byte_offset) << k.name << " @" << i;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TransformSweep,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gras::harden
