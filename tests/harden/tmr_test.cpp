// TMR hardening tests: the kernel transform, buffer triplication, the
// majority vote, and fault-correction behaviour end to end.
#include "src/harden/tmr.h"

#include <gtest/gtest.h>

#include "src/assembler/assembler.h"
#include "src/campaign/campaign.h"
#include "src/fi/injectors.h"
#include "src/workloads/workload.h"

namespace gras::harden {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(TmrTransform, InjectsPrologueAndRebasesPointers) {
  const auto k = assembler::assemble_kernel(R"(
.kernel t
.param a ptr
.param n u32
.param out ptr
    S2R R0, SR_TID.X
    ISETP.GE P0, R0, c[n]
    @P0 EXIT
    ISCADD R1, R0, c[a], 2
    LDG R2, [R1]
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const isa::Kernel h = tmr_transform(k, 0x1000);
  // Prologue: S2R + (MOV+IMAD) per pointer param (a, out).
  ASSERT_EQ(h.code.size(), k.code.size() + 5);
  EXPECT_EQ(h.code[0].op, isa::Op::S2R);
  EXPECT_EQ(h.code[0].b.value, static_cast<std::uint32_t>(isa::SpecialReg::CTAID_Z));
  EXPECT_EQ(h.code[1].op, isa::Op::MOV);
  EXPECT_EQ(h.code[2].op, isa::Op::IMAD);
  EXPECT_EQ(h.code[2].b.value, 0x1000u);
  // Pointer params in the body now come from registers; the scalar param is
  // untouched.
  const isa::Instr& iscadd_a = h.code[5 + 3];
  EXPECT_EQ(iscadd_a.b.kind, isa::OperandKind::Gpr);
  const isa::Instr& isetp = h.code[5 + 1];
  EXPECT_EQ(isetp.b.kind, isa::OperandKind::Param);
  // Register count grew by 1 (copy) + 2 (pointers).
  EXPECT_EQ(h.num_regs, k.num_regs + 3);
}

TEST(TmrTransform, ShiftsBranchTargets) {
  const auto k = assembler::assemble_kernel(R"(
.kernel t
.param p ptr
    MOV R0, 0
top:
    IADD R0, R0, 1
    ISETP.LT P0, R0, 3
    @P0 BRA top
    EXIT
)");
  const isa::Kernel h = tmr_transform(k, 16);
  const std::uint32_t shift = 3;  // S2R + MOV + IMAD for one pointer
  EXPECT_EQ(h.code[shift + 3].op, isa::Op::BRA);
  EXPECT_EQ(h.code[shift + 3].target, shift + 1);
}

TEST(TmrTransform, ThrowsOnRegisterOverflow) {
  isa::Kernel k;
  k.name = "fat";
  isa::Instr mov;
  mov.op = isa::Op::MOV;
  mov.dst = 61;
  mov.a = isa::Operand::imm(0);
  k.code.push_back(mov);
  for (int i = 0; i < 3; ++i) {
    k.params.push_back({"p" + std::to_string(i), true,
                        static_cast<std::uint32_t>(i * 4)});
  }
  k.recount_registers();  // 62 regs + 1 copy + 3 pointers > 63
  EXPECT_THROW(tmr_transform(k, 16), std::runtime_error);
}

TEST(TmrApp, TriplicatesBuffersAtUniformStride) {
  const auto base = workloads::make_benchmark("va");
  const TmrApp tmr(*base);
  EXPECT_EQ(tmr.name(), "va_tmr");
  ASSERT_EQ(tmr.buffers().size(), base->buffers().size());
  std::uint64_t max_bytes = 0;
  for (const auto& spec : base->buffers()) max_bytes = std::max(max_bytes, spec.bytes);
  EXPECT_GE(tmr.copy_stride(), max_bytes);
  for (const auto& spec : tmr.buffers()) {
    EXPECT_EQ(spec.bytes, std::uint64_t{tmr.copy_stride()} * 3);
  }
  // Inputs replicated into all three copies.
  const auto& a = tmr.buffers()[0];
  const auto& base_a = base->buffers()[0];
  for (std::uint64_t i = 0; i < base_a.bytes; ++i) {
    EXPECT_EQ(a.host_init[i], base_a.host_init[i]);
    EXPECT_EQ(a.host_init[tmr.copy_stride() + i], base_a.host_init[i]);
    EXPECT_EQ(a.host_init[2ull * tmr.copy_stride() + i], base_a.host_init[i]);
  }
}

class TmrEveryApp : public ::testing::TestWithParam<std::string> {};

TEST_P(TmrEveryApp, VotedOutputEqualsBaseOutput) {
  const auto base = workloads::make_benchmark(GetParam());
  const auto tmr = harden(*base);
  sim::Gpu g1(config()), g2(config());
  const auto base_out = workloads::run_app(*base, g1);
  const auto tmr_out = workloads::run_app(*tmr, g2);
  ASSERT_TRUE(base_out.completed());
  ASSERT_TRUE(tmr_out.completed());
  EXPECT_EQ(base_out.outputs, tmr_out.outputs);
  // Triplication costs real execution time (the paper reports ~3x).
  EXPECT_GT(g2.cycle(), g1.cycle());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TmrEveryApp,
                         ::testing::ValuesIn(workloads::benchmark_names()),
                         [](const auto& info) { return info.param; });

TEST(TmrVote, SingleCopyCorruptionIsCorrected) {
  const auto base = workloads::make_benchmark("va");
  const TmrApp tmr(*base);
  // Build a raw (pre-vote) output: three identical copies, then corrupt
  // copy 1.
  const std::uint64_t stride = tmr.copy_stride();
  workloads::RunOutput raw;
  std::vector<std::uint8_t> buf(stride * 3, 0);
  for (std::uint64_t i = 0; i < stride; ++i) {
    buf[i] = buf[stride + i] = buf[2 * stride + i] = static_cast<std::uint8_t>(i);
  }
  buf[stride + 100] ^= 0x40;
  raw.outputs.push_back(buf);
  const auto voted = tmr.postprocess(raw);
  ASSERT_TRUE(voted.completed());
  EXPECT_EQ(voted.outputs[0][100], static_cast<std::uint8_t>(100));
}

TEST(TmrVote, TwoIdenticalWrongCopiesWin) {
  // The residual-SDC mechanism: two copies corrupted identically outvote
  // the correct one.
  const auto base = workloads::make_benchmark("va");
  const TmrApp tmr(*base);
  const std::uint64_t stride = tmr.copy_stride();
  workloads::RunOutput raw;
  std::vector<std::uint8_t> buf(stride * 3, 7);
  buf[4] = 9;
  buf[stride + 4] = 9;  // copies 0 and 1 agree on the wrong value
  raw.outputs.push_back(buf);
  const auto voted = tmr.postprocess(raw);
  ASSERT_TRUE(voted.completed());
  EXPECT_EQ(voted.outputs[0][4], 9);
}

TEST(TmrVote, AllThreeDifferentIsDue) {
  const auto base = workloads::make_benchmark("va");
  const TmrApp tmr(*base);
  const std::uint64_t stride = tmr.copy_stride();
  workloads::RunOutput raw;
  std::vector<std::uint8_t> buf(stride * 3, 0);
  buf[8] = 1;
  buf[stride + 8] = 2;
  buf[2 * stride + 8] = 3;
  raw.outputs.push_back(buf);
  const auto voted = tmr.postprocess(raw);
  EXPECT_EQ(voted.trap, sim::TrapKind::HostCheck);
}

TEST(TmrVote, AbortedRunPassesThrough) {
  const auto base = workloads::make_benchmark("va");
  const TmrApp tmr(*base);
  workloads::RunOutput raw;
  raw.trap = sim::TrapKind::OobGlobal;
  const auto voted = tmr.postprocess(raw);
  EXPECT_EQ(voted.trap, sim::TrapKind::OobGlobal);
}

TEST(TmrEndToEnd, SoftwareFaultInOneCopyIsMasked) {
  // A destination-register flip corrupts one copy's computation; the vote
  // must recover the golden output. Over several samples, the hardened
  // app's SDC count must not exceed the unhardened one's.
  const auto base = workloads::make_benchmark("va");
  const auto tmr = harden(*base);
  const auto golden_base = campaign::run_golden(*base, config());
  const auto golden_tmr = campaign::run_golden(*tmr, config());
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = campaign::Target::Svf;
  spec.samples = 60;
  ThreadPool pool(2);
  const auto base_result = campaign::run_campaign(*base, config(), golden_base, spec, pool);
  const auto tmr_result = campaign::run_campaign(*tmr, config(), golden_tmr, spec, pool);
  EXPECT_GT(base_result.counts.sdc, 0u);
  EXPECT_LT(tmr_result.counts.sdc, base_result.counts.sdc / 4);
}

}  // namespace
}  // namespace gras::harden
