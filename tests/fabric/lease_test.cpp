// Lease state machine under a fake clock: grant → heartbeat → expiry →
// reassignment → late duplicate from a zombie worker discarded. Exactly-once
// record acceptance is the property every test guards.
#include "src/fabric/lease.h"

#include <gtest/gtest.h>

namespace gras::fabric {
namespace {

orchestrator::JournalRecord record(std::uint64_t index) {
  orchestrator::JournalRecord r;
  r.index = index;
  r.cycles = 1000 + index;
  return r;
}

struct FakeClock {
  double t = 0.0;
  Clock fn() {
    return [this] { return t; };
  }
};

TEST(LeaseTable, GrantsContiguousRangesLowestFirst) {
  FakeClock clock;
  LeaseTable table(100, 32, 10.0, clock.fn());
  const auto a = table.grant("w1");
  EXPECT_EQ(a.begin, 0u);
  EXPECT_EQ(a.end, 32u);
  const auto b = table.grant("w2");
  EXPECT_EQ(b.begin, 32u);
  EXPECT_EQ(b.end, 64u);
  EXPECT_NE(a.lease_id, b.lease_id);
  const auto c = table.grant("w1");
  EXPECT_EQ(c.begin, 64u);
  EXPECT_EQ(c.end, 96u);
  const auto d = table.grant("w2");
  EXPECT_EQ(d.begin, 96u);
  EXPECT_EQ(d.end, 100u);  // final partial range
  const auto empty = table.grant("w1");
  EXPECT_EQ(empty.begin, empty.end);  // nothing left to lease
  EXPECT_EQ(empty.lease_id, 0u);
}

TEST(LeaseTable, HeartbeatDefersExpiry) {
  FakeClock clock;
  LeaseTable table(10, 10, 10.0, clock.fn());
  const auto g = table.grant("w1");
  ASSERT_NE(g.lease_id, 0u);

  clock.t = 9.0;
  EXPECT_TRUE(table.heartbeat(g.lease_id));
  clock.t = 18.0;  // 9s after the beat: still inside the renewed TTL
  EXPECT_TRUE(table.expire().empty());
  clock.t = 19.5;  // 10.5s after the beat: expired
  const auto expired = table.expire();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], g.lease_id);
  EXPECT_FALSE(table.heartbeat(g.lease_id));  // gone
}

TEST(LeaseTable, ExpiryRequeuesOnlyUndeliveredIndices) {
  FakeClock clock;
  LeaseTable table(10, 10, 10.0, clock.fn());
  const auto g = table.grant("w1");
  ASSERT_EQ(g.begin, 0u);
  ASSERT_EQ(g.end, 10u);
  // Deliver 0..4, then go silent past the TTL.
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(table.accept(g.lease_id, i), LeaseTable::Verdict::Fresh);
  }
  clock.t = 100.0;
  ASSERT_EQ(table.expire().size(), 1u);
  EXPECT_EQ(table.delivered(), 5u);

  // The reassigned lease covers exactly the missing half.
  const auto g2 = table.grant("w2");
  EXPECT_EQ(g2.begin, 5u);
  EXPECT_EQ(g2.end, 10u);
  for (std::uint64_t i = 5; i < 10; ++i) {
    EXPECT_EQ(table.accept(g2.lease_id, i), LeaseTable::Verdict::Fresh);
  }
  EXPECT_TRUE(table.all_done());
}

TEST(LeaseTable, ZombieDeliveriesAfterExpiryAreStale) {
  FakeClock clock;
  LeaseTable table(10, 10, 10.0, clock.fn());
  const auto zombie = table.grant("w1");
  EXPECT_EQ(table.accept(zombie.lease_id, 0), LeaseTable::Verdict::Fresh);

  clock.t = 100.0;
  ASSERT_EQ(table.expire().size(), 1u);
  const auto fresh = table.grant("w2");
  EXPECT_EQ(fresh.begin, 1u);  // index 0 was delivered before the expiry

  // The zombie wakes up and streams the rest of its range: every delivery
  // is rejected, whether or not the replacement already covered the index.
  for (std::uint64_t i = 1; i < 10; ++i) {
    EXPECT_EQ(table.accept(zombie.lease_id, i), LeaseTable::Verdict::Stale);
  }
  // The replacement's deliveries are unaffected — exactly-once holds.
  for (std::uint64_t i = 1; i < 10; ++i) {
    EXPECT_EQ(table.accept(fresh.lease_id, i), LeaseTable::Verdict::Fresh);
  }
  EXPECT_TRUE(table.all_done());
  EXPECT_EQ(table.delivered(), 10u);
}

TEST(LeaseTable, DuplicateDeliveryWithinALeaseIsFlagged) {
  FakeClock clock;
  LeaseTable table(4, 4, 10.0, clock.fn());
  const auto g = table.grant("w1");
  EXPECT_EQ(table.accept(g.lease_id, 2), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g.lease_id, 2), LeaseTable::Verdict::Duplicate);
  EXPECT_EQ(table.delivered(), 1u);  // counted once
  // An index outside the leased range is stale, not fresh.
  EXPECT_EQ(table.accept(g.lease_id, 99), LeaseTable::Verdict::Stale);
}

TEST(LeaseTable, DeliveryRenewsTheDeadline) {
  FakeClock clock;
  LeaseTable table(10, 10, 10.0, clock.fn());
  const auto g = table.grant("w1");
  clock.t = 9.0;
  EXPECT_EQ(table.accept(g.lease_id, 0), LeaseTable::Verdict::Fresh);
  clock.t = 18.0;  // a steady record stream needs no separate heartbeat
  EXPECT_TRUE(table.expire().empty());
}

TEST(LeaseTable, ReleaseWorkerReclaimsItsLeasesImmediately) {
  FakeClock clock;
  LeaseTable table(40, 10, 10.0, clock.fn());
  const auto a = table.grant("dying");
  const auto b = table.grant("dying");
  const auto c = table.grant("healthy");
  ASSERT_EQ(c.begin, 20u);
  EXPECT_EQ(table.accept(a.lease_id, 3), LeaseTable::Verdict::Fresh);

  table.release_worker("dying");
  EXPECT_EQ(table.active(), 1u);  // only the healthy lease remains
  EXPECT_EQ(table.accept(b.lease_id, 10), LeaseTable::Verdict::Stale);

  // Reclaimed ranges re-lease with the delivered index carved out, lowest
  // range first.
  const auto r1 = table.grant("healthy");
  EXPECT_EQ(r1.begin, 0u);
  EXPECT_EQ(r1.end, 3u);
  const auto r2 = table.grant("healthy");
  EXPECT_EQ(r2.begin, 4u);
  EXPECT_EQ(r2.end, 14u);  // merged across the old a/b lease boundary
}

TEST(LeaseTable, CompleteWithMissingIndicesRequeuesThem) {
  FakeClock clock;
  LeaseTable table(8, 8, 10.0, clock.fn());
  const auto g = table.grant("w1");
  EXPECT_EQ(table.accept(g.lease_id, 0), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g.lease_id, 1), LeaseTable::Verdict::Fresh);
  // Worker claims done without delivering 2..7 (lost Records frame).
  EXPECT_TRUE(table.complete(g.lease_id));
  EXPECT_FALSE(table.complete(g.lease_id));  // second done is a no-op
  const auto g2 = table.grant("w2");
  EXPECT_EQ(g2.begin, 2u);
  EXPECT_EQ(g2.end, 8u);
}

TEST(LeaseTable, MarkDoneSeedsResume) {
  FakeClock clock;
  LeaseTable table(10, 16, 10.0, clock.fn());
  // Journal replay: contiguous prefix plus one out-of-order straggler.
  for (std::uint64_t i = 0; i < 4; ++i) table.mark_done(i);
  table.mark_done(7);
  table.mark_done(7);  // idempotent
  EXPECT_EQ(table.delivered(), 5u);

  const auto g1 = table.grant("w");
  EXPECT_EQ(g1.begin, 4u);
  EXPECT_EQ(g1.end, 7u);
  const auto g2 = table.grant("w");
  EXPECT_EQ(g2.begin, 8u);
  EXPECT_EQ(g2.end, 10u);
  EXPECT_EQ(table.accept(g1.lease_id, 4), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g1.lease_id, 5), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g1.lease_id, 6), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g2.lease_id, 8), LeaseTable::Verdict::Fresh);
  EXPECT_EQ(table.accept(g2.lease_id, 9), LeaseTable::Verdict::Fresh);
  EXPECT_TRUE(table.all_done());
}

TEST(InOrderCommitter, ReleasesTheContiguousPrefixOnly) {
  InOrderCommitter committer;
  EXPECT_FALSE(committer.next().has_value());
  EXPECT_TRUE(committer.add(record(2)));
  EXPECT_TRUE(committer.add(record(0)));

  auto r0 = committer.next();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->index, 0u);
  EXPECT_FALSE(committer.next().has_value());  // 1 is missing
  EXPECT_TRUE(committer.add(record(1)));
  auto r1 = committer.next();
  auto r2 = committer.next();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->index, 1u);
  EXPECT_EQ(r2->index, 2u);
  EXPECT_EQ(committer.committed(), 3u);
  EXPECT_EQ(committer.buffered(), 0u);
}

TEST(InOrderCommitter, RejectsDuplicatesAndCommittedIndices) {
  InOrderCommitter committer;
  EXPECT_TRUE(committer.add(record(0)));
  EXPECT_FALSE(committer.add(record(0)));  // already buffered
  ASSERT_TRUE(committer.next().has_value());
  EXPECT_FALSE(committer.add(record(0)));  // already committed
  EXPECT_TRUE(committer.add(record(1)));
}

TEST(InOrderCommitter, SeededStartSkipsTheReplayPrefix) {
  InOrderCommitter committer(100);
  EXPECT_FALSE(committer.add(record(99)));
  EXPECT_TRUE(committer.add(record(100)));
  auto r = committer.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 100u);
}

}  // namespace
}  // namespace gras::fabric
