// End-to-end fabric tests: coordinator + workers in one process over
// loopback TCP. The invariant under test throughout is bit-identity — a
// distributed campaign journals exactly the records (and early-stop point) a
// single-process `run_durable` would have.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/fabric/coordinator.h"
#include "src/fabric/fleet.h"
#include "src/fabric/wire.h"
#include "src/fabric/worker.h"
#include "src/orchestrator/orchestrator.h"
#include "src/workloads/workload.h"

namespace gras::fabric {
namespace {

namespace orch = gras::orchestrator;

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "gras_fabric_test";
  std::filesystem::create_directories(dir);
  return dir;
}

campaign::CampaignSpec spec_of(campaign::Target target, std::uint64_t samples) {
  campaign::CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = target;
  spec.samples = samples;
  spec.seed = 2024;
  return spec;
}

void expect_same_result(const campaign::CampaignResult& a,
                        const campaign::CampaignResult& b) {
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.timeout, b.counts.timeout);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.control_path_masked, b.control_path_masked);
  EXPECT_EQ(a.injected, b.injected);
}

void expect_same_journal(const std::filesystem::path& got,
                         const std::filesystem::path& want) {
  auto a = orch::read_journal(got);
  auto b = orch::read_journal(want);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->early_stop_consumed, b->early_stop_consumed);
  ASSERT_EQ(a->records.size(), b->records.size());
  // A single-process batch-1 run streams records in completion order; the
  // coordinator commits in index order. Same set, different file order.
  const auto by_index = [](const orch::JournalRecord& x,
                           const orch::JournalRecord& y) {
    return x.index < y.index;
  };
  std::sort(a->records.begin(), a->records.end(), by_index);
  std::sort(b->records.begin(), b->records.end(), by_index);
  char ba[orch::kRecordBytes];
  char bb[orch::kRecordBytes];
  for (std::size_t i = 0; i < a->records.size(); ++i) {
    orch::encode_record(a->records[i], ba);
    orch::encode_record(b->records[i], bb);
    EXPECT_EQ(0, std::memcmp(ba, bb, sizeof ba)) << "record " << i;
  }
}

/// Runs serve_campaign on a background thread and exposes the bound port
/// (via the port file) before any worker connects.
class Server {
 public:
  Server(const workloads::App& app, const campaign::CampaignSpec& spec,
         ServeOptions options)
      : port_file_(options.port_file) {
    thread_ = std::thread([this, &app, spec, options] {
      try {
        result_ = serve_campaign(app, config(), spec, options);
      } catch (const std::exception& e) {
        error_ = e.what();
      }
      done_.store(true);
    });
  }
  ~Server() {
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t wait_port() {
    for (int i = 0; i < 2000; ++i) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) return static_cast<std::uint16_t>(port);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
  }

  ServeResult join() {
    thread_.join();
    EXPECT_TRUE(error_.empty()) << error_;
    return result_;
  }

  bool done() const { return done_.load(); }

 private:
  std::filesystem::path port_file_;
  std::thread thread_;
  ServeResult result_;
  std::string error_;
  std::atomic<bool> done_{false};
};

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = workloads::make_benchmark("va");
    golden_ = campaign::run_golden(*app_, config());
  }

  ServeOptions serve_options(const std::string& tag) {
    ServeOptions o;
    o.host = "127.0.0.1";
    o.port = 0;
    o.port_file = temp_dir() / (tag + ".port");
    o.journal = temp_dir() / (tag + ".jrnl");
    std::filesystem::remove(o.port_file);
    std::filesystem::remove(o.journal);
    o.resume = false;
    return o;
  }

  WorkOptions work_options(std::uint16_t port, const std::string& name) {
    WorkOptions o;
    o.port = port;
    o.name = name;
    o.threads = 2;
    o.retry_sec = 20.0;
    o.idle_poll_sec = 0.05;
    return o;
  }

  /// The single-process ground truth for `spec`, journaled at a reference
  /// path for byte comparison.
  orch::DurableResult reference(const campaign::CampaignSpec& spec,
                                const std::string& tag, double margin = 0.0) {
    orch::DurableOptions o;
    o.journal = temp_dir() / (tag + ".ref.jrnl");
    std::filesystem::remove(o.journal);
    o.resume = false;
    o.margin = margin;
    const auto r = run_durable(*app_, config(), golden_, spec, pool_, o);
    return r;
  }

  std::unique_ptr<workloads::App> app_;
  campaign::GoldenRun golden_;
  ThreadPool pool_{4};
};

TEST_F(FabricTest, ThreeWorkersMatchSingleProcessBitExactly) {
  const auto spec = spec_of(campaign::Target::RF, 150);
  const auto ref = reference(spec, "three");

  auto options = serve_options("three");
  options.lease = 16;  // enough leases that all three workers get work
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  std::vector<std::thread> workers;
  std::vector<WorkResult> results(3);
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([this, port, i, &results] {
      results[i] = run_worker(work_options(port, "w" + std::to_string(i)));
    });
  }
  for (auto& w : workers) w.join();
  const auto served = server.join();

  for (const auto& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.stopped);
  }
  std::uint64_t total = 0;
  for (const auto& r : results) total += r.executed;
  EXPECT_EQ(total, 150u);
  EXPECT_EQ(served.executed, 150u);
  EXPECT_EQ(served.replayed, 0u);
  EXPECT_FALSE(served.early_stopped);
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, BatchedWorkersStayBitIdentical) {
  const auto spec = spec_of(campaign::Target::RF, 96);
  const auto ref = reference(spec, "batched");

  auto options = serve_options("batched");
  options.batch = 8;
  options.lease = 32;
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  auto result = run_worker(work_options(port, "w0"));
  const auto served = server.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, DyingWorkerLeaseIsReassigned) {
  const auto spec = spec_of(campaign::Target::RF, 60);
  const auto ref = reference(spec, "dying");

  auto options = serve_options("dying");
  options.lease = 16;
  options.lease_ttl_sec = 60.0;  // reclamation must come from the hangup,
                                 // not from TTL expiry
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  // A worker takes the first lease and dies without delivering a single
  // record: handshake, lease, hangup.
  {
    Socket zombie = Socket::connect_to("127.0.0.1", port);
    ASSERT_TRUE(zombie.valid());
    HelloMsg hello;
    hello.protocol = kProtocolVersion;
    hello.name = "zombie";
    ASSERT_TRUE(zombie.send_frame(MsgType::Hello, encode_hello(hello)));
    Frame f;
    ASSERT_EQ(zombie.recv_frame(f, 5.0), Socket::Recv::Frame);
    ASSERT_EQ(f.type, MsgType::Welcome);
    ASSERT_TRUE(zombie.send_frame(MsgType::LeaseRequest, ""));
    ASSERT_EQ(zombie.recv_frame(f, 5.0), Socket::Recv::Frame);
    ASSERT_EQ(f.type, MsgType::LeaseGrant);
    LeaseGrantMsg grant;
    ASSERT_TRUE(decode_lease_grant(f.payload, grant));
    EXPECT_EQ(grant.begin, 0u);
    EXPECT_LT(grant.begin, grant.end);
  }  // socket closes here; the coordinator reclaims the lease on hangup

  // A real worker finishes the whole campaign, including the abandoned range.
  auto result = run_worker(work_options(port, "survivor"));
  const auto served = server.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.executed, 60u);
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, CoordinatorResumesFromATruncatedJournal) {
  const auto spec = spec_of(campaign::Target::Svf, 70);
  const auto ref = reference(spec, "resume");

  // Simulate a coordinator killed mid-campaign: take the reference journal
  // and truncate it to header + 33 records (the coordinator's own journal
  // is always a contiguous prefix, so any prefix is a valid crash state).
  auto options = serve_options("resume");
  {
    std::ifstream in(ref.journal, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    const std::size_t header = bytes.size() - spec.samples * orch::kRecordBytes;
    std::ofstream out(options.journal, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(header + 33 * orch::kRecordBytes));
  }
  options.resume = true;
  options.lease = 16;
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  auto result = run_worker(work_options(port, "w0"));
  const auto served = server.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(served.replayed, 33u);
  EXPECT_EQ(served.executed, 37u);
  EXPECT_EQ(result.executed, 37u);
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, EarlyStopMatchesSingleProcess) {
  const auto spec = spec_of(campaign::Target::RF, 4000);
  const double margin = 0.05;
  const auto ref = reference(spec, "stop", margin);
  ASSERT_TRUE(ref.early_stopped);  // the margin must actually bind

  auto options = serve_options("stop");
  options.margin = margin;
  options.lease = 32;
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  std::vector<std::thread> workers;
  std::vector<WorkResult> results(2);
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([this, port, i, &results] {
      results[i] = run_worker(work_options(port, "w" + std::to_string(i)));
    });
  }
  for (auto& w : workers) w.join();
  const auto served = server.join();

  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(served.early_stopped);
  // The fleet stops at the same barrier: the committed prefix matches the
  // single-process run record for record, marker included. (served.executed
  // may exceed the committed prefix — leases in flight when the margin binds
  // keep delivering until Stop reaches them — so the journal is the check.)
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, ProtocolMismatchIsRejected) {
  const auto spec = spec_of(campaign::Target::RF, 20);
  auto options = serve_options("proto");
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  {
    Socket old = Socket::connect_to("127.0.0.1", port);
    ASSERT_TRUE(old.valid());
    HelloMsg hello;
    hello.protocol = kProtocolVersion + 7;
    hello.name = "time-traveler";
    ASSERT_TRUE(old.send_frame(MsgType::Hello, encode_hello(hello)));
    Frame f;
    ASSERT_EQ(old.recv_frame(f, 5.0), Socket::Recv::Frame);
    EXPECT_EQ(f.type, MsgType::Reject);
    RejectMsg reject;
    ASSERT_TRUE(decode_reject(f.payload, reject));
    EXPECT_NE(reject.reason.find("protocol"), std::string::npos);
  }

  // The campaign still completes for a well-behaved worker.
  auto result = run_worker(work_options(port, "modern"));
  const auto served = server.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(served.executed, 20u);
}

TEST_F(FabricTest, UnknownFrameTypeIsSkippedNotFatal) {
  // Forward compatibility: a newer worker may send frame types this
  // coordinator does not know. They must be counted and skipped — never
  // cost the connection or a lease.
  const auto spec = spec_of(campaign::Target::RF, 20);
  auto options = serve_options("unknown");
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  const std::uint64_t unknown_before =
      telemetry::counter("fabric.frames.unknown").value();
  {
    Socket futuristic = Socket::connect_to("127.0.0.1", port);
    ASSERT_TRUE(futuristic.valid());
    HelloMsg hello;
    hello.name = "futuristic";
    ASSERT_TRUE(futuristic.send_frame(MsgType::Hello, encode_hello(hello)));
    Frame f;
    ASSERT_EQ(futuristic.recv_frame(f, 5.0), Socket::Recv::Frame);
    ASSERT_EQ(f.type, MsgType::Welcome);
    // Two frames from the future, then a normal lease request: the grant
    // arriving proves the connection survived both.
    ASSERT_TRUE(futuristic.send_frame(static_cast<MsgType>(99), "payload"));
    ASSERT_TRUE(futuristic.send_frame(static_cast<MsgType>(200), ""));
    ASSERT_TRUE(futuristic.send_frame(MsgType::LeaseRequest, ""));
    ASSERT_EQ(futuristic.recv_frame(f, 5.0), Socket::Recv::Frame);
    EXPECT_EQ(f.type, MsgType::LeaseGrant);
  }  // hangup; the coordinator reclaims whatever was leased
  EXPECT_GE(telemetry::counter("fabric.frames.unknown").value(),
            unknown_before + 2);

  auto result = run_worker(work_options(port, "modern"));
  const auto served = server.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(served.executed, 20u);
}

TEST_F(FabricTest, StatsFreeLegacyWorkerStillCompletesLeases) {
  // Heartbeat compatibility: a worker that predates the observability plane
  // speaks protocol v1 with plain Heartbeats and never sends Stats. It must
  // complete leases against a stats-aware coordinator, and the journal must
  // still match the single-process reference byte for byte.
  const auto spec = spec_of(campaign::Target::RF, 48);
  const auto ref = reference(spec, "legacy");

  auto options = serve_options("legacy");
  options.lease = 16;
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  orch::SampleRunner runner(*app_, config(), golden_, spec, pool_, 1);
  Socket legacy = Socket::connect_to("127.0.0.1", port);
  ASSERT_TRUE(legacy.valid());
  HelloMsg hello;
  hello.protocol = kProtocolVersion;
  hello.name = "legacy";
  ASSERT_TRUE(legacy.send_frame(MsgType::Hello, encode_hello(hello)));
  Frame f;
  ASSERT_EQ(legacy.recv_frame(f, 5.0), Socket::Recv::Frame);
  ASSERT_EQ(f.type, MsgType::Welcome);

  std::uint64_t executed = 0;
  bool stopped = false;
  for (int iter = 0; iter < 1000 && !stopped; ++iter) {
    ASSERT_TRUE(legacy.send_frame(MsgType::LeaseRequest, ""));
    ASSERT_EQ(legacy.recv_frame(f, 10.0), Socket::Recv::Frame);
    if (f.type == MsgType::Stop) {
      stopped = true;
      break;
    }
    ASSERT_EQ(f.type, MsgType::LeaseGrant);
    LeaseGrantMsg grant;
    ASSERT_TRUE(decode_lease_grant(f.payload, grant));
    if (grant.begin == grant.end) {
      // Nothing leasable right now; poll for Stop the way v1 workers do.
      const Socket::Recv r = legacy.recv_frame(f, 0.05);
      if (r == Socket::Recv::Frame && f.type == MsgType::Stop) stopped = true;
      ASSERT_NE(r, Socket::Recv::Closed);
      continue;
    }
    // A plain idle-format Heartbeat mid-lease: the pre-stats liveness frame.
    HeartbeatMsg hb;
    hb.lease_id = grant.lease_id;
    ASSERT_TRUE(legacy.send_frame(MsgType::Heartbeat, encode_heartbeat(hb)));
    std::vector<std::uint64_t> indices;
    for (std::uint64_t i = grant.begin; i < grant.end; ++i) indices.push_back(i);
    RecordsMsg records;
    records.lease_id = grant.lease_id;
    records.records = runner.run(indices);
    executed += records.records.size();
    ASSERT_TRUE(legacy.send_frame(MsgType::Records, encode_records(records)));
    LeaseDoneMsg done;
    done.lease_id = grant.lease_id;
    ASSERT_TRUE(legacy.send_frame(MsgType::LeaseDone, encode_lease_done(done)));
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(executed, 48u);
  legacy.shutdown();  // hang up promptly so the coordinator can finish

  const auto served = server.join();
  EXPECT_EQ(served.executed, 48u);
  expect_same_result(served.result, ref.result);
  expect_same_journal(served.journal, ref.journal);
}

TEST_F(FabricTest, FleetStatusServedMidCampaign) {
  const auto spec = spec_of(campaign::Target::RF, 2000);
  auto options = serve_options("fleet");
  options.lease = 32;
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);

  std::thread worker([this, port] {
    const auto r = run_worker(work_options(port, "observed"));
    EXPECT_TRUE(r.error.empty()) << r.error;
  });

  // A fleet client: no Hello, just Status -> StatusReply on a connection of
  // its own. Poll until the worker shows up in the table.
  FleetStatus status;
  bool saw_worker = false;
  {
    Socket fleet = Socket::connect_to("127.0.0.1", port);
    ASSERT_TRUE(fleet.valid());
    Frame f;
    for (int i = 0; i < 400 && !saw_worker; ++i) {
      ASSERT_TRUE(fleet.send_frame(MsgType::Status, ""));
      ASSERT_EQ(fleet.recv_frame(f, 10.0), Socket::Recv::Frame);
      ASSERT_EQ(f.type, MsgType::StatusReply);
      ASSERT_TRUE(decode_fleet_status(f.payload, status));
      saw_worker = status.workers_connected() >= 1;
      if (!saw_worker) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  ASSERT_TRUE(saw_worker);
  EXPECT_EQ(status.app, "va");
  EXPECT_EQ(status.kernel, "va_k1");
  EXPECT_EQ(status.target, "RF");
  EXPECT_EQ(status.samples, 2000u);
  ASSERT_GE(status.workers.size(), 1u);
  EXPECT_EQ(status.workers[0].name, "observed");
  EXPECT_TRUE(status.workers[0].connected);

  worker.join();
  const auto served = server.join();
  EXPECT_EQ(served.executed, 2000u);
  // The status plane never feeds the campaign: the fleet client's extra
  // connection changed nothing about the result.
  EXPECT_EQ(served.result.counts.total(), 2000u);
}

TEST_F(FabricTest, ServedJournalResumesInASingleProcessRun) {
  // Interoperability: the coordinator's journal is a plain shard-0/1
  // campaign journal, so a single-process --resume picks it up untouched.
  const auto spec = spec_of(campaign::Target::RF, 50);
  auto options = serve_options("interop");
  Server server(*app_, spec, options);
  const std::uint16_t port = server.wait_port();
  ASSERT_NE(port, 0);
  auto result = run_worker(work_options(port, "w0"));
  const auto served = server.join();
  ASSERT_TRUE(result.error.empty()) << result.error;

  orch::DurableOptions o;
  o.journal = served.journal;
  o.resume = true;
  const auto resumed = run_durable(*app_, config(), golden_, spec, pool_, o);
  EXPECT_EQ(resumed.replayed, 50u);
  EXPECT_EQ(resumed.executed, 0u);
  expect_same_result(resumed.result, served.result);
}

}  // namespace
}  // namespace gras::fabric
