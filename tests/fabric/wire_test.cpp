// Wire-protocol unit tests: payload codecs round-trip, frames carry a
// checksum that catches damage, sockets move whole frames, and sample
// records cross the wire bit-identically to their journal encoding.
#include "src/fabric/wire.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/fabric/fleet.h"

namespace gras::fabric {
namespace {

TEST(WireCodec, HelloRoundTrips) {
  HelloMsg in;
  in.protocol = kProtocolVersion;
  in.name = "worker-42";
  HelloMsg out;
  ASSERT_TRUE(decode_hello(encode_hello(in), out));
  EXPECT_EQ(out.protocol, in.protocol);
  EXPECT_EQ(out.name, in.name);
}

TEST(WireCodec, WelcomeRoundTripsEveryField) {
  WelcomeMsg in;
  in.journal_version = 3;
  in.record_bytes = 228;
  in.fingerprint = 0xdeadbeefcafef00dull;
  in.app = "hotspot";
  in.kernel = "hotspot_k1";
  in.config = "gv100-scaled";
  in.target = "RF";
  in.samples = 3000;
  in.seed = 2024;
  in.margin = 0.0235;
  in.confidence = 0.99;
  in.chunk = 64;
  in.batch = 8;
  in.heartbeat_sec = 1.5;
  in.lease_ttl_sec = 7.5;
  WelcomeMsg out;
  ASSERT_TRUE(decode_welcome(encode_welcome(in), out));
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.app, in.app);
  EXPECT_EQ(out.kernel, in.kernel);
  EXPECT_EQ(out.config, in.config);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.samples, in.samples);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_DOUBLE_EQ(out.margin, in.margin);
  EXPECT_DOUBLE_EQ(out.confidence, in.confidence);
  EXPECT_EQ(out.chunk, in.chunk);
  EXPECT_EQ(out.batch, in.batch);
  EXPECT_DOUBLE_EQ(out.heartbeat_sec, in.heartbeat_sec);
  EXPECT_DOUBLE_EQ(out.lease_ttl_sec, in.lease_ttl_sec);
}

TEST(WireCodec, TruncatedPayloadIsRejected) {
  const std::string payload = encode_hello(HelloMsg{kProtocolVersion, "w"});
  HelloMsg out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_hello(payload.substr(0, cut), out)) << "cut=" << cut;
  }
  // Trailing garbage is rejected too: done() demands exact consumption.
  EXPECT_FALSE(decode_hello(payload + "x", out));
}

orchestrator::JournalRecord sample_record(std::uint64_t index) {
  orchestrator::JournalRecord r;
  r.index = index;
  r.cycles = 123456 + index;
  r.outcome = fi::Outcome::SDC;
  r.injected = true;
  r.has_signature = true;
  r.signature.words_mismatched = 7;
  return r;
}

TEST(WireCodec, RecordsCarryJournalBytesBitExactly) {
  RecordsMsg in;
  in.lease_id = 99;
  for (std::uint64_t i = 0; i < 5; ++i) in.records.push_back(sample_record(i));
  const std::string payload = encode_records(in);

  RecordsMsg out;
  ASSERT_TRUE(decode_records(payload, out));
  EXPECT_EQ(out.lease_id, 99u);
  ASSERT_EQ(out.records.size(), in.records.size());
  char a[orchestrator::kRecordBytes];
  char b[orchestrator::kRecordBytes];
  for (std::size_t i = 0; i < in.records.size(); ++i) {
    orchestrator::encode_record(in.records[i], a);
    orchestrator::encode_record(out.records[i], b);
    EXPECT_EQ(0, std::memcmp(a, b, sizeof a)) << "record " << i;
  }
}

TEST(WireCodec, DamagedRecordInPayloadIsRejected) {
  RecordsMsg in;
  in.lease_id = 1;
  in.records.push_back(sample_record(0));
  std::string payload = encode_records(in);
  payload[payload.size() / 2] ^= 0x01;  // flip one bit inside the record
  RecordsMsg out;
  EXPECT_FALSE(decode_records(payload, out));
}

TEST(WireCodec, StatsRoundTrips) {
  StatsMsg in;
  in.lease_id = 7;
  in.executed = 4096;
  in.entries = {{"fi.injections", 4095}, {"sim.cycles", 123456789},
                {"queue.depth", -3}};  // gauges may be negative
  StatsMsg out;
  ASSERT_TRUE(decode_stats(encode_stats(in), out));
  EXPECT_EQ(out.version, kStatsVersion);
  EXPECT_EQ(out.lease_id, 7u);
  EXPECT_EQ(out.executed, 4096u);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].first, "fi.injections");
  EXPECT_EQ(out.entries[0].second, 4095);
  EXPECT_EQ(out.entries[2].second, -3);

  // An empty delta (nothing changed since the last report) is valid.
  StatsMsg empty;
  ASSERT_TRUE(decode_stats(encode_stats(StatsMsg{}), empty));
  EXPECT_TRUE(empty.entries.empty());
}

TEST(WireCodec, StatsUnknownVersionIsRejected) {
  StatsMsg in;
  in.version = kStatsVersion + 1;
  in.entries = {{"a", 1}};
  StatsMsg out;
  EXPECT_FALSE(decode_stats(encode_stats(in), out));
}

TEST(WireCodec, StatsTruncationIsRejected) {
  StatsMsg in;
  in.lease_id = 1;
  in.entries = {{"fi.injections", 42}};
  const std::string payload = encode_stats(in);
  StatsMsg out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_stats(payload.substr(0, cut), out)) << "cut=" << cut;
  }
  EXPECT_FALSE(decode_stats(payload + "x", out));
}

TEST(WireCodec, FleetStatusRoundTripsEveryField) {
  FleetStatus in;
  in.app = "hotspot";
  in.kernel = "hotspot_k1";
  in.config = "gv100-scaled";
  in.target = "RF";
  in.samples = 9000;
  in.committed = 4200;
  in.executed = 4100;
  in.replayed = 100;
  in.masked = 4000;
  in.sdc = 150;
  in.timeout = 20;
  in.due = 30;
  in.fr = 0.0476;
  in.fr_lo = 0.041;
  in.fr_hi = 0.055;
  in.samples_per_sec = 812.5;
  in.eta_sec = 5.9;
  in.early_stopped = true;
  WorkerStatus w;
  w.name = "worker-9";
  w.connected = true;
  w.stale = true;
  w.completed = 2100;
  w.leased = 64;
  w.lease_id = 33;
  w.executed = 2048;
  w.samples_per_sec = 406.25;
  w.heartbeat_age_sec = 11.5;
  w.stats = {{"sim.cycles", 999}, {"fi.injections", 2048}};
  in.workers.push_back(w);
  in.workers.push_back(WorkerStatus{});  // a gone worker with defaults

  FleetStatus out;
  ASSERT_TRUE(decode_fleet_status(encode_fleet_status(in), out));
  EXPECT_EQ(out.app, in.app);
  EXPECT_EQ(out.kernel, in.kernel);
  EXPECT_EQ(out.config, in.config);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.samples, in.samples);
  EXPECT_EQ(out.committed, in.committed);
  EXPECT_EQ(out.executed, in.executed);
  EXPECT_EQ(out.replayed, in.replayed);
  EXPECT_EQ(out.masked, in.masked);
  EXPECT_EQ(out.sdc, in.sdc);
  EXPECT_EQ(out.timeout, in.timeout);
  EXPECT_EQ(out.due, in.due);
  EXPECT_DOUBLE_EQ(out.fr, in.fr);
  EXPECT_DOUBLE_EQ(out.fr_lo, in.fr_lo);
  EXPECT_DOUBLE_EQ(out.fr_hi, in.fr_hi);
  EXPECT_DOUBLE_EQ(out.samples_per_sec, in.samples_per_sec);
  EXPECT_DOUBLE_EQ(out.eta_sec, in.eta_sec);
  EXPECT_TRUE(out.early_stopped);
  ASSERT_EQ(out.workers.size(), 2u);
  EXPECT_EQ(out.workers[0].name, "worker-9");
  EXPECT_TRUE(out.workers[0].connected);
  EXPECT_TRUE(out.workers[0].stale);
  EXPECT_EQ(out.workers[0].completed, 2100u);
  EXPECT_EQ(out.workers[0].leased, 64u);
  EXPECT_EQ(out.workers[0].lease_id, 33u);
  EXPECT_EQ(out.workers[0].executed, 2048u);
  EXPECT_DOUBLE_EQ(out.workers[0].samples_per_sec, 406.25);
  EXPECT_DOUBLE_EQ(out.workers[0].heartbeat_age_sec, 11.5);
  ASSERT_EQ(out.workers[0].stats.size(), 2u);
  EXPECT_EQ(out.workers[0].stats[0].first, "sim.cycles");
  EXPECT_EQ(out.workers[0].stats[0].second, 999);
  EXPECT_FALSE(out.workers[1].connected);

  // Truncation anywhere is rejected.
  const std::string payload = encode_fleet_status(in);
  FleetStatus cut_out;
  for (std::size_t cut = 0; cut < payload.size(); cut += 7) {
    EXPECT_FALSE(decode_fleet_status(payload.substr(0, cut), cut_out))
        << "cut=" << cut;
  }
}

TEST(WireParse, Addresses) {
  const auto a = parse_address("127.0.0.1:4000");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, "127.0.0.1");
  EXPECT_EQ(a->second, 4000);

  const auto any = parse_address(":0");
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->first, "0.0.0.0");
  EXPECT_EQ(any->second, 0);

  EXPECT_FALSE(parse_address("nope").has_value());
  EXPECT_FALSE(parse_address("host:").has_value());
  EXPECT_FALSE(parse_address("host:99999").has_value());
  EXPECT_FALSE(parse_address("host:12x").has_value());
}

TEST(WireSocket, FramesCrossALoopbackConnection) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  ASSERT_NE(listener.port(), 0);

  Socket client = Socket::connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(client.valid());
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());

  HelloMsg hello;
  hello.name = "w";
  ASSERT_TRUE(client.send_frame(MsgType::Hello, encode_hello(hello)));
  Frame f;
  ASSERT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Frame);
  EXPECT_EQ(f.type, MsgType::Hello);
  HelloMsg got;
  ASSERT_TRUE(decode_hello(f.payload, got));
  EXPECT_EQ(got.name, "w");

  // Zero-timeout recv polls without blocking.
  EXPECT_EQ(server.recv_frame(f, 0.0), Socket::Recv::Timeout);

  // A corrupted frame (checksum mismatch) closes the stream.
  std::string bad = frame_bytes(MsgType::Heartbeat, "payload");
  bad[bad.size() - 1] ^= 0x40;
  ASSERT_TRUE(client.send_frame(MsgType::Stop, ""));  // good frame first
  ASSERT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Frame);
  EXPECT_EQ(f.type, MsgType::Stop);
}

/// Pushes raw bytes at a listener through a plain TCP connection — the only
/// way to put an intentionally damaged frame on the wire, since
/// Socket::send_frame always computes a valid checksum.
void send_raw(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

TEST(WireSocket, ChecksumDamageReadsAsClosed) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  std::string bad = frame_bytes(MsgType::Heartbeat, "beat");
  bad.back() ^= 0x01;  // damage the payload; the header checksum now lies
  send_raw(listener.port(), bad);
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());
  Frame f;
  EXPECT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Closed);
}

TEST(WireSocket, WrongMagicReadsAsClosed) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  std::string junk = frame_bytes(MsgType::Heartbeat, "beat");
  junk[0] ^= 0xff;
  send_raw(listener.port(), junk);
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());
  Frame f;
  EXPECT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Closed);
}

}  // namespace
}  // namespace gras::fabric
