// Wire-protocol unit tests: payload codecs round-trip, frames carry a
// checksum that catches damage, sockets move whole frames, and sample
// records cross the wire bit-identically to their journal encoding.
#include "src/fabric/wire.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace gras::fabric {
namespace {

TEST(WireCodec, HelloRoundTrips) {
  HelloMsg in;
  in.protocol = kProtocolVersion;
  in.name = "worker-42";
  HelloMsg out;
  ASSERT_TRUE(decode_hello(encode_hello(in), out));
  EXPECT_EQ(out.protocol, in.protocol);
  EXPECT_EQ(out.name, in.name);
}

TEST(WireCodec, WelcomeRoundTripsEveryField) {
  WelcomeMsg in;
  in.journal_version = 3;
  in.record_bytes = 228;
  in.fingerprint = 0xdeadbeefcafef00dull;
  in.app = "hotspot";
  in.kernel = "hotspot_k1";
  in.config = "gv100-scaled";
  in.target = "RF";
  in.samples = 3000;
  in.seed = 2024;
  in.margin = 0.0235;
  in.confidence = 0.99;
  in.chunk = 64;
  in.batch = 8;
  in.heartbeat_sec = 1.5;
  in.lease_ttl_sec = 7.5;
  WelcomeMsg out;
  ASSERT_TRUE(decode_welcome(encode_welcome(in), out));
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.app, in.app);
  EXPECT_EQ(out.kernel, in.kernel);
  EXPECT_EQ(out.config, in.config);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.samples, in.samples);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_DOUBLE_EQ(out.margin, in.margin);
  EXPECT_DOUBLE_EQ(out.confidence, in.confidence);
  EXPECT_EQ(out.chunk, in.chunk);
  EXPECT_EQ(out.batch, in.batch);
  EXPECT_DOUBLE_EQ(out.heartbeat_sec, in.heartbeat_sec);
  EXPECT_DOUBLE_EQ(out.lease_ttl_sec, in.lease_ttl_sec);
}

TEST(WireCodec, TruncatedPayloadIsRejected) {
  const std::string payload = encode_hello(HelloMsg{kProtocolVersion, "w"});
  HelloMsg out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_hello(payload.substr(0, cut), out)) << "cut=" << cut;
  }
  // Trailing garbage is rejected too: done() demands exact consumption.
  EXPECT_FALSE(decode_hello(payload + "x", out));
}

orchestrator::JournalRecord sample_record(std::uint64_t index) {
  orchestrator::JournalRecord r;
  r.index = index;
  r.cycles = 123456 + index;
  r.outcome = fi::Outcome::SDC;
  r.injected = true;
  r.has_signature = true;
  r.signature.words_mismatched = 7;
  return r;
}

TEST(WireCodec, RecordsCarryJournalBytesBitExactly) {
  RecordsMsg in;
  in.lease_id = 99;
  for (std::uint64_t i = 0; i < 5; ++i) in.records.push_back(sample_record(i));
  const std::string payload = encode_records(in);

  RecordsMsg out;
  ASSERT_TRUE(decode_records(payload, out));
  EXPECT_EQ(out.lease_id, 99u);
  ASSERT_EQ(out.records.size(), in.records.size());
  char a[orchestrator::kRecordBytes];
  char b[orchestrator::kRecordBytes];
  for (std::size_t i = 0; i < in.records.size(); ++i) {
    orchestrator::encode_record(in.records[i], a);
    orchestrator::encode_record(out.records[i], b);
    EXPECT_EQ(0, std::memcmp(a, b, sizeof a)) << "record " << i;
  }
}

TEST(WireCodec, DamagedRecordInPayloadIsRejected) {
  RecordsMsg in;
  in.lease_id = 1;
  in.records.push_back(sample_record(0));
  std::string payload = encode_records(in);
  payload[payload.size() / 2] ^= 0x01;  // flip one bit inside the record
  RecordsMsg out;
  EXPECT_FALSE(decode_records(payload, out));
}

TEST(WireParse, Addresses) {
  const auto a = parse_address("127.0.0.1:4000");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, "127.0.0.1");
  EXPECT_EQ(a->second, 4000);

  const auto any = parse_address(":0");
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->first, "0.0.0.0");
  EXPECT_EQ(any->second, 0);

  EXPECT_FALSE(parse_address("nope").has_value());
  EXPECT_FALSE(parse_address("host:").has_value());
  EXPECT_FALSE(parse_address("host:99999").has_value());
  EXPECT_FALSE(parse_address("host:12x").has_value());
}

TEST(WireSocket, FramesCrossALoopbackConnection) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  ASSERT_NE(listener.port(), 0);

  Socket client = Socket::connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(client.valid());
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());

  HelloMsg hello;
  hello.name = "w";
  ASSERT_TRUE(client.send_frame(MsgType::Hello, encode_hello(hello)));
  Frame f;
  ASSERT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Frame);
  EXPECT_EQ(f.type, MsgType::Hello);
  HelloMsg got;
  ASSERT_TRUE(decode_hello(f.payload, got));
  EXPECT_EQ(got.name, "w");

  // Zero-timeout recv polls without blocking.
  EXPECT_EQ(server.recv_frame(f, 0.0), Socket::Recv::Timeout);

  // A corrupted frame (checksum mismatch) closes the stream.
  std::string bad = frame_bytes(MsgType::Heartbeat, "payload");
  bad[bad.size() - 1] ^= 0x40;
  ASSERT_TRUE(client.send_frame(MsgType::Stop, ""));  // good frame first
  ASSERT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Frame);
  EXPECT_EQ(f.type, MsgType::Stop);
}

/// Pushes raw bytes at a listener through a plain TCP connection — the only
/// way to put an intentionally damaged frame on the wire, since
/// Socket::send_frame always computes a valid checksum.
void send_raw(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

TEST(WireSocket, ChecksumDamageReadsAsClosed) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  std::string bad = frame_bytes(MsgType::Heartbeat, "beat");
  bad.back() ^= 0x01;  // damage the payload; the header checksum now lies
  send_raw(listener.port(), bad);
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());
  Frame f;
  EXPECT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Closed);
}

TEST(WireSocket, WrongMagicReadsAsClosed) {
  Listener listener = Listener::listen_on("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  std::string junk = frame_bytes(MsgType::Heartbeat, "beat");
  junk[0] ^= 0xff;
  send_raw(listener.port(), junk);
  Socket server = listener.accept_next(5.0);
  ASSERT_TRUE(server.valid());
  Frame f;
  EXPECT_EQ(server.recv_frame(f, 5.0), Socket::Recv::Closed);
}

}  // namespace
}  // namespace gras::fabric
