// FleetTracker under a fake clock: heartbeat aging and staleness, windowed
// throughput math, aggregate helpers, and the three FleetStatus renderings
// (table, JSON, exposition text).
#include "src/fabric/fleet.h"

#include <gtest/gtest.h>

#include <string>

namespace gras::fabric {
namespace {

StatsMsg stats(std::uint64_t executed, std::uint64_t lease_id = 1) {
  StatsMsg m;
  m.lease_id = lease_id;
  m.executed = executed;
  return m;
}

TEST(FleetTracker, UnknownKeyYieldsDefaultRow) {
  double t = 0.0;
  const FleetTracker tracker(10.0, [&] { return t; });
  const WorkerStatus w = tracker.row("nobody");
  EXPECT_EQ(w.executed, 0u);
  EXPECT_FALSE(w.stale);
  EXPECT_DOUBLE_EQ(w.samples_per_sec, 0.0);
}

TEST(FleetTracker, HeartbeatAgeAndStaleness) {
  double t = 100.0;
  FleetTracker tracker(10.0, [&] { return t; });
  tracker.touch("w");
  EXPECT_DOUBLE_EQ(tracker.row("w").heartbeat_age_sec, 0.0);
  t = 105.0;
  EXPECT_DOUBLE_EQ(tracker.row("w").heartbeat_age_sec, 5.0);
  EXPECT_FALSE(tracker.row("w").stale);
  t = 110.5;  // past the 10s budget
  EXPECT_TRUE(tracker.row("w").stale);
  // Any frame revives the worker.
  tracker.touch("w");
  EXPECT_FALSE(tracker.row("w").stale);
  EXPECT_DOUBLE_EQ(tracker.row("w").heartbeat_age_sec, 0.0);
}

TEST(FleetTracker, ThroughputNeedsTwoPoints) {
  double t = 0.0;
  FleetTracker tracker(10.0, [&] { return t; });
  tracker.on_stats("w", stats(100));
  EXPECT_DOUBLE_EQ(tracker.row("w").samples_per_sec, 0.0);
  t = 2.0;
  tracker.on_stats("w", stats(300));
  // 200 samples over 2 seconds.
  EXPECT_DOUBLE_EQ(tracker.row("w").samples_per_sec, 100.0);
  EXPECT_EQ(tracker.row("w").executed, 300u);
}

TEST(FleetTracker, ThroughputWindowSlidesForward) {
  double t = 0.0;
  FleetTracker tracker(100.0, [&] { return t; }, /*window_sec=*/10.0);
  tracker.on_stats("w", stats(0));
  t = 2.0;
  tracker.on_stats("w", stats(1000));  // a fast burst...
  for (int i = 1; i <= 10; ++i) {
    t = 2.0 + 10.0 * i;  // ...then 10 samples/s for 100 seconds
    tracker.on_stats("w", stats(1000 + 100 * static_cast<std::uint64_t>(i)));
  }
  // The burst at t=2 left the 10s window long ago; the rate reflects the
  // recent cadence, not the lifetime average (~19.6/s).
  const double rate = tracker.row("w").samples_per_sec;
  EXPECT_NEAR(rate, 10.0, 0.1);
}

TEST(FleetTracker, ThroughputKeepsOnePointOlderThanTheWindow) {
  double t = 0.0;
  FleetTracker tracker(100.0, [&] { return t; }, /*window_sec=*/10.0);
  // A sparse reporter: one report every 8s. Both retained points must span
  // a full interval even though only one of them is inside the window.
  tracker.on_stats("w", stats(0));
  t = 8.0;
  tracker.on_stats("w", stats(80));
  t = 16.0;
  tracker.on_stats("w", stats(160));
  EXPECT_NEAR(tracker.row("w").samples_per_sec, 10.0, 1e-9);
}

TEST(FleetTracker, ExecutedRegressionReportsZeroRate) {
  // A worker restart resets its cumulative executed count; the tracker must
  // not report a bogus (negative or underflowed) rate.
  double t = 0.0;
  FleetTracker tracker(10.0, [&] { return t; });
  tracker.on_stats("w", stats(500));
  t = 1.0;
  tracker.on_stats("w", stats(10));
  EXPECT_DOUBLE_EQ(tracker.row("w").samples_per_sec, 0.0);
}

TEST(FleetTracker, StatsEntriesOverwriteByName) {
  double t = 0.0;
  FleetTracker tracker(10.0, [&] { return t; });
  StatsMsg m = stats(10);
  m.entries = {{"sim.cycles", 100}, {"fi.injections", 9}};
  tracker.on_stats("w", m);
  m = stats(20);
  m.entries = {{"sim.cycles", 250}};  // delta report: only what changed
  tracker.on_stats("w", m);
  const WorkerStatus w = tracker.row("w");
  ASSERT_EQ(w.stats.size(), 2u);  // folded map keeps both names
  EXPECT_EQ(w.stats[0].first, "fi.injections");
  EXPECT_EQ(w.stats[0].second, 9);
  EXPECT_EQ(w.stats[1].first, "sim.cycles");
  EXPECT_EQ(w.stats[1].second, 250);
}

TEST(FleetTracker, ForgetDropsTheRow) {
  double t = 0.0;
  FleetTracker tracker(10.0, [&] { return t; });
  tracker.on_stats("w", stats(42));
  tracker.forget("w");
  EXPECT_EQ(tracker.row("w").executed, 0u);
}

FleetStatus sample_status() {
  FleetStatus s;
  s.app = "va";
  s.kernel = "va_k1";
  s.config = "gv100-scaled";
  s.target = "SVF";
  s.samples = 1000;
  s.committed = 600;
  s.executed = 500;
  s.replayed = 100;
  s.masked = 400;
  s.sdc = 150;
  s.timeout = 20;
  s.due = 30;
  s.fr = 0.333;
  s.fr_lo = 0.30;
  s.fr_hi = 0.37;
  s.samples_per_sec = 120.0;
  s.eta_sec = 3.3;
  WorkerStatus a;
  a.name = "worker-1";
  a.connected = true;
  a.completed = 300;
  a.leased = 64;
  a.executed = 250;
  a.samples_per_sec = 60.0;
  WorkerStatus b;
  b.name = "worker-2";
  b.connected = true;
  b.stale = true;
  b.samples_per_sec = 40.0;
  WorkerStatus c;
  c.name = "worker-3";  // gone
  c.samples_per_sec = 99.0;
  s.workers = {a, b, c};
  return s;
}

TEST(FleetStatus, AggregateHelpers) {
  const FleetStatus s = sample_status();
  EXPECT_EQ(s.workers_connected(), 2u);
  EXPECT_EQ(s.workers_stale(), 1u);
  // Disconnected workers do not contribute to the fleet rate.
  EXPECT_DOUBLE_EQ(s.workers_samples_per_sec(), 100.0);
}

TEST(FleetStatus, TableShowsEveryWorkerState) {
  const std::string table = render_fleet_table(sample_status());
  EXPECT_NE(table.find("600/1000 committed"), std::string::npos) << table;
  EXPECT_NE(table.find("3 workers (2 live)"), std::string::npos) << table;
  EXPECT_NE(table.find("worker-1"), std::string::npos);
  EXPECT_NE(table.find("live"), std::string::npos);
  EXPECT_NE(table.find("stale"), std::string::npos);
  EXPECT_NE(table.find("gone"), std::string::npos);
}

TEST(FleetStatus, JsonIsOneLineAndSanitizesNames) {
  FleetStatus s = sample_status();
  s.workers[0].name = "evil\"name\nworker-1";
  const std::string j = fleet_status_json(s);
  EXPECT_EQ(j.find('\n'), std::string::npos) << j;
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"type\":\"fleet\""), std::string::npos);
  EXPECT_NE(j.find("\"committed\":600"), std::string::npos);
  // Hostile characters are stripped, not escaped, as in JsonlProgress.
  EXPECT_NE(j.find("\"evilnameworker-1\""), std::string::npos) << j;
  EXPECT_EQ(j.find("evil\""), std::string::npos);
}

TEST(FleetStatus, PromtextDedupesDuplicateWorkerNames) {
  FleetStatus s = sample_status();
  s.workers[1].name = "worker-1";  // collides with workers[0]
  const std::string text = render_fleet_promtext(s);
  EXPECT_NE(text.find("gras_fleet_samples_committed 600\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gras_fleet_outcome{outcome=\"sdc\"} 150\n"),
            std::string::npos);
  EXPECT_NE(text.find("gras_fleet_workers{state=\"connected\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("gras_fleet_worker_samples_per_sec{worker=\"worker-1\"} 60\n"),
      std::string::npos)
      << text;
  // The second worker-1 gets a disambiguating suffix: no duplicate series.
  EXPECT_NE(
      text.find("gras_fleet_worker_samples_per_sec{worker=\"worker-1#1\"} 40\n"),
      std::string::npos)
      << text;
}

}  // namespace
}  // namespace gras::fabric
