// Two-level pruned estimation tests: the site-identity shortcut, plan
// properties, the weighted estimator against closed forms, and the in-memory
// and durable pruned runners against brute force.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "src/analysis/prune.h"
#include "src/campaign/campaign.h"
#include "src/orchestrator/orchestrator.h"
#include "src/workloads/workload.h"

namespace gras::campaign {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

CampaignSpec va_spec(std::uint64_t samples) {
  CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = Target::Svf;
  spec.samples = samples;
  spec.seed = 2024;
  return spec;
}

TEST(SampleSite, MatchesTheInjectorSiteForEverySample) {
  // The pruning plan rests on computing each sample's fault site without
  // simulation; it must agree with where the injector actually lands.
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  const auto spec = va_spec(16);
  const std::uint64_t total = site_count(golden, spec);
  ASSERT_GT(total, 0u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto predicted = sample_site(golden, spec, i);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_LT(*predicted, total);
    const SampleResult run = run_sample(*app, config(), golden, spec, i);
    ASSERT_TRUE(run.injected);
    // The injector records the global counting index (fault.trigger) and the
    // owning golden launch; map back to the kernel-relative ordinal and it
    // must match the simulation-free prediction.
    std::uint64_t base = 0;
    for (const std::size_t l : golden.launches_of(spec.kernel)) {
      if (l == run.fault.launch) break;
      base += golden.launches[l].gp_end - golden.launches[l].gp_begin;
    }
    const std::uint64_t ordinal =
        base + (run.fault.trigger - golden.launches[run.fault.launch].gp_begin);
    EXPECT_EQ(ordinal, *predicted) << "sample " << i;
  }
}

TEST(SampleSite, NonPrunableTargetsHaveNoSiteSpace) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  auto spec = va_spec(4);
  spec.target = Target::RF;
  EXPECT_FALSE(prunable(spec.target));
  EXPECT_EQ(site_count(golden, spec), 0u);
  EXPECT_FALSE(sample_site(golden, spec, 0).has_value());
  EXPECT_TRUE(prunable(Target::Svf));
  EXPECT_TRUE(prunable(Target::SvfLd));
}

TEST(PlanPruned, CoversEachClassOnceInAscendingOrder) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  const auto spec = va_spec(200);
  const PruneClassing classing =
      analysis::build_prune_classing(*app, config(), golden, spec);
  const PrunePlan plan = plan_pruned(classing, golden, spec);
  ASSERT_FALSE(plan.rep_samples.empty());
  ASSERT_EQ(plan.rep_samples.size(), plan.rep_class.size());
  std::vector<char> seen(classing.class_population.size(), 0);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < plan.rep_samples.size(); ++i) {
    if (i > 0) EXPECT_LT(plan.rep_samples[i - 1], plan.rep_samples[i]);
    const std::uint32_t c = plan.rep_class[i];
    ASSERT_LT(c, seen.size());
    EXPECT_EQ(seen[c], 0) << "class " << c << " covered twice";
    seen[c] = 1;
    covered += classing.class_population[c];
  }
  EXPECT_EQ(plan.covered_population, covered);
  EXPECT_LE(plan.covered_population, classing.live_sites());
}

TEST(PlanPruned, RepBudgetKeepsTheLargestClasses) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  const auto spec = va_spec(200);
  const PruneClassing classing =
      analysis::build_prune_classing(*app, config(), golden, spec);
  const PrunePlan full = plan_pruned(classing, golden, spec);
  ASSERT_GT(full.rep_samples.size(), 2u);
  const std::uint64_t budget = full.rep_samples.size() - 2;
  const PrunePlan capped = plan_pruned(classing, golden, spec, 0, budget);
  EXPECT_EQ(capped.rep_samples.size(), budget);
  // The capped plan keeps the biggest classes: its covered population beats
  // any other choice of `budget` covered classes, in particular it is at
  // least the full coverage minus the two smallest classes.
  std::vector<std::uint64_t> pops;
  for (const std::uint32_t c : full.rep_class) {
    pops.push_back(classing.class_population[c]);
  }
  std::sort(pops.begin(), pops.end());
  EXPECT_EQ(capped.covered_population, full.covered_population - pops[0] - pops[1]);
  for (std::size_t i = 1; i < capped.rep_samples.size(); ++i) {
    EXPECT_LT(capped.rep_samples[i - 1], capped.rep_samples[i]);
  }
}

TEST(EstimatePruned, MatchesClosedForm) {
  // 100 sites: 40 provably dead, classes of 30/20/10 live sites. Plan covers
  // the 30-class (rep fails: SDC) and the 20-class (rep masked); the
  // 10-class stays uncovered. Hand-derived:
  //   scale     = live / covered = 60 / 50 = 1.2
  //   sdc_w     = 30 * 1.2            = 36
  //   masked_w  = 40 + 20 * 1.2       = 64
  //   FR        = 36 / 100            = 0.36
  PruneClassing classing;
  classing.total_sites = 100;
  classing.class_population = {30, 20, 10};
  classing.class_of_site.assign(100, PruneClassing::kDeadClass);
  std::size_t s = 0;
  for (std::uint32_t c = 0; c < 3; ++c) {
    for (std::uint64_t i = 0; i < classing.class_population[c]; ++i) {
      classing.class_of_site[s++] = c;
    }
  }
  ASSERT_TRUE(classing.partitions());
  ASSERT_EQ(classing.dead_sites(), 40u);

  PrunePlan plan;
  plan.rep_samples = {0, 1};
  plan.rep_class = {0, 1};
  plan.covered_population = 50;
  const fi::Outcome outcomes[] = {fi::Outcome::SDC, fi::Outcome::Masked};
  const PrunedEstimate est = estimate_pruned(classing, plan, outcomes);
  EXPECT_DOUBLE_EQ(est.covered_population, 50.0);
  EXPECT_DOUBLE_EQ(est.covered_population_sq, 30.0 * 30 + 20.0 * 20);
  EXPECT_DOUBLE_EQ(est.sdc_w, 36.0);
  EXPECT_DOUBLE_EQ(est.masked_w, 64.0);
  EXPECT_DOUBLE_EQ(est.timeout_w, 0.0);
  EXPECT_DOUBLE_EQ(est.due_w, 0.0);
  EXPECT_DOUBLE_EQ(est.failure_rate(), 0.36);
  // Weighted masses always re-total the full site space.
  EXPECT_DOUBLE_EQ(est.masked_w + est.sdc_w + est.timeout_w + est.due_w, 100.0);

  // CI: Wilson at the Kish effective sample size (2500/1300), scaled by the
  // live fraction 0.6. The point estimate is exact; the bounds bracket it.
  const ProportionCi ci = est.fr_ci(0.99);
  EXPECT_NEAR(ci.estimate, 0.36, 1e-12);
  EXPECT_GE(ci.lower, 0.0);
  EXPECT_LE(ci.upper, 0.6);  // can never exceed the live fraction
  EXPECT_LT(ci.lower, 0.36);
  EXPECT_GT(ci.upper, 0.36);
}

TEST(EstimatePruned, DegenerateInputsStayFinite) {
  PruneClassing empty;
  PrunePlan plan;
  const PrunedEstimate none = estimate_pruned(empty, plan, {});
  EXPECT_DOUBLE_EQ(none.failure_rate(), 0.0);
  const ProportionCi no_info = none.fr_ci();
  EXPECT_EQ(no_info.lower, 0.0);
  EXPECT_EQ(no_info.upper, 1.0);  // empty space: no information, not [0,0]

  // All sites dead: FR is certainly 0 and the CI collapses honestly.
  PruneClassing all_dead;
  all_dead.total_sites = 10;
  all_dead.class_of_site.assign(10, PruneClassing::kDeadClass);
  const PrunedEstimate dead = estimate_pruned(all_dead, plan, {});
  EXPECT_DOUBLE_EQ(dead.failure_rate(), 0.0);
  EXPECT_DOUBLE_EQ(dead.fr_ci().upper, 0.0);

  // Live sites but nothing executed yet: FR unknown within the live mass.
  PruneClassing live;
  live.total_sites = 10;
  live.class_of_site.assign(10, 0);
  live.class_population = {10};
  const PrunedEstimate pending = estimate_pruned(live, plan, {});
  const ProportionCi ci = pending.fr_ci();
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(RunPruned, BruteForceFrWithinPrunedCiWithFewerSamples) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  const auto spec = va_spec(96);
  ThreadPool pool(4);
  const PruneClassing classing =
      analysis::build_prune_classing(*app, config(), golden, spec);
  const CampaignResult brute = run_campaign(*app, config(), golden, spec, pool);
  const PrunedResult pruned = run_pruned(*app, config(), golden, spec, classing, pool);

  ASSERT_GT(pruned.raw.total(), 0u);
  EXPECT_LE(pruned.raw.total() * 5, brute.counts.total());
  const double brute_fr = brute.counts.failure_rate();
  const ProportionCi ci = pruned.estimate.fr_ci();
  EXPECT_GE(brute_fr, ci.lower);
  EXPECT_LE(brute_fr, ci.upper);
}

TEST(RunPruned, DeterministicAcrossThreadCounts) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  const auto spec = va_spec(64);
  const PruneClassing classing =
      analysis::build_prune_classing(*app, config(), golden, spec);
  ThreadPool one(1), four(4);
  const PrunedResult a = run_pruned(*app, config(), golden, spec, classing, one);
  const PrunedResult b = run_pruned(*app, config(), golden, spec, classing, four);
  EXPECT_EQ(a.plan.rep_samples, b.plan.rep_samples);
  EXPECT_EQ(a.raw.masked, b.raw.masked);
  EXPECT_EQ(a.raw.sdc, b.raw.sdc);
  EXPECT_EQ(a.raw.timeout, b.raw.timeout);
  EXPECT_EQ(a.raw.due, b.raw.due);
  EXPECT_DOUBLE_EQ(a.estimate.failure_rate(), b.estimate.failure_rate());
}

TEST(RunPruned, ThrowsForNonPrunableTarget) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  auto spec = va_spec(8);
  spec.target = Target::L1D;
  ThreadPool pool(2);
  EXPECT_THROW(run_pruned(*app, config(), golden, spec, PruneClassing{}, pool),
               std::invalid_argument);
}

TEST(RunPrunedDurable, ResumeReplaysRepresentativesBitIdentically) {
  const auto app = workloads::make_benchmark("va");
  const auto cfg = config();
  const GoldenRun golden = run_golden(*app, cfg);
  const auto spec = va_spec(64);
  const PruneClassing classing =
      analysis::build_prune_classing(*app, cfg, golden, spec);
  ThreadPool pool(4);

  const auto dir = std::filesystem::temp_directory_path() / "gras_pruned_test";
  std::filesystem::create_directories(dir);
  orchestrator::DurableOptions options;
  options.journal = dir / "resume.pruned.jrnl";
  std::filesystem::remove(options.journal);

  const auto first =
      orchestrator::run_pruned_durable(*app, cfg, golden, spec, classing, pool, options);
  EXPECT_GT(first.executed, 0u);
  EXPECT_EQ(first.replayed, 0u);
  EXPECT_EQ(first.planned, first.result.raw.total());

  // Every journal record carries its class provenance (v4).
  const auto contents = orchestrator::read_journal(options.journal);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->version, orchestrator::kJournalVersion);
  ASSERT_EQ(contents->records.size(), first.planned);
  for (const auto& r : contents->records) {
    EXPECT_GT(r.class_weight, 0u);
    EXPECT_LT(r.class_id, classing.class_population.size());
    EXPECT_EQ(r.class_weight, classing.class_population[r.class_id]);
  }

  const auto second =
      orchestrator::run_pruned_durable(*app, cfg, golden, spec, classing, pool, options);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.replayed, first.planned);
  EXPECT_EQ(second.result.raw.masked, first.result.raw.masked);
  EXPECT_EQ(second.result.raw.sdc, first.result.raw.sdc);
  EXPECT_DOUBLE_EQ(second.result.estimate.failure_rate(),
                   first.result.estimate.failure_rate());
}

TEST(RunPrunedDurable, RejectsSharding) {
  const auto app = workloads::make_benchmark("va");
  const auto cfg = config();
  const GoldenRun golden = run_golden(*app, cfg);
  const auto spec = va_spec(16);
  ThreadPool pool(2);
  orchestrator::DurableOptions options;
  options.journaled = false;
  options.shard.count = 2;
  EXPECT_THROW(orchestrator::run_pruned_durable(*app, cfg, golden, spec,
                                                PruneClassing{}, pool, options),
               std::runtime_error);
}

}  // namespace
}  // namespace gras::campaign
