// Launch-boundary checkpointing: snapshot/restore correctness and the
// bit-exact equivalence of checkpointed samples vs full from-cycle-0 runs.
//
// The equivalence tests are the campaign-level A/B contract behind
// GRAS_NO_CHECKPOINT: for multi-launch apps (SRADv1, BFS, LUD) and both
// injection levels (microarchitecture RF, software SVF), outcome histograms,
// control-path counts and injected counts must be identical bit for bit
// between Checkpointing::On and Checkpointing::Off golden runs with the
// same seed.
#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/sim/gpu.h"
#include "src/workloads/workload.h"

namespace gras::campaign {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(Checkpoint, GoldenRunRecordsOneSnapshotPerKernel) {
  const auto app = workloads::make_benchmark("srad_v1");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  ASSERT_NE(golden.checkpoints, nullptr);
  EXPECT_EQ(golden.checkpoints->store.size(), golden.kernel_names().size());
  // Every kernel's first launch has a resume snapshot.
  for (const std::string& kernel : golden.kernel_names()) {
    const std::size_t first = golden.launches_of(kernel).front();
    const sim::GpuSnapshot* snap = golden.checkpoints->store.at(first);
    ASSERT_NE(snap, nullptr) << kernel;
    EXPECT_EQ(snap->launch_count, first) << kernel;
    EXPECT_EQ(snap->cycle, golden.launches[first].start_cycle) << kernel;
    EXPECT_EQ(snap->gp_total, golden.launches[first].gp_begin) << kernel;
    EXPECT_EQ(snap->ld_total, golden.launches[first].ld_begin) << kernel;
  }
}

TEST(Checkpoint, OffModeRecordsNothing) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::Off);
  EXPECT_EQ(golden.checkpoints, nullptr);
}

TEST(Checkpoint, RestoredReplayReproducesGoldenOutput) {
  // Fault-free replay from every kernel's checkpoint must reproduce the
  // golden outputs and the golden total cycle count exactly.
  const auto app = workloads::make_benchmark("bfs");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  ASSERT_NE(golden.checkpoints, nullptr);
  for (const std::string& kernel : golden.kernel_names()) {
    const std::size_t first = golden.launches_of(kernel).front();
    const sim::GpuSnapshot* snap = golden.checkpoints->store.at(first);
    ASSERT_NE(snap, nullptr);
    sim::Gpu gpu(config());
    gpu.restore(*snap, golden.launches);
    const workloads::RunOutput out = workloads::replay_app(
        *app, gpu, golden.checkpoints->trace, first, golden.launches);
    EXPECT_TRUE(out.completed()) << kernel;
    EXPECT_EQ(out.outputs, golden.output.outputs) << kernel;
    EXPECT_EQ(gpu.cycle(), golden.total_cycles) << kernel;
  }
}

TEST(Checkpoint, SnapshotRestoreRoundTripsAcrossGpus) {
  const auto app = workloads::make_benchmark("lud");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  const std::size_t last_kernel_first =
      golden.launches_of(golden.kernel_names().back()).front();
  const sim::GpuSnapshot* snap = golden.checkpoints->store.at(last_kernel_first);
  ASSERT_NE(snap, nullptr);
  sim::Gpu gpu(config());
  gpu.restore(*snap, golden.launches);
  EXPECT_EQ(gpu.cycle(), snap->cycle);
  EXPECT_EQ(gpu.launches().size(), snap->launch_count);
  // A snapshot of the restored device matches the original bit for bit.
  const sim::GpuSnapshot again = gpu.snapshot();
  EXPECT_EQ(again.gmem.data, snap->gmem.data);
  EXPECT_EQ(again.l2.data, snap->l2.data);
  ASSERT_EQ(again.sms.size(), snap->sms.size());
  for (std::size_t s = 0; s < again.sms.size(); ++s) {
    EXPECT_EQ(again.sms[s].rf.cells, snap->sms[s].rf.cells) << s;
    EXPECT_EQ(again.sms[s].smem.data, snap->sms[s].smem.data) << s;
  }
}

TEST(Checkpoint, RestoreRejectsMismatchedGeometry) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  const sim::GpuSnapshot* snap = golden.checkpoints->store.at(0);
  ASSERT_NE(snap, nullptr);
  sim::GpuConfig other = config();
  other.num_sms += 1;
  sim::Gpu gpu(other);
  EXPECT_THROW(gpu.restore(*snap, golden.launches), std::invalid_argument);
}

/// The A/B equivalence harness: same app, same seed, same spec — one
/// campaign sampled off a checkpointed golden run, one off a plain golden
/// run (every sample re-simulates from cycle 0). All observable campaign
/// statistics must match exactly.
struct EquivalenceCase {
  const char* app;
  const char* kernel;  ///< nullptr = last kernel (deepest fast-forward)
  Target target;
};

class CheckpointEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(CheckpointEquivalence, BitIdenticalOutcomes) {
  const EquivalenceCase& c = GetParam();
  const auto app = workloads::make_benchmark(c.app);
  const GoldenRun with = run_golden(*app, config(), Checkpointing::On);
  const GoldenRun without = run_golden(*app, config(), Checkpointing::Off);
  ASSERT_NE(with.checkpoints, nullptr);
  ASSERT_EQ(without.checkpoints, nullptr);
  // Both golden runs are the same fault-free execution.
  ASSERT_EQ(with.output.outputs, without.output.outputs);
  ASSERT_EQ(with.total_cycles, without.total_cycles);
  ASSERT_GT(with.launches.size(), 1u) << "equivalence needs a multi-launch app";

  CampaignSpec spec;
  spec.kernel = c.kernel != nullptr ? c.kernel : with.kernel_names().back();
  spec.target = c.target;
  spec.samples = 60;
  spec.seed = 77;
  // The target kernel must sit behind a non-trivial prefix so the
  // fast-forward path actually skips launches.
  ASSERT_GT(with.launches_of(spec.kernel).front(), 0u);

  ThreadPool pool(2);
  const CampaignResult fast = run_campaign(*app, config(), with, spec, pool);
  const CampaignResult full = run_campaign(*app, config(), without, spec, pool);

  EXPECT_EQ(fast.counts.masked, full.counts.masked);
  EXPECT_EQ(fast.counts.sdc, full.counts.sdc);
  EXPECT_EQ(fast.counts.timeout, full.counts.timeout);
  EXPECT_EQ(fast.counts.due, full.counts.due);
  EXPECT_EQ(fast.control_path_masked, full.control_path_masked);
  EXPECT_EQ(fast.injected, full.injected);

  // Per-sample spot check: cycles and outcomes agree sample by sample.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const SampleResult a = run_sample(*app, config(), with, spec, i);
    const SampleResult b = run_sample(*app, config(), without, spec, i);
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
    EXPECT_EQ(a.injected, b.injected) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MultiLaunchApps, CheckpointEquivalence,
    ::testing::Values(EquivalenceCase{"srad_v1", nullptr, Target::RF},
                      EquivalenceCase{"srad_v1", nullptr, Target::Svf},
                      EquivalenceCase{"bfs", nullptr, Target::RF},
                      EquivalenceCase{"bfs", nullptr, Target::Svf},
                      EquivalenceCase{"lud", "lud_internal", Target::RF},
                      EquivalenceCase{"lud", "lud_internal", Target::Svf},
                      EquivalenceCase{"lud", "lud_internal", Target::SvfLd}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      std::string name = std::string(info.param.app) + "_" + target_name(info.param.target);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gras::campaign
