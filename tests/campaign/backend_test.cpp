// Backend A/B equivalence: the functional fast-forward backend must be
// invisible in every campaign observable. For multi-launch apps and both
// injection levels, each sample's outcome, cycle count, injected flag,
// fault-provenance record, and SDC corruption signature must match the
// pure-timing backend bit for bit (the campaign-level contract behind
// GRAS_BACKEND, mirroring the GRAS_NO_CHECKPOINT equivalence suite in
// checkpoint_test.cpp). Also covers the degenerate and failure edges: a
// first-launch injection (no functional prefix at all), an expiring RF/SMEM
// window (give-up), and a handoff whose validated memory image diverged.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "src/campaign/campaign.h"
#include "src/sim/gpu.h"
#include "src/workloads/workload.h"

namespace gras::campaign {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

void expect_same_sample(const SampleResult& t, const SampleResult& f,
                        std::uint64_t index) {
  EXPECT_EQ(t.outcome, f.outcome) << index;
  EXPECT_EQ(t.cycles, f.cycles) << index;
  EXPECT_EQ(t.injected, f.injected) << index;
  EXPECT_EQ(t.fault.level, f.fault.level) << index;
  EXPECT_EQ(t.fault.structure, f.fault.structure) << index;
  EXPECT_EQ(t.fault.mode, f.fault.mode) << index;
  EXPECT_EQ(t.fault.sm, f.fault.sm) << index;
  EXPECT_EQ(t.fault.site, f.fault.site) << index;
  EXPECT_EQ(t.fault.bit, f.fault.bit) << index;
  EXPECT_EQ(t.fault.width, f.fault.width) << index;
  EXPECT_EQ(t.fault.trigger, f.fault.trigger) << index;
  EXPECT_EQ(t.fault.launch, f.fault.launch) << index;
  EXPECT_EQ(t.signature.words_mismatched, f.signature.words_mismatched) << index;
  EXPECT_EQ(t.signature.first_word, f.signature.first_word) << index;
  EXPECT_EQ(t.signature.last_word, f.signature.last_word) << index;
  EXPECT_EQ(t.signature.bit_flips, f.signature.bit_flips) << index;
}

struct EquivalenceCase {
  const char* app;
  const char* kernel;  ///< nullptr = last kernel
  Target target;
};

class BackendEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(BackendEquivalence, BitIdenticalSamples) {
  const EquivalenceCase& c = GetParam();
  const auto app = workloads::make_benchmark(c.app);
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  ASSERT_NE(golden.checkpoints, nullptr);
  ASSERT_EQ(golden.checkpoints->residues.size(), golden.launches.size());

  CampaignSpec spec;
  spec.kernel = c.kernel != nullptr ? c.kernel : golden.kernel_names().back();
  spec.target = c.target;
  spec.samples = 30;
  spec.seed = 99;
  // At least one launch of the target kernel must sit behind a non-trivial
  // prefix so some samples run functional launches before handing off (the
  // first launch may be index 0, e.g. nw_k1 — those samples are the
  // degenerate no-prefix case and must still match).
  ASSERT_GT(golden.launches_of(spec.kernel).back(), 0u);

  sim::Gpu timing_gpu(config());
  sim::Gpu functional_gpu(config());
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    const SampleResult t =
        run_sample(*app, golden, spec, i, timing_gpu, nullptr, Backend::Timing);
    const SampleResult f =
        run_sample(*app, golden, spec, i, functional_gpu, nullptr, Backend::Functional);
    expect_same_sample(t, f, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MultiLaunchApps, BackendEquivalence,
    // srad1_srad2 runs every diffusion iteration, so injection launches are
    // spread across the run and most samples hand off past a real functional
    // prefix. (The app's *last* kernel, compress, launches exactly once —
    // resume == inject launch, a degenerate case BackendEdge covers.)
    ::testing::Values(EquivalenceCase{"srad_v1", "srad1_srad2", Target::RF},
                      EquivalenceCase{"srad_v1", "srad1_srad2", Target::Svf},
                      EquivalenceCase{"srad_v1", "srad1_srad2", Target::L2},
                      EquivalenceCase{"bfs", nullptr, Target::RF},
                      EquivalenceCase{"bfs", nullptr, Target::Svf},
                      // bfs_k1 starts at launch 0 and interleaves with k2;
                      // its prefix length varies per sample.
                      EquivalenceCase{"bfs", "bfs_k1", Target::Svf},
                      EquivalenceCase{"bfs", "bfs_k1", Target::L1D},
                      EquivalenceCase{"lud", "lud_internal", Target::Svf},
                      EquivalenceCase{"lud", "lud_internal", Target::SvfLd},
                      // nw exercises the texture-load (LDT) path inside a
                      // functional prefix and interleaves two kernels.
                      EquivalenceCase{"nw", "nw_k1", Target::Svf},
                      EquivalenceCase{"nw", nullptr, Target::RF}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      std::string name = std::string(info.param.app);
      if (info.param.kernel != nullptr) name += std::string("_") + info.param.kernel;
      name += std::string("_") + target_name(info.param.target);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(BackendEdge, PrefixCacheMemoizesHandoffState) {
  // The first functional sample through a handoff boundary publishes the
  // prefix end state; re-running the same sample takes the cache-hit path
  // (restore the memo, skip the functional region entirely) and must be
  // indistinguishable from the fill path.
  const auto app = workloads::make_benchmark("srad_v1");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  ASSERT_EQ(golden.checkpoints->prefixes.size(), 0u);

  CampaignSpec spec;
  spec.kernel = "srad1_srad2";  // many launches -> real handoff boundaries
  spec.target = Target::Svf;
  spec.samples = 8;
  spec.seed = 21;
  sim::Gpu gpu(config());
  std::vector<SampleResult> first;
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    first.push_back(run_sample(*app, golden, spec, i, gpu, nullptr, Backend::Functional));
  }
  const std::size_t filled = golden.checkpoints->prefixes.size();
  EXPECT_GT(filled, 0u);
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    const SampleResult again =
        run_sample(*app, golden, spec, i, gpu, nullptr, Backend::Functional);
    expect_same_sample(first[i], again, i);
  }
  // Replayed samples hand off at the same boundaries: all hits, no new fills.
  EXPECT_EQ(golden.checkpoints->prefixes.size(), filled);
}

TEST(BackendEdge, FirstLaunchInjectionIsPureTimingDegenerate) {
  // A single-launch app resumes at launch 0 and injects into launch 0: there
  // is no fault-free prefix to fast-forward, the functional plan never
  // activates, and both backends are trivially the same code path.
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  ASSERT_EQ(golden.launches_of(golden.kernel_names().front()).front(), 0u);

  CampaignSpec spec;
  spec.kernel = golden.kernel_names().front();
  spec.target = Target::Svf;
  spec.samples = 15;
  spec.seed = 7;
  sim::Gpu timing_gpu(config());
  sim::Gpu functional_gpu(config());
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    const SampleResult t =
        run_sample(*app, golden, spec, i, timing_gpu, nullptr, Backend::Timing);
    const SampleResult f =
        run_sample(*app, golden, spec, i, functional_gpu, nullptr, Backend::Functional);
    EXPECT_FALSE(functional_gpu.functional_plan_active());
    expect_same_sample(t, f, i);
  }
}

TEST(BackendEdge, RetryWindowBehavesIdentically) {
  // SMEM injection into an app whose kernels declare no shared memory: every
  // resident CTA holds only the 256-byte padding granule, so the injector's
  // allocation scan, per-cycle retries, and eventual flip (or give-up — the
  // un-landed path itself is unit-covered in fi/injector_test.cpp) depend on
  // exact per-cycle residency. The functional prefix skips those cycles
  // wholesale, so this pins the retry machinery to the same absolute-cycle
  // decisions under both backends.
  const auto app = workloads::make_benchmark("bfs");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);

  CampaignSpec spec;
  spec.kernel = golden.kernel_names().back();  // every bfs kernel: .smem 0
  spec.target = Target::SMEM;
  spec.samples = 10;
  spec.seed = 5;
  ASSERT_GT(golden.launches_of(spec.kernel).front(), 0u);
  sim::Gpu timing_gpu(config());
  sim::Gpu functional_gpu(config());
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    const SampleResult t =
        run_sample(*app, golden, spec, i, timing_gpu, nullptr, Backend::Timing);
    const SampleResult f =
        run_sample(*app, golden, spec, i, functional_gpu, nullptr, Backend::Functional);
    expect_same_sample(t, f, i);
  }
}

TEST(BackendEdge, ValidatedHandoffCatchesDivergentMemory) {
  // Corrupt one input word after restoring the checkpoint: the functional
  // prefix then computes against a non-golden image, and a validating
  // handoff must refuse to splice the golden L2 residue onto it.
  const auto app = workloads::make_benchmark("bfs");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);
  const std::string kernel = golden.kernel_names().back();
  const std::size_t resume = golden.launches_of(kernel).front();
  ASSERT_GT(resume, 0u);
  const sim::GpuSnapshot* snap = golden.checkpoints->store.at(resume);
  ASSERT_NE(snap, nullptr);
  const std::size_t handoff = resume + 1;
  ASSERT_LT(handoff, golden.launches.size());
  const sim::BoundaryResidue* residue = golden.checkpoints->residues.at(handoff);
  ASSERT_NE(residue, nullptr);

  sim::Gpu gpu(config());
  gpu.restore(*snap, golden.launches);
  gpu.set_launch_budgets(golden.budgets, golden.overflow_budget);
  sim::FunctionalPlan plan;
  plan.handoff_launch = handoff;
  plan.golden = golden.launches;
  plan.residue = residue;
  plan.validate = true;
  gpu.set_functional_plan(std::move(plan));

  // Flip a bit of the first input buffer (bfs's read-only graph data) in raw
  // memory, below the flushed L2.
  std::uint32_t input_index = 0;
  for (std::size_t b = 0; b < app->buffers().size(); ++b) {
    if (app->buffers()[b].role == workloads::Role::Input) {
      input_index = static_cast<std::uint32_t>(b);
      break;
    }
  }
  const std::uint32_t addr = golden.checkpoints->trace.buffer_addrs.at(input_index);
  std::uint8_t byte = 0;
  gpu.gmem().read(addr, {&byte, 1});
  byte ^= 0x01;
  gpu.gmem().write(addr, {&byte, 1});

  EXPECT_THROW(workloads::replay_app(*app, gpu, golden.checkpoints->trace, resume,
                                     golden.launches),
               std::logic_error);
}

}  // namespace
}  // namespace gras::campaign
