// Campaign engine tests: golden-run bookkeeping, outcome classification,
// reproducibility across thread counts, and statistical plumbing.
#include "src/campaign/campaign.h"

#include <gtest/gtest.h>

#include "src/workloads/workload.h"

namespace gras::campaign {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

TEST(GoldenRun, CapturesLaunchesAndOutputs) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  EXPECT_TRUE(golden.output.completed());
  ASSERT_EQ(golden.launches.size(), 1u);
  EXPECT_EQ(golden.launches[0].kernel, "va_k1");
  EXPECT_EQ(golden.total_cycles, golden.launches[0].end_cycle);
  EXPECT_GT(golden.kernel_gp_instrs("va_k1"), 0u);
  EXPECT_GT(golden.kernel_ld_instrs("va_k1"), 0u);
  EXPECT_EQ(golden.kernel_cycles("nope"), 0u);
}

TEST(OutcomeCounts, PercentagesAndFailureRate) {
  OutcomeCounts c;
  c.masked = 70;
  c.sdc = 20;
  c.timeout = 4;
  c.due = 6;
  EXPECT_DOUBLE_EQ(c.pct(fi::Outcome::Masked), 0.70);
  EXPECT_DOUBLE_EQ(c.pct(fi::Outcome::SDC), 0.20);
  EXPECT_DOUBLE_EQ(c.failure_rate(), 0.30);
  OutcomeCounts d = c;
  d += c;
  EXPECT_EQ(d.total(), 200u);
}

TEST(OutcomeCounts, EmptyIsZero) {
  OutcomeCounts c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.failure_rate(), 0.0);
}

TEST(TargetHelpers, Classification) {
  EXPECT_TRUE(is_microarch(Target::RF));
  EXPECT_TRUE(is_microarch(Target::L2));
  EXPECT_FALSE(is_microarch(Target::Svf));
  EXPECT_FALSE(is_microarch(Target::SvfSrcReuse));
  EXPECT_STREQ(target_name(Target::SvfLd), "SVF-LD");
}

TEST(RunSample, IsDeterministicPerIndex) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = Target::Svf;
  spec.samples = 10;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const SampleResult a = run_sample(*app, config(), golden, spec, i);
    const SampleResult b = run_sample(*app, config(), golden, spec, i);
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
  }
}

TEST(RunCampaign, SameResultForAnyThreadCount) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = Target::RF;
  spec.samples = 40;
  ThreadPool one(1), four(4);
  const CampaignResult a = run_campaign(*app, config(), golden, spec, one);
  const CampaignResult b = run_campaign(*app, config(), golden, spec, four);
  EXPECT_EQ(a.counts.masked, b.counts.masked);
  EXPECT_EQ(a.counts.sdc, b.counts.sdc);
  EXPECT_EQ(a.counts.timeout, b.counts.timeout);
  EXPECT_EQ(a.counts.due, b.counts.due);
  EXPECT_EQ(a.control_path_masked, b.control_path_masked);
}

TEST(RunCampaign, SvfInjectionsMostlyLand) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = Target::Svf;
  spec.samples = 30;
  ThreadPool pool(2);
  const CampaignResult r = run_campaign(*app, config(), golden, spec, pool);
  EXPECT_EQ(r.counts.total(), 30u);
  EXPECT_EQ(r.injected, 30u);  // software faults always land
  // VA's SVF is high: destination flips overwhelmingly corrupt the output.
  EXPECT_GT(r.counts.failure_rate(), 0.5);
}

TEST(RunCampaign, UnknownKernelYieldsAllMasked) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  CampaignSpec spec;
  spec.kernel = "missing";
  spec.target = Target::RF;
  spec.samples = 5;
  ThreadPool pool(1);
  const CampaignResult r = run_campaign(*app, config(), golden, spec, pool);
  EXPECT_EQ(r.counts.masked, 5u);
  EXPECT_EQ(r.injected, 0u);
}

TEST(RunCampaign, FrCiUsesWilson) {
  CampaignResult r;
  r.counts.masked = 80;
  r.counts.sdc = 20;
  const ProportionCi ci = r.fr_ci(0.99);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.2);
  EXPECT_GT(ci.margin(), 0.0);
  const ProportionCi wilson = wilson_interval(20, 100, 0.99);
  EXPECT_DOUBLE_EQ(ci.lower, wilson.lower);
  EXPECT_DOUBLE_EQ(ci.upper, wilson.upper);
}

TEST(RunCampaign, FrCiStaysInformativeAtZeroFailures) {
  // Wald collapses to zero width at 0 failures; Wilson must not, or
  // margin-driven early stop would fire after the first chunk of an
  // all-masked campaign.
  CampaignResult r;
  r.counts.masked = 100;
  const ProportionCi ci = r.fr_ci(0.99);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.0);
  EXPECT_GT(ci.margin(), 0.01);
}

TEST(TargetHelpers, TargetFromNameRoundTrips) {
  for (Target t : kAllTargets) {
    const auto parsed = target_from_name(target_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(target_from_name("BOGUS").has_value());
}

TEST(KernelSweep, RunsEveryTarget) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config());
  ThreadPool pool(2);
  const Target targets[] = {Target::RF, Target::Svf};
  const KernelCampaigns result =
      run_kernel_sweep(*app, config(), golden, "va_k1", targets, 10, 1, pool);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.at(Target::RF).counts.total(), 10u);
  EXPECT_EQ(result.at(Target::Svf).counts.total(), 10u);
}

TEST(Classification, TimeoutOnWatchdogTrap) {
  // bfs's host loop marks a timeout when the flag never clears; verify the
  // sample classifier maps Watchdog to Timeout by synthesizing one:
  // a golden run with tiny budgets forces faulty runs into Watchdog.
  const auto app = workloads::make_benchmark("va");
  GoldenRun golden = run_golden(*app, config());
  golden.budgets.assign(golden.budgets.size(), 10);  // impossible budget
  golden.overflow_budget = 10;
  CampaignSpec spec;
  spec.kernel = "va_k1";
  spec.target = Target::RF;
  const SampleResult s = run_sample(*app, config(), golden, spec, 0);
  EXPECT_EQ(s.outcome, fi::Outcome::Timeout);
}

}  // namespace
}  // namespace gras::campaign
