// Batched lock-step execution A/B equivalence (DESIGN.md §12): for every
// target level, run_batched must be invisible in every campaign observable.
// Each lane's outcome, cycle count, injected flag, fault-provenance record,
// and SDC corruption signature must match an unbatched run_sample bit for
// bit — across microarch (cycle-triggered) and SVF (instruction-index-
// triggered) targets, multi-launch apps whose samples split into several
// batch groups, and the fallback edges (no checkpoints, singleton batches).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/sim/gpu.h"
#include "src/workloads/workload.h"

namespace gras::campaign {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

void expect_same_sample(const SampleResult& a, const SampleResult& b,
                        std::uint64_t index) {
  EXPECT_EQ(a.outcome, b.outcome) << index;
  EXPECT_EQ(a.cycles, b.cycles) << index;
  EXPECT_EQ(a.injected, b.injected) << index;
  EXPECT_EQ(a.fault.level, b.fault.level) << index;
  EXPECT_EQ(a.fault.structure, b.fault.structure) << index;
  EXPECT_EQ(a.fault.mode, b.fault.mode) << index;
  EXPECT_EQ(a.fault.sm, b.fault.sm) << index;
  EXPECT_EQ(a.fault.site, b.fault.site) << index;
  EXPECT_EQ(a.fault.bit, b.fault.bit) << index;
  EXPECT_EQ(a.fault.width, b.fault.width) << index;
  EXPECT_EQ(a.fault.trigger, b.fault.trigger) << index;
  EXPECT_EQ(a.fault.launch, b.fault.launch) << index;
  EXPECT_EQ(a.signature.words_mismatched, b.signature.words_mismatched) << index;
  EXPECT_EQ(a.signature.first_word, b.signature.first_word) << index;
  EXPECT_EQ(a.signature.last_word, b.signature.last_word) << index;
  EXPECT_EQ(a.signature.bit_flips, b.signature.bit_flips) << index;
}

struct BatchCase {
  const char* app;
  const char* kernel;  ///< nullptr = last kernel
  Target target;
  std::uint64_t samples;
  Backend backend;
};

class BatchEquivalence : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalence, BitIdenticalToUnbatched) {
  const BatchCase& c = GetParam();
  const auto app = workloads::make_benchmark(c.app);
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);

  CampaignSpec spec;
  spec.kernel = c.kernel != nullptr ? c.kernel : golden.kernel_names().back();
  spec.target = c.target;
  spec.samples = c.samples;
  spec.seed = 99;

  sim::Gpu single_gpu(config());
  std::vector<SampleResult> unbatched;
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    unbatched.push_back(run_sample(*app, golden, spec, i, single_gpu, nullptr, c.backend));
    indices.push_back(i);
  }

  sim::Gpu batch_gpu(config());
  const std::vector<SampleResult> batched =
      run_batched(*app, golden, spec, indices, batch_gpu, c.backend);
  ASSERT_EQ(batched.size(), unbatched.size());
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    expect_same_sample(unbatched[i], batched[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, BatchEquivalence,
    ::testing::Values(
        // Single-launch app: all lanes share one batch group.
        BatchCase{"va", nullptr, Target::RF, 24, Backend::Timing},
        BatchCase{"va", nullptr, Target::Svf, 24, Backend::Timing},
        BatchCase{"va", nullptr, Target::SvfLd, 16, Backend::Timing},
        BatchCase{"va", nullptr, Target::SvfSrcReuse, 16, Backend::Timing},
        BatchCase{"va", nullptr, Target::L2, 12, Backend::Timing},
        // Multi-launch app: lanes split into per-launch groups, some of them
        // singletons (fallback), with real fault-free prefixes to share.
        BatchCase{"srad_v1", "srad1_srad2", Target::RF, 12, Backend::Timing},
        BatchCase{"srad_v1", "srad1_srad2", Target::Svf, 12, Backend::Timing},
        // Functional prefix + batched suffix compose (prefix cache included).
        BatchCase{"srad_v1", "srad1_srad2", Target::Svf, 12, Backend::Functional},
        BatchCase{"bfs", "bfs_k1", Target::Svf, 12, Backend::Timing}),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      std::string name = std::string(info.param.app);
      if (info.param.kernel != nullptr) name += std::string("_") + info.param.kernel;
      name += std::string("_") + target_name(info.param.target);
      name += info.param.backend == Backend::Functional ? "_func" : "_timing";
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(BatchEdge, NoCheckpointsFallsBackToSingles) {
  // Without launch-boundary checkpoints there is no shared prefix to fork
  // from; run_batched must transparently degrade to per-sample execution.
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::Off);
  ASSERT_EQ(golden.checkpoints, nullptr);

  CampaignSpec spec;
  spec.kernel = golden.kernel_names().front();
  spec.target = Target::Svf;
  spec.samples = 6;
  spec.seed = 7;

  sim::Gpu single_gpu(config());
  sim::Gpu batch_gpu(config());
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < spec.samples; ++i) indices.push_back(i);
  const auto batched =
      run_batched(*app, golden, spec, indices, batch_gpu, Backend::Timing);
  for (std::uint64_t i = 0; i < spec.samples; ++i) {
    const SampleResult u =
        run_sample(*app, golden, spec, i, single_gpu, nullptr, Backend::Timing);
    expect_same_sample(u, batched[i], i);
  }
}

TEST(BatchEdge, SingletonAndEmptyBatches) {
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);

  CampaignSpec spec;
  spec.kernel = golden.kernel_names().front();
  spec.target = Target::RF;
  spec.samples = 4;
  spec.seed = 3;

  sim::Gpu gpu(config());
  const std::vector<std::uint64_t> empty;
  EXPECT_TRUE(run_batched(*app, golden, spec, empty, gpu).empty());

  const std::vector<std::uint64_t> one{2};
  const auto single = run_batched(*app, golden, spec, one, gpu);
  ASSERT_EQ(single.size(), 1u);
  sim::Gpu reference_gpu(config());
  const SampleResult u = run_sample(*app, golden, spec, 2, reference_gpu);
  expect_same_sample(u, single[0], 2);
}

TEST(BatchEdge, NonContiguousIndicesKeepInputOrder) {
  // The orchestrator hands run_batched arbitrary (resume-surviving) index
  // sets; results must come back in input order, not trigger order.
  const auto app = workloads::make_benchmark("va");
  const GoldenRun golden = run_golden(*app, config(), Checkpointing::On);

  CampaignSpec spec;
  spec.kernel = golden.kernel_names().front();
  spec.target = Target::Svf;
  spec.samples = 40;
  spec.seed = 11;

  const std::vector<std::uint64_t> indices{31, 4, 17, 25, 0, 9};
  sim::Gpu batch_gpu(config());
  const auto batched = run_batched(*app, golden, spec, indices, batch_gpu);
  ASSERT_EQ(batched.size(), indices.size());
  sim::Gpu single_gpu(config());
  for (std::size_t p = 0; p < indices.size(); ++p) {
    const SampleResult u = run_sample(*app, golden, spec, indices[p], single_gpu);
    expect_same_sample(u, batched[p], indices[p]);
  }
}

}  // namespace
}  // namespace gras::campaign
