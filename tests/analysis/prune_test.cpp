// Fault-site equivalence classing tests on a hand-checked mini-kernel: one
// warp, straight-line code, one provably dead write. Site enumeration is
// program order here (single warp, in-order retire), so every site ordinal
// below is known by inspection.
#include "src/analysis/prune.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/workloads/app_base.h"

namespace gras::analysis {
namespace {

// One launch, one block of 32 threads (a single warp), no divergence.
// GPR-writing instructions, in program order:
//   pc 0  S2R R0  <- tid       sites   0..31   live (read by IADD + ISCADD)
//   pc 1  MOV R1, 7            sites  32..63   DEAD (overwritten at pc 2)
//   pc 2  MOV R1, 5            sites  64..95   live (read by IADD)
//   pc 3  IADD R2, R0, R1      sites  96..127  live (stored)
//   pc 4  ISCADD R3, ...       sites 128..159  live (store address)
// STG and EXIT write no GPR, so total_sites = 5 * 32 = 160, dead = 32.
constexpr char kMiniAsm[] = R"(
.kernel mini_k1
.param out ptr
    S2R R0, SR_TID.X
    MOV R1, 7
    MOV R1, 5
    IADD R2, R0, R1
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)";

class MiniApp final : public workloads::BenchApp {
 public:
  MiniApp() : BenchApp("prune_mini") {
    add_kernels(kMiniAsm);
    add_buffer("out", 32 * 4, workloads::Role::Output);
  }
  void execute(workloads::ExecCtx& ctx) const override {
    ctx.launch(kernel("mini_k1"), {1, 1, 1}, {32, 1, 1}, {ctx.addr("out")});
  }
};

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

campaign::CampaignSpec mini_spec() {
  campaign::CampaignSpec spec;
  spec.kernel = "mini_k1";
  spec.target = campaign::Target::Svf;
  spec.samples = 32;
  spec.seed = 7;
  return spec;
}

TEST(ProfileSites, ObservesEverySiteOfTheGoldenEnumeration) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  const auto spec = mini_spec();
  ASSERT_EQ(campaign::site_count(golden, spec), 160u);
  const SiteProfile profile = profile_sites(app, config(), golden, spec);
  EXPECT_EQ(profile.total_sites, 160u);
  EXPECT_EQ(profile.observed_sites(), 160u);
}

TEST(ProfileSites, DeadWriteHasNoReadersLiveWritesDo) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  const SiteProfile profile = profile_sites(app, config(), golden, mini_spec());
  for (std::uint64_t s = 32; s < 64; ++s) {
    EXPECT_EQ(profile.sites[s].readers, 0u) << "site " << s;
  }
  for (std::uint64_t s = 0; s < 32; ++s) {
    EXPECT_EQ(profile.sites[s].readers, 2u) << "site " << s;  // IADD + ISCADD
  }
  for (std::uint64_t s = 64; s < 160; ++s) {
    EXPECT_GE(profile.sites[s].readers, 1u) << "site " << s;
  }
}

TEST(ProfileSites, RejectsNonPrunableTargets) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  auto spec = mini_spec();
  spec.target = campaign::Target::RF;
  EXPECT_THROW(profile_sites(app, config(), golden, spec), std::invalid_argument);
}

TEST(ClassifySites, PopulationsPartitionTheFullFaultSpace) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  const auto spec = mini_spec();
  const campaign::PruneClassing classing =
      build_prune_classing(app, config(), golden, spec);

  // The invariant the estimator rests on: class populations plus the derated
  // dead sites account for the brute-force enumeration exactly once.
  EXPECT_TRUE(classing.partitions());
  EXPECT_EQ(classing.total_sites, campaign::site_count(golden, spec));
  const std::uint64_t pop_sum = std::accumulate(
      classing.class_population.begin(), classing.class_population.end(),
      std::uint64_t{0});
  EXPECT_EQ(pop_sum + classing.dead_sites(), classing.total_sites);
  EXPECT_EQ(classing.dead_sites(), 32u);
  EXPECT_EQ(classing.live_sites(), 128u);

  // Exactly the pc-1 sites are derated.
  for (std::uint64_t s = 0; s < 160; ++s) {
    const bool dead = s >= 32 && s < 64;
    EXPECT_EQ(classing.class_of_site[s] == campaign::PruneClassing::kDeadClass, dead)
        << "site " << s;
  }

  // S2R splits on the value bucket (lane 0 writes tid 0, the zero bucket;
  // lanes 1..31 write narrow values), the other live writes land in one
  // class per pc each — the structural-symmetry collapse across lanes.
  std::vector<std::uint64_t> pops = classing.class_population;
  std::sort(pops.begin(), pops.end());
  EXPECT_GE(classing.class_population.size(), 4u);
  EXPECT_LE(classing.class_population.size(), 6u);
  EXPECT_EQ(pops.front(), 1u);   // the tid-0 S2R site
  EXPECT_EQ(pops.back(), 32u);   // a full-warp class
}

TEST(ClassifySites, LanesOfOneInstructionShareAClass) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  const campaign::PruneClassing classing =
      build_prune_classing(app, config(), golden, mini_spec());
  // MOV R1, 5 writes the same value in every lane: sites 64..95 are one class.
  const std::uint32_t c = classing.class_of_site[64];
  ASSERT_NE(c, campaign::PruneClassing::kDeadClass);
  for (std::uint64_t s = 64; s < 96; ++s) {
    EXPECT_EQ(classing.class_of_site[s], c) << "site " << s;
  }
  EXPECT_EQ(classing.class_population[c], 32u);
}

TEST(ClassifySites, DeterministicAcrossRuns) {
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  const auto a = build_prune_classing(app, config(), golden, mini_spec());
  const auto b = build_prune_classing(app, config(), golden, mini_spec());
  EXPECT_EQ(a.class_of_site, b.class_of_site);
  EXPECT_EQ(a.class_population, b.class_population);
}

TEST(ClassifySites, SvfLdSpaceClassesOnlyLoads) {
  // The mini kernel has no loads; the SVF-LD site space is empty and the
  // classing degenerates cleanly instead of mixing in non-load writes.
  const MiniApp app;
  const auto golden = campaign::run_golden(app, config());
  auto spec = mini_spec();
  spec.target = campaign::Target::SvfLd;
  ASSERT_EQ(campaign::site_count(golden, spec), 0u);
  const campaign::PruneClassing classing =
      build_prune_classing(app, config(), golden, spec);
  EXPECT_EQ(classing.total_sites, 0u);
  EXPECT_TRUE(classing.class_population.empty());
  EXPECT_TRUE(classing.partitions());
}

}  // namespace
}  // namespace gras::analysis
