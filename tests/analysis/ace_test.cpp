// ACE liveness profiler tests.
#include "src/analysis/ace.h"

#include <gtest/gtest.h>

#include "src/workloads/workload.h"
#include "tests/testing/sim_helpers.h"

namespace gras::analysis {
namespace {

using testing::KernelRunner;

TEST(AceProfiler, CountsWriteToLastReadIntervals) {
  // One thread: R1 written, read twice, rewritten, never read again.
  KernelRunner runner(R"(
.kernel t
.param out ptr
    MOV R1, 5            // write at cycle W
    NOP
    IADD R2, R1, RZ      // read
    NOP
    IADD R3, R1, R2      // last read of the first lifetime
    MOV R1, 9            // rewrite: closes the interval
    MOV R4, c[out]
    STG [R4], R3
    EXIT
)");
  AceProfiler profiler(runner.gpu().config());
  runner.gpu().set_fault_hook(&profiler);
  const auto out = runner.alloc(std::vector<std::uint32_t>(1, 0));
  ASSERT_TRUE(runner.launch({1, 1, 1}, {1, 1, 1}, {out}).ok());
  profiler.finalize();
  // Lifetimes with reads: R1 (MOV..IADD#2), R2 (IADD..IADD), R3 (IADD..STG),
  // R4 (MOV..STG). R1's second lifetime has no read.
  EXPECT_EQ(profiler.intervals(), 4u);
  EXPECT_GT(profiler.ace_bit_cycles(), 0u);
}

TEST(AceProfiler, NeverReadRegistersContributeNothing) {
  KernelRunner runner(R"(
.kernel t
    MOV R1, 5
    MOV R2, 6
    EXIT
)");
  AceProfiler profiler(runner.gpu().config());
  runner.gpu().set_fault_hook(&profiler);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {1, 1, 1}, {}).ok());
  profiler.finalize();
  EXPECT_EQ(profiler.ace_bit_cycles(), 0u);
  EXPECT_EQ(profiler.intervals(), 0u);
}

TEST(AceProfiler, AvfIsAProbability) {
  const auto app = workloads::make_benchmark("scp");
  sim::GpuConfig config = sim::make_config("gv100-scaled");
  AceProfiler profiler(config);
  sim::Gpu gpu(config);
  gpu.set_fault_hook(&profiler);
  const auto out = workloads::run_app(*app, gpu);
  ASSERT_TRUE(out.completed());
  profiler.finalize();
  const double avf = profiler.avf_rf(gpu.cycle());
  EXPECT_GT(avf, 0.0);
  EXPECT_LT(avf, 1.0);
}

TEST(AceProfiler, ProfilingDoesNotPerturbExecution) {
  const auto app = workloads::make_benchmark("va");
  sim::GpuConfig config = sim::make_config("gv100-scaled");
  sim::Gpu plain(config);
  const auto golden = workloads::run_app(*app, plain);

  AceProfiler profiler(config);
  sim::Gpu profiled(config);
  profiled.set_fault_hook(&profiler);
  const auto observed = workloads::run_app(*app, profiled);
  EXPECT_EQ(golden, observed);
  EXPECT_EQ(plain.cycle(), profiled.cycle());
}

TEST(AceProfiler, FinalizeIsIdempotent) {
  sim::GpuConfig config = sim::make_config("gv100-scaled");
  AceProfiler profiler(config);
  profiler.finalize();
  const auto first = profiler.ace_bit_cycles();
  profiler.finalize();
  EXPECT_EQ(profiler.ace_bit_cycles(), first);
}

}  // namespace
}  // namespace gras::analysis
