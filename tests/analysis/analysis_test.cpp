// Analysis tests: trend-pair counting (Table I methodology), utilization
// profiles (Fig. 3 metrics) and the register-reuse analyzer (Fig. 12).
#include "src/analysis/analysis.h"

#include <gtest/gtest.h>

#include "src/assembler/assembler.h"
#include "src/workloads/workload.h"

namespace gras::analysis {
namespace {

TEST(TrendCounts, ConsistentAndOpposite) {
  // a ranks: x < y < z ; b ranks: x < z < y -> pair (y,z) flips.
  const std::vector<TrendPoint> points = {
      {"x", 1.0, 1.0}, {"y", 2.0, 3.0}, {"z", 3.0, 2.0}};
  const TrendCounts c = count_trends(points);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.consistent, 2u);
  EXPECT_EQ(c.opposite, 1u);
  EXPECT_NEAR(c.opposite_share(), 1.0 / 3.0, 1e-12);
}

TEST(TrendCounts, TiesCountAsConsistent) {
  const std::vector<TrendPoint> points = {{"a", 1.0, 5.0}, {"b", 1.0, 2.0}};
  const TrendCounts c = count_trends(points);
  EXPECT_EQ(c.consistent, 1u);
  EXPECT_EQ(c.opposite, 0u);
}

TEST(TrendCounts, PairCountMatchesPaperArithmetic) {
  // 11 applications -> 55 pairs (paper Table I row 1: 32 + 23);
  // 23 kernels -> 253 pairs (row 2: 144 + 109).
  std::vector<TrendPoint> apps(11), kernels(23);
  for (std::size_t i = 0; i < apps.size(); ++i) apps[i] = {"", double(i), double(i)};
  for (std::size_t i = 0; i < kernels.size(); ++i) kernels[i] = {"", double(i), double(i)};
  EXPECT_EQ(count_trends(apps).total(), 55u);
  EXPECT_EQ(count_trends(kernels).total(), 253u);
}

TEST(TrendCounts, EmptyAndSingle) {
  EXPECT_EQ(count_trends({}).total(), 0u);
  EXPECT_EQ(count_trends({{"a", 1, 2}}).total(), 0u);
}

TEST(NormalizePair, SumsToOne) {
  const auto out = normalize_pair({2.0, 0.0, 5.0}, {6.0, 0.0, 5.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].first, 0.25);
  EXPECT_DOUBLE_EQ(out[0].second, 0.75);
  EXPECT_DOUBLE_EQ(out[1].first, 0.5);  // 0/0 -> 50/50
  EXPECT_DOUBLE_EQ(out[2].first, 0.5);
}

TEST(UtilizationProfile, MetricNamesMatchValues) {
  UtilizationProfile p;
  EXPECT_EQ(UtilizationProfile::metric_names().size(), p.values().size());
}

TEST(UtilizationProfile, VaProfileIsPlausible) {
  const auto app = workloads::make_benchmark("va");
  const auto config = sim::make_config("gv100-scaled");
  const auto golden = campaign::run_golden(*app, config);
  const UtilizationProfile p = profile_kernel(golden, "va_k1", config);
  EXPECT_GT(p.occupancy, 0.0);
  EXPECT_LE(p.occupancy, 1.0);
  EXPECT_GT(p.rf_derating, 0.0);
  EXPECT_DOUBLE_EQ(p.smem_derating, 0.0);
  // 4096 threads x 2 loads, coalesced into 128-byte lines: 256 accesses.
  EXPECT_EQ(p.load_instructions, 4096.0 / 32 * 2);
  EXPECT_EQ(p.store_instructions, 4096.0 / 32);
  EXPECT_GT(p.l1d_accesses, 0.0);
  EXPECT_GT(p.l2_accesses, 0.0);
  EXPECT_GT(p.memory_read, 0.0);
  EXPECT_DOUBLE_EQ(p.smem_instructions, 0.0);
}

TEST(UtilizationProfile, ScpUsesSharedAndTexture) {
  const auto app = workloads::make_benchmark("scp");
  const auto config = sim::make_config("gv100-scaled");
  const auto golden = campaign::run_golden(*app, config);
  const UtilizationProfile p = profile_kernel(golden, "scp_k1", config);
  EXPECT_GT(p.smem_instructions, 0.0);
  EXPECT_GT(p.smem_derating, 0.0);
}

// --- Register-reuse analyzer (paper Fig. 12) ---

// The paper's example: a fault in R0 written by #4 (0-based index 3) must
// affect the readers at #5 and #7 until R0 is rewritten.
constexpr char kFig12[] = R"(
.kernel fig12
.param c14c u32
.param c140 u32
.param c144 u32
.param c148 u32
    S2R R0, SR_CTAID.X
    S2R R3, SR_TID.X
    IMAD R4, R0, c[c14c], R3
    ISCADD R3, R4, c[c140], 2
    ISCADD R2, R4, c[c144], 2
    LDG R3, [R3]
    ISCADD R0, R4, c[c148], 2
    LDG R2, [R2]
    FADD R3, R0, R2
    STG [R0], R3
    EXIT
)";

TEST(ReuseAnalyzer, ReplicatesTheFig12Example) {
  const auto k = assembler::assemble_kernel(kFig12);
  // Fault in R4, destination of instruction #3 (IMAD, index 2):
  // read by #4 (index 3), #5 (index 4) and #7 (index 6).
  const ReuseSite site = analyze_reuse(k, 2, 4);
  EXPECT_EQ(site.affected, (std::vector<std::size_t>{3, 4, 6}));
}

TEST(ReuseAnalyzer, StopsAtRewrite) {
  const auto k = assembler::assemble_kernel(kFig12);
  // R3 written at index 1 (S2R R3) is read at index 2 (IMAD) and then
  // rewritten at index 3 (ISCADD R3, ...): nothing beyond.
  const ReuseSite site = analyze_reuse(k, 1, 3);
  EXPECT_EQ(site.affected, (std::vector<std::size_t>{2}));
}

TEST(ReuseAnalyzer, RegisterNeverReadAgain) {
  const auto k = assembler::assemble_kernel(R"(
.kernel t
    MOV R0, 1
    MOV R1, 2
    EXIT
)");
  EXPECT_TRUE(analyze_reuse(k, 0, 0).affected.empty());
}

TEST(ReuseAnalyzer, AverageReuseIsPositiveForRealKernels) {
  const auto k = assembler::assemble_kernel(kFig12);
  EXPECT_GT(average_reuse(k), 0.5);
}

TEST(ReuseAnalyzer, ListingMarksOriginAndReaders) {
  const auto k = assembler::assemble_kernel(kFig12);
  const ReuseSite site = analyze_reuse(k, 2, 4);
  const std::string listing = reuse_listing(k, site);
  EXPECT_NE(listing.find("<< #3"), std::string::npos);
  EXPECT_NE(listing.find(" * #4"), std::string::npos);
  EXPECT_NE(listing.find(" * #7"), std::string::npos);
}

TEST(ControlPath, MaskedRunsWithChangedCyclesAreCounted) {
  // A fault that perturbs timing but not output: campaign records it.
  // Covered end-to-end in campaign tests; here check the plumbing exists.
  campaign::CampaignResult r;
  r.control_path_masked = 3;
  r.counts.masked = 10;
  EXPECT_LE(r.control_path_masked, r.counts.masked);
}

}  // namespace
}  // namespace gras::analysis
