// SDC anatomy aggregation checked against hand-computed signatures, shard
// grouping by campaign fingerprint, and v1-journal degradation.
#include "src/analysis/anatomy.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "src/orchestrator/journal.h"

namespace gras::analysis {
namespace {

orchestrator::JournalHeader header(std::uint32_t shard_index = 0,
                                   std::uint32_t shard_count = 1) {
  orchestrator::JournalHeader h;
  h.app = "va";
  h.kernel = "va_k1";
  h.config = "gv100-scaled";
  h.target = "RF";
  h.samples = 100;
  h.seed = 7;
  h.shard_index = shard_index;
  h.shard_count = shard_count;
  return h;
}

orchestrator::JournalRecord masked(std::uint64_t index) {
  orchestrator::JournalRecord r;
  r.index = index;
  r.cycles = 100;
  r.outcome = fi::Outcome::Masked;
  return r;
}

/// An SDC record with provenance set; the signature is left for the test to
/// fill so every aggregate stays hand-computed.
orchestrator::JournalRecord sdc(std::uint64_t index, std::uint32_t sm,
                                std::uint32_t launch, std::uint8_t fault_bit) {
  orchestrator::JournalRecord r;
  r.index = index;
  r.cycles = 100;
  r.outcome = fi::Outcome::SDC;
  r.injected = true;
  r.fault.level = fi::FaultLevel::Microarch;
  r.fault.structure = fi::Structure::RF;
  r.fault.sm = sm;
  r.fault.launch = launch;
  r.fault.bit = fault_bit;
  r.has_signature = true;
  r.signature.words_total = 1024;
  return r;
}

TEST(Anatomy, AggregatesHandComputedSignatures) {
  orchestrator::JournalContents j;
  j.header = header();
  j.version = orchestrator::kJournalVersion;
  // SDC a: one word, one bit (bit 3), extent 1.
  auto a = sdc(0, 0, 0, 3);
  a.signature.words_mismatched = 1;
  a.signature.buffers_affected = 1;
  a.signature.first_word = 10;
  a.signature.last_word = 10;
  a.signature.bit_flips[3] = 1;
  a.signature.max_rel_error = 0.5;
  // SDC b: 4 words across 2 buffers, 6 bits, extent 5..95 = 91.
  auto b = sdc(1, 2, 1, 17);
  b.signature.words_mismatched = 4;
  b.signature.buffers_affected = 2;
  b.signature.first_word = 5;
  b.signature.last_word = 95;
  b.signature.bit_flips[3] = 2;
  b.signature.bit_flips[31] = 4;
  b.signature.max_rel_error = 0.125;
  // SDC c: a single word but two flipped bits — single-word, not single-bit.
  auto c = sdc(2, 0, 0, 3);
  c.signature.words_mismatched = 1;
  c.signature.buffers_affected = 1;
  c.signature.first_word = 0;
  c.signature.last_word = 0;
  c.signature.bit_flips[0] = 2;
  j.records = {masked(3), a, masked(4), b, c, masked(5)};

  std::vector<SdcAnatomy> rows;
  accumulate_anatomy(j, rows);
  ASSERT_EQ(rows.size(), 1u);
  const SdcAnatomy& r = rows[0];
  EXPECT_EQ(r.journal_version, orchestrator::kJournalVersion);
  EXPECT_EQ(r.samples, 6u);
  EXPECT_EQ(r.sdc, 3u);
  EXPECT_EQ(r.with_signature, 3u);
  EXPECT_EQ(r.single_word, 2u);
  EXPECT_EQ(r.single_bit, 1u);
  EXPECT_EQ(r.words_mismatched_sum, 6u);
  EXPECT_EQ(r.words_mismatched_max, 4u);
  EXPECT_EQ(r.extent_sum, 93u);  // 1 + 91 + 1
  EXPECT_EQ(r.extent_max, 91u);
  EXPECT_EQ(r.multi_buffer, 1u);
  EXPECT_DOUBLE_EQ(r.max_rel_error, 0.5);
  EXPECT_EQ(r.bit_flips[0], 2u);
  EXPECT_EQ(r.bit_flips[3], 3u);
  EXPECT_EQ(r.bit_flips[31], 4u);
  EXPECT_DOUBLE_EQ(r.mean_words_mismatched(), 2.0);
  EXPECT_DOUBLE_EQ(r.mean_extent(), 31.0);
  EXPECT_EQ(r.sdc_by_sm.at(0), 2u);
  EXPECT_EQ(r.sdc_by_sm.at(2), 1u);
  EXPECT_EQ(r.sdc_by_launch.at(0), 2u);
  EXPECT_EQ(r.sdc_by_launch.at(1), 1u);
  EXPECT_EQ(r.sdc_by_fault_bit.at(3), 2u);
  EXPECT_EQ(r.sdc_by_fault_bit.at(17), 1u);

  const std::string text = render_anatomy(r);
  EXPECT_NE(text.find("va / va_k1 / RF @ gv100-scaled"), std::string::npos) << text;
  EXPECT_NE(text.find("single-word 2"), std::string::npos) << text;
  EXPECT_NE(text.find("single-bit 1"), std::string::npos) << text;
  EXPECT_NE(text.find("SDCs by SM:"), std::string::npos) << text;
}

TEST(Anatomy, SiblingShardsMergeIntoOneRow) {
  // Shards of one campaign share a fingerprint (shard position excluded) and
  // must fold into a single anatomy row; a different kernel starts a new one.
  orchestrator::JournalContents s0, s1, other;
  s0.header = header(0, 2);
  s1.header = header(1, 2);
  auto a = sdc(2, 1, 0, 5);
  a.signature.words_mismatched = 1;
  a.signature.buffers_affected = 1;
  a.signature.bit_flips[5] = 1;
  s0.records = {masked(0), a};
  s1.records = {masked(1)};
  other.header = header();
  other.header.kernel = "va_k2";
  other.records = {masked(0)};

  std::vector<SdcAnatomy> rows;
  accumulate_anatomy(s0, rows);
  accumulate_anatomy(s1, rows);
  accumulate_anatomy(other, rows);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].samples, 3u);
  EXPECT_EQ(rows[0].sdc, 1u);
  EXPECT_EQ(rows[1].samples, 1u);
  EXPECT_EQ(rows[1].header.kernel, "va_k2");
}

TEST(Anatomy, V1JournalsReportOutcomesOnly) {
  orchestrator::JournalContents j;
  j.header = header();
  j.version = 1;
  auto r = masked(0);
  r.outcome = fi::Outcome::SDC;  // v1 SDCs carry no signature
  j.records = {r, masked(1)};
  std::vector<SdcAnatomy> rows;
  accumulate_anatomy(j, rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].journal_version, 1u);
  EXPECT_EQ(rows[0].sdc, 1u);
  EXPECT_EQ(rows[0].with_signature, 0u);
  const std::string text = render_anatomy(rows[0]);
  EXPECT_NE(text.find("v1 journal"), std::string::npos) << text;
}

TEST(Anatomy, ReadsJournalsFromDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "gras_anatomy_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "one.jrnl";
  {
    auto writer = orchestrator::JournalWriter::open_fresh(path, header());
    ASSERT_NE(writer, nullptr);
    auto a = sdc(0, 1, 0, 9);
    a.signature.words_mismatched = 2;
    a.signature.buffers_affected = 1;
    a.signature.first_word = 4;
    a.signature.last_word = 6;
    a.signature.bit_flips[9] = 2;
    writer->append(masked(1));
    writer->append(a);
    writer->sync();
  }
  const auto rows = anatomy_from_journals({path});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].samples, 2u);
  EXPECT_EQ(rows[0].sdc, 1u);
  EXPECT_EQ(rows[0].extent_max, 3u);
  EXPECT_EQ(rows[0].bit_flips[9], 2u);

  EXPECT_THROW(anatomy_from_journals({dir / "missing.jrnl"}), std::runtime_error);
}

}  // namespace
}  // namespace gras::analysis
