// FaultRecord provenance and injector edge paths: width clipping at word and
// byte boundaries, permanent give-up, window-end boundary, retry trigger
// re-arming, and provenance field conventions per structure.
#include <bit>

#include <gtest/gtest.h>

#include "src/fi/injectors.h"
#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

TEST(MicroarchProvenance, RfWidthClipsAtWordBoundary) {
  // Multi-bit RF flips must stay inside the sampled 32-bit word: a width-8
  // fault starting at bit b flips exactly min(8, 32-b) contiguous bits, and
  // the record reports the clipped count. Property-checked over seeds so
  // both the clipped (b > 24) and unclipped cases are exercised.
  bool saw_clipped = false, saw_full = false;
  for (int seed = 0; seed < 200; ++seed) {
    sim::Gpu gpu(testing::test_config());
    sim::RegFile& rf = gpu.sm(0).regfile();
    const auto base = rf.allocate(4);
    ASSERT_TRUE(base);
    fi::MicroarchInjector inj(fi::Structure::RF, 1, 10, Rng(seed), /*width=*/8);
    inj.on_cycle(gpu, 1);
    ASSERT_TRUE(inj.injected());
    const fi::FaultRecord& r = inj.record();
    EXPECT_EQ(r.level, fi::FaultLevel::Microarch);
    EXPECT_EQ(r.structure, fi::Structure::RF);
    EXPECT_EQ(r.sm, 0u);
    EXPECT_GE(r.site, *base);
    EXPECT_LT(r.site, *base + 4);
    const unsigned expect_width = std::min<unsigned>(8, 32 - r.bit);
    EXPECT_EQ(r.width, expect_width);
    // The cell was zero, so its value is exactly the contiguous flip mask.
    const std::uint32_t mask =
        (expect_width == 32 ? ~0u : ((1u << expect_width) - 1u)) << r.bit;
    EXPECT_EQ(rf.read(static_cast<std::uint32_t>(r.site)), mask) << "seed " << seed;
    if (r.bit > 24) saw_clipped = true;
    if (r.bit <= 24) saw_full = true;
  }
  EXPECT_TRUE(saw_clipped);
  EXPECT_TRUE(saw_full);
}

TEST(MicroarchProvenance, SmemWidthClipsAtByteBoundary) {
  // SMEM faults are byte-granular: a width-16 fault never crosses the
  // sampled byte, so at most 8 bits flip (min(16, 8-b) from bit b).
  bool saw_clipped = false;
  for (int seed = 0; seed < 100; ++seed) {
    sim::Gpu gpu(testing::test_config());
    sim::SharedMem& smem = gpu.sm(1).shared_mem();
    const auto base = smem.allocate(64);
    ASSERT_TRUE(base);
    fi::MicroarchInjector inj(fi::Structure::SMEM, 1, 10, Rng(seed), /*width=*/16);
    inj.on_cycle(gpu, 1);
    ASSERT_TRUE(inj.injected());
    const fi::FaultRecord& r = inj.record();
    EXPECT_EQ(r.structure, fi::Structure::SMEM);
    EXPECT_EQ(r.sm, 1u);
    const unsigned expect_width = std::min<unsigned>(16, 8 - r.bit);
    EXPECT_EQ(r.width, expect_width);
    // Extract the flipped byte (memory started zeroed).
    const std::uint32_t addr = static_cast<std::uint32_t>(r.site);
    const std::uint32_t word = smem.read_u32(addr & ~3u);
    const std::uint32_t byte = (word >> (8 * (addr & 3u))) & 0xffu;
    const std::uint32_t mask = ((1u << expect_width) - 1u) << r.bit;
    EXPECT_EQ(byte, mask) << "seed " << seed;
    if (r.bit > 0) saw_clipped = true;  // width 16 always clips; extra-short runs
  }
  EXPECT_TRUE(saw_clipped);
}

TEST(MicroarchProvenance, GiveUpIsPermanent) {
  // Once the window elapses with nothing allocated, the injector must stay
  // inert even if an allocation appears later (the sample is masked).
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::RF, 5, 10, Rng(11));
  for (std::uint64_t cycle = 5; cycle <= 11; ++cycle) inj.on_cycle(gpu, cycle);
  ASSERT_FALSE(inj.injected());
  ASSERT_EQ(inj.next_trigger(), ~std::uint64_t{0});
  const auto base = gpu.sm(0).regfile().allocate(4);
  ASSERT_TRUE(base);
  inj.on_cycle(gpu, 12);
  inj.on_cycle(gpu, 100);
  EXPECT_FALSE(inj.injected());
  EXPECT_EQ(inj.record().width, 0u);  // provenance reflects the non-flip
}

TEST(MicroarchProvenance, InjectsExactlyAtWindowEnd) {
  // window_end is inclusive: an allocation appearing on the last window
  // cycle still gets the fault.
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::RF, 5, 10, Rng(12));
  for (std::uint64_t cycle = 5; cycle <= 9; ++cycle) inj.on_cycle(gpu, cycle);
  ASSERT_FALSE(inj.injected());
  const auto base = gpu.sm(2).regfile().allocate(2);
  ASSERT_TRUE(base);
  inj.on_cycle(gpu, 10);
  EXPECT_TRUE(inj.injected());
  EXPECT_EQ(inj.record().trigger, 10u);
  EXPECT_EQ(inj.record().sm, 2u);
}

TEST(MicroarchProvenance, RetryRearmsAndRecordsActualTrigger) {
  // The recorded trigger is the cycle the flip landed, not the sampled one.
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::RF, 5, 100, Rng(13), 1, /*launch=*/3);
  inj.on_cycle(gpu, 5);
  inj.on_cycle(gpu, 6);
  ASSERT_FALSE(inj.injected());
  EXPECT_EQ(inj.next_trigger(), 7u);
  const auto base = gpu.sm(0).regfile().allocate(1);
  ASSERT_TRUE(base);
  inj.on_cycle(gpu, 7);
  ASSERT_TRUE(inj.injected());
  EXPECT_EQ(inj.record().trigger, 7u);
  EXPECT_EQ(inj.record().launch, 3u);
  EXPECT_EQ(inj.record().site, *base);
}

TEST(MicroarchProvenance, CacheSitesAreWordIndexed) {
  for (fi::Structure s : {fi::Structure::L1D, fi::Structure::L1T, fi::Structure::L2}) {
    sim::Gpu gpu(testing::test_config());
    fi::MicroarchInjector inj(s, 1, 2, Rng(14));
    inj.on_cycle(gpu, 1);
    ASSERT_TRUE(inj.injected()) << fi::structure_name(s);
    const fi::FaultRecord& r = inj.record();
    EXPECT_EQ(r.structure, s);
    EXPECT_LT(r.bit, 32u);
    EXPECT_EQ(r.width, 1u);
    const std::uint64_t bits =
        s == fi::Structure::L2
            ? gpu.l2().data_bit_count()
            : (s == fi::Structure::L1D ? gpu.sm(r.sm).l1d().data_bit_count()
                                       : gpu.sm(r.sm).l1t().data_bit_count());
    EXPECT_LT(r.site * 32 + r.bit, bits) << fi::structure_name(s);
    if (s == fi::Structure::L2) {
      EXPECT_EQ(r.sm, 0u);
    }
  }
}

TEST(SoftwareProvenance, RecordsCellBitAndTriggerIndex) {
  testing::KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R2, 5
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  fi::SoftwareInjector inj(fi::SvfMode::Dst, 40, Rng(7), 0, /*launch=*/1);
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  ASSERT_TRUE(inj.injected());
  const fi::FaultRecord& r = inj.record();
  EXPECT_EQ(r.level, fi::FaultLevel::Software);
  EXPECT_EQ(r.mode, fi::SvfMode::Dst);
  EXPECT_EQ(r.trigger, 40u);  // the sampled dynamic-instruction index
  EXPECT_EQ(r.launch, 1u);
  EXPECT_EQ(r.width, 1u);
  // The journaled bit position matches the observed output corruption.
  const auto result = runner.read(0);
  EXPECT_EQ(result[8] ^ 5u, 1u << r.bit);
  // The recorded cell holds the corrupted destination value.
  EXPECT_EQ(runner.gpu().sm(r.sm).regfile().read(static_cast<std::uint32_t>(r.site)),
            result[8]);
}

TEST(SoftwareProvenance, UninjectedHookLeavesDefaultSite) {
  testing::KernelRunner runner(R"(
.kernel t
    S2R R0, SR_TID.X
    EXIT
)");
  fi::SoftwareInjector inj(fi::SvfMode::Dst, 1000000, Rng(10));
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {}).ok());
  EXPECT_FALSE(inj.injected());
  EXPECT_EQ(inj.record().level, fi::FaultLevel::Software);
  EXPECT_EQ(inj.record().width, 0u);
}

}  // namespace
}  // namespace gras
