// Fault injector tests: targeting, single-bit discipline, retry/give-up
// behaviour and software-level counting.
#include "src/fi/injectors.h"

#include <gtest/gtest.h>

#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

using testing::KernelRunner;

constexpr char kSpinKernel[] = R"(
.kernel spin
.smem 512
.param out ptr
.param iters u32
    S2R R0, SR_TID.X
    MOV R1, 0
    MOV R2, RZ
loop:
    IADD R1, R1, 3
    IADD R2, R2, 1
    ISETP.LT P0, R2, c[iters]
    @P0 BRA loop
    ISCADD R3, R0, c[out], 2
    STG [R3], R1
    EXIT
)";

TEST(MicroarchInjector, FlipsExactlyOneRfBit) {
  sim::Gpu gpu(testing::test_config());
  // Manually allocate registers so the fault space is known.
  sim::RegFile& rf = gpu.sm(0).regfile();
  const auto base = rf.allocate(8);
  ASSERT_TRUE(base);
  for (std::uint32_t i = 0; i < 8; ++i) rf.write(*base + i, 0);

  fi::MicroarchInjector inj(fi::Structure::RF, 10, 100, Rng(1));
  inj.on_cycle(gpu, 10);
  EXPECT_TRUE(inj.injected());
  std::uint32_t flipped_bits = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    flipped_bits += static_cast<std::uint32_t>(std::popcount(rf.read(*base + i)));
  }
  EXPECT_EQ(flipped_bits, 1u);
}

TEST(MicroarchInjector, OnlyTargetsAllocatedRf) {
  sim::Gpu gpu(testing::test_config());
  sim::RegFile& rf0 = gpu.sm(0).regfile();
  const auto base = rf0.allocate(4);
  ASSERT_TRUE(base);
  // Run many injections; the flip must always land in the allocated block.
  for (int trial = 0; trial < 50; ++trial) {
    for (std::uint32_t i = 0; i < 4; ++i) rf0.write(*base + i, 0);
    fi::MicroarchInjector inj(fi::Structure::RF, 1, 10, Rng(trial));
    inj.on_cycle(gpu, 1);
    ASSERT_TRUE(inj.injected());
    std::uint32_t outside = 0;
    for (std::uint32_t s = 0; s < gpu.num_sms(); ++s) {
      const sim::RegFile& rf = gpu.sm(s).regfile();
      for (std::uint32_t c = 0; c < rf.size(); ++c) {
        if (rf.read(c) != 0 && !(s == 0 && c >= *base && c < *base + 4)) outside += 1;
      }
    }
    EXPECT_EQ(outside, 0u) << "trial " << trial;
  }
}

TEST(MicroarchInjector, RetriesUntilAllocationAppears) {
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::RF, 5, 100, Rng(3));
  inj.on_cycle(gpu, 5);  // nothing allocated yet
  EXPECT_FALSE(inj.injected());
  EXPECT_EQ(inj.next_trigger(), 6u);  // retry armed
  const auto base = gpu.sm(1).regfile().allocate(2);
  ASSERT_TRUE(base);
  inj.on_cycle(gpu, 6);
  EXPECT_TRUE(inj.injected());
  EXPECT_EQ(inj.next_trigger(), ~std::uint64_t{0});
}

TEST(MicroarchInjector, GivesUpAfterWindow) {
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::SMEM, 5, 10, Rng(4));
  for (std::uint64_t cycle = 5; cycle <= 12; ++cycle) inj.on_cycle(gpu, cycle);
  EXPECT_FALSE(inj.injected());
  EXPECT_EQ(inj.next_trigger(), ~std::uint64_t{0});  // gave up
}

TEST(MicroarchInjector, CacheTargetsAlwaysInject) {
  for (fi::Structure s : {fi::Structure::L1D, fi::Structure::L1T, fi::Structure::L2}) {
    sim::Gpu gpu(testing::test_config());
    fi::MicroarchInjector inj(s, 1, 2, Rng(5));
    inj.on_cycle(gpu, 1);
    EXPECT_TRUE(inj.injected()) << fi::structure_name(s);
  }
}

TEST(MicroarchInjector, InjectionPerturbsLiveExecution) {
  // Inject into the register file mid-kernel; with a busy RF some of the
  // injections must change the output.
  int changed = 0;
  std::vector<std::uint32_t> golden;
  for (int trial = -1; trial < 30; ++trial) {
    KernelRunner runner(kSpinKernel);
    const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
    fi::MicroarchInjector inj(fi::Structure::RF, 200, 100000, Rng(trial + 100));
    if (trial >= 0) runner.gpu().set_fault_hook(&inj);
    const auto result = runner.launch({1, 1, 1}, {32, 1, 1}, {out, 200});
    if (trial < 0) {
      ASSERT_TRUE(result.ok());
      golden = runner.read(0);
      continue;
    }
    if (result.ok() && runner.read(0) != golden) changed += 1;
  }
  EXPECT_GT(changed, 0);
}

TEST(SoftwareInjector, FlipsTheTargetDynamicInstruction) {
  // Kernel writes out[tid] = tid via two GPR writes per thread:
  // S2R (32 thread-instrs) then ISCADD (32) -> MOV R2 target below.
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R2, 5
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  // GP space per warp: S2R lanes 0..31 (indices 0-31), MOV (32-63),
  // ISCADD (64-95). Target index 40 = MOV of lane 8.
  fi::SoftwareInjector inj(fi::SvfMode::Dst, 40, Rng(7));
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  EXPECT_TRUE(inj.injected());
  const auto result = runner.read(0);
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (i == 8) {
      EXPECT_NE(result[i], 5u);
      EXPECT_EQ(std::popcount(result[i] ^ 5u), 1);  // single-bit flip
    } else {
      EXPECT_EQ(result[i], 5u) << i;
    }
  }
}

TEST(SoftwareInjector, LoadModeCountsOnlyLoads) {
  KernelRunner runner(R"(
.kernel t
.param a ptr
.param out ptr
    S2R R0, SR_TID.X
    ISCADD R1, R0, c[a], 2
    LDG R2, [R1]
    ISCADD R3, R0, c[out], 2
    STG [R3], R2
    EXIT
)");
  const auto a = runner.alloc(std::vector<std::uint32_t>(32, 100));
  const auto out = runner.alloc(std::vector<std::uint32_t>(32, 0));
  // Load space: only the LDG -> indices 0..31. Target lane 3.
  fi::SoftwareInjector inj(fi::SvfMode::DstLoad, 3, Rng(8));
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {a, out}).ok());
  EXPECT_TRUE(inj.injected());
  const auto result = runner.read(1);
  for (std::uint32_t i = 0; i < 32; ++i) {
    if (i == 3) EXPECT_EQ(std::popcount(result[i] ^ 100u), 1) << result[i];
    else EXPECT_EQ(result[i], 100u);
  }
}

TEST(SoftwareInjector, SrcReusePersistsAcrossReads) {
  // R1 is read by two following instructions; a SrcReuse fault on the
  // second instruction's source R1 corrupts both consumers' view from then
  // on (the stored register itself is flipped).
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R1, 8
    IADD R2, R1, RZ         // target: source R1 flipped here
    IADD R3, R1, RZ         // sees the same corrupted R1
    ISCADD R4, R0, c[out], 2
    STG [R4], R2
    STG [R4+128], R3
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(64, 0));
  // GP space: S2R(0-31) MOV(32-63) IADD(64-95) IADD(96-127) ISCADD(128-159).
  fi::SoftwareInjector inj(fi::SvfMode::SrcReuse, 64, Rng(9));  // first IADD, lane 0
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  ASSERT_TRUE(inj.injected());
  const auto result = runner.read(0);
  EXPECT_NE(result[0], 8u);
  EXPECT_EQ(result[0], result[32]);  // both consumers saw the same corruption
}

TEST(SoftwareInjector, SrcOnceAffectsOnlyOneConsumer) {
  KernelRunner runner(R"(
.kernel t
.param out ptr
    S2R R0, SR_TID.X
    MOV R1, 8
    IADD R2, R1, RZ         // target: corrupted source view
    IADD R3, R1, RZ         // must see the restored R1
    ISCADD R4, R0, c[out], 2
    STG [R4], R2
    STG [R4+128], R3
    EXIT
)");
  const auto out = runner.alloc(std::vector<std::uint32_t>(64, 0));
  fi::SoftwareInjector inj(fi::SvfMode::SrcOnce, 64, Rng(9));
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {out}).ok());
  ASSERT_TRUE(inj.injected());
  const auto result = runner.read(0);
  EXPECT_NE(result[0], 8u);    // first consumer corrupted
  EXPECT_EQ(result[32], 8u);   // second consumer clean: fault was transient
}

TEST(SoftwareInjector, NoInjectionPastEndOfSpace) {
  KernelRunner runner(R"(
.kernel t
    S2R R0, SR_TID.X
    EXIT
)");
  fi::SoftwareInjector inj(fi::SvfMode::Dst, 1000000, Rng(10));
  runner.gpu().set_fault_hook(&inj);
  ASSERT_TRUE(runner.launch({1, 1, 1}, {32, 1, 1}, {}).ok());
  EXPECT_FALSE(inj.injected());
}

TEST(Names, AreStable) {
  EXPECT_STREQ(fi::structure_name(fi::Structure::L1T), "L1T");
  EXPECT_STREQ(fi::outcome_name(fi::Outcome::SDC), "SDC");
  EXPECT_STREQ(fi::svf_mode_name(fi::SvfMode::DstLoad), "SVF-LD");
}

}  // namespace
}  // namespace gras
