// Multi-bit fault model tests (the §II-A extension).
#include <gtest/gtest.h>

#include <bit>

#include "src/fi/injectors.h"
#include "tests/testing/sim_helpers.h"

namespace gras {
namespace {

TEST(MultiBit, FlipsAdjacentBitsInOneWord) {
  sim::Gpu gpu(testing::test_config());
  sim::RegFile& rf = gpu.sm(0).regfile();
  const auto base = rf.allocate(8);
  ASSERT_TRUE(base);
  for (std::uint32_t i = 0; i < 8; ++i) rf.write(*base + i, 0);

  fi::MicroarchInjector inj(fi::Structure::RF, 1, 10, Rng(42), /*width=*/3);
  inj.on_cycle(gpu, 1);
  ASSERT_TRUE(inj.injected());
  // All flipped bits live in exactly one cell, adjacent, count <= 3
  // (clamped at the word boundary).
  int cells_touched = 0;
  std::uint32_t pattern = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (rf.read(*base + i) != 0) {
      cells_touched += 1;
      pattern = rf.read(*base + i);
    }
  }
  EXPECT_EQ(cells_touched, 1);
  const int bits = std::popcount(pattern);
  EXPECT_GE(bits, 1);
  EXPECT_LE(bits, 3);
  // Adjacency: the set bits form one contiguous run.
  const std::uint32_t normalized = pattern >> std::countr_zero(pattern);
  EXPECT_EQ(normalized & (normalized + 1), 0u) << std::hex << pattern;
}

TEST(MultiBit, WidthOneEqualsSingleBit) {
  sim::Gpu gpu(testing::test_config());
  sim::RegFile& rf = gpu.sm(0).regfile();
  const auto base = rf.allocate(4);
  ASSERT_TRUE(base);
  fi::MicroarchInjector inj(fi::Structure::RF, 1, 10, Rng(5), 1);
  inj.on_cycle(gpu, 1);
  std::uint32_t total_bits = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    total_bits += static_cast<std::uint32_t>(std::popcount(rf.read(*base + i)));
  }
  EXPECT_EQ(total_bits, 1u);
}

TEST(MultiBit, CacheFlipsStayInBounds) {
  sim::Gpu gpu(testing::test_config());
  fi::MicroarchInjector inj(fi::Structure::L2, 1, 10, Rng(6), 4);
  inj.on_cycle(gpu, 1);
  EXPECT_TRUE(inj.injected());  // must not crash near the array end
}

TEST(MultiBit, ZeroWidthIsTreatedAsOne) {
  sim::Gpu gpu(testing::test_config());
  sim::RegFile& rf = gpu.sm(0).regfile();
  const auto base = rf.allocate(4);
  ASSERT_TRUE(base);
  fi::MicroarchInjector inj(fi::Structure::RF, 1, 10, Rng(7), 0);
  inj.on_cycle(gpu, 1);
  std::uint32_t total_bits = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    total_bits += static_cast<std::uint32_t>(std::popcount(rf.read(*base + i)));
  }
  EXPECT_EQ(total_bits, 1u);
}

}  // namespace
}  // namespace gras
