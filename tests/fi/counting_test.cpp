// Consistency between the golden run's instruction accounting and the
// software injector's counting: the sampling space [gp_begin, gp_end) of a
// launch must exactly match the indices at which the injector can land.
#include <gtest/gtest.h>

#include "src/campaign/campaign.h"
#include "src/fi/injectors.h"
#include "src/workloads/workload.h"

namespace gras {
namespace {

sim::GpuConfig config() { return sim::make_config("gv100-scaled"); }

class CountingPerApp : public ::testing::TestWithParam<std::string> {};

TEST_P(CountingPerApp, LastGpIndexLandsAndOnePastDoesNot) {
  const auto app = workloads::make_benchmark(GetParam());
  const auto golden = campaign::run_golden(*app, config());
  const std::uint64_t total = golden.launches.back().gp_end;
  ASSERT_GT(total, 0u);
  {
    fi::SoftwareInjector inj(fi::SvfMode::Dst, total - 1, Rng(1));
    sim::Gpu gpu(config());
    gpu.set_launch_budgets(golden.budgets, golden.overflow_budget);
    gpu.set_fault_hook(&inj);
    workloads::run_app(*app, gpu);
    EXPECT_TRUE(inj.injected()) << "last GP thread instruction must be reachable";
  }
  {
    fi::SoftwareInjector inj(fi::SvfMode::Dst, total, Rng(1));
    sim::Gpu gpu(config());
    gpu.set_launch_budgets(golden.budgets, golden.overflow_budget);
    gpu.set_fault_hook(&inj);
    workloads::run_app(*app, gpu);
    EXPECT_FALSE(inj.injected()) << "one-past-the-end must not land";
  }
}

TEST_P(CountingPerApp, LoadSpaceMatchesLdCounters) {
  const auto app = workloads::make_benchmark(GetParam());
  const auto golden = campaign::run_golden(*app, config());
  const std::uint64_t total = golden.launches.back().ld_end;
  ASSERT_GT(total, 0u);
  fi::SoftwareInjector inj(fi::SvfMode::DstLoad, total - 1, Rng(2));
  sim::Gpu gpu(config());
  gpu.set_launch_budgets(golden.budgets, golden.overflow_budget);
  gpu.set_fault_hook(&inj);
  workloads::run_app(*app, gpu);
  EXPECT_TRUE(inj.injected());
}

// A fast subset keeps the suite quick; the mechanism is identical per app.
INSTANTIATE_TEST_SUITE_P(Subset, CountingPerApp,
                         ::testing::Values("va", "scp", "bfs", "lud"),
                         [](const auto& info) { return info.param; });

TEST(Counting, GpSpansArePerLaunchDisjointAndOrdered) {
  const auto app = workloads::make_benchmark("srad_v1");
  const auto golden = campaign::run_golden(*app, config());
  std::uint64_t prev_end = 0;
  for (const auto& l : golden.launches) {
    EXPECT_EQ(l.gp_begin, prev_end);
    EXPECT_GE(l.gp_end, l.gp_begin);
    EXPECT_EQ(l.gp_end - l.gp_begin, l.stats.gp_thread_instrs);
    EXPECT_EQ(l.ld_end - l.ld_begin, l.stats.ld_thread_instrs);
    prev_end = l.gp_end;
  }
}

}  // namespace
}  // namespace gras
