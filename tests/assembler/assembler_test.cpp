#include "src/assembler/assembler.h"

#include <gtest/gtest.h>

#include "src/isa/disasm.h"

namespace gras::assembler {
namespace {

using isa::Op;
using isa::OperandKind;

TEST(Assembler, ParsesSimpleKernel) {
  const auto k = assemble_kernel(R"(
.kernel add
.param a ptr
.param b u32
    S2R R0, SR_TID.X
    IADD R1, R0, c[b]
    ISCADD R2, R1, c[a], 2
    LDG R3, [R2]
    EXIT
)");
  EXPECT_EQ(k.name, "add");
  ASSERT_EQ(k.code.size(), 5u);
  EXPECT_EQ(k.code[0].op, Op::S2R);
  EXPECT_EQ(k.code[1].op, Op::IADD);
  EXPECT_EQ(k.code[1].b.kind, OperandKind::Param);
  EXPECT_EQ(k.code[1].b.value, 4u);  // second param slot
  EXPECT_EQ(k.code[2].shift, 2);
  EXPECT_EQ(k.code[4].op, Op::EXIT);
  EXPECT_EQ(k.num_regs, 4);
}

TEST(Assembler, ParamsGetSequentialOffsets) {
  const auto k = assemble_kernel(R"(
.kernel p
.param x ptr
.param y f32
.param z u32
    EXIT
)");
  ASSERT_EQ(k.params.size(), 3u);
  EXPECT_EQ(k.params[0].byte_offset, 0u);
  EXPECT_TRUE(k.params[0].is_pointer);
  EXPECT_EQ(k.params[1].byte_offset, 4u);
  EXPECT_FALSE(k.params[1].is_pointer);
  EXPECT_EQ(k.params[2].byte_offset, 8u);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  const auto k = assemble_kernel(R"(
.kernel loops
    MOV R0, 0
top:
    IADD R0, R0, 1
    ISETP.LT P0, R0, 10
    @P0 BRA top
    BRA done
    NOP
done:
    EXIT
)");
  EXPECT_EQ(k.code[3].op, Op::BRA);
  EXPECT_EQ(k.code[3].target, 1u);  // top
  EXPECT_EQ(k.code[4].target, 6u);  // done
}

TEST(Assembler, ParsesGuards) {
  const auto k = assemble_kernel(R"(
.kernel g
    ISETP.EQ P1, R0, RZ
    @P1 MOV R1, 5
    @!P1 MOV R1, 6
    EXIT
)");
  EXPECT_EQ(k.code[1].guard, 1);
  EXPECT_FALSE(k.code[1].guard_neg);
  EXPECT_EQ(k.code[2].guard, 1);
  EXPECT_TRUE(k.code[2].guard_neg);
}

TEST(Assembler, ParsesImmediateForms) {
  const auto k = assemble_kernel(R"(
.kernel imm
    MOV R0, 42
    MOV R1, -7
    MOV R2, 0x1f
    MOV R3, 1.5f
    MOV R4, -0.25f
    EXIT
)");
  EXPECT_EQ(k.code[0].a.value, 42u);
  EXPECT_EQ(k.code[1].a.value, static_cast<std::uint32_t>(-7));
  EXPECT_EQ(k.code[2].a.value, 0x1fu);
  float f;
  __builtin_memcpy(&f, &k.code[3].a.value, 4);
  EXPECT_EQ(f, 1.5f);
  __builtin_memcpy(&f, &k.code[4].a.value, 4);
  EXPECT_EQ(f, -0.25f);
}

TEST(Assembler, ParsesMemoryReferences) {
  const auto k = assemble_kernel(R"(
.kernel mem
    LDG R0, [R1]
    LDG R0, [R1+8]
    LDG R0, [R1-8]
    LDS R0, [0x40]
    STS [R2+4], R0
    STG [R2], RZ
    EXIT
)");
  EXPECT_EQ(k.code[0].mem_offset, 0);
  EXPECT_EQ(k.code[1].mem_offset, 8);
  EXPECT_EQ(k.code[2].mem_offset, -8);
  EXPECT_EQ(k.code[3].a.value, isa::kRegRZ);  // absolute -> RZ base
  EXPECT_EQ(k.code[3].mem_offset, 0x40);
  EXPECT_EQ(k.code[4].mem_offset, 4);
  EXPECT_EQ(k.code[5].b.value, isa::kRegRZ);
}

TEST(Assembler, ParsesSelWithNegatedPredicate) {
  const auto k = assemble_kernel(R"(
.kernel s
    SEL R0, R1, 9, !P2
    EXIT
)");
  EXPECT_EQ(k.code[0].psrc, 2);
  EXPECT_TRUE(k.code[0].psrc_neg);
}

TEST(Assembler, ParsesAtomics) {
  const auto k = assemble_kernel(R"(
.kernel a
    ATOM.ADD R0, [R1], R2
    RED.ADD [R1+4], 3
    EXIT
)");
  EXPECT_EQ(k.code[0].op, Op::ATOM_ADD);
  EXPECT_EQ(k.code[1].op, Op::RED_ADD);
  EXPECT_EQ(k.code[1].b.value, 3u);
}

TEST(Assembler, MultipleKernelsInOneSource) {
  const auto kernels = assemble(R"(
.kernel first
    EXIT
.kernel second
.smem 256
    NOP
    EXIT
)");
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0].name, "first");
  EXPECT_EQ(kernels[1].name, "second");
  EXPECT_EQ(kernels[1].smem_bytes, 256u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto k = assemble_kernel(R"(
.kernel c
    // full line comment
    NOP        // trailing comment
    NOP        ; alternative comment
    EXIT
)");
  EXPECT_EQ(k.code.size(), 3u);
}

// --- Error cases ---

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_THROW(assemble_kernel(".kernel e\n BRA nowhere\n EXIT\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble_kernel(".kernel e\nx:\n NOP\nx:\n EXIT\n"), AsmError);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble_kernel(".kernel e\n FROB R0, R1\n"), AsmError);
}

TEST(AssemblerErrors, UnknownParam) {
  EXPECT_THROW(assemble_kernel(".kernel e\n MOV R0, c[nope]\n EXIT\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateParam) {
  EXPECT_THROW(assemble_kernel(".kernel e\n.param a ptr\n.param a u32\n EXIT\n"),
               AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble_kernel(".kernel e\n IADD R0, R1\n"), AsmError);
  EXPECT_THROW(assemble_kernel(".kernel e\n EXIT R0\n"), AsmError);
}

TEST(AssemblerErrors, StatementOutsideKernel) {
  EXPECT_THROW(assemble("    NOP\n"), AsmError);
}

TEST(AssemblerErrors, EmptyKernel) {
  EXPECT_THROW(assemble(".kernel empty\n"), AsmError);
}

TEST(AssemblerErrors, CannotWritePT) {
  EXPECT_THROW(assemble_kernel(".kernel e\n ISETP.EQ PT, R0, R1\n EXIT\n"), AsmError);
}

TEST(AssemblerErrors, BadShift) {
  EXPECT_THROW(assemble_kernel(".kernel e\n ISCADD R0, R1, R2, 40\n EXIT\n"), AsmError);
}

TEST(AssemblerErrors, ReportsLineNumber) {
  try {
    assemble_kernel(".kernel e\n NOP\n FROB\n");
    FAIL();
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// Round-trip: disassembled text of a kernel re-assembles to the same code
// for branch-free kernels (labels are lost in disassembly).
TEST(Assembler, DisassemblyIsReadable) {
  const auto k = assemble_kernel(R"(
.kernel rt
.param src ptr
    S2R R0, SR_TID.X
    ISCADD R1, R0, c[src], 2
    LDG R2, [R1]
    FADD R3, R2, 1.0f
    STG [R1], R3
    EXIT
)");
  const std::string text = isa::disassemble(k);
  EXPECT_NE(text.find("ISCADD R1, R0, c[src], 2"), std::string::npos);
  EXPECT_NE(text.find("STG [R1], R3"), std::string::npos);
}

}  // namespace
}  // namespace gras::assembler
