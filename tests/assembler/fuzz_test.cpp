// Robustness fuzzing: arbitrary byte soup and mutated valid programs must
// either assemble or throw AsmError — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include "src/assembler/assembler.h"
#include "src/common/rng.h"

namespace gras::assembler {
namespace {

constexpr char kValid[] = R"(
.kernel fuzz_base
.smem 256
.param a ptr
.param n u32
    S2R R0, SR_TID.X
    ISETP.GE P0, R0, c[n]
    @P0 EXIT
    SSY join
    @!P0 BRA other
    ISCADD R1, R0, c[a], 2
    LDG R2, [R1]
    FADD R2, R2, 1.5f
    STG [R1], R2
    SYNC
other:
    SYNC
join:
    BAR
    EXIT
)";

TEST(AssemblerFuzz, RandomBytesNeverCrash) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const std::size_t len = rng.below(200);
    for (std::size_t i = 0; i < len; ++i) {
      // Printable-ish ASCII plus newlines keeps the tokenizer busy.
      soup.push_back(static_cast<char>(rng.range(9, 126)));
    }
    try {
      assemble(soup);
    } catch (const AsmError&) {
      // expected for garbage
    }
  }
}

TEST(AssemblerFuzz, SingleCharacterMutationsOfValidProgram) {
  const std::string base = kValid;
  Rng rng(0xf023);
  int assembled = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng.range(32, 126));
    try {
      const auto kernels = assemble(mutated);
      assembled += 1;
      // Whatever assembled must be structurally sane.
      for (const auto& k : kernels) {
        EXPECT_FALSE(k.code.empty());
        EXPECT_LE(k.num_regs, isa::kNumGpr);
        for (const auto& ins : k.code) {
          if (ins.op == isa::Op::BRA || ins.op == isa::Op::SSY) {
            EXPECT_LT(ins.target, k.code.size());
          }
        }
      }
    } catch (const AsmError&) {
      rejected += 1;
    }
  }
  // Both outcomes must occur: mutations in comments/labels assemble,
  // mutations in mnemonics are rejected.
  EXPECT_GT(assembled, 0);
  EXPECT_GT(rejected, 0);
}

TEST(AssemblerFuzz, LineDeletionsKeepErrorsPrecise) {
  const std::string base = kValid;
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= base.size(); ++i) {
    if (i == base.size() || base[i] == '\n') {
      lines.push_back(base.substr(start, i - start));
      start = i + 1;
    }
  }
  for (std::size_t drop = 0; drop < lines.size(); ++drop) {
    std::string program;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == drop) continue;
      program += lines[i];
      program += '\n';
    }
    try {
      assemble(program);
    } catch (const AsmError& e) {
      EXPECT_GT(e.line(), 0u);
      EXPECT_LE(e.line(), lines.size());
    }
  }
}

}  // namespace
}  // namespace gras::assembler
