#include "src/assembler/builder.h"

#include <gtest/gtest.h>

namespace gras::assembler {
namespace {

using isa::Cmp;
using isa::Op;
using isa::Operand;

TEST(KernelBuilder, BuildsBasicKernel) {
  KernelBuilder b("k");
  b.param("out", true).param("n", false).smem(128);
  b.s2r(0, isa::SpecialReg::TID_X);
  b.isetp(Cmp::GE, 0, 0, Operand::param(4));
  b.exit(0, false);
  b.iscadd(1, 0, Operand::param(0), 2);
  b.stg(1, Operand::gpr(0));
  b.exit();
  const isa::Kernel k = b.build();
  EXPECT_EQ(k.name, "k");
  EXPECT_EQ(k.smem_bytes, 128u);
  EXPECT_EQ(k.params.size(), 2u);
  EXPECT_EQ(k.code.size(), 6u);
  EXPECT_EQ(k.num_regs, 2);
}

TEST(KernelBuilder, ResolvesLabels) {
  KernelBuilder b("loop");
  b.mov(0, Operand::imm(0));
  b.label("top");
  b.iadd(0, 0, Operand::imm(1));
  b.isetp(Cmp::LT, 0, 0, Operand::imm(5));
  b.bra("top", 0, false);
  b.exit();
  const isa::Kernel k = b.build();
  EXPECT_EQ(k.code[3].op, Op::BRA);
  EXPECT_EQ(k.code[3].target, 1u);
}

TEST(KernelBuilder, SsyTargetsForwardLabel) {
  KernelBuilder b("div");
  b.ssy("join");
  b.bra("else", 0, true);
  b.sync();
  b.label("else");
  b.sync();
  b.label("join");
  b.exit();
  const isa::Kernel k = b.build();
  EXPECT_EQ(k.code[0].op, Op::SSY);
  EXPECT_EQ(k.code[0].target, 4u);
  EXPECT_EQ(k.code[1].target, 3u);
}

TEST(KernelBuilder, UndefinedLabelThrows) {
  KernelBuilder b("bad");
  b.bra("missing");
  b.exit();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(KernelBuilder, BarrierAndGuardedExit) {
  KernelBuilder b("barrier");
  b.bar();
  b.exit(3, true);
  b.exit();
  const isa::Kernel k = b.build();
  EXPECT_EQ(k.code[0].op, Op::BAR);
  EXPECT_EQ(k.code[1].guard, 3);
  EXPECT_TRUE(k.code[1].guard_neg);
}

}  // namespace
}  // namespace gras::assembler
