#include "src/metrics/metrics.h"

#include <algorithm>

namespace gras::metrics {

StructureBits StructureBits::from(const sim::GpuConfig& config) {
  StructureBits b;
  b.rf = config.rf_bits_total();
  b.smem = config.smem_bits_total();
  b.l1d = config.l1d_bits_total();
  b.l1t = config.l1t_bits_total();
  b.l2 = config.l2_bits_total();
  return b;
}

std::uint64_t StructureBits::of(fi::Structure s) const {
  switch (s) {
    case fi::Structure::RF: return rf;
    case fi::Structure::SMEM: return smem;
    case fi::Structure::L1D: return l1d;
    case fi::Structure::L1T: return l1t;
    case fi::Structure::L2: return l2;
  }
  return 0;
}

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  sdc += o.sdc;
  timeout += o.timeout;
  due += o.due;
  return *this;
}

Breakdown breakdown_of(const campaign::OutcomeCounts& counts) {
  return {counts.pct(fi::Outcome::SDC), counts.pct(fi::Outcome::Timeout),
          counts.pct(fi::Outcome::DUE)};
}

namespace {

/// Cycle-weighted average of a per-launch quantity over a kernel's launches.
template <typename Fn>
double cycle_weighted(const campaign::GoldenRun& golden, const std::string& kernel,
                      Fn&& per_launch) {
  std::uint64_t total_cycles = 0;
  double acc = 0.0;
  for (const auto& l : golden.launches) {
    if (l.kernel != kernel) continue;
    total_cycles += l.cycles();
    acc += per_launch(l) * static_cast<double>(l.cycles());
  }
  if (total_cycles == 0) return 0.0;
  return acc / static_cast<double>(total_cycles);
}

}  // namespace

double rf_derating(const campaign::GoldenRun& golden, const std::string& kernel,
                   const sim::GpuConfig& config) {
  const double system_bits = static_cast<double>(config.rf_bits_total());
  return cycle_weighted(golden, kernel, [&](const sim::LaunchRecord& l) {
    const double used =
        static_cast<double>(l.regs_per_thread) * 32.0 * static_cast<double>(l.threads);
    return std::min(1.0, used / system_bits);
  });
}

namespace {

/// Upper bound on simultaneously-resident CTAs implied by the per-SM
/// occupancy limits (CTA slots, warp slots, registers, shared memory). Used
/// for hand-assembled launch records that carry no observed peak.
std::uint64_t occupancy_cta_bound(const sim::LaunchRecord& l,
                                  const sim::GpuConfig& config) {
  const std::uint32_t threads_per_cta = l.block.x * l.block.y;
  const std::uint32_t warps_per_cta = std::max<std::uint32_t>(
      1, (threads_per_cta + config.warp_size - 1) / config.warp_size);
  std::uint64_t per_sm = config.max_ctas_per_sm;
  per_sm = std::min<std::uint64_t>(per_sm, config.max_warps_per_sm / warps_per_cta);
  if (l.regs_per_thread > 0) {
    const std::uint64_t regs_per_cta =
        std::uint64_t{warps_per_cta} * config.warp_size * l.regs_per_thread;
    per_sm = std::min(per_sm, config.regs_per_sm / regs_per_cta);
  }
  if (l.smem_per_cta > 0) {
    const std::uint64_t granules =
        (l.smem_per_cta + sim::SharedMem::kGranule - 1) / sim::SharedMem::kGranule;
    per_sm = std::min(per_sm,
                      std::uint64_t{config.smem_bytes_per_sm} /
                          (granules * sim::SharedMem::kGranule));
  }
  return std::max<std::uint64_t>(1, per_sm) * config.num_sms;
}

}  // namespace

double smem_derating(const campaign::GoldenRun& golden, const std::string& kernel,
                     const sim::GpuConfig& config) {
  const double system_bits = static_cast<double>(config.smem_bits_total());
  return cycle_weighted(golden, kernel, [&](const sim::LaunchRecord& l) {
    // Weight by CTAs that are actually resident at once, not the grid size:
    // only resident CTAs hold shared-memory allocations, so for any grid
    // larger than the device's footprint the grid count would saturate the
    // derating factor at 1 and overstate SMEM AVF.
    const std::uint64_t resident =
        std::min<std::uint64_t>(l.grid.count(),
                                l.peak_resident_ctas > 0
                                    ? l.peak_resident_ctas
                                    : occupancy_cta_bound(l, config));
    const double used =
        static_cast<double>(l.smem_per_cta) * 8.0 * static_cast<double>(resident);
    return std::min(1.0, used / system_bits);
  });
}

Breakdown KernelReliability::avf(fi::Structure s) const {
  const auto fr_it = fr.find(s);
  if (fr_it == fr.end()) return {};
  const auto df_it = df.find(s);
  const double factor = df_it == df.end() ? 1.0 : df_it->second;
  return fr_it->second.scaled(factor);
}

Breakdown KernelReliability::chip_avf(const StructureBits& bits) const {
  Breakdown out;
  const double total = static_cast<double>(bits.total());
  if (total == 0.0) return out;
  for (fi::Structure s : fi::kAllStructures) {
    out += avf(s).scaled(static_cast<double>(bits.of(s)) / total);
  }
  return out;
}

Breakdown KernelReliability::avf_cache(const StructureBits& bits) const {
  Breakdown out;
  const double total = static_cast<double>(bits.cache_total());
  if (total == 0.0) return out;
  for (fi::Structure s : {fi::Structure::L1D, fi::Structure::L1T, fi::Structure::L2}) {
    out += avf(s).scaled(static_cast<double>(bits.of(s)) / total);
  }
  return out;
}

KernelReliability consolidate_kernel(const campaign::GoldenRun& golden,
                                     const std::string& kernel,
                                     const campaign::KernelCampaigns& campaigns,
                                     const sim::GpuConfig& config) {
  KernelReliability out;
  out.kernel = kernel;
  out.cycles = golden.kernel_cycles(kernel);
  out.instructions = golden.kernel_gp_instrs(kernel);
  out.df[fi::Structure::RF] = rf_derating(golden, kernel, config);
  out.df[fi::Structure::SMEM] = smem_derating(golden, kernel, config);
  out.df[fi::Structure::L1D] = 1.0;
  out.df[fi::Structure::L1T] = 1.0;
  out.df[fi::Structure::L2] = 1.0;
  for (const auto& [target, result] : campaigns) {
    if (campaign::is_microarch(target)) {
      fi::Structure s;
      switch (target) {
        case campaign::Target::RF: s = fi::Structure::RF; break;
        case campaign::Target::SMEM: s = fi::Structure::SMEM; break;
        case campaign::Target::L1D: s = fi::Structure::L1D; break;
        case campaign::Target::L1T: s = fi::Structure::L1T; break;
        default: s = fi::Structure::L2; break;
      }
      out.fr[s] = breakdown_of(result.counts);
    } else if (target == campaign::Target::Svf) {
      out.svf = breakdown_of(result.counts);
    } else if (target == campaign::Target::SvfLd) {
      out.svf_ld = breakdown_of(result.counts);
    }
  }
  return out;
}

namespace {

/// Weighted consolidation over kernels with a caller-supplied weight and
/// per-kernel value.
template <typename WeightFn, typename ValueFn>
Breakdown consolidate(const std::vector<KernelReliability>& kernels, WeightFn&& weight,
                      ValueFn&& value) {
  double total = 0.0;
  for (const auto& k : kernels) total += weight(k);
  Breakdown out;
  if (total == 0.0) return out;
  for (const auto& k : kernels) out += value(k).scaled(weight(k) / total);
  return out;
}

}  // namespace

Breakdown AppReliability::chip_avf(const StructureBits& bits) const {
  return consolidate(
      kernels, [](const KernelReliability& k) { return static_cast<double>(k.cycles); },
      [&](const KernelReliability& k) { return k.chip_avf(bits); });
}

Breakdown AppReliability::avf_rf() const {
  return consolidate(
      kernels, [](const KernelReliability& k) { return static_cast<double>(k.cycles); },
      [](const KernelReliability& k) { return k.avf_rf(); });
}

Breakdown AppReliability::avf_cache(const StructureBits& bits) const {
  return consolidate(
      kernels, [](const KernelReliability& k) { return static_cast<double>(k.cycles); },
      [&](const KernelReliability& k) { return k.avf_cache(bits); });
}

Breakdown AppReliability::svf() const {
  return consolidate(
      kernels,
      [](const KernelReliability& k) { return static_cast<double>(k.instructions); },
      [](const KernelReliability& k) { return k.svf; });
}

Breakdown AppReliability::svf_ld() const {
  return consolidate(
      kernels,
      [](const KernelReliability& k) { return static_cast<double>(k.instructions); },
      [](const KernelReliability& k) { return k.svf_ld; });
}

Breakdown AppReliability::avf(fi::Structure s) const {
  return consolidate(
      kernels, [](const KernelReliability& k) { return static_cast<double>(k.cycles); },
      [&](const KernelReliability& k) { return k.avf(s); });
}

}  // namespace gras::metrics
