// AVF / SVF arithmetic (paper §II-B, §II-C).
//
//   FR(h)        = Pct(SDC) + Pct(Timeout) + Pct(DUE)
//   DF(h)        = size_per_thread(h) * num_threads / system_size(h)
//                  (register file and shared memory only; clamped to 1)
//   AVF(h)       = FR(h) * DF(h)
//   AVF(chip)    = sum_h AVF(h) * size(h) / sum_h size(h)
//   AVF(app)     = sum_k AVF(k) * cycles(k) / sum_k cycles(k)
//   SVF(kernel)  = FR(kernel)
//   SVF(app)     = sum_k SVF(k) * instructions(k) / sum_k instructions(k)
//
// Every quantity is carried as a Breakdown (SDC / Timeout / DUE shares) so
// the stacked-bar figures of the paper can be regenerated, with the scalar
// value being the sum of the three shares.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/fi/fault.h"
#include "src/sim/config.h"

namespace gras::metrics {

/// Bit counts of the injectable structures (chip-AVF weights).
struct StructureBits {
  std::uint64_t rf = 0, smem = 0, l1d = 0, l1t = 0, l2 = 0;

  static StructureBits from(const sim::GpuConfig& config);
  std::uint64_t of(fi::Structure s) const;
  std::uint64_t total() const { return rf + smem + l1d + l1t + l2; }
  std::uint64_t cache_total() const { return l1d + l1t + l2; }
};

/// A vulnerability value split into the three non-masked fault-effect
/// classes. value() == SDC + Timeout + DUE.
struct Breakdown {
  double sdc = 0.0, timeout = 0.0, due = 0.0;

  double value() const { return sdc + timeout + due; }
  Breakdown scaled(double f) const { return {sdc * f, timeout * f, due * f}; }
  Breakdown& operator+=(const Breakdown& o);
};

/// Failure-rate breakdown of a campaign's outcome histogram.
Breakdown breakdown_of(const campaign::OutcomeCounts& counts);

/// Cycle-weighted derating factor of a kernel, aggregated over its launches:
/// DF_RF(l) = regs_per_thread * 32 * threads(l) / total RF bits.
double rf_derating(const campaign::GoldenRun& golden, const std::string& kernel,
                   const sim::GpuConfig& config);
/// DF_SMEM(l) = smem_per_cta * 8 * resident_ctas(l) / total SMEM bits, where
/// resident_ctas is the launch's observed peak of simultaneously-resident
/// CTAs (capped by the grid size; an occupancy bound when the record carries
/// no peak). Only resident CTAs hold SMEM, so weighting by the full grid
/// would saturate DF at 1 for any grid larger than the device.
double smem_derating(const campaign::GoldenRun& golden, const std::string& kernel,
                     const sim::GpuConfig& config);

/// Consolidated reliability measurements of one kernel.
struct KernelReliability {
  std::string kernel;
  /// Raw failure-rate breakdowns per microarchitecture structure.
  std::map<fi::Structure, Breakdown> fr;
  /// Derating factors (1.0 for caches).
  std::map<fi::Structure, double> df;
  Breakdown svf;     ///< software-level failure rate (== SVF)
  Breakdown svf_ld;  ///< loads-only software-level failure rate
  std::uint64_t cycles = 0;        ///< AVF app-consolidation weight
  std::uint64_t instructions = 0;  ///< SVF app-consolidation weight

  /// AVF of one structure: FR x DF.
  Breakdown avf(fi::Structure s) const;
  /// Size-weighted AVF over all five structures (the paper's full-chip AVF).
  Breakdown chip_avf(const StructureBits& bits) const;
  /// AVF of the register file alone (the paper's AVF-RF).
  Breakdown avf_rf() const { return avf(fi::Structure::RF); }
  /// Size-weighted AVF over L1D+L1T+L2 (the paper's AVF-Cache).
  Breakdown avf_cache(const StructureBits& bits) const;
};

/// Builds a KernelReliability from campaign results (whichever targets were
/// run; missing targets contribute zero).
KernelReliability consolidate_kernel(const campaign::GoldenRun& golden,
                                     const std::string& kernel,
                                     const campaign::KernelCampaigns& campaigns,
                                     const sim::GpuConfig& config);

/// Consolidated reliability of one application.
struct AppReliability {
  std::string app;
  std::vector<KernelReliability> kernels;

  /// Cycle-weighted chip AVF over kernels (paper's AVF(app)).
  Breakdown chip_avf(const StructureBits& bits) const;
  Breakdown avf_rf() const;
  Breakdown avf_cache(const StructureBits& bits) const;
  /// Instruction-weighted SVF over kernels (paper's SVF(app)).
  Breakdown svf() const;
  Breakdown svf_ld() const;
  /// Cycle-weighted AVF of one structure.
  Breakdown avf(fi::Structure s) const;
};

}  // namespace gras::metrics
