// Fault-site equivalence-class builder for two-level SDC estimation
// (DESIGN.md §14; Hari et al., arXiv 2005.01445).
//
// A software-level (SVF / SVF-LD) campaign's fault-site space is the
// enumeration of dynamic destination-register writes of the target kernel.
// One profiled fault-free run observes every site and records, per site:
// whether the written value is ever read before being overwritten (dead
// sites have a known Masked outcome — derating, the first level of the
// model), the static instruction that produced it, a coarse magnitude
// bucket of the written value (value identity: sites writing equal-shaped
// values fail alike), and how many consumers read it (fan-out). Sites
// agreeing on all of those collapse into one equivalence class regardless
// of which SM, warp, lane, or kernel launch executed them — the symmetry
// axes: the same static write on another SM (structural) or in another
// launch of the kernel (temporal) is the same fault site by symmetry.
//
// The classifier is deliberately conservative in one direction only: a site
// can be wrongly *live* (e.g. a stale cross-kernel read credits it), never
// wrongly dead, because every consumption path — stores, addresses,
// predicates, ALU inputs — flows through the operand reads the profiler
// observes. Wrongly-live sites cost an extra representative injection;
// wrongly-dead sites would silently bias the estimate, so they are
// impossible by construction (and profile_sites throws if the profiled
// stream does not cover the enumerated space exactly).
#pragma once

#include <cstdint>
#include <vector>

#include "src/campaign/campaign.h"

namespace gras::analysis {

/// Per-site facts from the profiled fault-free run, in kernel-relative site
/// order (the same enumeration campaign::sample_site indexes into).
struct SiteInfo {
  std::uint32_t pc = 0;          ///< static instruction index in the kernel
  std::uint32_t launch_ord = 0;  ///< ordinal among the kernel's launches
  std::uint8_t value_bucket = 0; ///< coarse magnitude bucket of the value
  std::uint8_t observed = 0;     ///< 1 once the profiler saw this site
  std::uint16_t readers = 0;     ///< reads before overwrite; 0 = dead site
};

struct SiteProfile {
  std::uint64_t total_sites = 0;  ///< campaign::site_count of the spec
  std::vector<SiteInfo> sites;    ///< size total_sites
  std::uint64_t observed_sites() const;
};

/// Runs the app fault-free once with the site profiler attached (profiling
/// never perturbs execution) and returns the per-site facts. Throws
/// std::invalid_argument for non-prunable targets and std::runtime_error
/// when the run fails or the observed site stream does not match the golden
/// enumeration (which would indicate a determinism bug, not a usable
/// profile).
SiteProfile profile_sites(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::GoldenRun& golden,
                          const campaign::CampaignSpec& spec);

/// Collapses a profile into equivalence classes: dead sites (readers == 0)
/// into the derated pseudo-class, live sites keyed by
/// (pc, value bucket zero/narrow/wide, fan-out bucket single/multi).
campaign::PruneClassing classify_sites(const SiteProfile& profile);

/// profile_sites + classify_sites; the result always satisfies
/// PruneClassing::partitions().
campaign::PruneClassing build_prune_classing(const workloads::App& app,
                                             const sim::GpuConfig& config,
                                             const campaign::GoldenRun& golden,
                                             const campaign::CampaignSpec& spec);

}  // namespace gras::analysis
