#include "src/analysis/ace.h"

namespace gras::analysis {

AceProfiler::AceProfiler(const sim::GpuConfig& config) : config_(config) {}

void AceProfiler::close(const Lifetime& life) {
  if (life.last_read_cycle > life.write_cycle) {
    ace_bit_cycles_ += (life.last_read_cycle - life.write_cycle) * 32;
    intervals_ += 1;
  }
}

void AceProfiler::note_read(std::uint64_t cell_key, std::uint64_t cycle) {
  auto it = live_.find(cell_key);
  if (it == live_.end()) return;  // read of a never-written (stale) cell
  it->second.last_read_cycle = cycle;
}

void AceProfiler::note_write(std::uint64_t cell_key, std::uint64_t cycle) {
  auto [it, inserted] = live_.try_emplace(cell_key);
  if (!inserted) close(it->second);  // previous lifetime ends at this write
  it->second = Lifetime{cycle, 0};
}

void AceProfiler::on_issue(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                           std::uint32_t exec_mask, std::uint64_t cycle) {
  const sim::WarpExec& warp = sm.warp(warp_slot);
  const std::uint64_t sm_base =
      std::uint64_t{sm.sm_id()} * config_.regs_per_sm;
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    if (!(exec_mask & (1u << lane))) continue;
    for (const isa::Operand* op : {&ins.a, &ins.b, &ins.c}) {
      if (!op->is_gpr() || op->value == isa::kRegRZ) continue;
      note_read(sm_base + sm.rf_cell_index(warp, lane, static_cast<std::uint8_t>(op->value)),
                cycle);
    }
    if (ins.writes_gpr()) {
      note_write(sm_base + sm.rf_cell_index(warp, lane, ins.dst), cycle);
    }
  }
}

void AceProfiler::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& [key, life] : live_) close(life);
  live_.clear();
}

double AceProfiler::avf_rf(std::uint64_t total_cycles) const {
  if (total_cycles == 0) return 0.0;
  const double denom = static_cast<double>(config_.rf_bits_total()) *
                       static_cast<double>(total_cycles);
  return static_cast<double>(ace_bit_cycles_) / denom;
}

}  // namespace gras::analysis
