// SDC anatomy: aggregate corruption signatures into pattern tables.
//
// A campaign's failure rate says how often outputs were corrupted; the
// anatomy says what the corruption looked like. v2 journals record a
// CorruptionSignature per SDC sample (workload.h); this module folds those
// per-sample signatures into per-campaign tables — how many SDCs touched a
// single word vs. spread across the output, which bit positions flip (sign/
// exponent/mantissa for float workloads), how large the numeric error gets,
// and which SMs / kernel launches / fault sites produced them. Journals are
// grouped by campaign fingerprint, so the shards of one sharded campaign
// merge into one row exactly as merge_shards would combine their histograms.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/orchestrator/journal.h"

namespace gras::analysis {

/// Aggregated SDC anatomy of one campaign (all shards with one fingerprint).
struct SdcAnatomy {
  orchestrator::JournalHeader header;  ///< campaign identity (app/kernel/...)
  std::uint32_t journal_version = 0;   ///< max version seen (v1 = no anatomy)
  std::uint64_t samples = 0;           ///< journaled sample records
  std::uint64_t sdc = 0;               ///< records with outcome SDC
  std::uint64_t with_signature = 0;    ///< SDCs carrying a signature (v2)

  // Corruption shape (over SDCs with a signature).
  std::uint64_t single_word = 0;  ///< exactly one output word corrupted
  std::uint64_t single_bit = 0;   ///< exactly one output bit flipped
  std::uint64_t words_mismatched_sum = 0;
  std::uint64_t words_mismatched_max = 0;
  std::uint64_t extent_sum = 0;  ///< sum of spatial extents (first..last span)
  std::uint64_t extent_max = 0;
  std::uint64_t multi_buffer = 0;  ///< SDCs touching more than one buffer
  double max_rel_error = 0.0;      ///< worst relative error seen in any SDC
  /// Summed flipped-bit-position histogram over all SDC signatures.
  std::array<std::uint64_t, 32> bit_flips{};

  // Provenance tables (over SDCs; keys present only when they occur).
  std::map<std::uint32_t, std::uint64_t> sdc_by_sm;
  std::map<std::uint32_t, std::uint64_t> sdc_by_launch;
  std::map<std::uint8_t, std::uint64_t> sdc_by_fault_bit;

  double mean_words_mismatched() const {
    return with_signature == 0
               ? 0.0
               : static_cast<double>(words_mismatched_sum) /
                     static_cast<double>(with_signature);
  }
  double mean_extent() const {
    return with_signature == 0
               ? 0.0
               : static_cast<double>(extent_sum) / static_cast<double>(with_signature);
  }
};

/// Folds one journal into the anatomy rows, grouping by campaign
/// fingerprint (sibling shards accumulate into the same row).
void accumulate_anatomy(const orchestrator::JournalContents& journal,
                        std::vector<SdcAnatomy>& rows);

/// Reads every journal and builds the grouped anatomy rows. Throws
/// std::runtime_error naming the first unreadable journal.
std::vector<SdcAnatomy> anatomy_from_journals(
    const std::vector<std::filesystem::path>& paths);

/// Human-readable report of one anatomy row (multi-line, trailing newline).
std::string render_anatomy(const SdcAnatomy& a);

}  // namespace gras::analysis
