#include "src/analysis/prune.h"

#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "src/sim/sm.h"

namespace gras::analysis {
namespace {

constexpr std::uint64_t kUntracked = ~std::uint64_t{0};

/// Coarse magnitude bucket of a written register value: zero, narrow
/// (<= 16 significant bits: loop counters, lane ids, small offsets) or wide
/// (addresses, packed floats). Finer bucketing splits classes that fail
/// identically and inflates the representative count past the point where
/// pruning pays for itself; coarser merges sites with genuinely different
/// corruption surfaces. Three levels keeps class counts a small multiple of
/// the static instruction count while the brute-force FR stays inside the
/// pruned CI across the fig01/fig02 suite (abl_pruned_vs_brute).
std::uint8_t value_bucket(std::uint32_t v) {
  if (v == 0) return 0;
  return std::bit_width(v) <= 16 ? 1 : 2;
}

/// FaultHook that mirrors SoftwareInjector's dynamic-instruction counting
/// exactly — one count per active lane of each counting retire, lanes in
/// ascending bit order — while tracking register lifetimes the way
/// AceProfiler does, so each counted site of the target kernel learns
/// whether its value is ever consumed.
class SiteProfiler final : public sim::FaultHook {
 public:
  SiteProfiler(const sim::GpuConfig& config, const campaign::GoldenRun& golden,
               const campaign::CampaignSpec& spec, SiteProfile& out)
      : config_(config),
        loads_(spec.target == campaign::Target::SvfLd),
        out_(out) {
    // Counting-space rows for the target kernel's launches, in launch order
    // (counts are contiguous per launch); `base` is the kernel-relative
    // prefix sum — the same enumeration campaign::sample_site draws from.
    std::uint64_t base = 0;
    std::uint32_t ord = 0;
    for (const auto& l : golden.launches) {
      if (l.kernel != spec.kernel) continue;
      const std::uint64_t begin = loads_ ? l.ld_begin : l.gp_begin;
      const std::uint64_t end = loads_ ? l.ld_end : l.gp_end;
      if (end > begin) rows_.push_back({begin, end, base, ord});
      base += end - begin;
      ++ord;
    }
  }

  void on_issue(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                std::uint32_t exec_mask, std::uint64_t cycle) override {
    (void)cycle;
    const sim::WarpExec& warp = sm.warp(warp_slot);
    const std::uint64_t sm_base = std::uint64_t{sm.sm_id()} * config_.regs_per_sm;
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
      if (!(exec_mask & (1u << lane))) continue;
      for (const isa::Operand* op : {&ins.a, &ins.b, &ins.c}) {
        if (!op->is_gpr() || op->value == isa::kRegRZ) continue;
        const auto it = pending_.find(
            sm_base + sm.rf_cell_index(warp, lane, static_cast<std::uint8_t>(op->value)));
        if (it == pending_.end() || it->second == kUntracked) continue;
        std::uint16_t& r = out_.sites[it->second].readers;
        if (r != 0xffff) ++r;
      }
    }
  }

  void on_gpr_retire(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                     std::uint32_t exec_mask) override {
    const sim::WarpExec& warp = sm.warp(warp_slot);
    const std::uint64_t sm_base = std::uint64_t{sm.sm_id()} * config_.regs_per_sm;
    const bool countable = !loads_ || ins.is_load();
    for (std::uint32_t lane = 0; lane < 32; ++lane) {
      if (!(exec_mask & (1u << lane))) continue;
      const std::uint32_t local = sm.rf_cell_index(warp, lane, ins.dst);
      std::uint64_t site = kUntracked;
      if (countable) {
        const std::uint64_t g = count_++;
        site = target_site(g);
        if (site != kUntracked) {
          SiteInfo& info = out_.sites[site];
          info.pc = warp.pc;
          info.launch_ord = rows_[cursor_].ord;
          info.value_bucket = value_bucket(sm.regfile().read(local));
          info.observed = 1;
          info.readers = 0;
        }
      }
      // Every GPR write — counted or not — opens a new lifetime on its cell,
      // ending whatever site was pending there.
      pending_[sm_base + local] = site;
    }
  }

 private:
  struct Row {
    std::uint64_t begin, end, base;
    std::uint32_t ord;
  };

  /// Kernel-relative site of global counting index `g`, or kUntracked when
  /// the count belongs to another kernel. Counts are monotonic, so a cursor
  /// suffices.
  std::uint64_t target_site(std::uint64_t g) {
    while (cursor_ < rows_.size() && g >= rows_[cursor_].end) ++cursor_;
    if (cursor_ < rows_.size() && g >= rows_[cursor_].begin) {
      return rows_[cursor_].base + (g - rows_[cursor_].begin);
    }
    return kUntracked;
  }

  const sim::GpuConfig& config_;
  const bool loads_;
  SiteProfile& out_;
  std::vector<Row> rows_;
  std::size_t cursor_ = 0;
  std::uint64_t count_ = 0;
  /// RF cell (global across SMs) -> pending tracked site, or kUntracked.
  std::unordered_map<std::uint64_t, std::uint64_t> pending_;
};

}  // namespace

std::uint64_t SiteProfile::observed_sites() const {
  std::uint64_t n = 0;
  for (const SiteInfo& s : sites) n += s.observed;
  return n;
}

SiteProfile profile_sites(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::GoldenRun& golden,
                          const campaign::CampaignSpec& spec) {
  if (!campaign::prunable(spec.target)) {
    throw std::invalid_argument("profile_sites: target must be SVF or SVF-LD");
  }
  SiteProfile profile;
  profile.total_sites = campaign::site_count(golden, spec);
  profile.sites.assign(profile.total_sites, SiteInfo{});
  if (profile.total_sites == 0) return profile;

  SiteProfiler profiler(config, golden, spec, profile);
  sim::Gpu gpu(config);
  gpu.set_fault_hook(&profiler);
  const workloads::RunOutput out = workloads::run_app(app, gpu);
  if (!out.completed()) {
    throw std::runtime_error("profile_sites: fault-free profiled run did not complete");
  }
  if (profile.observed_sites() != profile.total_sites) {
    // A gap here means the profiled instruction stream diverged from the
    // golden enumeration — unusable for derating, since an unobserved site
    // would be misclassified as dead.
    throw std::runtime_error(
        "profile_sites: profiled site stream does not cover the golden enumeration");
  }
  return profile;
}

campaign::PruneClassing classify_sites(const SiteProfile& profile) {
  campaign::PruneClassing out;
  out.total_sites = profile.total_sites;
  out.class_of_site.assign(profile.sites.size(), campaign::PruneClassing::kDeadClass);
  std::unordered_map<std::uint64_t, std::uint32_t> ids;
  for (std::size_t i = 0; i < profile.sites.size(); ++i) {
    const SiteInfo& s = profile.sites[i];
    if (s.observed == 0 || s.readers == 0) continue;  // derated: known Masked
    // Live-site key: (static instruction, value shape, single vs multiple
    // consumers). Launch ordinal is deliberately absent — the same static
    // write in launch 40 of a sweep is the same fault site as in launch 4
    // (temporal symmetry), just as the same write on another SM is
    // (structural symmetry). Folding launches in is what keeps many-launch
    // kernels (NW's diagonal sweep, LUD's panel loop) at tens of classes
    // instead of thousands.
    const std::uint64_t fanout = s.readers >= 2 ? 2 : 1;
    const std::uint64_t key =
        (std::uint64_t{s.pc} << 8) | (std::uint64_t{s.value_bucket} << 2) | fanout;
    const auto [it, inserted] =
        ids.try_emplace(key, static_cast<std::uint32_t>(out.class_population.size()));
    if (inserted) out.class_population.push_back(0);
    out.class_of_site[i] = it->second;
    ++out.class_population[it->second];
  }
  return out;
}

campaign::PruneClassing build_prune_classing(const workloads::App& app,
                                             const sim::GpuConfig& config,
                                             const campaign::GoldenRun& golden,
                                             const campaign::CampaignSpec& spec) {
  return classify_sites(profile_sites(app, config, golden, spec));
}

}  // namespace gras::analysis
