#include "src/analysis/analysis.h"

#include <algorithm>
#include <sstream>

#include "src/isa/disasm.h"

namespace gras::analysis {

TrendCounts count_trends(const std::vector<TrendPoint>& points, double epsilon) {
  TrendCounts counts;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double da = points[i].a - points[j].a;
      const double db = points[i].b - points[j].b;
      const int sa = da > epsilon ? 1 : (da < -epsilon ? -1 : 0);
      const int sb = db > epsilon ? 1 : (db < -epsilon ? -1 : 0);
      if (sa == 0 || sb == 0 || sa == sb) counts.consistent += 1;
      else counts.opposite += 1;
    }
  }
  return counts;
}

const std::vector<std::string>& UtilizationProfile::metric_names() {
  static const std::vector<std::string> kNames = {
      "Occupancy",        "RF Derat. Factor",  "SMEM Derat. Factor",
      "L1D Accesses",     "L1D Miss Rate",     "L1D Misses",
      "L2 Accesses",      "L2 Miss Rate",      "L2 Misses",
      "L2 Pending Hits",  "L2 Reserv. Fails",  "Load Instructions",
      "SMEM Instructions","Store Instructions","Memory Read",
      "Memory Write"};
  return kNames;
}

std::vector<double> UtilizationProfile::values() const {
  return {occupancy,       rf_derating,        smem_derating,      l1d_accesses,
          l1d_miss_rate,   l1d_misses,         l2_accesses,        l2_miss_rate,
          l2_misses,       l2_pending_hits,    l2_reservation_fails,
          load_instructions, smem_instructions, store_instructions,
          memory_read,     memory_write};
}

UtilizationProfile profile_kernel(const campaign::GoldenRun& golden,
                                  const std::string& kernel,
                                  const sim::GpuConfig& config) {
  const sim::SimStats stats = golden.kernel_stats(kernel);
  UtilizationProfile p;
  p.occupancy = stats.occupancy(config.max_warps_per_sm);
  p.rf_derating = metrics::rf_derating(golden, kernel, config);
  p.smem_derating = metrics::smem_derating(golden, kernel, config);
  p.l1d_accesses = static_cast<double>(stats.l1d.accesses);
  p.l1d_miss_rate = stats.l1d.miss_rate();
  p.l1d_misses = static_cast<double>(stats.l1d.misses);
  p.l2_accesses = static_cast<double>(stats.l2.accesses);
  p.l2_miss_rate = stats.l2.miss_rate();
  p.l2_misses = static_cast<double>(stats.l2.misses);
  p.l2_pending_hits = static_cast<double>(stats.l2.pending_hits);
  p.l2_reservation_fails = static_cast<double>(stats.l2.reservation_fails);
  p.load_instructions = static_cast<double>(stats.load_instrs);
  p.smem_instructions = static_cast<double>(stats.smem_instrs);
  p.store_instructions = static_cast<double>(stats.store_instrs);
  p.memory_read = static_cast<double>(stats.dram_read_bytes);
  p.memory_write = static_cast<double>(stats.dram_written_bytes);
  return p;
}

std::vector<std::pair<double, double>> normalize_pair(const std::vector<double>& a,
                                                      const std::vector<double>& b) {
  std::vector<std::pair<double, double>> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double sum = a[i] + b[i];
    if (sum == 0.0) out.emplace_back(0.5, 0.5);
    else out.emplace_back(a[i] / sum, b[i] / sum);
  }
  return out;
}

namespace {

bool reads_reg(const isa::Instr& ins, std::uint8_t reg) {
  const auto uses = [&](const isa::Operand& op) {
    return op.is_gpr() && op.value == reg;
  };
  return uses(ins.a) || uses(ins.b) || uses(ins.c);
}

bool is_control(const isa::Instr& ins) {
  switch (ins.op) {
    case isa::Op::BRA:
    case isa::Op::SSY:
    case isa::Op::SYNC:
    case isa::Op::EXIT:
      return true;
    default:
      return false;
  }
}

}  // namespace

ReuseSite analyze_reuse(const isa::Kernel& kernel, std::size_t index, std::uint8_t reg) {
  ReuseSite site;
  site.instr_index = index;
  site.reg = reg;
  for (std::size_t i = index + 1; i < kernel.code.size(); ++i) {
    const isa::Instr& ins = kernel.code[i];
    if (reads_reg(ins, reg)) site.affected.push_back(i);
    if (ins.writes_gpr() && ins.dst == reg) break;  // rewritten: fault dies
    if (is_control(ins)) break;  // conservative: stop at control flow
  }
  return site;
}

double average_reuse(const isa::Kernel& kernel) {
  std::uint64_t sites = 0, affected = 0;
  for (std::size_t i = 0; i < kernel.code.size(); ++i) {
    const isa::Instr& ins = kernel.code[i];
    if (!ins.writes_gpr()) continue;
    sites += 1;
    affected += analyze_reuse(kernel, i, ins.dst).affected.size();
  }
  return sites == 0 ? 0.0 : static_cast<double>(affected) / static_cast<double>(sites);
}

std::string reuse_listing(const isa::Kernel& kernel, const ReuseSite& site) {
  std::ostringstream out;
  for (std::size_t i = 0; i < kernel.code.size(); ++i) {
    const char* marker = "   ";
    if (i == site.instr_index) marker = "<< ";  // fault origin
    else if (std::find(site.affected.begin(), site.affected.end(), i) !=
             site.affected.end()) {
      marker = " * ";  // affected reader
    }
    out << marker << '#' << i + 1 << "  " << isa::disassemble(kernel.code[i], &kernel)
        << '\n';
  }
  return out.str();
}

}  // namespace gras::analysis
