// ACE (Architecturally Correct Execution) analysis for the register file.
//
// The analytical alternative to statistical fault injection the paper
// mentions in §I (Mukherjee et al., MICRO'03): instead of injecting faults,
// track which bits matter. A register-file cell is ACE from the moment it
// is written until its *last read before the next write*; a flip inside
// that interval changes an actually-consumed value, a flip outside it is
// dead by construction. The ACE-based AVF estimate is
//
//   AVF_ACE(RF) = ACE bit-cycles / (total RF bits x total cycles)
//
// The classic caveat applies — and the ablation bench quantifies it: ACE
// analysis counts every consumed bit as failure-causing, while fault
// injection observes logical, arithmetic and algorithmic masking downstream
// (a flipped bit that is consumed can still leave the output intact), so
// ACE is a conservative upper bound on the injection-measured AVF.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/sim/gpu.h"

namespace gras::analysis {

/// Register-file liveness profiler; attach with Gpu::set_fault_hook and run
/// the workload fault-free.
class AceProfiler final : public sim::FaultHook {
 public:
  explicit AceProfiler(const sim::GpuConfig& config);

  void on_issue(sim::Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                std::uint32_t exec_mask, std::uint64_t cycle) override;

  /// Closes all open lifetime intervals; call once after the run.
  void finalize();

  /// Total ACE bit-cycles accumulated (32 bits per live register-cycle).
  std::uint64_t ace_bit_cycles() const noexcept { return ace_bit_cycles_; }

  /// ACE-based AVF of the register file for a run of `total_cycles`.
  double avf_rf(std::uint64_t total_cycles) const;

  /// Number of write->last-read intervals observed.
  std::uint64_t intervals() const noexcept { return intervals_; }

 private:
  struct Lifetime {
    std::uint64_t write_cycle = 0;
    std::uint64_t last_read_cycle = 0;  // 0 = never read
  };

  void note_read(std::uint64_t cell_key, std::uint64_t cycle);
  void note_write(std::uint64_t cell_key, std::uint64_t cycle);
  void close(const Lifetime& life);

  const sim::GpuConfig& config_;
  std::unordered_map<std::uint64_t, Lifetime> live_;
  std::uint64_t ace_bit_cycles_ = 0;
  std::uint64_t intervals_ = 0;
  bool finalized_ = false;
};

}  // namespace gras::analysis
