#include "src/analysis/anatomy.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace gras::analysis {
namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buf - 1));
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

void accumulate_anatomy(const orchestrator::JournalContents& journal,
                        std::vector<SdcAnatomy>& rows) {
  const std::uint64_t fp = journal.header.fingerprint();
  auto it = std::find_if(rows.begin(), rows.end(), [&](const SdcAnatomy& a) {
    return a.header.fingerprint() == fp;
  });
  if (it == rows.end()) {
    rows.emplace_back();
    it = rows.end() - 1;
    it->header = journal.header;
  }
  SdcAnatomy& a = *it;
  a.journal_version = std::max(a.journal_version, journal.version);
  for (const orchestrator::JournalRecord& r : journal.records) {
    ++a.samples;
    if (r.outcome != fi::Outcome::SDC) continue;
    ++a.sdc;
    ++a.sdc_by_sm[r.fault.sm];
    ++a.sdc_by_launch[r.fault.launch];
    ++a.sdc_by_fault_bit[r.fault.bit];
    if (!r.has_signature) continue;
    ++a.with_signature;
    const workloads::CorruptionSignature& s = r.signature;
    if (s.words_mismatched == 1) ++a.single_word;
    std::uint64_t flips = 0;
    for (unsigned b = 0; b < 32; ++b) {
      a.bit_flips[b] += s.bit_flips[b];
      flips += s.bit_flips[b];
    }
    if (flips == 1) ++a.single_bit;
    a.words_mismatched_sum += s.words_mismatched;
    a.words_mismatched_max = std::max(a.words_mismatched_max, s.words_mismatched);
    a.extent_sum += s.spatial_extent();
    a.extent_max = std::max(a.extent_max, s.spatial_extent());
    if (s.buffers_affected > 1) ++a.multi_buffer;
    a.max_rel_error = std::max(a.max_rel_error, s.max_rel_error);
  }
}

std::vector<SdcAnatomy> anatomy_from_journals(
    const std::vector<std::filesystem::path>& paths) {
  std::vector<SdcAnatomy> rows;
  for (const std::filesystem::path& p : paths) {
    const auto journal = orchestrator::read_journal(p);
    if (!journal) {
      throw std::runtime_error("cannot read journal '" + p.string() + "'");
    }
    accumulate_anatomy(*journal, rows);
  }
  return rows;
}

std::string render_anatomy(const SdcAnatomy& a) {
  std::string out;
  append_fmt(out, "=== %s / %s / %s @ %s ===\n", a.header.app.c_str(),
             a.header.kernel.c_str(), a.header.target.c_str(),
             a.header.config.c_str());
  append_fmt(out, "samples %" PRIu64 "   SDC %" PRIu64 " (%.2f%%)   signatures %" PRIu64 "\n",
             a.samples, a.sdc, pct(a.sdc, a.samples), a.with_signature);
  if (a.journal_version < 2) {
    out += "  (v1 journal: outcomes only, no corruption signatures)\n";
    return out;
  }
  if (a.with_signature == 0) {
    out += "  no SDC signatures to analyze\n";
    return out;
  }
  append_fmt(out,
             "corruption shape: single-word %" PRIu64 " (%.1f%%)   single-bit %" PRIu64
             " (%.1f%%)   multi-buffer %" PRIu64 "\n",
             a.single_word, pct(a.single_word, a.with_signature), a.single_bit,
             pct(a.single_bit, a.with_signature), a.multi_buffer);
  append_fmt(out, "  words corrupted: mean %.2f  max %" PRIu64 "\n",
             a.mean_words_mismatched(), a.words_mismatched_max);
  append_fmt(out, "  spatial extent:  mean %.2f  max %" PRIu64 "\n", a.mean_extent(),
             a.extent_max);
  append_fmt(out, "  max relative error: %.3g\n", a.max_rel_error);
  out += "flipped output bits (position: count):\n ";
  for (int b = 31; b >= 0; --b) {
    if (a.bit_flips[static_cast<unsigned>(b)] == 0) continue;
    append_fmt(out, " %d:%" PRIu64, b, a.bit_flips[static_cast<unsigned>(b)]);
  }
  out += "\n";
  const auto render_map = [&out](const char* title, const auto& map) {
    out += title;
    for (const auto& [key, count] : map) {
      append_fmt(out, " %u:%" PRIu64, static_cast<unsigned>(key), count);
    }
    out += "\n";
  };
  render_map("SDCs by SM:", a.sdc_by_sm);
  render_map("SDCs by launch:", a.sdc_by_launch);
  render_map("SDCs by fault bit:", a.sdc_by_fault_bit);
  return out;
}

}  // namespace gras::analysis
