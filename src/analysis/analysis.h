// Cross-layer analysis utilities:
//  * pairwise trend comparison between two vulnerability metrics (Table I),
//  * the fault-free resource-utilization profile and normalized pair
//    comparison (Fig. 3),
//  * the register-reuse analyzer (Fig. 12 / §V-B).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/isa/isa.h"
#include "src/metrics/metrics.h"

namespace gras::analysis {

/// One (name, metric-A, metric-B) observation, e.g. (app, AVF, SVF).
struct TrendPoint {
  std::string name;
  double a = 0.0;
  double b = 0.0;
};

/// Pairwise trend comparison: for every unordered pair of points, the trend
/// is consistent when sign(a_i - a_j) == sign(b_i - b_j) (ties count as
/// consistent), opposite otherwise — the Table I methodology.
struct TrendCounts {
  std::uint64_t consistent = 0;
  std::uint64_t opposite = 0;
  std::uint64_t total() const { return consistent + opposite; }
  double opposite_share() const {
    return total() == 0 ? 0.0 : static_cast<double>(opposite) / static_cast<double>(total());
  }
};

TrendCounts count_trends(const std::vector<TrendPoint>& points, double epsilon = 1e-12);

/// The Fig. 3 resource-utilization metrics of one kernel, derived from the
/// golden run's per-launch statistics.
struct UtilizationProfile {
  double occupancy = 0.0;
  double rf_derating = 0.0;
  double smem_derating = 0.0;
  double l1d_accesses = 0.0;
  double l1d_miss_rate = 0.0;
  double l1d_misses = 0.0;
  double l2_accesses = 0.0;
  double l2_miss_rate = 0.0;
  double l2_misses = 0.0;
  double l2_pending_hits = 0.0;
  double l2_reservation_fails = 0.0;
  double load_instructions = 0.0;
  double smem_instructions = 0.0;
  double store_instructions = 0.0;
  double memory_read = 0.0;   ///< DRAM bytes read
  double memory_write = 0.0;  ///< DRAM bytes written

  /// Metric names in the paper's Fig. 3 x-axis order.
  static const std::vector<std::string>& metric_names();
  /// Metric values in the same order.
  std::vector<double> values() const;
};

UtilizationProfile profile_kernel(const campaign::GoldenRun& golden,
                                  const std::string& kernel,
                                  const sim::GpuConfig& config);

/// Normalizes two kernels' metric vectors pairwise:
/// norm_a = a / (a + b), norm_b = b / (a + b) (50/50 when both are zero) —
/// the Fig. 3 presentation.
std::vector<std::pair<double, double>> normalize_pair(const std::vector<double>& a,
                                                      const std::vector<double>& b);

/// Register-reuse analysis (paper Fig. 12): for a register written (or read)
/// at one instruction, which later instructions read it before it is
/// rewritten? The analysis walks the static code in fall-through order
/// (branch targets are treated as barriers ending the walk), which is exact
/// for straight-line SASS like the paper's example.
struct ReuseSite {
  std::size_t instr_index;     ///< the faulted instruction
  std::uint8_t reg;            ///< the register under study
  std::vector<std::size_t> affected;  ///< later readers before the next write
};

/// Readers of `reg` after instruction `index` until the next write of `reg`
/// or a control-flow transfer.
ReuseSite analyze_reuse(const isa::Kernel& kernel, std::size_t index, std::uint8_t reg);

/// Average number of affected readers over every (instruction, destination
/// register) site of the kernel — how much a one-instruction fault model
/// underestimates the fault's reach.
double average_reuse(const isa::Kernel& kernel);

/// Renders the Fig. 12-style annotated listing for one site.
std::string reuse_listing(const isa::Kernel& kernel, const ReuseSite& site);

}  // namespace gras::analysis
