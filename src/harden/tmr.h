// Thread-level Triple Modular Redundancy (paper §IV, Fig. 6).
//
// The transform wraps any workloads::App:
//  1) Pre-processing: every device buffer is triplicated (three copies at a
//     uniform stride inside one allocation; inputs replicated).
//  2) Kernel execution: every launch's grid gains z = 3 — the same work runs
//     three times in parallel. Each kernel receives an injected prologue
//     that reads the copy index from CTAID.Z and re-bases every pointer
//     parameter by copy * stride, so each copy computes on its own buffers.
//  3) Post-processing: the host majority-votes the three output copies
//     word-wise. A word on which all three copies disagree is an
//     unrecoverable error (DUE).
//
// Faithful to the paper's workflow, voting happens ONLY at post-processing:
// intermediate host-visible reads (BFS's convergence flag, reduction
// results fed back as kernel parameters) read copy 0, because the host code
// itself is not triplicated. This single-copy host path is precisely the
// common-mode channel through which some SDCs survive TMR in the paper's
// cross-layer (AVF) measurements (§IV-B): a corrupted copy-0 reduction
// result becomes a kernel parameter for all three copies, so all three
// outputs are identically wrong and the vote cannot catch it. Host writes
// still fan out to all three copies (they are pre-processing).
//
// The hardened app exposes the same kernel names, so unhardened and
// hardened campaigns are directly comparable (paper Figs. 7-10).
#pragma once

#include <memory>

#include "src/isa/isa.h"
#include "src/workloads/workload.h"

namespace gras::harden {

/// Rewrites one kernel for TMR: prologue computing per-copy pointer bases
/// (copy = CTAID.Z) and pointer-parameter operands redirected to the
/// re-based registers. Exposed for tests.
/// Throws std::runtime_error if the kernel runs out of registers.
isa::Kernel tmr_transform(const isa::Kernel& kernel, std::uint32_t copy_stride);

/// TMR-hardened view of an application. The base app must outlive this
/// wrapper.
class TmrApp final : public workloads::App {
 public:
  explicit TmrApp(const workloads::App& base);

  const std::string& name() const override { return name_; }
  const std::vector<workloads::BufferSpec>& buffers() const override { return buffers_; }
  const std::vector<isa::Kernel>& kernels() const override { return kernels_; }
  void execute(workloads::ExecCtx& ctx) const override;
  workloads::RunOutput postprocess(workloads::RunOutput raw) const override;

  std::uint32_t copy_stride() const { return stride_; }

 private:
  const workloads::App& base_;
  std::string name_;
  std::uint32_t stride_ = 0;  ///< uniform per-copy byte stride
  std::vector<workloads::BufferSpec> buffers_;
  std::vector<isa::Kernel> kernels_;
};

/// Convenience factory.
std::unique_ptr<TmrApp> harden(const workloads::App& base);

}  // namespace gras::harden
