#include "src/harden/dmr.h"

#include <cstring>
#include <stdexcept>

#include "src/harden/tmr.h"

namespace gras::harden {
namespace {

constexpr std::uint32_t kCopies = 2;

std::uint32_t round16(std::uint64_t bytes) {
  return static_cast<std::uint32_t>((bytes + 15) & ~std::uint64_t{15});
}

/// ExecCtx adapter: duplicate grids, copy-0 host reads, fan-out writes.
class DmrCtx final : public workloads::ExecCtx {
 public:
  DmrCtx(workloads::ExecCtx& inner, const DmrApp& app) : inner_(inner), app_(app) {}

  std::uint32_t addr(std::string_view buffer) override { return inner_.addr(buffer); }

  bool launch(const isa::Kernel& kernel, sim::Dim3 grid, sim::Dim3 block,
              std::vector<std::uint32_t> params) override {
    if (grid.z != 1) {
      throw std::invalid_argument("DMR requires grid.z == 1 in the base app");
    }
    grid.z = kCopies;
    return inner_.launch(app_.kernel(kernel.name), grid, block, std::move(params));
  }

  std::uint32_t read_u32(std::string_view buffer, std::uint64_t off) override {
    return inner_.read_u32(buffer, off);  // copy 0: host logic not duplicated
  }
  void write_u32(std::string_view buffer, std::uint64_t off, std::uint32_t value) override {
    inner_.write_u32(buffer, off, value);
    inner_.write_u32(buffer, off + app_.copy_stride(), value);
  }
  void read_bytes(std::string_view buffer, std::uint64_t off,
                  std::span<std::uint8_t> out) override {
    inner_.read_bytes(buffer, off, out);
  }
  void write_bytes(std::string_view buffer, std::uint64_t off,
                   std::span<const std::uint8_t> in) override {
    inner_.write_bytes(buffer, off, in);
    inner_.write_bytes(buffer, off + app_.copy_stride(), in);
  }
  void mark_timeout() override { inner_.mark_timeout(); }
  void mark_host_error() override { inner_.mark_host_error(); }
  bool aborted() const override { return inner_.aborted(); }

 private:
  workloads::ExecCtx& inner_;
  const DmrApp& app_;
};

}  // namespace

DmrApp::DmrApp(const workloads::App& base) : base_(base), name_(base.name() + "_dmr") {
  for (const workloads::BufferSpec& spec : base.buffers()) {
    stride_ = std::max(stride_, round16(spec.bytes));
  }
  for (const workloads::BufferSpec& spec : base.buffers()) {
    workloads::BufferSpec doubled;
    doubled.name = spec.name;
    doubled.role = spec.role;
    doubled.bytes = std::uint64_t{stride_} * kCopies;
    if (!spec.host_init.empty()) {
      doubled.host_init.assign(doubled.bytes, 0);
      for (std::uint32_t c = 0; c < kCopies; ++c) {
        std::memcpy(doubled.host_init.data() + std::uint64_t{c} * stride_,
                    spec.host_init.data(), spec.host_init.size());
      }
    }
    buffers_.push_back(std::move(doubled));
  }
  // The pointer-rebasing prologue is copy-count agnostic (copy = CTAID.Z).
  for (const isa::Kernel& k : base.kernels()) {
    kernels_.push_back(tmr_transform(k, stride_));
  }
}

void DmrApp::execute(workloads::ExecCtx& ctx) const {
  DmrCtx dmr_ctx(ctx, *this);
  base_.execute(dmr_ctx);
}

workloads::RunOutput DmrApp::postprocess(workloads::RunOutput raw) const {
  if (!raw.completed()) return raw;
  workloads::RunOutput checked;
  checked.trap = raw.trap;
  std::size_t out_index = 0;
  for (const workloads::BufferSpec& spec : base_.buffers()) {
    if (!spec.is_output()) continue;
    const std::vector<std::uint8_t>& doubled = raw.outputs.at(out_index++);
    // Detection: the copies must agree byte for byte.
    if (std::memcmp(doubled.data(), doubled.data() + stride_, spec.bytes) != 0) {
      checked.trap = sim::TrapKind::HostCheck;
      checked.outputs.clear();
      return checked;
    }
    checked.outputs.emplace_back(doubled.begin(),
                                 doubled.begin() + static_cast<std::ptrdiff_t>(spec.bytes));
  }
  return checked;
}

std::unique_ptr<DmrApp> harden_dmr(const workloads::App& base) {
  return std::make_unique<DmrApp>(base);
}

}  // namespace gras::harden
