// Dual Modular Redundancy: detection-only duplication.
//
// The cheaper sibling of the paper's TMR case study (§IV), matching the
// duplication-based schemes its related work discusses (e.g. instruction
// duplication): every buffer is duplicated, every launch runs twice in
// parallel (grid.z = 2, same pointer-rebasing prologue as TMR), and
// post-processing *compares* the two output copies word-wise. A mismatch is
// detected but cannot be corrected: it becomes a DUE.
//
// Expected behaviour vs TMR: DMR converts SDCs into DUEs at ~2/3 of TMR's
// execution cost; TMR converts them into masked outcomes at full cost. Both
// share the non-triplicated host path as a common-mode escape
// (intermediate host reads see copy 0).
#pragma once

#include <memory>

#include "src/workloads/workload.h"

namespace gras::harden {

class DmrApp final : public workloads::App {
 public:
  explicit DmrApp(const workloads::App& base);

  const std::string& name() const override { return name_; }
  const std::vector<workloads::BufferSpec>& buffers() const override { return buffers_; }
  const std::vector<isa::Kernel>& kernels() const override { return kernels_; }
  void execute(workloads::ExecCtx& ctx) const override;
  workloads::RunOutput postprocess(workloads::RunOutput raw) const override;

  std::uint32_t copy_stride() const { return stride_; }

 private:
  const workloads::App& base_;
  std::string name_;
  std::uint32_t stride_ = 0;
  std::vector<workloads::BufferSpec> buffers_;
  std::vector<isa::Kernel> kernels_;
};

std::unique_ptr<DmrApp> harden_dmr(const workloads::App& base);

}  // namespace gras::harden
