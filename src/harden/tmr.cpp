#include "src/harden/tmr.h"

#include <cstring>
#include <stdexcept>

namespace gras::harden {

using isa::Instr;
using isa::Kernel;
using isa::Op;
using isa::Operand;
using isa::OperandKind;

namespace {

constexpr std::uint32_t kCopies = 3;

std::uint32_t round16(std::uint64_t bytes) {
  return static_cast<std::uint32_t>((bytes + 15) & ~std::uint64_t{15});
}

/// Word-wise 2-of-3 majority vote; returns false if any word has no
/// majority.
bool vote_words(const std::uint8_t* c0, const std::uint8_t* c1, const std::uint8_t* c2,
                std::uint8_t* out, std::size_t bytes) {
  bool ok = true;
  std::size_t i = 0;
  for (; i + 4 <= bytes; i += 4) {
    std::uint32_t a, b, c;
    std::memcpy(&a, c0 + i, 4);
    std::memcpy(&b, c1 + i, 4);
    std::memcpy(&c, c2 + i, 4);
    std::uint32_t v = a;
    if (a == b || a == c) v = a;
    else if (b == c) v = b;
    else ok = false;
    std::memcpy(out + i, &v, 4);
  }
  for (; i < bytes; ++i) {
    const std::uint8_t a = c0[i], b = c1[i], c = c2[i];
    std::uint8_t v = a;
    if (a == b || a == c) v = a;
    else if (b == c) v = b;
    else ok = false;
    out[i] = v;
  }
  return ok;
}

/// ExecCtx adapter implementing the TMR pre/post-processing around the base
/// app's host logic.
class TmrCtx final : public workloads::ExecCtx {
 public:
  TmrCtx(workloads::ExecCtx& inner, const TmrApp& app) : inner_(inner), app_(app) {}

  std::uint32_t addr(std::string_view buffer) override { return inner_.addr(buffer); }

  bool launch(const isa::Kernel& kernel, sim::Dim3 grid, sim::Dim3 block,
              std::vector<std::uint32_t> params) override {
    if (grid.z != 1) {
      throw std::invalid_argument("TMR requires grid.z == 1 in the base app");
    }
    // Swap in the hardened kernel of the same name and triplicate the grid.
    grid.z = kCopies;
    return inner_.launch(app_.kernel(kernel.name), grid, block, std::move(params));
  }

  std::uint32_t read_u32(std::string_view buffer, std::uint64_t off) override {
    // Host logic is not triplicated: intermediate reads see copy 0 only
    // (voting happens at post-processing, per the paper's Fig. 6).
    return inner_.read_u32(buffer, off);
  }

  void write_u32(std::string_view buffer, std::uint64_t off, std::uint32_t value) override {
    const std::uint32_t s = app_.copy_stride();
    inner_.write_u32(buffer, off, value);
    inner_.write_u32(buffer, off + s, value);
    inner_.write_u32(buffer, off + 2ull * s, value);
  }

  void read_bytes(std::string_view buffer, std::uint64_t off,
                  std::span<std::uint8_t> out) override {
    inner_.read_bytes(buffer, off, out);  // copy 0; see read_u32
  }

  void write_bytes(std::string_view buffer, std::uint64_t off,
                   std::span<const std::uint8_t> in) override {
    const std::uint32_t s = app_.copy_stride();
    inner_.write_bytes(buffer, off, in);
    inner_.write_bytes(buffer, off + s, in);
    inner_.write_bytes(buffer, off + 2ull * s, in);
  }

  void mark_timeout() override { inner_.mark_timeout(); }
  void mark_host_error() override { inner_.mark_host_error(); }
  bool aborted() const override { return inner_.aborted(); }

 private:
  workloads::ExecCtx& inner_;
  const TmrApp& app_;
};

}  // namespace

Kernel tmr_transform(const Kernel& kernel, std::uint32_t copy_stride) {
  Kernel out;
  out.name = kernel.name;
  out.params = kernel.params;
  out.smem_bytes = kernel.smem_bytes;

  // Registers for the copy index and one re-based pointer per pointer param.
  std::uint8_t next_reg = kernel.num_regs;
  const std::uint8_t copy_reg = next_reg++;
  std::vector<std::pair<std::uint32_t, std::uint8_t>> rebased;  // param offset -> reg
  for (const isa::ParamDecl& p : kernel.params) {
    if (p.is_pointer) rebased.emplace_back(p.byte_offset, next_reg++);
  }
  if (next_reg >= isa::kRegRZ) {
    throw std::runtime_error("TMR transform of '" + kernel.name +
                             "' exceeds the register file");
  }

  // Prologue: copy = CTAID.Z; Rp = param + copy * stride for each pointer.
  Instr s2r;
  s2r.op = Op::S2R;
  s2r.dst = copy_reg;
  s2r.b = Operand::imm(static_cast<std::uint32_t>(isa::SpecialReg::CTAID_Z));
  out.code.push_back(s2r);
  for (const auto& [offset, reg] : rebased) {
    Instr mov;
    mov.op = Op::MOV;
    mov.dst = reg;
    mov.a = Operand::param(offset);
    out.code.push_back(mov);
    Instr imad;
    imad.op = Op::IMAD;
    imad.dst = reg;
    imad.a = Operand::gpr(copy_reg);
    imad.b = Operand::imm(copy_stride);
    imad.c = Operand::gpr(reg);
    out.code.push_back(imad);
  }
  const std::uint32_t shift = static_cast<std::uint32_t>(out.code.size());

  // Body: pointer-param operands become re-based registers; branch targets
  // shift by the prologue length.
  for (Instr ins : kernel.code) {
    auto rewrite = [&](Operand& op) {
      if (op.kind != OperandKind::Param) return;
      for (const auto& [offset, reg] : rebased) {
        if (op.value == offset) {
          op = Operand::gpr(reg);
          return;
        }
      }
    };
    rewrite(ins.a);
    rewrite(ins.b);
    rewrite(ins.c);
    if (ins.op == Op::BRA || ins.op == Op::SSY) ins.target += shift;
    out.code.push_back(ins);
  }
  out.recount_registers();
  return out;
}

TmrApp::TmrApp(const workloads::App& base) : base_(base), name_(base.name() + "_tmr") {
  // Uniform per-copy stride: the largest buffer decides, so one prologue
  // constant re-bases every pointer parameter correctly.
  for (const workloads::BufferSpec& spec : base.buffers()) {
    stride_ = std::max(stride_, round16(spec.bytes));
  }
  for (const workloads::BufferSpec& spec : base.buffers()) {
    workloads::BufferSpec tripled;
    tripled.name = spec.name;
    tripled.role = spec.role;
    tripled.bytes = std::uint64_t{stride_} * kCopies;
    if (!spec.host_init.empty()) {
      tripled.host_init.assign(tripled.bytes, 0);
      for (std::uint32_t c = 0; c < kCopies; ++c) {
        std::memcpy(tripled.host_init.data() + std::uint64_t{c} * stride_,
                    spec.host_init.data(), spec.host_init.size());
      }
    }
    buffers_.push_back(std::move(tripled));
  }
  for (const isa::Kernel& k : base.kernels()) {
    kernels_.push_back(tmr_transform(k, stride_));
  }
}

void TmrApp::execute(workloads::ExecCtx& ctx) const {
  TmrCtx tmr_ctx(ctx, *this);
  base_.execute(tmr_ctx);
}

workloads::RunOutput TmrApp::postprocess(workloads::RunOutput raw) const {
  if (!raw.completed()) return raw;
  workloads::RunOutput voted;
  voted.trap = raw.trap;
  std::size_t out_index = 0;
  for (const workloads::BufferSpec& spec : base_.buffers()) {
    if (!spec.is_output()) continue;
    const std::vector<std::uint8_t>& tripled = raw.outputs.at(out_index++);
    std::vector<std::uint8_t> result(spec.bytes);
    const bool ok = vote_words(tripled.data(), tripled.data() + stride_,
                               tripled.data() + 2ull * stride_, result.data(), spec.bytes);
    if (!ok) {
      voted.trap = sim::TrapKind::HostCheck;  // three different copies -> DUE
      voted.outputs.clear();
      return voted;
    }
    voted.outputs.push_back(std::move(result));
  }
  return voted;
}

std::unique_ptr<TmrApp> harden(const workloads::App& base) {
  return std::make_unique<TmrApp>(base);
}

}  // namespace gras::harden
