// Lease bookkeeping of the campaign coordinator (DESIGN.md §13).
//
// The coordinator owns the campaign's sample index space [0, total) and
// hands it out as contiguous leased ranges. A lease is a promise with a
// deadline: the worker must either deliver records or heartbeat before the
// TTL elapses, or the lease expires and its undelivered indices return to
// the pending pool for reassignment. Because samples are deterministic in
// (seed, index), reassignment is always safe — the replacement worker
// produces bit-identical records.
//
// Exactly-once is enforced per index, not per lease: each active lease
// tracks which of its indices have been received, duplicate deliveries are
// flagged, and deliveries against an expired or unknown lease (a zombie
// worker that missed its expiry) are rejected outright. The companion
// InOrderCommitter buffers accepted records and releases them in strict
// index order, so the coordinator's journal is always a contiguous prefix
// of the campaign — exactly what a crashed coordinator needs to resume.
//
// Time is injected (`Clock`), so the grant → heartbeat → expiry →
// reassignment → zombie-discard state machine is testable without sleeping.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/orchestrator/journal.h"

namespace gras::fabric {

/// Seconds on an arbitrary monotonic epoch; empty = real steady clock.
using Clock = std::function<double()>;

/// Lease table over sample indices [0, total). Not thread-safe: the
/// coordinator serializes access under its own mutex.
class LeaseTable {
 public:
  /// `lease_len` is the range size of a fresh grant; `ttl_sec` the silence
  /// budget before a lease expires (heartbeats and deliveries both renew).
  LeaseTable(std::uint64_t total, std::uint64_t lease_len, double ttl_sec,
             Clock now = {});

  /// Marks [0, n) as already delivered (journal replay on coordinator
  /// resume). Must be called before the first grant.
  void mark_done_prefix(std::uint64_t n);

  /// Marks one index as already delivered — replayed journals written by a
  /// streaming single-process run can hold an out-of-order tail beyond the
  /// contiguous prefix. Must be called before the first grant; marking an
  /// index twice is a no-op.
  void mark_done(std::uint64_t index);

  struct Grant {
    std::uint64_t lease_id = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  ///< begin == end: nothing to lease right now
  };
  /// Leases the lowest pending range (up to lease_len indices) to `worker`.
  Grant grant(const std::string& worker);

  /// Renews a lease's deadline. False when the lease is unknown/expired —
  /// the worker should drop the range and request a fresh lease.
  bool heartbeat(std::uint64_t lease_id);

  enum class Verdict : std::uint8_t {
    Fresh,      ///< first delivery of this index; commit it
    Duplicate,  ///< already delivered under this lease; drop it
    Stale,      ///< unknown/expired lease (zombie worker); drop it
  };
  /// Judges the delivery of `index` under `lease_id` and records it when
  /// Fresh. A Fresh delivery also renews the lease deadline.
  Verdict accept(std::uint64_t lease_id, std::uint64_t index);

  /// Retires a fully-delivered lease. Undelivered indices (a worker
  /// claiming done early, e.g. after a lost Records frame) return to the
  /// pending pool. False when the lease is unknown.
  bool complete(std::uint64_t lease_id);

  /// Expires every lease whose deadline has passed, returning undelivered
  /// indices to the pending pool. Returns the expired lease ids.
  std::vector<std::uint64_t> expire();

  /// Expires all leases of `worker` immediately (its connection died).
  void release_worker(const std::string& worker);

  /// Indices delivered (including the resume prefix).
  std::uint64_t delivered() const { return delivered_; }
  /// True when every index in [0, total) has been delivered.
  bool all_done() const { return delivered_ == total_; }
  /// Indices currently under an active lease of `worker`.
  std::uint64_t leased_to(const std::string& worker) const;
  /// Active lease count (tests/diagnostics).
  std::size_t active() const { return leases_.size(); }

 private:
  struct Lease {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::vector<bool> got;       ///< per-index delivery bitmap
    std::uint64_t remaining = 0; ///< indices not yet delivered
    double deadline = 0.0;
    std::string worker;
  };

  void requeue_undelivered(const Lease& lease);

  std::uint64_t total_;
  std::uint64_t lease_len_;
  double ttl_sec_;
  Clock now_;
  std::uint64_t next_id_ = 1;
  std::uint64_t delivered_ = 0;
  bool granted_any_ = false;
  /// Pending ranges, begin -> end, disjoint and non-adjacent by invariant.
  std::map<std::uint64_t, std::uint64_t> pending_;
  std::map<std::uint64_t, Lease> leases_;  ///< lease_id -> state
};

/// Reorders accepted records into strict index order. add() buffers one
/// record (dropping duplicates); next() releases the contiguous prefix one
/// record at a time. The coordinator appends exactly what next() yields, so
/// its journal is always a gapless prefix [0, committed()).
class InOrderCommitter {
 public:
  explicit InOrderCommitter(std::uint64_t next_index = 0) : next_(next_index) {}

  /// False when `r.index` was already committed or is already buffered.
  bool add(const orchestrator::JournalRecord& r);
  /// The next in-order record, if its index has arrived.
  std::optional<orchestrator::JournalRecord> next();
  /// Index of the next record to commit == records committed so far when
  /// starting from 0.
  std::uint64_t committed() const { return next_; }
  /// Records buffered out of order, waiting for a gap to fill.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::uint64_t next_;
  std::map<std::uint64_t, orchestrator::JournalRecord> buffer_;
};

}  // namespace gras::fabric
