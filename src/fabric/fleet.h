// Fleet observability: the coordinator's live per-worker telemetry table.
//
// Workers piggyback StatsMsg frames (absolute flat_snapshot() values plus a
// cumulative executed-samples count) on their heartbeat cadence; the
// coordinator folds them into a FleetTracker keyed by connection. The
// tracker answers "who is alive, how fast, and how far" — per-worker
// windowed throughput, heartbeat age, staleness — and FleetStatus bundles
// that table with the campaign-level aggregates (committed, outcome counts,
// failure-rate CI) for two consumers: the StatusReply wire frame behind
// `gras fleet`, and the gras_fleet_* families on /metrics.
//
// Everything here is strictly out-of-band: the tracker never feeds leasing,
// commit order, or early stop, so the fabric's bit-identity contract is
// untouched whether stats arrive, arrive late, or never arrive at all
// (stats-free v1 workers simply show zero throughput).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/fabric/lease.h"
#include "src/fabric/wire.h"

namespace gras::fabric {

/// One row of the fleet table: coordinator-side truth (completed, leased,
/// connected) merged with the worker's last self-report.
struct WorkerStatus {
  std::string name;
  bool connected = false;
  bool stale = false;  ///< connected but no frame within the stale budget
  std::uint64_t completed = 0;  ///< records accepted by the coordinator
  std::uint64_t leased = 0;     ///< indices currently under lease
  std::uint64_t lease_id = 0;   ///< active lease per last report (0 = idle)
  std::uint64_t executed = 0;   ///< worker-reported samples executed
  double samples_per_sec = 0.0;  ///< windowed throughput from stats reports
  double heartbeat_age_sec = 0.0;  ///< seconds since the last frame
  /// Folded registry values from the worker's StatsMsg deltas (absolute).
  std::vector<std::pair<std::string, std::int64_t>> stats;
};

/// Fleet aggregates + per-worker table, as served by StatusReply.
struct FleetStatus {
  std::string app, kernel, config, target;
  std::uint64_t samples = 0;    ///< campaign size
  std::uint64_t committed = 0;  ///< contiguous journal prefix
  std::uint64_t executed = 0;   ///< fresh executions this coordinator run
  std::uint64_t replayed = 0;   ///< resumed from the journal on startup
  std::uint64_t masked = 0, sdc = 0, timeout = 0, due = 0;
  double fr = 0.0, fr_lo = 0.0, fr_hi = 0.0;  ///< failure rate + CI bounds
  double samples_per_sec = 0.0;  ///< fleet-wide commit throughput
  double eta_sec = 0.0;          ///< remaining / throughput (0 = unknown)
  bool early_stopped = false;
  std::vector<WorkerStatus> workers;

  std::uint64_t workers_connected() const;
  std::uint64_t workers_stale() const;
  /// Sum of connected workers' reported throughput (can disagree with
  /// samples_per_sec: workers report executions, the fleet rate commits).
  double workers_samples_per_sec() const;
};

/// Per-connection telemetry fold. Not thread-safe: the coordinator calls it
/// under the same mutex that guards its connection table.
class FleetTracker {
 public:
  /// `stale_after_sec`: a connected worker with no frame for this long is
  /// flagged stale (the lease TTL is the natural choice). `window_sec`
  /// bounds the throughput window: the rate is Δexecuted/Δt over the stats
  /// points retained within the window (≥ 2 points needed).
  explicit FleetTracker(double stale_after_sec, Clock now = {},
                        double window_sec = 30.0);

  /// Any frame from `key` proves liveness and resets its heartbeat age.
  void touch(const std::string& key);
  /// Folds one stats report: entries overwrite by name, `executed` extends
  /// the throughput series.
  void on_stats(const std::string& key, const StatsMsg& m);
  void forget(const std::string& key);

  /// Telemetry-only row for `key` (name/connected/completed/leased are the
  /// coordinator's to fill in). Unknown keys yield a default row.
  WorkerStatus row(const std::string& key) const;

 private:
  struct Entry {
    double last_seen = 0.0;
    std::uint64_t lease_id = 0;
    std::uint64_t executed = 0;
    std::map<std::string, std::int64_t> stats;
    std::deque<std::pair<double, std::uint64_t>> points;  ///< (time, executed)
  };

  double now() const;

  double stale_after_sec_;
  double window_sec_;
  Clock clock_;
  std::map<std::string, Entry> entries_;
};

/// `gras fleet` renderings of a FleetStatus: a human table (src/common/table)
/// and one JSON object per line for scripts. Worker names are sanitized to
/// [A-Za-z0-9._-] in JSON, like JsonlProgress does.
std::string render_fleet_table(const FleetStatus& s);
std::string fleet_status_json(const FleetStatus& s);

/// The gras_fleet_* exposition families served on the coordinator's
/// /metrics endpoint, next to promtext::render_registry's output: campaign
/// aggregates plus per-worker throughput/executed/heartbeat-age samples
/// labeled {worker="<name>"}.
std::string render_fleet_promtext(const FleetStatus& s);

}  // namespace gras::fabric
