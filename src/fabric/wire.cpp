#include "src/fabric/wire.h"

#include "src/fabric/fleet.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gras::fabric {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint32_t payload_checksum(const std::string& payload) {
  return static_cast<std::uint32_t>(fnv1a(payload.data(), payload.size()));
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_f64(std::string& out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  bool get_u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool get_f64(double& v) {
    if (bytes_.size() - pos_ < 8) return false;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool get_str(std::string& s) {
    std::uint32_t n = 0;
    if (!get_u32(n) || bytes_.size() - pos_ < n) return false;
    s.assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool get_raw(const char*& p, std::size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    p = bytes_.data() + pos_;
    pos_ += n;
    return true;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "hello";
    case MsgType::Welcome: return "welcome";
    case MsgType::Reject: return "reject";
    case MsgType::LeaseRequest: return "lease-request";
    case MsgType::LeaseGrant: return "lease-grant";
    case MsgType::Records: return "records";
    case MsgType::LeaseDone: return "lease-done";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::Stop: return "stop";
    case MsgType::Stats: return "stats";
    case MsgType::Status: return "status";
    case MsgType::StatusReply: return "status-reply";
  }
  return "unknown";
}

std::string encode_hello(const HelloMsg& m) {
  std::string out;
  put_u32(out, m.protocol);
  put_str(out, m.name);
  return out;
}

bool decode_hello(const std::string& payload, HelloMsg& m) {
  Cursor c(payload);
  return c.get_u32(m.protocol) && c.get_str(m.name) && c.done();
}

std::string encode_welcome(const WelcomeMsg& m) {
  std::string out;
  put_u32(out, m.protocol);
  put_u32(out, m.journal_version);
  put_u32(out, m.record_bytes);
  put_u64(out, m.fingerprint);
  put_str(out, m.app);
  put_str(out, m.kernel);
  put_str(out, m.config);
  put_str(out, m.target);
  put_u64(out, m.samples);
  put_u64(out, m.seed);
  put_f64(out, m.margin);
  put_f64(out, m.confidence);
  put_u64(out, m.chunk);
  put_u64(out, m.batch);
  put_f64(out, m.heartbeat_sec);
  put_f64(out, m.lease_ttl_sec);
  return out;
}

bool decode_welcome(const std::string& payload, WelcomeMsg& m) {
  Cursor c(payload);
  return c.get_u32(m.protocol) && c.get_u32(m.journal_version) &&
         c.get_u32(m.record_bytes) && c.get_u64(m.fingerprint) &&
         c.get_str(m.app) && c.get_str(m.kernel) && c.get_str(m.config) &&
         c.get_str(m.target) && c.get_u64(m.samples) && c.get_u64(m.seed) &&
         c.get_f64(m.margin) && c.get_f64(m.confidence) && c.get_u64(m.chunk) &&
         c.get_u64(m.batch) && c.get_f64(m.heartbeat_sec) &&
         c.get_f64(m.lease_ttl_sec) && c.done();
}

std::string encode_reject(const RejectMsg& m) {
  std::string out;
  put_str(out, m.reason);
  return out;
}

bool decode_reject(const std::string& payload, RejectMsg& m) {
  Cursor c(payload);
  return c.get_str(m.reason) && c.done();
}

std::string encode_lease_grant(const LeaseGrantMsg& m) {
  std::string out;
  put_u64(out, m.lease_id);
  put_u64(out, m.begin);
  put_u64(out, m.end);
  return out;
}

bool decode_lease_grant(const std::string& payload, LeaseGrantMsg& m) {
  Cursor c(payload);
  return c.get_u64(m.lease_id) && c.get_u64(m.begin) && c.get_u64(m.end) &&
         c.done();
}

std::string encode_records(const RecordsMsg& m) {
  std::string out;
  put_u64(out, m.lease_id);
  put_u32(out, static_cast<std::uint32_t>(m.records.size()));
  char buf[orchestrator::kRecordBytes];
  for (const orchestrator::JournalRecord& r : m.records) {
    orchestrator::encode_record(r, buf);
    out.append(buf, sizeof buf);
  }
  return out;
}

bool decode_records(const std::string& payload, RecordsMsg& m) {
  Cursor c(payload);
  std::uint32_t count = 0;
  if (!c.get_u64(m.lease_id) || !c.get_u32(count)) return false;
  m.records.clear();
  m.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* bytes = nullptr;
    orchestrator::JournalRecord r;
    // decode_record re-validates the per-record checksum: a record that was
    // damaged between the worker's journal codec and this socket is caught
    // here even though the frame checksum already passed.
    if (!c.get_raw(bytes, orchestrator::kRecordBytes) ||
        !orchestrator::decode_record(bytes, r)) {
      return false;
    }
    m.records.push_back(r);
  }
  return c.done();
}

std::string encode_lease_done(const LeaseDoneMsg& m) {
  std::string out;
  put_u64(out, m.lease_id);
  return out;
}

bool decode_lease_done(const std::string& payload, LeaseDoneMsg& m) {
  Cursor c(payload);
  return c.get_u64(m.lease_id) && c.done();
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  std::string out;
  put_u64(out, m.lease_id);
  return out;
}

bool decode_heartbeat(const std::string& payload, HeartbeatMsg& m) {
  Cursor c(payload);
  return c.get_u64(m.lease_id) && c.done();
}

namespace {

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_entries(std::string& out,
                 const std::vector<std::pair<std::string, std::int64_t>>& e) {
  put_u32(out, static_cast<std::uint32_t>(e.size()));
  for (const auto& [name, value] : e) {
    put_str(out, name);
    put_i64(out, value);
  }
}

bool get_entries(Cursor& c,
                 std::vector<std::pair<std::string, std::int64_t>>& e) {
  std::uint32_t n = 0;
  if (!c.get_u32(n)) return false;
  e.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!c.get_str(name) || !c.get_u64(value)) return false;
    e.emplace_back(std::move(name), static_cast<std::int64_t>(value));
  }
  return true;
}

}  // namespace

std::string encode_stats(const StatsMsg& m) {
  std::string out;
  put_u32(out, m.version);
  put_u64(out, m.lease_id);
  put_u64(out, m.executed);
  put_entries(out, m.entries);
  return out;
}

bool decode_stats(const std::string& payload, StatsMsg& m) {
  Cursor c(payload);
  if (!c.get_u32(m.version)) return false;
  // An unknown layout version cannot be parsed; the caller counts the frame
  // and drops the stats, never the connection.
  if (m.version != kStatsVersion) return false;
  return c.get_u64(m.lease_id) && c.get_u64(m.executed) &&
         get_entries(c, m.entries) && c.done();
}

std::string encode_fleet_status(const FleetStatus& s) {
  std::string out;
  put_u32(out, kFleetStatusVersion);
  put_str(out, s.app);
  put_str(out, s.kernel);
  put_str(out, s.config);
  put_str(out, s.target);
  put_u64(out, s.samples);
  put_u64(out, s.committed);
  put_u64(out, s.executed);
  put_u64(out, s.replayed);
  put_u64(out, s.masked);
  put_u64(out, s.sdc);
  put_u64(out, s.timeout);
  put_u64(out, s.due);
  put_f64(out, s.fr);
  put_f64(out, s.fr_lo);
  put_f64(out, s.fr_hi);
  put_f64(out, s.samples_per_sec);
  put_f64(out, s.eta_sec);
  put_u32(out, s.early_stopped ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(s.workers.size()));
  for (const WorkerStatus& w : s.workers) {
    put_str(out, w.name);
    put_u32(out, (w.connected ? 1u : 0u) | (w.stale ? 2u : 0u));
    put_u64(out, w.completed);
    put_u64(out, w.leased);
    put_u64(out, w.lease_id);
    put_u64(out, w.executed);
    put_f64(out, w.samples_per_sec);
    put_f64(out, w.heartbeat_age_sec);
    put_entries(out, w.stats);
  }
  return out;
}

bool decode_fleet_status(const std::string& payload, FleetStatus& s) {
  Cursor c(payload);
  std::uint32_t version = 0;
  if (!c.get_u32(version) || version != kFleetStatusVersion) return false;
  std::uint32_t early = 0;
  std::uint32_t n = 0;
  if (!c.get_str(s.app) || !c.get_str(s.kernel) || !c.get_str(s.config) ||
      !c.get_str(s.target) || !c.get_u64(s.samples) ||
      !c.get_u64(s.committed) || !c.get_u64(s.executed) ||
      !c.get_u64(s.replayed) || !c.get_u64(s.masked) || !c.get_u64(s.sdc) ||
      !c.get_u64(s.timeout) || !c.get_u64(s.due) || !c.get_f64(s.fr) ||
      !c.get_f64(s.fr_lo) || !c.get_f64(s.fr_hi) ||
      !c.get_f64(s.samples_per_sec) || !c.get_f64(s.eta_sec) ||
      !c.get_u32(early) || !c.get_u32(n)) {
    return false;
  }
  s.early_stopped = early != 0;
  s.workers.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    WorkerStatus w;
    std::uint32_t flags = 0;
    if (!c.get_str(w.name) || !c.get_u32(flags) || !c.get_u64(w.completed) ||
        !c.get_u64(w.leased) || !c.get_u64(w.lease_id) ||
        !c.get_u64(w.executed) || !c.get_f64(w.samples_per_sec) ||
        !c.get_f64(w.heartbeat_age_sec) || !get_entries(c, w.stats)) {
      return false;
    }
    w.connected = (flags & 1u) != 0;
    w.stale = (flags & 2u) != 0;
    s.workers.push_back(std::move(w));
  }
  return c.done();
}

std::string frame_bytes(MsgType type, const std::string& payload) {
  std::string out;
  out.reserve(16 + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, payload_checksum(payload));
  out.append(payload);
  return out;
}

std::optional<std::pair<std::string, std::uint16_t>> parse_address(
    const std::string& address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 == address.size()) return std::nullopt;
  std::string host = address.substr(0, colon);
  if (host.empty()) host = "0.0.0.0";
  std::uint64_t port = 0;
  for (std::size_t i = colon + 1; i < address.size(); ++i) {
    const char ch = address[i];
    if (ch < '0' || ch > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint64_t>(ch - '0');
    if (port > 65535) return std::nullopt;
  }
  return std::make_pair(std::move(host), static_cast<std::uint16_t>(port));
}

// --- Socket ---------------------------------------------------------------

Socket::Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port,
                          std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::strerror(errno);
    return Socket{};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "cannot parse IPv4 address '" + host + "'";
    ::close(fd);
    return Socket{};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) *error = std::strerror(errno);
    ::close(fd);
    return Socket{};
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket{fd};
}

bool Socket::send_all(const char* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process-killing
    // SIGPIPE — the fabric treats dead connections as routine.
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::send_frame(MsgType type, const std::string& payload) {
  if (fd_ < 0) return false;
  const std::string bytes = frame_bytes(type, payload);
  const std::lock_guard<std::mutex> lock(send_mu_);
  return send_all(bytes.data(), bytes.size());
}

bool Socket::recv_all(char* data, std::size_t len, double timeout_sec) {
  while (len > 0) {
    if (timeout_sec >= 0.0) {
      pollfd p{fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(timeout_sec * 1000.0);
      const int pr = ::poll(&p, 1, timeout_ms);
      if (pr <= 0) return false;
    }
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

Socket::Recv Socket::recv_frame(Frame& out, double timeout_sec) {
  if (fd_ < 0) return Recv::Closed;
  // The deadline applies to the arrival of the frame's first byte; once a
  // header starts, the rest follows promptly or the peer is broken (short
  // follow-up timeout instead of blocking forever on a half-written frame).
  if (timeout_sec >= 0.0) {
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(timeout_sec * 1000.0));
    if (pr == 0) return Recv::Timeout;
    if (pr < 0) return Recv::Closed;
  }
  char header[16];
  if (!recv_all(header, sizeof header, timeout_sec >= 0.0 ? 30.0 : -1.0)) {
    return Recv::Closed;
  }
  std::uint32_t magic = 0, type = 0, len = 0, sum = 0;
  std::memcpy(&magic, header + 0, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 4);
  std::memcpy(&sum, header + 12, 4);
  if (magic != kFrameMagic || len > kMaxPayloadBytes) return Recv::Closed;
  out.type = static_cast<MsgType>(type);
  out.payload.resize(len);
  if (len > 0 && !recv_all(out.payload.data(), len, 30.0)) return Recv::Closed;
  if (payload_checksum(out.payload) != sum) return Recv::Closed;
  return Recv::Frame;
}

void Socket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// --- Listener -------------------------------------------------------------

Listener::Listener(Listener&& o) noexcept : fd_(o.fd_), port_(o.port_) {
  o.fd_ = -1;
  o.port_ = 0;
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
    o.port_ = 0;
  }
  return *this;
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Listener Listener::listen_on(const std::string& host, std::uint16_t port,
                             std::string* error) {
  Listener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd_ < 0) {
    if (error) *error = std::strerror(errno);
    return Listener{};
  }
  // SO_REUSEADDR: a restarted coordinator rebinds its port immediately
  // instead of waiting out TIME_WAIT from its previous life — workers keep
  // reconnecting to the address they were given.
  const int one = 1;
  ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "cannot parse IPv4 address '" + host + "'";
    return Listener{};
  }
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(l.fd_, 64) != 0) {
    if (error) *error = std::strerror(errno);
    return Listener{};
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    l.port_ = ntohs(bound.sin_port);
  }
  return l;
}

Socket Listener::accept_next(double timeout_sec) {
  if (fd_ < 0) return Socket{};
  if (timeout_sec >= 0.0) {
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(timeout_sec * 1000.0));
    if (pr <= 0) return Socket{};
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket{};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket{fd};
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace gras::fabric
