// Campaign worker: `gras work` (DESIGN.md §13).
//
// run_worker connects to a coordinator, reconstructs the campaign from the
// Welcome handshake (app, config, spec — and re-derives the fingerprint
// locally, refusing to execute when it disagrees), runs its own golden
// reference once, and then loops: request a lease, execute its sample range
// through the shared SampleRunner (batching and backend selection exactly
// as in a single-process run), stream the completed records back in
// chunk-sized steps, report the lease done. A heartbeat thread keeps the
// active lease alive while long batches execute.
//
// Workers are disposable by design: a SIGKILL'd worker just stops
// heartbeating and its lease is reassigned; a worker that loses the
// coordinator reconnects within a retry budget (surviving a coordinator
// restart) and resumes with fresh leases.
#pragma once

#include <cstdint>
#include <string>

#include "src/fabric/lease.h"

namespace gras::fabric {

struct WorkOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Display name announced in the handshake ("worker-<pid>" when empty).
  std::string name;
  /// Simulation threads (0 = GRAS_THREADS / hardware concurrency).
  std::uint64_t threads = 0;
  /// Total budget for (re)connect attempts: a worker that cannot reach a
  /// coordinator for this long gives up. The budget refills after every
  /// successful handshake, so it bounds one outage, not the whole campaign.
  double retry_sec = 60.0;
  /// Wait between lease requests while the coordinator has nothing to
  /// grant (expired leases may free work at any time).
  double idle_poll_sec = 0.5;
};

struct WorkResult {
  std::uint64_t executed = 0;  ///< samples executed and streamed back
  std::uint64_t leases = 0;    ///< leases fully completed
  bool stopped = false;        ///< coordinator ended the campaign (clean exit)
  /// Non-empty on fatal error (handshake rejected, fingerprint mismatch,
  /// retry budget exhausted); `stopped` is false then.
  std::string error;
};

/// Runs the worker loop until the coordinator sends Stop (WorkResult::
/// stopped) or a fatal error occurs (WorkResult::error). Never throws on
/// network failures — they are routine and handled by reconnecting.
WorkResult run_worker(const WorkOptions& options);

}  // namespace gras::fabric
