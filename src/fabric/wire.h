// Wire protocol of the distributed campaign fabric (DESIGN.md §13).
//
// Coordinator and workers exchange length-prefixed frames over TCP. Every
// frame is [magic u32 | type u32 | payload len u32 | payload fnv1a-32 u32]
// followed by the payload, so a torn, reordered, or bit-damaged stream is
// detected at the frame boundary instead of being half-applied. Sample
// records cross the network in the exact byte layout the journal stores
// (orchestrator::encode_record), checksum included — a record is validated
// the same way whether it came from disk or from a socket.
//
// The handshake is versioned and carries the full campaign identity: the
// worker sends Hello{protocol, name}, the coordinator answers Welcome with
// every journal-header field plus the fabric execution parameters (chunk,
// batch, heartbeat period, lease TTL). The worker rebuilds the campaign
// from those fields, re-derives the fingerprint locally, and refuses to
// work when it disagrees — a mismatched binary or config cannot silently
// contribute records to a foreign campaign.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/orchestrator/journal.h"

namespace gras::fabric {

/// Fabric protocol version: bump on any frame or payload layout change.
/// Welcome echoes it; a worker built at another version is rejected.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// First field of every frame: "GRFB" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x42465247;

/// Upper bound on one payload; larger length fields mean a corrupt or
/// hostile stream and the connection is dropped.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

enum class MsgType : std::uint32_t {
  Hello = 1,      ///< worker -> coordinator: protocol + worker name
  Welcome = 2,    ///< coordinator -> worker: campaign identity + parameters
  Reject = 3,     ///< coordinator -> worker: handshake refused (reason)
  LeaseRequest = 4,  ///< worker -> coordinator: give me a range
  LeaseGrant = 5,    ///< coordinator -> worker: [begin, end) under lease_id
  Records = 6,       ///< worker -> coordinator: completed records of a lease
  LeaseDone = 7,     ///< worker -> coordinator: every index of a lease sent
  Heartbeat = 8,     ///< worker -> coordinator: still alive (current lease)
  Stop = 9,          ///< coordinator -> worker: campaign over, drain and exit
  // Observability plane (additive; protocol still v1). A peer that predates
  // these types skips them with a counted warning — they never carry work,
  // so a mixed-version fleet stays correct, just less observable.
  Stats = 10,        ///< worker -> coordinator: telemetry delta (piggybacked)
  Status = 11,       ///< fleet client -> coordinator: status request (empty)
  StatusReply = 12,  ///< coordinator -> fleet client: FleetStatus
};
const char* msg_type_name(MsgType t);

struct Frame {
  MsgType type = MsgType::Hello;
  std::string payload;
};

// --- Message payloads -----------------------------------------------------

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::string name;  ///< worker display name ("worker-<pid>" by default)
};

/// Campaign identity (every JournalHeader field) + execution parameters.
/// `fingerprint` is the coordinator's JournalHeader::fingerprint(); the
/// worker re-derives it from the identity fields and must agree.
struct WelcomeMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::uint32_t journal_version = 0;
  std::uint32_t record_bytes = 0;
  std::uint64_t fingerprint = 0;
  std::string app;
  std::string kernel;
  std::string config;
  std::string target;
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  double margin = 0.0;
  double confidence = 0.99;
  std::uint64_t chunk = 64;
  std::uint64_t batch = 1;
  double heartbeat_sec = 2.0;
  double lease_ttl_sec = 10.0;
};

struct RejectMsg {
  std::string reason;
};

/// begin == end means "no work available right now": the worker keeps the
/// connection, waits briefly, and asks again (other leases may expire).
struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct RecordsMsg {
  std::uint64_t lease_id = 0;
  std::vector<orchestrator::JournalRecord> records;
};

struct LeaseDoneMsg {
  std::uint64_t lease_id = 0;
};

/// lease_id 0 = idle heartbeat (no active lease).
struct HeartbeatMsg {
  std::uint64_t lease_id = 0;
};

/// Payload layout version of StatsMsg; bump when its fields change. A
/// decoder rejects versions it does not know — the coordinator then counts
/// the frame as unparseable and carries on without the stats.
inline constexpr std::uint32_t kStatsVersion = 1;

/// Worker telemetry piggybacked on the heartbeat cadence. Strictly
/// out-of-band: a coordinator may ignore every StatsMsg and the campaign is
/// unaffected. `entries` carries absolute flat_snapshot() values, filtered
/// to the names whose value changed since the previous report.
struct StatsMsg {
  std::uint32_t version = kStatsVersion;
  std::uint64_t lease_id = 0;  ///< active lease (0 = idle), as in Heartbeat
  std::uint64_t executed = 0;  ///< samples executed by this worker this run
  std::vector<std::pair<std::string, std::int64_t>> entries;
};

/// Payload layout version of the StatusReply frame (see fleet.h).
inline constexpr std::uint32_t kFleetStatusVersion = 1;

struct FleetStatus;  // fleet.h: per-worker table + fleet aggregates

std::string encode_hello(const HelloMsg& m);
bool decode_hello(const std::string& payload, HelloMsg& m);
std::string encode_welcome(const WelcomeMsg& m);
bool decode_welcome(const std::string& payload, WelcomeMsg& m);
std::string encode_reject(const RejectMsg& m);
bool decode_reject(const std::string& payload, RejectMsg& m);
std::string encode_lease_grant(const LeaseGrantMsg& m);
bool decode_lease_grant(const std::string& payload, LeaseGrantMsg& m);
std::string encode_records(const RecordsMsg& m);
bool decode_records(const std::string& payload, RecordsMsg& m);
std::string encode_lease_done(const LeaseDoneMsg& m);
bool decode_lease_done(const std::string& payload, LeaseDoneMsg& m);
std::string encode_heartbeat(const HeartbeatMsg& m);
bool decode_heartbeat(const std::string& payload, HeartbeatMsg& m);
std::string encode_stats(const StatsMsg& m);
bool decode_stats(const std::string& payload, StatsMsg& m);
std::string encode_fleet_status(const FleetStatus& s);
bool decode_fleet_status(const std::string& payload, FleetStatus& s);

/// Frames `payload` for the wire: header (magic, type, len, checksum) +
/// payload bytes (exposed for protocol tests; Socket::send_frame uses it).
std::string frame_bytes(MsgType type, const std::string& payload);

/// "host:port" -> (host, port). An empty host ("":4000 spelled ":4000")
/// resolves to 0.0.0.0. nullopt when the port is missing or not numeric.
std::optional<std::pair<std::string, std::uint16_t>> parse_address(
    const std::string& address);

// --- Sockets --------------------------------------------------------------

/// One connected TCP stream carrying fabric frames. Sending is
/// thread-safe (the worker's heartbeat thread shares the socket with its
/// execution loop); receiving is single-consumer. Move-only; the
/// destructor closes. shutdown() unblocks a concurrent recv_frame.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept;
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }

  /// Connects to host:port. Invalid socket on failure (`error`, when
  /// non-null, receives the reason).
  static Socket connect_to(const std::string& host, std::uint16_t port,
                           std::string* error = nullptr);

  /// Sends one frame. False when the peer is gone (EPIPE/reset) — the
  /// connection is unusable afterwards.
  bool send_frame(MsgType type, const std::string& payload);

  enum class Recv : std::uint8_t {
    Frame,    ///< `out` holds a validated frame
    Timeout,  ///< nothing arrived within the deadline
    Closed,   ///< peer closed, or the stream failed validation
  };
  /// Receives one frame. `timeout_sec` < 0 blocks indefinitely; 0 polls.
  /// Magic, length bound, and payload checksum are validated — any
  /// violation returns Closed (a corrupt stream cannot be resynchronized).
  Recv recv_frame(Frame& out, double timeout_sec = -1.0);

  /// Unblocks any concurrent recv_frame (returns Closed) and makes further
  /// sends fail; the fd stays open until destruction.
  void shutdown();

 private:
  bool send_all(const char* data, std::size_t len);
  bool recv_all(char* data, std::size_t len, double timeout_sec);

  int fd_ = -1;
  std::mutex send_mu_;
};

/// Listening TCP socket of the coordinator. Port 0 binds an ephemeral port
/// (read it back with port()); the socket is opened with SO_REUSEADDR so a
/// restarted coordinator can rebind the same port immediately.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  static Listener listen_on(const std::string& host, std::uint16_t port,
                            std::string* error = nullptr);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Accepts one connection; invalid Socket on timeout or after shutdown().
  Socket accept_next(double timeout_sec = -1.0);

  /// Unblocks a concurrent accept_next and refuses further connections.
  void shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace gras::fabric
