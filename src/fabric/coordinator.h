// Campaign coordinator: `gras serve` (DESIGN.md §13).
//
// serve_campaign owns the canonical journal of a distributed campaign. It
// listens for workers, leases them contiguous sample-index ranges, collects
// the records they stream back, and appends them to the journal in strict
// index order — so the journal is always a gapless prefix of the campaign
// and a coordinator crash resumes by replaying it, exactly like a
// single-process `gras campaign --resume`. The early-stop rule is evaluated
// fleet-wide at the same fixed chunk barriers run_durable uses, over the
// same in-order prefix, so a distributed campaign stops at the bit-identical
// point (and journals the bit-identical records + marker) a single process
// would have.
//
// The coordinator never simulates: it validates the spec, replays/opens the
// journal, and runs the protocol. All execution happens in workers
// (worker.h), which reconstruct the campaign from the Welcome message and
// cross-check its fingerprint.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/campaign/campaign.h"
#include "src/fabric/lease.h"
#include "src/orchestrator/orchestrator.h"

namespace gras::fabric {

struct ServeOptions {
  std::string host = "0.0.0.0";
  std::uint16_t port = 0;  ///< 0 binds an ephemeral port (see ServeResult)
  /// Written with "<port>\n" once listening (empty = skip): scripts start
  /// the coordinator with port 0 and read the real port from here.
  std::filesystem::path port_file;
  /// Canonical journal; empty derives the default (shard 0/1) path, so a
  /// served campaign and a single-process one share their journal.
  std::filesystem::path journal;
  bool resume = true;
  double margin = 0.0;  ///< early-stop CI half-width; 0 runs all samples
  double confidence = 0.99;
  std::uint64_t chunk = 64;  ///< early-stop barrier spacing (see run_durable)
  std::uint64_t batch = 1;   ///< worker batching (campaign::run_batched)
  std::uint64_t lease = 256; ///< samples per lease
  double heartbeat_sec = 2.0;  ///< worker heartbeat period (sent in Welcome)
  double lease_ttl_sec = 10.0; ///< lease silence budget before reassignment
  orchestrator::ProgressSink* progress = nullptr;
  /// Lease/heartbeat clock (empty = real steady clock); tests inject a fake.
  Clock clock;
  /// Embedded Prometheus /metrics listener (registry + gras_fleet_*
  /// aggregates): -1 disables, 0 binds an ephemeral port (see
  /// metrics_port_file / ServeResult::metrics_port), >0 binds that port.
  /// Failure to bind is a warning, never fatal: metrics are out-of-band.
  std::int32_t metrics_port = -1;
  /// Written with "<port>\n" once the metrics listener is up (empty = skip).
  std::filesystem::path metrics_port_file;
};

struct ServeResult {
  campaign::CampaignResult result;
  std::uint64_t samples = 0;   ///< campaign-wide requested sample count
  std::uint64_t replayed = 0;  ///< records recovered from the journal
  std::uint64_t executed = 0;  ///< records received from workers this run
  bool early_stopped = false;
  std::filesystem::path journal;
  std::uint16_t port = 0;  ///< the port actually bound
  std::uint16_t metrics_port = 0;  ///< bound /metrics port (0 = disabled)
};

/// Runs one campaign to completion (or early stop) as the coordinator.
/// Blocks until every sample index is journaled or the margin is reached;
/// returns the recombined histogram. Throws std::runtime_error when the
/// spec is invalid, the address cannot be bound, or the journal at the
/// target path belongs to a different campaign.
ServeResult serve_campaign(const workloads::App& app, const sim::GpuConfig& config,
                           const campaign::CampaignSpec& spec,
                           const ServeOptions& options = {});

}  // namespace gras::fabric
