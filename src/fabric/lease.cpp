#include "src/fabric/lease.h"

#include <chrono>
#include <utility>

#include "src/common/metrics_registry.h"

namespace gras::fabric {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LeaseTable::LeaseTable(std::uint64_t total, std::uint64_t lease_len,
                       double ttl_sec, Clock now)
    : total_(total), lease_len_(lease_len == 0 ? 1 : lease_len),
      ttl_sec_(ttl_sec), now_(now ? std::move(now) : steady_seconds) {
  if (total_ > 0) pending_.emplace(0, total_);
}

void LeaseTable::mark_done_prefix(std::uint64_t n) {
  if (n == 0 || granted_any_) return;
  if (n > total_) n = total_;
  pending_.clear();
  if (n < total_) pending_.emplace(n, total_);
  delivered_ = n;
}

void LeaseTable::mark_done(std::uint64_t index) {
  if (index >= total_ || granted_any_ || pending_.empty()) return;
  // Find the pending range containing `index` and carve it out.
  auto it = pending_.upper_bound(index);
  if (it == pending_.begin()) return;
  --it;
  const std::uint64_t begin = it->first;
  const std::uint64_t end = it->second;
  if (index >= end) return;  // already marked
  pending_.erase(it);
  if (index > begin) pending_.emplace(begin, index);
  if (index + 1 < end) pending_.emplace(index + 1, end);
  ++delivered_;
}

LeaseTable::Grant LeaseTable::grant(const std::string& worker) {
  granted_any_ = true;
  Grant g;
  if (pending_.empty()) return g;
  const auto it = pending_.begin();
  const std::uint64_t begin = it->first;
  const std::uint64_t range_end = it->second;
  const std::uint64_t end = std::min(range_end, begin + lease_len_);
  pending_.erase(it);
  if (end < range_end) pending_.emplace(end, range_end);

  g.lease_id = next_id_++;
  g.begin = begin;
  g.end = end;
  Lease lease;
  lease.begin = begin;
  lease.end = end;
  lease.got.assign(end - begin, false);
  lease.remaining = end - begin;
  lease.deadline = now_() + ttl_sec_;
  lease.worker = worker;
  leases_.emplace(g.lease_id, std::move(lease));
  telemetry::counter("fabric.leases.granted").add();
  return g;
}

bool LeaseTable::heartbeat(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  it->second.deadline = now_() + ttl_sec_;
  return true;
}

LeaseTable::Verdict LeaseTable::accept(std::uint64_t lease_id,
                                       std::uint64_t index) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    telemetry::counter("fabric.records.stale").add();
    return Verdict::Stale;
  }
  Lease& lease = it->second;
  if (index < lease.begin || index >= lease.end) {
    telemetry::counter("fabric.records.stale").add();
    return Verdict::Stale;
  }
  if (lease.got[index - lease.begin]) {
    telemetry::counter("fabric.records.duplicate").add();
    return Verdict::Duplicate;
  }
  lease.got[index - lease.begin] = true;
  --lease.remaining;
  ++delivered_;
  lease.deadline = now_() + ttl_sec_;
  return Verdict::Fresh;
}

void LeaseTable::requeue_undelivered(const Lease& lease) {
  // Re-pend each undelivered index, merging adjacent runs so the pool stays
  // a set of maximal contiguous ranges.
  std::uint64_t run_begin = 0;
  bool in_run = false;
  const auto flush = [&](std::uint64_t run_end) {
    if (!in_run) return;
    in_run = false;
    std::uint64_t end = run_end;
    const auto next = pending_.find(run_end);
    if (next != pending_.end()) {
      end = next->second;
      pending_.erase(next);
    }
    std::uint64_t begin = run_begin;
    auto after = pending_.lower_bound(run_begin);
    if (after != pending_.begin()) {
      const auto prev = std::prev(after);
      if (prev->second == run_begin) {
        begin = prev->first;
        pending_.erase(prev);
      }
    }
    pending_[begin] = end;
  };
  for (std::uint64_t i = lease.begin; i < lease.end; ++i) {
    if (!lease.got[i - lease.begin]) {
      if (!in_run) {
        run_begin = i;
        in_run = true;
      }
    } else {
      flush(i);
    }
  }
  flush(lease.end);
}

bool LeaseTable::complete(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  if (it->second.remaining > 0) requeue_undelivered(it->second);
  leases_.erase(it);
  telemetry::counter("fabric.leases.completed").add();
  return true;
}

std::vector<std::uint64_t> LeaseTable::expire() {
  const double t = now_();
  std::vector<std::uint64_t> expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline <= t) {
      expired.push_back(it->first);
      if (it->second.remaining > 0) requeue_undelivered(it->second);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) {
    telemetry::counter("fabric.leases.expired").add(expired.size());
  }
  return expired;
}

void LeaseTable::release_worker(const std::string& worker) {
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.worker == worker) {
      if (it->second.remaining > 0) requeue_undelivered(it->second);
      it = leases_.erase(it);
      telemetry::counter("fabric.leases.expired").add();
    } else {
      ++it;
    }
  }
}

std::uint64_t LeaseTable::leased_to(const std::string& worker) const {
  std::uint64_t n = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.worker == worker) n += lease.remaining;
  }
  return n;
}

bool InOrderCommitter::add(const orchestrator::JournalRecord& r) {
  if (r.index < next_) return false;
  return buffer_.emplace(r.index, r).second;
}

std::optional<orchestrator::JournalRecord> InOrderCommitter::next() {
  const auto it = buffer_.find(next_);
  if (it == buffer_.end()) return std::nullopt;
  orchestrator::JournalRecord r = it->second;
  buffer_.erase(it);
  ++next_;
  return r;
}

}  // namespace gras::fabric
