#include "src/fabric/worker.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "src/campaign/campaign.h"
#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/fabric/wire.h"
#include "src/orchestrator/orchestrator.h"

namespace gras::fabric {
namespace {

/// The campaign context a worker rebuilds from its first Welcome. Later
/// reconnects must present the identical fingerprint — a coordinator
/// restarted with a different campaign is a fatal error, not a reconnect.
struct CampaignContext {
  std::unique_ptr<workloads::App> app;
  sim::GpuConfig config;
  campaign::CampaignSpec spec;
  campaign::GoldenRun golden;
  std::uint64_t fingerprint = 0;
  std::uint64_t chunk = 64;
  std::uint64_t batch = 1;
  double heartbeat_sec = 2.0;
};

/// Validates a Welcome and builds the context. Empty optional + `error` on
/// any mismatch (unknown app/config/target, fingerprint disagreement,
/// journal codec skew).
std::optional<CampaignContext> build_context(const WelcomeMsg& w,
                                             std::string& error) {
  if (w.journal_version != orchestrator::kJournalVersion ||
      w.record_bytes != orchestrator::kRecordBytes) {
    error = "journal codec mismatch: coordinator writes v" +
            std::to_string(w.journal_version) + "/" +
            std::to_string(w.record_bytes) + "B records, this build v" +
            std::to_string(orchestrator::kJournalVersion) + "/" +
            std::to_string(orchestrator::kRecordBytes) + "B";
    return std::nullopt;
  }
  CampaignContext ctx;
  ctx.app = workloads::make_benchmark(w.app);
  if (!ctx.app) {
    error = "coordinator campaign uses unknown app '" + w.app + "'";
    return std::nullopt;
  }
  try {
    ctx.config = sim::make_config(w.config);
  } catch (const std::exception&) {
    error = "coordinator campaign uses unknown config '" + w.config + "'";
    return std::nullopt;
  }
  const std::optional<campaign::Target> target = campaign::target_from_name(w.target);
  if (!target) {
    error = "coordinator campaign uses unknown target '" + w.target + "'";
    return std::nullopt;
  }
  ctx.spec.kernel = w.kernel;
  ctx.spec.target = *target;
  ctx.spec.samples = w.samples;
  ctx.spec.seed = w.seed;

  orchestrator::DurableOptions durable;
  durable.margin = w.margin;
  durable.confidence = w.confidence;
  const orchestrator::JournalHeader header =
      orchestrator::make_header(*ctx.app, ctx.config, ctx.spec, durable);
  ctx.fingerprint = header.fingerprint();
  if (ctx.fingerprint != w.fingerprint) {
    error = "campaign fingerprint mismatch: coordinator announced " +
            std::to_string(w.fingerprint) + ", this build derives " +
            std::to_string(ctx.fingerprint) +
            " for the same identity fields — refusing to contribute records";
    return std::nullopt;
  }
  ctx.chunk = w.chunk == 0 ? 64 : w.chunk;
  ctx.batch = w.batch == 0 ? 1 : w.batch;
  ctx.heartbeat_sec = w.heartbeat_sec > 0.0 ? w.heartbeat_sec : 2.0;
  return ctx;
}

/// Computes the registry delta between stats reports: absolute
/// flat_snapshot() values, filtered to the names whose value changed since
/// the previous call — the compact form StatsMsg carries on the wire.
class StatsReporter {
 public:
  std::vector<std::pair<std::string, std::int64_t>> delta() {
    std::vector<std::pair<std::string, std::int64_t>> changed;
    for (const auto& [name, value] :
         telemetry::Registry::instance().flat_snapshot()) {
      const auto it = last_.find(name);
      if (it != last_.end() && it->second == value) continue;
      last_[name] = value;
      changed.emplace_back(name, value);
    }
    return changed;
  }

 private:
  std::map<std::string, std::int64_t> last_;
};

/// A frame type this build does not expect here (usually a newer peer):
/// count it, warn once, keep the connection — an out-of-band frame must
/// never cost a lease.
void skip_unexpected_frame(MsgType t) {
  static telemetry::Counter& c_unknown = telemetry::counter("fabric.frames.unknown");
  c_unknown.add();
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "gras work: ignoring unexpected frame type %u from the "
                 "coordinator\n",
                 static_cast<unsigned>(t));
  }
}

/// Periodic Heartbeat sender sharing the connection with the execution
/// loop (Socket::send_frame is thread-safe). Each heartbeat is followed by
/// a piggybacked StatsMsg: the registry delta plus the cumulative executed
/// count. A coordinator that predates StatsMsg skips it with a counted
/// warning — stats are out-of-band by contract.
class HeartbeatThread {
 public:
  HeartbeatThread(Socket& sock, const std::atomic<std::uint64_t>& lease,
                  const std::atomic<std::uint64_t>& executed, double period_sec)
      : sock_(sock), lease_(lease), executed_(executed),
        period_sec_(period_sec), thread_([this] { loop(); }) {}

  ~HeartbeatThread() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void loop() {
    double since_beat = 0.0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      since_beat += 0.05;
      if (since_beat < period_sec_) continue;
      since_beat = 0.0;
      HeartbeatMsg hb;
      hb.lease_id = lease_.load(std::memory_order_relaxed);
      sock_.send_frame(MsgType::Heartbeat, encode_heartbeat(hb));
      telemetry::counter("fabric.heartbeats.sent").add();
      StatsMsg stats;
      stats.lease_id = hb.lease_id;
      stats.executed = executed_.load(std::memory_order_relaxed);
      stats.entries = reporter_.delta();
      sock_.send_frame(MsgType::Stats, encode_stats(stats));
      telemetry::counter("fabric.stats.sent").add();
    }
  }

  Socket& sock_;
  const std::atomic<std::uint64_t>& lease_;
  const std::atomic<std::uint64_t>& executed_;
  double period_sec_;
  StatsReporter reporter_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

WorkResult run_worker(const WorkOptions& options) {
  WorkResult out;
  const std::string name =
      options.name.empty() ? "worker-" + std::to_string(::getpid()) : options.name;

  std::optional<CampaignContext> ctx;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<orchestrator::SampleRunner> runner;
  // Cumulative across reconnects; the heartbeat thread reports it in StatsMsg.
  std::atomic<std::uint64_t> executed_total{0};

  double retry_budget = options.retry_sec;
  while (true) {
    // --- Connect + handshake (budgeted: refilled after every success).
    std::string net_error;
    Socket sock = Socket::connect_to(options.host, options.port, &net_error);
    if (!sock.valid()) {
      retry_budget -= 0.5;
      if (retry_budget <= 0.0) {
        out.error = "cannot reach coordinator at " + options.host + ":" +
                    std::to_string(options.port) + " within " +
                    std::to_string(options.retry_sec) + "s: " + net_error;
        return out;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      continue;
    }
    HelloMsg hello;
    hello.name = name;
    Frame f;
    if (!sock.send_frame(MsgType::Hello, encode_hello(hello)) ||
        sock.recv_frame(f, 10.0) != Socket::Recv::Frame) {
      retry_budget -= 0.5;
      if (retry_budget <= 0.0) {
        out.error = "coordinator did not complete the handshake";
        return out;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      continue;
    }
    if (f.type == MsgType::Reject) {
      RejectMsg reject;
      out.error = decode_reject(f.payload, reject)
                      ? "coordinator rejected this worker: " + reject.reason
                      : "coordinator rejected this worker";
      return out;
    }
    WelcomeMsg welcome;
    if (f.type != MsgType::Welcome || !decode_welcome(f.payload, welcome)) {
      out.error = "coordinator answered the handshake with an unexpected frame";
      return out;
    }
    if (!ctx) {
      // First handshake: rebuild the campaign, cross-check the fingerprint,
      // then pay for the golden run and runner construction exactly once.
      std::string error;
      ctx = build_context(welcome, error);
      if (!ctx) {
        out.error = std::move(error);
        return out;
      }
      const trace::Span golden_span("fabric.golden", "fabric");
      ctx->golden = campaign::run_golden(*ctx->app, ctx->config);
      pool = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(options.threads != 0 ? options.threads
                                                        : env_threads()));
      runner = std::make_unique<orchestrator::SampleRunner>(
          *ctx->app, ctx->config, ctx->golden, ctx->spec, *pool, ctx->batch);
    } else if (welcome.fingerprint != ctx->fingerprint) {
      out.error = "coordinator changed campaigns across a reconnect "
                  "(fingerprint mismatch); exiting";
      return out;
    }
    retry_budget = options.retry_sec;

    // --- Session: leases until Stop or the connection breaks.
    std::atomic<std::uint64_t> current_lease{0};
    HeartbeatThread heartbeat(sock, current_lease, executed_total,
                              ctx->heartbeat_sec);
    bool reconnect = false;
    while (!reconnect) {
      if (!sock.send_frame(MsgType::LeaseRequest, "")) {
        reconnect = true;
        break;
      }
      // Await the grant; unsolicited Stop can arrive instead at any time.
      LeaseGrantMsg grant;
      bool granted = false;
      double grant_wait = 30.0;
      while (!granted) {
        const Socket::Recv r = sock.recv_frame(f, 1.0);
        if (r == Socket::Recv::Closed) {
          reconnect = true;
          break;
        }
        if (r == Socket::Recv::Timeout) {
          grant_wait -= 1.0;
          if (grant_wait <= 0.0) {
            reconnect = true;  // coordinator wedged; try a fresh connection
            break;
          }
          continue;
        }
        if (f.type == MsgType::Stop) {
          out.stopped = true;
          return out;
        }
        if (f.type == MsgType::LeaseGrant) {
          if (decode_lease_grant(f.payload, grant)) granted = true;
        } else {
          skip_unexpected_frame(f.type);
        }
      }
      if (reconnect) break;

      if (grant.begin == grant.end) {
        // Nothing to lease right now. The wait doubles as a Stop poll: the
        // campaign usually ends while idle workers sit exactly here.
        const Socket::Recv r = sock.recv_frame(f, options.idle_poll_sec);
        if (r == Socket::Recv::Closed) reconnect = true;
        if (r == Socket::Recv::Frame) {
          if (f.type == MsgType::Stop) {
            out.stopped = true;
            return out;
          }
          skip_unexpected_frame(f.type);
        }
        continue;
      }

      // --- Execute the lease in chunk-sized steps, streaming each step's
      // records as soon as they exist so a mid-lease death loses at most
      // one step, not the whole lease.
      current_lease.store(grant.lease_id, std::memory_order_relaxed);
      const trace::Span lease_span("fabric.lease", "fabric", "begin", grant.begin);
      bool lease_ok = true;
      for (std::uint64_t step = grant.begin; step < grant.end && lease_ok;
           step += ctx->chunk) {
        const std::uint64_t step_end = std::min(grant.end, step + ctx->chunk);
        std::vector<std::uint64_t> indices;
        indices.reserve(step_end - step);
        for (std::uint64_t i = step; i < step_end; ++i) indices.push_back(i);
        RecordsMsg records;
        records.lease_id = grant.lease_id;
        records.records = runner->run(indices);
        if (!sock.send_frame(MsgType::Records, encode_records(records))) {
          lease_ok = false;
          reconnect = true;
          break;
        }
        out.executed += records.records.size();
        executed_total.store(out.executed, std::memory_order_relaxed);
        telemetry::counter("fabric.records.sent").add(records.records.size());
        // Between steps, drain any unsolicited frame (Stop) without waiting.
        const Socket::Recv r = sock.recv_frame(f, 0.0);
        if (r == Socket::Recv::Closed) {
          lease_ok = false;
          reconnect = true;
        } else if (r == Socket::Recv::Frame) {
          if (f.type == MsgType::Stop) {
            out.stopped = true;
            return out;
          }
          skip_unexpected_frame(f.type);
        }
      }
      current_lease.store(0, std::memory_order_relaxed);
      if (lease_ok) {
        LeaseDoneMsg done;
        done.lease_id = grant.lease_id;
        if (!sock.send_frame(MsgType::LeaseDone, encode_lease_done(done))) {
          reconnect = true;
        } else {
          ++out.leases;
        }
      }
    }
    // Connection lost: loop back to reconnect with the budget counting down.
    retry_budget -= 0.5;
    if (retry_budget <= 0.0) {
      out.error = "lost the coordinator and could not reconnect within " +
                  std::to_string(options.retry_sec) + "s";
      return out;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
}

}  // namespace gras::fabric
