#include "src/fabric/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "src/common/metrics_registry.h"
#include "src/common/promtext.h"
#include "src/common/trace.h"
#include "src/fabric/fleet.h"
#include "src/fabric/wire.h"

namespace gras::fabric {
namespace {

std::uint64_t failures(const campaign::OutcomeCounts& c) {
  return c.sdc + c.timeout + c.due;
}

void accumulate(campaign::CampaignResult& result, std::uint64_t& control_path,
                const orchestrator::JournalRecord& r) {
  switch (r.outcome) {
    case fi::Outcome::Masked: ++result.counts.masked; break;
    case fi::Outcome::SDC: ++result.counts.sdc; break;
    case fi::Outcome::Timeout: ++result.counts.timeout; break;
    case fi::Outcome::DUE: ++result.counts.due; break;
  }
  if (r.control_path) ++control_path;
}

/// One worker connection, handled by its own thread. The registry row
/// outlives the connection so progress keeps showing dead workers at their
/// final count (connected = false).
struct Conn {
  Socket sock;
  std::thread thread;
  std::string key;   ///< unique lease-binding key ("conn-<n>")
  std::string name;  ///< worker-announced display name
  std::uint64_t completed = 0;  ///< records accepted from this connection
  bool connected = false;
  bool helloed = false;
};

void write_port_file(const std::filesystem::path& path, std::uint16_t port) {
  // Write-then-rename so a polling script never reads a half-written file.
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot write port file '" + tmp.string() + "'");
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("cannot publish port file '" + path.string() + "'");
  }
}

}  // namespace

ServeResult serve_campaign(const workloads::App& app, const sim::GpuConfig& config,
                           const campaign::CampaignSpec& spec,
                           const ServeOptions& options) {
  if (options.chunk == 0) throw std::runtime_error("chunk size must be positive");
  if (options.batch == 0) throw std::runtime_error("batch size must be positive");
  if (options.lease == 0) throw std::runtime_error("lease size must be positive");
  const bool kernel_known =
      std::any_of(app.kernels().begin(), app.kernels().end(),
                  [&](const isa::Kernel& k) { return k.name == spec.kernel; });
  if (!kernel_known) {
    throw std::runtime_error("app '" + app.name() + "' has no kernel '" +
                             spec.kernel + "'");
  }

  orchestrator::DurableOptions durable;
  durable.margin = options.margin;
  durable.confidence = options.confidence;
  const orchestrator::JournalHeader header =
      orchestrator::make_header(app, config, spec, durable);

  ServeResult out;
  out.result.spec = spec;
  out.samples = spec.samples;
  out.journal = options.journal.empty()
                    ? orchestrator::default_journal_path(app, config, spec, {})
                    : options.journal;

  // --- Journal replay: the served campaign shares its journal format (and
  // default path) with a single-process run, so either can resume the
  // other's work.
  std::vector<orchestrator::JournalRecord> replayed;
  std::optional<std::uint64_t> prior_early_stop;
  std::unique_ptr<orchestrator::JournalWriter> writer;
  if (options.resume) {
    if (auto contents = orchestrator::read_journal(out.journal)) {
      if (!contents->header.same_campaign(header) ||
          contents->header.shard_count != 1) {
        throw std::runtime_error("journal '" + out.journal.string() +
                                 "' belongs to a different campaign or shard; "
                                 "delete it or pick another path");
      }
      for (const orchestrator::JournalRecord& r : contents->records) {
        if (r.index < spec.samples) replayed.push_back(r);
      }
      prior_early_stop = contents->early_stop_consumed;
      writer = orchestrator::JournalWriter::open_resumed(out.journal, *contents);
    }
  }
  if (!writer) writer = orchestrator::JournalWriter::open_fresh(out.journal, header);
  if (!writer) {
    throw std::runtime_error("cannot open journal '" + out.journal.string() + "'");
  }

  // --- Listener up before any lease state so the port file appears early.
  std::string net_error;
  Listener listener = Listener::listen_on(options.host, options.port, &net_error);
  if (!listener.valid()) {
    throw std::runtime_error("cannot listen on " + options.host + ":" +
                             std::to_string(options.port) + ": " + net_error);
  }
  out.port = listener.port();
  if (!options.port_file.empty()) write_port_file(options.port_file, out.port);

  WelcomeMsg welcome;
  welcome.journal_version = orchestrator::kJournalVersion;
  welcome.record_bytes = static_cast<std::uint32_t>(orchestrator::kRecordBytes);
  welcome.fingerprint = header.fingerprint();
  welcome.app = header.app;
  welcome.kernel = header.kernel;
  welcome.config = header.config;
  welcome.target = header.target;
  welcome.samples = header.samples;
  welcome.seed = header.seed;
  welcome.margin = header.margin;
  welcome.confidence = header.confidence;
  welcome.chunk = options.chunk;
  welcome.batch = options.batch;
  welcome.heartbeat_sec = options.heartbeat_sec;
  welcome.lease_ttl_sec = options.lease_ttl_sec;

  // --- Shared coordinator state, serialized under one mutex.
  std::mutex mu;
  std::condition_variable cv;
  bool finishing = false;  ///< set once: stop granting, Stop every worker
  LeaseTable table(spec.samples, options.lease, options.lease_ttl_sec,
                   options.clock);
  InOrderCommitter committer;
  std::unordered_set<std::uint64_t> journaled;  ///< indices already on disk
  for (const orchestrator::JournalRecord& r : replayed) {
    table.mark_done(r.index);
    if (committer.add(r)) journaled.insert(r.index);
  }
  out.replayed = journaled.size();
  std::vector<std::unique_ptr<Conn>> conns;

  static telemetry::Counter& c_received = telemetry::counter("fabric.records.received");
  static telemetry::Counter& c_connections = telemetry::counter("fabric.connections");
  static telemetry::Counter& c_stats = telemetry::counter("fabric.stats.received");
  static telemetry::Counter& c_stats_bad = telemetry::counter("fabric.stats.unparseable");
  static telemetry::Counter& c_status = telemetry::counter("fabric.status.requests");
  static telemetry::Counter& c_unknown = telemetry::counter("fabric.frames.unknown");

  // --- Observability plane (strictly out-of-band: nothing below feeds the
  // lease table, the committer, or the early-stop rule).
  std::uint64_t control_path = 0;
  std::uint64_t injected = 0;
  orchestrator::RateTracker tracker(options.clock);
  bool rate_window_open = false;
  FleetTracker fleet(options.lease_ttl_sec, options.clock);

  // Per-worker table + fleet aggregates; callers hold `mu`.
  const auto build_status = [&]() {
    FleetStatus s;
    s.app = header.app;
    s.kernel = header.kernel;
    s.config = header.config;
    s.target = header.target;
    s.samples = spec.samples;
    s.committed = committer.committed();
    s.executed = out.executed;
    s.replayed = out.replayed;
    s.masked = out.result.counts.masked;
    s.sdc = out.result.counts.sdc;
    s.timeout = out.result.counts.timeout;
    s.due = out.result.counts.due;
    const ProportionCi ci =
        wilson_interval(failures(out.result.counts), out.result.counts.total(),
                        options.confidence);
    s.fr = ci.estimate;
    s.fr_lo = ci.lower;
    s.fr_hi = ci.upper;
    s.samples_per_sec = tracker.rate(out.executed);
    s.eta_sec = tracker.eta(out.executed, spec.samples - s.committed);
    s.early_stopped = out.early_stopped;
    for (const auto& conn : conns) {
      if (!conn->helloed) continue;
      WorkerStatus w = fleet.row(conn->key);
      w.name = conn->name;
      w.connected = conn->connected;
      if (!conn->connected) w.stale = false;  // gone beats stale
      w.completed = conn->completed;
      w.leased = table.leased_to(conn->key);
      s.workers.push_back(std::move(w));
    }
    return s;
  };

  // --- Handler threads: one per connection, frames -> lease table.
  const auto handle = [&](Conn* conn) {
    Frame f;
    if (conn->sock.recv_frame(f, 10.0) != Socket::Recv::Frame) return;
    if (f.type == MsgType::Status) {
      // Fleet status client (`gras fleet`): no handshake, never a worker
      // row. Each Status frame gets one StatusReply; --watch keeps the
      // connection and asks again. Shutdown cuts it via the !helloed path.
      while (true) {
        c_status.add();
        std::string reply;
        {
          const std::lock_guard<std::mutex> lock(mu);
          reply = encode_fleet_status(build_status());
        }
        if (!conn->sock.send_frame(MsgType::StatusReply, reply)) return;
        Socket::Recv r = Socket::Recv::Timeout;
        while (r == Socket::Recv::Timeout) r = conn->sock.recv_frame(f, 0.5);
        if (r != Socket::Recv::Frame || f.type != MsgType::Status) return;
      }
    }
    if (f.type != MsgType::Hello) return;
    HelloMsg hello;
    if (!decode_hello(f.payload, hello)) return;
    if (hello.protocol != kProtocolVersion) {
      RejectMsg reject;
      reject.reason = "protocol version mismatch: coordinator speaks " +
                      std::to_string(kProtocolVersion) + ", worker spoke " +
                      std::to_string(hello.protocol);
      conn->sock.send_frame(MsgType::Reject, encode_reject(reject));
      return;
    }
    if (!conn->sock.send_frame(MsgType::Welcome, encode_welcome(welcome))) return;
    {
      const std::lock_guard<std::mutex> lock(mu);
      conn->name = hello.name;
      conn->helloed = true;
      conn->connected = true;
    }
    c_connections.add();

    bool sent_stop = false;
    bool warned_unknown = false;
    double linger_budget = std::max(5.0, options.lease_ttl_sec);
    while (true) {
      const Socket::Recv r = conn->sock.recv_frame(f, 0.5);
      if (r == Socket::Recv::Closed) break;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (finishing && !sent_stop) {
          // Keep draining frames after Stop: the worker may have records in
          // flight it still wants acknowledged by the TCP stream before it
          // exits. The linger budget bounds how long a stuck worker can
          // hold the coordinator open.
          conn->sock.send_frame(MsgType::Stop, "");
          sent_stop = true;
        }
      }
      if (r == Socket::Recv::Timeout) {
        if (sent_stop) {
          linger_budget -= 0.5;
          if (linger_budget <= 0.0) break;
        }
        continue;
      }
      const std::lock_guard<std::mutex> lock(mu);
      fleet.touch(conn->key);  // any frame proves liveness
      switch (f.type) {
        case MsgType::LeaseRequest: {
          LeaseGrantMsg g;
          if (!finishing) {
            const LeaseTable::Grant grant = table.grant(conn->key);
            g.lease_id = grant.lease_id;
            g.begin = grant.begin;
            g.end = grant.end;
          }
          conn->sock.send_frame(MsgType::LeaseGrant, encode_lease_grant(g));
          break;
        }
        case MsgType::Heartbeat: {
          HeartbeatMsg hb;
          if (decode_heartbeat(f.payload, hb) && hb.lease_id != 0) {
            table.heartbeat(hb.lease_id);
          }
          break;
        }
        case MsgType::Records: {
          RecordsMsg msg;
          if (!decode_records(f.payload, msg)) break;
          for (const orchestrator::JournalRecord& rec : msg.records) {
            if (rec.kind != orchestrator::JournalRecord::kSample) continue;
            if (table.accept(msg.lease_id, rec.index) ==
                LeaseTable::Verdict::Fresh) {
              committer.add(rec);
              ++conn->completed;
              ++out.executed;
              c_received.add();
            }
          }
          cv.notify_all();
          break;
        }
        case MsgType::LeaseDone: {
          LeaseDoneMsg done;
          if (decode_lease_done(f.payload, done)) table.complete(done.lease_id);
          cv.notify_all();
          break;
        }
        case MsgType::Stats: {
          StatsMsg stats;
          if (decode_stats(f.payload, stats)) {
            fleet.on_stats(conn->key, stats);
            c_stats.add();
          } else {
            // Unknown StatsMsg version or damaged payload: the stats are
            // lost, the worker (and its leases) are unaffected.
            c_stats_bad.add();
          }
          break;
        }
        case MsgType::Status: {
          c_status.add();
          conn->sock.send_frame(MsgType::StatusReply,
                                encode_fleet_status(build_status()));
          break;
        }
        default:
          // A frame type this build does not know (newer peer): skip it,
          // keep the connection. Dropping the worker over an out-of-band
          // frame would turn an observability mismatch into lost leases.
          c_unknown.add();
          if (!warned_unknown) {
            warned_unknown = true;
            std::fprintf(stderr,
                         "gras serve: ignoring unknown frame type %u from "
                         "worker '%s'\n",
                         static_cast<unsigned>(f.type), conn->name.c_str());
          }
          break;
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    table.release_worker(conn->key);
    conn->connected = false;
    cv.notify_all();
  };

  // --- Accept thread.
  std::atomic<bool> accepting{true};
  std::thread acceptor([&] {
    std::uint64_t next_conn = 0;
    while (accepting.load(std::memory_order_relaxed)) {
      Socket s = listener.accept_next(0.5);
      if (!s.valid()) continue;
      const std::lock_guard<std::mutex> lock(mu);
      auto conn = std::make_unique<Conn>();
      conn->sock = std::move(s);
      conn->key = "conn-" + std::to_string(next_conn++);
      Conn* raw = conn.get();
      conn->thread = std::thread([&, raw] { handle(raw); });
      conns.push_back(std::move(conn));
    }
  });

  // --- Embedded /metrics listener: registry families + gras_fleet_*
  // aggregates from the same build_status table `gras fleet` sees. A bind
  // failure is reported and ignored — scraping is never worth a campaign.
  promtext::MetricsHttpServer metrics_server;
  if (options.metrics_port >= 0) {
    std::string metrics_error;
    const bool up = metrics_server.start(
        options.host == "0.0.0.0" ? "" : options.host,
        static_cast<std::uint16_t>(options.metrics_port),
        [&] {
          std::string body = promtext::render_registry(
              telemetry::Registry::instance().snapshot());
          const std::lock_guard<std::mutex> lock(mu);
          body += render_fleet_promtext(build_status());
          return body;
        },
        &metrics_error);
    if (up) {
      out.metrics_port = metrics_server.port();
      if (!options.metrics_port_file.empty()) {
        write_port_file(options.metrics_port_file, out.metrics_port);
      }
    } else {
      std::fprintf(stderr, "gras serve: /metrics listener disabled: %s\n",
                   metrics_error.c_str());
    }
  }

  // --- Commit loop: drain the in-order prefix to the journal, evaluating
  // the early-stop rule at the same chunk barriers (and over the same
  // record sequence) run_durable uses, so the fleet stops bit-identically
  // to a single process.
  const auto emit = [&](bool done) {
    if (options.progress == nullptr) return;
    orchestrator::ProgressSnapshot s;
    s.completed = committer.committed();
    s.total = spec.samples;
    s.counts = out.result.counts;
    s.injected = injected;
    s.control_path_masked = control_path;
    s.samples_per_sec = tracker.rate(out.executed);
    s.eta_seconds = tracker.eta(out.executed, spec.samples - s.completed);
    s.fr_ci = wilson_interval(failures(out.result.counts),
                              out.result.counts.total(), options.confidence);
    s.early_stopped = out.early_stopped;
    s.done = done;
    for (const auto& conn : conns) {
      if (!conn->helloed) continue;
      orchestrator::WorkerProgress w;
      w.name = conn->name;
      w.completed = conn->completed;
      w.leased = table.leased_to(conn->key);
      w.connected = conn->connected;
      s.workers.push_back(std::move(w));
    }
    options.progress->on_progress(s);
  };

  // Drains every committable record; returns true when the campaign is over
  // (all samples journaled, or the margin was reached at a barrier).
  const auto drain = [&]() -> bool {
    const trace::Span drain_span("fabric.drain", "fabric");
    while (true) {
      const std::uint64_t committed = committer.committed();
      if (committed == spec.samples) break;
      const std::optional<orchestrator::JournalRecord> r = committer.next();
      if (!r) break;
      if (!journaled.count(r->index)) {
        const trace::Span append_span("fabric.append", "fabric", "index", r->index);
        writer->append(*r);
      }
      accumulate(out.result, control_path, *r);
      if (r->injected) ++injected;
      const std::uint64_t consumed = committer.committed();
      const bool barrier = consumed % options.chunk == 0 || consumed == spec.samples;
      if (!barrier) continue;
      if (options.margin > 0.0) {
        const ProportionCi ci =
            wilson_interval(failures(out.result.counts),
                            out.result.counts.total(), options.confidence);
        if (ci.margin() <= options.margin) {
          out.early_stopped = true;
          if (prior_early_stop != consumed) {
            orchestrator::JournalRecord marker;
            marker.kind = orchestrator::JournalRecord::kEarlyStop;
            marker.index = consumed;
            writer->append(marker);
          }
          return true;
        }
      }
      emit(consumed == spec.samples);
    }
    return committer.committed() == spec.samples;
  };

  {
    std::unique_lock<std::mutex> lock(mu);
    bool done = drain();  // replayed prefix may already satisfy the campaign
    while (!done) {
      cv.wait_for(lock, std::chrono::milliseconds(200));
      if (out.executed > 0 && !rate_window_open) {
        tracker.reset();
        rate_window_open = true;
      }
      table.expire();
      done = drain();
    }
    finishing = true;
  }
  {
    const trace::Span sync_span("fabric.journal.sync", "fabric");
    writer->sync();
  }

  // --- Shutdown: handlers notice `finishing`, send Stop, and exit once
  // their worker hangs up (or their linger budget runs out). Connections
  // stuck before the handshake are cut outright — they cannot be mid-lease.
  accepting.store(false, std::memory_order_relaxed);
  listener.shutdown();
  acceptor.join();
  {
    const std::lock_guard<std::mutex> lock(mu);
    for (const auto& conn : conns) {
      if (!conn->helloed) conn->sock.shutdown();
    }
  }
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (out.early_stopped || spec.samples == 0) emit(true);
  }

  out.result.control_path_masked = control_path;
  out.result.injected = injected;
  return out;
}

}  // namespace gras::fabric
