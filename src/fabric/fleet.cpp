#include "src/fabric/fleet.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/common/promtext.h"
#include "src/common/table.h"

namespace gras::fabric {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t FleetStatus::workers_connected() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers) n += w.connected ? 1 : 0;
  return n;
}

std::uint64_t FleetStatus::workers_stale() const {
  std::uint64_t n = 0;
  for (const WorkerStatus& w : workers) n += w.stale ? 1 : 0;
  return n;
}

double FleetStatus::workers_samples_per_sec() const {
  double r = 0.0;
  for (const WorkerStatus& w : workers) {
    if (w.connected) r += w.samples_per_sec;
  }
  return r;
}

FleetTracker::FleetTracker(double stale_after_sec, Clock now, double window_sec)
    : stale_after_sec_(stale_after_sec),
      window_sec_(window_sec),
      clock_(now ? std::move(now) : Clock(steady_seconds)) {}

double FleetTracker::now() const { return clock_(); }

void FleetTracker::touch(const std::string& key) {
  entries_[key].last_seen = now();
}

void FleetTracker::on_stats(const std::string& key, const StatsMsg& m) {
  Entry& e = entries_[key];
  const double t = now();
  e.last_seen = t;
  e.lease_id = m.lease_id;
  e.executed = m.executed;
  for (const auto& [name, value] : m.entries) e.stats[name] = value;
  // Throughput series: keep the points inside the window, plus one older
  // point so a sparse reporter still spans a full window's worth of work.
  e.points.emplace_back(t, m.executed);
  while (e.points.size() > 2 && e.points[1].first < t - window_sec_) {
    e.points.pop_front();
  }
}

void FleetTracker::forget(const std::string& key) { entries_.erase(key); }

WorkerStatus FleetTracker::row(const std::string& key) const {
  WorkerStatus w;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return w;
  const Entry& e = it->second;
  const double t = now();
  w.lease_id = e.lease_id;
  w.executed = e.executed;
  w.heartbeat_age_sec = t > e.last_seen ? t - e.last_seen : 0.0;
  w.stale = w.heartbeat_age_sec > stale_after_sec_;
  w.stats.assign(e.stats.begin(), e.stats.end());
  if (e.points.size() >= 2) {
    const auto& [t0, x0] = e.points.front();
    const auto& [t1, x1] = e.points.back();
    if (t1 > t0 && x1 >= x0) {
      w.samples_per_sec = static_cast<double>(x1 - x0) / (t1 - t0);
    }
  }
  return w;
}

std::string render_fleet_table(const FleetStatus& s) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "%s / %s / %s (%s): %" PRIu64 "/%" PRIu64
                " committed, %" PRIu64 " workers (%" PRIu64 " live)%s\n",
                s.app.c_str(), s.kernel.c_str(), s.config.c_str(),
                s.target.c_str(), s.committed, s.samples,
                static_cast<std::uint64_t>(s.workers.size()),
                s.workers_connected(),
                s.early_stopped ? " [early stop]" : "");
  out += buf;
  std::snprintf(buf, sizeof buf,
                "FR %.2f%% CI [%.2f%%, %.2f%%]  %.1f samples/s  ETA %.0fs\n",
                100.0 * s.fr, 100.0 * s.fr_lo, 100.0 * s.fr_hi,
                s.samples_per_sec, s.eta_sec);
  out += buf;
  TextTable t({"worker", "state", "done", "leased", "executed", "samples/s",
               "hb age"});
  for (const WorkerStatus& w : s.workers) {
    const char* state = !w.connected ? "gone" : w.stale ? "stale" : "live";
    t.add_row({w.name, state, std::to_string(w.completed),
               std::to_string(w.leased), std::to_string(w.executed),
               TextTable::num(w.samples_per_sec, 1),
               TextTable::num(w.heartbeat_age_sec, 1) + "s"});
  }
  out += t.render();
  return out;
}

namespace {

void append_sanitized(std::string& out, const std::string& name) {
  // Worker names come from the handshake; stats names from a remote
  // registry. Keep only JSON-safe characters, as JsonlProgress does.
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.') {
      out += c;
    }
  }
}

void append_f(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.6g", key,
                std::isfinite(v) ? v : 0.0);
  out += buf;
}

void append_u(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

std::string fleet_status_json(const FleetStatus& s) {
  std::string out = "{\"type\":\"fleet\",\"app\":\"";
  append_sanitized(out, s.app);
  out += "\",\"kernel\":\"";
  append_sanitized(out, s.kernel);
  out += "\",\"config\":\"";
  append_sanitized(out, s.config);
  out += "\",\"target\":\"";
  append_sanitized(out, s.target);
  out += '"';
  append_u(out, "samples", s.samples);
  append_u(out, "committed", s.committed);
  append_u(out, "executed", s.executed);
  append_u(out, "replayed", s.replayed);
  append_u(out, "masked", s.masked);
  append_u(out, "sdc", s.sdc);
  append_u(out, "timeout", s.timeout);
  append_u(out, "due", s.due);
  append_f(out, "fr", s.fr);
  append_f(out, "fr_lo", s.fr_lo);
  append_f(out, "fr_hi", s.fr_hi);
  append_f(out, "samples_per_sec", s.samples_per_sec);
  append_f(out, "eta_seconds", s.eta_sec);
  out += ",\"early_stopped\":";
  out += s.early_stopped ? "true" : "false";
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerStatus& w = s.workers[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    append_sanitized(out, w.name);
    out += "\",\"connected\":";
    out += w.connected ? "true" : "false";
    out += ",\"stale\":";
    out += w.stale ? "true" : "false";
    append_u(out, "completed", w.completed);
    append_u(out, "leased", w.leased);
    append_u(out, "lease_id", w.lease_id);
    append_u(out, "executed", w.executed);
    append_f(out, "samples_per_sec", w.samples_per_sec);
    append_f(out, "heartbeat_age_sec", w.heartbeat_age_sec);
    out += ",\"stats\":{";
    for (std::size_t j = 0; j < w.stats.size(); ++j) {
      if (j > 0) out += ',';
      out += '"';
      append_sanitized(out, w.stats[j].first);
      out += "\":";
      out += std::to_string(w.stats[j].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string render_fleet_promtext(const FleetStatus& s) {
  promtext::Writer w;
  w.family("gras_fleet_samples", "campaign sample count", "gauge");
  w.sample("gras_fleet_samples", {}, s.samples);
  w.family("gras_fleet_samples_committed",
           "contiguous journaled prefix of the campaign", "gauge");
  w.sample("gras_fleet_samples_committed", {}, s.committed);
  w.family("gras_fleet_samples_executed",
           "records received from workers this coordinator run", "gauge");
  w.sample("gras_fleet_samples_executed", {}, s.executed);
  w.family("gras_fleet_samples_replayed",
           "records recovered from the journal on startup", "gauge");
  w.sample("gras_fleet_samples_replayed", {}, s.replayed);
  w.family("gras_fleet_outcome", "committed outcomes by class", "gauge");
  w.sample("gras_fleet_outcome", {{"outcome", "masked"}}, s.masked);
  w.sample("gras_fleet_outcome", {{"outcome", "sdc"}}, s.sdc);
  w.sample("gras_fleet_outcome", {{"outcome", "timeout"}}, s.timeout);
  w.sample("gras_fleet_outcome", {{"outcome", "due"}}, s.due);
  w.family("gras_fleet_failure_rate",
           "failure-rate point estimate over committed samples", "gauge");
  w.sample("gras_fleet_failure_rate", {}, s.fr);
  w.family("gras_fleet_failure_rate_lo", "failure-rate CI lower bound", "gauge");
  w.sample("gras_fleet_failure_rate_lo", {}, s.fr_lo);
  w.family("gras_fleet_failure_rate_hi", "failure-rate CI upper bound", "gauge");
  w.sample("gras_fleet_failure_rate_hi", {}, s.fr_hi);
  w.family("gras_fleet_samples_per_sec", "fleet-wide commit throughput", "gauge");
  w.sample("gras_fleet_samples_per_sec", {}, s.samples_per_sec);
  w.family("gras_fleet_eta_seconds", "remaining samples / throughput", "gauge");
  w.sample("gras_fleet_eta_seconds", {}, s.eta_sec);
  w.family("gras_fleet_early_stopped", "1 once the margin was reached", "gauge");
  w.sample("gras_fleet_early_stopped",
           {}, static_cast<std::uint64_t>(s.early_stopped ? 1 : 0));
  w.family("gras_fleet_workers", "worker connections by state", "gauge");
  w.sample("gras_fleet_workers", {{"state", "total"}},
           static_cast<std::uint64_t>(s.workers.size()));
  w.sample("gras_fleet_workers", {{"state", "connected"}},
           s.workers_connected());
  w.sample("gras_fleet_workers", {{"state", "stale"}}, s.workers_stale());
  // Two workers may announce the same display name (the default is
  // "worker-<pid>", unique per host only); suffix repeats so every sample
  // keeps a distinct label set.
  std::vector<std::string> labels;
  labels.reserve(s.workers.size());
  std::map<std::string, int> seen;
  for (const WorkerStatus& ws : s.workers) {
    const int n = seen[ws.name]++;
    labels.push_back(n == 0 ? ws.name : ws.name + "#" + std::to_string(n));
  }
  w.family("gras_fleet_worker_samples_per_sec",
           "per-worker reported execution throughput", "gauge");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    w.sample("gras_fleet_worker_samples_per_sec", {{"worker", labels[i]}},
             s.workers[i].samples_per_sec);
  }
  w.family("gras_fleet_worker_executed",
           "per-worker reported samples executed", "gauge");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    w.sample("gras_fleet_worker_executed", {{"worker", labels[i]}},
             s.workers[i].executed);
  }
  w.family("gras_fleet_worker_completed",
           "per-worker records accepted by the coordinator", "gauge");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    w.sample("gras_fleet_worker_completed", {{"worker", labels[i]}},
             s.workers[i].completed);
  }
  w.family("gras_fleet_worker_heartbeat_age_seconds",
           "seconds since the last frame from each worker", "gauge");
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    w.sample("gras_fleet_worker_heartbeat_age_seconds",
             {{"worker", labels[i]}}, s.workers[i].heartbeat_age_sec);
  }
  return w.take();
}

}  // namespace gras::fabric
