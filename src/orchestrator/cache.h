// File-backed memoization of campaign results, now routed through the
// durable orchestrator.
//
// The bench harnesses regenerate 13 paper tables/figures from overlapping
// campaign sets (e.g. Fig. 1, Fig. 2, Fig. 4 and Table I all consume the
// same per-kernel sweeps). Campaigns are deterministic in
// (app, kernel, target, samples, seed, config), so their outcome histograms
// can be cached on disk and shared across bench binaries.
//
// A cache miss runs the campaign via run_durable: every sample lands in a
// journal under $GRAS_JOURNAL_DIR as it completes, so a killed bench run
// resumes where it left off instead of restarting the campaign. Once the
// final histogram is stored in the cache, the journal is deleted.
//
// Cache directory: $GRAS_CACHE, defaulting to ".gras_cache" under the
// current working directory. Delete the directory to force re-runs.
#pragma once

#include "src/campaign/campaign.h"

namespace gras::orchestrator {

/// Runs a campaign through the cache: returns the stored result when the
/// exact (app-name, spec, config-name) tuple has been run before, otherwise
/// runs it durably (journaled, resumable) and stores the outcome.
campaign::CampaignResult cached_campaign(const workloads::App& app,
                                         const sim::GpuConfig& config,
                                         const campaign::GoldenRun& golden,
                                         const campaign::CampaignSpec& spec,
                                         ThreadPool& pool);

/// Cached variant of campaign::run_kernel_sweep.
campaign::KernelCampaigns cached_kernel_sweep(
    const workloads::App& app, const sim::GpuConfig& config,
    const campaign::GoldenRun& golden, const std::string& kernel,
    std::span<const campaign::Target> targets, std::uint64_t samples,
    std::uint64_t seed, ThreadPool& pool);

}  // namespace gras::orchestrator
