#include "src/orchestrator/progress.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/common/build_info.h"
#include "src/common/metrics_registry.h"

namespace gras::orchestrator {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProgressClock or_steady(ProgressClock now) {
  if (!now) return steady_seconds;
  return now;
}

}  // namespace

RateTracker::RateTracker(ProgressClock now) : now_(or_steady(std::move(now))) {
  start_ = now_();
}

void RateTracker::reset() { start_ = now_(); }

double RateTracker::elapsed() const {
  const double e = now_() - start_;
  return e > 0.0 ? e : 0.0;
}

double RateTracker::rate(std::uint64_t units) const {
  const double e = elapsed();
  return e > 0.0 ? static_cast<double>(units) / e : 0.0;
}

double RateTracker::eta(std::uint64_t done, std::uint64_t remaining) const {
  const double r = rate(done);
  return r > 0.0 ? static_cast<double>(remaining) / r : 0.0;
}

StderrProgress::StderrProgress(double min_interval_sec, ProgressClock now)
    : min_interval_sec_(min_interval_sec), now_(or_steady(std::move(now))) {}

void StderrProgress::on_progress(const ProgressSnapshot& s) {
  const double t = now_();
  if (!s.done && t - last_emit_ < min_interval_sec_) return;
  last_emit_ = t;
  const double pct = s.total == 0 ? 100.0
                                  : 100.0 * static_cast<double>(s.completed) /
                                        static_cast<double>(s.total);
  std::fprintf(stderr,
               "\r%" PRIu64 "/%" PRIu64 " (%5.1f%%)  FR %5.2f%% +/-%.2f  "
               "%.0f samples/s  ETA %.0fs ",
               s.completed, s.total, pct, 100.0 * s.fr_ci.estimate,
               100.0 * s.fr_ci.margin(), s.samples_per_sec, s.eta_seconds);
  if (!s.workers.empty()) {
    std::size_t live = 0;
    for (const WorkerProgress& w : s.workers) live += w.connected ? 1 : 0;
    std::fprintf(stderr, " [%zu/%zu workers]", live, s.workers.size());
  }
  if (s.done) {
    std::fprintf(stderr, "%s\n", s.early_stopped ? " [early stop]" : "");
  }
  std::fflush(stderr);
}

JsonlProgress::JsonlProgress(const std::string& path, double metrics_interval_sec,
                             ProgressClock now)
    : metrics_interval_sec_(metrics_interval_sec), now_(or_steady(std::move(now))) {
  if (path == "-") {
    out_ = stdout;
  } else {
    out_ = std::fopen(path.c_str(), "a");
    if (out_ == nullptr) {
      throw std::runtime_error("cannot open progress file '" + path + "'");
    }
    owned_ = true;
  }
  std::fprintf(out_, "{\"type\":\"build\",\"build\":%s}\n", build_json().c_str());
  std::fflush(out_);
}

JsonlProgress::~JsonlProgress() {
  if (owned_ && out_ != nullptr) std::fclose(out_);
}

std::string JsonlProgress::to_json(const ProgressSnapshot& s) {
  // %f renders an infinite or NaN double as `inf`/`nan`, which is not JSON
  // (eta is inf when the rate is still zero); clamp non-finite values to 0.
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  const auto emit = [&](char* buf, std::size_t cap) {
    return std::snprintf(
        buf, cap,
        "{\"type\":\"progress\",\"completed\":%" PRIu64 ",\"total\":%" PRIu64
        ",\"masked\":%" PRIu64
        ",\"sdc\":%" PRIu64 ",\"timeout\":%" PRIu64 ",\"due\":%" PRIu64
        ",\"injected\":%" PRIu64 ",\"control_path_masked\":%" PRIu64
        ",\"samples_per_sec\":%.2f,\"eta_seconds\":%.1f,\"fr\":%.6f"
        ",\"fr_margin\":%.6f,\"early_stopped\":%s,\"done\":%s}",
        s.completed, s.total, s.counts.masked, s.counts.sdc, s.counts.timeout,
        s.counts.due, s.injected, s.control_path_masked,
        finite(s.samples_per_sec), finite(s.eta_seconds),
        finite(s.fr_ci.estimate), finite(s.fr_ci.margin()),
        s.early_stopped ? "true" : "false", s.done ? "true" : "false");
  };
  char buf[512];
  const int n = emit(buf, sizeof buf);
  if (n < 0) return "{}";
  if (static_cast<std::size_t>(n) < sizeof buf) return std::string(buf, n);
  // Rare overflow (huge finite doubles): retry with an exactly-sized buffer
  // instead of emitting a truncated, unparseable line.
  std::string out(static_cast<std::size_t>(n), '\0');
  emit(out.data(), out.size() + 1);
  return out;
}

std::string JsonlProgress::workers_json(const ProgressSnapshot& s) {
  std::string out = "{\"type\":\"workers\",\"completed\":";
  out += std::to_string(s.completed);
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerProgress& w = s.workers[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    // Worker names come from the handshake: keep only JSON-safe characters
    // so a hostile or garbled name cannot break the record stream.
    for (const char c : w.name) {
      if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.') {
        out += c;
      }
    }
    out += "\",\"completed\":";
    out += std::to_string(w.completed);
    out += ",\"leased\":";
    out += std::to_string(w.leased);
    out += ",\"connected\":";
    out += w.connected ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

void JsonlProgress::on_progress(const ProgressSnapshot& s) {
  std::fprintf(out_, "%s\n", to_json(s).c_str());
  if (!s.workers.empty()) {
    std::fprintf(out_, "%s\n", workers_json(s).c_str());
  }
  if (metrics_interval_sec_ > 0.0) {
    const double t = now_();
    if (s.done || t - last_metrics_ >= metrics_interval_sec_) {
      last_metrics_ = t;
      std::fprintf(out_, "{\"type\":\"metrics\",\"completed\":%" PRIu64
                         ",\"metrics\":%s}\n",
                   s.completed,
                   telemetry::Registry::instance().snapshot_json().c_str());
    }
  }
  std::fflush(out_);
}

void MetricsProgress::on_progress(const ProgressSnapshot& s) {
  static telemetry::Gauge& g_completed = telemetry::gauge("progress.completed");
  static telemetry::Gauge& g_total = telemetry::gauge("progress.total");
  static telemetry::Gauge& g_masked = telemetry::gauge("progress.masked");
  static telemetry::Gauge& g_sdc = telemetry::gauge("progress.sdc");
  static telemetry::Gauge& g_timeout = telemetry::gauge("progress.timeout");
  static telemetry::Gauge& g_due = telemetry::gauge("progress.due");
  static telemetry::Gauge& g_rate = telemetry::gauge("progress.samples_per_sec_milli");
  static telemetry::Gauge& g_eta = telemetry::gauge("progress.eta_sec");
  static telemetry::Gauge& g_early = telemetry::gauge("progress.early_stopped");
  static telemetry::Gauge& g_done = telemetry::gauge("progress.done");
  static telemetry::Gauge& g_workers = telemetry::gauge("progress.workers");
  static telemetry::Gauge& g_live = telemetry::gauge("progress.workers_connected");
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  g_completed.set(static_cast<std::int64_t>(s.completed));
  g_total.set(static_cast<std::int64_t>(s.total));
  g_masked.set(static_cast<std::int64_t>(s.counts.masked));
  g_sdc.set(static_cast<std::int64_t>(s.counts.sdc));
  g_timeout.set(static_cast<std::int64_t>(s.counts.timeout));
  g_due.set(static_cast<std::int64_t>(s.counts.due));
  g_rate.set(static_cast<std::int64_t>(finite(s.samples_per_sec) * 1000.0));
  g_eta.set(static_cast<std::int64_t>(finite(s.eta_seconds)));
  g_early.set(s.early_stopped ? 1 : 0);
  g_done.set(s.done ? 1 : 0);
  if (!s.workers.empty()) {
    std::int64_t live = 0;
    for (const WorkerProgress& w : s.workers) live += w.connected ? 1 : 0;
    g_workers.set(static_cast<std::int64_t>(s.workers.size()));
    g_live.set(live);
  }
}

}  // namespace gras::orchestrator
