// Live campaign progress: periodic snapshots pushed to a ProgressSink.
//
// The orchestrator emits one snapshot per completed chunk plus a final one
// with done = true. Snapshots carry everything a dashboard needs: completed
// vs total samples, the outcome histogram so far, throughput, an ETA, and
// the current failure-rate estimate with its Wilson CI margin (the quantity
// the early-stop rule watches).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/campaign/campaign.h"
#include "src/common/stats.h"

namespace gras::orchestrator {

struct ProgressSnapshot {
  std::uint64_t completed = 0;  ///< samples done so far (replayed + executed)
  std::uint64_t total = 0;      ///< shard-local sample count requested
  campaign::OutcomeCounts counts;
  std::uint64_t injected = 0;
  std::uint64_t control_path_masked = 0;
  double samples_per_sec = 0.0;  ///< executed this process / elapsed wall time
  double eta_seconds = 0.0;      ///< remaining / samples_per_sec (0 if unknown)
  ProportionCi fr_ci;            ///< Wilson CI on the failure rate so far
  bool early_stopped = false;
  bool done = false;
};

/// Receiver of progress snapshots. Called from the orchestrating thread at
/// chunk boundaries — implementations may block briefly but should not stall.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void on_progress(const ProgressSnapshot& snapshot) = 0;
};

/// Human-readable one-line progress on stderr (carriage-return updates,
/// final newline when done). Throttled: intermediate snapshots are printed
/// at most every `min_interval_sec` (the final one always is).
class StderrProgress : public ProgressSink {
 public:
  explicit StderrProgress(double min_interval_sec = 0.5);
  void on_progress(const ProgressSnapshot& snapshot) override;

 private:
  double min_interval_sec_;
  double last_emit_ = -1e300;
};

/// Machine-readable progress: one JSON object per snapshot, one per line.
/// Owns the FILE* when constructed from a path.
class JsonlProgress : public ProgressSink {
 public:
  /// Appends to `path` ("-" means stdout).
  explicit JsonlProgress(const std::string& path);
  ~JsonlProgress() override;
  void on_progress(const ProgressSnapshot& snapshot) override;

  /// Formats one snapshot as a JSON object (exposed for tests).
  static std::string to_json(const ProgressSnapshot& snapshot);

 private:
  std::FILE* out_ = nullptr;
  bool owned_ = false;
};

/// Fans one snapshot stream out to two sinks (e.g. stderr + JSONL).
class TeeProgress : public ProgressSink {
 public:
  TeeProgress(ProgressSink* a, ProgressSink* b) : a_(a), b_(b) {}
  void on_progress(const ProgressSnapshot& snapshot) override {
    if (a_ != nullptr) a_->on_progress(snapshot);
    if (b_ != nullptr) b_->on_progress(snapshot);
  }

 private:
  ProgressSink* a_;
  ProgressSink* b_;
};

}  // namespace gras::orchestrator
