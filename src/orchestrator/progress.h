// Live campaign progress: periodic snapshots pushed to a ProgressSink.
//
// The orchestrator emits one snapshot per completed chunk plus a final one
// with done = true. Snapshots carry everything a dashboard needs: completed
// vs total samples, the outcome histogram so far, throughput, an ETA, and
// the current failure-rate estimate with its Wilson CI margin (the quantity
// the early-stop rule watches).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/common/stats.h"

namespace gras::orchestrator {

/// Clock used by the progress machinery: seconds on an arbitrary monotonic
/// epoch. The default-constructed (empty) function means "real steady
/// clock"; tests inject a fake to exercise throttling and ETA math without
/// sleeping.
using ProgressClock = std::function<double()>;

/// Throughput/ETA bookkeeping extracted from the orchestrator loop so the
/// math is testable under a fake clock. The window starts at construction
/// (or the last reset()); rates count only units completed inside it, which
/// is why the orchestrator feeds it executed samples, not replayed ones.
class RateTracker {
 public:
  explicit RateTracker(ProgressClock now = {});

  /// Restarts the measurement window at the current clock reading.
  void reset();
  /// Seconds since the window started (>= 0).
  double elapsed() const;
  /// `units` per second over the window; 0 before any time has passed.
  double rate(std::uint64_t units) const;
  /// Seconds until `remaining` units complete at rate(done): remaining/rate,
  /// 0 when the rate is still 0/unknown.
  double eta(std::uint64_t done, std::uint64_t remaining) const;

 private:
  ProgressClock now_;
  double start_ = 0.0;
};

/// One worker process of a distributed campaign (src/fabric/), as seen by
/// the coordinator at snapshot time.
struct WorkerProgress {
  std::string name;             ///< worker-announced name (handshake)
  std::uint64_t completed = 0;  ///< records received from this worker this run
  std::uint64_t leased = 0;     ///< samples currently leased to it
  bool connected = false;
};

struct ProgressSnapshot {
  std::uint64_t completed = 0;  ///< samples done so far (replayed + executed)
  std::uint64_t total = 0;      ///< shard-local sample count requested
  campaign::OutcomeCounts counts;
  std::uint64_t injected = 0;
  std::uint64_t control_path_masked = 0;
  double samples_per_sec = 0.0;  ///< executed this run / elapsed wall time
  double eta_seconds = 0.0;      ///< remaining / samples_per_sec (0 if unknown)
  ProportionCi fr_ci;            ///< Wilson CI on the failure rate so far
  bool early_stopped = false;
  bool done = false;
  /// Per-worker fleet progress (empty outside `gras serve`). StderrProgress
  /// appends a live/total worker count; JsonlProgress emits one extra
  /// {"type":"workers"} record after the progress line.
  std::vector<WorkerProgress> workers;
};

/// Receiver of progress snapshots. Called from the orchestrating thread at
/// chunk boundaries — implementations may block briefly but should not stall.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void on_progress(const ProgressSnapshot& snapshot) = 0;
};

/// Human-readable one-line progress on stderr (carriage-return updates,
/// final newline when done). Throttled: intermediate snapshots are printed
/// at most every `min_interval_sec` (the final one always is).
class StderrProgress : public ProgressSink {
 public:
  explicit StderrProgress(double min_interval_sec = 0.5, ProgressClock now = {});
  void on_progress(const ProgressSnapshot& snapshot) override;

 private:
  double min_interval_sec_;
  ProgressClock now_;
  double last_emit_ = -1e300;
};

/// Machine-readable progress: one JSON object per line, each tagged with a
/// "type" field. The stream opens with one {"type":"build",...} provenance
/// record, then {"type":"progress",...} snapshots; when a metrics interval
/// is set, {"type":"metrics",...} registry snapshots (see
/// common/metrics_registry.h) interleave after the progress record that
/// triggered them — at most one per interval, plus always one at done.
/// Owns the FILE* when constructed from a path.
class JsonlProgress : public ProgressSink {
 public:
  /// Appends to `path` ("-" means stdout). `metrics_interval_sec <= 0`
  /// disables metrics records entirely.
  explicit JsonlProgress(const std::string& path,
                         double metrics_interval_sec = 0.0,
                         ProgressClock now = {});
  ~JsonlProgress() override;
  void on_progress(const ProgressSnapshot& snapshot) override;

  /// Formats one snapshot as a JSON object (exposed for tests).
  static std::string to_json(const ProgressSnapshot& snapshot);
  /// Formats the per-worker fleet record emitted after a snapshot whose
  /// `workers` vector is non-empty (exposed for tests).
  static std::string workers_json(const ProgressSnapshot& snapshot);

 private:
  std::FILE* out_ = nullptr;
  bool owned_ = false;
  double metrics_interval_sec_;
  ProgressClock now_;
  double last_metrics_ = -1e300;
};

/// Mirrors each snapshot into `progress.*` registry gauges so an embedded
/// /metrics endpoint (src/common/promtext.h) exposes live campaign progress
/// next to the counters: completed/total, outcome counts, throughput
/// (millisamples/s — gauges are integral), ETA, early-stop and done flags,
/// plus worker totals when the snapshot carries fleet rows. Tee it with the
/// user-facing sink; it never writes to any stream itself.
class MetricsProgress : public ProgressSink {
 public:
  void on_progress(const ProgressSnapshot& snapshot) override;
};

/// Fans one snapshot stream out to two sinks (e.g. stderr + JSONL).
class TeeProgress : public ProgressSink {
 public:
  TeeProgress(ProgressSink* a, ProgressSink* b) : a_(a), b_(b) {}
  void on_progress(const ProgressSnapshot& snapshot) override {
    if (a_ != nullptr) a_->on_progress(snapshot);
    if (b_ != nullptr) b_->on_progress(snapshot);
  }

 private:
  ProgressSink* a_;
  ProgressSink* b_;
};

}  // namespace gras::orchestrator
