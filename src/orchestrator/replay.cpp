#include "src/orchestrator/replay.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace gras::orchestrator {
namespace {

/// Same word extraction as workloads::compare_outputs: little-endian 32-bit
/// word `w` of a byte buffer, zero-padded past the end, so the divergent
/// words listed here use the signature's global word coordinates.
std::uint32_t word_at(const std::vector<std::uint8_t>& bytes, std::size_t w) {
  std::uint32_t v = 0;
  const std::size_t base = w * 4;
  for (std::size_t i = 0; i < 4 && base + i < bytes.size(); ++i) {
    v |= std::uint32_t{bytes[base + i]} << (8 * i);
  }
  return v;
}

std::vector<DivergentWord> divergent_words(const workloads::RunOutput& golden,
                                           const workloads::RunOutput& faulty,
                                           std::size_t limit) {
  std::vector<DivergentWord> out;
  static const std::vector<std::uint8_t> kEmpty;
  const std::size_t buffers = std::max(golden.outputs.size(), faulty.outputs.size());
  std::uint64_t base = 0;
  for (std::size_t b = 0; b < buffers && out.size() < limit; ++b) {
    const auto& g = b < golden.outputs.size() ? golden.outputs[b] : kEmpty;
    const auto& f = b < faulty.outputs.size() ? faulty.outputs[b] : kEmpty;
    const std::size_t words = (std::max(g.size(), f.size()) + 3) / 4;
    for (std::size_t w = 0; w < words && out.size() < limit; ++w) {
      const std::uint32_t gw = word_at(g, w);
      const std::uint32_t fw = word_at(f, w);
      if (gw != fw) out.push_back({base + w, gw, fw});
    }
    base += words;
  }
  return out;
}

bool same_fault(const fi::FaultRecord& a, const fi::FaultRecord& b) {
  return a.level == b.level && a.structure == b.structure && a.mode == b.mode &&
         a.sm == b.sm && a.site == b.site && a.bit == b.bit && a.width == b.width &&
         a.trigger == b.trigger && a.launch == b.launch;
}

bool same_signature(const workloads::CorruptionSignature& a,
                    const workloads::CorruptionSignature& b) {
  return a.words_total == b.words_total && a.words_mismatched == b.words_mismatched &&
         a.buffers_affected == b.buffers_affected && a.first_word == b.first_word &&
         a.last_word == b.last_word && a.max_rel_error == b.max_rel_error &&
         a.bit_flips == b.bit_flips;
}

}  // namespace

ReplayResult replay_sample(const std::filesystem::path& path, std::uint64_t index,
                           std::size_t max_divergent_words) {
  const std::optional<JournalContents> contents = read_journal(path);
  if (!contents) {
    throw std::runtime_error("cannot read journal '" + path.string() + "'");
  }

  ReplayResult out;
  out.header = contents->header;
  out.journal_version = contents->version;
  const auto it = std::find_if(
      contents->records.begin(), contents->records.end(),
      [index](const JournalRecord& r) { return r.index == index; });
  if (it == contents->records.end()) {
    throw std::runtime_error("sample " + std::to_string(index) +
                             " is not in journal '" + path.string() +
                             "' (wrong shard, early-stopped, or never run)");
  }
  out.journaled = *it;

  // Rebuild the campaign context the header describes. Unknown names mean
  // the journal came from a build with apps/configs this binary lacks.
  const JournalHeader& h = out.header;
  const auto target = campaign::target_from_name(h.target);
  if (!target) {
    throw std::runtime_error("journal names unknown target '" + h.target + "'");
  }
  const std::unique_ptr<workloads::App> app = workloads::make_benchmark(h.app);
  const sim::GpuConfig config = sim::make_config(h.config);
  const campaign::GoldenRun golden = campaign::run_golden(*app, config);

  campaign::CampaignSpec spec;
  spec.kernel = h.kernel;
  spec.target = *target;
  spec.samples = h.samples;
  spec.seed = h.seed;

  workloads::RunOutput faulty;
  out.rerun = campaign::run_sample(*app, config, golden, spec, index, &faulty);

  out.outcome_match = out.rerun.outcome == out.journaled.outcome;
  out.cycles_match = out.rerun.cycles == out.journaled.cycles;
  if (out.journal_version >= 2) {
    out.fault_match = same_fault(out.rerun.fault, out.journaled.fault);
    out.signature_match =
        out.journaled.has_signature == (out.rerun.outcome == fi::Outcome::SDC) &&
        (!out.journaled.has_signature ||
         same_signature(out.rerun.signature, out.journaled.signature));
  }
  if (out.rerun.outcome == fi::Outcome::SDC && max_divergent_words > 0) {
    out.divergent = divergent_words(golden.output, faulty, max_divergent_words);
  }
  return out;
}

}  // namespace gras::orchestrator
