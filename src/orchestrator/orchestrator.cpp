#include "src/orchestrator/orchestrator.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "src/common/build_info.h"
#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras::orchestrator {
namespace {

/// Shard-local position -> campaign-wide sample index.
std::uint64_t position_to_index(std::uint64_t position, const ShardSpec& shard) {
  return shard.index + position * shard.count;
}

std::uint64_t shard_sample_count(std::uint64_t samples, const ShardSpec& shard) {
  if (shard.index >= samples) return 0;
  return (samples - shard.index + shard.count - 1) / shard.count;
}

bool index_in_shard(std::uint64_t index, const JournalHeader& h) {
  return index < h.samples && index % h.shard_count == h.shard_index;
}

std::uint64_t failures(const campaign::OutcomeCounts& c) {
  return c.sdc + c.timeout + c.due;
}

/// Accumulates one record into a shard-local histogram.
struct Accumulator {
  campaign::OutcomeCounts counts;
  std::uint64_t control_path_masked = 0;
  std::uint64_t injected = 0;

  void add(const JournalRecord& r) {
    switch (r.outcome) {
      case fi::Outcome::Masked: ++counts.masked; break;
      case fi::Outcome::SDC: ++counts.sdc; break;
      case fi::Outcome::Timeout: ++counts.timeout; break;
      case fi::Outcome::DUE: ++counts.due; break;
    }
    if (r.control_path) ++control_path_masked;
    if (r.injected) ++injected;
  }
};

}  // namespace

JournalRecord make_record(std::uint64_t index, const campaign::SampleResult& s,
                          const campaign::GoldenRun& golden) {
  JournalRecord r;
  r.index = index;
  r.cycles = s.cycles;
  r.outcome = s.outcome;
  r.injected = s.injected;
  r.control_path =
      s.outcome == fi::Outcome::Masked && s.cycles != golden.total_cycles;
  r.fault = s.fault;
  if (s.outcome == fi::Outcome::SDC) {
    r.has_signature = true;
    r.signature = s.signature;
  }
  return r;
}

SampleRunner::SampleRunner(const workloads::App& app, const sim::GpuConfig& config,
                           const campaign::GoldenRun& golden,
                           const campaign::CampaignSpec& spec, ThreadPool& pool,
                           std::uint64_t batch)
    : app_(app), config_(config), golden_(golden), spec_(spec), pool_(pool),
      batch_(batch == 0 ? 1 : batch) {}

// Restoring a checkpoint into an existing device beats constructing one per
// sample, so workspaces are pooled across run() calls.
std::unique_ptr<sim::Gpu> SampleRunner::acquire() {
  {
    const std::lock_guard<std::mutex> lock(workspaces_mu_);
    if (!workspaces_.empty()) {
      auto gpu = std::move(workspaces_.back());
      workspaces_.pop_back();
      return gpu;
    }
  }
  return std::make_unique<sim::Gpu>(config_);
}

void SampleRunner::release(std::unique_ptr<sim::Gpu> gpu) {
  const std::lock_guard<std::mutex> lock(workspaces_mu_);
  workspaces_.push_back(std::move(gpu));
}

std::vector<JournalRecord> SampleRunner::run(
    std::span<const std::uint64_t> indices,
    const std::function<void(const JournalRecord&)>& on_record) {
  std::vector<JournalRecord> records(indices.size());
  if (indices.empty()) return records;
  if (batch_ > 1) {
    // Batched: runs of up to `batch` consecutive entries execute in one
    // workspace with batched lock-step execution. Records come back only in
    // the returned vector (ascending `indices` order), never streamed —
    // callers append them at their own barrier so a mid-run kill leaves a
    // clean journal prefix.
    std::vector<std::pair<std::size_t, std::size_t>> runs;
    for (std::size_t first = 0; first < indices.size(); first += batch_) {
      runs.emplace_back(first, std::min(indices.size(), first + batch_));
    }
    pool_.parallel_for(runs.size(), [&](std::size_t run) {
      const auto [first, last] = runs[run];
      const std::span<const std::uint64_t> group = indices.subspan(first, last - first);
      const trace::Span batch_span("batch", "phase", "lanes", group.size());
      auto gpu = acquire();
      const std::vector<campaign::SampleResult> rs =
          campaign::run_batched(app_, golden_, spec_, group, *gpu);
      release(std::move(gpu));
      for (std::size_t j = first; j < last; ++j) {
        records[j] = make_record(indices[j], rs[j - first], golden_);
      }
    });
  } else {
    pool_.parallel_for(indices.size(), [&](std::size_t j) {
      const std::uint64_t index = indices[j];
      const trace::Span sample_span("sample", "phase", "index", index);
      auto gpu = acquire();
      const campaign::SampleResult s =
          campaign::run_sample(app_, golden_, spec_, index, *gpu);
      release(std::move(gpu));
      records[j] = make_record(index, s, golden_);
      if (on_record) on_record(records[j]);
    });
  }
  return records;
}

JournalHeader make_header(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::CampaignSpec& spec,
                          const DurableOptions& options) {
  JournalHeader h;
  h.app = app.name();
  h.kernel = spec.kernel;
  h.config = config.name;
  h.target = campaign::target_name(spec.target);
  h.samples = spec.samples;
  h.seed = spec.seed;
  h.shard_index = options.shard.index;
  h.shard_count = options.shard.count;
  h.margin = options.margin;
  h.confidence = options.confidence;
  h.build = build_summary();
  return h;
}

std::filesystem::path default_journal_path(const workloads::App& app,
                                           const sim::GpuConfig& config,
                                           const campaign::CampaignSpec& spec,
                                           const ShardSpec& shard) {
  std::string name = app.name();
  name += '.';
  name += spec.kernel;
  name += '.';
  name += campaign::target_name(spec.target);
  name += '.';
  name += std::to_string(spec.samples);
  name += '.';
  name += std::to_string(spec.seed);
  name += '.';
  name += config.name;
  if (shard.count > 1) {
    name += ".shard-" + std::to_string(shard.index) + "-of-" +
            std::to_string(shard.count);
  }
  name += ".jrnl";
  return std::filesystem::path(env_journal_dir()) / name;
}

DurableResult run_durable(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::GoldenRun& golden,
                          const campaign::CampaignSpec& spec, ThreadPool& pool,
                          const DurableOptions& options) {
  if (options.shard.count == 0 || options.shard.index >= options.shard.count) {
    throw std::runtime_error("invalid shard spec: index " +
                             std::to_string(options.shard.index) + " of " +
                             std::to_string(options.shard.count));
  }
  if (options.chunk == 0) throw std::runtime_error("chunk size must be positive");
  if (options.batch == 0) throw std::runtime_error("batch size must be positive");

  DurableResult out;
  out.result.spec = spec;
  out.shard_samples = shard_sample_count(spec.samples, options.shard);

  // --- Journal setup: replay a compatible journal, then append after it.
  const JournalHeader header = make_header(app, config, spec, options);
  std::unordered_map<std::uint64_t, JournalRecord> replayed;
  std::optional<std::uint64_t> prior_early_stop;
  std::unique_ptr<JournalWriter> writer;
  if (options.journaled) {
    out.journal = options.journal.empty()
                      ? default_journal_path(app, config, spec, options.shard)
                      : options.journal;
    if (options.resume) {
      if (auto contents = read_journal(out.journal)) {
        if (!contents->header.same_campaign(header) ||
            contents->header.shard_index != header.shard_index ||
            contents->header.shard_count != header.shard_count) {
          throw std::runtime_error("journal '" + out.journal.string() +
                                   "' belongs to a different campaign or shard; "
                                   "delete it or pick another path");
        }
        for (const JournalRecord& r : contents->records) {
          if (index_in_shard(r.index, header)) replayed.emplace(r.index, r);
        }
        prior_early_stop = contents->early_stop_consumed;
        writer = JournalWriter::open_resumed(out.journal, *contents);
      }
    }
    if (!writer) writer = JournalWriter::open_fresh(out.journal, header);
    if (!writer) {
      throw std::runtime_error("cannot open journal '" + out.journal.string() + "'");
    }
  }

  // --- Sample execution core, shared with the fabric worker.
  SampleRunner runner(app, config, golden, spec, pool, options.batch);

  // --- Chunked execution. Chunk boundaries are barriers: the early-stop
  // rule and progress snapshots see a deterministic prefix of the shard's
  // sample sequence regardless of thread count or which samples came from
  // the journal, so a resumed campaign makes the exact decisions the
  // uninterrupted one would have.
  Accumulator acc;
  std::uint64_t consumed = 0;
  // Rate counts executed samples, not replayed ones, and its measurement
  // window opens at the first executed sample — not at entry — so a resumed
  // campaign's replay prefix (reading and re-consuming a large journal)
  // cannot dilute the rate and inflate the ETA.
  RateTracker tracker(options.clock);
  bool rate_window_open = false;
  const auto emit = [&](bool done) {
    if (options.progress == nullptr) return;
    ProgressSnapshot s;
    s.completed = consumed;
    s.total = out.shard_samples;
    s.counts = acc.counts;
    s.injected = acc.injected;
    s.control_path_masked = acc.control_path_masked;
    s.samples_per_sec = tracker.rate(out.executed);
    s.eta_seconds = tracker.eta(out.executed, out.shard_samples - consumed);
    s.fr_ci = wilson_interval(failures(acc.counts), acc.counts.total(),
                              options.confidence);
    s.early_stopped = out.early_stopped;
    s.done = done;
    options.progress->on_progress(s);
  };

  static telemetry::Counter& c_executed =
      telemetry::counter("orchestrator.samples.executed");
  static telemetry::Counter& c_replayed =
      telemetry::counter("orchestrator.samples.replayed");
  static telemetry::Counter& c_chunks = telemetry::counter("orchestrator.chunks");

  std::vector<JournalRecord> slots;
  std::vector<std::uint64_t> missing;
  while (consumed < out.shard_samples) {
    const trace::Span chunk_span("chunk", "phase", "begin", consumed);
    c_chunks.add();
    const std::uint64_t begin = consumed;
    const std::uint64_t end = std::min(out.shard_samples, begin + options.chunk);
    slots.assign(end - begin, JournalRecord{});
    missing.clear();
    for (std::uint64_t p = begin; p < end; ++p) {
      const std::uint64_t index = position_to_index(p, options.shard);
      const auto it = replayed.find(index);
      if (it != replayed.end()) {
        slots[p - begin] = it->second;
      } else {
        missing.push_back(p);
      }
    }
    if (!missing.empty()) {
      if (!rate_window_open) {
        tracker.reset();
        rate_window_open = true;
      }
      std::vector<std::uint64_t> indices;
      indices.reserve(missing.size());
      for (const std::uint64_t p : missing) {
        indices.push_back(position_to_index(p, options.shard));
      }
      // Unbatched samples stream to the journal as they complete; with
      // batch > 1 nothing reaches the journal until the whole chunk
      // finished, and records are appended here at the chunk boundary in
      // ascending index order — either way a mid-chunk kill leaves a clean
      // prefix and resume re-runs exactly the missing samples.
      const bool stream = options.batch <= 1 && writer != nullptr;
      const std::vector<JournalRecord> records = runner.run(
          indices, stream ? [&](const JournalRecord& r) {
            const trace::Span append_span("journal.append", "journal", "index", r.index);
            writer->append(r);
          } : std::function<void(const JournalRecord&)>{});
      for (std::size_t j = 0; j < missing.size(); ++j) {
        slots[missing[j] - begin] = records[j];
        if (writer && !stream) {
          const trace::Span append_span("journal.append", "journal", "index",
                                        records[j].index);
          writer->append(records[j]);
        }
      }
      out.executed += missing.size();
      c_executed.add(missing.size());
    }
    out.replayed += (end - begin) - missing.size();
    c_replayed.add((end - begin) - missing.size());
    for (const JournalRecord& r : slots) acc.add(r);
    consumed = end;

    if (options.margin > 0.0) {
      const ProportionCi ci = wilson_interval(failures(acc.counts),
                                              acc.counts.total(), options.confidence);
      if (ci.margin() <= options.margin) {
        out.early_stopped = true;
        // Persist the stop point unless a prior run already recorded this
        // exact one (resuming a finished early-stopped journal is a no-op).
        if (writer && prior_early_stop != consumed) {
          JournalRecord marker;
          marker.kind = JournalRecord::kEarlyStop;
          marker.index = consumed;
          writer->append(marker);
        }
        break;
      }
    }
    emit(consumed == out.shard_samples);
  }
  if (writer) {
    const trace::Span sync_span("journal.sync", "journal");
    writer->sync();
  }
  if (out.early_stopped || out.shard_samples == 0) emit(true);

  out.result.counts = acc.counts;
  out.result.control_path_masked = acc.control_path_masked;
  out.result.injected = acc.injected;
  return out;
}

std::filesystem::path default_pruned_journal_path(const workloads::App& app,
                                                  const sim::GpuConfig& config,
                                                  const campaign::CampaignSpec& spec) {
  std::filesystem::path path = default_journal_path(app, config, spec, ShardSpec{});
  path.replace_extension(".pruned.jrnl");
  return path;
}

PrunedDurableResult run_pruned_durable(const workloads::App& app,
                                       const sim::GpuConfig& config,
                                       const campaign::GoldenRun& golden,
                                       const campaign::CampaignSpec& spec,
                                       const campaign::PruneClassing& classing,
                                       ThreadPool& pool,
                                       const DurableOptions& options) {
  if (!campaign::prunable(spec.target)) {
    throw std::invalid_argument("pruned campaign: target must be SVF or SVF-LD");
  }
  if (options.shard.count != 1) {
    throw std::runtime_error("pruned campaigns cannot shard: classes, not index "
                             "strides, partition the work");
  }
  if (options.chunk == 0) throw std::runtime_error("chunk size must be positive");
  if (options.batch == 0) throw std::runtime_error("batch size must be positive");

  PrunedDurableResult out;
  out.result.spec = spec;
  out.result.plan =
      campaign::plan_pruned(classing, golden, spec, 0, campaign::pruned_rep_budget(spec));
  const campaign::PrunePlan& plan = out.result.plan;
  out.planned = plan.rep_samples.size();

  // index -> (plan position); class/weight annotations come from the plan.
  std::unordered_map<std::uint64_t, std::size_t> position_of;
  position_of.reserve(plan.rep_samples.size());
  for (std::size_t i = 0; i < plan.rep_samples.size(); ++i) {
    position_of.emplace(plan.rep_samples[i], i);
  }
  const auto annotate = [&](JournalRecord r) {
    const auto it = position_of.find(r.index);
    if (it != position_of.end() && r.kind == JournalRecord::kSample) {
      const std::uint32_t cls = plan.rep_class[it->second];
      r.class_id = cls;
      r.class_weight = classing.class_population[cls];
    }
    return r;
  };

  // --- Journal setup mirrors run_durable, on the pruned path.
  const JournalHeader header = make_header(app, config, spec, options);
  std::unordered_map<std::uint64_t, JournalRecord> replayed;
  std::optional<std::uint64_t> prior_early_stop;
  std::unique_ptr<JournalWriter> writer;
  if (options.journaled) {
    out.journal = options.journal.empty()
                      ? default_pruned_journal_path(app, config, spec)
                      : options.journal;
    if (options.resume) {
      if (auto contents = read_journal(out.journal)) {
        if (!contents->header.same_campaign(header)) {
          throw std::runtime_error("journal '" + out.journal.string() +
                                   "' belongs to a different campaign; "
                                   "delete it or pick another path");
        }
        for (const JournalRecord& r : contents->records) {
          if (position_of.count(r.index) != 0) replayed.emplace(r.index, r);
        }
        prior_early_stop = contents->early_stop_consumed;
        writer = JournalWriter::open_resumed(out.journal, *contents);
      }
    }
    if (!writer) writer = JournalWriter::open_fresh(out.journal, header);
    if (!writer) {
      throw std::runtime_error("cannot open journal '" + out.journal.string() + "'");
    }
  }

  SampleRunner runner(app, config, golden, spec, pool, options.batch);

  std::vector<fi::Outcome> outcomes(plan.rep_samples.size(), fi::Outcome::Masked);
  Accumulator acc;
  std::uint64_t consumed = 0;
  RateTracker tracker(options.clock);
  bool rate_window_open = false;
  const auto emit = [&](bool done) {
    if (options.progress == nullptr) return;
    ProgressSnapshot s;
    s.completed = consumed;
    s.total = plan.rep_samples.size();
    s.counts = acc.counts;
    s.injected = acc.injected;
    s.control_path_masked = acc.control_path_masked;
    s.samples_per_sec = tracker.rate(out.executed);
    s.eta_seconds = tracker.eta(out.executed, plan.rep_samples.size() - consumed);
    s.fr_ci = campaign::estimate_pruned(
                  classing, plan, std::span<const fi::Outcome>(outcomes.data(), consumed))
                  .fr_ci(options.confidence);
    s.early_stopped = out.early_stopped;
    s.done = done;
    options.progress->on_progress(s);
  };

  std::vector<JournalRecord> slots;
  std::vector<std::uint64_t> missing;  // plan positions
  while (consumed < plan.rep_samples.size()) {
    const std::uint64_t begin = consumed;
    const std::uint64_t end =
        std::min<std::uint64_t>(plan.rep_samples.size(), begin + options.chunk);
    slots.assign(end - begin, JournalRecord{});
    missing.clear();
    for (std::uint64_t p = begin; p < end; ++p) {
      const auto it = replayed.find(plan.rep_samples[p]);
      if (it != replayed.end()) {
        slots[p - begin] = it->second;
      } else {
        missing.push_back(p);
      }
    }
    if (!missing.empty()) {
      if (!rate_window_open) {
        tracker.reset();
        rate_window_open = true;
      }
      std::vector<std::uint64_t> indices;
      indices.reserve(missing.size());
      for (const std::uint64_t p : missing) indices.push_back(plan.rep_samples[p]);
      const bool stream = options.batch <= 1 && writer != nullptr;
      const std::vector<JournalRecord> records = runner.run(
          indices, stream ? [&](const JournalRecord& r) { writer->append(annotate(r)); }
                          : std::function<void(const JournalRecord&)>{});
      for (std::size_t j = 0; j < missing.size(); ++j) {
        slots[missing[j] - begin] = annotate(records[j]);
        if (writer && !stream) writer->append(slots[missing[j] - begin]);
      }
      out.executed += missing.size();
    }
    out.replayed += (end - begin) - missing.size();
    for (std::uint64_t p = begin; p < end; ++p) {
      acc.add(slots[p - begin]);
      outcomes[p] = slots[p - begin].outcome;
    }
    consumed = end;

    if (options.margin > 0.0) {
      const ProportionCi ci =
          campaign::estimate_pruned(
              classing, plan, std::span<const fi::Outcome>(outcomes.data(), consumed))
              .fr_ci(options.confidence);
      if (ci.margin() <= options.margin) {
        out.early_stopped = true;
        if (writer && prior_early_stop != consumed) {
          JournalRecord marker;
          marker.kind = JournalRecord::kEarlyStop;
          marker.index = consumed;
          writer->append(marker);
        }
        break;
      }
    }
    emit(consumed == plan.rep_samples.size());
  }
  if (writer) writer->sync();
  if (out.early_stopped || plan.rep_samples.empty()) emit(true);

  out.result.estimate = campaign::estimate_pruned(
      classing, plan, std::span<const fi::Outcome>(outcomes.data(), consumed));
  out.result.raw = acc.counts;
  out.result.injected = acc.injected;
  return out;
}

MergedCampaign merge_shards(const std::vector<std::filesystem::path>& journals) {
  if (journals.empty()) throw std::runtime_error("no journals to merge");

  // Validation is exhaustive, not fail-fast: every journal is checked and
  // every violation is reported per file in one error, so a botched merge
  // invocation (duplicate shard, foreign campaign, damaged file) is fixed
  // in one round trip instead of one error at a time.
  MergedCampaign merged;
  std::vector<bool> seen;
  bool have_reference = false;
  Accumulator acc;
  std::vector<std::string> problems;
  const auto problem = [&](const std::filesystem::path& path, std::string what) {
    problems.push_back(path.string() + ": " + std::move(what));
  };
  for (std::size_t i = 0; i < journals.size(); ++i) {
    const auto contents = read_journal(journals[i]);
    if (!contents) {
      problem(journals[i], "cannot read journal (missing or damaged header)");
      continue;
    }
    const JournalHeader& h = contents->header;
    if (!have_reference) {
      merged.header = h;
      have_reference = true;
      if (h.shard_count != journals.size()) {
        problem(journals[i],
                "campaign has " + std::to_string(h.shard_count) + " shards but " +
                    std::to_string(journals.size()) + " journals were given");
      }
      seen.assign(h.shard_count, false);
    } else if (!h.same_campaign(merged.header)) {
      problem(journals[i],
              "belongs to a different campaign (fingerprint mismatch: " +
                  h.app + "/" + h.kernel + "/" + h.target + ", " +
                  std::to_string(h.samples) + " samples, seed " +
                  std::to_string(h.seed) + ")");
      continue;
    } else if (h.shard_count != merged.header.shard_count) {
      problem(journals[i], "disagrees on the shard count (" +
                               std::to_string(h.shard_count) + " vs " +
                               std::to_string(merged.header.shard_count) + ")");
      continue;
    }
    if (h.shard_index >= h.shard_count) {
      problem(journals[i], "shard index " + std::to_string(h.shard_index) +
                               " exceeds the shard count " +
                               std::to_string(h.shard_count));
      continue;
    }
    if (h.shard_index < seen.size() && seen[h.shard_index]) {
      problem(journals[i],
              "repeats shard " + std::to_string(h.shard_index) + "/" +
                  std::to_string(h.shard_count) + " (duplicate journal?)");
      continue;
    }
    if (h.shard_index < seen.size()) seen[h.shard_index] = true;

    ShardSpec shard{h.shard_index, h.shard_count};
    const std::uint64_t expected = shard_sample_count(h.samples, shard);
    std::uint64_t count = 0;
    bool strayed = false;
    for (const JournalRecord& r : contents->records) {
      if (!index_in_shard(r.index, h)) {
        if (!strayed) {
          problem(journals[i], "holds sample " + std::to_string(r.index) +
                                   " outside its shard stride");
        }
        strayed = true;
        continue;
      }
      acc.add(r);
      ++count;
    }
    if (contents->early_stop_consumed) {
      merged.early_stopped = true;
      if (count != *contents->early_stop_consumed) {
        problem(journals[i], "early-stopped at " +
                                 std::to_string(*contents->early_stop_consumed) +
                                 " samples but holds " + std::to_string(count));
      }
    } else if (count != expected) {
      problem(journals[i], "holds " + std::to_string(count) + " of " +
                               std::to_string(expected) +
                               " samples (incomplete shard; resume it first)");
    }
  }
  if (!problems.empty()) {
    std::string what = "cannot merge " + std::to_string(journals.size()) +
                       " journal(s); " + std::to_string(problems.size()) +
                       " problem(s):";
    for (const std::string& p : problems) {
      what += "\n  ";
      what += p;
    }
    throw std::runtime_error(what);
  }

  merged.result.spec.kernel = merged.header.kernel;
  merged.result.spec.samples = merged.header.samples;
  merged.result.spec.seed = merged.header.seed;
  if (const auto t = campaign::target_from_name(merged.header.target)) {
    merged.result.spec.target = *t;
  }
  merged.result.counts = acc.counts;
  merged.result.control_path_masked = acc.control_path_masked;
  merged.result.injected = acc.injected;
  return merged;
}

}  // namespace gras::orchestrator
