#include "src/orchestrator/orchestrator.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "src/common/build_info.h"
#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras::orchestrator {
namespace {

/// Shard-local position -> campaign-wide sample index.
std::uint64_t position_to_index(std::uint64_t position, const ShardSpec& shard) {
  return shard.index + position * shard.count;
}

std::uint64_t shard_sample_count(std::uint64_t samples, const ShardSpec& shard) {
  if (shard.index >= samples) return 0;
  return (samples - shard.index + shard.count - 1) / shard.count;
}

bool index_in_shard(std::uint64_t index, const JournalHeader& h) {
  return index < h.samples && index % h.shard_count == h.shard_index;
}

std::uint64_t failures(const campaign::OutcomeCounts& c) {
  return c.sdc + c.timeout + c.due;
}

JournalRecord to_record(std::uint64_t index, const campaign::SampleResult& s,
                        const campaign::GoldenRun& golden) {
  JournalRecord r;
  r.index = index;
  r.cycles = s.cycles;
  r.outcome = s.outcome;
  r.injected = s.injected;
  r.control_path =
      s.outcome == fi::Outcome::Masked && s.cycles != golden.total_cycles;
  r.fault = s.fault;
  if (s.outcome == fi::Outcome::SDC) {
    r.has_signature = true;
    r.signature = s.signature;
  }
  return r;
}

/// Accumulates one record into a shard-local histogram.
struct Accumulator {
  campaign::OutcomeCounts counts;
  std::uint64_t control_path_masked = 0;
  std::uint64_t injected = 0;

  void add(const JournalRecord& r) {
    switch (r.outcome) {
      case fi::Outcome::Masked: ++counts.masked; break;
      case fi::Outcome::SDC: ++counts.sdc; break;
      case fi::Outcome::Timeout: ++counts.timeout; break;
      case fi::Outcome::DUE: ++counts.due; break;
    }
    if (r.control_path) ++control_path_masked;
    if (r.injected) ++injected;
  }
};

}  // namespace

JournalHeader make_header(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::CampaignSpec& spec,
                          const DurableOptions& options) {
  JournalHeader h;
  h.app = app.name();
  h.kernel = spec.kernel;
  h.config = config.name;
  h.target = campaign::target_name(spec.target);
  h.samples = spec.samples;
  h.seed = spec.seed;
  h.shard_index = options.shard.index;
  h.shard_count = options.shard.count;
  h.margin = options.margin;
  h.confidence = options.confidence;
  h.build = build_summary();
  return h;
}

std::filesystem::path default_journal_path(const workloads::App& app,
                                           const sim::GpuConfig& config,
                                           const campaign::CampaignSpec& spec,
                                           const ShardSpec& shard) {
  std::string name = app.name();
  name += '.';
  name += spec.kernel;
  name += '.';
  name += campaign::target_name(spec.target);
  name += '.';
  name += std::to_string(spec.samples);
  name += '.';
  name += std::to_string(spec.seed);
  name += '.';
  name += config.name;
  if (shard.count > 1) {
    name += ".shard-" + std::to_string(shard.index) + "-of-" +
            std::to_string(shard.count);
  }
  name += ".jrnl";
  return std::filesystem::path(env_journal_dir()) / name;
}

DurableResult run_durable(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::GoldenRun& golden,
                          const campaign::CampaignSpec& spec, ThreadPool& pool,
                          const DurableOptions& options) {
  if (options.shard.count == 0 || options.shard.index >= options.shard.count) {
    throw std::runtime_error("invalid shard spec: index " +
                             std::to_string(options.shard.index) + " of " +
                             std::to_string(options.shard.count));
  }
  if (options.chunk == 0) throw std::runtime_error("chunk size must be positive");
  if (options.batch == 0) throw std::runtime_error("batch size must be positive");

  DurableResult out;
  out.result.spec = spec;
  out.shard_samples = shard_sample_count(spec.samples, options.shard);

  // --- Journal setup: replay a compatible journal, then append after it.
  const JournalHeader header = make_header(app, config, spec, options);
  std::unordered_map<std::uint64_t, JournalRecord> replayed;
  std::optional<std::uint64_t> prior_early_stop;
  std::unique_ptr<JournalWriter> writer;
  if (options.journaled) {
    out.journal = options.journal.empty()
                      ? default_journal_path(app, config, spec, options.shard)
                      : options.journal;
    if (options.resume) {
      if (auto contents = read_journal(out.journal)) {
        if (!contents->header.same_campaign(header) ||
            contents->header.shard_index != header.shard_index ||
            contents->header.shard_count != header.shard_count) {
          throw std::runtime_error("journal '" + out.journal.string() +
                                   "' belongs to a different campaign or shard; "
                                   "delete it or pick another path");
        }
        for (const JournalRecord& r : contents->records) {
          if (index_in_shard(r.index, header)) replayed.emplace(r.index, r);
        }
        prior_early_stop = contents->early_stop_consumed;
        writer = JournalWriter::open_resumed(out.journal, *contents);
      }
    }
    if (!writer) writer = JournalWriter::open_fresh(out.journal, header);
    if (!writer) {
      throw std::runtime_error("cannot open journal '" + out.journal.string() + "'");
    }
  }

  // --- Per-worker Gpu workspaces, as in run_campaign: restoring a
  // checkpoint into an existing device beats constructing one per sample.
  std::mutex workspaces_mu;
  std::vector<std::unique_ptr<sim::Gpu>> workspaces;
  const auto acquire = [&]() -> std::unique_ptr<sim::Gpu> {
    {
      const std::lock_guard<std::mutex> lock(workspaces_mu);
      if (!workspaces.empty()) {
        auto gpu = std::move(workspaces.back());
        workspaces.pop_back();
        return gpu;
      }
    }
    return std::make_unique<sim::Gpu>(config);
  };
  const auto release = [&](std::unique_ptr<sim::Gpu> gpu) {
    const std::lock_guard<std::mutex> lock(workspaces_mu);
    workspaces.push_back(std::move(gpu));
  };

  // --- Chunked execution. Chunk boundaries are barriers: the early-stop
  // rule and progress snapshots see a deterministic prefix of the shard's
  // sample sequence regardless of thread count or which samples came from
  // the journal, so a resumed campaign makes the exact decisions the
  // uninterrupted one would have.
  Accumulator acc;
  std::uint64_t consumed = 0;
  const RateTracker tracker;  // rate counts executed samples, not replayed
  const auto emit = [&](bool done) {
    if (options.progress == nullptr) return;
    ProgressSnapshot s;
    s.completed = consumed;
    s.total = out.shard_samples;
    s.counts = acc.counts;
    s.injected = acc.injected;
    s.control_path_masked = acc.control_path_masked;
    s.samples_per_sec = tracker.rate(out.executed);
    s.eta_seconds = tracker.eta(out.executed, out.shard_samples - consumed);
    s.fr_ci = wilson_interval(failures(acc.counts), acc.counts.total(),
                              options.confidence);
    s.early_stopped = out.early_stopped;
    s.done = done;
    options.progress->on_progress(s);
  };

  static telemetry::Counter& c_executed =
      telemetry::counter("orchestrator.samples.executed");
  static telemetry::Counter& c_replayed =
      telemetry::counter("orchestrator.samples.replayed");
  static telemetry::Counter& c_chunks = telemetry::counter("orchestrator.chunks");

  std::vector<JournalRecord> slots;
  std::vector<std::uint64_t> missing;
  while (consumed < out.shard_samples) {
    const trace::Span chunk_span("chunk", "phase", "begin", consumed);
    c_chunks.add();
    const std::uint64_t begin = consumed;
    const std::uint64_t end = std::min(out.shard_samples, begin + options.chunk);
    slots.assign(end - begin, JournalRecord{});
    missing.clear();
    for (std::uint64_t p = begin; p < end; ++p) {
      const std::uint64_t index = position_to_index(p, options.shard);
      const auto it = replayed.find(index);
      if (it != replayed.end()) {
        slots[p - begin] = it->second;
      } else {
        missing.push_back(p);
      }
    }
    if (!missing.empty() && options.batch > 1) {
      // Batched: consecutive missing positions form runs of up to `batch`
      // samples, each executed in one workspace with batched lock-step
      // execution. Records are buffered and appended at the chunk boundary
      // in ascending index order — nothing reaches the journal until its
      // whole run finished, so a mid-chunk kill leaves a clean prefix and
      // resume re-runs exactly the missing samples.
      std::vector<std::pair<std::size_t, std::size_t>> runs;
      for (std::size_t first = 0; first < missing.size(); first += options.batch) {
        runs.emplace_back(first, std::min(missing.size(), first + options.batch));
      }
      pool.parallel_for(runs.size(), [&](std::size_t run) {
        const auto [first, last] = runs[run];
        std::vector<std::uint64_t> indices;
        indices.reserve(last - first);
        for (std::size_t j = first; j < last; ++j) {
          indices.push_back(position_to_index(missing[j], options.shard));
        }
        const trace::Span batch_span("batch", "phase", "lanes", indices.size());
        auto gpu = acquire();
        const std::vector<campaign::SampleResult> rs =
            campaign::run_batched(app, golden, spec, indices, *gpu);
        release(std::move(gpu));
        for (std::size_t j = first; j < last; ++j) {
          slots[missing[j] - begin] = to_record(indices[j - first], rs[j - first], golden);
        }
      });
      if (writer) {
        for (const std::uint64_t p : missing) {
          const std::uint64_t index = position_to_index(p, options.shard);
          const trace::Span append_span("journal.append", "journal", "index", index);
          writer->append(slots[p - begin]);
        }
      }
      out.executed += missing.size();
      c_executed.add(missing.size());
    } else if (!missing.empty()) {
      pool.parallel_for(missing.size(), [&](std::size_t j) {
        const std::uint64_t p = missing[j];
        const std::uint64_t index = position_to_index(p, options.shard);
        const trace::Span sample_span("sample", "phase", "index", index);
        auto gpu = acquire();
        const campaign::SampleResult s =
            campaign::run_sample(app, golden, spec, index, *gpu);
        release(std::move(gpu));
        const JournalRecord r = to_record(index, s, golden);
        slots[p - begin] = r;
        if (writer) {
          const trace::Span append_span("journal.append", "journal", "index", index);
          writer->append(r);
        }
      });
      out.executed += missing.size();
      c_executed.add(missing.size());
    }
    out.replayed += (end - begin) - missing.size();
    c_replayed.add((end - begin) - missing.size());
    for (const JournalRecord& r : slots) acc.add(r);
    consumed = end;

    if (options.margin > 0.0) {
      const ProportionCi ci = wilson_interval(failures(acc.counts),
                                              acc.counts.total(), options.confidence);
      if (ci.margin() <= options.margin) {
        out.early_stopped = true;
        // Persist the stop point unless a prior run already recorded this
        // exact one (resuming a finished early-stopped journal is a no-op).
        if (writer && prior_early_stop != consumed) {
          JournalRecord marker;
          marker.kind = JournalRecord::kEarlyStop;
          marker.index = consumed;
          writer->append(marker);
        }
        break;
      }
    }
    emit(consumed == out.shard_samples);
  }
  if (writer) {
    const trace::Span sync_span("journal.sync", "journal");
    writer->sync();
  }
  if (out.early_stopped || out.shard_samples == 0) emit(true);

  out.result.counts = acc.counts;
  out.result.control_path_masked = acc.control_path_masked;
  out.result.injected = acc.injected;
  return out;
}

MergedCampaign merge_shards(const std::vector<std::filesystem::path>& journals) {
  if (journals.empty()) throw std::runtime_error("no journals to merge");

  MergedCampaign merged;
  std::vector<bool> seen;
  Accumulator acc;
  for (std::size_t i = 0; i < journals.size(); ++i) {
    const auto contents = read_journal(journals[i]);
    if (!contents) {
      throw std::runtime_error("cannot read journal '" + journals[i].string() + "'");
    }
    const JournalHeader& h = contents->header;
    if (i == 0) {
      merged.header = h;
      if (h.shard_count != journals.size()) {
        throw std::runtime_error(
            "campaign has " + std::to_string(h.shard_count) + " shards but " +
            std::to_string(journals.size()) + " journals were given");
      }
      seen.assign(h.shard_count, false);
    } else if (!h.same_campaign(merged.header)) {
      throw std::runtime_error("journal '" + journals[i].string() +
                               "' belongs to a different campaign (fingerprint "
                               "mismatch)");
    } else if (h.shard_count != merged.header.shard_count) {
      throw std::runtime_error("journal '" + journals[i].string() +
                               "' disagrees on the shard count");
    }
    if (h.shard_index >= h.shard_count || seen[h.shard_index]) {
      throw std::runtime_error("journal '" + journals[i].string() +
                               "' repeats or exceeds shard " +
                               std::to_string(h.shard_index));
    }
    seen[h.shard_index] = true;

    ShardSpec shard{h.shard_index, h.shard_count};
    const std::uint64_t expected = shard_sample_count(h.samples, shard);
    std::uint64_t count = 0;
    for (const JournalRecord& r : contents->records) {
      if (!index_in_shard(r.index, h)) {
        throw std::runtime_error("journal '" + journals[i].string() +
                                 "' holds sample " + std::to_string(r.index) +
                                 " outside its shard stride");
      }
      acc.add(r);
      ++count;
    }
    if (contents->early_stop_consumed) {
      merged.early_stopped = true;
      if (count != *contents->early_stop_consumed) {
        throw std::runtime_error("journal '" + journals[i].string() +
                                 "' early-stopped at " +
                                 std::to_string(*contents->early_stop_consumed) +
                                 " samples but holds " + std::to_string(count));
      }
    } else if (count != expected) {
      throw std::runtime_error("journal '" + journals[i].string() + "' holds " +
                               std::to_string(count) + " of " +
                               std::to_string(expected) +
                               " samples (incomplete shard; resume it first)");
    }
  }

  merged.result.spec.kernel = merged.header.kernel;
  merged.result.spec.samples = merged.header.samples;
  merged.result.spec.seed = merged.header.seed;
  if (const auto t = campaign::target_from_name(merged.header.target)) {
    merged.result.spec.target = *t;
  }
  merged.result.counts = acc.counts;
  merged.result.control_path_masked = acc.control_path_masked;
  merged.result.injected = acc.injected;
  return merged;
}

}  // namespace gras::orchestrator
