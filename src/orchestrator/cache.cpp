#include "src/orchestrator/cache.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>

#include "src/common/env.h"
#include "src/orchestrator/journal.h"
#include "src/orchestrator/orchestrator.h"

namespace gras::orchestrator {
namespace {

using campaign::CampaignResult;
using campaign::CampaignSpec;

std::filesystem::path cache_dir() { return std::filesystem::path(env_cache_dir()); }

std::filesystem::path key_path(const workloads::App& app, const sim::GpuConfig& config,
                               const CampaignSpec& spec) {
  std::string name = app.name();
  name += '.';
  name += spec.kernel;
  name += '.';
  name += campaign::target_name(spec.target);
  name += '.';
  name += std::to_string(spec.samples);
  name += '.';
  name += std::to_string(spec.seed);
  name += '.';
  name += config.name;
  name += ".txt";
  return cache_dir() / name;
}

bool load(const std::filesystem::path& path, CampaignResult& result) {
  std::FILE* f = std::fopen(path.string().c_str(), "r");
  if (f == nullptr) return false;
  std::uint64_t masked, sdc, timeout, due, control, injected;
  const int n = std::fscanf(f, "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                               " %" SCNu64 " %" SCNu64,
                            &masked, &sdc, &timeout, &due, &control, &injected);
  std::fclose(f);
  if (n != 6) return false;
  result.counts.masked = masked;
  result.counts.sdc = sdc;
  result.counts.timeout = timeout;
  result.counts.due = due;
  result.control_path_masked = control;
  result.injected = injected;
  return true;
}

void store(const std::filesystem::path& path, const CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
               result.counts.masked, result.counts.sdc, result.counts.timeout,
               result.counts.due, result.control_path_masked, result.injected);
  // Atomic-publish discipline: data durable before the rename exposes it,
  // and the directory entry durable after. Best effort — a lost cache entry
  // only costs a re-run, never a wrong result.
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  std::filesystem::rename(tmp, path, ec);
  if (!ec) fsync_parent_dir(path);
}

}  // namespace

CampaignResult cached_campaign(const workloads::App& app, const sim::GpuConfig& config,
                               const campaign::GoldenRun& golden,
                               const CampaignSpec& spec, ThreadPool& pool) {
  const std::filesystem::path path = key_path(app, config, spec);
  CampaignResult result;
  result.spec = spec;
  if (load(path, result)) return result;
  // Miss: run durably so an interrupted bench run resumes instead of
  // restarting. The journal is only a recovery log here — once the result
  // is in the cache it can never be consulted again, so drop it. Batching
  // follows the ambient GRAS_BATCH so bench sweeps (and the CI batch smoke)
  // exercise the batched path without per-binary plumbing; results are
  // bit-identical at any batch size.
  DurableOptions options;
  options.batch = env_batch();
  const DurableResult durable = run_durable(app, config, golden, spec, pool, options);
  store(path, durable.result);
  std::error_code ec;
  std::filesystem::remove(durable.journal, ec);
  return durable.result;
}

campaign::KernelCampaigns cached_kernel_sweep(
    const workloads::App& app, const sim::GpuConfig& config,
    const campaign::GoldenRun& golden, const std::string& kernel,
    std::span<const campaign::Target> targets, std::uint64_t samples,
    std::uint64_t seed, ThreadPool& pool) {
  campaign::KernelCampaigns out;
  for (campaign::Target t : targets) {
    CampaignSpec spec;
    spec.kernel = kernel;
    spec.target = t;
    spec.samples = samples;
    spec.seed = seed;
    out.emplace(t, cached_campaign(app, config, golden, spec, pool));
  }
  return out;
}

}  // namespace gras::orchestrator
