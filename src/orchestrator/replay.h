// Deterministic re-execution of journaled fault-injection samples.
//
// Every campaign sample is a pure function of (campaign identity, sample
// index): the injector RNG is seeded from (seed ^ target, index) and the
// simulator is single-threaded per sample. A journal header carries the full
// campaign identity, so any journaled sample can be re-run bit-identically
// long after the campaign finished — the forensic loop the paper's SDC
// anatomy needs ("show me exactly which fault produced this corruption").
//
// replay_sample rebuilds the app + config from the header, re-runs the one
// sample (reusing launch-boundary checkpoint fast-forward like the campaign
// hot path), and diffs the rerun against the journaled record. A mismatch
// means the journal and the binary disagree — typically a journal produced
// by a different build of the simulator.
#pragma once

#include <filesystem>

#include "src/campaign/campaign.h"
#include "src/orchestrator/journal.h"

namespace gras::orchestrator {

/// One output word where the faulty rerun differs from golden.
struct DivergentWord {
  std::uint64_t word = 0;  ///< global word index (compare_outputs coordinates)
  std::uint32_t golden = 0;
  std::uint32_t faulty = 0;
};

struct ReplayResult {
  JournalHeader header;
  std::uint32_t journal_version = kJournalVersion;
  JournalRecord journaled;        ///< the record as read from the journal
  campaign::SampleResult rerun;   ///< the same sample re-executed now

  bool outcome_match = false;
  bool cycles_match = false;
  /// Fault provenance and SDC signature agreement. v1 journals carry
  /// neither, so both stay true there (nothing to contradict).
  bool fault_match = true;
  bool signature_match = true;
  bool matches() const {
    return outcome_match && cycles_match && fault_match && signature_match;
  }

  /// First divergent output words of an SDC rerun (empty otherwise), capped
  /// at the `max_divergent_words` passed to replay_sample.
  std::vector<DivergentWord> divergent;
};

/// Re-executes the journaled sample `index` (campaign-wide numbering) of the
/// journal at `path` and diffs it against the record. Throws
/// std::runtime_error when the journal is unreadable, the index was never
/// journaled, or the header names an unknown app/config/target.
ReplayResult replay_sample(const std::filesystem::path& path, std::uint64_t index,
                           std::size_t max_divergent_words = 8);

}  // namespace gras::orchestrator
