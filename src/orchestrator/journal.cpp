#include "src/orchestrator/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "src/common/env.h"

namespace gras::orchestrator {
namespace {

constexpr char kMagic[8] = {'G', 'R', 'A', 'S', 'J', 'R', 'N', '1'};

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t hash = 14695981039346656037ULL) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked cursor over a byte buffer; get_* return false on underrun.
struct Cursor {
  const char* p;
  std::size_t left;
  bool get(void* dst, std::size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool get_u32(std::uint32_t& v) { return get(&v, sizeof v); }
  bool get_u64(std::uint64_t& v) { return get(&v, sizeof v); }
  bool get_f64(double& v) { return get(&v, sizeof v); }
  bool get_str(std::string& s) {
    std::uint32_t n = 0;
    if (!get_u32(n) || left < n || n > (1u << 20)) return false;
    s.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

std::string serialize_header(const JournalHeader& h) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kJournalVersion);
  put_u32(out, h.shard_index);
  put_u32(out, h.shard_count);
  put_u32(out, 0);  // reserved
  put_u64(out, h.samples);
  put_u64(out, h.seed);
  put_f64(out, h.margin);
  put_f64(out, h.confidence);
  put_str(out, h.app);
  put_str(out, h.kernel);
  put_str(out, h.config);
  put_str(out, h.target);
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

void serialize_record(const JournalRecord& r, char out[kRecordBytes]) {
  std::memcpy(out, &r.index, 8);
  std::memcpy(out + 8, &r.cycles, 8);
  out[16] = static_cast<char>(r.outcome);
  out[17] = static_cast<char>(r.injected ? 1 : 0);
  out[18] = static_cast<char>(r.control_path ? 1 : 0);
  out[19] = static_cast<char>(r.kind);
  const auto sum = static_cast<std::uint32_t>(fnv1a(out, 20));
  std::memcpy(out + 20, &sum, 4);
}

bool deserialize_record(const char in[kRecordBytes], JournalRecord& r) {
  std::uint32_t stored = 0;
  std::memcpy(&stored, in + 20, 4);
  if (stored != static_cast<std::uint32_t>(fnv1a(in, 20))) return false;
  std::memcpy(&r.index, in, 8);
  std::memcpy(&r.cycles, in + 8, 8);
  const auto outcome = static_cast<unsigned char>(in[16]);
  if (outcome > static_cast<unsigned char>(fi::Outcome::DUE)) return false;
  r.outcome = static_cast<fi::Outcome>(outcome);
  r.injected = in[17] != 0;
  r.control_path = in[18] != 0;
  r.kind = static_cast<std::uint8_t>(in[19]);
  if (r.kind != JournalRecord::kSample && r.kind != JournalRecord::kEarlyStop) {
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t JournalHeader::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix_str = [&h](const std::string& s) {
    h = fnv1a(s.data(), s.size(), h);
    h = fnv1a("\0", 1, h);  // keep ("ab","c") distinct from ("a","bc")
  };
  mix_str(app);
  mix_str(kernel);
  mix_str(config);
  mix_str(target);
  h = fnv1a(&samples, sizeof samples, h);
  h = fnv1a(&seed, sizeof seed, h);
  h = fnv1a(&margin, sizeof margin, h);
  h = fnv1a(&confidence, sizeof confidence, h);
  return h;
}

std::optional<JournalContents> read_journal(const std::filesystem::path& path) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }

  Cursor c{bytes.data(), bytes.size()};
  char magic[8];
  std::uint32_t version = 0, reserved = 0;
  JournalContents out;
  JournalHeader& h = out.header;
  if (!c.get(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return std::nullopt;
  }
  if (!c.get_u32(version) || version != kJournalVersion) return std::nullopt;
  if (!c.get_u32(h.shard_index) || !c.get_u32(h.shard_count) || !c.get_u32(reserved) ||
      !c.get_u64(h.samples) || !c.get_u64(h.seed) || !c.get_f64(h.margin) ||
      !c.get_f64(h.confidence) || !c.get_str(h.app) || !c.get_str(h.kernel) ||
      !c.get_str(h.config) || !c.get_str(h.target)) {
    return std::nullopt;
  }
  const std::size_t header_bytes = bytes.size() - c.left;
  std::uint64_t stored = 0;
  if (!c.get_u64(stored) || stored != fnv1a(bytes.data(), header_bytes)) {
    return std::nullopt;
  }
  out.valid_bytes = header_bytes + sizeof stored;

  // Records: stop at the first torn or checksum-damaged one; everything from
  // there on is an untrusted tail (crash mid-write) and gets dropped.
  while (c.left >= kRecordBytes) {
    JournalRecord r;
    if (!deserialize_record(c.p, r)) break;
    c.p += kRecordBytes;
    c.left -= kRecordBytes;
    out.valid_bytes += kRecordBytes;
    if (r.kind == JournalRecord::kEarlyStop) {
      out.early_stop_consumed = r.index;
    } else {
      out.records.push_back(r);
    }
  }
  out.dropped_bytes = c.left;
  return out;
}

struct JournalWriter::Impl {
  int fd = -1;
  bool do_fsync = true;
  std::mutex mu;
  std::condition_variable cv;        ///< wakes the writer thread
  std::condition_variable drained;   ///< wakes sync() waiters
  std::deque<JournalRecord> queue;
  std::uint64_t appended = 0;
  std::uint64_t durable = 0;
  bool stop = false;
  bool io_error = false;
  std::thread thread;
};

JournalWriter::JournalWriter(int fd, bool fsync_enabled) : impl_(new Impl) {
  impl_->fd = fd;
  impl_->do_fsync = fsync_enabled;
  impl_->thread = std::thread([this] { writer_loop(); });
}

JournalWriter::~JournalWriter() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  ::close(impl_->fd);
}

namespace {
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}
}  // namespace

std::unique_ptr<JournalWriter> JournalWriter::open_fresh(
    const std::filesystem::path& path, const JournalHeader& header) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  const int fd = ::open(path.string().c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  const std::string bytes = serialize_header(header);
  const bool do_fsync = env_journal_fsync();
  if (!write_all(fd, bytes.data(), bytes.size()) || (do_fsync && ::fsync(fd) != 0)) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, do_fsync));
}

std::unique_ptr<JournalWriter> JournalWriter::open_resumed(
    const std::filesystem::path& path, const JournalContents& contents) {
  // Cut the untrusted tail so appends start right after the valid prefix.
  std::error_code ec;
  std::filesystem::resize_file(path, contents.valid_bytes, ec);
  if (ec) return nullptr;
  const int fd = ::open(path.string().c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return nullptr;
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, env_journal_fsync()));
}

void JournalWriter::append(const JournalRecord& record) {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(record);
    ++impl_->appended;
  }
  impl_->cv.notify_one();
}

void JournalWriter::sync() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->drained.wait(lock, [this] {
    return impl_->durable == impl_->appended || impl_->io_error;
  });
  if (impl_->io_error) {
    throw std::runtime_error("journal write failed (disk full or I/O error)");
  }
}

void JournalWriter::writer_loop() {
  std::vector<JournalRecord> batch;
  std::string buf;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait(lock, [this] { return !impl_->queue.empty() || impl_->stop; });
      if (impl_->queue.empty() && impl_->stop) return;
      batch.assign(impl_->queue.begin(), impl_->queue.end());
      impl_->queue.clear();
    }
    buf.resize(batch.size() * kRecordBytes);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      serialize_record(batch[i], &buf[i * kRecordBytes]);
    }
    bool ok = write_all(impl_->fd, buf.data(), buf.size());
    if (ok && impl_->do_fsync) ok = ::fsync(impl_->fd) == 0;
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      if (ok) {
        impl_->durable += batch.size();
      } else {
        impl_->io_error = true;
      }
    }
    impl_->drained.notify_all();
    if (!ok) return;
  }
}

}  // namespace gras::orchestrator
