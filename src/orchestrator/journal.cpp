#include "src/orchestrator/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras::orchestrator {
namespace {

constexpr char kMagic[8] = {'G', 'R', 'A', 'S', 'J', 'R', 'N', '1'};

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t hash = 14695981039346656037ULL) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked cursor over a byte buffer; get_* return false on underrun.
struct Cursor {
  const char* p;
  std::size_t left;
  bool get(void* dst, std::size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool get_u32(std::uint32_t& v) { return get(&v, sizeof v); }
  bool get_u64(std::uint64_t& v) { return get(&v, sizeof v); }
  bool get_f64(double& v) { return get(&v, sizeof v); }
  bool get_str(std::string& s) {
    std::uint32_t n = 0;
    if (!get_u32(n) || left < n || n > (1u << 20)) return false;
    s.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

std::string serialize_header(const JournalHeader& h) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kJournalVersion);
  put_u32(out, h.shard_index);
  put_u32(out, h.shard_count);
  put_u32(out, 0);  // reserved
  put_u64(out, h.samples);
  put_u64(out, h.seed);
  put_f64(out, h.margin);
  put_f64(out, h.confidence);
  put_str(out, h.app);
  put_str(out, h.kernel);
  put_str(out, h.config);
  put_str(out, h.target);
  put_str(out, h.build);  // v3: build provenance, last string before checksum
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

// v2/v3 record layout (kRecordBytesV2 total). The v1 prefix (through `kind`)
// keeps its exact offsets; provenance and signature fields follow, then the
// checksum over everything before it.
//   [0]   index u64        [8]   cycles u64
//   [16]  outcome, injected, control_path, kind (u8 each)
//   [20]  fault: level, structure, mode, bit (u8 each)
//   [24]  fault width u8, has_signature u8, zero padding u8 x2
//   [28]  fault sm u32     [32]  fault site u64   [40] fault trigger u64
//   [48]  fault launch u32 [52]  buffers_affected u32
//   [56]  words_total u64  [64]  words_mismatched u64
//   [72]  first_word u64   [80]  last_word u64    [88] max_rel_error f64
//   [96]  bit_flips u32 x 32
//   [224] checksum u32 (FNV-1a over bytes [0, 224))
// v4 (kRecordBytes total) keeps bytes [0, 224) identical and appends:
//   [224] class_id u32     [228] class_weight u64
//   [236] checksum u32 (FNV-1a over bytes [0, 236))
void serialize_record_v1(const JournalRecord& r, char out[kRecordBytesV1]) {
  std::memcpy(out, &r.index, 8);
  std::memcpy(out + 8, &r.cycles, 8);
  out[16] = static_cast<char>(r.outcome);
  out[17] = static_cast<char>(r.injected ? 1 : 0);
  out[18] = static_cast<char>(r.control_path ? 1 : 0);
  out[19] = static_cast<char>(r.kind);
  const auto sum = static_cast<std::uint32_t>(fnv1a(out, 20));
  std::memcpy(out + 20, &sum, 4);
}

/// Fields common to v2/v3/v4: bytes [0, 224), zero-initialized.
void serialize_common_fields(const JournalRecord& r, char* out) {
  std::memset(out, 0, kRecordBytesV2 - 4);
  std::memcpy(out, &r.index, 8);
  std::memcpy(out + 8, &r.cycles, 8);
  out[16] = static_cast<char>(r.outcome);
  out[17] = static_cast<char>(r.injected ? 1 : 0);
  out[18] = static_cast<char>(r.control_path ? 1 : 0);
  out[19] = static_cast<char>(r.kind);
  out[20] = static_cast<char>(r.fault.level);
  out[21] = static_cast<char>(r.fault.structure);
  out[22] = static_cast<char>(r.fault.mode);
  out[23] = static_cast<char>(r.fault.bit);
  out[24] = static_cast<char>(r.fault.width);
  out[25] = static_cast<char>(r.has_signature ? 1 : 0);
  std::memcpy(out + 28, &r.fault.sm, 4);
  std::memcpy(out + 32, &r.fault.site, 8);
  std::memcpy(out + 40, &r.fault.trigger, 8);
  std::memcpy(out + 48, &r.fault.launch, 4);
  std::memcpy(out + 52, &r.signature.buffers_affected, 4);
  std::memcpy(out + 56, &r.signature.words_total, 8);
  std::memcpy(out + 64, &r.signature.words_mismatched, 8);
  std::memcpy(out + 72, &r.signature.first_word, 8);
  std::memcpy(out + 80, &r.signature.last_word, 8);
  std::memcpy(out + 88, &r.signature.max_rel_error, 8);
  std::memcpy(out + 96, r.signature.bit_flips.data(), 32 * 4);
}

void serialize_record_v2(const JournalRecord& r, char out[kRecordBytesV2]) {
  serialize_common_fields(r, out);
  const auto sum = static_cast<std::uint32_t>(fnv1a(out, kRecordBytesV2 - 4));
  std::memcpy(out + kRecordBytesV2 - 4, &sum, 4);
}

void serialize_record_v4(const JournalRecord& r, char out[kRecordBytes]) {
  serialize_common_fields(r, out);
  std::memcpy(out + 224, &r.class_id, 4);
  std::memcpy(out + 228, &r.class_weight, 8);
  const auto sum = static_cast<std::uint32_t>(fnv1a(out, kRecordBytes - 4));
  std::memcpy(out + kRecordBytes - 4, &sum, 4);
}

void serialize_record(std::uint32_t version, const JournalRecord& r, char* out) {
  switch (version) {
    case 1: serialize_record_v1(r, out); break;
    case 2:
    case 3: serialize_record_v2(r, out); break;
    default: serialize_record_v4(r, out); break;
  }
}

/// Shared v1/v2 prefix; returns false on an invalid enum or kind byte.
bool deserialize_prefix(const char* in, JournalRecord& r) {
  std::memcpy(&r.index, in, 8);
  std::memcpy(&r.cycles, in + 8, 8);
  const auto outcome = static_cast<unsigned char>(in[16]);
  if (outcome > static_cast<unsigned char>(fi::Outcome::DUE)) return false;
  r.outcome = static_cast<fi::Outcome>(outcome);
  r.injected = in[17] != 0;
  r.control_path = in[18] != 0;
  r.kind = static_cast<std::uint8_t>(in[19]);
  return r.kind == JournalRecord::kSample || r.kind == JournalRecord::kEarlyStop;
}

bool deserialize_record_v1(const char in[kRecordBytesV1], JournalRecord& r) {
  std::uint32_t stored = 0;
  std::memcpy(&stored, in + 20, 4);
  if (stored != static_cast<std::uint32_t>(fnv1a(in, 20))) return false;
  return deserialize_prefix(in, r);
}

/// Fields common to v2/v3/v4: bytes [0, 224). Checksum already verified by
/// the per-version wrapper; returns false on an invalid enum byte.
bool deserialize_common_fields(const char* in, JournalRecord& r) {
  if (!deserialize_prefix(in, r)) return false;
  const auto level = static_cast<unsigned char>(in[20]);
  const auto structure = static_cast<unsigned char>(in[21]);
  const auto mode = static_cast<unsigned char>(in[22]);
  if (level > static_cast<unsigned char>(fi::FaultLevel::Software) ||
      structure > static_cast<unsigned char>(fi::Structure::L2) ||
      mode > static_cast<unsigned char>(fi::SvfMode::SrcReuse)) {
    return false;
  }
  r.fault.level = static_cast<fi::FaultLevel>(level);
  r.fault.structure = static_cast<fi::Structure>(structure);
  r.fault.mode = static_cast<fi::SvfMode>(mode);
  r.fault.bit = static_cast<std::uint8_t>(in[23]);
  r.fault.width = static_cast<std::uint8_t>(in[24]);
  r.has_signature = in[25] != 0;
  std::memcpy(&r.fault.sm, in + 28, 4);
  std::memcpy(&r.fault.site, in + 32, 8);
  std::memcpy(&r.fault.trigger, in + 40, 8);
  std::memcpy(&r.fault.launch, in + 48, 4);
  std::memcpy(&r.signature.buffers_affected, in + 52, 4);
  std::memcpy(&r.signature.words_total, in + 56, 8);
  std::memcpy(&r.signature.words_mismatched, in + 64, 8);
  std::memcpy(&r.signature.first_word, in + 72, 8);
  std::memcpy(&r.signature.last_word, in + 80, 8);
  std::memcpy(&r.signature.max_rel_error, in + 88, 8);
  std::memcpy(r.signature.bit_flips.data(), in + 96, 32 * 4);
  return true;
}

bool deserialize_record_v2(const char in[kRecordBytesV2], JournalRecord& r) {
  std::uint32_t stored = 0;
  std::memcpy(&stored, in + kRecordBytesV2 - 4, 4);
  if (stored != static_cast<std::uint32_t>(fnv1a(in, kRecordBytesV2 - 4))) return false;
  return deserialize_common_fields(in, r);
}

bool deserialize_record_v4(const char in[kRecordBytes], JournalRecord& r) {
  std::uint32_t stored = 0;
  std::memcpy(&stored, in + kRecordBytes - 4, 4);
  if (stored != static_cast<std::uint32_t>(fnv1a(in, kRecordBytes - 4))) return false;
  if (!deserialize_common_fields(in, r)) return false;
  std::memcpy(&r.class_id, in + 224, 4);
  std::memcpy(&r.class_weight, in + 228, 8);
  return true;
}

bool deserialize_record(std::uint32_t version, const char* in, JournalRecord& r) {
  switch (version) {
    case 1: return deserialize_record_v1(in, r);
    case 2:
    case 3: return deserialize_record_v2(in, r);
    default: return deserialize_record_v4(in, r);
  }
}

}  // namespace

void encode_record(const JournalRecord& r, char* out) { serialize_record_v4(r, out); }

bool decode_record(const char* in, JournalRecord& r) {
  return deserialize_record_v4(in, r);
}

std::uint64_t JournalHeader::fingerprint() const noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix_str = [&h](const std::string& s) {
    h = fnv1a(s.data(), s.size(), h);
    h = fnv1a("\0", 1, h);  // keep ("ab","c") distinct from ("a","bc")
  };
  mix_str(app);
  mix_str(kernel);
  mix_str(config);
  mix_str(target);
  h = fnv1a(&samples, sizeof samples, h);
  h = fnv1a(&seed, sizeof seed, h);
  h = fnv1a(&margin, sizeof margin, h);
  h = fnv1a(&confidence, sizeof confidence, h);
  return h;
}

std::optional<JournalContents> read_journal(const std::filesystem::path& path) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }

  Cursor c{bytes.data(), bytes.size()};
  char magic[8];
  std::uint32_t version = 0, reserved = 0;
  JournalContents out;
  JournalHeader& h = out.header;
  if (!c.get(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return std::nullopt;
  }
  if (!c.get_u32(version) || version < 1 || version > kJournalVersion) {
    return std::nullopt;
  }
  out.version = version;
  if (!c.get_u32(h.shard_index) || !c.get_u32(h.shard_count) || !c.get_u32(reserved) ||
      !c.get_u64(h.samples) || !c.get_u64(h.seed) || !c.get_f64(h.margin) ||
      !c.get_f64(h.confidence) || !c.get_str(h.app) || !c.get_str(h.kernel) ||
      !c.get_str(h.config) || !c.get_str(h.target)) {
    return std::nullopt;
  }
  if (version >= 3 && !c.get_str(h.build)) return std::nullopt;
  const std::size_t header_bytes = bytes.size() - c.left;
  std::uint64_t stored = 0;
  if (!c.get_u64(stored) || stored != fnv1a(bytes.data(), header_bytes)) {
    return std::nullopt;
  }
  out.valid_bytes = header_bytes + sizeof stored;

  // Records: stop at the first torn or checksum-damaged one; everything from
  // there on is an untrusted tail (crash mid-write) and gets dropped.
  const std::size_t record_bytes = record_bytes_of(version);
  while (c.left >= record_bytes) {
    JournalRecord r;
    if (!deserialize_record(version, c.p, r)) break;
    c.p += record_bytes;
    c.left -= record_bytes;
    out.valid_bytes += record_bytes;
    if (r.kind == JournalRecord::kEarlyStop) {
      out.early_stop_consumed = r.index;
    } else {
      out.records.push_back(r);
    }
  }
  out.dropped_bytes = c.left;
  return out;
}

struct JournalWriter::Impl {
  int fd = -1;
  bool do_fsync = true;
  /// On-disk record layout this file uses; appends must match it.
  std::uint32_t version = kJournalVersion;
  std::mutex mu;
  std::condition_variable cv;        ///< wakes the writer thread
  std::condition_variable drained;   ///< wakes sync() waiters
  std::deque<JournalRecord> queue;
  std::uint64_t appended = 0;
  std::uint64_t durable = 0;
  bool stop = false;
  bool io_error = false;
  std::thread thread;
};

JournalWriter::JournalWriter(int fd, bool fsync_enabled, std::uint32_t version)
    : impl_(new Impl) {
  impl_->fd = fd;
  impl_->do_fsync = fsync_enabled;
  impl_->version = version;
  impl_->thread = std::thread([this] { writer_loop(); });
}

JournalWriter::~JournalWriter() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  ::close(impl_->fd);
}

namespace {
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}
}  // namespace

std::unique_ptr<JournalWriter> JournalWriter::open_fresh(
    const std::filesystem::path& path, const JournalHeader& header) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  const int fd = ::open(path.string().c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  const std::string bytes = serialize_header(header);
  const bool do_fsync = env_journal_fsync();
  if (!write_all(fd, bytes.data(), bytes.size()) || (do_fsync && ::fsync(fd) != 0)) {
    ::close(fd);
    return nullptr;
  }
  // The file's own fsync does not persist its directory entry: after a crash
  // the journal could exist as data with no name. Sync the directory too.
  if (do_fsync && !fsync_parent_dir(path)) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, do_fsync, kJournalVersion));
}

std::unique_ptr<JournalWriter> JournalWriter::open_resumed(
    const std::filesystem::path& path, const JournalContents& contents) {
  // Cut the untrusted tail so appends start right after the valid prefix.
  std::error_code ec;
  std::filesystem::resize_file(path, contents.valid_bytes, ec);
  if (ec) return nullptr;
  const int fd = ::open(path.string().c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return nullptr;
  // Keep appending in the file's own record layout: a resumed v1 journal
  // stays v1 so its early records and new ones stay mutually parseable.
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(fd, env_journal_fsync(), contents.version));
}

void JournalWriter::append(const JournalRecord& record) {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(record);
    ++impl_->appended;
  }
  impl_->cv.notify_one();
}

void JournalWriter::sync() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->drained.wait(lock, [this] {
    return impl_->durable == impl_->appended || impl_->io_error;
  });
  if (impl_->io_error) {
    throw std::runtime_error("journal write failed (disk full or I/O error)");
  }
}

void JournalWriter::writer_loop() {
  trace::set_thread_name("gras-journal");
  static telemetry::Counter& c_records = telemetry::counter("journal.records");
  static telemetry::Counter& c_batches = telemetry::counter("journal.batches");
  static telemetry::Counter& c_bytes = telemetry::counter("journal.bytes");
  static telemetry::Counter& c_fsyncs = telemetry::counter("journal.fsyncs");
  std::vector<JournalRecord> batch;
  std::string buf;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait(lock, [this] { return !impl_->queue.empty() || impl_->stop; });
      if (impl_->queue.empty() && impl_->stop) return;
      batch.assign(impl_->queue.begin(), impl_->queue.end());
      impl_->queue.clear();
    }
    const std::size_t record_bytes = record_bytes_of(impl_->version);
    buf.resize(batch.size() * record_bytes);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      serialize_record(impl_->version, batch[i], &buf[i * record_bytes]);
    }
    bool ok;
    {
      const trace::Span span("journal.write", "journal", "records", batch.size());
      ok = write_all(impl_->fd, buf.data(), buf.size());
    }
    if (ok && impl_->do_fsync) {
      const trace::Span span("journal.fsync", "journal");
      ok = ::fsync(impl_->fd) == 0;
      if (ok) c_fsyncs.add();
    }
    if (ok) {
      c_records.add(batch.size());
      c_batches.add();
      c_bytes.add(buf.size());
    }
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      if (ok) {
        impl_->durable += batch.size();
      } else {
        impl_->io_error = true;
      }
    }
    impl_->drained.notify_all();
    if (!ok) return;
  }
}

bool fsync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.string().c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

}  // namespace gras::orchestrator
