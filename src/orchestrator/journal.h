// Append-only, crash-safe sample journal for fault-injection campaigns.
//
// One journal = one campaign shard. The file starts with a self-describing
// header (campaign identity, shard position, early-stop contract) followed by
// fixed-size per-sample records, each carrying its own checksum. Records are
// written by a dedicated writer thread so campaign workers never block on
// disk I/O; the writer batches queued records and fsyncs after every batch.
//
// Crash model: a SIGKILL (or power cut) leaves a valid header plus an
// arbitrary prefix of records, possibly ending in a torn or bit-damaged
// tail. Readers validate record checksums and stop at the first bad one,
// dropping the tail; because every sample is deterministic in
// (seed, sample index), dropped samples are simply re-run on resume and the
// reconstructed histogram is bit-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/fi/fault.h"
#include "src/workloads/workload.h"

namespace gras::orchestrator {

/// Journal file-format version (bump on any layout change).
///  * v1: bare outcome records (index, cycles, outcome/injected/control/kind).
///  * v2: v1 plus fault-site provenance (fi::FaultRecord) and, for SDC
///    outcomes, the corruption signature (workloads::CorruptionSignature).
///  * v3: v2 with a build-provenance string appended to the header
///    (gras::build_summary() of the writing binary); record layout unchanged.
///  * v4: v3 plus per-record fault-site equivalence-class provenance for
///    pruned campaigns (class id + class population weight); records written
///    by unpruned campaigns carry 0/0 in the new fields.
/// Readers accept all four; writers append records in the version of the
/// file they are appending to (a resumed v1 journal stays v1), so a
/// campaign's journal never mixes record layouts.
inline constexpr std::uint32_t kJournalVersion = 4;

/// Campaign identity + shard position + early-stop contract. Serialized as a
/// fixed block, length-prefixed strings and a trailing checksum; any damage
/// invalidates the whole journal.
struct JournalHeader {
  std::string app;       ///< workload name
  std::string kernel;    ///< target kernel name
  std::string config;    ///< GpuConfig name
  std::string target;    ///< campaign::target_name() spelling
  /// Build provenance of the binary that created the journal (v3; empty when
  /// read from v1/v2 files). Informational only: deliberately excluded from
  /// fingerprint() so resume/merge work across rebuilds of the same campaign.
  std::string build;
  std::uint64_t samples = 0;      ///< campaign-wide requested sample count
  std::uint64_t seed = 0;         ///< campaign master seed
  std::uint32_t shard_index = 0;  ///< this shard's position in [0, shard_count)
  std::uint32_t shard_count = 1;
  double margin = 0.0;      ///< requested CI half-width (0 = run all samples)
  double confidence = 0.99; ///< confidence level for the early-stop margin

  /// FNV-1a over every identity field above: two journals belong to the
  /// same campaign iff their fingerprints match (shard position excluded,
  /// so sibling shards share a fingerprint).
  std::uint64_t fingerprint() const noexcept;
  bool same_campaign(const JournalHeader& o) const noexcept {
    return fingerprint() == o.fingerprint();
  }
};

/// One completed sample (or the early-stop marker, see `kind`).
struct JournalRecord {
  static constexpr std::uint8_t kSample = 0;
  /// Early-stop marker: `index` holds the number of shard-local positions
  /// consumed when the margin was reached; no further samples exist.
  static constexpr std::uint8_t kEarlyStop = 1;

  std::uint64_t index = 0;   ///< campaign-wide sample index
  std::uint64_t cycles = 0;  ///< faulty run's total cycles
  fi::Outcome outcome = fi::Outcome::Masked;
  bool injected = false;
  /// Masked with cycles != golden total (control-path-affected proxy).
  bool control_path = false;
  std::uint8_t kind = kSample;
  /// Fault-site provenance (v2; level None in records read from v1 files).
  fi::FaultRecord fault;
  /// True when `signature` carries an SDC corruption signature (v2 SDC
  /// records only; always false in v1 files).
  bool has_signature = false;
  workloads::CorruptionSignature signature;
  /// Fault-site equivalence class of this sample (v4, pruned campaigns).
  /// `class_weight` is the class population the representative stands for;
  /// 0 means "unpruned record" (one sample = one site, weight 1 implied).
  std::uint32_t class_id = 0;
  std::uint64_t class_weight = 0;
};

/// A journal parsed back from disk. `records` holds only checksum-valid
/// sample records in append order; `early_stop` is set when an early-stop
/// marker was found; `dropped_bytes` counts the discarded tail.
struct JournalContents {
  JournalHeader header;
  std::uint32_t version = kJournalVersion;  ///< on-disk record layout
  std::vector<JournalRecord> records;
  std::optional<std::uint64_t> early_stop_consumed;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t valid_bytes = 0;  ///< header + valid records (truncation point)
};

/// Parses a journal. Returns nullopt when the file is missing, too short,
/// or its header is damaged (callers then start a fresh campaign). A
/// damaged record tail is not an error: parsing stops there and
/// `dropped_bytes`/`valid_bytes` report the cut.
std::optional<JournalContents> read_journal(const std::filesystem::path& path);

/// Asynchronous appender. `open_fresh` truncates and writes a new header;
/// `open_resumed` truncates a previously-read journal to its valid prefix
/// and appends after it. All appends go through an internal queue drained by
/// one writer thread (fwrite + fsync per batch); `sync()` blocks until every
/// queued record is durable. The destructor syncs and closes.
class JournalWriter {
 public:
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  static std::unique_ptr<JournalWriter> open_fresh(const std::filesystem::path& path,
                                                   const JournalHeader& header);
  static std::unique_ptr<JournalWriter> open_resumed(const std::filesystem::path& path,
                                                     const JournalContents& contents);

  /// Queues one record; never blocks on I/O. Thread-safe.
  void append(const JournalRecord& record);
  /// Blocks until all queued records are written and fsync'd.
  void sync();

 private:
  JournalWriter(int fd, bool fsync_enabled, std::uint32_t version);
  void writer_loop();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Serialization helpers shared with tests: record sizes in bytes of the
/// current version (what open_fresh journals contain) and of older files.
inline constexpr std::size_t kRecordBytes = 240;
inline constexpr std::size_t kRecordBytesV1 = 24;
inline constexpr std::size_t kRecordBytesV2 = 228;  ///< v2 and v3 files
/// Record size of a given on-disk version (see JournalContents::version).
/// Every supported version gets an explicit arm so an unknown version can
/// never silently alias the current layout.
constexpr std::size_t record_bytes_of(std::uint32_t version) {
  switch (version) {
    case 1: return kRecordBytesV1;
    case 2:
    case 3: return kRecordBytesV2;
    default: return kRecordBytes;  // 4 = current
  }
}

/// Wire codec for one record in the current (v4) layout: exactly the
/// kRecordBytes bytes a journal stores, trailing checksum included. The
/// fabric streams these frames between workers and the coordinator, so a
/// record crosses the network bit-identical to how it lands on disk.
void encode_record(const JournalRecord& r, char* out);
/// Inverse of encode_record; checksum-validated. False leaves `r` partially
/// written and means the bytes are torn, damaged, or from a different build.
bool decode_record(const char* in, JournalRecord& r);

/// Fsyncs the directory containing `path`, making a just-created or
/// just-renamed directory entry itself durable (fsync of the file alone does
/// not persist its name). Returns false when the directory cannot be opened
/// or synced.
bool fsync_parent_dir(const std::filesystem::path& path);

}  // namespace gras::orchestrator
