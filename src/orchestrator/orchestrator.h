// Durable campaign orchestrator: crash-safe, shardable, observable campaigns
// layered on the campaign engine (DESIGN.md §8).
//
// run_campaign is an in-memory, all-or-nothing batch loop: a crash at sample
// 2,999/3,000 loses everything. run_durable runs the same samples, but
// journals every completed one to an append-only on-disk log ($GRAS_CACHE/
// journals by default). Because samples are deterministic in
// (seed, sample index), a restarted campaign replays the journal, re-runs
// only the missing indices, and lands on the bit-identical histogram an
// uninterrupted run would have produced.
//
// A campaign can also run as shard i/N: shard i owns sample indices
// {i, i+N, i+2N, ...}, a disjoint stride of the same index space, so N
// processes (or machines) each journal their own shard and merge_shards
// recombines them — again bit-identical to the unsharded run, validated via
// campaign fingerprints in the journal headers.
//
// Early stop inverts the paper's statistical-FI contract (§II-A): instead of
// asking for a sample count, ask for a CI half-width. The orchestrator
// checks the Wilson margin on the failure rate at fixed chunk boundaries
// (fixed so the stop point is deterministic for any thread count) and stops
// once the requested precision is reached, recording the stop point in the
// journal so resumed and merged results stay honest.
#pragma once

#include <filesystem>

#include "src/campaign/campaign.h"
#include "src/orchestrator/journal.h"
#include "src/orchestrator/progress.h"

namespace gras::orchestrator {

/// Position of this process in a sharded campaign: shard `index` of `count`
/// owns sample indices congruent to `index` modulo `count`.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

struct DurableOptions {
  /// Journal file; empty derives "<GRAS_JOURNAL_DIR>/<campaign key>.jrnl".
  std::filesystem::path journal;
  /// False disables the on-disk journal entirely (pure in-memory run; the
  /// baseline the journal-overhead benchmark compares against).
  bool journaled = true;
  /// Reuse an existing compatible journal (skip its completed samples).
  /// False starts over, truncating any previous journal.
  bool resume = true;
  ShardSpec shard;
  /// Early-stop target: stop once the Wilson CI half-width on the failure
  /// rate is <= margin (a fraction, e.g. 0.0235). 0 runs all samples.
  double margin = 0.0;
  double confidence = 0.99;
  /// Samples per scheduling chunk. Early-stop checks, journal-order barriers
  /// and progress snapshots happen at chunk boundaries; the value must not
  /// depend on the thread count or the early-stop point loses determinism.
  std::uint64_t chunk = 64;
  /// Samples per batched simulator instance (campaign::run_batched): up to
  /// `batch` consecutive missing samples run in one workspace, sharing their
  /// fault-free prefix when they inject into the same launch. 1 (the
  /// default) runs every sample independently. Results are bit-identical
  /// either way; with batch > 1 journal appends move to the chunk boundary
  /// (still ascending-index order) so a mid-chunk kill simply re-runs the
  /// chunk's missing samples on resume — the exactly-once contract holds.
  std::uint64_t batch = 1;
  ProgressSink* progress = nullptr;
  /// Clock feeding the throughput/ETA tracker (empty = real steady clock);
  /// tests inject a fake to pin resumed-campaign ETA math.
  ProgressClock clock;
};

struct DurableResult {
  campaign::CampaignResult result;  ///< histogram over this shard's samples
  std::uint64_t shard_samples = 0;  ///< shard-local positions requested
  std::uint64_t replayed = 0;       ///< samples recovered from the journal
  std::uint64_t executed = 0;       ///< samples simulated by this call
  bool early_stopped = false;
  std::filesystem::path journal;    ///< empty when journaling was disabled
};

/// The journal header describing (app, config, spec, options) — the campaign
/// identity used for resume validation and shard merging.
JournalHeader make_header(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::CampaignSpec& spec,
                          const DurableOptions& options);

/// Converts one completed sample into its journal record (outcome, cycles,
/// control-path proxy, provenance, SDC signature). Shared by the durable
/// loop and the fabric worker so a record is built identically whether the
/// sample ran locally or on a remote worker.
JournalRecord make_record(std::uint64_t index, const campaign::SampleResult& sample,
                          const campaign::GoldenRun& golden);

/// Executes arbitrary sets of campaign-wide sample indices on a pool of
/// reusable Gpu workspaces — the execution core shared by run_durable and
/// the fabric worker (`gras work`). Sample results depend only on
/// (seed, index), so any partition of the index space across runners,
/// processes, or machines reproduces the single-process records bit for
/// bit. Batching and backend selection behave exactly as in run_durable:
/// runs of up to `batch` consecutive entries of `indices` execute in one
/// simulator instance via campaign::run_batched.
class SampleRunner {
 public:
  SampleRunner(const workloads::App& app, const sim::GpuConfig& config,
               const campaign::GoldenRun& golden, const campaign::CampaignSpec& spec,
               ThreadPool& pool, std::uint64_t batch = 1);

  /// Runs every index in `indices`; returns one record per index, in
  /// `indices` order. `on_record`, when set, is called for each record as
  /// its sample completes — from pool threads, in completion order — so
  /// callers can stream records (journal append, socket send) without
  /// waiting for the slowest sample. With batch > 1 records are not
  /// streamed; they only come back in the returned vector, preserving the
  /// chunk-boundary ascending-order journal contract of DurableOptions.
  std::vector<JournalRecord> run(
      std::span<const std::uint64_t> indices,
      const std::function<void(const JournalRecord&)>& on_record = {});

  std::uint64_t batch() const { return batch_; }

 private:
  std::unique_ptr<sim::Gpu> acquire();
  void release(std::unique_ptr<sim::Gpu> gpu);

  const workloads::App& app_;
  sim::GpuConfig config_;
  const campaign::GoldenRun& golden_;
  campaign::CampaignSpec spec_;
  ThreadPool& pool_;
  std::uint64_t batch_;
  std::mutex workspaces_mu_;
  std::vector<std::unique_ptr<sim::Gpu>> workspaces_;
};

/// Default journal location for a campaign shard.
std::filesystem::path default_journal_path(const workloads::App& app,
                                           const sim::GpuConfig& config,
                                           const campaign::CampaignSpec& spec,
                                           const ShardSpec& shard);

/// Runs one campaign (shard) durably. Replays any compatible journal at the
/// target path, executes the missing samples chunk by chunk, and journals
/// each completed sample. Throws std::runtime_error when an existing journal
/// belongs to a different campaign (fingerprint mismatch) or the journal
/// cannot be written.
DurableResult run_durable(const workloads::App& app, const sim::GpuConfig& config,
                          const campaign::GoldenRun& golden,
                          const campaign::CampaignSpec& spec, ThreadPool& pool,
                          const DurableOptions& options = {});

/// Result of a durable pruned campaign (DESIGN.md §14): the weighted
/// two-level estimate plus the journal/replay bookkeeping of the
/// representative executions.
struct PrunedDurableResult {
  campaign::PrunedResult result;
  std::uint64_t planned = 0;   ///< representatives in the plan
  std::uint64_t replayed = 0;  ///< representatives recovered from the journal
  std::uint64_t executed = 0;  ///< representatives simulated by this call
  bool early_stopped = false;
  std::filesystem::path journal;  ///< empty when journaling was disabled
};

/// Default journal location for a pruned campaign: the unpruned path with
/// ".pruned" before the extension, so a pruned run never resumes into (or
/// truncates) a brute-force journal of the same spec.
std::filesystem::path default_pruned_journal_path(const workloads::App& app,
                                                  const sim::GpuConfig& config,
                                                  const campaign::CampaignSpec& spec);

/// Durable two-level pruned campaign: plans one representative sample per
/// covered equivalence class (campaign::plan_pruned), executes the missing
/// ones through the shared SampleRunner (batching/backend compose
/// unchanged), journals each completed representative as a v4 record
/// carrying its class id and population weight, and early-stops on the
/// weighted Wilson margin at chunk boundaries. Sharding is rejected
/// (options.shard.count must be 1): classes, not index strides, partition a
/// pruned campaign. Throws std::invalid_argument for non-prunable targets.
PrunedDurableResult run_pruned_durable(const workloads::App& app,
                                       const sim::GpuConfig& config,
                                       const campaign::GoldenRun& golden,
                                       const campaign::CampaignSpec& spec,
                                       const campaign::PruneClassing& classing,
                                       ThreadPool& pool,
                                       const DurableOptions& options = {});

/// A sharded campaign recombined from its per-shard journals.
struct MergedCampaign {
  JournalHeader header;             ///< shared campaign identity
  campaign::CampaignResult result;  ///< summed histogram across shards
  bool early_stopped = false;       ///< any shard stopped on margin
};

/// Merges the journals of one sharded campaign. Validates that every journal
/// is readable, all fingerprints match, shard positions are exactly
/// {0..N-1} of the same N, every shard is complete (all of its stride
/// journaled, or cleanly early-stopped), and no sample index strays outside
/// its shard's stride. Validation is exhaustive: every journal is checked
/// and std::runtime_error carries one "path: problem" line per offending
/// file, so duplicate shards and foreign-campaign journals in one invocation
/// are all reported at once.
MergedCampaign merge_shards(const std::vector<std::filesystem::path>& journals);

}  // namespace gras::orchestrator
