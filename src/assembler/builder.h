// Programmatic kernel construction. Used by the TMR hardening transform
// (which injects prologue instructions into existing kernels) and by tests
// that synthesize kernels without going through assembler text.
#pragma once

#include <string>
#include <vector>

#include "src/isa/isa.h"

namespace gras::assembler {

/// Fluent builder for isa::Kernel. Branch targets are labels resolved at
/// build() time.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  KernelBuilder& smem(std::uint32_t bytes);
  KernelBuilder& param(const std::string& name, bool is_pointer);

  /// Appends a raw instruction (target fields must already be resolved).
  KernelBuilder& emit(isa::Instr ins);

  /// Binds `label` to the next emitted instruction.
  KernelBuilder& label(const std::string& name);
  /// Emits a branch/SSY to `label` (resolved at build()).
  KernelBuilder& bra(const std::string& label, std::uint8_t guard = isa::kPredPT,
                     bool guard_neg = false);
  KernelBuilder& ssy(const std::string& label);

  // Common shorthands.
  KernelBuilder& s2r(std::uint8_t rd, isa::SpecialReg sr);
  KernelBuilder& mov(std::uint8_t rd, isa::Operand src);
  KernelBuilder& iadd(std::uint8_t rd, std::uint8_t ra, isa::Operand b);
  KernelBuilder& imad(std::uint8_t rd, std::uint8_t ra, isa::Operand b, isa::Operand c);
  KernelBuilder& iscadd(std::uint8_t rd, std::uint8_t ra, isa::Operand b, std::uint8_t shift);
  KernelBuilder& isetp(isa::Cmp cmp, std::uint8_t pd, std::uint8_t ra, isa::Operand b);
  KernelBuilder& ldg(std::uint8_t rd, std::uint8_t ra, std::int32_t offset = 0);
  KernelBuilder& stg(std::uint8_t ra, isa::Operand value, std::int32_t offset = 0);
  KernelBuilder& bar();
  KernelBuilder& sync();
  KernelBuilder& exit(std::uint8_t guard = isa::kPredPT, bool guard_neg = false);

  /// Resolves labels, recounts registers, returns the kernel.
  isa::Kernel build();

 private:
  struct PendingTarget {
    std::size_t instr_index;
    std::string label;
  };
  isa::Kernel kernel_;
  std::vector<std::pair<std::string, std::size_t>> labels_;
  std::vector<PendingTarget> pending_;
};

}  // namespace gras::assembler
