// Text assembler for the gras mini-ISA.
//
// Grammar (line oriented; `//` and `;` start comments):
//
//   .kernel <name>             begins a new kernel
//   .smem <bytes>              static shared memory per CTA
//   .param <name> ptr|u32|f32  declares the next 4-byte parameter slot
//   <label>:                   labels an instruction position
//   [@[!]Pn] MNEMONIC operands
//
// Operand syntax:
//   R5, RZ                     general-purpose registers
//   P0..P6, PT                 predicates ("!P0" negates where allowed)
//   123, -7, 0x1f              integer immediates
//   1.5f, -0.25f               float immediates (bit pattern into the GPR)
//   c[name] / c[0x10]          kernel parameter (constant bank 0)
//   [R4], [R4+16], [R4-4]      memory reference (base register + byte offset)
//   SR_TID.X etc.              special registers (S2R only)
//   some_label                 branch/SSY target
//
// Example:
//   .kernel vec_add
//   .param a ptr
//   .param b ptr
//   .param out ptr
//   .param n u32
//       S2R R0, SR_CTAID.X
//       S2R R1, SR_NTID.X
//       S2R R2, SR_TID.X
//       IMAD R3, R0, R1, R2        // global index
//       ISETP.GE P0, R3, c[n]
//       @P0 EXIT
//       ISCADD R4, R3, c[a], 2
//       LDG R5, [R4]
//       ISCADD R6, R3, c[b], 2
//       LDG R7, [R6]
//       FADD R8, R5, R7
//       ISCADD R9, R3, c[out], 2
//       STG [R9], R8
//       EXIT
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/isa/isa.h"

namespace gras::assembler {

/// Error with 1-based source line number.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Assembles source text containing one or more kernels.
std::vector<isa::Kernel> assemble(std::string_view source);

/// Assembles source text expected to contain exactly one kernel.
isa::Kernel assemble_kernel(std::string_view source);

}  // namespace gras::assembler
