#include "src/assembler/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

namespace gras::assembler {

using isa::Cmp;
using isa::Instr;
using isa::Kernel;
using isa::Mufu;
using isa::Op;
using isa::Operand;
using isa::ParamDecl;
using isa::SpecialReg;

namespace {

/// A pending branch/SSY fixup: patched once all labels are known.
struct Fixup {
  std::size_t instr_index;
  std::string label;
  std::size_t line;
};

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  auto push = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (ch == ';') break;
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      push();
      continue;
    }
    cur.push_back(ch);
  }
  push();
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::optional<std::uint8_t> parse_gpr(std::string_view t) {
  if (iequals(t, "RZ")) return isa::kRegRZ;
  if (t.size() < 2 || (t[0] != 'R' && t[0] != 'r')) return std::nullopt;
  int v = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
    v = v * 10 + (t[i] - '0');
  }
  if (v >= isa::kRegRZ) return std::nullopt;
  return static_cast<std::uint8_t>(v);
}

std::optional<std::pair<std::uint8_t, bool>> parse_pred(std::string_view t) {
  bool neg = false;
  if (!t.empty() && t[0] == '!') {
    neg = true;
    t.remove_prefix(1);
  }
  if (iequals(t, "PT")) return std::make_pair(isa::kPredPT, neg);
  if (t.size() == 2 && (t[0] == 'P' || t[0] == 'p') &&
      std::isdigit(static_cast<unsigned char>(t[1]))) {
    const int v = t[1] - '0';
    if (v < isa::kPredPT) return std::make_pair(static_cast<std::uint8_t>(v), neg);
  }
  return std::nullopt;
}

std::optional<SpecialReg> parse_sreg(std::string_view t) {
  static const std::map<std::string, SpecialReg, std::less<>> kMap = {
      {"SR_TID.X", SpecialReg::TID_X},       {"SR_TID.Y", SpecialReg::TID_Y},
      {"SR_CTAID.X", SpecialReg::CTAID_X},   {"SR_CTAID.Y", SpecialReg::CTAID_Y},
      {"SR_CTAID.Z", SpecialReg::CTAID_Z},   {"SR_NTID.X", SpecialReg::NTID_X},
      {"SR_NTID.Y", SpecialReg::NTID_Y},     {"SR_NCTAID.X", SpecialReg::NCTAID_X},
      {"SR_NCTAID.Y", SpecialReg::NCTAID_Y}, {"SR_NCTAID.Z", SpecialReg::NCTAID_Z},
      {"SR_LANEID", SpecialReg::LANEID},     {"SR_WARPID", SpecialReg::WARPID},
  };
  auto it = kMap.find(std::string(t));
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> parse_int_imm(std::string_view t) {
  if (t.empty()) return std::nullopt;
  bool neg = false;
  std::size_t i = 0;
  if (t[0] == '-') {
    neg = true;
    i = 1;
  }
  if (i >= t.size()) return std::nullopt;
  std::uint64_t v = 0;
  if (t.size() - i > 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(t[j])));
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = 10 + c - 'a';
      else return std::nullopt;
      v = v * 16 + static_cast<std::uint64_t>(d);
    }
  } else {
    for (std::size_t j = i; j < t.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(t[j]))) return std::nullopt;
      v = v * 10 + static_cast<std::uint64_t>(t[j] - '0');
    }
  }
  std::uint32_t out = static_cast<std::uint32_t>(v);
  if (neg) out = static_cast<std::uint32_t>(-static_cast<std::int64_t>(v));
  return out;
}

std::optional<float> parse_float_imm(std::string_view t) {
  if (t.size() < 2) return std::nullopt;
  const char last = t.back();
  if (last != 'f' && last != 'F') return std::nullopt;
  const std::string body(t.substr(0, t.size() - 1));
  char* end = nullptr;
  const float v = std::strtof(body.c_str(), &end);
  if (end != body.c_str() + body.size()) return std::nullopt;
  return v;
}

/// Parser for one assembly unit.
class Parser {
 public:
  explicit Parser(std::string_view source) : source_(source) {}

  std::vector<Kernel> run() {
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos <= source_.size()) {
      const std::size_t eol = source_.find('\n', pos);
      const std::string_view line =
          source_.substr(pos, eol == std::string_view::npos ? source_.size() - pos
                                                            : eol - pos);
      ++line_no;
      parse_line(line, line_no);
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    finish_kernel(line_no);
    return std::move(kernels_);
  }

 private:
  void require_kernel(std::size_t line) const {
    if (!current_) throw AsmError(line, "statement outside of .kernel");
  }

  void parse_line(std::string_view line, std::size_t n) {
    auto toks = tokenize(line);
    if (toks.empty()) return;

    // Labels (possibly several on one line before an instruction).
    std::size_t first = 0;
    while (first < toks.size() && toks[first].back() == ':') {
      require_kernel(n);
      std::string label = toks[first].substr(0, toks[first].size() - 1);
      if (label.empty()) throw AsmError(n, "empty label");
      if (labels_.count(label) != 0) throw AsmError(n, "duplicate label '" + label + "'");
      labels_[label] = current_->code.size();
      ++first;
    }
    if (first >= toks.size()) return;

    const std::string& head = toks[first];
    if (head == ".kernel") {
      if (toks.size() != first + 2) throw AsmError(n, ".kernel expects a name");
      finish_kernel(n);
      current_.emplace();
      current_->name = toks[first + 1];
      return;
    }
    if (head == ".smem") {
      require_kernel(n);
      if (toks.size() != first + 2) throw AsmError(n, ".smem expects a byte count");
      auto v = parse_int_imm(toks[first + 1]);
      if (!v) throw AsmError(n, ".smem expects a byte count");
      current_->smem_bytes = *v;
      return;
    }
    if (head == ".param") {
      require_kernel(n);
      if (toks.size() != first + 3) throw AsmError(n, ".param expects <name> ptr|u32|f32");
      ParamDecl p;
      p.name = toks[first + 1];
      const std::string& kind = toks[first + 2];
      if (kind == "ptr") p.is_pointer = true;
      else if (kind != "u32" && kind != "f32")
        throw AsmError(n, "unknown param kind '" + kind + "'");
      p.byte_offset = static_cast<std::uint32_t>(current_->params.size() * 4);
      for (const auto& existing : current_->params) {
        if (existing.name == p.name) throw AsmError(n, "duplicate param '" + p.name + "'");
      }
      current_->params.push_back(p);
      return;
    }
    if (head[0] == '.') throw AsmError(n, "unknown directive '" + head + "'");

    require_kernel(n);
    parse_instruction({toks.begin() + static_cast<std::ptrdiff_t>(first), toks.end()}, n);
  }

  Operand parse_src(const std::string& t, std::size_t n) {
    if (auto r = parse_gpr(t)) return Operand::gpr(*r);
    if (t.size() > 3 && (t[0] == 'c' || t[0] == 'C') && t[1] == '[' && t.back() == ']') {
      const std::string inner = t.substr(2, t.size() - 3);
      if (auto off = parse_int_imm(inner)) return Operand::param(*off);
      // Named parameter.
      for (const ParamDecl& p : current_->params) {
        if (p.name == inner) return Operand::param(p.byte_offset);
      }
      throw AsmError(n, "unknown parameter '" + inner + "'");
    }
    // Integers first: "0x1f" must not be misread as the hex float "0x1".
    if (auto v = parse_int_imm(t)) return Operand::imm(*v);
    if (auto f = parse_float_imm(t)) return Operand::fimm(*f);
    throw AsmError(n, "cannot parse operand '" + t + "'");
  }

  std::uint8_t parse_dst(const std::string& t, std::size_t n) {
    if (auto r = parse_gpr(t)) return *r;
    throw AsmError(n, "expected destination register, got '" + t + "'");
  }

  /// Parses "[Rn]", "[Rn+imm]", "[Rn-imm]".
  void parse_mem_ref(const std::string& t, Instr& ins, std::size_t n) {
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
      throw AsmError(n, "expected memory reference, got '" + t + "'");
    const std::string inner = t.substr(1, t.size() - 2);
    std::size_t split = inner.find_first_of("+-", 1);
    const std::string base = inner.substr(0, split);
    if (auto r = parse_gpr(base)) {
      ins.a = Operand::gpr(*r);
    } else if (auto abs = parse_int_imm(base); abs && split == std::string::npos) {
      // Absolute reference, e.g. [0] or [0x40]: base RZ + immediate offset.
      ins.a = Operand::gpr(isa::kRegRZ);
      ins.mem_offset = static_cast<std::int32_t>(*abs);
      return;
    } else {
      throw AsmError(n, "memory base must be a register, got '" + base + "'");
    }
    if (split != std::string::npos) {
      // Skip an explicit '+'; keep '-' as part of the number.
      auto off = parse_int_imm(inner[split] == '+' ? inner.substr(split + 1)
                                                   : inner.substr(split));
      if (!off) throw AsmError(n, "bad memory offset in '" + t + "'");
      ins.mem_offset = static_cast<std::int32_t>(*off);
    }
  }

  Cmp parse_cmp_suffix(const std::string& suffix, std::size_t n) {
    if (iequals(suffix, "EQ")) return Cmp::EQ;
    if (iequals(suffix, "NE")) return Cmp::NE;
    if (iequals(suffix, "LT")) return Cmp::LT;
    if (iequals(suffix, "LE")) return Cmp::LE;
    if (iequals(suffix, "GT")) return Cmp::GT;
    if (iequals(suffix, "GE")) return Cmp::GE;
    throw AsmError(n, "unknown comparison '" + suffix + "'");
  }

  Mufu parse_mufu_suffix(const std::string& suffix, std::size_t n) {
    if (iequals(suffix, "RCP")) return Mufu::RCP;
    if (iequals(suffix, "SQRT")) return Mufu::SQRT;
    if (iequals(suffix, "RSQRT")) return Mufu::RSQRT;
    if (iequals(suffix, "EX2")) return Mufu::EX2;
    if (iequals(suffix, "LG2")) return Mufu::LG2;
    if (iequals(suffix, "EXP")) return Mufu::EXP;
    if (iequals(suffix, "LOG")) return Mufu::LOG;
    if (iequals(suffix, "SIN")) return Mufu::SIN;
    if (iequals(suffix, "COS")) return Mufu::COS;
    throw AsmError(n, "unknown MUFU function '" + suffix + "'");
  }

  void parse_instruction(std::vector<std::string> toks, std::size_t n) {
    Instr ins;
    std::size_t i = 0;

    // Guard predicate.
    if (toks[i][0] == '@') {
      auto p = parse_pred(std::string_view(toks[i]).substr(1));
      if (!p) throw AsmError(n, "bad guard predicate '" + toks[i] + "'");
      ins.guard = p->first;
      ins.guard_neg = p->second;
      ++i;
      if (i >= toks.size()) throw AsmError(n, "guard predicate without instruction");
    }

    // Mnemonic, possibly with .suffix (ISETP.LT, MUFU.EXP, ATOM.ADD).
    std::string mn = toks[i++];
    std::string suffix;
    if (const std::size_t dot = mn.find('.'); dot != std::string::npos) {
      suffix = mn.substr(dot + 1);
      mn = mn.substr(0, dot);
    }
    for (auto& ch : mn) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));

    auto need = [&](std::size_t count) {
      if (toks.size() - i != count)
        throw AsmError(n, mn + " expects " + std::to_string(count) + " operands, got " +
                              std::to_string(toks.size() - i));
    };
    auto src = [&](std::size_t k) { return parse_src(toks[i + k], n); };
    auto require_gpr_a = [&](Instr& out, std::size_t k) {
      const Operand o = src(k);
      out.a = o;
    };

    if (mn == "S2R") {
      need(2);
      ins.op = Op::S2R;
      ins.dst = parse_dst(toks[i], n);
      auto sr = parse_sreg(toks[i + 1]);
      if (!sr) throw AsmError(n, "unknown special register '" + toks[i + 1] + "'");
      ins.b = Operand::imm(static_cast<std::uint32_t>(*sr));
    } else if (mn == "MOV" || mn == "NOT" || mn == "F2I" || mn == "I2F") {
      need(2);
      ins.op = mn == "MOV" ? Op::MOV : mn == "NOT" ? Op::NOT : mn == "F2I" ? Op::F2I : Op::I2F;
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
    } else if (mn == "MUFU") {
      need(2);
      ins.op = Op::MUFU;
      ins.mufu = parse_mufu_suffix(suffix, n);
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
    } else if (mn == "IADD" || mn == "ISUB" || mn == "IMUL" || mn == "SHL" || mn == "SHR" ||
               mn == "ASR" || mn == "AND" || mn == "OR" || mn == "XOR" || mn == "IMIN" ||
               mn == "IMAX" || mn == "FADD" || mn == "FSUB" || mn == "FMUL" ||
               mn == "FMIN" || mn == "FMAX") {
      need(3);
      static const std::map<std::string, Op> kBin = {
          {"IADD", Op::IADD}, {"ISUB", Op::ISUB}, {"IMUL", Op::IMUL}, {"SHL", Op::SHL},
          {"SHR", Op::SHR},   {"ASR", Op::ASR},   {"AND", Op::AND},   {"OR", Op::OR},
          {"XOR", Op::XOR},   {"IMIN", Op::IMIN}, {"IMAX", Op::IMAX}, {"FADD", Op::FADD},
          {"FSUB", Op::FSUB}, {"FMUL", Op::FMUL}, {"FMIN", Op::FMIN}, {"FMAX", Op::FMAX}};
      ins.op = kBin.at(mn);
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
      ins.b = src(2);
    } else if (mn == "IMAD" || mn == "FFMA") {
      need(4);
      ins.op = mn == "IMAD" ? Op::IMAD : Op::FFMA;
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
      ins.b = src(2);
      ins.c = src(3);
    } else if (mn == "ISCADD") {
      need(4);
      ins.op = Op::ISCADD;
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
      ins.b = src(2);
      auto sh = parse_int_imm(toks[i + 3]);
      if (!sh || *sh > 31) throw AsmError(n, "ISCADD shift must be 0..31");
      ins.shift = static_cast<std::uint8_t>(*sh);
    } else if (mn == "ISETP" || mn == "FSETP") {
      need(3);
      ins.op = mn == "ISETP" ? Op::ISETP : Op::FSETP;
      ins.cmp = parse_cmp_suffix(suffix, n);
      auto p = parse_pred(toks[i]);
      if (!p || p->second) throw AsmError(n, "expected predicate destination");
      ins.pdst = p->first;
      if (ins.pdst == isa::kPredPT) throw AsmError(n, "cannot write PT");
      require_gpr_a(ins, 1);
      ins.b = src(2);
    } else if (mn == "SEL") {
      need(4);
      ins.op = Op::SEL;
      ins.dst = parse_dst(toks[i], n);
      require_gpr_a(ins, 1);
      ins.b = src(2);
      auto p = parse_pred(toks[i + 3]);
      if (!p) throw AsmError(n, "SEL expects a predicate as 4th operand");
      ins.psrc = p->first;
      ins.psrc_neg = p->second;
    } else if (mn == "LDG" || mn == "LDT" || mn == "LDS") {
      need(2);
      ins.op = mn == "LDG" ? Op::LDG : mn == "LDT" ? Op::LDT : Op::LDS;
      ins.dst = parse_dst(toks[i], n);
      parse_mem_ref(toks[i + 1], ins, n);
    } else if (mn == "STG" || mn == "STS") {
      need(2);
      ins.op = mn == "STG" ? Op::STG : Op::STS;
      parse_mem_ref(toks[i], ins, n);
      ins.b = src(1);
    } else if (mn == "ATOM") {
      need(3);
      if (!iequals(suffix, "ADD")) throw AsmError(n, "only ATOM.ADD is supported");
      ins.op = Op::ATOM_ADD;
      ins.dst = parse_dst(toks[i], n);
      parse_mem_ref(toks[i + 1], ins, n);
      ins.b = src(2);
    } else if (mn == "RED") {
      need(2);
      if (!iequals(suffix, "ADD")) throw AsmError(n, "only RED.ADD is supported");
      ins.op = Op::RED_ADD;
      parse_mem_ref(toks[i], ins, n);
      ins.b = src(1);
    } else if (mn == "BRA" || mn == "SSY") {
      need(1);
      ins.op = mn == "BRA" ? Op::BRA : Op::SSY;
      fixups_.push_back({current_->code.size(), toks[i], n});
    } else if (mn == "SYNC" || mn == "BAR" || mn == "EXIT" || mn == "NOP") {
      need(0);
      ins.op = mn == "SYNC" ? Op::SYNC : mn == "BAR" ? Op::BAR : mn == "EXIT" ? Op::EXIT : Op::NOP;
    } else {
      throw AsmError(n, "unknown mnemonic '" + mn + "'");
    }

    current_->code.push_back(ins);
  }

  void finish_kernel(std::size_t line) {
    if (!current_) return;
    for (const Fixup& f : fixups_) {
      auto it = labels_.find(f.label);
      if (it == labels_.end()) throw AsmError(f.line, "undefined label '" + f.label + "'");
      current_->code[f.instr_index].target = static_cast<std::uint32_t>(it->second);
    }
    if (current_->code.empty()) throw AsmError(line, "kernel '" + current_->name + "' is empty");
    current_->recount_registers();
    kernels_.push_back(std::move(*current_));
    current_.reset();
    labels_.clear();
    fixups_.clear();
  }

  std::string_view source_;
  std::optional<Kernel> current_;
  std::map<std::string, std::size_t> labels_;
  std::vector<Fixup> fixups_;
  std::vector<Kernel> kernels_;
};

}  // namespace

std::vector<Kernel> assemble(std::string_view source) { return Parser(source).run(); }

Kernel assemble_kernel(std::string_view source) {
  auto kernels = assemble(source);
  if (kernels.size() != 1) {
    throw AsmError(0, "expected exactly one kernel, found " + std::to_string(kernels.size()));
  }
  return std::move(kernels.front());
}

}  // namespace gras::assembler
