#include "src/assembler/builder.h"

#include <stdexcept>

namespace gras::assembler {

using isa::Instr;
using isa::Op;
using isa::Operand;

KernelBuilder::KernelBuilder(std::string name) { kernel_.name = std::move(name); }

KernelBuilder& KernelBuilder::smem(std::uint32_t bytes) {
  kernel_.smem_bytes = bytes;
  return *this;
}

KernelBuilder& KernelBuilder::param(const std::string& name, bool is_pointer) {
  isa::ParamDecl p;
  p.name = name;
  p.is_pointer = is_pointer;
  p.byte_offset = static_cast<std::uint32_t>(kernel_.params.size() * 4);
  kernel_.params.push_back(p);
  return *this;
}

KernelBuilder& KernelBuilder::emit(Instr ins) {
  kernel_.code.push_back(ins);
  return *this;
}

KernelBuilder& KernelBuilder::label(const std::string& name) {
  labels_.emplace_back(name, kernel_.code.size());
  return *this;
}

KernelBuilder& KernelBuilder::bra(const std::string& label, std::uint8_t guard,
                                  bool guard_neg) {
  Instr ins;
  ins.op = Op::BRA;
  ins.guard = guard;
  ins.guard_neg = guard_neg;
  pending_.push_back({kernel_.code.size(), label});
  return emit(ins);
}

KernelBuilder& KernelBuilder::ssy(const std::string& label) {
  Instr ins;
  ins.op = Op::SSY;
  pending_.push_back({kernel_.code.size(), label});
  return emit(ins);
}

KernelBuilder& KernelBuilder::s2r(std::uint8_t rd, isa::SpecialReg sr) {
  Instr ins;
  ins.op = Op::S2R;
  ins.dst = rd;
  ins.b = Operand::imm(static_cast<std::uint32_t>(sr));
  return emit(ins);
}

KernelBuilder& KernelBuilder::mov(std::uint8_t rd, Operand src) {
  Instr ins;
  ins.op = Op::MOV;
  ins.dst = rd;
  ins.a = src;
  return emit(ins);
}

KernelBuilder& KernelBuilder::iadd(std::uint8_t rd, std::uint8_t ra, Operand b) {
  Instr ins;
  ins.op = Op::IADD;
  ins.dst = rd;
  ins.a = Operand::gpr(ra);
  ins.b = b;
  return emit(ins);
}

KernelBuilder& KernelBuilder::imad(std::uint8_t rd, std::uint8_t ra, Operand b, Operand c) {
  Instr ins;
  ins.op = Op::IMAD;
  ins.dst = rd;
  ins.a = Operand::gpr(ra);
  ins.b = b;
  ins.c = c;
  return emit(ins);
}

KernelBuilder& KernelBuilder::iscadd(std::uint8_t rd, std::uint8_t ra, Operand b,
                                     std::uint8_t shift) {
  Instr ins;
  ins.op = Op::ISCADD;
  ins.dst = rd;
  ins.a = Operand::gpr(ra);
  ins.b = b;
  ins.shift = shift;
  return emit(ins);
}

KernelBuilder& KernelBuilder::isetp(isa::Cmp cmp, std::uint8_t pd, std::uint8_t ra,
                                    Operand b) {
  Instr ins;
  ins.op = Op::ISETP;
  ins.cmp = cmp;
  ins.pdst = pd;
  ins.a = Operand::gpr(ra);
  ins.b = b;
  return emit(ins);
}

KernelBuilder& KernelBuilder::ldg(std::uint8_t rd, std::uint8_t ra, std::int32_t offset) {
  Instr ins;
  ins.op = Op::LDG;
  ins.dst = rd;
  ins.a = Operand::gpr(ra);
  ins.mem_offset = offset;
  return emit(ins);
}

KernelBuilder& KernelBuilder::stg(std::uint8_t ra, Operand value, std::int32_t offset) {
  Instr ins;
  ins.op = Op::STG;
  ins.a = Operand::gpr(ra);
  ins.b = value;
  ins.mem_offset = offset;
  return emit(ins);
}

KernelBuilder& KernelBuilder::bar() {
  Instr ins;
  ins.op = Op::BAR;
  return emit(ins);
}

KernelBuilder& KernelBuilder::sync() {
  Instr ins;
  ins.op = Op::SYNC;
  return emit(ins);
}

KernelBuilder& KernelBuilder::exit(std::uint8_t guard, bool guard_neg) {
  Instr ins;
  ins.op = Op::EXIT;
  ins.guard = guard;
  ins.guard_neg = guard_neg;
  return emit(ins);
}

isa::Kernel KernelBuilder::build() {
  for (const PendingTarget& p : pending_) {
    bool found = false;
    for (const auto& [name, index] : labels_) {
      if (name == p.label) {
        kernel_.code[p.instr_index].target = static_cast<std::uint32_t>(index);
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("KernelBuilder: undefined label '" + p.label + "'");
  }
  kernel_.recount_registers();
  return std::move(kernel_);
}

}  // namespace gras::assembler
