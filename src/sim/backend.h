// Execution backends: the seam between *what* a launch computes and *how
// long it takes* (DESIGN.md §11).
//
// An ExecBackend executes one kernel launch. Two implementations exist:
//
//  * TimingBackend — the cycle-approximate simulator loop that has always
//    lived in Gpu::launch(): per-cycle SM stepping, CTA distribution,
//    issue-time cache timing, watchdog deadline, idle fast-forward. It is
//    the authority on cycles, stats and fault behaviour.
//  * FunctionalBackend (functional.h) — an architectural-only interpreter
//    with no cache, scoreboard or timing model. It computes exactly the
//    launch's global-memory effects and adopts the golden run's timing
//    numbers wholesale.
//
// step_until semantics: fault-injection samples step the cheap backend
// forward "until the injection point" — a global cycle for microarch
// triggers, a global dynamic-instruction index for SVF triggers. Both stop
// points are mapped to a *launch boundary* via the golden run's per-launch
// [start_cycle, end_cycle) / [gp_begin, gp_end) windows (the recorded
// cycle→dyn-instr mapping): the functional backend runs whole fault-free
// prefix launches and hands the architectural state to the timing backend
// at the start boundary of the launch containing the stop point. It never
// runs a partial launch — mid-launch timing state (warp ready cycles, MSHRs,
// CTA placement) is not reconstructible without a timing model, and the
// equivalence bar is bit-identical campaign outcomes. The handoff mapping
// lives in campaign::run_sample; the state transfer in Gpu::launch.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/sim/sm.h"

namespace gras::sim {

class Gpu;
struct LaunchRecord;

/// Which execution backend a campaign runs its fault-free prefix on.
enum class BackendKind : std::uint8_t {
  Timing,      ///< cycle-approximate simulation all the way (the baseline)
  Functional,  ///< functional fast-forward to the handoff, timing after it
};

const char* backend_name(BackendKind kind);
/// Inverse of backend_name ("timing"/"functional"); nullopt otherwise.
std::optional<BackendKind> backend_from_name(std::string_view name);

/// Per-launch execution primitive. Implementations run the launch described
/// by `ctx` to completion, a trap (reported in ctx.trap), or the watchdog
/// `deadline` (a global-cycle bound; exceeding it must set
/// TrapKind::Watchdog). `record` receives backend-specific bookkeeping
/// (peak CTA residency for the timing backend; nothing for the functional
/// backend, whose callers adopt golden records wholesale).
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;
  virtual BackendKind kind() const noexcept = 0;
  virtual void run_launch(LaunchContext& ctx, LaunchRecord& record,
                          std::uint64_t deadline) = 0;
};

/// The original per-cycle timing loop, extracted verbatim from Gpu::launch()
/// so both backends sit behind one interface. Owns no state of its own: it
/// advances the Gpu's global cycle counter and SMs in place.
class TimingBackend final : public ExecBackend {
 public:
  explicit TimingBackend(Gpu& gpu) : gpu_(gpu) {}

  BackendKind kind() const noexcept override { return BackendKind::Timing; }
  void run_launch(LaunchContext& ctx, LaunchRecord& record,
                  std::uint64_t deadline) override;

 private:
  Gpu& gpu_;
};

}  // namespace gras::sim
