// Execution backends: the seam between *what* a launch computes and *how
// long it takes* (DESIGN.md §11).
//
// An ExecBackend executes one kernel launch. Two implementations exist:
//
//  * TimingBackend — the cycle-approximate simulator loop that has always
//    lived in Gpu::launch(): per-cycle SM stepping, CTA distribution,
//    issue-time cache timing, watchdog deadline, idle fast-forward. It is
//    the authority on cycles, stats and fault behaviour.
//  * FunctionalBackend (functional.h) — an architectural-only interpreter
//    with no cache, scoreboard or timing model. It computes exactly the
//    launch's global-memory effects and adopts the golden run's timing
//    numbers wholesale.
//
// step_until semantics: fault-injection samples step the cheap backend
// forward "until the injection point" — a global cycle for microarch
// triggers, a global dynamic-instruction index for SVF triggers. Both stop
// points are mapped to a *launch boundary* via the golden run's per-launch
// [start_cycle, end_cycle) / [gp_begin, gp_end) windows (the recorded
// cycle→dyn-instr mapping): the functional backend runs whole fault-free
// prefix launches and hands the architectural state to the timing backend
// at the start boundary of the launch containing the stop point. It never
// runs a partial launch — mid-launch timing state (warp ready cycles, MSHRs,
// CTA placement) is not reconstructible without a timing model, and the
// equivalence bar is bit-identical campaign outcomes. The handoff mapping
// lives in campaign::run_sample; the state transfer in Gpu::launch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "src/sim/gpu.h"
#include "src/sim/sm.h"

namespace gras::sim {

/// Which execution backend a campaign runs its fault-free prefix on.
enum class BackendKind : std::uint8_t {
  Timing,      ///< cycle-approximate simulation all the way (the baseline)
  Functional,  ///< functional fast-forward to the handoff, timing after it
};

const char* backend_name(BackendKind kind);
/// Inverse of backend_name ("timing"/"functional"); nullopt otherwise.
std::optional<BackendKind> backend_from_name(std::string_view name);

/// Per-launch execution primitive. Implementations run the launch described
/// by `ctx` to completion, a trap (reported in ctx.trap), or the watchdog
/// `deadline` (a global-cycle bound; exceeding it must set
/// TrapKind::Watchdog). `record` receives backend-specific bookkeeping
/// (peak CTA residency for the timing backend; nothing for the functional
/// backend, whose callers adopt golden records wholesale).
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;
  virtual BackendKind kind() const noexcept = 0;
  virtual void run_launch(LaunchContext& ctx, LaunchRecord& record,
                          std::uint64_t deadline) = 0;
};

/// The original per-cycle timing loop, extracted verbatim from Gpu::launch()
/// so both backends sit behind one interface. Owns no state of its own: it
/// advances the Gpu's global cycle counter and SMs in place.
class TimingBackend final : public ExecBackend {
 public:
  explicit TimingBackend(Gpu& gpu) : gpu_(gpu) {}

  BackendKind kind() const noexcept override { return BackendKind::Timing; }
  void run_launch(LaunchContext& ctx, LaunchRecord& record,
                  std::uint64_t deadline) override;
  /// Continues a launch suspended by a ForkObserver. Identical to
  /// run_launch except that it first *completes the idle fast-forward the
  /// pause interrupted*: an observer bounds the idle jump at its trigger, so
  /// the device sits mid-jump at trigger-1 — cycles the uninterrupted loop
  /// would never simulate. Re-running the (idempotent, state-derived) jump
  /// before the loop body keeps the set of simulated cycles — and with it
  /// CTA placement timing — bit-identical to an unpaused run.
  void resume_run(LaunchContext& ctx, LaunchRecord& record,
                  std::uint64_t deadline);

 private:
  void run_loop(LaunchContext& ctx, LaunchRecord& record, std::uint64_t deadline,
                bool resumed);

  Gpu& gpu_;
};

/// Hook into the timing loop that can suspend a launch at fork points
/// (batched execution). Checked at the top of every loop iteration, before
/// the cycle counter advances, so a pause leaves the device state exactly as
/// of the end of the previous cycle.
class ForkObserver {
 public:
  virtual ~ForkObserver() = default;
  /// Return false to suspend the launch (TrapKind::Paused) before the cycle
  /// counter advances to `next_cycle`.
  virtual bool before_cycle(Gpu& gpu, const LaunchContext& ctx,
                            const LaunchRecord& record,
                            std::uint64_t next_cycle) = 0;
  /// Earliest future cycle this observer needs to see, bounding the idle
  /// fast-forward (like FaultHook::next_trigger). UINT64_MAX when the
  /// trigger is not cycle-based (instruction counters freeze across idle
  /// jumps, so the per-iteration check alone suffices).
  virtual std::uint64_t next_stop() const = 0;
};

/// What a batched sample's fork trigger counts (DESIGN.md §12): a global
/// cycle for microarchitecture-level faults, or a global dynamic-instruction
/// index (GPR-writing or load-only counting space) for software-level ones.
enum class ForkTriggerKind : std::uint8_t {
  Cycle,    ///< pause just before the trigger cycle (hook fires on resume)
  GpIndex,  ///< pause conservatively before the GPR-writer index is reached
  LdIndex,  ///< same, in the load-only counting space
};

/// Batched lock-step sample execution (DESIGN.md §12). Not an ExecBackend:
/// it does not run one launch, it orchestrates *suspensions* of the timing
/// backend so K samples of the same (app, kernel, launch ordinal) share one
/// fault-free prefix. Usage, per batch:
///
///   BatchedBackend batch(gpu, kind, inject_launch);
///   batch.arm(first_trigger);           // then run the app prefix once
///   ... replay_app(...) returns with trap == Paused ...
///   for each lane (ascending trigger):
///     fork[i] = batch.capture_fork();   // copy-on-write capture
///     if (!batch.continue_to(next))     // advance shared state to next lane
///       break;                          // completed early: fall back
///   batch.disarm();
///   for each lane: gpu.restore_fork(fork[i], ...); gpu.resume_launch(...)
///
/// The index-based trigger kinds pause *conservatively early* (a slack of
/// num_sms * warp_size instructions, the most one loop iteration can
/// retire), so the lane — resumed with its fault hook attached — always
/// re-simulates the instructions around its trigger itself, bit-identically
/// to an unbatched run.
class BatchedBackend final : public ForkObserver {
 public:
  BatchedBackend(Gpu& gpu, ForkTriggerKind kind, std::size_t launch_index);

  /// Installs this observer on the Gpu for launch `launch_index`, pausing at
  /// `trigger`. Call before running the shared prefix.
  void arm(std::uint64_t trigger);
  /// Detaches the observer; later launches run normally.
  void disarm();
  /// True while the Gpu holds a launch this observer suspended.
  bool paused() const noexcept;
  /// Captures the paused state as a fork. The first call takes the shared
  /// base snapshot (and starts dirty-page tracking); later calls record only
  /// deltas against it.
  LaunchFork capture_fork();
  /// Advances the shared paused state to the next lane's trigger. Returns
  /// false if the launch ran to completion instead (no pause happened).
  bool continue_to(std::uint64_t trigger);

  bool before_cycle(Gpu& gpu, const LaunchContext& ctx, const LaunchRecord& record,
                    std::uint64_t next_cycle) override;
  std::uint64_t next_stop() const override;

 private:
  Gpu& gpu_;
  ForkTriggerKind kind_;
  std::size_t launch_index_;
  std::uint64_t trigger_ = 0;
  std::uint64_t slack_;
  std::shared_ptr<const GpuSnapshot> base_;
};

}  // namespace gras::sim
