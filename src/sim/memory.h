// Simulated global (device) memory with a bump allocator and access checks.
//
// The first page is never mapped, so null-pointer-like accesses trap; any
// access beyond the allocation high-water mark traps. Both conditions model
// the "illegal memory access" DUEs that fault-corrupted addresses trigger on
// real GPUs (paper §IV-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/trap.h"

namespace gras::sim {

class GlobalMemory {
 public:
  /// Compact device-memory image: contents up to the allocation high-water
  /// mark (everything above is guaranteed zero in a fault-free run).
  struct Snapshot {
    std::vector<std::uint8_t> data;
    std::uint64_t top = kBase;
  };

  explicit GlobalMemory(std::uint64_t bytes);

  /// Allocates `bytes` (16-byte aligned); returns the device address.
  /// Throws std::bad_alloc when out of simulated memory.
  std::uint32_t allocate(std::uint64_t bytes);

  /// Resets the allocator and zeroes memory.
  void reset();

  /// Captures contents up to the allocation top (launch-boundary
  /// checkpointing; see DESIGN.md §7).
  Snapshot snapshot() const;
  /// Restores a snapshot, zeroing everything the current run may have
  /// written above it (faulty runs can scribble anywhere via corrupted
  /// cache tags, so the written high-water mark is tracked, not assumed).
  void restore(const Snapshot& snap);

  /// True if [addr, addr+size) lies fully inside allocated memory.
  bool in_bounds(std::uint64_t addr, std::uint64_t size) const noexcept;

  /// Unchecked raw access for cache fills/write-backs (line-granular; the
  /// cache hierarchy only requests lines that passed in_bounds checks or
  /// whole lines overlapping allocated space, which are clamped).
  void read(std::uint64_t addr, std::span<std::uint8_t> out) noexcept;
  void write(std::uint64_t addr, std::span<const std::uint8_t> in) noexcept;

  std::uint64_t size() const noexcept { return data_.size(); }
  std::uint64_t allocated_top() const noexcept { return top_; }
  /// Base of the first allocation (the unmapped guard region ends here).
  static constexpr std::uint32_t kBase = 4096;

  /// Direct view of backing storage (host memcpy uses the cache hierarchy
  /// instead; this is for tests).
  std::span<std::uint8_t> raw() noexcept { return data_; }

  // --- Dirty-page tracking (copy-on-write forks; DESIGN.md §12) ---
  /// One dirty page: index (addr >> kPageShift) plus its current contents.
  struct Page {
    std::uint64_t index;
    std::vector<std::uint8_t> bytes;
  };
  static constexpr std::uint32_t kPageShift = 12;  ///< 4 KiB pages
  static constexpr std::uint64_t kPageBytes = std::uint64_t{1} << kPageShift;
  /// Clears the dirty bitmap: subsequent collect_dirty_pages() calls report
  /// only pages written after this point.
  void clear_dirty() noexcept;
  /// Copies of every page written since the last clear_dirty(). The bitmap
  /// is left intact so successive forks from the same base accumulate.
  std::vector<Page> collect_dirty_pages() const;

 private:
  std::vector<std::uint8_t> data_;
  std::uint64_t top_ = kBase;
  std::uint64_t written_top_ = 0;  ///< furthest byte ever written (for restore)
  std::vector<std::uint8_t> dirty_;  ///< one byte per page, set in write()
};

}  // namespace gras::sim
