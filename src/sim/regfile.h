// Physical per-SM register file with allocation tracking.
//
// GPGPU-Sim allocates registers dynamically per thread, so gpuFI-4 can only
// inject into registers that are allocated at the trigger cycle and then
// scales the failure rate by a derating factor (paper §II-B). This model
// reproduces that exactly: the backing array is the full physical register
// file, an allocation bitmap tracks which cells belong to resident CTAs, and
// the injector samples among allocated cells. Freed cells keep their stale
// data — faults landing there are dead by construction, which is the
// hardware masking SVF cannot see.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace gras::sim {

class RegFile {
 public:
  /// Full physical state: cell contents plus the allocation map (stale data
  /// in freed cells is part of the fault surface, so it is preserved).
  struct Snapshot {
    std::vector<std::uint32_t> cells;
    std::vector<std::uint64_t> alloc_bitmap;
    std::uint32_t allocated_count = 0;
  };

  explicit RegFile(std::uint32_t num_regs);

  Snapshot snapshot() const { return {cells_, alloc_bitmap_, allocated_count_}; }
  void restore(const Snapshot& snap);
  /// Back to the freshly-constructed all-zero state.
  void reset();

  /// Allocates a contiguous block of `count` registers (first-fit).
  /// Returns the base index, or nullopt if no block fits.
  std::optional<std::uint32_t> allocate(std::uint32_t count);
  void free(std::uint32_t base, std::uint32_t count);

  std::uint32_t read(std::uint32_t index) const noexcept { return cells_[index]; }
  void write(std::uint32_t index, std::uint32_t value) noexcept { cells_[index] = value; }

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(cells_.size()); }
  std::uint64_t bit_count() const noexcept { return std::uint64_t{size()} * 32; }
  std::uint32_t allocated_count() const noexcept { return allocated_count_; }
  std::uint64_t allocated_bit_count() const noexcept {
    return std::uint64_t{allocated_count_} * 32;
  }

  /// Flips one bit anywhere in the physical register file.
  void flip_bit(std::uint64_t bit_index) noexcept;
  /// Index of the k-th currently allocated register cell (k < allocated_count).
  std::uint32_t allocated_cell(std::uint32_t k) const noexcept;
  bool is_allocated(std::uint32_t index) const noexcept;

 private:
  std::vector<std::uint32_t> cells_;
  std::vector<std::uint64_t> alloc_bitmap_;  ///< one bit per register cell
  std::uint32_t allocated_count_ = 0;
};

/// Per-SM shared memory with per-CTA region allocation. Same derating-factor
/// story as the register file, at byte granularity.
class SharedMem {
 public:
  /// Allocation granule: kernel smem sizes are rounded up to this, which
  /// keeps the bitmap small and is what occupancy bounds must round with.
  static constexpr std::uint32_t kGranule = 256;

  struct Snapshot {
    std::vector<std::uint8_t> data;
    std::vector<bool> granule_used;
    std::uint32_t allocated_bytes = 0;
  };

  explicit SharedMem(std::uint32_t bytes);

  Snapshot snapshot() const { return {data_, granule_used_, allocated_bytes_}; }
  void restore(const Snapshot& snap);
  void reset();

  std::optional<std::uint32_t> allocate(std::uint32_t bytes);
  void free(std::uint32_t base, std::uint32_t bytes);

  std::uint32_t read_u32(std::uint32_t addr) const noexcept;
  void write_u32(std::uint32_t addr, std::uint32_t value) noexcept;

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(data_.size()); }
  std::uint64_t bit_count() const noexcept { return std::uint64_t{size()} * 8; }
  std::uint32_t allocated_bytes() const noexcept { return allocated_bytes_; }

  void flip_bit(std::uint64_t bit_index) noexcept;
  /// Byte index of the k-th currently allocated byte.
  std::uint32_t allocated_byte(std::uint32_t k) const noexcept;
  bool is_allocated(std::uint32_t byte) const noexcept;

 private:
  std::vector<std::uint8_t> data_;
  std::vector<bool> granule_used_;
  std::uint32_t allocated_bytes_ = 0;
};

}  // namespace gras::sim
