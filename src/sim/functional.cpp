#include "src/sim/functional.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/isa/isa.h"

// Direct-threaded dispatch (computed goto) is a GNU extension; fall back to
// a plain switch elsewhere. The handlers are shared between both forms via
// the GRAS_OP/GRAS_NEXT macros below.
#if defined(__GNUC__) && !defined(GRAS_FUNCTIONAL_NO_THREADED_DISPATCH)
#define GRAS_FUNCTIONAL_THREADED 1
#else
#define GRAS_FUNCTIONAL_THREADED 0
#endif

namespace gras::sim {

using isa::Instr;
using isa::Op;
using isa::Operand;
using isa::OperandKind;

namespace {

constexpr std::uint32_t kFullMask = 0xffffffffu;
constexpr std::uint32_t kMaxDivergenceDepth = 64;

// Scalar semantics below must match sm.cpp bit-for-bit: the equivalence bar
// for the functional backend is byte-identical memory images.
float as_float(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

std::uint32_t as_bits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, 4);
  return bits;
}

std::uint32_t f2i(std::uint32_t bits) {
  const float f = as_float(bits);
  if (std::isnan(f)) return 0;
  if (f >= 2147483647.0f) return 0x7fffffffu;
  if (f <= -2147483648.0f) return 0x80000000u;
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(f));
}

/// Same drained-path resolution as Sm::resolve_path (the algorithm only
/// touches WarpExec state, so it is shared verbatim).
bool resolve_path(WarpExec& warp) {
  for (;;) {
    if (warp.stack.empty()) return warp.path_active() != 0;
    const DivFrame& frame = warp.stack.back();
    // The top frame's pending paths are the arena's tail, [path_base, size).
    if (warp.paths.size() > frame.path_base) {
      const DivPath next = warp.paths.back();
      warp.paths.pop_back();
      warp.active_mask = next.mask;
      warp.pc = next.pc;
      if (warp.path_active() != 0) return true;
      continue;
    }
    const std::uint32_t restored = frame.union_mask & ~warp.exited_mask;
    const std::uint32_t reconv = frame.reconv_pc;
    warp.stack.pop_back();  // pending empty ⇒ paths already ends at path_base
    if (restored != 0 && reconv != DivFrame::kNoReconv) {
      warp.active_mask = restored;
      warp.pc = reconv;
      return true;
    }
    warp.active_mask = restored;
    if (restored != 0) return true;
  }
}

/// One-CTA-at-a-time architectural interpreter. Register file and shared
/// memory are private zeroed buffers (see functional.h for why that is
/// equivalent); global memory is the device's, accessed raw.
class Interp {
 public:
  Interp(const GpuConfig& config, GlobalMemory& gmem, LaunchContext& ctx,
         std::uint64_t budget)
      : config_(config),
        gmem_(gmem),
        ctx_(ctx),
        budget_(budget),
        rf_(std::uint64_t{ctx.threads_per_cta} * ctx.regs_per_thread),
        smem_(config.smem_bytes_per_sm),
        warps_(ctx.warps_per_cta) {}

  void run();
  std::uint64_t warp_instrs() const noexcept { return warp_instrs_; }

 private:
  void init_cta(std::uint64_t cta_index);
  void run_cta();
  void run_warp(std::uint32_t w);
  void finish_warp(WarpExec& warp) {
    warp.done = true;
    warps_done_ += 1;
  }

  std::uint32_t read_reg(const WarpExec& warp, std::uint32_t lane,
                         std::uint8_t reg) const {
    if (reg == isa::kRegRZ) return 0;
    const std::uint32_t tid = warp.warp_in_cta * config_.warp_size + lane;
    return rf_[std::uint64_t{tid} * ctx_.regs_per_thread + reg];
  }
  void write_reg(const WarpExec& warp, std::uint32_t lane, std::uint8_t reg,
                 std::uint32_t value) {
    if (reg == isa::kRegRZ) return;
    const std::uint32_t tid = warp.warp_in_cta * config_.warp_size + lane;
    rf_[std::uint64_t{tid} * ctx_.regs_per_thread + reg] = value;
  }
  std::uint32_t special_value(const WarpExec& warp, std::uint32_t lane,
                              isa::SpecialReg sr) const;
  std::uint32_t eval_operand(const WarpExec& warp, const Operand& op,
                             std::uint32_t lane, bool& trap) const;
  std::uint32_t gmem_read_u32(std::uint64_t addr) {
    std::uint8_t bytes[4];
    gmem_.read(addr, bytes);
    std::uint32_t v;
    std::memcpy(&v, bytes, 4);
    return v;
  }
  void gmem_write_u32(std::uint64_t addr, std::uint32_t v) {
    std::uint8_t bytes[4];
    std::memcpy(bytes, &v, 4);
    gmem_.write(addr, bytes);
  }
  void exec_global(WarpExec& warp, const Instr& ins, std::uint32_t exec);
  void exec_shared(WarpExec& warp, const Instr& ins, std::uint32_t exec);
  void exec_atomic(WarpExec& warp, const Instr& ins, std::uint32_t exec);

  const GpuConfig& config_;
  GlobalMemory& gmem_;
  LaunchContext& ctx_;
  const std::uint64_t budget_;
  std::uint64_t warp_instrs_ = 0;

  std::vector<std::uint32_t> rf_;   ///< current CTA, thread-major
  std::vector<std::uint8_t> smem_;  ///< current CTA, base offset 0
  std::vector<WarpExec> warps_;     ///< current CTA
  std::uint32_t ctaid_x_ = 0, ctaid_y_ = 0, ctaid_z_ = 0;
  std::uint32_t warps_done_ = 0;
  std::uint32_t barrier_arrived_ = 0;
};

std::uint32_t Interp::special_value(const WarpExec& warp, std::uint32_t lane,
                                    isa::SpecialReg sr) const {
  const std::uint32_t tid = warp.warp_in_cta * config_.warp_size + lane;
  switch (sr) {
    case isa::SpecialReg::TID_X: return tid % ctx_.block.x;
    case isa::SpecialReg::TID_Y: return tid / ctx_.block.x;
    case isa::SpecialReg::CTAID_X: return ctaid_x_;
    case isa::SpecialReg::CTAID_Y: return ctaid_y_;
    case isa::SpecialReg::CTAID_Z: return ctaid_z_;
    case isa::SpecialReg::NTID_X: return ctx_.block.x;
    case isa::SpecialReg::NTID_Y: return ctx_.block.y;
    case isa::SpecialReg::NCTAID_X: return ctx_.grid.x;
    case isa::SpecialReg::NCTAID_Y: return ctx_.grid.y;
    case isa::SpecialReg::NCTAID_Z: return ctx_.grid.z;
    case isa::SpecialReg::LANEID: return lane;
    case isa::SpecialReg::WARPID: return warp.warp_in_cta;
  }
  return 0;
}

std::uint32_t Interp::eval_operand(const WarpExec& warp, const Operand& op,
                                   std::uint32_t lane, bool& trap) const {
  switch (op.kind) {
    case OperandKind::Gpr:
      return read_reg(warp, lane, static_cast<std::uint8_t>(op.value));
    case OperandKind::Imm:
      return op.value;
    case OperandKind::Param: {
      const std::uint32_t index = op.value / 4;
      if (index >= ctx_.params.size()) {
        trap = true;
        return 0;
      }
      return ctx_.params[index];
    }
    case OperandKind::None:
      return 0;
  }
  return 0;
}

void Interp::exec_global(WarpExec& warp, const Instr& ins, std::uint32_t exec) {
  if (exec == 0) return;
  const bool store = ins.op == Op::STG;
  bool param_trap = false;
  // Validate every lane's address before touching memory, exactly like the
  // timing coalescer's gather phase: a trapping lane means no lane's access
  // lands.
  std::uint32_t addrs[32];
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t addr = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((addr & 3u) != 0) {
      ctx_.trap = TrapKind::MisalignedGlobal;
      return;
    }
    if (!gmem_.in_bounds(addr, 4)) {
      ctx_.trap = TrapKind::OobGlobal;
      return;
    }
    addrs[lane] = addr;
  }
  // Lane-order accesses produce the same memory image as the timing
  // backend's line-grouped ones: two lanes hitting the same word share a
  // line, and within a line the timing path applies ops in lane order too.
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    if (store) {
      gmem_write_u32(addrs[lane], eval_operand(warp, ins.b, lane, param_trap));
    } else {
      write_reg(warp, lane, ins.dst, gmem_read_u32(addrs[lane]));
    }
  }
  if (param_trap) ctx_.trap = TrapKind::ParamOob;
}

void Interp::exec_shared(WarpExec& warp, const Instr& ins, std::uint32_t exec) {
  if (exec == 0) return;
  const bool store = ins.op == Op::STS;
  bool param_trap = false;
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t off = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((off & 3u) != 0) {
      ctx_.trap = TrapKind::MisalignedShared;
      return;
    }
    if (off >= config_.smem_bytes_per_sm) {
      ctx_.trap = TrapKind::OobShared;
      return;
    }
    // The CTA's base offset is 0 here, so the timing backend's physical
    // wrap-around reduces to the offset itself.
    if (store) {
      const std::uint32_t v = eval_operand(warp, ins.b, lane, param_trap);
      std::memcpy(smem_.data() + off, &v, 4);
    } else {
      std::uint32_t v;
      std::memcpy(&v, smem_.data() + off, 4);
      write_reg(warp, lane, ins.dst, v);
    }
  }
  if (param_trap) ctx_.trap = TrapKind::ParamOob;
}

void Interp::exec_atomic(WarpExec& warp, const Instr& ins, std::uint32_t exec) {
  if (exec == 0) return;
  bool param_trap = false;
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t addr = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((addr & 3u) != 0) {
      ctx_.trap = TrapKind::MisalignedGlobal;
      return;
    }
    if (!gmem_.in_bounds(addr, 4)) {
      ctx_.trap = TrapKind::OobGlobal;
      return;
    }
    const std::uint32_t operand = eval_operand(warp, ins.b, lane, param_trap);
    const std::uint32_t old = gmem_read_u32(addr);
    gmem_write_u32(addr, old + operand);
    if (ins.op == Op::ATOM_ADD) write_reg(warp, lane, ins.dst, old);
  }
  if (param_trap) ctx_.trap = TrapKind::ParamOob;
}

void Interp::init_cta(std::uint64_t cta_index) {
  ctaid_x_ = static_cast<std::uint32_t>(cta_index % ctx_.grid.x);
  ctaid_y_ = static_cast<std::uint32_t>((cta_index / ctx_.grid.x) % ctx_.grid.y);
  ctaid_z_ = static_cast<std::uint32_t>(
      cta_index / (std::uint64_t{ctx_.grid.x} * ctx_.grid.y));
  std::fill(rf_.begin(), rf_.end(), 0u);
  std::fill(smem_.begin(), smem_.end(), std::uint8_t{0});
  warps_done_ = 0;
  barrier_arrived_ = 0;
  for (std::uint32_t w = 0; w < ctx_.warps_per_cta; ++w) {
    WarpExec& warp = warps_[w];
    warp = WarpExec{};
    warp.resident = true;
    warp.warp_in_cta = w;
    const std::uint64_t first_tid = std::uint64_t{w} * config_.warp_size;
    std::uint32_t mask = 0;
    for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
      if (first_tid + lane < ctx_.threads_per_cta) mask |= 1u << lane;
    }
    warp.active_mask = mask;
    warp.pred_mask[isa::kPredPT] = kFullMask;
  }
}

void Interp::run_cta() {
  const std::uint32_t n = ctx_.warps_per_cta;
  while (warps_done_ < n) {
    bool progress = false;
    for (std::uint32_t w = 0; w < n; ++w) {
      WarpExec& warp = warps_[w];
      if (warp.done || warp.at_barrier) continue;
      run_warp(w);
      progress = true;
      if (ctx_.trap != TrapKind::None) return;
    }
    // Barrier release mirrors Sm::release_barrier_if_ready: every live
    // (non-exited) warp must have arrived. Exited warps satisfy the barrier
    // implicitly because `live` shrinks with warps_done_.
    const std::uint32_t live = n - warps_done_;
    if (live > 0 && barrier_arrived_ > 0 && barrier_arrived_ >= live) {
      for (std::uint32_t w = 0; w < n; ++w) {
        if (warps_[w].at_barrier) warps_[w].at_barrier = false;
      }
      barrier_arrived_ = 0;
      progress = true;
    }
    if (!progress) {
      // Every live warp is stuck at a barrier that can never fill: the
      // timing backend idles to its deadline and reports Watchdog.
      ctx_.trap = TrapKind::Watchdog;
      return;
    }
  }
}

void Interp::run() {
  const std::uint64_t total_ctas = ctx_.grid.count();
  for (std::uint64_t cta = 0; cta < total_ctas; ++cta) {
    init_cta(cta);
    run_cta();
    if (ctx_.trap != TrapKind::None) return;
  }
}

#if GRAS_FUNCTIONAL_THREADED
// Label-as-value / computed goto are deliberate GNU extensions here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
#if defined(__clang__)
#pragma GCC diagnostic ignored "-Wgnu-label-as-value"
#endif
#define GRAS_OP(name) lbl_##name:
#define GRAS_NEXT goto epilogue
#else
#define GRAS_OP(name) case Op::name:
#define GRAS_NEXT break
#endif

void Interp::run_warp(std::uint32_t w) {
  WarpExec& warp = warps_[w];
  const isa::Kernel& k = *ctx_.kernel;
  const std::uint32_t code_size = static_cast<std::uint32_t>(k.code.size());

  for (;;) {
    if (warp_instrs_ >= budget_) {
      ctx_.trap = TrapKind::Watchdog;
      return;
    }
    if (warp.pc >= code_size) {
      ctx_.trap = TrapKind::InvalidPc;
      return;
    }
    const Instr& ins = k.code[warp.pc];
    const std::uint32_t path = warp.path_active();
    const std::uint32_t guard_bits = warp.pred_mask[ins.guard];
    const std::uint32_t exec = path & (ins.guard_neg ? ~guard_bits : guard_bits);
    warp_instrs_ += 1;

    std::uint32_t next_pc = warp.pc + 1;
    bool advance = true;
    bool param_trap = false;

    auto for_lanes = [&](auto&& body) {
      for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
        if (exec & (1u << lane)) body(lane);
      }
    };
    auto src = [&](const Operand& op, std::uint32_t lane) {
      return eval_operand(warp, op, lane, param_trap);
    };

#if GRAS_FUNCTIONAL_THREADED
    // One entry per Op, in exact enum order (pinned by the static_assert).
    static const void* const kDispatch[] = {
        &&lbl_S2R,  &&lbl_MOV,  &&lbl_IADD, &&lbl_ISUB,  &&lbl_IMUL,
        &&lbl_IMAD, &&lbl_ISCADD, &&lbl_SHL, &&lbl_SHR,  &&lbl_ASR,
        &&lbl_AND,  &&lbl_OR,   &&lbl_XOR,  &&lbl_NOT,   &&lbl_IMIN,
        &&lbl_IMAX, &&lbl_ISETP, &&lbl_SEL, &&lbl_FADD,  &&lbl_FSUB,
        &&lbl_FMUL, &&lbl_FFMA, &&lbl_FMIN, &&lbl_FMAX,  &&lbl_FSETP,
        &&lbl_F2I,  &&lbl_I2F,  &&lbl_MUFU, &&lbl_LDG,   &&lbl_LDT,
        &&lbl_STG,  &&lbl_LDS,  &&lbl_STS,  &&lbl_BRA,   &&lbl_SSY,
        &&lbl_SYNC, &&lbl_BAR,  &&lbl_EXIT, &&lbl_NOP,   &&lbl_ATOM_ADD,
        &&lbl_RED_ADD,
    };
    static_assert(static_cast<int>(Op::RED_ADD) == 40,
                  "Op enum changed: update kDispatch");
    goto *kDispatch[static_cast<std::uint8_t>(ins.op)];
#else
    switch (ins.op) {
#endif

    GRAS_OP(S2R) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  special_value(warp, lane, static_cast<isa::SpecialReg>(ins.b.value)));
      });
    }
    GRAS_NEXT;
    GRAS_OP(MOV) {
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, src(ins.a, lane)); });
    }
    GRAS_NEXT;
    GRAS_OP(NOT) {
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, ~src(ins.a, lane)); });
    }
    GRAS_NEXT;
    GRAS_OP(IADD) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) + src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(ISUB) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) - src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(IMUL) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(src(ins.a, lane)) *
                                             static_cast<std::int32_t>(src(ins.b, lane))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(IMAD) {
      for_lanes([&](std::uint32_t lane) {
        const std::int64_t prod = static_cast<std::int64_t>(
                                      static_cast<std::int32_t>(src(ins.a, lane))) *
                                  static_cast<std::int32_t>(src(ins.b, lane));
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(prod) + src(ins.c, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(ISCADD) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  (src(ins.a, lane) << ins.shift) + src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(SHL) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) << (src(ins.b, lane) & 31));
      });
    }
    GRAS_NEXT;
    GRAS_OP(SHR) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) >> (src(ins.b, lane) & 31));
      });
    }
    GRAS_NEXT;
    GRAS_OP(ASR) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(src(ins.a, lane)) >>
                                             (src(ins.b, lane) & 31)));
      });
    }
    GRAS_NEXT;
    GRAS_OP(AND) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) & src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(OR) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) | src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(XOR) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) ^ src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(IMIN) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(
                      std::min(static_cast<std::int32_t>(src(ins.a, lane)),
                               static_cast<std::int32_t>(src(ins.b, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(IMAX) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(
                      std::max(static_cast<std::int32_t>(src(ins.a, lane)),
                               static_cast<std::int32_t>(src(ins.b, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(ISETP) {
      for_lanes([&](std::uint32_t lane) {
        const std::int32_t a = static_cast<std::int32_t>(src(ins.a, lane));
        const std::int32_t b = static_cast<std::int32_t>(src(ins.b, lane));
        bool r = false;
        switch (ins.cmp) {
          case isa::Cmp::EQ: r = a == b; break;
          case isa::Cmp::NE: r = a != b; break;
          case isa::Cmp::LT: r = a < b; break;
          case isa::Cmp::LE: r = a <= b; break;
          case isa::Cmp::GT: r = a > b; break;
          case isa::Cmp::GE: r = a >= b; break;
        }
        if (ins.pdst != isa::kPredPT) {
          if (r) warp.pred_mask[ins.pdst] |= 1u << lane;
          else warp.pred_mask[ins.pdst] &= ~(1u << lane);
        }
      });
    }
    GRAS_NEXT;
    GRAS_OP(FSETP) {
      for_lanes([&](std::uint32_t lane) {
        const float a = as_float(src(ins.a, lane));
        const float b = as_float(src(ins.b, lane));
        bool r = false;
        switch (ins.cmp) {
          case isa::Cmp::EQ: r = a == b; break;
          case isa::Cmp::NE: r = a != b; break;
          case isa::Cmp::LT: r = a < b; break;
          case isa::Cmp::LE: r = a <= b; break;
          case isa::Cmp::GT: r = a > b; break;
          case isa::Cmp::GE: r = a >= b; break;
        }
        if (ins.pdst != isa::kPredPT) {
          if (r) warp.pred_mask[ins.pdst] |= 1u << lane;
          else warp.pred_mask[ins.pdst] &= ~(1u << lane);
        }
      });
    }
    GRAS_NEXT;
    GRAS_OP(SEL) {
      for_lanes([&](std::uint32_t lane) {
        const bool p = ((warp.pred_mask[ins.psrc] >> lane) & 1) != 0;
        const bool take_a = p != ins.psrc_neg;
        write_reg(warp, lane, ins.dst, take_a ? src(ins.a, lane) : src(ins.b, lane));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FADD) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) + as_float(src(ins.b, lane))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FSUB) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) - as_float(src(ins.b, lane))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FMUL) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) * as_float(src(ins.b, lane))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FFMA) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmaf(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)),
                                    as_float(src(ins.c, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FMIN) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmin(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(FMAX) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmax(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(F2I) {
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, f2i(src(ins.a, lane))); });
    }
    GRAS_NEXT;
    GRAS_OP(I2F) {
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(static_cast<float>(static_cast<std::int32_t>(src(ins.a, lane)))));
      });
    }
    GRAS_NEXT;
    GRAS_OP(MUFU) {
      for_lanes([&](std::uint32_t lane) {
        const float a = as_float(src(ins.a, lane));
        float r = 0.0f;
        switch (ins.mufu) {
          case isa::Mufu::RCP: r = 1.0f / a; break;
          case isa::Mufu::SQRT: r = std::sqrt(a); break;
          case isa::Mufu::RSQRT: r = 1.0f / std::sqrt(a); break;
          case isa::Mufu::EX2: r = std::exp2(a); break;
          case isa::Mufu::LG2: r = std::log2(a); break;
          case isa::Mufu::EXP: r = std::exp(a); break;
          case isa::Mufu::LOG: r = std::log(a); break;
          case isa::Mufu::SIN: r = std::sin(a); break;
          case isa::Mufu::COS: r = std::cos(a); break;
        }
        write_reg(warp, lane, ins.dst, as_bits(r));
      });
    }
    GRAS_NEXT;
    GRAS_OP(LDG)
    GRAS_OP(LDT)
    GRAS_OP(STG) {
      exec_global(warp, ins, exec);
    }
    GRAS_NEXT;
    GRAS_OP(LDS)
    GRAS_OP(STS) {
      exec_shared(warp, ins, exec);
    }
    GRAS_NEXT;
    GRAS_OP(ATOM_ADD)
    GRAS_OP(RED_ADD) {
      exec_atomic(warp, ins, exec);
    }
    GRAS_NEXT;
    GRAS_OP(SSY) {
      if (ins.target >= code_size) {
        ctx_.trap = TrapKind::InvalidPc;
        return;
      }
      if (warp.stack.size() >= kMaxDivergenceDepth) {
        ctx_.trap = TrapKind::DivergenceOverflow;
        return;
      }
      warp.stack.push_back(
          {ins.target, path, static_cast<std::uint32_t>(warp.paths.size())});
    }
    GRAS_NEXT;
    GRAS_OP(BRA) {
      if (exec == 0) GRAS_NEXT;
      if (ins.target >= code_size) {
        ctx_.trap = TrapKind::InvalidPc;
        return;
      }
      if (exec == path) {
        next_pc = ins.target;
        GRAS_NEXT;
      }
      if (warp.stack.empty()) {
        warp.stack.push_back({DivFrame::kNoReconv, path,
                              static_cast<std::uint32_t>(warp.paths.size())});
      }
      if (warp.stack.size() >= kMaxDivergenceDepth &&
          warp.paths.size() - warp.stack.back().path_base >= kMaxDivergenceDepth) {
        ctx_.trap = TrapKind::DivergenceOverflow;
        return;
      }
      warp.paths.push_back({ins.target, exec});
      warp.active_mask = path & ~exec;
    }
    GRAS_NEXT;
    GRAS_OP(SYNC) {
      if (warp.stack.empty() ||
          warp.stack.back().reconv_pc == DivFrame::kNoReconv) {
        GRAS_NEXT;  // stray SYNC: no-op
      }
      if (!resolve_path(warp)) {
        finish_warp(warp);
        return;
      }
      advance = false;
    }
    GRAS_NEXT;
    GRAS_OP(BAR) {
      warp.at_barrier = true;
      barrier_arrived_ += 1;
      warp.pc = next_pc;  // resumes after the barrier
      return;
    }
    GRAS_OP(EXIT) {
      warp.exited_mask |= exec;
      if (warp.path_active() == 0) {
        if (!resolve_path(warp)) {
          finish_warp(warp);
          return;
        }
        advance = false;
      }
    }
    GRAS_NEXT;
    GRAS_OP(NOP) {}
    GRAS_NEXT;

#if !GRAS_FUNCTIONAL_THREADED
    }
#endif

  epilogue:
    if (param_trap) {
      ctx_.trap = TrapKind::ParamOob;
      return;
    }
    if (ctx_.trap != TrapKind::None) return;
    if (advance) warp.pc = next_pc;
  }
}

#if GRAS_FUNCTIONAL_THREADED
#pragma GCC diagnostic pop
#endif
#undef GRAS_OP
#undef GRAS_NEXT

}  // namespace

bool functional_safe(const isa::Kernel& kernel) {
  for (const Instr& ins : kernel.code) {
    if (ins.op == Op::ATOM_ADD && ins.dst != isa::kRegRZ) return false;
  }
  return true;
}

void FunctionalBackend::run_launch(LaunchContext& ctx, LaunchRecord& record,
                                   std::uint64_t deadline) {
  (void)record;
  // The timing backend issues at most one warp instruction per SM per cycle,
  // so its cycle deadline bounds the instruction count; exceeding that bound
  // means the timing path would certainly have hit its watchdog.
  std::uint64_t budget = ~std::uint64_t{0};
  if (deadline != ~std::uint64_t{0}) {
    budget = deadline > start_cycle_ ? deadline - start_cycle_ : 0;
    if (budget <= (~std::uint64_t{0}) / config_.num_sms) budget *= config_.num_sms;
    else budget = ~std::uint64_t{0};
  }
  Interp interp(config_, gmem_, ctx, budget);
  interp.run();
  warp_instrs_ = interp.warp_instrs();
}

}  // namespace gras::sim
