// GPU model configuration.
//
// Two presets mirror the paper's setup (§II, Quadro GV100 for gpuFI-4):
//  * "gv100"        — faithful Volta structure sizes. Weighting the chip AVF
//                     with these sizes reproduces the paper's size ratios
//                     (the register file dominates, §III-D footnote 2).
//  * "gv100-scaled" — same microarchitecture with fewer SMs and smaller
//                     structures, the default for campaigns on laptop-class
//                     hosts. The AVF estimator remains self-consistent
//                     because chip weighting always uses the instantiated
//                     sizes.
#pragma once

#include <cstdint>
#include <string>

namespace gras::sim {

/// Configuration of one cache level.
struct CacheConfig {
  std::uint32_t sets = 64;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 128;
  std::uint32_t hit_latency = 28;
  std::uint32_t mshrs = 8;           ///< outstanding misses before reservation fails
  bool write_back = false;           ///< false = write-through, no write-allocate

  std::uint64_t data_bytes() const {
    return std::uint64_t{sets} * ways * line_bytes;
  }
  std::uint64_t data_bits() const { return data_bytes() * 8; }
};

/// Whole-GPU configuration.
struct GpuConfig {
  std::string name = "gv100-scaled";

  // --- SIMT organization ---
  std::uint32_t num_sms = 4;
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps_per_sm = 16;
  std::uint32_t max_ctas_per_sm = 8;

  // --- Register file / shared memory (per SM) ---
  std::uint32_t regs_per_sm = 16 * 1024;   ///< 32-bit registers (64 KiB)
  std::uint32_t smem_bytes_per_sm = 16 * 1024;

  // --- Memory system ---
  CacheConfig l1d{/*sets*/ 32, /*ways*/ 4, /*line*/ 128, /*hit*/ 28, /*mshrs*/ 8,
                  /*write_back*/ false};
  CacheConfig l1t{/*sets*/ 16, /*ways*/ 4, /*line*/ 128, /*hit*/ 30, /*mshrs*/ 8,
                  /*write_back*/ false};
  CacheConfig l2{/*sets*/ 256, /*ways*/ 8, /*line*/ 128, /*hit*/ 190, /*mshrs*/ 32,
                 /*write_back*/ true};
  std::uint32_t dram_latency = 420;
  // Sized to the suite's footprints (largest TMR-hardened app < 1 MiB);
  // campaigns construct one Gpu per sample, so zeroing cost matters.
  std::uint64_t global_mem_bytes = 2ull * 1024 * 1024;

  // --- Latencies (cycles) ---
  std::uint32_t alu_latency = 2;
  std::uint32_t sfu_latency = 8;      ///< MUFU
  std::uint32_t smem_latency = 19;

  // --- Watchdog ---
  /// Hard cycle ceiling per launch when no explicit budget is given.
  std::uint64_t default_watchdog_cycles = 400ull * 1000 * 1000;

  // --- Derived sizes used for AVF chip weighting (bits) ---
  std::uint64_t rf_bits_total() const {
    return std::uint64_t{regs_per_sm} * 32 * num_sms;
  }
  std::uint64_t smem_bits_total() const {
    return std::uint64_t{smem_bytes_per_sm} * 8 * num_sms;
  }
  std::uint64_t l1d_bits_total() const { return l1d.data_bits() * num_sms; }
  std::uint64_t l1t_bits_total() const { return l1t.data_bits() * num_sms; }
  std::uint64_t l2_bits_total() const { return l2.data_bits(); }

  std::uint32_t max_threads_per_sm() const { return max_warps_per_sm * warp_size; }
};

/// Returns a named preset ("gv100" or "gv100-scaled"); throws on unknown names.
GpuConfig make_config(const std::string& name);

}  // namespace gras::sim
