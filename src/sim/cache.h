// Set-associative caches with real backing storage.
//
// Faults are injected into the backing arrays themselves, which is what
// makes the cross-layer AVF measurement honest (paper §V-B):
//  * a flipped bit in a *clean* line disappears when the line is evicted
//    (hardware masking that software-level injection cannot see),
//  * a flipped bit in a *dirty* L2 line is written back to memory and
//    corrupts the program output even if the program never reads it again,
//  * a flipped bit in an invalid line is dead and always masked.
//
// Hierarchy: per-SM L1D and L1T (write-through, no write-allocate, as in
// GPGPU-Sim's Volta configs) on top of a shared write-back write-allocate
// L2, on top of DRAM. All levels share one line size.
//
// Timing is issue-time: an access returns the absolute cycle at which its
// data is ready; the issuing warp stalls until then. A small MSHR model
// provides the "pending hit" and "reservation fail" behaviours that surface
// in the paper's Fig. 3 utilization metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/memory.h"

namespace gras::sim {

/// One 4-byte word write within a line.
struct LineOp {
  std::uint32_t offset;  ///< byte offset within the line (4-aligned)
  std::uint32_t value;
};

/// Per-cache statistics (subset of GPGPU-Sim's cache stats; these are the
/// metrics plotted in the paper's Fig. 3).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t pending_hits = 0;      ///< miss merged into an in-flight fill
  std::uint64_t reservation_fails = 0; ///< all MSHRs busy; access had to retry
  std::uint64_t writebacks = 0;        ///< dirty lines written to next level
  std::uint64_t fills = 0;             ///< lines brought in from next level

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  CacheStats& operator+=(const CacheStats& o);
};

/// Abstract memory level: caches stack on each other and terminate in Dram.
class MemLevel {
 public:
  virtual ~MemLevel() = default;

  /// Timed read of words within one line. Returns the data-ready cycle.
  virtual std::uint64_t read_line(std::uint64_t line_addr,
                                  std::span<const std::uint32_t> offsets,
                                  std::span<std::uint32_t> out, std::uint64_t now) = 0;
  /// Timed write of words within one line. Returns the completion cycle.
  virtual std::uint64_t write_line(std::uint64_t line_addr, std::span<const LineOp> ops,
                                   std::uint64_t now) = 0;
  /// Timed full-line read (used for fills from a lower level).
  virtual std::uint64_t fill_line(std::uint64_t line_addr, std::span<std::uint8_t> out,
                                  std::uint64_t now) = 0;
  /// Untimed full-line write (evicted dirty victim).
  virtual void writeback_line(std::uint64_t line_addr, std::span<const std::uint8_t> in) = 0;
  /// Timed atomic fetch-and-add of a 4-byte word. Returns completion cycle.
  virtual std::uint64_t atomic_add(std::uint64_t addr, std::uint32_t operand,
                                   std::uint32_t& old_value, std::uint64_t now) = 0;
  /// Untimed coherent read/write for host memcpy: sees the freshest copy at
  /// this level or below.
  virtual void peek(std::uint64_t addr, std::span<std::uint8_t> out) = 0;
  virtual void poke(std::uint64_t addr, std::span<const std::uint8_t> in) = 0;
};

/// Terminal level: simulated DRAM with a flat latency.
class Dram final : public MemLevel {
 public:
  Dram(GlobalMemory& memory, std::uint32_t latency);

  std::uint64_t read_line(std::uint64_t line_addr, std::span<const std::uint32_t> offsets,
                          std::span<std::uint32_t> out, std::uint64_t now) override;
  std::uint64_t write_line(std::uint64_t line_addr, std::span<const LineOp> ops,
                           std::uint64_t now) override;
  std::uint64_t fill_line(std::uint64_t line_addr, std::span<std::uint8_t> out,
                          std::uint64_t now) override;
  void writeback_line(std::uint64_t line_addr, std::span<const std::uint8_t> in) override;
  std::uint64_t atomic_add(std::uint64_t addr, std::uint32_t operand,
                           std::uint32_t& old_value, std::uint64_t now) override;
  void peek(std::uint64_t addr, std::span<std::uint8_t> out) override;
  void poke(std::uint64_t addr, std::span<const std::uint8_t> in) override;

  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  void reset_traffic() noexcept { bytes_read_ = bytes_written_ = 0; }
  /// Restores mid-launch traffic counters when resuming from a fork.
  void set_traffic(std::uint64_t read, std::uint64_t written) noexcept {
    bytes_read_ = read;
    bytes_written_ = written;
  }

 private:
  GlobalMemory& memory_;
  std::uint32_t latency_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Set-associative cache level.
class Cache final : public MemLevel {
 public:
  Cache(const CacheConfig& config, MemLevel& next, const char* name);

  std::uint64_t read_line(std::uint64_t line_addr, std::span<const std::uint32_t> offsets,
                          std::span<std::uint32_t> out, std::uint64_t now) override;
  std::uint64_t write_line(std::uint64_t line_addr, std::span<const LineOp> ops,
                           std::uint64_t now) override;
  std::uint64_t fill_line(std::uint64_t line_addr, std::span<std::uint8_t> out,
                          std::uint64_t now) override;
  void writeback_line(std::uint64_t line_addr, std::span<const std::uint8_t> in) override;
  std::uint64_t atomic_add(std::uint64_t addr, std::uint32_t operand,
                           std::uint32_t& old_value, std::uint64_t now) override;
  void peek(std::uint64_t addr, std::span<std::uint8_t> out) override;
  void poke(std::uint64_t addr, std::span<const std::uint8_t> in) override;

  /// Writes back all dirty lines and invalidates everything (GPGPU-Sim
  /// flushes L1 caches at kernel boundaries).
  void flush();

  /// Full cache state at a launch boundary. Cumulative stats and the LRU
  /// use-clock are included so per-launch stat deltas and replacement
  /// decisions after a restore match a full run bit-for-bit.
  struct Snapshot;
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);
  /// Back to the freshly-constructed state (cold, zeroed, zero stats).
  void reset();

  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }
  const CacheConfig& config() const noexcept { return config_; }

  // --- Fault-injection surface (microarchitecture level) ---
  /// Total data-array bits (valid or not — AVF targets the full structure).
  std::uint64_t data_bit_count() const noexcept { return config_.data_bits(); }
  /// Flips one bit of the data array, live or dead.
  void flip_data_bit(std::uint64_t bit_index) noexcept;
  /// Number of cache lines (for tag/flag injection, an extension).
  std::uint64_t line_count() const noexcept { return tags_.size(); }
  void flip_tag_bit(std::uint64_t line_index, unsigned bit) noexcept;
  void flip_valid_bit(std::uint64_t line_index) noexcept;
  void flip_dirty_bit(std::uint64_t line_index) noexcept;

  /// Introspection for tests.
  bool line_valid(std::uint64_t line_index) const { return valid_[line_index] != 0; }
  bool line_dirty(std::uint64_t line_index) const { return dirty_[line_index] != 0; }

  struct Snapshot {
    std::vector<std::uint64_t> tags;
    std::vector<std::uint64_t> last_use;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint8_t> data;
    std::unordered_map<std::uint64_t, std::uint64_t> pending;  ///< in-flight fills
    CacheStats stats;
    std::uint64_t use_clock = 0;
  };

 private:
  std::uint32_t set_of(std::uint64_t line_addr) const noexcept;
  std::uint64_t tag_of(std::uint64_t line_addr) const noexcept;
  /// Returns way index of a hit, or -1.
  int lookup(std::uint32_t set, std::uint64_t tag) const noexcept;
  std::uint8_t* line_data(std::uint32_t set, std::uint32_t way) noexcept;
  /// Returns (way, ready_cycle) after ensuring the line is resident
  /// (allocating/evicting/filling as needed).
  std::pair<std::uint32_t, std::uint64_t> ensure_line(std::uint64_t line_addr,
                                                      std::uint64_t now);
  /// MSHR bookkeeping around a miss; returns extra delay from reservation
  /// failures and registers the in-flight fill.
  std::uint64_t mshr_register(std::uint64_t line_addr, std::uint64_t ready,
                              std::uint64_t now);
  void evict(std::uint32_t set, std::uint32_t way);

  CacheConfig config_;
  MemLevel& next_;
  const char* name_;
  // Line metadata as parallel structure-of-arrays (sets * ways each): tag
  // compares and LRU scans walk one dense array apiece instead of striding
  // through an AoS record, which lets the lookup/victim loops vectorize.
  // valid_/dirty_ are u8, not bool, so the compiler can load them unpacked.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> last_use_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint8_t> data_;    ///< sets * ways * line_bytes
  std::unordered_map<std::uint64_t, std::uint64_t> pending_;  ///< line -> ready
  CacheStats stats_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace gras::sim
