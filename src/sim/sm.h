// Streaming Multiprocessor model: warp state, SIMT divergence stack,
// functional execution of every opcode, issue-time memory timing.
//
// Execution model: one warp instruction issues per SM per cycle (round-robin
// over ready warps), executes functionally at issue, and the warp stalls
// until the instruction's latency elapses. Loads/stores access the cache
// hierarchy at issue time after warp-level coalescing (one cache access per
// distinct line). This is the standard lightweight GPGPU timing abstraction:
// precise enough for uniform cycle sampling, cycle-weighted AVF
// consolidation, watchdog detection, and the occupancy/utilization metrics
// of the paper's Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/regfile.h"
#include "src/sim/trap.h"

namespace gras::sim {

class Sm;
class Gpu;

/// Grid/block dimensions (z used only by the TMR transform's copy index).
struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;
  std::uint64_t count() const { return std::uint64_t{x} * y * z; }
};

/// Per-launch counters; the Fig. 3 resource-utilization metrics derive from
/// these plus cache stats.
struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t warp_instrs = 0;
  std::uint64_t thread_instrs = 0;
  std::uint64_t gp_thread_instrs = 0;  ///< GPR-writing thread instrs (SVF population)
  std::uint64_t ld_thread_instrs = 0;  ///< load thread instrs (SVF-LD population)
  std::uint64_t load_instrs = 0;       ///< warp-level LDG+LDT
  std::uint64_t store_instrs = 0;      ///< warp-level STG
  std::uint64_t smem_instrs = 0;       ///< warp-level LDS+STS
  std::uint64_t atom_instrs = 0;
  CacheStats l1d, l1t, l2;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_written_bytes = 0;
  std::uint64_t warp_residency = 0;    ///< sum over cycles of resident warps
  std::uint64_t sm_cycles = 0;         ///< cycles * num_sms (occupancy denominator)

  double occupancy(std::uint32_t max_warps_per_sm) const {
    if (sm_cycles == 0) return 0.0;
    return static_cast<double>(warp_residency) /
           (static_cast<double>(sm_cycles) * max_warps_per_sm);
  }
  SimStats& operator+=(const SimStats& o);
};

/// Callbacks the fault injectors hang off the simulator.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// True once this hook has landed its fault (profiling hooks never do).
  /// Campaigns use this to count effective injections without probing the
  /// concrete injector type.
  virtual bool injected() const { return false; }
  /// Called once per GPU cycle before any SM issues.
  virtual void on_cycle(Gpu& gpu, std::uint64_t cycle) { (void)gpu; (void)cycle; }
  /// Earliest future cycle this hook needs to observe (lets the GPU
  /// fast-forward through idle stretches without skipping a trigger).
  virtual std::uint64_t next_trigger() const { return ~std::uint64_t{0}; }
  /// Called after each GPR-writing warp instruction retires.
  /// `exec_mask` holds the lanes that executed.
  virtual void on_gpr_retire(Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                             std::uint32_t exec_mask) {
    (void)sm; (void)warp_slot; (void)ins; (void)exec_mask;
  }
  /// Called just before a GPR-writing warp instruction executes (same filter
  /// as on_gpr_retire). Lets source-register injection modes corrupt an
  /// input value for exactly this dynamic instruction.
  virtual void on_pre_exec(Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                           std::uint32_t exec_mask) {
    (void)sm; (void)warp_slot; (void)ins; (void)exec_mask;
  }
  /// Called for *every* issued warp instruction (including stores, branches
  /// and barriers), before execution. Used by profilers (e.g. the ACE
  /// liveness analyzer) that need to observe all register reads.
  virtual void on_issue(Sm& sm, std::uint32_t warp_slot, const isa::Instr& ins,
                        std::uint32_t exec_mask, std::uint64_t cycle) {
    (void)sm; (void)warp_slot; (void)ins; (void)exec_mask; (void)cycle;
  }
};

/// One saved SIMT divergence path.
struct DivPath {
  std::uint32_t pc;
  std::uint32_t mask;
};

/// SIMT reconvergence frame (pushed by SSY, popped when all paths SYNC).
/// Frames are plain 12-byte records: each frame's pending paths live in the
/// warp's flat `paths` arena starting at `path_base` (structure-of-arrays
/// layout; only the top frame's pending region ever grows or shrinks, so the
/// arena behaves as a second stack parallel to `stack`).
struct DivFrame {
  std::uint32_t reconv_pc;                 ///< kNoReconv for implicit frames
  std::uint32_t union_mask;
  std::uint32_t path_base;                 ///< first pending path in WarpExec::paths
  static constexpr std::uint32_t kNoReconv = ~std::uint32_t{0};
};

/// Warp execution state.
struct WarpExec {
  bool resident = false;
  bool done = false;
  bool at_barrier = false;
  std::uint32_t cta_slot = 0;
  std::uint32_t warp_in_cta = 0;
  std::uint32_t pc = 0;
  std::uint32_t active_mask = 0;   ///< current path
  std::uint32_t exited_mask = 0;
  std::uint64_t ready_cycle = 0;
  std::uint32_t pred_mask[isa::kNumPred] = {};  ///< per-lane predicate bits
  std::vector<DivFrame> stack;
  std::vector<DivPath> paths;      ///< flat arena of all frames' pending paths

  std::uint32_t path_active() const { return active_mask & ~exited_mask; }
};

/// Resident CTA state.
struct CtaExec {
  bool resident = false;
  std::uint32_t ctaid_x = 0, ctaid_y = 0, ctaid_z = 0;
  std::uint32_t rf_base = 0, rf_count = 0;
  std::uint32_t smem_base = 0, smem_bytes = 0;
  std::uint32_t num_warps = 0;
  std::uint32_t warps_done = 0;
  std::uint32_t barrier_arrived = 0;
  std::uint32_t first_warp_slot = 0;
};

class ForkObserver;

/// Everything an SM needs about the launch in flight; owned by the Gpu.
struct LaunchContext {
  const isa::Kernel* kernel = nullptr;
  Dim3 grid, block;
  std::vector<std::uint32_t> params;
  std::uint32_t threads_per_cta = 0;
  std::uint32_t warps_per_cta = 0;
  std::uint32_t regs_per_thread = 0;
  SimStats* stats = nullptr;
  FaultHook* hook = nullptr;
  ForkObserver* observer = nullptr;  ///< batched execution pause points
  std::uint64_t next_cta = 0;        ///< CTA distribution progress (resumable)
  TrapKind trap = TrapKind::None;  ///< first trap, aborts the launch
};

class Sm {
 public:
  Sm(const GpuConfig& config, std::uint32_t sm_id, MemLevel& l2, GlobalMemory& gmem);

  /// Attempts to place CTA (x,y,z) on this SM; false when out of resources.
  bool try_launch_cta(LaunchContext& ctx, std::uint32_t x, std::uint32_t y, std::uint32_t z);

  /// True while any CTA is resident.
  bool busy() const noexcept { return active_ctas_ > 0; }
  std::uint32_t active_cta_count() const noexcept { return active_ctas_; }
  std::uint32_t resident_warp_count() const noexcept { return resident_warps_; }
  std::uint32_t free_cta_slots() const noexcept;

  /// One cycle: issue at most one warp instruction. Sets ctx.trap on error.
  void step(LaunchContext& ctx, std::uint64_t now);

  /// Earliest cycle at which this SM can make progress (for fast-forward);
  /// UINT64_MAX when nothing is runnable.
  std::uint64_t next_ready_cycle() const noexcept;

  /// End-of-launch cleanup (flush L1s; CTAs must have drained).
  void end_launch();

  /// Forcibly retires all resident CTAs and frees their resources; used when
  /// a launch aborts on a trap or watchdog.
  void abort_launch();

  /// Full SM state: backing arrays, allocation maps, warp/CTA slots and the
  /// round-robin pointer. Valid both at launch boundaries (no resident CTAs)
  /// and mid-launch, which is what batched execution forks from.
  struct Snapshot {
    RegFile::Snapshot rf;
    SharedMem::Snapshot smem;
    Cache::Snapshot l1d, l1t;
    std::uint32_t rr_next = 0;
    std::vector<WarpExec> warps;
    std::vector<CtaExec> ctas;
    std::uint32_t active_ctas = 0;
    std::uint32_t resident_warps = 0;
  };
  Snapshot snapshot() const;
  /// Restores a snapshot, including warp/CTA occupancy.
  void restore(const Snapshot& snap);
  /// Back to the freshly-constructed state.
  void reset();

  // --- Fault-injection surface ---
  RegFile& regfile() noexcept { return rf_; }
  const RegFile& regfile() const noexcept { return rf_; }
  SharedMem& shared_mem() noexcept { return smem_; }
  Cache& l1d() noexcept { return l1d_; }
  Cache& l1t() noexcept { return l1t_; }
  /// Physical RF cell holding (warp, lane, reg); used by the software-level
  /// injector to flip destination-register bits.
  std::uint32_t rf_cell_index(const WarpExec& warp, std::uint32_t lane,
                              std::uint8_t reg) const;
  const WarpExec& warp(std::uint32_t slot) const { return warps_[slot]; }
  WarpExec& warp(std::uint32_t slot) { return warps_[slot]; }
  std::uint32_t sm_id() const noexcept { return sm_id_; }

 private:
  const isa::Kernel& kernel(const LaunchContext& ctx) const { return *ctx.kernel; }
  void execute_warp(LaunchContext& ctx, std::uint32_t slot, std::uint64_t now);
  std::uint32_t eval_operand(const LaunchContext& ctx, const WarpExec& warp,
                             const isa::Operand& op, std::uint32_t lane, bool& trap);
  std::uint32_t read_reg(const WarpExec& warp, std::uint32_t lane, std::uint8_t reg) const;
  void write_reg(const WarpExec& warp, std::uint32_t lane, std::uint8_t reg,
                 std::uint32_t value);
  std::uint32_t special_value(const LaunchContext& ctx, const WarpExec& warp,
                              std::uint32_t lane, isa::SpecialReg sr) const;
  /// Handles a drained path (SYNC or full exit): switches to a pending path
  /// or reconverges/pops. Returns false when the warp is done.
  bool resolve_path(WarpExec& warp, bool via_sync);
  void finish_warp(LaunchContext& ctx, std::uint32_t slot);
  void release_barrier_if_ready(CtaExec& cta, std::uint64_t now);
  /// Memory instruction execution; returns latency-completion cycle.
  std::uint64_t exec_global(LaunchContext& ctx, WarpExec& warp, const isa::Instr& ins,
                            std::uint32_t exec_mask, std::uint64_t now);
  std::uint64_t exec_shared(LaunchContext& ctx, WarpExec& warp, const isa::Instr& ins,
                            std::uint32_t exec_mask, std::uint64_t now);
  std::uint64_t exec_atomic(LaunchContext& ctx, WarpExec& warp, const isa::Instr& ins,
                            std::uint32_t exec_mask, std::uint64_t now);

  const GpuConfig& config_;
  std::uint32_t sm_id_;
  MemLevel& l2_;
  GlobalMemory& gmem_;
  RegFile rf_;
  SharedMem smem_;
  Cache l1d_;
  Cache l1t_;
  /// Keeps warp_gate_[slot] in sync with the warp's schedulability: its
  /// ready_cycle while runnable, ~0 while parked (non-resident, done, or at
  /// a barrier). Call after any mutation of those fields.
  void sync_gate(std::uint32_t slot) noexcept {
    const WarpExec& w = warps_[slot];
    warp_gate_[slot] = (w.resident && !w.done && !w.at_barrier)
                           ? w.ready_cycle
                           : ~std::uint64_t{0};
  }

  std::vector<WarpExec> warps_;
  std::vector<CtaExec> ctas_;
  /// Structure-of-arrays mirror of the per-warp schedulability test: one
  /// flat u64 per slot so step()'s scan and next_ready_cycle()'s min-reduce
  /// touch a dense array instead of striding through WarpExec.
  std::vector<std::uint64_t> warp_gate_;
  std::uint32_t active_ctas_ = 0;
  std::uint32_t resident_warps_ = 0;
  std::uint32_t rr_next_ = 0;
};

}  // namespace gras::sim
