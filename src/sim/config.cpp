#include "src/sim/config.h"

#include <stdexcept>

namespace gras::sim {

GpuConfig make_config(const std::string& name) {
  if (name == "gv100-scaled") {
    return GpuConfig{};  // defaults above are the scaled preset
  }
  if (name == "gv100") {
    // Faithful Volta GV100 per-structure sizes. We still instantiate a small
    // SM count (simulating 80 SMs serves no purpose for kernels this size);
    // per-SM sizes are the real ones, so structure ratios match the paper.
    GpuConfig c;
    c.name = "gv100";
    c.num_sms = 4;
    c.max_warps_per_sm = 64;
    c.max_ctas_per_sm = 32;
    c.regs_per_sm = 64 * 1024;            // 256 KiB register file per SM
    c.smem_bytes_per_sm = 96 * 1024;      // 96 KiB shared memory per SM
    c.l1d = CacheConfig{64, 4, 128, 28, 16, false};   // 32 KiB L1D
    c.l1t = CacheConfig{24, 4, 128, 30, 16, false};   // 12 KiB L1T
    c.l2 = CacheConfig{1024, 12, 128, 190, 64, true}; // 1.5 MiB L2 slice
    c.global_mem_bytes = 64ull * 1024 * 1024;
    return c;
  }
  throw std::invalid_argument("unknown GPU config '" + name + "'");
}

}  // namespace gras::sim
