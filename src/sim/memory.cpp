#include "src/sim/memory.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace gras::sim {

GlobalMemory::GlobalMemory(std::uint64_t bytes)
    : data_(bytes, 0), dirty_((bytes + kPageBytes - 1) >> kPageShift, 0) {}

std::uint32_t GlobalMemory::allocate(std::uint64_t bytes) {
  const std::uint64_t aligned = (top_ + 15) & ~std::uint64_t{15};
  if (aligned + bytes > data_.size()) throw std::bad_alloc{};
  top_ = aligned + bytes;
  return static_cast<std::uint32_t>(aligned);
}

void GlobalMemory::reset() {
  // Only the written prefix can be non-zero; skip the untouched tail.
  std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(written_top_), 0);
  top_ = kBase;
  written_top_ = 0;
}

GlobalMemory::Snapshot GlobalMemory::snapshot() const {
  Snapshot snap;
  snap.top = top_;
  // Golden runs never write above the allocation top, but capture up to the
  // written high-water mark anyway so the image is complete by construction.
  const std::uint64_t extent = std::max(top_, written_top_);
  snap.data.assign(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(extent));
  return snap;
}

void GlobalMemory::restore(const Snapshot& snap) {
  std::copy(snap.data.begin(), snap.data.end(), data_.begin());
  if (written_top_ > snap.data.size()) {
    std::fill(data_.begin() + static_cast<std::ptrdiff_t>(snap.data.size()),
              data_.begin() + static_cast<std::ptrdiff_t>(written_top_), 0);
  }
  top_ = snap.top;
  written_top_ = snap.data.size();
}

bool GlobalMemory::in_bounds(std::uint64_t addr, std::uint64_t size) const noexcept {
  return addr >= kBase && addr + size <= top_ && addr + size >= addr;
}

void GlobalMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) noexcept {
  if (addr >= data_.size()) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), data_.size() - addr);
  std::memcpy(out.data(), data_.data() + addr, n);
  if (n < out.size()) std::memset(out.data() + n, 0, out.size() - n);
}

void GlobalMemory::write(std::uint64_t addr, std::span<const std::uint8_t> in) noexcept {
  if (addr >= data_.size()) return;
  const std::uint64_t n = std::min<std::uint64_t>(in.size(), data_.size() - addr);
  std::memcpy(data_.data() + addr, in.data(), n);
  written_top_ = std::max(written_top_, addr + n);
  if (n != 0) {
    for (std::uint64_t p = addr >> kPageShift; p <= (addr + n - 1) >> kPageShift; ++p) {
      dirty_[p] = 1;
    }
  }
}

void GlobalMemory::clear_dirty() noexcept {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

std::vector<GlobalMemory::Page> GlobalMemory::collect_dirty_pages() const {
  std::vector<Page> pages;
  for (std::uint64_t p = 0; p < dirty_.size(); ++p) {
    if (dirty_[p] == 0) continue;
    const std::uint64_t base = p << kPageShift;
    const std::uint64_t n = std::min(kPageBytes, data_.size() - base);
    pages.push_back({p, {data_.begin() + static_cast<std::ptrdiff_t>(base),
                         data_.begin() + static_cast<std::ptrdiff_t>(base + n)}});
  }
  return pages;
}

}  // namespace gras::sim
