#include "src/sim/memory.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace gras::sim {

GlobalMemory::GlobalMemory(std::uint64_t bytes) : data_(bytes, 0) {}

std::uint32_t GlobalMemory::allocate(std::uint64_t bytes) {
  const std::uint64_t aligned = (top_ + 15) & ~std::uint64_t{15};
  if (aligned + bytes > data_.size()) throw std::bad_alloc{};
  top_ = aligned + bytes;
  return static_cast<std::uint32_t>(aligned);
}

void GlobalMemory::reset() {
  std::fill(data_.begin(), data_.end(), 0);
  top_ = kBase;
}

bool GlobalMemory::in_bounds(std::uint64_t addr, std::uint64_t size) const noexcept {
  return addr >= kBase && addr + size <= top_ && addr + size >= addr;
}

void GlobalMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) noexcept {
  if (addr >= data_.size()) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), data_.size() - addr);
  std::memcpy(out.data(), data_.data() + addr, n);
  if (n < out.size()) std::memset(out.data() + n, 0, out.size() - n);
}

void GlobalMemory::write(std::uint64_t addr, std::span<const std::uint8_t> in) noexcept {
  if (addr >= data_.size()) return;
  const std::uint64_t n = std::min<std::uint64_t>(in.size(), data_.size() - addr);
  std::memcpy(data_.data() + addr, in.data(), n);
}

}  // namespace gras::sim
