// The GPU device: CTA scheduler, launch loop, host memcpy, launch records.
//
// The global cycle counter runs continuously across launches, so the golden
// run's per-launch [start, end) cycle windows define the sampling space for
// microarchitecture-level fault injection ("inject at a uniformly random
// cycle of the target kernel", paper §II-B).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/memory.h"
#include "src/sim/sm.h"
#include "src/sim/trap.h"

namespace gras::sim {

/// Golden-run bookkeeping for one kernel launch.
struct LaunchRecord {
  std::string kernel;
  Dim3 grid, block;
  std::uint64_t start_cycle = 0;   ///< global cycle at launch start
  std::uint64_t end_cycle = 0;     ///< global cycle just after completion
  std::uint64_t threads = 0;
  std::uint32_t regs_per_thread = 0;
  std::uint32_t smem_per_cta = 0;
  /// Most CTAs simultaneously resident across all SMs during this launch —
  /// the device's actual footprint, as opposed to grid.count() (the total
  /// work). Derating factors must weight by this, not the grid size, or any
  /// grid larger than the device saturates them at 1. 0 in hand-assembled
  /// records (metrics fall back to an occupancy bound).
  std::uint32_t peak_resident_ctas = 0;
  /// Cumulative GPR-writing thread-instruction counts over the whole app
  /// run, [gp_begin, gp_end): the SVF sampling space for this launch.
  std::uint64_t gp_begin = 0, gp_end = 0;
  /// Same for load instructions (SVF-LD sampling space).
  std::uint64_t ld_begin = 0, ld_end = 0;
  SimStats stats;                  ///< this launch only
  LaunchResult result;

  std::uint64_t cycles() const { return end_cycle - start_cycle; }
};

/// Whole-device state at a launch boundary: global memory, L2, per-SM
/// backing arrays and allocation maps, the global cycle counter and the
/// dynamic-instruction counters. Restoring one (plus the golden launch
/// records preceding it) is bit-equivalent to re-simulating every launch
/// before that boundary, which is what lets fault-injection samples
/// fast-forward over the fault-free prefix (DESIGN.md §7).
struct GpuSnapshot {
  std::uint64_t cycle = 0;
  std::uint64_t gp_total = 0;
  std::uint64_t ld_total = 0;
  std::size_t launch_count = 0;  ///< launches completed before this boundary
  GlobalMemory::Snapshot gmem;
  Cache::Snapshot l2;
  std::vector<Sm::Snapshot> sms;
};

/// Snapshots recorded during a golden run, keyed by the launch index each
/// one precedes. One snapshot per distinct kernel name (its first launch):
/// those are the only resume points campaigns ever use, which keeps the
/// store compact for apps with many iterative launches.
class CheckpointStore {
 public:
  bool has_kernel(const std::string& kernel) const {
    return kernels_.contains(kernel);
  }
  void add(const std::string& kernel, std::size_t launch_index, GpuSnapshot snapshot) {
    kernels_.insert(kernel);
    by_index_.emplace(launch_index, std::move(snapshot));
  }
  /// Snapshot preceding launch `launch_index`, or nullptr if none recorded.
  const GpuSnapshot* at(std::size_t launch_index) const {
    const auto it = by_index_.find(launch_index);
    return it == by_index_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return by_index_.size(); }

 private:
  std::map<std::size_t, GpuSnapshot> by_index_;
  std::unordered_set<std::string> kernels_;
};

class Gpu {
 public:
  explicit Gpu(GpuConfig config);

  // --- Host API (CUDA-driver flavoured) ---
  std::uint32_t malloc(std::uint64_t bytes);
  void memcpy_h2d(std::uint32_t dst, const void* src, std::uint64_t bytes);
  void memcpy_d2h(void* dst, std::uint32_t src, std::uint64_t bytes);
  /// Fills a device range with a repeated 32-bit pattern.
  void memset_d32(std::uint32_t dst, std::uint32_t value, std::uint64_t words);

  /// Launches a kernel and runs it to completion (or trap/watchdog).
  /// Throws std::invalid_argument if a single CTA cannot fit on an SM.
  LaunchResult launch(const isa::Kernel& kernel, Dim3 grid, Dim3 block,
                      std::vector<std::uint32_t> params);

  /// Per-launch cycle budgets (indexed by launch order); a launch exceeding
  /// its budget aborts with TrapKind::Watchdog. Campaigns set these to 10x
  /// the golden run's per-launch cycles. `overflow` is the budget for
  /// launches beyond the vector (a faulty run may launch more kernels than
  /// the golden run did, e.g. extra BFS iterations); 0 keeps the config
  /// default.
  void set_launch_budgets(std::vector<std::uint64_t> budgets, std::uint64_t overflow = 0);
  void set_fault_hook(FaultHook* hook) { hook_ = hook; }

  // --- Launch-boundary checkpointing ---
  /// While set, launch() records a snapshot of the pre-launch state into
  /// `store` for the first launch of each distinct kernel. Golden runs only.
  void set_checkpoint_sink(CheckpointStore* store) { ckpt_sink_ = store; }
  /// Captures full device state. Only meaningful at a launch boundary (no
  /// CTAs in flight).
  GpuSnapshot snapshot() const;
  /// Restores a snapshot captured on an identically-configured Gpu; the
  /// launch-record prefix is copied from `golden_launches`. Clears the fault
  /// hook (samples re-attach their own).
  void restore(const GpuSnapshot& snap, std::span<const LaunchRecord> golden_launches);
  /// Back to the freshly-constructed state without reallocating the backing
  /// arrays — campaigns reuse one Gpu per worker thread across samples.
  void reset();

  const std::vector<LaunchRecord>& launches() const noexcept { return launches_; }
  std::uint64_t cycle() const noexcept { return cycle_; }
  const GpuConfig& config() const noexcept { return config_; }

  // --- Fault-injection surface ---
  Sm& sm(std::uint32_t i) { return *sms_[i]; }
  const Sm& sm(std::uint32_t i) const { return *sms_[i]; }
  std::uint32_t num_sms() const noexcept { return config_.num_sms; }
  Cache& l2() noexcept { return l2_; }
  GlobalMemory& gmem() noexcept { return gmem_; }

 private:
  GpuConfig config_;
  GlobalMemory gmem_;
  Dram dram_;
  Cache l2_;
  std::vector<std::unique_ptr<Sm>> sms_;
  std::vector<LaunchRecord> launches_;
  std::vector<std::uint64_t> budgets_;
  std::uint64_t overflow_budget_ = 0;
  FaultHook* hook_ = nullptr;
  CheckpointStore* ckpt_sink_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t gp_total_ = 0;  ///< cumulative GPR-writing thread instrs
  std::uint64_t ld_total_ = 0;
};

}  // namespace gras::sim
