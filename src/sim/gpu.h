// The GPU device: CTA scheduler, launch loop, host memcpy, launch records.
//
// The global cycle counter runs continuously across launches, so the golden
// run's per-launch [start, end) cycle windows define the sampling space for
// microarchitecture-level fault injection ("inject at a uniformly random
// cycle of the target kernel", paper §II-B).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/memory.h"
#include "src/sim/sm.h"
#include "src/sim/trap.h"

namespace gras::sim {

/// Golden-run bookkeeping for one kernel launch.
struct LaunchRecord {
  std::string kernel;
  Dim3 grid, block;
  std::uint64_t start_cycle = 0;   ///< global cycle at launch start
  std::uint64_t end_cycle = 0;     ///< global cycle just after completion
  std::uint64_t threads = 0;
  std::uint32_t regs_per_thread = 0;
  std::uint32_t smem_per_cta = 0;
  /// Cumulative GPR-writing thread-instruction counts over the whole app
  /// run, [gp_begin, gp_end): the SVF sampling space for this launch.
  std::uint64_t gp_begin = 0, gp_end = 0;
  /// Same for load instructions (SVF-LD sampling space).
  std::uint64_t ld_begin = 0, ld_end = 0;
  SimStats stats;                  ///< this launch only
  LaunchResult result;

  std::uint64_t cycles() const { return end_cycle - start_cycle; }
};

class Gpu {
 public:
  explicit Gpu(GpuConfig config);

  // --- Host API (CUDA-driver flavoured) ---
  std::uint32_t malloc(std::uint64_t bytes);
  void memcpy_h2d(std::uint32_t dst, const void* src, std::uint64_t bytes);
  void memcpy_d2h(void* dst, std::uint32_t src, std::uint64_t bytes);
  /// Fills a device range with a repeated 32-bit pattern.
  void memset_d32(std::uint32_t dst, std::uint32_t value, std::uint64_t words);

  /// Launches a kernel and runs it to completion (or trap/watchdog).
  /// Throws std::invalid_argument if a single CTA cannot fit on an SM.
  LaunchResult launch(const isa::Kernel& kernel, Dim3 grid, Dim3 block,
                      std::vector<std::uint32_t> params);

  /// Per-launch cycle budgets (indexed by launch order); a launch exceeding
  /// its budget aborts with TrapKind::Watchdog. Campaigns set these to 10x
  /// the golden run's per-launch cycles. `overflow` is the budget for
  /// launches beyond the vector (a faulty run may launch more kernels than
  /// the golden run did, e.g. extra BFS iterations); 0 keeps the config
  /// default.
  void set_launch_budgets(std::vector<std::uint64_t> budgets, std::uint64_t overflow = 0);
  void set_fault_hook(FaultHook* hook) { hook_ = hook; }

  const std::vector<LaunchRecord>& launches() const noexcept { return launches_; }
  std::uint64_t cycle() const noexcept { return cycle_; }
  const GpuConfig& config() const noexcept { return config_; }

  // --- Fault-injection surface ---
  Sm& sm(std::uint32_t i) { return *sms_[i]; }
  const Sm& sm(std::uint32_t i) const { return *sms_[i]; }
  std::uint32_t num_sms() const noexcept { return config_.num_sms; }
  Cache& l2() noexcept { return l2_; }
  GlobalMemory& gmem() noexcept { return gmem_; }

 private:
  GpuConfig config_;
  GlobalMemory gmem_;
  Dram dram_;
  Cache l2_;
  std::vector<std::unique_ptr<Sm>> sms_;
  std::vector<LaunchRecord> launches_;
  std::vector<std::uint64_t> budgets_;
  std::uint64_t overflow_budget_ = 0;
  FaultHook* hook_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t gp_total_ = 0;  ///< cumulative GPR-writing thread instrs
  std::uint64_t ld_total_ = 0;
};

}  // namespace gras::sim
