// The GPU device: CTA scheduler, launch loop, host memcpy, launch records.
//
// The global cycle counter runs continuously across launches, so the golden
// run's per-launch [start, end) cycle windows define the sampling space for
// microarchitecture-level fault injection ("inject at a uniformly random
// cycle of the target kernel", paper §II-B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/isa/isa.h"
#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/memory.h"
#include "src/sim/sm.h"
#include "src/sim/trap.h"

namespace gras::sim {

/// Golden-run bookkeeping for one kernel launch.
struct LaunchRecord {
  std::string kernel;
  Dim3 grid, block;
  std::uint64_t start_cycle = 0;   ///< global cycle at launch start
  std::uint64_t end_cycle = 0;     ///< global cycle just after completion
  std::uint64_t threads = 0;
  std::uint32_t regs_per_thread = 0;
  std::uint32_t smem_per_cta = 0;
  /// Most CTAs simultaneously resident across all SMs during this launch —
  /// the device's actual footprint, as opposed to grid.count() (the total
  /// work). Derating factors must weight by this, not the grid size, or any
  /// grid larger than the device saturates them at 1. 0 in hand-assembled
  /// records (metrics fall back to an occupancy bound).
  std::uint32_t peak_resident_ctas = 0;
  /// Cumulative GPR-writing thread-instruction counts over the whole app
  /// run, [gp_begin, gp_end): the SVF sampling space for this launch.
  std::uint64_t gp_begin = 0, gp_end = 0;
  /// Same for load instructions (SVF-LD sampling space).
  std::uint64_t ld_begin = 0, ld_end = 0;
  SimStats stats;                  ///< this launch only
  LaunchResult result;

  std::uint64_t cycles() const { return end_cycle - start_cycle; }
};

/// Whole-device state at a launch boundary: global memory, L2, per-SM
/// backing arrays and allocation maps, the global cycle counter and the
/// dynamic-instruction counters. Restoring one (plus the golden launch
/// records preceding it) is bit-equivalent to re-simulating every launch
/// before that boundary, which is what lets fault-injection samples
/// fast-forward over the fault-free prefix (DESIGN.md §7).
struct GpuSnapshot {
  std::uint64_t cycle = 0;
  std::uint64_t gp_total = 0;
  std::uint64_t ld_total = 0;
  std::size_t launch_count = 0;  ///< launches completed before this boundary
  GlobalMemory::Snapshot gmem;
  Cache::Snapshot l2;
  std::vector<Sm::Snapshot> sms;
};

/// Snapshots recorded during a golden run, keyed by the launch index each
/// one precedes. One snapshot per distinct kernel name (its first launch):
/// those are the only resume points campaigns ever use, which keeps the
/// store compact for apps with many iterative launches.
class CheckpointStore {
 public:
  bool has_kernel(const std::string& kernel) const {
    return kernels_.contains(kernel);
  }
  void add(const std::string& kernel, std::size_t launch_index, GpuSnapshot snapshot) {
    kernels_.insert(kernel);
    by_index_.emplace(launch_index, std::move(snapshot));
  }
  /// Snapshot preceding launch `launch_index`, or nullptr if none recorded.
  const GpuSnapshot* at(std::size_t launch_index) const {
    const auto it = by_index_.find(launch_index);
    return it == by_index_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return by_index_.size(); }

 private:
  std::map<std::size_t, GpuSnapshot> by_index_;
  std::unordered_set<std::string> kernels_;
};

/// Device state a golden run carries across one launch boundary that the
/// functional backend does not model. The functional backend executes prefix
/// launches against raw global memory with an empty (flushed) L2 and never
/// touches the SMs, so handing execution back to the timing backend requires
/// re-installing (a) the L2 with exactly the lines (and cumulative stats and
/// LRU clock) the timing path would have had at that boundary, and (b) each
/// SM's boundary state — chiefly the *residual* contents of the physical
/// register file and shared memory left by drained CTAs. Residuals are part
/// of the fault surface (a fault can expose a stale cell through a corrupted
/// index or a read-before-write), so an injected suffix only reproduces the
/// pure-timing run bit for bit if they match too. `mem_hash` fingerprints
/// the architectural memory image (FNV-1a over [GlobalMemory::kBase,
/// allocated_top) as seen through the L2) so handoffs can optionally verify
/// the functional prefix computed the same bytes.
struct BoundaryResidue {
  Cache::Snapshot l2;
  std::vector<Sm::Snapshot> sms;
  std::uint64_t mem_hash = 0;
};

/// Per-launch-boundary residues recorded during a golden run, keyed by the
/// launch index each one precedes. Unlike CheckpointStore this records
/// *every* boundary (a residue is the L2 footprint plus the per-SM backing
/// arrays — a couple of MB, and even the most launch-happy workload has a
/// few dozen launches), because the functional prefix may hand off at any
/// launch.
class ResidueStore {
 public:
  void add(std::size_t launch_index, BoundaryResidue residue) {
    by_index_.insert_or_assign(launch_index, std::move(residue));
  }
  /// Residue preceding launch `launch_index`, or nullptr if none recorded.
  const BoundaryResidue* at(std::size_t launch_index) const {
    const auto it = by_index_.find(launch_index);
    return it == by_index_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return by_index_.size(); }

 private:
  std::map<std::size_t, BoundaryResidue> by_index_;
};

/// Tells the Gpu to run the next launches (up to, not including,
/// `handoff_launch`) on the functional backend, adopting the golden run's
/// launch records wholesale, then transfer state back to the timing backend.
/// Set per sample, after restore(); see DESIGN.md §11 for the invariants.
struct FunctionalPlan {
  /// First launch index that runs on the timing backend again.
  std::size_t handoff_launch = 0;
  /// Golden launch records for at least [current launch, handoff_launch).
  std::span<const LaunchRecord> golden;
  /// Golden L2 + per-SM state at the handoff boundary (required).
  const BoundaryResidue* residue = nullptr;
  /// Verify the functional prefix's memory image against residue->mem_hash
  /// at the handoff; throws std::logic_error on mismatch.
  bool validate = false;
  /// Optional: receives a full device snapshot taken at the handoff, after
  /// the golden residue is installed — the deterministic end state of the
  /// fault-free functional prefix. Campaigns memoize it so later samples
  /// handing off at the same boundary restore it directly instead of
  /// re-interpreting the prefix (campaign::PrefixCache).
  std::function<void(GpuSnapshot)> on_handoff;
};

/// Cumulative cache-stat baselines captured at launch start; the launch
/// record's per-launch deltas are computed against these at completion, so a
/// paused launch must carry them across the suspension.
struct CacheBaselines {
  CacheStats l1d, l1t, l2;
};

/// Everything needed to resume a launch suspended mid-flight by a
/// ForkObserver (TrapKind::Paused): the in-progress record and stats, CTA
/// distribution progress, the original launch parameters and the absolute
/// watchdog deadline. Device state (SMs, caches, memory, cycle counter) is
/// left in place on the Gpu itself — or captured separately in a LaunchFork.
struct LaunchProgress {
  const isa::Kernel* kernel = nullptr;
  std::vector<std::uint32_t> params;
  std::uint64_t next_cta = 0;
  LaunchRecord record;
  SimStats stats;
  CacheBaselines baselines;
  std::uint64_t deadline = 0;
};

/// Copy-on-write capture of a paused launch: the first fork of a batch
/// stores a full device snapshot as the shared base; later forks share that
/// base and carry only the global-memory pages written since, plus eager L2
/// and per-SM snapshots (those mutate densely between triggers, so deltas
/// would not pay). restore_fork() reassembles the exact paused device state.
struct LaunchFork {
  LaunchProgress progress;
  std::shared_ptr<const GpuSnapshot> base;
  std::vector<GlobalMemory::Page> gmem_pages;  ///< empty for the base fork
  std::optional<Cache::Snapshot> l2;           ///< nullopt for the base fork
  std::optional<std::vector<Sm::Snapshot>> sms;
  std::uint64_t cycle = 0;
  std::uint64_t gp_total = 0;
  std::uint64_t ld_total = 0;
  std::uint64_t dram_read = 0;   ///< mid-launch DRAM traffic so far
  std::uint64_t dram_written = 0;
};

class Gpu {
 public:
  explicit Gpu(GpuConfig config);

  // --- Host API (CUDA-driver flavoured) ---
  std::uint32_t malloc(std::uint64_t bytes);
  void memcpy_h2d(std::uint32_t dst, const void* src, std::uint64_t bytes);
  void memcpy_d2h(void* dst, std::uint32_t src, std::uint64_t bytes);
  /// Fills a device range with a repeated 32-bit pattern.
  void memset_d32(std::uint32_t dst, std::uint32_t value, std::uint64_t words);

  /// Launches a kernel and runs it to completion (or trap/watchdog).
  /// Throws std::invalid_argument if a single CTA cannot fit on an SM.
  LaunchResult launch(const isa::Kernel& kernel, Dim3 grid, Dim3 block,
                      std::vector<std::uint32_t> params);

  /// Per-launch cycle budgets (indexed by launch order); a launch exceeding
  /// its budget aborts with TrapKind::Watchdog. Campaigns set these to 10x
  /// the golden run's per-launch cycles. `overflow` is the budget for
  /// launches beyond the vector (a faulty run may launch more kernels than
  /// the golden run did, e.g. extra BFS iterations); 0 keeps the config
  /// default.
  void set_launch_budgets(std::vector<std::uint64_t> budgets, std::uint64_t overflow = 0);
  void set_fault_hook(FaultHook* hook) { hook_ = hook; }

  // --- Batched execution (DESIGN.md §12) ---
  /// Arms `observer` for the launch with ordinal `launch_index`: that launch
  /// runs with the observer wired into the timing loop, which can suspend it
  /// (TrapKind::Paused) at fork triggers. Cleared by restore()/reset().
  void set_fork_observer(ForkObserver* observer, std::size_t launch_index) {
    fork_observer_ = observer;
    fork_observer_launch_ = launch_index;
  }
  /// State of the launch currently suspended by a ForkObserver, if any.
  const std::optional<LaunchProgress>& paused_launch() const noexcept {
    return paused_;
  }
  /// Continues a suspended launch from `progress`; device state must already
  /// be the paused state (either untouched since the pause, or re-installed
  /// via restore_fork). May pause again if the observer asks.
  LaunchResult resume_launch(const LaunchProgress& progress);
  /// Re-installs the paused device state captured in `fork` (shared base
  /// snapshot + copy-on-write deltas); pair with resume_launch(fork.progress).
  void restore_fork(const LaunchFork& fork, std::span<const LaunchRecord> golden_launches);

  // --- Launch-boundary checkpointing ---
  /// While set, launch() records a snapshot of the pre-launch state into
  /// `store` for the first launch of each distinct kernel. Golden runs only.
  void set_checkpoint_sink(CheckpointStore* store) { ckpt_sink_ = store; }
  /// While set, launch() records the pre-launch boundary residue (L2, per-SM
  /// hash) into `store` at every launch boundary. Golden runs only.
  void set_residue_sink(ResidueStore* store) { residue_sink_ = store; }

  // --- Functional fast-forward (DESIGN.md §11) ---
  /// Activates a functional plan for this sample: flushes the L2 into memory
  /// (so the functional backend reads/writes architecturally current bytes)
  /// and routes subsequent launches below plan.handoff_launch to the
  /// functional backend. The first launch at/after the handoff restores the
  /// golden boundary residue and continues on the timing backend. Throws
  /// std::logic_error if the plan has no residue or the handoff is not ahead
  /// of the current launch index. Cleared by restore()/reset().
  void set_functional_plan(FunctionalPlan plan);
  bool functional_plan_active() const noexcept { return func_plan_.has_value(); }
  /// FNV-1a hash of the architectural memory image (through the L2), the
  /// same fingerprint stored in BoundaryResidue::mem_hash.
  std::uint64_t arch_mem_hash();
  /// Captures full device state. Only meaningful at a launch boundary (no
  /// CTAs in flight).
  GpuSnapshot snapshot() const;
  /// Restores a snapshot captured on an identically-configured Gpu; the
  /// launch-record prefix is copied from `golden_launches`. Clears the fault
  /// hook (samples re-attach their own).
  void restore(const GpuSnapshot& snap, std::span<const LaunchRecord> golden_launches);
  /// Back to the freshly-constructed state without reallocating the backing
  /// arrays — campaigns reuse one Gpu per worker thread across samples.
  void reset();

  const std::vector<LaunchRecord>& launches() const noexcept { return launches_; }
  std::uint64_t cycle() const noexcept { return cycle_; }
  const GpuConfig& config() const noexcept { return config_; }

  // --- Fault-injection surface ---
  Sm& sm(std::uint32_t i) { return *sms_[i]; }
  const Sm& sm(std::uint32_t i) const { return *sms_[i]; }
  std::uint32_t num_sms() const noexcept { return config_.num_sms; }
  Cache& l2() noexcept { return l2_; }
  GlobalMemory& gmem() noexcept { return gmem_; }
  Dram& dram() noexcept { return dram_; }
  std::uint64_t gp_total() const noexcept { return gp_total_; }
  std::uint64_t ld_total() const noexcept { return ld_total_; }

 private:
  friend class TimingBackend;

  /// Runs one prefix launch on the functional backend and adopts its golden
  /// record (cycles, stats, counters) wholesale.
  LaunchResult launch_functional(LaunchContext& ctx);
  /// Transfers state back to the timing backend: verifies the memory image
  /// (when the plan asks), restores the golden boundary residue and retires the
  /// plan. Called at the first launch at/after the handoff boundary.
  void complete_handoff();
  /// Saves a ForkObserver suspension into paused_ and returns the Paused
  /// result; the device keeps the mid-launch state untouched.
  LaunchResult pause_launch(LaunchContext& ctx, LaunchRecord& record, SimStats& stats,
                            const CacheBaselines& baselines, std::uint64_t deadline);
  /// The shared completion tail of launch()/resume_launch(): abort/flush,
  /// per-launch stat deltas, telemetry and the record push.
  LaunchResult finish_timing_launch(LaunchContext& ctx, LaunchRecord& record,
                                    SimStats& stats, const CacheBaselines& baselines);

  GpuConfig config_;
  GlobalMemory gmem_;
  Dram dram_;
  Cache l2_;
  std::vector<std::unique_ptr<Sm>> sms_;
  std::vector<LaunchRecord> launches_;
  std::vector<std::uint64_t> budgets_;
  std::uint64_t overflow_budget_ = 0;
  FaultHook* hook_ = nullptr;
  CheckpointStore* ckpt_sink_ = nullptr;
  ResidueStore* residue_sink_ = nullptr;
  std::optional<FunctionalPlan> func_plan_;
  ForkObserver* fork_observer_ = nullptr;
  std::size_t fork_observer_launch_ = 0;
  std::optional<LaunchProgress> paused_;
  std::uint64_t cycle_ = 0;
  std::uint64_t gp_total_ = 0;  ///< cumulative GPR-writing thread instrs
  std::uint64_t ld_total_ = 0;
};

}  // namespace gras::sim
