// Trap and status types shared across the simulator.
//
// Traps map onto the paper's DUE (Detected Unrecoverable Error) fault-effect
// class: the execution does not complete because a catastrophic event
// disturbs it (§II-A), e.g. an illegal memory access.
#pragma once

#include <cstdint>
#include <optional>

namespace gras::sim {

enum class TrapKind : std::uint8_t {
  None = 0,
  OobGlobal,          ///< global access outside allocated memory
  MisalignedGlobal,   ///< global access not 4-byte aligned
  OobShared,          ///< shared access outside the SM's shared memory
  MisalignedShared,
  InvalidPc,          ///< control transfer outside the kernel body
  ParamOob,           ///< constant-bank read past the parameter block
  DivergenceOverflow, ///< SIMT reconvergence stack exceeded its depth bound
  Watchdog,           ///< launch exceeded its cycle budget (classified Timeout)
  HostCheck,          ///< host-side failure (e.g. TMR vote with no majority)
  Paused,             ///< launch suspended by a ForkObserver (batched prefix)
};

const char* trap_name(TrapKind k);

/// Result of one kernel launch.
struct LaunchResult {
  TrapKind trap = TrapKind::None;
  std::uint64_t cycles = 0;        ///< cycles this launch consumed
  std::uint64_t instructions = 0;  ///< warp-instructions executed
  bool ok() const { return trap == TrapKind::None; }
};

}  // namespace gras::sim
