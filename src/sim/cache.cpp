#include "src/sim/cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "src/common/bitops.h"

namespace gras::sim {

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  accesses += o.accesses;
  hits += o.hits;
  misses += o.misses;
  pending_hits += o.pending_hits;
  reservation_fails += o.reservation_fails;
  writebacks += o.writebacks;
  fills += o.fills;
  return *this;
}

// ---------------------------------------------------------------- Dram ----

Dram::Dram(GlobalMemory& memory, std::uint32_t latency)
    : memory_(memory), latency_(latency) {}

std::uint64_t Dram::read_line(std::uint64_t line_addr,
                              std::span<const std::uint32_t> offsets,
                              std::span<std::uint32_t> out, std::uint64_t now) {
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    std::uint8_t buf[4];
    memory_.read(line_addr + offsets[i], buf);
    std::memcpy(&out[i], buf, 4);
  }
  bytes_read_ += offsets.size() * 4;
  return now + latency_;
}

std::uint64_t Dram::write_line(std::uint64_t line_addr, std::span<const LineOp> ops,
                               std::uint64_t now) {
  for (const LineOp& op : ops) {
    std::uint8_t buf[4];
    std::memcpy(buf, &op.value, 4);
    memory_.write(line_addr + op.offset, buf);
  }
  bytes_written_ += ops.size() * 4;
  return now + latency_;
}

std::uint64_t Dram::fill_line(std::uint64_t line_addr, std::span<std::uint8_t> out,
                              std::uint64_t now) {
  memory_.read(line_addr, out);
  bytes_read_ += out.size();
  return now + latency_;
}

void Dram::writeback_line(std::uint64_t line_addr, std::span<const std::uint8_t> in) {
  memory_.write(line_addr, in);
  bytes_written_ += in.size();
}

std::uint64_t Dram::atomic_add(std::uint64_t addr, std::uint32_t operand,
                               std::uint32_t& old_value, std::uint64_t now) {
  std::uint8_t buf[4];
  memory_.read(addr, buf);
  std::memcpy(&old_value, buf, 4);
  const std::uint32_t updated = old_value + operand;
  std::memcpy(buf, &updated, 4);
  memory_.write(addr, buf);
  bytes_read_ += 4;
  bytes_written_ += 4;
  return now + latency_;
}

void Dram::peek(std::uint64_t addr, std::span<std::uint8_t> out) { memory_.read(addr, out); }
void Dram::poke(std::uint64_t addr, std::span<const std::uint8_t> in) { memory_.write(addr, in); }

// --------------------------------------------------------------- Cache ----

Cache::Cache(const CacheConfig& config, MemLevel& next, const char* name)
    : config_(config),
      next_(next),
      name_(name),
      tags_(std::size_t{config.sets} * config.ways, 0),
      last_use_(std::size_t{config.sets} * config.ways, 0),
      valid_(std::size_t{config.sets} * config.ways, 0),
      dirty_(std::size_t{config.sets} * config.ways, 0),
      data_(std::size_t{config.sets} * config.ways * config.line_bytes, 0) {
  // Line size must be a power of two (callers mask addresses with it); set
  // counts may be arbitrary (e.g. Volta's 24-set L1T) — indexing divides.
  if (!is_pow2(config_.line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  (void)name_;
}

std::uint32_t Cache::set_of(std::uint64_t line_addr) const noexcept {
  return static_cast<std::uint32_t>((line_addr / config_.line_bytes) % config_.sets);
}

std::uint64_t Cache::tag_of(std::uint64_t line_addr) const noexcept {
  return line_addr / config_.line_bytes / config_.sets;
}

int Cache::lookup(std::uint32_t set, std::uint64_t tag) const noexcept {
  const std::size_t base = std::size_t{set} * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (valid_[base + w] != 0 && tags_[base + w] == tag) return static_cast<int>(w);
  }
  return -1;
}

std::uint8_t* Cache::line_data(std::uint32_t set, std::uint32_t way) noexcept {
  return data_.data() + (std::size_t{set} * config_.ways + way) * config_.line_bytes;
}

void Cache::evict(std::uint32_t set, std::uint32_t way) {
  const std::size_t i = std::size_t{set} * config_.ways + way;
  if (valid_[i] != 0 && dirty_[i] != 0) {
    const std::uint64_t victim_addr =
        (tags_[i] * config_.sets + set) * config_.line_bytes;
    next_.writeback_line(victim_addr, {line_data(set, way), config_.line_bytes});
    ++stats_.writebacks;
  }
  valid_[i] = 0;
  dirty_[i] = 0;
}

std::uint64_t Cache::mshr_register(std::uint64_t line_addr, std::uint64_t ready,
                                   std::uint64_t now) {
  // Drop completed fills.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second <= now) it = pending_.erase(it);
    else ++it;
  }
  std::uint64_t delay = 0;
  if (pending_.size() >= config_.mshrs) {
    // All MSHRs busy: the access retries when the earliest fill lands.
    ++stats_.reservation_fails;
    std::uint64_t earliest = ~std::uint64_t{0};
    for (const auto& [line, r] : pending_) earliest = std::min(earliest, r);
    delay = earliest > now ? earliest - now : 1;
    // The retried access re-reserves after the earliest completion frees up.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second <= now + delay) it = pending_.erase(it);
      else ++it;
    }
  }
  pending_[line_addr] = ready + delay;
  return delay;
}

std::pair<std::uint32_t, std::uint64_t> Cache::ensure_line(std::uint64_t line_addr,
                                                           std::uint64_t now) {
  const std::uint32_t set = set_of(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  if (const int way = lookup(set, tag); way >= 0) {
    // Resident. A fill may still be in flight (pending hit).
    auto it = pending_.find(line_addr);
    std::uint64_t ready = now + config_.hit_latency;
    if (it != pending_.end() && it->second > now) {
      ++stats_.pending_hits;
      ready = it->second + config_.hit_latency;
    } else {
      ++stats_.hits;
    }
    last_use_[std::size_t{set} * config_.ways + way] = ++use_clock_;
    return {static_cast<std::uint32_t>(way), ready};
  }

  // Miss: pick LRU victim (prefer invalid ways), evict, fill.
  ++stats_.misses;
  const std::size_t base = std::size_t{set} * config_.ways;
  std::uint32_t victim = 0;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (valid_[base + w] == 0) {
      victim = w;
      break;
    }
    if (last_use_[base + w] < oldest) {
      oldest = last_use_[base + w];
      victim = w;
    }
  }
  evict(set, victim);

  std::uint8_t* dst = line_data(set, victim);
  const std::uint64_t fill_ready = next_.fill_line(line_addr, {dst, config_.line_bytes}, now);
  ++stats_.fills;
  const std::uint64_t delay = mshr_register(line_addr, fill_ready, now);

  tags_[base + victim] = tag;
  valid_[base + victim] = 1;
  dirty_[base + victim] = 0;
  last_use_[base + victim] = ++use_clock_;
  // Data traverses this level after the fill lands.
  return {victim, fill_ready + delay + config_.hit_latency};
}

std::uint64_t Cache::read_line(std::uint64_t line_addr,
                               std::span<const std::uint32_t> offsets,
                               std::span<std::uint32_t> out, std::uint64_t now) {
  ++stats_.accesses;
  auto [way, ready] = ensure_line(line_addr, now);
  const std::uint8_t* src = line_data(set_of(line_addr), way);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    std::memcpy(&out[i], src + offsets[i], 4);
  }
  return ready;
}

std::uint64_t Cache::write_line(std::uint64_t line_addr, std::span<const LineOp> ops,
                                std::uint64_t now) {
  ++stats_.accesses;
  const std::uint32_t set = set_of(line_addr);
  const std::uint64_t tag = tag_of(line_addr);

  if (config_.write_back) {
    // Write-allocate: bring the line in, update it, mark dirty.
    auto [way, ready] = ensure_line(line_addr, now);
    std::uint8_t* dst = line_data(set, way);
    for (const LineOp& op : ops) std::memcpy(dst + op.offset, &op.value, 4);
    dirty_[std::size_t{set} * config_.ways + way] = 1;
    return ready;
  }

  // Write-through, no write-allocate: update the line when resident, always
  // forward to the next level. Stores do not stall the warp beyond the hit
  // latency (fire and forget).
  if (const int way = lookup(set, tag); way >= 0) {
    ++stats_.hits;
    std::uint8_t* dst = line_data(set, static_cast<std::uint32_t>(way));
    for (const LineOp& op : ops) std::memcpy(dst + op.offset, &op.value, 4);
    last_use_[std::size_t{set} * config_.ways + static_cast<std::uint32_t>(way)] =
        ++use_clock_;
  } else {
    ++stats_.misses;
  }
  next_.write_line(line_addr, ops, now);
  return now + config_.hit_latency;
}

std::uint64_t Cache::fill_line(std::uint64_t line_addr, std::span<std::uint8_t> out,
                               std::uint64_t now) {
  ++stats_.accesses;
  auto [way, ready] = ensure_line(line_addr, now);
  std::memcpy(out.data(), line_data(set_of(line_addr), way), config_.line_bytes);
  return ready;
}

void Cache::writeback_line(std::uint64_t line_addr, std::span<const std::uint8_t> in) {
  // A dirty victim from the level above. For a write-back cache, absorb it;
  // otherwise pass through (L1s in this model are write-through and never
  // produce victims, but the path is kept general).
  if (config_.write_back) {
    const std::uint64_t now = use_clock_;  // untimed path
    ++stats_.accesses;
    auto [way, ready] = ensure_line(line_addr, now);
    (void)ready;
    std::memcpy(line_data(set_of(line_addr), way), in.data(), config_.line_bytes);
    dirty_[std::size_t{set_of(line_addr)} * config_.ways + way] = 1;
    return;
  }
  next_.writeback_line(line_addr, in);
}

std::uint64_t Cache::atomic_add(std::uint64_t addr, std::uint32_t operand,
                                std::uint32_t& old_value, std::uint64_t now) {
  // Atomics are resolved at this level (the GPU routes them to L2).
  ++stats_.accesses;
  const std::uint64_t line_addr = addr & ~std::uint64_t{config_.line_bytes - 1};
  auto [way, ready] = ensure_line(line_addr, now);
  std::uint8_t* dst = line_data(set_of(line_addr), way) + (addr - line_addr);
  std::memcpy(&old_value, dst, 4);
  const std::uint32_t updated = old_value + operand;
  std::memcpy(dst, &updated, 4);
  if (config_.write_back) {
    dirty_[std::size_t{set_of(line_addr)} * config_.ways + way] = 1;
  } else {
    LineOp op{static_cast<std::uint32_t>(addr - line_addr), updated};
    next_.write_line(line_addr, {&op, 1}, now);
  }
  return ready;
}

void Cache::peek(std::uint64_t addr, std::span<std::uint8_t> out) {
  // Byte-wise coherent read: serve from this level when resident.
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t line_addr = a & ~std::uint64_t{config_.line_bytes - 1};
    const std::size_t in_line = static_cast<std::size_t>(a - line_addr);
    const std::size_t chunk = std::min(out.size() - done, std::size_t{config_.line_bytes} - in_line);
    const std::uint32_t set = set_of(line_addr);
    const std::uint64_t tag = tag_of(line_addr);
    if (const int way = lookup(set, tag); way >= 0) {
      std::memcpy(out.data() + done, line_data(set, static_cast<std::uint32_t>(way)) + in_line,
                  chunk);
    } else {
      next_.peek(a, out.subspan(done, chunk));
    }
    done += chunk;
  }
}

void Cache::poke(std::uint64_t addr, std::span<const std::uint8_t> in) {
  // Byte-wise coherent write: update resident copies and the level below,
  // so host writes are visible regardless of later hits or misses.
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t line_addr = a & ~std::uint64_t{config_.line_bytes - 1};
    const std::size_t in_line = static_cast<std::size_t>(a - line_addr);
    const std::size_t chunk = std::min(in.size() - done, std::size_t{config_.line_bytes} - in_line);
    const std::uint32_t set = set_of(line_addr);
    const std::uint64_t tag = tag_of(line_addr);
    if (const int way = lookup(set, tag); way >= 0) {
      std::memcpy(line_data(set, static_cast<std::uint32_t>(way)) + in_line, in.data() + done,
                  chunk);
    }
    next_.poke(a, in.subspan(done, chunk));
    done += chunk;
  }
}

void Cache::flush() {
  for (std::uint32_t set = 0; set < config_.sets; ++set) {
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      evict(set, way);
    }
  }
  pending_.clear();
}

Cache::Snapshot Cache::snapshot() const {
  return Snapshot{tags_, last_use_, valid_, dirty_, data_, pending_, stats_, use_clock_};
}

void Cache::restore(const Snapshot& snap) {
  if (snap.tags.size() != tags_.size() || snap.data.size() != data_.size()) {
    throw std::invalid_argument("cache snapshot does not match this cache's geometry");
  }
  tags_ = snap.tags;
  last_use_ = snap.last_use;
  valid_ = snap.valid;
  dirty_ = snap.dirty;
  data_ = snap.data;
  pending_ = snap.pending;
  stats_ = snap.stats;
  use_clock_ = snap.use_clock;
}

void Cache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(last_use_.begin(), last_use_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(data_.begin(), data_.end(), 0);
  pending_.clear();
  stats_ = CacheStats{};
  use_clock_ = 0;
}

void Cache::flip_data_bit(std::uint64_t bit_index) noexcept {
  gras::flip_bit(std::span<std::uint8_t>(data_), bit_index);
}

void Cache::flip_tag_bit(std::uint64_t line_index, unsigned bit) noexcept {
  if (line_index < tags_.size()) tags_[line_index] ^= (std::uint64_t{1} << (bit & 63));
}

void Cache::flip_valid_bit(std::uint64_t line_index) noexcept {
  if (line_index < valid_.size()) valid_[line_index] ^= 1u;
}

void Cache::flip_dirty_bit(std::uint64_t line_index) noexcept {
  if (line_index < dirty_.size()) dirty_[line_index] ^= 1u;
}

}  // namespace gras::sim
