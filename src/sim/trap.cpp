#include "src/sim/trap.h"

namespace gras::sim {

const char* trap_name(TrapKind k) {
  switch (k) {
    case TrapKind::None: return "None";
    case TrapKind::OobGlobal: return "OobGlobal";
    case TrapKind::MisalignedGlobal: return "MisalignedGlobal";
    case TrapKind::OobShared: return "OobShared";
    case TrapKind::MisalignedShared: return "MisalignedShared";
    case TrapKind::InvalidPc: return "InvalidPc";
    case TrapKind::ParamOob: return "ParamOob";
    case TrapKind::DivergenceOverflow: return "DivergenceOverflow";
    case TrapKind::Watchdog: return "Watchdog";
    case TrapKind::HostCheck: return "HostCheck";
    case TrapKind::Paused: return "Paused";
  }
  return "?";
}

}  // namespace gras::sim
