#include "src/sim/regfile.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/common/bitops.h"

namespace gras::sim {

RegFile::RegFile(std::uint32_t num_regs)
    : cells_(num_regs, 0), alloc_bitmap_((num_regs + 63) / 64, 0) {}

void RegFile::restore(const Snapshot& snap) {
  assert(snap.cells.size() == cells_.size());
  cells_ = snap.cells;
  alloc_bitmap_ = snap.alloc_bitmap;
  allocated_count_ = snap.allocated_count;
}

void RegFile::reset() {
  std::fill(cells_.begin(), cells_.end(), 0);
  std::fill(alloc_bitmap_.begin(), alloc_bitmap_.end(), 0);
  allocated_count_ = 0;
}

std::optional<std::uint32_t> RegFile::allocate(std::uint32_t count) {
  if (count == 0 || count > size()) return std::nullopt;
  // Fast reject: the CTA scheduler retries placement every cycle while CTAs
  // are pending, so a full-RF failure must be O(1).
  if (count > size() - allocated_count_) return std::nullopt;
  // First-fit scan, word-wise: fully-used 64-cell words are skipped in one
  // step, so a fragmented-but-busy register file costs ~size/64 iterations.
  std::uint32_t run = 0;
  for (std::uint32_t w = 0; w < alloc_bitmap_.size(); ++w) {
    const std::uint64_t word = alloc_bitmap_[w];
    if (word == ~std::uint64_t{0}) {
      run = 0;
      continue;
    }
    const std::uint32_t limit = std::min<std::uint32_t>(64, size() - w * 64);
    for (std::uint32_t b = 0; b < limit; ++b) {
      const bool used = (word >> b) & 1;
      run = used ? 0 : run + 1;
      if (run == count) {
        const std::uint32_t end = w * 64 + b;
        const std::uint32_t base = end + 1 - count;
        for (std::uint32_t j = base; j <= end; ++j) {
          alloc_bitmap_[j >> 6] |= 1ull << (j & 63);
        }
        allocated_count_ += count;
        return base;
      }
    }
  }
  return std::nullopt;
}

void RegFile::free(std::uint32_t base, std::uint32_t count) {
  for (std::uint32_t j = base; j < base + count; ++j) {
    assert((alloc_bitmap_[j >> 6] >> (j & 63)) & 1);
    alloc_bitmap_[j >> 6] &= ~(1ull << (j & 63));
  }
  allocated_count_ -= count;
  // Note: freed cells intentionally keep their stale values.
}

void RegFile::flip_bit(std::uint64_t bit_index) noexcept {
  const std::uint64_t cell = bit_index / 32;
  if (cell < cells_.size()) {
    cells_[cell] = gras::flip_bit(cells_[cell], static_cast<unsigned>(bit_index % 32));
  }
}

bool RegFile::is_allocated(std::uint32_t index) const noexcept {
  return (alloc_bitmap_[index >> 6] >> (index & 63)) & 1;
}

std::uint32_t RegFile::allocated_cell(std::uint32_t k) const noexcept {
  // Select the k-th set bit: skip whole 64-bit words by popcount.
  for (std::uint32_t w = 0; w < alloc_bitmap_.size(); ++w) {
    const std::uint32_t bits = static_cast<std::uint32_t>(std::popcount(alloc_bitmap_[w]));
    if (k >= bits) {
      k -= bits;
      continue;
    }
    std::uint64_t word = alloc_bitmap_[w];
    for (;;) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(word));
      if (k == 0) return w * 64 + b;
      --k;
      word &= word - 1;
    }
  }
  return 0;  // unreachable when k < allocated_count()
}

SharedMem::SharedMem(std::uint32_t bytes)
    : data_(bytes, 0), granule_used_(bytes / kGranule, false) {
  assert(bytes % kGranule == 0);
}

void SharedMem::restore(const Snapshot& snap) {
  assert(snap.data.size() == data_.size());
  data_ = snap.data;
  granule_used_ = snap.granule_used;
  allocated_bytes_ = snap.allocated_bytes;
}

void SharedMem::reset() {
  std::fill(data_.begin(), data_.end(), 0);
  std::fill(granule_used_.begin(), granule_used_.end(), false);
  allocated_bytes_ = 0;
}

std::optional<std::uint32_t> SharedMem::allocate(std::uint32_t bytes) {
  const std::uint32_t granules =
      static_cast<std::uint32_t>(gras::ceil_div(bytes == 0 ? 1 : bytes, kGranule));
  if (granules * kGranule > size() - allocated_bytes_) return std::nullopt;
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < granule_used_.size(); ++i) {
    run = granule_used_[i] ? 0 : run + 1;
    if (run == granules) {
      const std::uint32_t base = i + 1 - granules;
      for (std::uint32_t j = base; j <= i; ++j) granule_used_[j] = true;
      allocated_bytes_ += granules * kGranule;
      return base * kGranule;
    }
  }
  return std::nullopt;
}

void SharedMem::free(std::uint32_t base, std::uint32_t bytes) {
  const std::uint32_t granules =
      static_cast<std::uint32_t>(gras::ceil_div(bytes == 0 ? 1 : bytes, kGranule));
  for (std::uint32_t j = base / kGranule; j < base / kGranule + granules; ++j) {
    granule_used_[j] = false;
  }
  allocated_bytes_ -= granules * kGranule;
}

std::uint32_t SharedMem::read_u32(std::uint32_t addr) const noexcept {
  std::uint32_t v = 0;
  if (addr + 4 <= data_.size()) {
    v = static_cast<std::uint32_t>(data_[addr]) |
        (static_cast<std::uint32_t>(data_[addr + 1]) << 8) |
        (static_cast<std::uint32_t>(data_[addr + 2]) << 16) |
        (static_cast<std::uint32_t>(data_[addr + 3]) << 24);
  }
  return v;
}

void SharedMem::write_u32(std::uint32_t addr, std::uint32_t value) noexcept {
  if (addr + 4 <= data_.size()) {
    data_[addr] = static_cast<std::uint8_t>(value);
    data_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    data_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    data_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
  }
}

void SharedMem::flip_bit(std::uint64_t bit_index) noexcept {
  gras::flip_bit(std::span<std::uint8_t>(data_), bit_index);
}

bool SharedMem::is_allocated(std::uint32_t byte) const noexcept {
  const std::uint32_t g = byte / kGranule;
  return g < granule_used_.size() && granule_used_[g];
}

std::uint32_t SharedMem::allocated_byte(std::uint32_t k) const noexcept {
  for (std::uint32_t g = 0; g < granule_used_.size(); ++g) {
    if (!granule_used_[g]) continue;
    if (k < kGranule) return g * kGranule + k;
    k -= kGranule;
  }
  return 0;
}

}  // namespace gras::sim
