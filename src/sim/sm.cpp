#include "src/sim/sm.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

namespace gras::sim {

using isa::Instr;
using isa::Op;
using isa::Operand;
using isa::OperandKind;

namespace {

constexpr std::uint32_t kFullMask = 0xffffffffu;
constexpr std::uint32_t kMaxDivergenceDepth = 64;

float as_float(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

std::uint32_t as_bits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, 4);
  return bits;
}

/// Saturating, NaN-safe float->int32 conversion (CUDA F2I semantics).
std::uint32_t f2i(std::uint32_t bits) {
  const float f = as_float(bits);
  if (std::isnan(f)) return 0;
  if (f >= 2147483647.0f) return 0x7fffffffu;
  if (f <= -2147483648.0f) return 0x80000000u;
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(f));
}

SimStats& stats_of(LaunchContext& ctx) { return *ctx.stats; }

}  // namespace

SimStats& SimStats::operator+=(const SimStats& o) {
  cycles += o.cycles;
  warp_instrs += o.warp_instrs;
  thread_instrs += o.thread_instrs;
  gp_thread_instrs += o.gp_thread_instrs;
  ld_thread_instrs += o.ld_thread_instrs;
  load_instrs += o.load_instrs;
  store_instrs += o.store_instrs;
  smem_instrs += o.smem_instrs;
  atom_instrs += o.atom_instrs;
  l1d += o.l1d;
  l1t += o.l1t;
  l2 += o.l2;
  dram_read_bytes += o.dram_read_bytes;
  dram_written_bytes += o.dram_written_bytes;
  warp_residency += o.warp_residency;
  sm_cycles += o.sm_cycles;
  return *this;
}

Sm::Sm(const GpuConfig& config, std::uint32_t sm_id, MemLevel& l2, GlobalMemory& gmem)
    : config_(config),
      sm_id_(sm_id),
      l2_(l2),
      gmem_(gmem),
      rf_(config.regs_per_sm),
      smem_(config.smem_bytes_per_sm),
      l1d_(config.l1d, l2, "L1D"),
      l1t_(config.l1t, l2, "L1T"),
      warps_(config.max_warps_per_sm),
      ctas_(config.max_ctas_per_sm),
      warp_gate_(config.max_warps_per_sm, ~std::uint64_t{0}) {}

std::uint32_t Sm::free_cta_slots() const noexcept {
  return config_.max_ctas_per_sm - active_ctas_;
}

bool Sm::try_launch_cta(LaunchContext& ctx, std::uint32_t x, std::uint32_t y,
                        std::uint32_t z) {
  // CTA slot.
  std::uint32_t cta_slot = config_.max_ctas_per_sm;
  for (std::uint32_t i = 0; i < ctas_.size(); ++i) {
    if (!ctas_[i].resident) {
      cta_slot = i;
      break;
    }
  }
  if (cta_slot == config_.max_ctas_per_sm) return false;

  // Contiguous run of free warp slots.
  const std::uint32_t need = ctx.warps_per_cta;
  std::uint32_t first_warp = config_.max_warps_per_sm;
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < warps_.size(); ++i) {
    run = warps_[i].resident ? 0 : run + 1;
    if (run == need) {
      first_warp = i + 1 - need;
      break;
    }
  }
  if (first_warp == config_.max_warps_per_sm) return false;

  // Registers (warp-granular allocation, as on real SMs) and shared memory.
  const std::uint32_t rf_count = need * config_.warp_size * ctx.regs_per_thread;
  const auto rf_base = rf_.allocate(rf_count);
  if (!rf_base) return false;
  const auto smem_base = smem_.allocate(ctx.kernel->smem_bytes);
  if (!smem_base) {
    rf_.free(*rf_base, rf_count);
    return false;
  }

  CtaExec& cta = ctas_[cta_slot];
  cta = CtaExec{};
  cta.resident = true;
  cta.ctaid_x = x;
  cta.ctaid_y = y;
  cta.ctaid_z = z;
  cta.rf_base = *rf_base;
  cta.rf_count = rf_count;
  cta.smem_base = *smem_base;
  cta.smem_bytes = ctx.kernel->smem_bytes;
  cta.num_warps = need;
  cta.first_warp_slot = first_warp;

  for (std::uint32_t w = 0; w < need; ++w) {
    WarpExec& warp = warps_[first_warp + w];
    warp = WarpExec{};
    warp.resident = true;
    warp.cta_slot = cta_slot;
    warp.warp_in_cta = w;
    // Lanes beyond the CTA's thread count never start.
    const std::uint64_t first_tid = std::uint64_t{w} * config_.warp_size;
    std::uint32_t mask = 0;
    for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
      if (first_tid + lane < ctx.threads_per_cta) mask |= 1u << lane;
    }
    warp.active_mask = mask;
    warp.pred_mask[isa::kPredPT] = kFullMask;
    sync_gate(first_warp + w);
  }
  active_ctas_ += 1;
  resident_warps_ += need;
  return true;
}

std::uint32_t Sm::rf_cell_index(const WarpExec& warp, std::uint32_t lane,
                                std::uint8_t reg) const {
  const CtaExec& cta = ctas_[warp.cta_slot];
  const std::uint32_t tid = warp.warp_in_cta * config_.warp_size + lane;
  // Thread-major layout: each thread's registers are contiguous.
  const std::uint32_t regs = cta.rf_count / (cta.num_warps * config_.warp_size);
  return cta.rf_base + tid * regs + reg;
}

std::uint32_t Sm::read_reg(const WarpExec& warp, std::uint32_t lane,
                           std::uint8_t reg) const {
  if (reg == isa::kRegRZ) return 0;
  return rf_.read(rf_cell_index(warp, lane, reg));
}

void Sm::write_reg(const WarpExec& warp, std::uint32_t lane, std::uint8_t reg,
                   std::uint32_t value) {
  if (reg == isa::kRegRZ) return;
  rf_.write(rf_cell_index(warp, lane, reg), value);
}

std::uint32_t Sm::special_value(const LaunchContext& ctx, const WarpExec& warp,
                                std::uint32_t lane, isa::SpecialReg sr) const {
  const CtaExec& cta = ctas_[warp.cta_slot];
  const std::uint32_t tid = warp.warp_in_cta * config_.warp_size + lane;
  switch (sr) {
    case isa::SpecialReg::TID_X: return tid % ctx.block.x;
    case isa::SpecialReg::TID_Y: return tid / ctx.block.x;
    case isa::SpecialReg::CTAID_X: return cta.ctaid_x;
    case isa::SpecialReg::CTAID_Y: return cta.ctaid_y;
    case isa::SpecialReg::CTAID_Z: return cta.ctaid_z;
    case isa::SpecialReg::NTID_X: return ctx.block.x;
    case isa::SpecialReg::NTID_Y: return ctx.block.y;
    case isa::SpecialReg::NCTAID_X: return ctx.grid.x;
    case isa::SpecialReg::NCTAID_Y: return ctx.grid.y;
    case isa::SpecialReg::NCTAID_Z: return ctx.grid.z;
    case isa::SpecialReg::LANEID: return lane;
    case isa::SpecialReg::WARPID: return warp.warp_in_cta;
  }
  return 0;
}

std::uint32_t Sm::eval_operand(const LaunchContext& ctx, const WarpExec& warp,
                               const Operand& op, std::uint32_t lane, bool& trap) {
  switch (op.kind) {
    case OperandKind::Gpr:
      return read_reg(warp, lane, static_cast<std::uint8_t>(op.value));
    case OperandKind::Imm:
      return op.value;
    case OperandKind::Param: {
      const std::uint32_t index = op.value / 4;
      if (index >= ctx.params.size()) {
        trap = true;
        return 0;
      }
      return ctx.params[index];
    }
    case OperandKind::None:
      return 0;
  }
  return 0;
}

std::uint64_t Sm::next_ready_cycle() const noexcept {
  // Flat min-reduce over the gate array (parked slots hold ~0); dense u64
  // data with no branches, so the compiler can vectorize it.
  std::uint64_t earliest = ~std::uint64_t{0};
  for (const std::uint64_t gate : warp_gate_) {
    earliest = std::min(earliest, gate);
  }
  return earliest;
}

void Sm::release_barrier_if_ready(CtaExec& cta, std::uint64_t now) {
  const std::uint32_t live = cta.num_warps - cta.warps_done;
  if (live == 0 || cta.barrier_arrived < live) return;
  for (std::uint32_t w = 0; w < cta.num_warps; ++w) {
    const std::uint32_t slot = cta.first_warp_slot + w;
    WarpExec& warp = warps_[slot];
    if (warp.at_barrier) {
      warp.at_barrier = false;
      warp.ready_cycle = now + 1;
      sync_gate(slot);
    }
  }
  cta.barrier_arrived = 0;
}

void Sm::finish_warp(LaunchContext& ctx, std::uint32_t slot) {
  WarpExec& warp = warps_[slot];
  warp.done = true;
  sync_gate(slot);
  resident_warps_ -= 1;
  CtaExec& cta = ctas_[warp.cta_slot];
  cta.warps_done += 1;
  if (cta.warps_done == cta.num_warps) {
    rf_.free(cta.rf_base, cta.rf_count);
    smem_.free(cta.smem_base, cta.smem_bytes);
    for (std::uint32_t w = 0; w < cta.num_warps; ++w) {
      warps_[cta.first_warp_slot + w].resident = false;
      sync_gate(cta.first_warp_slot + w);
    }
    cta.resident = false;
    active_ctas_ -= 1;
  } else {
    // A warp exiting may satisfy a barrier the rest of the CTA waits on.
    release_barrier_if_ready(cta, warp.ready_cycle);
  }
  (void)ctx;
}

bool Sm::resolve_path(WarpExec& warp, bool via_sync) {
  (void)via_sync;
  for (;;) {
    if (warp.stack.empty()) return warp.path_active() != 0;
    const DivFrame& frame = warp.stack.back();
    // The top frame's pending paths are the arena's tail, [path_base, size).
    if (warp.paths.size() > frame.path_base) {
      const DivPath next = warp.paths.back();
      warp.paths.pop_back();
      warp.active_mask = next.mask;
      warp.pc = next.pc;
      if (warp.path_active() != 0) return true;
      continue;  // that path fully exited in the meantime
    }
    const std::uint32_t restored = frame.union_mask & ~warp.exited_mask;
    const std::uint32_t reconv = frame.reconv_pc;
    warp.stack.pop_back();  // pending empty ⇒ paths already ends at path_base
    if (restored != 0 && reconv != DivFrame::kNoReconv) {
      warp.active_mask = restored;
      warp.pc = reconv;
      return true;
    }
    // Implicit frame or everyone exited: keep draining outer frames.
    warp.active_mask = restored;
    if (restored != 0) {
      // Implicit frame with survivors: they already run under outer frames'
      // bookkeeping; nothing to jump to, keep the current pc.
      return true;
    }
  }
}

void Sm::step(LaunchContext& ctx, std::uint64_t now) {
  if (active_ctas_ == 0) return;
  const std::uint32_t n = static_cast<std::uint32_t>(warps_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t slot = (rr_next_ + i) % n;
    // warp_gate_ folds resident/done/at_barrier/ready into one compare.
    if (warp_gate_[slot] > now) continue;
    rr_next_ = (slot + 1) % n;
    execute_warp(ctx, slot, now);
    return;
  }
}

void Sm::execute_warp(LaunchContext& ctx, std::uint32_t slot, std::uint64_t now) {
  WarpExec& warp = warps_[slot];
  const isa::Kernel& k = kernel(ctx);
  if (warp.pc >= k.code.size()) {
    ctx.trap = TrapKind::InvalidPc;
    return;
  }
  const Instr& ins = k.code[warp.pc];
  const std::uint32_t path = warp.path_active();
  const std::uint32_t guard_bits = warp.pred_mask[ins.guard];
  const std::uint32_t exec = path & (ins.guard_neg ? ~guard_bits : guard_bits);

  SimStats& st = stats_of(ctx);
  st.warp_instrs += 1;
  st.thread_instrs += static_cast<std::uint32_t>(std::popcount(exec));

  std::uint64_t ready = now + config_.alu_latency;
  std::uint32_t next_pc = warp.pc + 1;
  bool advance = true;       // set pc = next_pc at the end
  bool param_trap = false;

  if (ctx.hook != nullptr && exec != 0) {
    ctx.hook->on_issue(*this, slot, ins, exec, now);
    if (ins.writes_gpr()) ctx.hook->on_pre_exec(*this, slot, ins, exec);
  }

  auto for_lanes = [&](auto&& body) {
    for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
      if (exec & (1u << lane)) body(lane);
    }
  };
  auto src = [&](const Operand& op, std::uint32_t lane) {
    return eval_operand(ctx, warp, op, lane, param_trap);
  };

  switch (ins.op) {
    case Op::S2R:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  special_value(ctx, warp, lane, static_cast<isa::SpecialReg>(ins.b.value)));
      });
      break;
    case Op::MOV:
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, src(ins.a, lane)); });
      break;
    case Op::NOT:
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, ~src(ins.a, lane)); });
      break;
    case Op::IADD:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) + src(ins.b, lane));
      });
      break;
    case Op::ISUB:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) - src(ins.b, lane));
      });
      break;
    case Op::IMUL:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(src(ins.a, lane)) *
                                             static_cast<std::int32_t>(src(ins.b, lane))));
      });
      break;
    case Op::IMAD:
      for_lanes([&](std::uint32_t lane) {
        const std::int64_t prod = static_cast<std::int64_t>(
                                      static_cast<std::int32_t>(src(ins.a, lane))) *
                                  static_cast<std::int32_t>(src(ins.b, lane));
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(prod) + src(ins.c, lane));
      });
      break;
    case Op::ISCADD:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  (src(ins.a, lane) << ins.shift) + src(ins.b, lane));
      });
      break;
    case Op::SHL:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) << (src(ins.b, lane) & 31));
      });
      break;
    case Op::SHR:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) >> (src(ins.b, lane) & 31));
      });
      break;
    case Op::ASR:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(static_cast<std::int32_t>(src(ins.a, lane)) >>
                                             (src(ins.b, lane) & 31)));
      });
      break;
    case Op::AND:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) & src(ins.b, lane));
      });
      break;
    case Op::OR:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) | src(ins.b, lane));
      });
      break;
    case Op::XOR:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst, src(ins.a, lane) ^ src(ins.b, lane));
      });
      break;
    case Op::IMIN:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(
                      std::min(static_cast<std::int32_t>(src(ins.a, lane)),
                               static_cast<std::int32_t>(src(ins.b, lane)))));
      });
      break;
    case Op::IMAX:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  static_cast<std::uint32_t>(
                      std::max(static_cast<std::int32_t>(src(ins.a, lane)),
                               static_cast<std::int32_t>(src(ins.b, lane)))));
      });
      break;
    case Op::ISETP:
      for_lanes([&](std::uint32_t lane) {
        const std::int32_t a = static_cast<std::int32_t>(src(ins.a, lane));
        const std::int32_t b = static_cast<std::int32_t>(src(ins.b, lane));
        bool r = false;
        switch (ins.cmp) {
          case isa::Cmp::EQ: r = a == b; break;
          case isa::Cmp::NE: r = a != b; break;
          case isa::Cmp::LT: r = a < b; break;
          case isa::Cmp::LE: r = a <= b; break;
          case isa::Cmp::GT: r = a > b; break;
          case isa::Cmp::GE: r = a >= b; break;
        }
        if (ins.pdst != isa::kPredPT) {
          if (r) warp.pred_mask[ins.pdst] |= 1u << lane;
          else warp.pred_mask[ins.pdst] &= ~(1u << lane);
        }
      });
      break;
    case Op::FSETP:
      for_lanes([&](std::uint32_t lane) {
        const float a = as_float(src(ins.a, lane));
        const float b = as_float(src(ins.b, lane));
        bool r = false;
        switch (ins.cmp) {
          case isa::Cmp::EQ: r = a == b; break;
          case isa::Cmp::NE: r = a != b; break;
          case isa::Cmp::LT: r = a < b; break;
          case isa::Cmp::LE: r = a <= b; break;
          case isa::Cmp::GT: r = a > b; break;
          case isa::Cmp::GE: r = a >= b; break;
        }
        if (ins.pdst != isa::kPredPT) {
          if (r) warp.pred_mask[ins.pdst] |= 1u << lane;
          else warp.pred_mask[ins.pdst] &= ~(1u << lane);
        }
      });
      break;
    case Op::SEL:
      for_lanes([&](std::uint32_t lane) {
        const bool p = ((warp.pred_mask[ins.psrc] >> lane) & 1) != 0;
        const bool take_a = p != ins.psrc_neg;
        write_reg(warp, lane, ins.dst, take_a ? src(ins.a, lane) : src(ins.b, lane));
      });
      break;
    case Op::FADD:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) + as_float(src(ins.b, lane))));
      });
      break;
    case Op::FSUB:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) - as_float(src(ins.b, lane))));
      });
      break;
    case Op::FMUL:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(as_float(src(ins.a, lane)) * as_float(src(ins.b, lane))));
      });
      break;
    case Op::FFMA:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmaf(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)),
                                    as_float(src(ins.c, lane)))));
      });
      break;
    case Op::FMIN:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmin(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)))));
      });
      break;
    case Op::FMAX:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(std::fmax(as_float(src(ins.a, lane)), as_float(src(ins.b, lane)))));
      });
      break;
    case Op::F2I:
      for_lanes([&](std::uint32_t lane) { write_reg(warp, lane, ins.dst, f2i(src(ins.a, lane))); });
      break;
    case Op::I2F:
      for_lanes([&](std::uint32_t lane) {
        write_reg(warp, lane, ins.dst,
                  as_bits(static_cast<float>(static_cast<std::int32_t>(src(ins.a, lane)))));
      });
      break;
    case Op::MUFU:
      ready = now + config_.sfu_latency;
      for_lanes([&](std::uint32_t lane) {
        const float a = as_float(src(ins.a, lane));
        float r = 0.0f;
        switch (ins.mufu) {
          case isa::Mufu::RCP: r = 1.0f / a; break;
          case isa::Mufu::SQRT: r = std::sqrt(a); break;
          case isa::Mufu::RSQRT: r = 1.0f / std::sqrt(a); break;
          case isa::Mufu::EX2: r = std::exp2(a); break;
          case isa::Mufu::LG2: r = std::log2(a); break;
          case isa::Mufu::EXP: r = std::exp(a); break;
          case isa::Mufu::LOG: r = std::log(a); break;
          case isa::Mufu::SIN: r = std::sin(a); break;
          case isa::Mufu::COS: r = std::cos(a); break;
        }
        write_reg(warp, lane, ins.dst, as_bits(r));
      });
      break;
    case Op::LDG:
    case Op::LDT:
    case Op::STG:
      ready = exec_global(ctx, warp, ins, exec, now);
      break;
    case Op::LDS:
    case Op::STS:
      ready = exec_shared(ctx, warp, ins, exec, now);
      break;
    case Op::ATOM_ADD:
    case Op::RED_ADD:
      ready = exec_atomic(ctx, warp, ins, exec, now);
      break;
    case Op::SSY: {
      if (ins.target >= k.code.size()) {
        ctx.trap = TrapKind::InvalidPc;
        return;
      }
      if (warp.stack.size() >= kMaxDivergenceDepth) {
        ctx.trap = TrapKind::DivergenceOverflow;
        return;
      }
      warp.stack.push_back(
          {ins.target, path, static_cast<std::uint32_t>(warp.paths.size())});
      break;
    }
    case Op::BRA: {
      if (exec == 0) break;  // no lane takes the branch
      if (ins.target >= k.code.size()) {
        ctx.trap = TrapKind::InvalidPc;
        return;
      }
      if (exec == path) {
        next_pc = ins.target;  // uniform branch
        break;
      }
      // Divergent: save the taken side, continue on the fallthrough.
      if (warp.stack.empty()) {
        // Fault-perturbed control flow can diverge without an SSY; an
        // implicit frame serialises the paths (they retire via EXIT).
        warp.stack.push_back({DivFrame::kNoReconv, path,
                              static_cast<std::uint32_t>(warp.paths.size())});
      }
      if (warp.stack.size() >= kMaxDivergenceDepth &&
          warp.paths.size() - warp.stack.back().path_base >= kMaxDivergenceDepth) {
        ctx.trap = TrapKind::DivergenceOverflow;
        return;
      }
      warp.paths.push_back({ins.target, exec});
      warp.active_mask = path & ~exec;
      break;
    }
    case Op::SYNC: {
      if (warp.stack.empty() ||
          warp.stack.back().reconv_pc == DivFrame::kNoReconv) {
        break;  // stray SYNC: no-op
      }
      if (!resolve_path(warp, true)) {
        finish_warp(ctx, slot);
        return;
      }
      advance = false;  // resolve_path set the pc
      break;
    }
    case Op::BAR: {
      CtaExec& cta = ctas_[warp.cta_slot];
      warp.at_barrier = true;
      sync_gate(slot);
      cta.barrier_arrived += 1;
      warp.pc = next_pc;  // resumes after the barrier
      release_barrier_if_ready(cta, now);
      return;
    }
    case Op::EXIT: {
      warp.exited_mask |= exec;
      if (warp.path_active() == 0) {
        if (!resolve_path(warp, false)) {
          warp.ready_cycle = ready;
          finish_warp(ctx, slot);
          return;
        }
        advance = false;
      }
      break;
    }
    case Op::NOP:
      break;
  }

  if (param_trap) {
    ctx.trap = TrapKind::ParamOob;
    return;
  }
  if (ctx.trap != TrapKind::None) return;

  if (ins.writes_gpr() && exec != 0) {
    st.gp_thread_instrs += static_cast<std::uint32_t>(std::popcount(exec));
    if (ins.is_load()) st.ld_thread_instrs += static_cast<std::uint32_t>(std::popcount(exec));
    if (ctx.hook != nullptr) ctx.hook->on_gpr_retire(*this, slot, ins, exec);
  }

  if (advance) warp.pc = next_pc;
  warp.ready_cycle = ready;
  sync_gate(slot);
}

std::uint64_t Sm::exec_global(LaunchContext& ctx, WarpExec& warp, const Instr& ins,
                              std::uint32_t exec, std::uint64_t now) {
  SimStats& st = stats_of(ctx);
  const bool store = ins.op == Op::STG;
  const bool texture = ins.op == Op::LDT;
  if (store) st.store_instrs += 1;
  else st.load_instrs += 1;
  if (exec == 0) return now + 1;

  Cache& cache = texture ? l1t_ : l1d_;
  const std::uint32_t line_bytes = cache.config().line_bytes;
  bool param_trap = false;

  // Coalesce: gather per-line word lists across lanes.
  struct LaneAccess {
    std::uint64_t line;
    std::uint32_t offset;
    std::uint32_t lane;
  };
  LaneAccess accesses[32];
  std::size_t count = 0;
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t addr = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((addr & 3u) != 0) {
      ctx.trap = TrapKind::MisalignedGlobal;
      return now + 1;
    }
    if (!gmem_.in_bounds(addr, 4)) {
      ctx.trap = TrapKind::OobGlobal;
      return now + 1;
    }
    const std::uint64_t line = addr & ~std::uint64_t{line_bytes - 1};
    accesses[count++] = {line, addr - static_cast<std::uint32_t>(line), lane};
  }

  std::uint64_t ready = now + 1;
  // Process each distinct line once (coalescing), preserving lane order.
  bool handled[32] = {};
  for (std::size_t i = 0; i < count; ++i) {
    if (handled[i]) continue;
    const std::uint64_t line = accesses[i].line;
    if (store) {
      LineOp ops[32];
      std::size_t nops = 0;
      for (std::size_t j = i; j < count; ++j) {
        if (accesses[j].line != line) continue;
        handled[j] = true;
        const std::uint32_t value = eval_operand(ctx, warp, ins.b, accesses[j].lane, param_trap);
        ops[nops++] = {accesses[j].offset, value};
      }
      ready = std::max(ready, cache.write_line(line, {ops, nops}, now));
    } else {
      std::uint32_t offsets[32];
      std::uint32_t lanes[32];
      std::uint32_t values[32];
      std::size_t nread = 0;
      for (std::size_t j = i; j < count; ++j) {
        if (accesses[j].line != line) continue;
        handled[j] = true;
        offsets[nread] = accesses[j].offset;
        lanes[nread] = accesses[j].lane;
        ++nread;
      }
      ready = std::max(ready, cache.read_line(line, {offsets, nread}, {values, nread}, now));
      for (std::size_t j = 0; j < nread; ++j) {
        write_reg(warp, lanes[j], ins.dst, values[j]);
      }
    }
  }
  if (param_trap) ctx.trap = TrapKind::ParamOob;
  return ready;
}

std::uint64_t Sm::exec_shared(LaunchContext& ctx, WarpExec& warp, const Instr& ins,
                              std::uint32_t exec, std::uint64_t now) {
  SimStats& st = stats_of(ctx);
  st.smem_instrs += 1;
  if (exec == 0) return now + 1;
  const bool store = ins.op == Op::STS;
  const CtaExec& cta = ctas_[warp.cta_slot];
  bool param_trap = false;
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t off = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((off & 3u) != 0) {
      ctx.trap = TrapKind::MisalignedShared;
      return now + 1;
    }
    if (off >= config_.smem_bytes_per_sm) {
      ctx.trap = TrapKind::OobShared;
      return now + 1;
    }
    // Physical address may spill past the CTA's own allocation: that is a
    // silent corruption of a neighbouring CTA's data, not a trap, matching
    // the undefined-but-not-faulting behaviour of real shared memory.
    const std::uint32_t phys = (cta.smem_base + off) % config_.smem_bytes_per_sm;
    if (store) {
      smem_.write_u32(phys, eval_operand(ctx, warp, ins.b, lane, param_trap));
    } else {
      write_reg(warp, lane, ins.dst, smem_.read_u32(phys));
    }
  }
  if (param_trap) ctx.trap = TrapKind::ParamOob;
  return now + config_.smem_latency;
}

std::uint64_t Sm::exec_atomic(LaunchContext& ctx, WarpExec& warp, const Instr& ins,
                              std::uint32_t exec, std::uint64_t now) {
  SimStats& st = stats_of(ctx);
  st.atom_instrs += 1;
  if (exec == 0) return now + 1;
  bool param_trap = false;
  std::uint64_t ready = now + 1;
  // Atomics resolve at L2, lane by lane in lane order.
  for (std::uint32_t lane = 0; lane < config_.warp_size; ++lane) {
    if (!(exec & (1u << lane))) continue;
    const std::uint32_t base = read_reg(warp, lane, static_cast<std::uint8_t>(ins.a.value));
    const std::uint32_t addr = base + static_cast<std::uint32_t>(ins.mem_offset);
    if ((addr & 3u) != 0) {
      ctx.trap = TrapKind::MisalignedGlobal;
      return now + 1;
    }
    if (!gmem_.in_bounds(addr, 4)) {
      ctx.trap = TrapKind::OobGlobal;
      return now + 1;
    }
    const std::uint32_t operand = eval_operand(ctx, warp, ins.b, lane, param_trap);
    std::uint32_t old = 0;
    ready = std::max(ready, l2_.atomic_add(addr, operand, old, now));
    if (ins.op == Op::ATOM_ADD) write_reg(warp, lane, ins.dst, old);
  }
  if (param_trap) ctx.trap = TrapKind::ParamOob;
  return ready;
}

void Sm::end_launch() {
  l1d_.flush();
  l1t_.flush();
  rr_next_ = 0;
}

Sm::Snapshot Sm::snapshot() const {
  Snapshot snap;
  snap.rf = rf_.snapshot();
  snap.smem = smem_.snapshot();
  snap.l1d = l1d_.snapshot();
  snap.l1t = l1t_.snapshot();
  snap.rr_next = rr_next_;
  snap.warps = warps_;
  snap.ctas = ctas_;
  snap.active_ctas = active_ctas_;
  snap.resident_warps = resident_warps_;
  return snap;
}

void Sm::restore(const Snapshot& snap) {
  rf_.restore(snap.rf);
  smem_.restore(snap.smem);
  l1d_.restore(snap.l1d);
  l1t_.restore(snap.l1t);
  rr_next_ = snap.rr_next;
  warps_ = snap.warps;
  ctas_ = snap.ctas;
  active_ctas_ = snap.active_ctas;
  resident_warps_ = snap.resident_warps;
  for (std::uint32_t slot = 0; slot < warps_.size(); ++slot) sync_gate(slot);
}

void Sm::reset() {
  rf_.reset();
  smem_.reset();
  l1d_.reset();
  l1t_.reset();
  rr_next_ = 0;
  std::fill(warps_.begin(), warps_.end(), WarpExec{});
  std::fill(ctas_.begin(), ctas_.end(), CtaExec{});
  std::fill(warp_gate_.begin(), warp_gate_.end(), ~std::uint64_t{0});
  active_ctas_ = 0;
  resident_warps_ = 0;
}

void Sm::abort_launch() {
  for (CtaExec& cta : ctas_) {
    if (!cta.resident) continue;
    rf_.free(cta.rf_base, cta.rf_count);
    smem_.free(cta.smem_base, cta.smem_bytes);
    for (std::uint32_t w = 0; w < cta.num_warps; ++w) {
      WarpExec& warp = warps_[cta.first_warp_slot + w];
      if (!warp.done) resident_warps_ -= 1;
      warp.resident = false;
      warp.done = true;
      sync_gate(cta.first_warp_slot + w);
    }
    cta.resident = false;
    active_ctas_ -= 1;
  }
}

}  // namespace gras::sim
