#include "src/sim/gpu.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/bitops.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"

namespace gras::sim {

Gpu::Gpu(GpuConfig config)
    : config_(std::move(config)),
      gmem_(config_.global_mem_bytes),
      dram_(gmem_, config_.dram_latency),
      l2_(config_.l2, dram_, "L2") {
  if (config_.l1d.line_bytes != config_.l2.line_bytes ||
      config_.l1t.line_bytes != config_.l2.line_bytes) {
    throw std::invalid_argument("all cache levels must share one line size");
  }
  sms_.reserve(config_.num_sms);
  for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
    sms_.push_back(std::make_unique<Sm>(config_, i, l2_, gmem_));
  }
}

std::uint32_t Gpu::malloc(std::uint64_t bytes) { return gmem_.allocate(bytes); }

void Gpu::memcpy_h2d(std::uint32_t dst, const void* src, std::uint64_t bytes) {
  // Host writes go through L2's coherent poke path so resident lines stay
  // fresh (L1s are flushed at launch boundaries and cannot be stale here).
  l2_.poke(dst, {static_cast<const std::uint8_t*>(src), bytes});
}

void Gpu::memcpy_d2h(void* dst, std::uint32_t src, std::uint64_t bytes) {
  // Reads come through L2: a dirty (possibly fault-corrupted) L2 line is the
  // architecturally current value of that memory.
  l2_.peek(src, {static_cast<std::uint8_t*>(dst), bytes});
}

void Gpu::memset_d32(std::uint32_t dst, std::uint32_t value, std::uint64_t words) {
  std::vector<std::uint32_t> buf(words, value);
  memcpy_h2d(dst, buf.data(), words * 4);
}

void Gpu::set_launch_budgets(std::vector<std::uint64_t> budgets, std::uint64_t overflow) {
  budgets_ = std::move(budgets);
  overflow_budget_ = overflow;
}

GpuSnapshot Gpu::snapshot() const {
  GpuSnapshot snap;
  snap.cycle = cycle_;
  snap.gp_total = gp_total_;
  snap.ld_total = ld_total_;
  snap.launch_count = launches_.size();
  snap.gmem = gmem_.snapshot();
  snap.l2 = l2_.snapshot();
  snap.sms.reserve(sms_.size());
  for (const auto& sm : sms_) snap.sms.push_back(sm->snapshot());
  return snap;
}

void Gpu::restore(const GpuSnapshot& snap, std::span<const LaunchRecord> golden_launches) {
  if (snap.sms.size() != sms_.size() || snap.launch_count > golden_launches.size()) {
    throw std::invalid_argument("snapshot does not match this GPU's configuration");
  }
  cycle_ = snap.cycle;
  gp_total_ = snap.gp_total;
  ld_total_ = snap.ld_total;
  gmem_.restore(snap.gmem);
  l2_.restore(snap.l2);
  for (std::size_t i = 0; i < sms_.size(); ++i) sms_[i]->restore(snap.sms[i]);
  launches_.assign(golden_launches.begin(),
                   golden_launches.begin() + static_cast<std::ptrdiff_t>(snap.launch_count));
  dram_.reset_traffic();
  hook_ = nullptr;
}

void Gpu::reset() {
  cycle_ = 0;
  gp_total_ = 0;
  ld_total_ = 0;
  gmem_.reset();
  l2_.reset();
  for (auto& sm : sms_) sm->reset();
  launches_.clear();
  budgets_.clear();
  overflow_budget_ = 0;
  dram_.reset_traffic();
  hook_ = nullptr;
  ckpt_sink_ = nullptr;
}

LaunchResult Gpu::launch(const isa::Kernel& kernel, Dim3 grid, Dim3 block,
                         std::vector<std::uint32_t> params) {
  // Static span name, launch ordinal in the arg: kernel names are dynamic
  // strings the trace hot path cannot hold (see trace.h conventions).
  const trace::Span span("sim.launch", "sim", "launch", launches_.size());
  LaunchContext ctx;
  ctx.kernel = &kernel;
  ctx.grid = grid;
  ctx.block = block;
  ctx.params = std::move(params);
  ctx.threads_per_cta = block.x * block.y;
  ctx.warps_per_cta = static_cast<std::uint32_t>(
      ceil_div(ctx.threads_per_cta, config_.warp_size));
  ctx.regs_per_thread = std::max<std::uint8_t>(kernel.num_regs, 1);
  ctx.hook = hook_;

  if (ctx.threads_per_cta == 0 || grid.count() == 0) {
    throw std::invalid_argument("empty launch");
  }
  if (ctx.warps_per_cta > config_.max_warps_per_sm ||
      ctx.warps_per_cta * config_.warp_size * ctx.regs_per_thread > config_.regs_per_sm ||
      kernel.smem_bytes > config_.smem_bytes_per_sm) {
    throw std::invalid_argument("kernel '" + kernel.name + "' does not fit on an SM");
  }

  // Golden runs checkpoint the pre-launch state at each kernel's first
  // launch; campaigns later restore it to skip re-simulating the prefix.
  if (ckpt_sink_ != nullptr && !ckpt_sink_->has_kernel(kernel.name)) {
    ckpt_sink_->add(kernel.name, launches_.size(), snapshot());
  }

  LaunchRecord record;
  record.kernel = kernel.name;
  record.grid = grid;
  record.block = block;
  record.start_cycle = cycle_;
  record.threads = grid.count() * ctx.threads_per_cta;
  record.regs_per_thread = ctx.regs_per_thread;
  record.smem_per_cta = kernel.smem_bytes;
  record.gp_begin = gp_total_;
  record.ld_begin = ld_total_;

  SimStats stats;
  ctx.stats = &stats;

  // Cache counters accumulate inside the cache objects; snapshot them so the
  // launch record carries per-launch deltas.
  CacheStats l1d_before, l1t_before;
  for (const auto& sm : sms_) {
    l1d_before += sm->l1d().stats();
    l1t_before += sm->l1t().stats();
  }
  const CacheStats l2_before = l2_.stats();

  const std::uint64_t budget =
      launches_.size() < budgets_.size()
          ? budgets_[launches_.size()]
          : (overflow_budget_ != 0 ? overflow_budget_ : config_.default_watchdog_cycles);
  const std::uint64_t deadline = cycle_ + budget;

  const std::uint64_t total_ctas = grid.count();
  std::uint64_t next_cta = 0;
  LaunchResult result;

  auto all_idle = [&] {
    for (const auto& sm : sms_) {
      if (sm->busy()) return false;
    }
    return true;
  };

  while (next_cta < total_ctas || !all_idle()) {
    ++cycle_;
    if (cycle_ > deadline) {
      result.trap = TrapKind::Watchdog;
      break;
    }
    if (hook_ != nullptr) hook_->on_cycle(*this, cycle_);

    // Distribute pending CTAs to SMs with room (row-major CTA order).
    for (std::uint32_t s = 0; s < config_.num_sms && next_cta < total_ctas; ++s) {
      while (next_cta < total_ctas && sms_[s]->free_cta_slots() > 0) {
        const std::uint32_t cx = static_cast<std::uint32_t>(next_cta % grid.x);
        const std::uint32_t cy = static_cast<std::uint32_t>((next_cta / grid.x) % grid.y);
        const std::uint32_t cz = static_cast<std::uint32_t>(next_cta / (std::uint64_t{grid.x} * grid.y));
        if (!sms_[s]->try_launch_cta(ctx, cx, cy, cz)) break;
        ++next_cta;
      }
    }

    std::uint64_t resident = 0;
    std::uint32_t resident_ctas = 0;
    for (const auto& sm : sms_) {
      resident += sm->resident_warp_count();
      resident_ctas += sm->active_cta_count();
    }
    stats.warp_residency += resident;
    stats.sm_cycles += config_.num_sms;
    // Residency only grows at the placement loop above, so sampling right
    // after it captures the true per-launch peak.
    record.peak_resident_ctas = std::max(record.peak_resident_ctas, resident_ctas);

    for (auto& sm : sms_) {
      sm->step(ctx, cycle_);
      if (ctx.trap != TrapKind::None) break;
    }
    if (ctx.trap != TrapKind::None) {
      result.trap = ctx.trap;
      break;
    }

    // Fast-forward over idle stretches: jump to the next cycle at which any
    // warp becomes ready (bounded by pending fault triggers and the
    // deadline). CTA placement above only changes state right after a CTA
    // retires, which happens inside step(), so skipping is safe.
    if (next_cta >= total_ctas && all_idle()) break;  // launch complete

    std::uint64_t next_event = ~std::uint64_t{0};
    for (const auto& sm : sms_) {
      next_event = std::min(next_event, sm->next_ready_cycle());
    }
    if (hook_ != nullptr) next_event = std::min(next_event, hook_->next_trigger());
    // No runnable warp at any future cycle means every resident warp is
    // stuck at a barrier (fault-induced deadlock): jump to the watchdog.
    next_event = std::min(next_event, deadline + 1);
    if (next_event > cycle_ + 1) {
      const std::uint64_t skipped = next_event - cycle_ - 1;
      stats.warp_residency += skipped * resident;
      stats.sm_cycles += skipped * config_.num_sms;
      cycle_ = next_event - 1;
    }
  }

  // On trap/watchdog, abandon resident CTAs (the launch failed); either way
  // flush L1s at the launch boundary.
  if (result.trap != TrapKind::None) {
    for (auto& sm : sms_) sm->abort_launch();
  }
  for (auto& sm : sms_) sm->end_launch();

  stats.cycles = cycle_ - record.start_cycle;
  stats.dram_read_bytes = dram_.bytes_read();
  stats.dram_written_bytes = dram_.bytes_written();
  dram_.reset_traffic();

  CacheStats l1d_after, l1t_after;
  for (const auto& sm : sms_) {
    l1d_after += sm->l1d().stats();
    l1t_after += sm->l1t().stats();
  }
  auto delta = [](const CacheStats& after, const CacheStats& before) {
    CacheStats d;
    d.accesses = after.accesses - before.accesses;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.pending_hits = after.pending_hits - before.pending_hits;
    d.reservation_fails = after.reservation_fails - before.reservation_fails;
    d.writebacks = after.writebacks - before.writebacks;
    d.fills = after.fills - before.fills;
    return d;
  };
  stats.l1d = delta(l1d_after, l1d_before);
  stats.l1t = delta(l1t_after, l1t_before);
  stats.l2 = delta(l2_.stats(), l2_before);

  gp_total_ += stats.gp_thread_instrs;
  ld_total_ += stats.ld_thread_instrs;

  // One telemetry update per launch (never per cycle); function-local
  // statics skip the registry lookup on the hot path.
  {
    using telemetry::Counter;
    static Counter& launches = telemetry::counter("sim.launches");
    static Counter& cycles = telemetry::counter("sim.cycles");
    static Counter& warp_instrs = telemetry::counter("sim.warp_instrs");
    static Counter& l1d_accesses = telemetry::counter("sim.l1d.accesses");
    static Counter& l1d_misses = telemetry::counter("sim.l1d.misses");
    static Counter& l2_accesses = telemetry::counter("sim.l2.accesses");
    static Counter& l2_misses = telemetry::counter("sim.l2.misses");
    static Counter& dram_read = telemetry::counter("sim.dram.read_bytes");
    static Counter& dram_written = telemetry::counter("sim.dram.written_bytes");
    static Counter& watchdog = telemetry::counter("sim.watchdog_trips");
    launches.add();
    cycles.add(stats.cycles);
    warp_instrs.add(stats.warp_instrs);
    l1d_accesses.add(stats.l1d.accesses);
    l1d_misses.add(stats.l1d.misses);
    l2_accesses.add(stats.l2.accesses);
    l2_misses.add(stats.l2.misses);
    dram_read.add(stats.dram_read_bytes);
    dram_written.add(stats.dram_written_bytes);
    if (result.trap == TrapKind::Watchdog) watchdog.add();
  }

  result.cycles = stats.cycles;
  result.instructions = stats.warp_instrs;
  record.end_cycle = cycle_;
  record.gp_end = gp_total_;
  record.ld_end = ld_total_;
  record.stats = stats;
  record.result = result;
  launches_.push_back(std::move(record));
  return result;
}

}  // namespace gras::sim
