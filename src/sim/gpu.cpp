#include "src/sim/gpu.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/common/bitops.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/sim/backend.h"
#include "src/sim/functional.h"

namespace gras::sim {

Gpu::Gpu(GpuConfig config)
    : config_(std::move(config)),
      gmem_(config_.global_mem_bytes),
      dram_(gmem_, config_.dram_latency),
      l2_(config_.l2, dram_, "L2") {
  if (config_.l1d.line_bytes != config_.l2.line_bytes ||
      config_.l1t.line_bytes != config_.l2.line_bytes) {
    throw std::invalid_argument("all cache levels must share one line size");
  }
  sms_.reserve(config_.num_sms);
  for (std::uint32_t i = 0; i < config_.num_sms; ++i) {
    sms_.push_back(std::make_unique<Sm>(config_, i, l2_, gmem_));
  }
}

std::uint32_t Gpu::malloc(std::uint64_t bytes) { return gmem_.allocate(bytes); }

void Gpu::memcpy_h2d(std::uint32_t dst, const void* src, std::uint64_t bytes) {
  // Host writes go through L2's coherent poke path so resident lines stay
  // fresh (L1s are flushed at launch boundaries and cannot be stale here).
  l2_.poke(dst, {static_cast<const std::uint8_t*>(src), bytes});
}

void Gpu::memcpy_d2h(void* dst, std::uint32_t src, std::uint64_t bytes) {
  // Reads come through L2: a dirty (possibly fault-corrupted) L2 line is the
  // architecturally current value of that memory.
  l2_.peek(src, {static_cast<std::uint8_t*>(dst), bytes});
}

void Gpu::memset_d32(std::uint32_t dst, std::uint32_t value, std::uint64_t words) {
  std::vector<std::uint32_t> buf(words, value);
  memcpy_h2d(dst, buf.data(), words * 4);
}

void Gpu::set_launch_budgets(std::vector<std::uint64_t> budgets, std::uint64_t overflow) {
  budgets_ = std::move(budgets);
  overflow_budget_ = overflow;
}

GpuSnapshot Gpu::snapshot() const {
  GpuSnapshot snap;
  snap.cycle = cycle_;
  snap.gp_total = gp_total_;
  snap.ld_total = ld_total_;
  snap.launch_count = launches_.size();
  snap.gmem = gmem_.snapshot();
  snap.l2 = l2_.snapshot();
  snap.sms.reserve(sms_.size());
  for (const auto& sm : sms_) snap.sms.push_back(sm->snapshot());
  return snap;
}

void Gpu::restore(const GpuSnapshot& snap, std::span<const LaunchRecord> golden_launches) {
  if (snap.sms.size() != sms_.size() || snap.launch_count > golden_launches.size()) {
    throw std::invalid_argument("snapshot does not match this GPU's configuration");
  }
  cycle_ = snap.cycle;
  gp_total_ = snap.gp_total;
  ld_total_ = snap.ld_total;
  gmem_.restore(snap.gmem);
  l2_.restore(snap.l2);
  for (std::size_t i = 0; i < sms_.size(); ++i) sms_[i]->restore(snap.sms[i]);
  launches_.assign(golden_launches.begin(),
                   golden_launches.begin() + static_cast<std::ptrdiff_t>(snap.launch_count));
  dram_.reset_traffic();
  hook_ = nullptr;
  func_plan_.reset();
  fork_observer_ = nullptr;
  paused_.reset();
}

void Gpu::reset() {
  cycle_ = 0;
  gp_total_ = 0;
  ld_total_ = 0;
  gmem_.reset();
  l2_.reset();
  for (auto& sm : sms_) sm->reset();
  launches_.clear();
  budgets_.clear();
  overflow_budget_ = 0;
  dram_.reset_traffic();
  hook_ = nullptr;
  ckpt_sink_ = nullptr;
  residue_sink_ = nullptr;
  func_plan_.reset();
  fork_observer_ = nullptr;
  paused_.reset();
}

std::uint64_t Gpu::arch_mem_hash() {
  // FNV-1a over the allocated architectural image, read through the L2 so a
  // dirty resident line contributes its current (freshest) bytes. With an
  // empty L2 (functional region) this degenerates to a raw memory hash —
  // the same bytes, which is exactly the equivalence being fingerprinted.
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  std::uint8_t buf[256];
  const std::uint64_t top = gmem_.allocated_top();
  for (std::uint64_t addr = GlobalMemory::kBase; addr < top; addr += sizeof(buf)) {
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(sizeof(buf), top - addr));
    l2_.peek(addr, {buf, n});
    for (std::size_t i = 0; i < n; ++i) {
      h = (h ^ buf[i]) * kPrime;
    }
  }
  return h;
}

void Gpu::set_functional_plan(FunctionalPlan plan) {
  if (plan.residue == nullptr) {
    throw std::logic_error("functional plan needs the handoff boundary residue");
  }
  if (plan.residue->sms.size() != sms_.size()) {
    throw std::logic_error("functional plan residue lacks per-SM boundary state");
  }
  if (plan.handoff_launch <= launches_.size() ||
      plan.golden.size() < plan.handoff_launch) {
    throw std::logic_error("functional plan handoff is not ahead of the resume point");
  }
  // The functional backend reads and writes global memory directly, so the
  // architectural bytes held in dirty L2 lines must reach memory first. The
  // flush also invalidates, which keeps host memcpys during the functional
  // region coherent (they pass straight through to memory).
  l2_.flush();
  dram_.reset_traffic();
  func_plan_ = std::move(plan);
}

void Gpu::complete_handoff() {
  const FunctionalPlan& plan = *func_plan_;
  if (plan.validate && arch_mem_hash() != plan.residue->mem_hash) {
    throw std::logic_error(
        "functional prefix diverged from the golden memory image at the handoff");
  }
  l2_.restore(plan.residue->l2);
  // Re-install each SM's golden boundary state. The functional prefix never
  // touched the SMs, so their arrays still hold resume-checkpoint-era
  // residuals; the timing suffix must instead see the residuals (stale RF
  // and SMEM cells of drained CTAs, cumulative L1 stats, LRU clocks) the
  // pure-timing path would have left — an injected fault can expose them.
  for (std::size_t i = 0; i < sms_.size(); ++i) {
    sms_[i]->restore(plan.residue->sms[i]);
  }
  dram_.reset_traffic();
  // The device now holds the deterministic end state of the fault-free
  // prefix (no fault has fired yet: hooks stay disarmed through the
  // functional region and the trigger lies at/after this boundary), so the
  // snapshot is reusable by any sample handing off here.
  if (plan.on_handoff) plan.on_handoff(snapshot());
  func_plan_.reset();
  static telemetry::Counter& handoffs = telemetry::counter("sim.backend_handoffs");
  handoffs.add();
}

LaunchResult Gpu::launch_functional(LaunchContext& ctx) {
  const std::size_t index = launches_.size();
  // Distinct span so traces show the cheap prefix phase (ISSUE 6's
  // functional_prefix phase span); launch ordinal in the numeric arg.
  const trace::Span span("sim.functional_prefix", "sim", "launch", index);
  const LaunchRecord& gold = func_plan_->golden[index];

  const std::uint64_t budget =
      index < budgets_.size()
          ? budgets_[index]
          : (overflow_budget_ != 0 ? overflow_budget_ : config_.default_watchdog_cycles);

  FunctionalBackend backend(config_, gmem_, cycle_);
  LaunchRecord scratch;
  ctx.hook = nullptr;  // faults never arm inside the fault-free prefix
  backend.run_launch(ctx, scratch, cycle_ + budget);

  // Adopt the golden record wholesale: the timing numbers for this launch
  // are by definition the golden ones (the prefix is fault-free), and the
  // downstream cycle→dyn-instr mapping must stay bit-identical.
  LaunchRecord record = gold;
  LaunchResult result = gold.result;
  if (ctx.trap != TrapKind::None) {
    // Cannot happen for a golden-verified prefix; reachable only by direct
    // misuse/tests. Keep the golden window so counters stay monotonic, but
    // report the trap (classification must match the timing backend's DUE).
    result.trap = ctx.trap;
    record.result = result;
  }
  cycle_ = gold.end_cycle;
  gp_total_ = gold.gp_end;
  ld_total_ = gold.ld_end;
  launches_.push_back(std::move(record));

  {
    using telemetry::Counter;
    static Counter& launches = telemetry::counter("sim.functional_launches");
    static Counter& skipped = telemetry::counter("sim.functional_cycles_skipped");
    static Counter& instrs = telemetry::counter("sim.functional_warp_instrs");
    launches.add();
    skipped.add(gold.cycles());
    instrs.add(backend.warp_instrs());
  }
  return result;
}

LaunchResult Gpu::launch(const isa::Kernel& kernel, Dim3 grid, Dim3 block,
                         std::vector<std::uint32_t> params) {
  LaunchContext ctx;
  ctx.kernel = &kernel;
  ctx.grid = grid;
  ctx.block = block;
  ctx.params = std::move(params);
  ctx.threads_per_cta = block.x * block.y;
  ctx.warps_per_cta = static_cast<std::uint32_t>(
      ceil_div(ctx.threads_per_cta, config_.warp_size));
  ctx.regs_per_thread = std::max<std::uint8_t>(kernel.num_regs, 1);
  ctx.hook = hook_;

  if (ctx.threads_per_cta == 0 || grid.count() == 0) {
    throw std::invalid_argument("empty launch");
  }
  if (ctx.warps_per_cta > config_.max_warps_per_sm ||
      ctx.warps_per_cta * config_.warp_size * ctx.regs_per_thread > config_.regs_per_sm ||
      kernel.smem_bytes > config_.smem_bytes_per_sm) {
    throw std::invalid_argument("kernel '" + kernel.name + "' does not fit on an SM");
  }

  // Functional fast-forward: prefix launches run on the cheap backend; the
  // first launch at/after the handoff re-warms the timing state first.
  if (func_plan_.has_value()) {
    if (launches_.size() < func_plan_->handoff_launch) {
      return launch_functional(ctx);
    }
    complete_handoff();
  }

  // Batched execution: the armed observer watches this launch for fork
  // triggers (prefix launches above never reach here with its ordinal).
  if (fork_observer_ != nullptr && launches_.size() == fork_observer_launch_) {
    ctx.observer = fork_observer_;
  }

  // Static span name, launch ordinal in the arg: kernel names are dynamic
  // strings the trace hot path cannot hold (see trace.h conventions).
  const trace::Span span("sim.launch", "sim", "launch", launches_.size());

  // Golden runs checkpoint the pre-launch state at each kernel's first
  // launch; campaigns later restore it to skip re-simulating the prefix.
  if (ckpt_sink_ != nullptr && !ckpt_sink_->has_kernel(kernel.name)) {
    ckpt_sink_->add(kernel.name, launches_.size(), snapshot());
  }
  // Golden runs also record the boundary residue at every launch so functional
  // samples can hand off to the timing backend at any launch.
  if (residue_sink_ != nullptr) {
    BoundaryResidue residue;
    residue.l2 = l2_.snapshot();
    residue.sms.reserve(sms_.size());
    for (const auto& sm : sms_) residue.sms.push_back(sm->snapshot());
    residue.mem_hash = arch_mem_hash();
    residue_sink_->add(launches_.size(), std::move(residue));
  }

  LaunchRecord record;
  record.kernel = kernel.name;
  record.grid = grid;
  record.block = block;
  record.start_cycle = cycle_;
  record.threads = grid.count() * ctx.threads_per_cta;
  record.regs_per_thread = ctx.regs_per_thread;
  record.smem_per_cta = kernel.smem_bytes;
  record.gp_begin = gp_total_;
  record.ld_begin = ld_total_;

  SimStats stats;
  ctx.stats = &stats;

  // Cache counters accumulate inside the cache objects; snapshot them so the
  // launch record carries per-launch deltas.
  CacheBaselines baselines;
  for (const auto& sm : sms_) {
    baselines.l1d += sm->l1d().stats();
    baselines.l1t += sm->l1t().stats();
  }
  baselines.l2 = l2_.stats();

  const std::uint64_t budget =
      launches_.size() < budgets_.size()
          ? budgets_[launches_.size()]
          : (overflow_budget_ != 0 ? overflow_budget_ : config_.default_watchdog_cycles);
  const std::uint64_t deadline = cycle_ + budget;

  // The per-cycle loop lives in TimingBackend (the seam the functional
  // backend plugs into); it advances cycle_ and the SMs in place and reports
  // any trap — including the watchdog — through ctx.trap.
  TimingBackend backend(*this);
  backend.run_launch(ctx, record, deadline);
  if (ctx.trap == TrapKind::Paused) {
    return pause_launch(ctx, record, stats, baselines, deadline);
  }
  return finish_timing_launch(ctx, record, stats, baselines);
}

LaunchResult Gpu::pause_launch(LaunchContext& ctx, LaunchRecord& record,
                               SimStats& stats, const CacheBaselines& baselines,
                               std::uint64_t deadline) {
  // Suspended by the fork observer: keep the mid-launch device state exactly
  // as the loop left it — no abort, no L1 flush, no record push — and stash
  // everything resume_launch needs to continue bit-identically.
  LaunchProgress progress;
  progress.kernel = ctx.kernel;
  progress.params = std::move(ctx.params);
  progress.next_cta = ctx.next_cta;
  progress.record = std::move(record);
  progress.stats = stats;
  progress.baselines = baselines;
  progress.deadline = deadline;
  paused_ = std::move(progress);
  LaunchResult result;
  result.trap = TrapKind::Paused;
  return result;
}

LaunchResult Gpu::resume_launch(const LaunchProgress& progress) {
  LaunchContext ctx;
  ctx.kernel = progress.kernel;
  ctx.grid = progress.record.grid;
  ctx.block = progress.record.block;
  ctx.params = progress.params;
  ctx.threads_per_cta = ctx.block.x * ctx.block.y;
  ctx.warps_per_cta = static_cast<std::uint32_t>(
      ceil_div(ctx.threads_per_cta, config_.warp_size));
  ctx.regs_per_thread = std::max<std::uint8_t>(progress.kernel->num_regs, 1);
  ctx.hook = hook_;
  ctx.next_cta = progress.next_cta;
  if (fork_observer_ != nullptr && launches_.size() == fork_observer_launch_) {
    ctx.observer = fork_observer_;
  }

  const trace::Span span("sim.resume_launch", "sim", "launch", launches_.size());

  LaunchRecord record = progress.record;
  SimStats stats = progress.stats;
  ctx.stats = &stats;

  TimingBackend backend(*this);
  backend.resume_run(ctx, record, progress.deadline);
  if (ctx.trap == TrapKind::Paused) {
    return pause_launch(ctx, record, stats, progress.baselines, progress.deadline);
  }
  return finish_timing_launch(ctx, record, stats, progress.baselines);
}

void Gpu::restore_fork(const LaunchFork& fork,
                       std::span<const LaunchRecord> golden_launches) {
  restore(*fork.base, golden_launches);
  for (const GlobalMemory::Page& page : fork.gmem_pages) {
    gmem_.write(page.index << GlobalMemory::kPageShift, page.bytes);
  }
  if (fork.l2.has_value()) l2_.restore(*fork.l2);
  if (fork.sms.has_value()) {
    for (std::size_t i = 0; i < sms_.size(); ++i) sms_[i]->restore((*fork.sms)[i]);
  }
  cycle_ = fork.cycle;
  gp_total_ = fork.gp_total;
  ld_total_ = fork.ld_total;
  dram_.set_traffic(fork.dram_read, fork.dram_written);
}

LaunchResult Gpu::finish_timing_launch(LaunchContext& ctx, LaunchRecord& record,
                                       SimStats& stats, const CacheBaselines& baselines) {
  LaunchResult result;
  if (ctx.trap != TrapKind::None) result.trap = ctx.trap;

  // On trap/watchdog, abandon resident CTAs (the launch failed); either way
  // flush L1s at the launch boundary.
  if (result.trap != TrapKind::None) {
    for (auto& sm : sms_) sm->abort_launch();
  }
  for (auto& sm : sms_) sm->end_launch();

  stats.cycles = cycle_ - record.start_cycle;
  stats.dram_read_bytes = dram_.bytes_read();
  stats.dram_written_bytes = dram_.bytes_written();
  dram_.reset_traffic();

  CacheStats l1d_after, l1t_after;
  for (const auto& sm : sms_) {
    l1d_after += sm->l1d().stats();
    l1t_after += sm->l1t().stats();
  }
  auto delta = [](const CacheStats& after, const CacheStats& before) {
    CacheStats d;
    d.accesses = after.accesses - before.accesses;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.pending_hits = after.pending_hits - before.pending_hits;
    d.reservation_fails = after.reservation_fails - before.reservation_fails;
    d.writebacks = after.writebacks - before.writebacks;
    d.fills = after.fills - before.fills;
    return d;
  };
  stats.l1d = delta(l1d_after, baselines.l1d);
  stats.l1t = delta(l1t_after, baselines.l1t);
  stats.l2 = delta(l2_.stats(), baselines.l2);

  gp_total_ += stats.gp_thread_instrs;
  ld_total_ += stats.ld_thread_instrs;

  // One telemetry update per launch (never per cycle); function-local
  // statics skip the registry lookup on the hot path.
  {
    using telemetry::Counter;
    static Counter& launches = telemetry::counter("sim.launches");
    static Counter& cycles = telemetry::counter("sim.cycles");
    static Counter& warp_instrs = telemetry::counter("sim.warp_instrs");
    static Counter& l1d_accesses = telemetry::counter("sim.l1d.accesses");
    static Counter& l1d_misses = telemetry::counter("sim.l1d.misses");
    static Counter& l2_accesses = telemetry::counter("sim.l2.accesses");
    static Counter& l2_misses = telemetry::counter("sim.l2.misses");
    static Counter& dram_read = telemetry::counter("sim.dram.read_bytes");
    static Counter& dram_written = telemetry::counter("sim.dram.written_bytes");
    static Counter& watchdog = telemetry::counter("sim.watchdog_trips");
    launches.add();
    cycles.add(stats.cycles);
    warp_instrs.add(stats.warp_instrs);
    l1d_accesses.add(stats.l1d.accesses);
    l1d_misses.add(stats.l1d.misses);
    l2_accesses.add(stats.l2.accesses);
    l2_misses.add(stats.l2.misses);
    dram_read.add(stats.dram_read_bytes);
    dram_written.add(stats.dram_written_bytes);
    if (result.trap == TrapKind::Watchdog) watchdog.add();
  }

  result.cycles = stats.cycles;
  result.instructions = stats.warp_instrs;
  record.end_cycle = cycle_;
  record.gp_end = gp_total_;
  record.ld_end = ld_total_;
  record.stats = stats;
  record.result = result;
  launches_.push_back(std::move(record));
  return result;
}

}  // namespace gras::sim
