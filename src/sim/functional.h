// Fast functional execution backend (DESIGN.md §11).
//
// Interprets one kernel launch at architectural level only: general-purpose
// registers, predicates, the SIMT divergence stack, shared memory and
// global-memory effects — no cache model, no scoreboard, no per-cycle
// scheduling. A direct-threaded dispatch loop (computed goto over the
// mini-ISA opcodes, the compact-bytecode-interpreter idiom) executes each
// warp in long uninterrupted runs instead of one instruction per simulated
// cycle, which is where the order-of-magnitude speedup over the timing
// backend comes from.
//
// Execution model and its equivalence contract:
//  * CTAs run sequentially in row-major grid order; within a CTA, each warp
//    runs until it blocks at a barrier, exits, or traps. For the fault-free,
//    data-race-free launches this backend is given (golden-verified prefix
//    launches), any schedule computes the same architectural memory image,
//    so the interleaving freedom is unobservable.
//  * Registers and shared memory are fresh zeroed per-CTA buffers, not the
//    physical arrays: well-formed kernels never read a register or shared
//    word before writing it, so the stale-data difference from the timing
//    backend's physical allocator is unobservable too. Faults are never
//    injected while this backend runs (the injector arms at the handoff).
//  * Global memory is read and written directly (architecturally current
//    values); the caller is responsible for flushing the L2 into memory
//    before the first functional launch and restoring the golden L2
//    residue at the handoff (see Gpu::set_functional_plan).
//  * Traps mirror the timing backend exactly: OOB/misaligned global and
//    shared accesses, parameter OOB, invalid PCs, divergence overflow, and
//    a Watchdog when the launch exceeds its instruction budget (the cycle
//    deadline times the device's peak issue rate).
//
// Kernels whose result can depend on the timing backend's interleaving are
// not eligible: functional_safe() rejects them, and campaigns clamp the
// handoff so such launches stay on the timing backend.
#pragma once

#include "src/sim/backend.h"
#include "src/sim/config.h"
#include "src/sim/memory.h"

namespace gras::sim {

/// True when a kernel's architectural result is schedule-independent under
/// the contract above. The only offender in the mini-ISA is ATOM_ADD with a
/// consumed result (the returned old value depends on lane/warp/CTA
/// interleaving); RED_ADD and result-discarding ATOM_ADD are commutative
/// integer adds and remain safe.
bool functional_safe(const isa::Kernel& kernel);

class FunctionalBackend final : public ExecBackend {
 public:
  /// `start_cycle` is the global cycle at which the launch begins (the
  /// watchdog deadline is absolute; the instruction budget is derived from
  /// the difference).
  FunctionalBackend(const GpuConfig& config, GlobalMemory& gmem,
                    std::uint64_t start_cycle = 0)
      : config_(config), gmem_(gmem), start_cycle_(start_cycle) {}

  BackendKind kind() const noexcept override { return BackendKind::Functional; }

  /// Runs the launch architecturally. Sets ctx.trap on any trap; on success
  /// the launch's global-memory effects are applied and nothing else about
  /// the device changed. `record` is untouched (callers adopt the golden
  /// launch record). `deadline` is the same global-cycle watchdog bound the
  /// timing backend gets; it is converted into a warp-instruction budget.
  void run_launch(LaunchContext& ctx, LaunchRecord& record,
                  std::uint64_t deadline) override;

  /// Warp instructions executed by the last run_launch (tests/telemetry).
  std::uint64_t warp_instrs() const noexcept { return warp_instrs_; }

 private:
  const GpuConfig& config_;
  GlobalMemory& gmem_;
  std::uint64_t start_cycle_ = 0;
  std::uint64_t warp_instrs_ = 0;
};

}  // namespace gras::sim
