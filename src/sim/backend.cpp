#include "src/sim/backend.h"

#include <algorithm>

#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/sim/gpu.h"

namespace gras::sim {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Timing: return "timing";
    case BackendKind::Functional: return "functional";
  }
  return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  if (name == "timing") return BackendKind::Timing;
  if (name == "functional") return BackendKind::Functional;
  return std::nullopt;
}

void TimingBackend::run_launch(LaunchContext& ctx, LaunchRecord& record,
                               std::uint64_t deadline) {
  run_loop(ctx, record, deadline, /*resumed=*/false);
}

void TimingBackend::resume_run(LaunchContext& ctx, LaunchRecord& record,
                               std::uint64_t deadline) {
  run_loop(ctx, record, deadline, /*resumed=*/true);
}

void TimingBackend::run_loop(LaunchContext& ctx, LaunchRecord& record,
                             std::uint64_t deadline, bool resumed) {
  Gpu& gpu = gpu_;
  SimStats& stats = *ctx.stats;
  const std::uint64_t total_ctas = ctx.grid.count();
  // CTA distribution progress lives in the context so a paused launch can
  // resume exactly where it left off.
  std::uint64_t& next_cta = ctx.next_cta;

  auto all_idle = [&] {
    for (const auto& sm : gpu.sms_) {
      if (sm->busy()) return false;
    }
    return true;
  };

  // Idle fast-forward: jump to the next cycle at which any warp becomes
  // ready, bounded by pending fault triggers, observer stops, and the
  // deadline. State-derived and untouched mid-idle, so splitting one jump
  // into legs (as an observer pause does) lands on the same cycles and
  // accumulates the same residency stats.
  auto fast_forward = [&](std::uint64_t resident) {
    std::uint64_t next_event = ~std::uint64_t{0};
    for (const auto& sm : gpu.sms_) {
      next_event = std::min(next_event, sm->next_ready_cycle());
    }
    if (ctx.hook != nullptr) next_event = std::min(next_event, ctx.hook->next_trigger());
    if (ctx.observer != nullptr) next_event = std::min(next_event, ctx.observer->next_stop());
    // No runnable warp at any future cycle means every resident warp is
    // stuck at a barrier (fault-induced deadlock): jump to the watchdog.
    next_event = std::min(next_event, deadline + 1);
    if (next_event > gpu.cycle_ + 1) {
      const std::uint64_t skipped = next_event - gpu.cycle_ - 1;
      stats.warp_residency += skipped * resident;
      stats.sm_cycles += skipped * gpu.config_.num_sms;
      gpu.cycle_ = next_event - 1;
    }
  };

  if (resumed) {
    // A pause lands mid-jump when the suspended observer bounded the idle
    // fast-forward at its trigger (ForkTriggerKind::Cycle). Complete the
    // jump under the *current* bounds (lane hook, re-armed observer) before
    // simulating a cycle, so cycles the unpaused loop skips — where pending
    // CTAs would be placed early — stay unsimulated. For index-kind pauses
    // and pauses at naturally-stepped cycles this recomputes a zero-length
    // jump and is a no-op.
    std::uint64_t resident = 0;
    for (const auto& sm : gpu.sms_) resident += sm->resident_warp_count();
    fast_forward(resident);
  }

  while (next_cta < total_ctas || !all_idle()) {
    // Fork-point check before the counter advances: a pause leaves the
    // device at the end of cycle_, and the resumed loop re-enters here.
    if (ctx.observer != nullptr &&
        !ctx.observer->before_cycle(gpu, ctx, record, gpu.cycle_ + 1)) {
      ctx.trap = TrapKind::Paused;
      break;
    }
    ++gpu.cycle_;
    if (gpu.cycle_ > deadline) {
      ctx.trap = TrapKind::Watchdog;
      break;
    }
    if (ctx.hook != nullptr) ctx.hook->on_cycle(gpu, gpu.cycle_);

    // Distribute pending CTAs to SMs with room (row-major CTA order).
    for (std::uint32_t s = 0; s < gpu.config_.num_sms && next_cta < total_ctas; ++s) {
      while (next_cta < total_ctas && gpu.sms_[s]->free_cta_slots() > 0) {
        const std::uint32_t cx = static_cast<std::uint32_t>(next_cta % ctx.grid.x);
        const std::uint32_t cy =
            static_cast<std::uint32_t>((next_cta / ctx.grid.x) % ctx.grid.y);
        const std::uint32_t cz = static_cast<std::uint32_t>(
            next_cta / (std::uint64_t{ctx.grid.x} * ctx.grid.y));
        if (!gpu.sms_[s]->try_launch_cta(ctx, cx, cy, cz)) break;
        ++next_cta;
      }
    }

    std::uint64_t resident = 0;
    std::uint32_t resident_ctas = 0;
    for (const auto& sm : gpu.sms_) {
      resident += sm->resident_warp_count();
      resident_ctas += sm->active_cta_count();
    }
    stats.warp_residency += resident;
    stats.sm_cycles += gpu.config_.num_sms;
    // Residency only grows at the placement loop above, so sampling right
    // after it captures the true per-launch peak.
    record.peak_resident_ctas = std::max(record.peak_resident_ctas, resident_ctas);

    for (auto& sm : gpu.sms_) {
      sm->step(ctx, gpu.cycle_);
      if (ctx.trap != TrapKind::None) break;
    }
    if (ctx.trap != TrapKind::None) break;

    // CTA placement above only changes state right after a CTA retires,
    // which happens inside step(), so skipping idle cycles is safe.
    if (next_cta >= total_ctas && all_idle()) break;  // launch complete
    fast_forward(resident);
  }
}

// ------------------------------------------------------------- Batched ----

BatchedBackend::BatchedBackend(Gpu& gpu, ForkTriggerKind kind,
                               std::size_t launch_index)
    : gpu_(gpu),
      kind_(kind),
      launch_index_(launch_index),
      slack_(std::uint64_t{gpu.config().num_sms} * gpu.config().warp_size) {}

void BatchedBackend::arm(std::uint64_t trigger) {
  trigger_ = trigger;
  gpu_.set_fork_observer(this, launch_index_);
}

void BatchedBackend::disarm() { gpu_.set_fork_observer(nullptr, 0); }

bool BatchedBackend::paused() const noexcept {
  return gpu_.paused_launch().has_value();
}

bool BatchedBackend::before_cycle(Gpu& gpu, const LaunchContext& ctx,
                                  const LaunchRecord& record,
                                  std::uint64_t next_cycle) {
  (void)gpu;
  switch (kind_) {
    case ForkTriggerKind::Cycle:
      // Pause with cycle_ == trigger - 1: the resumed lane's first iteration
      // advances to the trigger cycle and fires its hook there, exactly as
      // an unbatched run would.
      return next_cycle < trigger_;
    case ForkTriggerKind::GpIndex:
      // Conservative: one iteration retires at most slack_ thread instrs
      // (one warp instruction per SM), so pausing while count + slack_ may
      // reach the trigger guarantees count <= trigger at the pause — the
      // lane itself re-simulates the instructions up to and past it. The
      // final loop iteration of a completing launch satisfies this test
      // whenever the trigger lies inside the launch, so a pause always
      // happens before completion for in-window triggers.
      return record.gp_begin + ctx.stats->gp_thread_instrs + slack_ <= trigger_;
    case ForkTriggerKind::LdIndex:
      return record.ld_begin + ctx.stats->ld_thread_instrs + slack_ <= trigger_;
  }
  return true;
}

std::uint64_t BatchedBackend::next_stop() const {
  // Instruction counters freeze across idle fast-forwards, so only the
  // cycle-triggered kind has to bound the jump.
  return kind_ == ForkTriggerKind::Cycle ? trigger_ : ~std::uint64_t{0};
}

LaunchFork BatchedBackend::capture_fork() {
  const trace::Span span("batch.fork", "campaign", "launch", launch_index_);
  LaunchFork fork;
  fork.progress = *gpu_.paused_launch();
  if (base_ == nullptr) {
    // First lane: its pause point becomes the batch's shared base image;
    // subsequent forks record copy-on-write deltas against it.
    base_ = std::make_shared<const GpuSnapshot>(gpu_.snapshot());
    gpu_.gmem().clear_dirty();
  } else {
    fork.gmem_pages = gpu_.gmem().collect_dirty_pages();
    fork.l2 = gpu_.l2().snapshot();
    std::vector<Sm::Snapshot> sms;
    sms.reserve(gpu_.num_sms());
    for (std::uint32_t i = 0; i < gpu_.num_sms(); ++i) {
      sms.push_back(gpu_.sm(i).snapshot());
    }
    fork.sms = std::move(sms);
  }
  fork.base = base_;
  fork.cycle = gpu_.cycle();
  fork.gp_total = gpu_.gp_total();
  fork.ld_total = gpu_.ld_total();
  fork.dram_read = gpu_.dram().bytes_read();
  fork.dram_written = gpu_.dram().bytes_written();
  static telemetry::Counter& forks = telemetry::counter("batch.forks");
  forks.add();
  return fork;
}

bool BatchedBackend::continue_to(std::uint64_t trigger) {
  trigger_ = trigger;
  // Copy out the progress: resume_launch overwrites paused_ when it pauses
  // again. Equal/stale triggers re-pause immediately with zero progress.
  const LaunchProgress progress = *gpu_.paused_launch();
  const LaunchResult result = gpu_.resume_launch(progress);
  return result.trap == TrapKind::Paused;
}

}  // namespace gras::sim
