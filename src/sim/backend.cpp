#include "src/sim/backend.h"

#include <algorithm>

#include "src/sim/gpu.h"

namespace gras::sim {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Timing: return "timing";
    case BackendKind::Functional: return "functional";
  }
  return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  if (name == "timing") return BackendKind::Timing;
  if (name == "functional") return BackendKind::Functional;
  return std::nullopt;
}

void TimingBackend::run_launch(LaunchContext& ctx, LaunchRecord& record,
                               std::uint64_t deadline) {
  Gpu& gpu = gpu_;
  SimStats& stats = *ctx.stats;
  const std::uint64_t total_ctas = ctx.grid.count();
  std::uint64_t next_cta = 0;

  auto all_idle = [&] {
    for (const auto& sm : gpu.sms_) {
      if (sm->busy()) return false;
    }
    return true;
  };

  while (next_cta < total_ctas || !all_idle()) {
    ++gpu.cycle_;
    if (gpu.cycle_ > deadline) {
      ctx.trap = TrapKind::Watchdog;
      break;
    }
    if (ctx.hook != nullptr) ctx.hook->on_cycle(gpu, gpu.cycle_);

    // Distribute pending CTAs to SMs with room (row-major CTA order).
    for (std::uint32_t s = 0; s < gpu.config_.num_sms && next_cta < total_ctas; ++s) {
      while (next_cta < total_ctas && gpu.sms_[s]->free_cta_slots() > 0) {
        const std::uint32_t cx = static_cast<std::uint32_t>(next_cta % ctx.grid.x);
        const std::uint32_t cy =
            static_cast<std::uint32_t>((next_cta / ctx.grid.x) % ctx.grid.y);
        const std::uint32_t cz = static_cast<std::uint32_t>(
            next_cta / (std::uint64_t{ctx.grid.x} * ctx.grid.y));
        if (!gpu.sms_[s]->try_launch_cta(ctx, cx, cy, cz)) break;
        ++next_cta;
      }
    }

    std::uint64_t resident = 0;
    std::uint32_t resident_ctas = 0;
    for (const auto& sm : gpu.sms_) {
      resident += sm->resident_warp_count();
      resident_ctas += sm->active_cta_count();
    }
    stats.warp_residency += resident;
    stats.sm_cycles += gpu.config_.num_sms;
    // Residency only grows at the placement loop above, so sampling right
    // after it captures the true per-launch peak.
    record.peak_resident_ctas = std::max(record.peak_resident_ctas, resident_ctas);

    for (auto& sm : gpu.sms_) {
      sm->step(ctx, gpu.cycle_);
      if (ctx.trap != TrapKind::None) break;
    }
    if (ctx.trap != TrapKind::None) break;

    // Fast-forward over idle stretches: jump to the next cycle at which any
    // warp becomes ready (bounded by pending fault triggers and the
    // deadline). CTA placement above only changes state right after a CTA
    // retires, which happens inside step(), so skipping is safe.
    if (next_cta >= total_ctas && all_idle()) break;  // launch complete

    std::uint64_t next_event = ~std::uint64_t{0};
    for (const auto& sm : gpu.sms_) {
      next_event = std::min(next_event, sm->next_ready_cycle());
    }
    if (ctx.hook != nullptr) next_event = std::min(next_event, ctx.hook->next_trigger());
    // No runnable warp at any future cycle means every resident warp is
    // stuck at a barrier (fault-induced deadlock): jump to the watchdog.
    next_event = std::min(next_event, deadline + 1);
    if (next_event > gpu.cycle_ + 1) {
      const std::uint64_t skipped = next_event - gpu.cycle_ - 1;
      stats.warp_residency += skipped * resident;
      stats.sm_cycles += skipped * gpu.config_.num_sms;
      gpu.cycle_ = next_event - 1;
    }
  }
}

}  // namespace gras::sim
