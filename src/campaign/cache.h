// File-backed memoization of campaign results.
//
// The bench harnesses regenerate 13 paper tables/figures from overlapping
// campaign sets (e.g. Fig. 1, Fig. 2, Fig. 4 and Table I all consume the
// same per-kernel sweeps). Campaigns are deterministic in
// (app, kernel, target, samples, seed, config), so their outcome histograms
// can be cached on disk and shared across bench binaries.
//
// Cache directory: $GRAS_CACHE, defaulting to ".gras_cache" under the
// current working directory. Delete the directory to force re-runs.
#pragma once

#include "src/campaign/campaign.h"

namespace gras::campaign {

/// Runs a campaign through the cache: returns the stored result when the
/// exact (app-name, spec, config-name) tuple has been run before, otherwise
/// runs it and stores the outcome.
CampaignResult cached_campaign(const workloads::App& app, const sim::GpuConfig& config,
                               const GoldenRun& golden, const CampaignSpec& spec,
                               ThreadPool& pool);

/// Cached variant of run_kernel_sweep.
KernelCampaigns cached_kernel_sweep(const workloads::App& app,
                                    const sim::GpuConfig& config,
                                    const GoldenRun& golden, const std::string& kernel,
                                    std::span<const Target> targets,
                                    std::uint64_t samples, std::uint64_t seed,
                                    ThreadPool& pool);

}  // namespace gras::campaign
