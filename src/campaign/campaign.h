// Statistical fault-injection campaign engine.
//
// One campaign = (application, target kernel, injection target, N samples).
// Each sample is an independent simulation with exactly one single-bit fault
// (paper §II-A: 3,000 samples give 99% CIs of about +/-2.35 points; the
// sample count here is configurable and every consumer reports the achieved
// margin). Samples derive their randomness from (seed, sample index), so
// results are bit-reproducible for any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/fi/fault.h"
#include "src/sim/config.h"
#include "src/sim/gpu.h"
#include "src/workloads/workload.h"

namespace gras::campaign {

/// Memoized functional-prefix results, keyed by handoff boundary. The
/// prefix is deterministic: every sample that resumes at a kernel's
/// checkpoint and hands off at boundary `b` computes the same device state,
/// so the first sample through a given boundary snapshots the result (via
/// sim::FunctionalPlan::on_handoff) and later samples — on any worker
/// thread — restore it directly, skipping even the functional
/// interpretation. Entries are immutable once inserted and never evicted,
/// so returned pointers stay valid for the bundle's lifetime; the methods
/// are const (internally synchronized) because samples share the bundle
/// through a shared_ptr-to-const.
class PrefixCache {
 public:
  /// Snapshot at handoff boundary `handoff`, or nullptr if no sample has
  /// filled it yet.
  const sim::GpuSnapshot* find(std::size_t handoff) const;
  /// Publishes the prefix end state for `handoff`; concurrent duplicate
  /// inserts (two samples racing through the same cold boundary) keep the
  /// first — the snapshots are identical by determinism.
  void insert(std::size_t handoff, sim::GpuSnapshot snapshot) const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  mutable std::map<std::size_t, std::unique_ptr<const sim::GpuSnapshot>> by_handoff_;
};

/// Launch-boundary checkpoints of a golden run: one device-state snapshot
/// per distinct kernel (preceding its first launch) plus the host trace
/// needed to fast-forward the host loop over the checkpointed prefix, plus
/// the per-boundary residues the functional backend needs to hand a
/// sample back to the timing core mid-replay (sim::ResidueStore) and the
/// cross-sample cache of functional-prefix end states.
struct GoldenCheckpoints {
  workloads::HostTrace trace;
  sim::CheckpointStore store;
  sim::ResidueStore residues;
  PrefixCache prefixes;
};

/// Fault-free reference execution: outputs, per-launch records, and the
/// watchdog budgets derived from them (10x golden cycles per launch).
struct GoldenRun {
  workloads::RunOutput output;
  std::vector<sim::LaunchRecord> launches;
  std::uint64_t total_cycles = 0;
  std::vector<std::uint64_t> budgets;
  std::uint64_t overflow_budget = 0;
  /// Null when checkpointing is disabled (GRAS_NO_CHECKPOINT). Shared:
  /// GoldenRun stays cheaply copyable and thousands of concurrent samples
  /// read the snapshots without duplicating them.
  std::shared_ptr<const GoldenCheckpoints> checkpoints;

  /// Launch indices of a kernel; empty if the kernel never ran.
  const std::vector<std::size_t>& launches_of(const std::string& kernel) const;
  /// Total golden cycles of a kernel across its launches.
  std::uint64_t kernel_cycles(const std::string& kernel) const;
  /// Total GPR-writing (or load) thread instructions of a kernel.
  std::uint64_t kernel_gp_instrs(const std::string& kernel) const;
  std::uint64_t kernel_ld_instrs(const std::string& kernel) const;
  /// Aggregated golden SimStats of a kernel.
  sim::SimStats kernel_stats(const std::string& kernel) const;
  /// Kernel names in first-launch order.
  const std::vector<std::string>& kernel_names() const;
  /// Builds the per-kernel launch index (called by run_golden; call it
  /// yourself only on hand-assembled GoldenRuns).
  void build_index();

 private:
  /// kernel -> launch indices, precomputed so per-sample lookups are O(1)
  /// instead of a linear scan allocating a vector.
  std::unordered_map<std::string, std::vector<std::size_t>> launch_index_;
  std::vector<std::string> kernel_order_;  ///< first-launch order
};

/// Whether run_golden records launch-boundary checkpoints. FromEnv (the
/// default) records them unless GRAS_NO_CHECKPOINT is set; On/Off force the
/// choice regardless of the environment (used by A/B tests and benches).
enum class Checkpointing : std::uint8_t { FromEnv, On, Off };

/// Which execution backend a sample's fault-free prefix launches run on.
/// FromEnv (the default) follows GRAS_BACKEND ("functional" unless
/// overridden); Timing/Functional force the choice regardless of the
/// environment (A/B equivalence tests and benches). The backend never
/// changes results — campaign outcomes, fault records, and corruption
/// signatures are bit-identical either way (enforced by the
/// backend-equivalence CI smoke) — only how fast the prefix is reached.
enum class Backend : std::uint8_t { FromEnv, Timing, Functional };

/// Runs the app fault-free and collects the golden reference.
/// Throws std::runtime_error if the fault-free run does not complete.
GoldenRun run_golden(const workloads::App& app, const sim::GpuConfig& config,
                     Checkpointing mode = Checkpointing::FromEnv);

/// What a campaign injects into.
enum class Target : std::uint8_t {
  RF, SMEM, L1D, L1T, L2,   // microarchitecture level (gpuFI-4 / AVF)
  Svf,                      // software level, destination registers (NVBitFI)
  SvfLd,                    // software level, load destinations only
  SvfSrcOnce,               // extension: transient source-operand corruption
  SvfSrcReuse,              // extension: persistent source-register corruption
};

const char* target_name(Target t);
/// Inverse of target_name; nullopt for unknown spellings.
std::optional<Target> target_from_name(std::string_view name);
bool is_microarch(Target t);
/// Every target, in declaration order (CLI help, name lookup).
inline constexpr Target kAllTargets[] = {
    Target::RF,  Target::SMEM,  Target::L1D,        Target::L1T,        Target::L2,
    Target::Svf, Target::SvfLd, Target::SvfSrcOnce, Target::SvfSrcReuse};
/// The five microarchitecture targets.
inline constexpr Target kMicroarchTargets[] = {Target::RF, Target::SMEM, Target::L1D,
                                               Target::L1T, Target::L2};

struct CampaignSpec {
  std::string kernel;        ///< target kernel name
  Target target = Target::RF;
  std::uint64_t samples = 300;
  std::uint64_t seed = 2024;
};

struct OutcomeCounts {
  std::uint64_t masked = 0, sdc = 0, timeout = 0, due = 0;
  std::uint64_t total() const { return masked + sdc + timeout + due; }
  double pct(fi::Outcome o) const;
  /// FR = Pct(SDC) + Pct(Timeout) + Pct(DUE) (paper §II-B).
  double failure_rate() const;
  OutcomeCounts& operator+=(const OutcomeCounts& o);
};

struct CampaignResult {
  CampaignSpec spec;
  OutcomeCounts counts;
  /// Masked runs whose total cycle count differed from golden: the paper's
  /// control-path-affected masked proxy (Fig. 11).
  std::uint64_t control_path_masked = 0;
  /// Samples in which a bit flip actually landed (RF/SMEM attempts can
  /// expire when nothing is allocated in the window).
  std::uint64_t injected = 0;

  /// Wilson confidence interval on the failure rate (well-defined width even
  /// at 0 or 100% failures, unlike Wald — see stats.h).
  ProportionCi fr_ci(double confidence = 0.99) const;
};

/// Runs one campaign. The app and golden run must outlive the call; both are
/// shared read-only across worker threads.
CampaignResult run_campaign(const workloads::App& app, const sim::GpuConfig& config,
                            const GoldenRun& golden, const CampaignSpec& spec,
                            ThreadPool& pool);

/// Runs one injection sample (exposed for tests): returns the outcome, the
/// faulty run's total cycles, and the fault's provenance.
struct SampleResult {
  fi::Outcome outcome;
  std::uint64_t cycles;
  bool injected;
  /// Where the fault landed (level None when the sample had no hook, e.g. an
  /// empty sampling space; width 0 when the hook never flipped anything).
  fi::FaultRecord fault;
  /// SDC anatomy: populated only for SDC outcomes (default elsewhere).
  workloads::CorruptionSignature signature;
};
/// `faulty_output`, when non-null, receives the faulty run's postprocessed
/// outputs (replay tracing); omit it on the campaign hot path.
SampleResult run_sample(const workloads::App& app, const sim::GpuConfig& config,
                        const GoldenRun& golden, const CampaignSpec& spec,
                        std::uint64_t sample_index,
                        workloads::RunOutput* faulty_output = nullptr,
                        Backend backend = Backend::FromEnv);
/// Same, but reusing `workspace` (a Gpu built with the same config) instead
/// of constructing a fresh device — the campaign hot path. The workspace is
/// restored from the resume-point checkpoint (or fully reset when the golden
/// run has no checkpoints), so results are identical either way. Under the
/// functional backend the fault-free launches between the resume checkpoint
/// and the injection launch run on the fast functional interpreter and the
/// timing core takes over at the handoff boundary (sim::FunctionalPlan);
/// outcomes are still bit-identical to pure timing.
SampleResult run_sample(const workloads::App& app, const GoldenRun& golden,
                        const CampaignSpec& spec, std::uint64_t sample_index,
                        sim::Gpu& workspace,
                        workloads::RunOutput* faulty_output = nullptr,
                        Backend backend = Backend::FromEnv);

/// Runs K samples in one simulator instance with batched lock-step execution
/// (DESIGN.md §12): samples whose faults trigger inside the same golden
/// launch share the fault-free prefix once, fork copy-on-write at each
/// sample's trigger, and finish independently. Results come back in
/// `sample_indices` order and are bit-identical to calling run_sample per
/// index (same RNG stream, same fault site, same classification); lanes that
/// cannot batch — no checkpoint, singleton groups, empty sampling space —
/// transparently fall back to run_sample.
std::vector<SampleResult> run_batched(const workloads::App& app, const GoldenRun& golden,
                                      const CampaignSpec& spec,
                                      std::span<const std::uint64_t> sample_indices,
                                      sim::Gpu& workspace,
                                      Backend backend = Backend::FromEnv);

// ---------------------------------------------------------------------------
// Two-level SDC estimation with fault-site pruning (DESIGN.md §14).
//
// For software-level destination targets (Svf / SvfLd) the sampling space is
// a fixed enumeration of dynamic destination-register writes, so the fault
// site a sample hits is a pure function of (seed, target, sample index) —
// independent of any simulation. That lets a campaign be restructured as:
// partition the site space into equivalence classes (analysis::
// build_prune_classing), execute ONE representative sample per class through
// the unchanged SampleRunner machinery, and weight each representative's
// outcome by its class population (Hari et al., arXiv 2005.01445).
// ---------------------------------------------------------------------------

/// Pruning is defined for targets whose fault site is a deterministic
/// function of the sample index alone: the software-level destination
/// spaces. Microarchitectural targets (site depends on runtime allocation)
/// and source-operand modes (site depends on the operand read stream) stay
/// brute-force.
bool prunable(Target t);

/// Size of the campaign's fault-site enumeration space (0 when the target is
/// not prunable or the kernel never writes the sampled space).
std::uint64_t site_count(const GoldenRun& golden, const CampaignSpec& spec);

/// Kernel-relative site ordinal sample `sample_index` injects into — exactly
/// the site the SoftwareInjector built by run_sample would pick, computed
/// without running anything. nullopt when the target is not prunable or the
/// space is empty (such samples report "not injected").
std::optional<std::uint64_t> sample_site(const GoldenRun& golden, const CampaignSpec& spec,
                                         std::uint64_t sample_index);

/// Partition of the fault-site space [0, total_sites) into equivalence
/// classes. Sites proven dead (written value never read before overwrite or
/// kernel end) collapse into the derated pseudo-class kDeadClass with known
/// Masked outcome; every other site belongs to exactly one live class.
/// Invariant (checked by partitions()): the class populations plus the dead
/// sites account for every site exactly once.
struct PruneClassing {
  static constexpr std::uint32_t kDeadClass = 0xffffffffu;
  std::uint64_t total_sites = 0;               ///< brute-force enumeration count
  std::vector<std::uint32_t> class_of_site;    ///< size total_sites, or kDeadClass
  std::vector<std::uint64_t> class_population; ///< site count per live class

  std::uint64_t dead_sites() const;
  std::uint64_t live_sites() const { return total_sites - dead_sites(); }
  /// True when sum(class_population) + dead_sites() == total_sites and every
  /// class id in class_of_site is in range.
  bool partitions() const;
};

/// One representative sample per covered live class, found by scanning the
/// campaign's own deterministic sample stream (indices 0, 1, 2, ...) and
/// keeping the first sample that lands in each not-yet-covered class. Using
/// real sample indices means every representative replays bit-identically
/// through run_sample / run_batched / the fabric, with no new RNG pathway.
struct PrunePlan {
  std::vector<std::uint64_t> rep_samples;  ///< ascending sample indices
  std::vector<std::uint32_t> rep_class;    ///< class of rep_samples[i]
  std::uint64_t scanned = 0;               ///< sample indices examined
  std::uint64_t covered_population = 0;    ///< sites in covered classes
};

/// Builds the representative plan. `scan_budget` bounds the index scan
/// (0 = automatic: enough to cover every class with overwhelming
/// probability); classes never hit by the scan stay uncovered and the
/// estimator treats them as unobserved population. `rep_budget`, when
/// non-zero, caps the representative count: the plan keeps the
/// largest-population classes (ties to the lower sample index), since the
/// estimator scales covered population to all live sites and dropping the
/// rarest classes costs the least coverage per representative saved.
PrunePlan plan_pruned(const PruneClassing& classing, const GoldenRun& golden,
                      const CampaignSpec& spec, std::uint64_t scan_budget = 0,
                      std::uint64_t rep_budget = 0);

/// Representative cap run_pruned / run_pruned_durable plan with: an eighth
/// of the brute-force sample budget (at least one), making the >= 5x
/// executed-sample reduction of the two-level method structural rather than
/// dependent on the kernel's class count.
inline std::uint64_t pruned_rep_budget(const CampaignSpec& spec) {
  return std::max<std::uint64_t>(1, spec.samples / 8);
}

/// Population-weighted two-level estimate. Weighted outcome masses are in
/// site units (masked_w includes the derated dead sites); the CI uses the
/// Kish effective sample size of the covered-class weights, so one
/// representative standing for a huge class honestly widens the interval.
struct PrunedEstimate {
  std::uint64_t total_sites = 0;
  std::uint64_t dead_sites = 0;
  double covered_population = 0.0;     ///< Σ population over executed classes
  double covered_population_sq = 0.0;  ///< Σ population² (Kish denominator)
  double live_fail_weight = 0.0;       ///< Σ population over failed reps
  double masked_w = 0.0, sdc_w = 0.0, timeout_w = 0.0, due_w = 0.0;

  double failure_rate() const;
  /// Weighted Wilson CI on the failure rate; degenerate inputs (no sites, no
  /// coverage) yield honest all-uncertainty or analytically-exact intervals,
  /// never NaN (see wilson_interval_real).
  ProportionCi fr_ci(double confidence = 0.99) const;
};

/// Folds the first `rep_outcomes.size()` representatives of `plan` (in plan
/// order) into a weighted estimate; a prefix gives the running estimate the
/// early-stop rule evaluates at chunk barriers.
PrunedEstimate estimate_pruned(const PruneClassing& classing, const PrunePlan& plan,
                               std::span<const fi::Outcome> rep_outcomes);

/// A pruned campaign's result: the weighted estimate plus the raw
/// (unweighted) outcomes of the executed representatives.
struct PrunedResult {
  CampaignSpec spec;
  PrunePlan plan;
  PrunedEstimate estimate;
  OutcomeCounts raw;           ///< executed representatives, unweighted
  std::uint64_t injected = 0;  ///< representatives whose flip landed
};

/// Runs the pruned campaign in-memory: plans representatives, executes each
/// through run_sample (pooled workspaces, same backend/checkpoint path as
/// run_campaign), and returns the weighted estimate. Throws
/// std::invalid_argument when the target is not prunable.
PrunedResult run_pruned(const workloads::App& app, const sim::GpuConfig& config,
                        const GoldenRun& golden, const CampaignSpec& spec,
                        const PruneClassing& classing, ThreadPool& pool);

/// All campaign results for one kernel, keyed by target.
using KernelCampaigns = std::map<Target, CampaignResult>;

/// Convenience sweep: runs campaigns for `targets` over one kernel.
KernelCampaigns run_kernel_sweep(const workloads::App& app, const sim::GpuConfig& config,
                                 const GoldenRun& golden, const std::string& kernel,
                                 std::span<const Target> targets, std::uint64_t samples,
                                 std::uint64_t seed, ThreadPool& pool);

}  // namespace gras::campaign
