#include "src/campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "src/common/env.h"
#include "src/common/metrics_registry.h"
#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/fi/injectors.h"
#include "src/sim/backend.h"
#include "src/sim/functional.h"

namespace gras::campaign {

const sim::GpuSnapshot* PrefixCache::find(std::size_t handoff) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_handoff_.find(handoff);
  return it == by_handoff_.end() ? nullptr : it->second.get();
}

void PrefixCache::insert(std::size_t handoff, sim::GpuSnapshot snapshot) const {
  auto owned = std::make_unique<const sim::GpuSnapshot>(std::move(snapshot));
  const std::lock_guard<std::mutex> lock(mu_);
  by_handoff_.try_emplace(handoff, std::move(owned));
}

std::size_t PrefixCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_handoff_.size();
}

void GoldenRun::build_index() {
  launch_index_.clear();
  kernel_order_.clear();
  for (std::size_t i = 0; i < launches.size(); ++i) {
    auto [it, inserted] = launch_index_.try_emplace(launches[i].kernel);
    if (inserted) kernel_order_.push_back(launches[i].kernel);
    it->second.push_back(i);
  }
}

const std::vector<std::size_t>& GoldenRun::launches_of(const std::string& kernel) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = launch_index_.find(kernel);
  return it == launch_index_.end() ? kEmpty : it->second;
}

std::uint64_t GoldenRun::kernel_cycles(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.cycles();
  }
  return total;
}

std::uint64_t GoldenRun::kernel_gp_instrs(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.gp_end - l.gp_begin;
  }
  return total;
}

std::uint64_t GoldenRun::kernel_ld_instrs(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.ld_end - l.ld_begin;
  }
  return total;
}

sim::SimStats GoldenRun::kernel_stats(const std::string& kernel) const {
  sim::SimStats total;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.stats;
  }
  return total;
}

const std::vector<std::string>& GoldenRun::kernel_names() const { return kernel_order_; }

GoldenRun run_golden(const workloads::App& app, const sim::GpuConfig& config,
                     Checkpointing mode) {
  const bool checkpoint =
      mode == Checkpointing::On ||
      (mode == Checkpointing::FromEnv && !env_no_checkpoint());
  sim::Gpu gpu(config);
  GoldenRun golden;
  std::shared_ptr<GoldenCheckpoints> bundle;
  if (checkpoint) {
    bundle = std::make_shared<GoldenCheckpoints>();
    gpu.set_checkpoint_sink(&bundle->store);
    gpu.set_residue_sink(&bundle->residues);
    golden.output = workloads::run_app(app, gpu, &bundle->trace);
  } else {
    golden.output = workloads::run_app(app, gpu);
  }
  if (!golden.output.completed()) {
    throw std::runtime_error("fault-free run of '" + app.name() + "' failed: " +
                             std::string(sim::trap_name(golden.output.trap)));
  }
  golden.launches = gpu.launches();
  golden.total_cycles = gpu.cycle();
  std::uint64_t max_budget = 0;
  for (const auto& l : golden.launches) {
    const std::uint64_t b = l.cycles() * 10 + 2000;
    golden.budgets.push_back(b);
    max_budget = std::max(max_budget, b);
  }
  golden.overflow_budget = max_budget;
  golden.checkpoints = std::move(bundle);
  golden.build_index();
  return golden;
}

const char* target_name(Target t) {
  switch (t) {
    case Target::RF: return "RF";
    case Target::SMEM: return "SMEM";
    case Target::L1D: return "L1D";
    case Target::L1T: return "L1T";
    case Target::L2: return "L2";
    case Target::Svf: return "SVF";
    case Target::SvfLd: return "SVF-LD";
    case Target::SvfSrcOnce: return "SVF-SRC1";
    case Target::SvfSrcReuse: return "SVF-REUSE";
  }
  return "?";
}

std::optional<Target> target_from_name(std::string_view name) {
  for (Target t : kAllTargets) {
    if (name == target_name(t)) return t;
  }
  return std::nullopt;
}

bool is_microarch(Target t) {
  switch (t) {
    case Target::RF:
    case Target::SMEM:
    case Target::L1D:
    case Target::L1T:
    case Target::L2:
      return true;
    default:
      return false;
  }
}

double OutcomeCounts::pct(fi::Outcome o) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  std::uint64_t v = 0;
  switch (o) {
    case fi::Outcome::Masked: v = masked; break;
    case fi::Outcome::SDC: v = sdc; break;
    case fi::Outcome::Timeout: v = timeout; break;
    case fi::Outcome::DUE: v = due; break;
  }
  return static_cast<double>(v) / static_cast<double>(n);
}

double OutcomeCounts::failure_rate() const {
  return pct(fi::Outcome::SDC) + pct(fi::Outcome::Timeout) + pct(fi::Outcome::DUE);
}

OutcomeCounts& OutcomeCounts::operator+=(const OutcomeCounts& o) {
  masked += o.masked;
  sdc += o.sdc;
  timeout += o.timeout;
  due += o.due;
  return *this;
}

ProportionCi CampaignResult::fr_ci(double confidence) const {
  // Wilson rather than Wald: Wald collapses to zero width when the failure
  // count is 0 or saturated (common for heavily-masked targets), which would
  // both misreport precision and stop margin-driven campaigns after the
  // first chunk. Wilson stays honest at the extremes.
  return wilson_interval(counts.sdc + counts.timeout + counts.due, counts.total(),
                         confidence);
}

namespace {

fi::Structure to_structure(Target t) {
  switch (t) {
    case Target::RF: return fi::Structure::RF;
    case Target::SMEM: return fi::Structure::SMEM;
    case Target::L1D: return fi::Structure::L1D;
    case Target::L1T: return fi::Structure::L1T;
    default: return fi::Structure::L2;
  }
}

fi::SvfMode to_mode(Target t) {
  switch (t) {
    case Target::SvfLd: return fi::SvfMode::DstLoad;
    case Target::SvfSrcOnce: return fi::SvfMode::SrcOnce;
    case Target::SvfSrcReuse: return fi::SvfMode::SrcReuse;
    default: return fi::SvfMode::Dst;
  }
}

/// The checkpoint a sample resumes from: the snapshot preceding the target
/// kernel's first launch. `snap` is null when the golden run carries no
/// checkpoints (GRAS_NO_CHECKPOINT) or the kernel never ran — the sample
/// then falls back to a full from-cycle-0 simulation.
struct ResumePoint {
  std::size_t launch = 0;
  const sim::GpuSnapshot* snap = nullptr;
};

ResumePoint find_resume(const GoldenRun& golden, const std::string& kernel) {
  ResumePoint rp;
  if (!golden.checkpoints) return rp;
  const auto& indices = golden.launches_of(kernel);
  if (indices.empty()) return rp;
  rp.launch = indices.front();
  rp.snap = golden.checkpoints->store.at(rp.launch);
  return rp;
}

/// Resolves a campaign Backend to the concrete execution backend, consulting
/// GRAS_BACKEND for FromEnv. Throws on unknown GRAS_BACKEND spellings.
sim::BackendKind resolve_backend(Backend mode) {
  switch (mode) {
    case Backend::Timing: return sim::BackendKind::Timing;
    case Backend::Functional: return sim::BackendKind::Functional;
    case Backend::FromEnv: break;
  }
  const std::string name = env_backend();
  const std::optional<sim::BackendKind> kind = sim::backend_from_name(name);
  if (!kind) {
    throw std::runtime_error("unknown GRAS_BACKEND '" + name +
                             "' (expected \"timing\" or \"functional\")");
  }
  return *kind;
}

/// Latest launch boundary in [resume_launch, inject_launch] the functional
/// backend can run to: every prefix launch's kernel must be functional_safe
/// (no old-value atomics, whose result depends on warp interleaving) and the
/// golden run must carry a boundary residue there. Returns resume_launch
/// when no functional prefix is possible — the sample then runs pure timing
/// from the checkpoint, exactly as before.
std::size_t functional_handoff(const workloads::App& app, const GoldenRun& golden,
                               std::size_t resume_launch, std::size_t inject_launch) {
  std::size_t best = resume_launch;
  for (std::size_t b = resume_launch + 1; b <= inject_launch; ++b) {
    if (!sim::functional_safe(app.kernel(golden.launches[b - 1].kernel))) break;
    if (golden.checkpoints->residues.at(b) != nullptr) best = b;
  }
  return best;
}

/// A sample's injector plus a view of its provenance record. The record
/// pointer aims into the concrete injector (which the campaign constructed),
/// so the fault site can be read back after the run without the simulator
/// layer ever knowing the fi types.
struct HookBundle {
  std::unique_ptr<sim::FaultHook> hook;
  const fi::FaultRecord* record = nullptr;
  /// First launch index the timing backend simulates live. Equals the resume
  /// launch for pure-timing samples; under the functional backend it is the
  /// functional_handoff boundary for the sampled injection launch.
  std::size_t handoff = 0;
  /// Golden launch index the fault triggers in: the batch grouping key —
  /// only samples injecting into the same launch can share a prefix.
  std::size_t inject_launch = 0;
  /// The fault's trigger in its counting space: an absolute cycle for
  /// microarch targets, a global dynamic-instruction index for SVF ones.
  /// Batched lanes advance the shared state in ascending trigger order.
  std::uint64_t trigger = 0;
  /// Non-null for SVF samples: lets a batched lane re-base the injector's
  /// dynamic-instruction counter to its fork's retired count.
  fi::SoftwareInjector* software = nullptr;

  explicit operator bool() const { return hook != nullptr; }
};

/// Builds the injector for one sample, or a null bundle when the kernel has
/// no sampling space for this target (no cycles / no instructions).
///
/// When the sample will fast-forward to `resume`, the SoftwareInjector's
/// dynamic-instruction counter starts at the gp/ld base of the launch where
/// live timing simulation begins — the resume launch, or the functional
/// handoff boundary when `functional` is set (hooks are never called during
/// functional prefix launches, so the counter must be pre-advanced past
/// them). The RNG draw sequence is identical in all three shapes (full run,
/// checkpointed timing, functional prefix) — the handoff scan consumes no
/// draws and injectors copy the Rng by value — so every sample picks the
/// same fault site regardless of backend.
HookBundle make_hook(const workloads::App& app, const GoldenRun& golden,
                     const CampaignSpec& spec, Rng& rng, const ResumePoint& resume,
                     bool functional) {
  const auto& indices = golden.launches_of(spec.kernel);
  if (indices.empty()) return {};

  if (is_microarch(spec.target)) {
    // Pick a launch weighted by its cycle span, then a cycle within it.
    // Triggers are absolute cycles; a restored Gpu resumes at the golden
    // boundary cycle (and the functional prefix adopts golden cycle counts
    // wholesale), so they line up with replay unchanged.
    std::uint64_t total = 0;
    for (std::size_t i : indices) total += golden.launches[i].cycles();
    if (total == 0) return {};
    std::uint64_t r = rng.below(total);
    for (std::size_t i : indices) {
      const auto& l = golden.launches[i];
      if (r < l.cycles()) {
        const std::size_t handoff =
            functional ? functional_handoff(app, golden, resume.launch, i)
                       : resume.launch;
        const std::uint64_t trigger = l.start_cycle + 1 + r;
        auto injector = std::make_unique<fi::MicroarchInjector>(
            to_structure(spec.target), trigger, l.end_cycle, rng,
            /*width=*/1, static_cast<std::uint32_t>(i));
        const fi::FaultRecord* record = &injector->record();
        return {std::move(injector), record, handoff, i, trigger, nullptr};
      }
      r -= l.cycles();
    }
    return {};
  }

  // Software level: pick a dynamic thread instruction of the kernel,
  // weighted across its launches, in the global counting space.
  const bool loads = spec.target == Target::SvfLd;
  std::uint64_t total = 0;
  for (std::size_t i : indices) {
    const auto& l = golden.launches[i];
    total += loads ? (l.ld_end - l.ld_begin) : (l.gp_end - l.gp_begin);
  }
  if (total == 0) return {};
  std::uint64_t r = rng.below(total);
  for (std::size_t i : indices) {
    const auto& l = golden.launches[i];
    const std::uint64_t span = loads ? (l.ld_end - l.ld_begin) : (l.gp_end - l.gp_begin);
    if (r < span) {
      const std::uint64_t global_index = (loads ? l.ld_begin : l.gp_begin) + r;
      const std::size_t handoff =
          functional ? functional_handoff(app, golden, resume.launch, i)
                     : resume.launch;
      std::uint64_t start_count = 0;
      if (resume.snap != nullptr) {
        const auto& first = golden.launches[handoff];
        start_count = loads ? first.ld_begin : first.gp_begin;
      }
      auto injector = std::make_unique<fi::SoftwareInjector>(
          to_mode(spec.target), global_index, rng, start_count,
          static_cast<std::uint32_t>(i));
      const fi::FaultRecord* record = &injector->record();
      fi::SoftwareInjector* software = injector.get();
      return {std::move(injector), record, handoff, i, global_index, software};
    }
    r -= span;
  }
  return {};
}

/// Classifies a finished faulty run: outcome, cycle count, provenance, SDC
/// anatomy. Shared by the unbatched and batched paths so both produce
/// byte-identical SampleResults.
SampleResult classify_run(const GoldenRun& golden, const HookBundle& hook,
                          sim::Gpu& workspace, workloads::RunOutput out,
                          workloads::RunOutput* faulty_output) {
  SampleResult result;
  result.cycles = workspace.cycle();
  result.injected = hook && hook.hook->injected();
  if (hook) result.fault = *hook.record;

  if (out.trap == sim::TrapKind::Watchdog) {
    const trace::Span span("classify", "phase");
    result.outcome = fi::Outcome::Timeout;
  } else if (out.trap != sim::TrapKind::None) {
    const trace::Span span("classify", "phase");
    result.outcome = fi::Outcome::DUE;
  } else {
    workloads::CorruptionSignature sig;
    {
      const trace::Span span("compare", "phase");
      sig = workloads::compare_outputs(golden.output, out);
    }
    const trace::Span span("classify", "phase");
    if (sig.mismatch()) {
      result.outcome = fi::Outcome::SDC;
      result.signature = sig;
    } else {
      result.outcome = fi::Outcome::Masked;
    }
  }
  if (faulty_output != nullptr) *faulty_output = std::move(out);
  return result;
}

}  // namespace

SampleResult run_sample(const workloads::App& app, const GoldenRun& golden,
                        const CampaignSpec& spec, std::uint64_t sample_index,
                        sim::Gpu& workspace, workloads::RunOutput* faulty_output,
                        Backend backend) {
  Rng rng = Rng::for_sample(spec.seed ^ (static_cast<std::uint64_t>(spec.target) << 40),
                            sample_index);
  const ResumePoint resume = find_resume(golden, spec.kernel);
  const bool functional = resume.snap != nullptr &&
                          resolve_backend(backend) == sim::BackendKind::Functional;
  HookBundle hook = make_hook(app, golden, spec, rng, resume, functional);

  workloads::RunOutput out;
  if (resume.snap != nullptr) {
    const sim::GpuSnapshot* start = resume.snap;
    std::size_t start_launch = resume.launch;
    bool fill_prefix_cache = false;
    if (hook && hook.handoff > resume.launch) {
      if (const sim::GpuSnapshot* memo =
              golden.checkpoints->prefixes.find(hook.handoff)) {
        // A previous sample already ran the functional prefix ending at this
        // boundary; its memoized end state replaces both the checkpoint
        // restore and the functional region.
        start = memo;
        start_launch = hook.handoff;
        static telemetry::Counter& hits =
            telemetry::counter("campaign.prefix_cache_hits");
        hits.add();
      } else {
        fill_prefix_cache = true;
      }
    }
    {
      const trace::Span span("restore", "phase");
      workspace.restore(*start, golden.launches);
    }
    workspace.set_launch_budgets(golden.budgets, golden.overflow_budget);
    if (fill_prefix_cache) {
      // Fault-free launches below the handoff run on the fast functional
      // interpreter; the timing core takes over at the handoff boundary with
      // the golden L2 residue, so everything the fault can touch is
      // bit-identical to a pure-timing replay. The end state is published
      // for every later sample handing off at the same boundary.
      sim::FunctionalPlan plan;
      plan.handoff_launch = hook.handoff;
      plan.golden = golden.launches;
      plan.residue = golden.checkpoints->residues.at(hook.handoff);
      plan.validate = env_func_validate();
      plan.on_handoff = [&golden, handoff = hook.handoff](sim::GpuSnapshot snap) {
        golden.checkpoints->prefixes.insert(handoff, std::move(snap));
        static telemetry::Counter& fills =
            telemetry::counter("campaign.prefix_cache_fills");
        fills.add();
      };
      workspace.set_functional_plan(std::move(plan));
    }
    if (hook) workspace.set_fault_hook(hook.hook.get());
    const trace::Span span("execute", "phase", "resume_launch", start_launch);
    out = workloads::replay_app(app, workspace, golden.checkpoints->trace,
                                start_launch, golden.launches);
  } else {
    {
      const trace::Span span("restore", "phase");
      workspace.reset();
    }
    workspace.set_launch_budgets(golden.budgets, golden.overflow_budget);
    if (hook) workspace.set_fault_hook(hook.hook.get());
    const trace::Span span("execute", "phase");
    out = workloads::run_app(app, workspace);
  }

  return classify_run(golden, hook, workspace, std::move(out), faulty_output);
}

SampleResult run_sample(const workloads::App& app, const sim::GpuConfig& config,
                        const GoldenRun& golden, const CampaignSpec& spec,
                        std::uint64_t sample_index, workloads::RunOutput* faulty_output,
                        Backend backend) {
  sim::Gpu gpu(config);
  return run_sample(app, golden, spec, sample_index, gpu, faulty_output, backend);
}

std::vector<SampleResult> run_batched(const workloads::App& app, const GoldenRun& golden,
                                      const CampaignSpec& spec,
                                      std::span<const std::uint64_t> sample_indices,
                                      sim::Gpu& workspace, Backend backend) {
  std::vector<SampleResult> results(sample_indices.size());
  const ResumePoint resume = find_resume(golden, spec.kernel);
  const bool functional = resume.snap != nullptr &&
                          resolve_backend(backend) == sim::BackendKind::Functional;

  // Fallback to the unbatched path; bit-identity is trivial there.
  const auto run_single = [&](std::size_t pos) {
    results[pos] = run_sample(app, golden, spec, sample_indices[pos], workspace,
                              nullptr, backend);
    static telemetry::Counter& singles = telemetry::counter("batch.singles");
    singles.add();
  };

  if (resume.snap == nullptr || sample_indices.size() < 2) {
    for (std::size_t p = 0; p < sample_indices.size(); ++p) run_single(p);
    return results;
  }

  // Batch formation: draw each sample's fault site with exactly the RNG
  // stream run_sample would use, then group by injection launch ordinal —
  // only samples pausing inside the same golden launch can share a prefix.
  struct Lane {
    std::size_t pos = 0;          ///< position in sample_indices / results
    std::uint64_t sample = 0;     ///< the sample index itself
    HookBundle hook;
  };
  std::map<std::size_t, std::vector<Lane>> groups;
  {
    const trace::Span span("batch.form", "phase", "lanes", sample_indices.size());
    for (std::size_t p = 0; p < sample_indices.size(); ++p) {
      const std::uint64_t index = sample_indices[p];
      Rng rng = Rng::for_sample(
          spec.seed ^ (static_cast<std::uint64_t>(spec.target) << 40), index);
      HookBundle hook = make_hook(app, golden, spec, rng, resume, functional);
      if (!hook) {
        run_single(p);  // empty sampling space: identical no-hook classification
        continue;
      }
      groups[hook.inject_launch].push_back({p, index, std::move(hook)});
    }
  }

  const bool loads = spec.target == Target::SvfLd;
  const sim::ForkTriggerKind kind = is_microarch(spec.target)
                                        ? sim::ForkTriggerKind::Cycle
                                    : loads ? sim::ForkTriggerKind::LdIndex
                                            : sim::ForkTriggerKind::GpIndex;

  for (auto& [inject_launch, lanes] : groups) {
    if (lanes.size() < 2) {
      for (const Lane& lane : lanes) run_single(lane.pos);
      continue;
    }
    // Ascending triggers: the shared state only ever advances forward. Ties
    // break on sample index for determinism; a tied lane's continue_to
    // re-pauses immediately with zero progress.
    std::sort(lanes.begin(), lanes.end(), [](const Lane& a, const Lane& b) {
      return a.hook.trigger != b.hook.trigger ? a.hook.trigger < b.hook.trigger
                                              : a.sample < b.sample;
    });
    static telemetry::Counter& groups_formed = telemetry::counter("batch.groups");
    groups_formed.add();
    static telemetry::Counter& lanes_batched = telemetry::counter("batch.lanes");
    lanes_batched.add(lanes.size());

    // Shared fault-free advance: one prefix replay for the whole group, with
    // the fork observer armed to pause inside the injection launch. Restore
    // logic mirrors run_sample (memoized functional prefix, cache fill).
    const std::size_t handoff = lanes.front().hook.handoff;
    const sim::GpuSnapshot* start = resume.snap;
    std::size_t start_launch = resume.launch;
    bool fill_prefix_cache = false;
    if (handoff > resume.launch) {
      if (const sim::GpuSnapshot* memo = golden.checkpoints->prefixes.find(handoff)) {
        start = memo;
        start_launch = handoff;
        static telemetry::Counter& hits =
            telemetry::counter("campaign.prefix_cache_hits");
        hits.add();
      } else {
        fill_prefix_cache = true;
      }
    }
    {
      const trace::Span span("restore", "phase");
      workspace.restore(*start, golden.launches);
    }
    workspace.set_launch_budgets(golden.budgets, golden.overflow_budget);
    if (fill_prefix_cache) {
      sim::FunctionalPlan plan;
      plan.handoff_launch = handoff;
      plan.golden = golden.launches;
      plan.residue = golden.checkpoints->residues.at(handoff);
      plan.validate = env_func_validate();
      plan.on_handoff = [&golden, handoff](sim::GpuSnapshot snap) {
        golden.checkpoints->prefixes.insert(handoff, std::move(snap));
        static telemetry::Counter& fills =
            telemetry::counter("campaign.prefix_cache_fills");
        fills.add();
      };
      workspace.set_functional_plan(std::move(plan));
    }
    sim::BatchedBackend batch(workspace, kind, inject_launch);
    batch.arm(lanes.front().hook.trigger);
    workloads::RunOutput advance;
    {
      // No fault hook here: in an unbatched run no hook fires before its
      // trigger either, so the shared prefix is the fault-free prefix.
      const trace::Span span("batch.advance", "phase", "launch", inject_launch);
      advance = workloads::replay_app(app, workspace, golden.checkpoints->trace,
                                      start_launch, golden.launches);
    }
    if (advance.trap != sim::TrapKind::Paused) {
      // The launch completed (or trapped) without reaching the first fork
      // point — should not happen for in-window triggers; fall back.
      batch.disarm();
      for (const Lane& lane : lanes) run_single(lane.pos);
      continue;
    }

    // Copy-on-write fork capture, advancing the shared state between lanes.
    std::vector<std::optional<sim::LaunchFork>> forks(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      forks[i] = batch.capture_fork();
      if (i + 1 < lanes.size() && !batch.continue_to(lanes[i + 1].hook.trigger)) {
        break;  // completed early: remaining lanes fall back to singles
      }
    }
    batch.disarm();

    // Lane retirement: each fork finishes independently with its fault hook
    // attached, classified exactly like an unbatched sample.
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      if (!forks[i].has_value()) {
        run_single(lane.pos);
        continue;
      }
      const sim::LaunchFork& fork = *forks[i];
      const trace::Span span("batch.lane", "phase", "sample", lane.sample);
      {
        const trace::Span restore_span("restore", "phase");
        workspace.restore_fork(fork, golden.launches);
      }
      workspace.set_launch_budgets(golden.budgets, golden.overflow_budget);
      if (lane.hook.software != nullptr) {
        // The ctor assumed the launch-boundary count; the fork resumes
        // mid-launch, so re-base to its retired-instruction count.
        const sim::LaunchRecord& rec = fork.progress.record;
        const sim::SimStats& st = fork.progress.stats;
        lane.hook.software->rebase_counter(loads ? rec.ld_begin + st.ld_thread_instrs
                                                 : rec.gp_begin + st.gp_thread_instrs);
      }
      workspace.set_fault_hook(lane.hook.hook.get());
      workloads::RunOutput out =
          workloads::resume_app(app, workspace, golden.checkpoints->trace,
                                inject_launch, golden.launches, fork);
      results[lane.pos] =
          classify_run(golden, lane.hook, workspace, std::move(out), nullptr);
      static telemetry::Counter& retired = telemetry::counter("batch.lanes_retired");
      retired.add();
    }
  }
  return results;
}

CampaignResult run_campaign(const workloads::App& app, const sim::GpuConfig& config,
                            const GoldenRun& golden, const CampaignSpec& spec,
                            ThreadPool& pool) {
  CampaignResult result;
  result.spec = spec;

  std::atomic<std::uint64_t> masked{0}, sdc{0}, timeout{0}, due{0};
  std::atomic<std::uint64_t> control{0}, injected{0};

  // Per-worker Gpu workspaces: restoring a checkpoint into an existing
  // device is much cheaper than constructing one per sample. The pool grows
  // to at most one Gpu per concurrently-active worker.
  std::mutex workspaces_mu;
  std::vector<std::unique_ptr<sim::Gpu>> workspaces;
  const auto acquire = [&]() -> std::unique_ptr<sim::Gpu> {
    {
      const std::lock_guard<std::mutex> lock(workspaces_mu);
      if (!workspaces.empty()) {
        auto gpu = std::move(workspaces.back());
        workspaces.pop_back();
        return gpu;
      }
    }
    return std::make_unique<sim::Gpu>(config);
  };
  const auto release = [&](std::unique_ptr<sim::Gpu> gpu) {
    const std::lock_guard<std::mutex> lock(workspaces_mu);
    workspaces.push_back(std::move(gpu));
  };

  pool.parallel_for(spec.samples, [&](std::size_t i) {
    auto gpu = acquire();
    const SampleResult s = run_sample(app, golden, spec, i, *gpu);
    release(std::move(gpu));
    switch (s.outcome) {
      case fi::Outcome::Masked:
        masked.fetch_add(1, std::memory_order_relaxed);
        if (s.cycles != golden.total_cycles) {
          control.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case fi::Outcome::SDC: sdc.fetch_add(1, std::memory_order_relaxed); break;
      case fi::Outcome::Timeout: timeout.fetch_add(1, std::memory_order_relaxed); break;
      case fi::Outcome::DUE: due.fetch_add(1, std::memory_order_relaxed); break;
    }
    if (s.injected) injected.fetch_add(1, std::memory_order_relaxed);
  });

  result.counts.masked = masked.load();
  result.counts.sdc = sdc.load();
  result.counts.timeout = timeout.load();
  result.counts.due = due.load();
  result.control_path_masked = control.load();
  result.injected = injected.load();
  return result;
}

// ---- Two-level SDC estimation with fault-site pruning (DESIGN.md §14) ----

bool prunable(Target t) { return t == Target::Svf || t == Target::SvfLd; }

std::uint64_t site_count(const GoldenRun& golden, const CampaignSpec& spec) {
  if (!prunable(spec.target)) return 0;
  return spec.target == Target::SvfLd ? golden.kernel_ld_instrs(spec.kernel)
                                      : golden.kernel_gp_instrs(spec.kernel);
}

std::optional<std::uint64_t> sample_site(const GoldenRun& golden, const CampaignSpec& spec,
                                         std::uint64_t sample_index) {
  const std::uint64_t total = site_count(golden, spec);
  if (total == 0) return std::nullopt;
  // Mirrors make_hook's software path exactly: the first draw picks the site,
  // and because launches are walked in ascending order subtracting spans, the
  // kernel-relative ordinal of the chosen site IS the raw draw.
  Rng rng = Rng::for_sample(spec.seed ^ (static_cast<std::uint64_t>(spec.target) << 40),
                            sample_index);
  return rng.below(total);
}

std::uint64_t PruneClassing::dead_sites() const {
  std::uint64_t dead = 0;
  for (const std::uint32_t c : class_of_site) {
    if (c == kDeadClass) ++dead;
  }
  return dead;
}

bool PruneClassing::partitions() const {
  if (class_of_site.size() != total_sites) return false;
  std::vector<std::uint64_t> pop(class_population.size(), 0);
  for (const std::uint32_t c : class_of_site) {
    if (c == kDeadClass) continue;
    if (c >= pop.size()) return false;
    ++pop[c];
  }
  return pop == class_population;
}

PrunePlan plan_pruned(const PruneClassing& classing, const GoldenRun& golden,
                      const CampaignSpec& spec, std::uint64_t scan_budget,
                      std::uint64_t rep_budget) {
  PrunePlan plan;
  const std::uint64_t classes = classing.class_population.size();
  if (classes == 0 || classing.total_sites == 0) return plan;
  if (scan_budget == 0) {
    // Coupon-collector bound with slack: the scan is pure RNG arithmetic
    // (no simulation), so generosity here costs microseconds.
    scan_budget = std::max<std::uint64_t>(4096, 64 * classes);
  }
  std::vector<char> covered(classes, 0);
  std::uint64_t covered_n = 0;
  for (std::uint64_t i = 0; i < scan_budget && covered_n < classes; ++i) {
    ++plan.scanned;
    const auto site = sample_site(golden, spec, i);
    if (!site) break;
    const std::uint32_t c = classing.class_of_site.at(*site);
    if (c == PruneClassing::kDeadClass || covered[c] != 0) continue;
    covered[c] = 1;
    ++covered_n;
    plan.rep_samples.push_back(i);
    plan.rep_class.push_back(c);
    plan.covered_population += classing.class_population[c];
  }
  if (rep_budget > 0 && plan.rep_samples.size() > rep_budget) {
    // Over budget: keep the representatives of the largest classes — each
    // dropped rare class costs the least covered population — then restore
    // ascending sample order so batching/journaling see a sorted plan.
    std::vector<std::size_t> order(plan.rep_samples.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const std::uint64_t pa = classing.class_population[plan.rep_class[a]];
      const std::uint64_t pb = classing.class_population[plan.rep_class[b]];
      if (pa != pb) return pa > pb;
      return plan.rep_samples[a] < plan.rep_samples[b];
    });
    order.resize(rep_budget);
    std::sort(order.begin(), order.end());
    PrunePlan kept;
    kept.scanned = plan.scanned;
    for (const std::size_t i : order) {
      kept.rep_samples.push_back(plan.rep_samples[i]);
      kept.rep_class.push_back(plan.rep_class[i]);
      kept.covered_population += classing.class_population[plan.rep_class[i]];
    }
    plan = std::move(kept);
  }
  return plan;
}

PrunedEstimate estimate_pruned(const PruneClassing& classing, const PrunePlan& plan,
                               std::span<const fi::Outcome> rep_outcomes) {
  PrunedEstimate est;
  est.total_sites = classing.total_sites;
  est.dead_sites = classing.dead_sites();
  const std::size_t n = std::min(rep_outcomes.size(), plan.rep_class.size());
  double masked_cov = 0, sdc_cov = 0, timeout_cov = 0, due_cov = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<double>(classing.class_population[plan.rep_class[i]]);
    est.covered_population += w;
    est.covered_population_sq += w * w;
    switch (rep_outcomes[i]) {
      case fi::Outcome::Masked: masked_cov += w; break;
      case fi::Outcome::SDC: sdc_cov += w; break;
      case fi::Outcome::Timeout: timeout_cov += w; break;
      case fi::Outcome::DUE: due_cov += w; break;
    }
  }
  est.live_fail_weight = sdc_cov + timeout_cov + due_cov;
  // Covered classes stand for ALL live sites: scale their weights so the
  // weighted outcome masses sum to the full site space (dead sites enter as
  // certain Masked mass, the first level of the two-level model).
  const auto live = static_cast<double>(est.total_sites - est.dead_sites);
  const double scale = est.covered_population > 0 ? live / est.covered_population : 0.0;
  est.masked_w = static_cast<double>(est.dead_sites) + masked_cov * scale;
  est.sdc_w = sdc_cov * scale;
  est.timeout_w = timeout_cov * scale;
  est.due_w = due_cov * scale;
  return est;
}

double PrunedEstimate::failure_rate() const {
  if (total_sites == 0) return 0.0;
  return (sdc_w + timeout_w + due_w) / static_cast<double>(total_sites);
}

ProportionCi PrunedEstimate::fr_ci(double confidence) const {
  if (total_sites == 0) return {0.0, 0.0, 1.0};   // empty space: no information
  const std::uint64_t live = total_sites - dead_sites;
  const auto f = static_cast<double>(live) / static_cast<double>(total_sites);
  if (live == 0) return {0.0, 0.0, 0.0};          // every site provably Masked
  if (covered_population <= 0.0) return {0.0, 0.0, f};  // nothing executed yet
  // Second level: Wilson on the covered-class failure proportion at the Kish
  // effective sample size (C² / Σw²), then scaled by the live-site fraction.
  // One representative carrying a huge class drags n_eff toward 1 and the
  // interval honestly widens.
  const double p = live_fail_weight / covered_population;
  const double n_eff = covered_population * covered_population / covered_population_sq;
  const ProportionCi inner = wilson_interval_real(p * n_eff, n_eff, confidence);
  return {inner.estimate * f, inner.lower * f, inner.upper * f};
}

PrunedResult run_pruned(const workloads::App& app, const sim::GpuConfig& config,
                        const GoldenRun& golden, const CampaignSpec& spec,
                        const PruneClassing& classing, ThreadPool& pool) {
  if (!prunable(spec.target)) {
    throw std::invalid_argument("run_pruned: target must be SVF or SVF-LD");
  }
  PrunedResult result;
  result.spec = spec;
  result.plan = plan_pruned(classing, golden, spec, 0, pruned_rep_budget(spec));
  const std::size_t reps = result.plan.rep_samples.size();
  std::vector<fi::Outcome> outcomes(reps, fi::Outcome::Masked);
  std::atomic<std::uint64_t> injected{0};

  std::mutex workspaces_mu;
  std::vector<std::unique_ptr<sim::Gpu>> workspaces;
  const auto acquire = [&]() -> std::unique_ptr<sim::Gpu> {
    {
      const std::lock_guard<std::mutex> lock(workspaces_mu);
      if (!workspaces.empty()) {
        auto gpu = std::move(workspaces.back());
        workspaces.pop_back();
        return gpu;
      }
    }
    return std::make_unique<sim::Gpu>(config);
  };
  const auto release = [&](std::unique_ptr<sim::Gpu> gpu) {
    const std::lock_guard<std::mutex> lock(workspaces_mu);
    workspaces.push_back(std::move(gpu));
  };

  pool.parallel_for(reps, [&](std::size_t i) {
    auto gpu = acquire();
    const SampleResult s = run_sample(app, golden, spec, result.plan.rep_samples[i], *gpu);
    release(std::move(gpu));
    outcomes[i] = s.outcome;  // distinct slots per worker, no synchronization
    if (s.injected) injected.fetch_add(1, std::memory_order_relaxed);
  });

  for (const fi::Outcome o : outcomes) {
    switch (o) {
      case fi::Outcome::Masked: ++result.raw.masked; break;
      case fi::Outcome::SDC: ++result.raw.sdc; break;
      case fi::Outcome::Timeout: ++result.raw.timeout; break;
      case fi::Outcome::DUE: ++result.raw.due; break;
    }
  }
  result.injected = injected.load();
  result.estimate = estimate_pruned(classing, result.plan, outcomes);
  return result;
}

KernelCampaigns run_kernel_sweep(const workloads::App& app, const sim::GpuConfig& config,
                                 const GoldenRun& golden, const std::string& kernel,
                                 std::span<const Target> targets, std::uint64_t samples,
                                 std::uint64_t seed, ThreadPool& pool) {
  KernelCampaigns out;
  for (Target t : targets) {
    CampaignSpec spec;
    spec.kernel = kernel;
    spec.target = t;
    spec.samples = samples;
    spec.seed = seed;
    out.emplace(t, run_campaign(app, config, golden, spec, pool));
  }
  return out;
}

}  // namespace gras::campaign
