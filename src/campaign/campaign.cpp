#include "src/campaign/campaign.h"

#include <atomic>
#include <memory>
#include <stdexcept>

#include "src/common/rng.h"
#include "src/fi/injectors.h"

namespace gras::campaign {

std::vector<std::size_t> GoldenRun::launches_of(const std::string& kernel) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < launches.size(); ++i) {
    if (launches[i].kernel == kernel) out.push_back(i);
  }
  return out;
}

std::uint64_t GoldenRun::kernel_cycles(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.cycles();
  }
  return total;
}

std::uint64_t GoldenRun::kernel_gp_instrs(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.gp_end - l.gp_begin;
  }
  return total;
}

std::uint64_t GoldenRun::kernel_ld_instrs(const std::string& kernel) const {
  std::uint64_t total = 0;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.ld_end - l.ld_begin;
  }
  return total;
}

sim::SimStats GoldenRun::kernel_stats(const std::string& kernel) const {
  sim::SimStats total;
  for (const auto& l : launches) {
    if (l.kernel == kernel) total += l.stats;
  }
  return total;
}

std::vector<std::string> GoldenRun::kernel_names() const {
  std::vector<std::string> names;
  for (const auto& l : launches) {
    bool seen = false;
    for (const auto& n : names) {
      if (n == l.kernel) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(l.kernel);
  }
  return names;
}

GoldenRun run_golden(const workloads::App& app, const sim::GpuConfig& config) {
  sim::Gpu gpu(config);
  GoldenRun golden;
  golden.output = workloads::run_app(app, gpu);
  if (!golden.output.completed()) {
    throw std::runtime_error("fault-free run of '" + app.name() + "' failed: " +
                             std::string(sim::trap_name(golden.output.trap)));
  }
  golden.launches = gpu.launches();
  golden.total_cycles = gpu.cycle();
  std::uint64_t max_budget = 0;
  for (const auto& l : golden.launches) {
    const std::uint64_t b = l.cycles() * 10 + 2000;
    golden.budgets.push_back(b);
    max_budget = std::max(max_budget, b);
  }
  golden.overflow_budget = max_budget;
  return golden;
}

const char* target_name(Target t) {
  switch (t) {
    case Target::RF: return "RF";
    case Target::SMEM: return "SMEM";
    case Target::L1D: return "L1D";
    case Target::L1T: return "L1T";
    case Target::L2: return "L2";
    case Target::Svf: return "SVF";
    case Target::SvfLd: return "SVF-LD";
    case Target::SvfSrcOnce: return "SVF-SRC1";
    case Target::SvfSrcReuse: return "SVF-REUSE";
  }
  return "?";
}

bool is_microarch(Target t) {
  switch (t) {
    case Target::RF:
    case Target::SMEM:
    case Target::L1D:
    case Target::L1T:
    case Target::L2:
      return true;
    default:
      return false;
  }
}

double OutcomeCounts::pct(fi::Outcome o) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  std::uint64_t v = 0;
  switch (o) {
    case fi::Outcome::Masked: v = masked; break;
    case fi::Outcome::SDC: v = sdc; break;
    case fi::Outcome::Timeout: v = timeout; break;
    case fi::Outcome::DUE: v = due; break;
  }
  return static_cast<double>(v) / static_cast<double>(n);
}

double OutcomeCounts::failure_rate() const {
  return pct(fi::Outcome::SDC) + pct(fi::Outcome::Timeout) + pct(fi::Outcome::DUE);
}

OutcomeCounts& OutcomeCounts::operator+=(const OutcomeCounts& o) {
  masked += o.masked;
  sdc += o.sdc;
  timeout += o.timeout;
  due += o.due;
  return *this;
}

ProportionCi CampaignResult::fr_ci(double confidence) const {
  return wald_interval(counts.sdc + counts.timeout + counts.due, counts.total(),
                       confidence);
}

namespace {

fi::Structure to_structure(Target t) {
  switch (t) {
    case Target::RF: return fi::Structure::RF;
    case Target::SMEM: return fi::Structure::SMEM;
    case Target::L1D: return fi::Structure::L1D;
    case Target::L1T: return fi::Structure::L1T;
    default: return fi::Structure::L2;
  }
}

fi::SvfMode to_mode(Target t) {
  switch (t) {
    case Target::SvfLd: return fi::SvfMode::DstLoad;
    case Target::SvfSrcOnce: return fi::SvfMode::SrcOnce;
    case Target::SvfSrcReuse: return fi::SvfMode::SrcReuse;
    default: return fi::SvfMode::Dst;
  }
}

/// Builds the injector for one sample, or nullptr when the kernel has no
/// sampling space for this target (no cycles / no instructions).
std::unique_ptr<sim::FaultHook> make_hook(const GoldenRun& golden,
                                          const CampaignSpec& spec, Rng& rng) {
  const auto indices = golden.launches_of(spec.kernel);
  if (indices.empty()) return nullptr;

  if (is_microarch(spec.target)) {
    // Pick a launch weighted by its cycle span, then a cycle within it.
    std::uint64_t total = 0;
    for (std::size_t i : indices) total += golden.launches[i].cycles();
    if (total == 0) return nullptr;
    std::uint64_t r = rng.below(total);
    for (std::size_t i : indices) {
      const auto& l = golden.launches[i];
      if (r < l.cycles()) {
        return std::make_unique<fi::MicroarchInjector>(
            to_structure(spec.target), l.start_cycle + 1 + r, l.end_cycle, rng);
      }
      r -= l.cycles();
    }
    return nullptr;
  }

  // Software level: pick a dynamic thread instruction of the kernel,
  // weighted across its launches, in the global counting space.
  const bool loads = spec.target == Target::SvfLd;
  std::uint64_t total = 0;
  for (std::size_t i : indices) {
    const auto& l = golden.launches[i];
    total += loads ? (l.ld_end - l.ld_begin) : (l.gp_end - l.gp_begin);
  }
  if (total == 0) return nullptr;
  std::uint64_t r = rng.below(total);
  for (std::size_t i : indices) {
    const auto& l = golden.launches[i];
    const std::uint64_t span = loads ? (l.ld_end - l.ld_begin) : (l.gp_end - l.gp_begin);
    if (r < span) {
      const std::uint64_t global_index = (loads ? l.ld_begin : l.gp_begin) + r;
      return std::make_unique<fi::SoftwareInjector>(to_mode(spec.target), global_index,
                                                    rng);
    }
    r -= span;
  }
  return nullptr;
}

}  // namespace

SampleResult run_sample(const workloads::App& app, const sim::GpuConfig& config,
                        const GoldenRun& golden, const CampaignSpec& spec,
                        std::uint64_t sample_index) {
  Rng rng = Rng::for_sample(spec.seed ^ (static_cast<std::uint64_t>(spec.target) << 40),
                            sample_index);
  auto hook = make_hook(golden, spec, rng);

  sim::Gpu gpu(config);
  gpu.set_launch_budgets(golden.budgets, golden.overflow_budget);
  if (hook) gpu.set_fault_hook(hook.get());
  const workloads::RunOutput out = workloads::run_app(app, gpu);

  SampleResult result;
  result.cycles = gpu.cycle();
  result.injected = false;
  if (hook) {
    if (auto* m = dynamic_cast<fi::MicroarchInjector*>(hook.get())) {
      result.injected = m->injected();
    } else if (auto* s = dynamic_cast<fi::SoftwareInjector*>(hook.get())) {
      result.injected = s->injected();
    }
  }

  if (out.trap == sim::TrapKind::Watchdog) {
    result.outcome = fi::Outcome::Timeout;
  } else if (out.trap != sim::TrapKind::None) {
    result.outcome = fi::Outcome::DUE;
  } else if (out.outputs != golden.output.outputs) {
    result.outcome = fi::Outcome::SDC;
  } else {
    result.outcome = fi::Outcome::Masked;
  }
  return result;
}

CampaignResult run_campaign(const workloads::App& app, const sim::GpuConfig& config,
                            const GoldenRun& golden, const CampaignSpec& spec,
                            ThreadPool& pool) {
  CampaignResult result;
  result.spec = spec;

  std::atomic<std::uint64_t> masked{0}, sdc{0}, timeout{0}, due{0};
  std::atomic<std::uint64_t> control{0}, injected{0};

  pool.parallel_for(spec.samples, [&](std::size_t i) {
    const SampleResult s = run_sample(app, config, golden, spec, i);
    switch (s.outcome) {
      case fi::Outcome::Masked:
        masked.fetch_add(1, std::memory_order_relaxed);
        if (s.cycles != golden.total_cycles) {
          control.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case fi::Outcome::SDC: sdc.fetch_add(1, std::memory_order_relaxed); break;
      case fi::Outcome::Timeout: timeout.fetch_add(1, std::memory_order_relaxed); break;
      case fi::Outcome::DUE: due.fetch_add(1, std::memory_order_relaxed); break;
    }
    if (s.injected) injected.fetch_add(1, std::memory_order_relaxed);
  });

  result.counts.masked = masked.load();
  result.counts.sdc = sdc.load();
  result.counts.timeout = timeout.load();
  result.counts.due = due.load();
  result.control_path_masked = control.load();
  result.injected = injected.load();
  return result;
}

KernelCampaigns run_kernel_sweep(const workloads::App& app, const sim::GpuConfig& config,
                                 const GoldenRun& golden, const std::string& kernel,
                                 std::span<const Target> targets, std::uint64_t samples,
                                 std::uint64_t seed, ThreadPool& pool) {
  KernelCampaigns out;
  for (Target t : targets) {
    CampaignSpec spec;
    spec.kernel = kernel;
    spec.target = t;
    spec.samples = samples;
    spec.seed = seed;
    out.emplace(t, run_campaign(app, config, golden, spec, pool));
  }
  return out;
}

}  // namespace gras::campaign
