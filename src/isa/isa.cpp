#include "src/isa/isa.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gras::isa {

Operand Operand::fimm(float f) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof bits);
  return {OperandKind::Imm, bits};
}

bool Instr::writes_gpr() const {
  switch (op) {
    case Op::S2R:
    case Op::MOV:
    case Op::IADD:
    case Op::ISUB:
    case Op::IMUL:
    case Op::IMAD:
    case Op::ISCADD:
    case Op::SHL:
    case Op::SHR:
    case Op::ASR:
    case Op::AND:
    case Op::OR:
    case Op::XOR:
    case Op::NOT:
    case Op::IMIN:
    case Op::IMAX:
    case Op::SEL:
    case Op::FADD:
    case Op::FSUB:
    case Op::FMUL:
    case Op::FFMA:
    case Op::FMIN:
    case Op::FMAX:
    case Op::F2I:
    case Op::I2F:
    case Op::MUFU:
    case Op::LDG:
    case Op::LDT:
    case Op::LDS:
    case Op::ATOM_ADD:
      return dst != kRegRZ;
    default:
      return false;
  }
}

bool Instr::is_load() const { return op == Op::LDG || op == Op::LDT || op == Op::LDS; }
bool Instr::is_store() const { return op == Op::STG || op == Op::STS; }
bool Instr::is_shared_mem() const { return op == Op::LDS || op == Op::STS; }

void Kernel::recount_registers() {
  std::uint8_t max_reg = 0;
  auto see = [&max_reg](std::uint8_t r) {
    if (r != kRegRZ) max_reg = std::max(max_reg, r);
  };
  auto see_op = [&](const Operand& o) {
    if (o.kind == OperandKind::Gpr) see(static_cast<std::uint8_t>(o.value));
  };
  for (const Instr& ins : code) {
    see(ins.dst);
    see_op(ins.a);
    see_op(ins.b);
    see_op(ins.c);
  }
  num_regs = static_cast<std::uint8_t>(max_reg + 1);
}

std::uint32_t Kernel::param_offset(const std::string& pname) const {
  for (const ParamDecl& p : params) {
    if (p.name == pname) return p.byte_offset;
  }
  throw std::out_of_range("kernel '" + name + "' has no parameter '" + pname + "'");
}

const char* op_name(Op op) {
  switch (op) {
    case Op::S2R: return "S2R";
    case Op::MOV: return "MOV";
    case Op::IADD: return "IADD";
    case Op::ISUB: return "ISUB";
    case Op::IMUL: return "IMUL";
    case Op::IMAD: return "IMAD";
    case Op::ISCADD: return "ISCADD";
    case Op::SHL: return "SHL";
    case Op::SHR: return "SHR";
    case Op::ASR: return "ASR";
    case Op::AND: return "AND";
    case Op::OR: return "OR";
    case Op::XOR: return "XOR";
    case Op::NOT: return "NOT";
    case Op::IMIN: return "IMIN";
    case Op::IMAX: return "IMAX";
    case Op::ISETP: return "ISETP";
    case Op::SEL: return "SEL";
    case Op::FADD: return "FADD";
    case Op::FSUB: return "FSUB";
    case Op::FMUL: return "FMUL";
    case Op::FFMA: return "FFMA";
    case Op::FMIN: return "FMIN";
    case Op::FMAX: return "FMAX";
    case Op::FSETP: return "FSETP";
    case Op::F2I: return "F2I";
    case Op::I2F: return "I2F";
    case Op::MUFU: return "MUFU";
    case Op::LDG: return "LDG";
    case Op::LDT: return "LDT";
    case Op::STG: return "STG";
    case Op::LDS: return "LDS";
    case Op::STS: return "STS";
    case Op::BRA: return "BRA";
    case Op::SSY: return "SSY";
    case Op::SYNC: return "SYNC";
    case Op::BAR: return "BAR";
    case Op::EXIT: return "EXIT";
    case Op::NOP: return "NOP";
    case Op::ATOM_ADD: return "ATOM.ADD";
    case Op::RED_ADD: return "RED.ADD";
  }
  return "?";
}

const char* cmp_name(Cmp cmp) {
  switch (cmp) {
    case Cmp::EQ: return "EQ";
    case Cmp::NE: return "NE";
    case Cmp::LT: return "LT";
    case Cmp::LE: return "LE";
    case Cmp::GT: return "GT";
    case Cmp::GE: return "GE";
  }
  return "?";
}

const char* mufu_name(Mufu f) {
  switch (f) {
    case Mufu::RCP: return "RCP";
    case Mufu::SQRT: return "SQRT";
    case Mufu::RSQRT: return "RSQRT";
    case Mufu::EX2: return "EX2";
    case Mufu::LG2: return "LG2";
    case Mufu::EXP: return "EXP";
    case Mufu::LOG: return "LOG";
    case Mufu::SIN: return "SIN";
    case Mufu::COS: return "COS";
  }
  return "?";
}

const char* sreg_name(SpecialReg sr) {
  switch (sr) {
    case SpecialReg::TID_X: return "SR_TID.X";
    case SpecialReg::TID_Y: return "SR_TID.Y";
    case SpecialReg::CTAID_X: return "SR_CTAID.X";
    case SpecialReg::CTAID_Y: return "SR_CTAID.Y";
    case SpecialReg::CTAID_Z: return "SR_CTAID.Z";
    case SpecialReg::NTID_X: return "SR_NTID.X";
    case SpecialReg::NTID_Y: return "SR_NTID.Y";
    case SpecialReg::NCTAID_X: return "SR_NCTAID.X";
    case SpecialReg::NCTAID_Y: return "SR_NCTAID.Y";
    case SpecialReg::NCTAID_Z: return "SR_NCTAID.Z";
    case SpecialReg::LANEID: return "SR_LANEID";
    case SpecialReg::WARPID: return "SR_WARPID";
  }
  return "?";
}

}  // namespace gras::isa
