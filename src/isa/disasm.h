// Disassembler: renders instructions and kernels back to assembler syntax.
// Used for debugging, the register-reuse analyzer listing (paper Fig. 12),
// and assembler round-trip tests.
#pragma once

#include <string>

#include "src/isa/isa.h"

namespace gras::isa {

/// One instruction, e.g. "@!P0 IMAD R4, R0, c[0x8], R3".
std::string disassemble(const Instr& ins, const Kernel* kernel = nullptr);

/// Whole kernel with instruction indices, one line per instruction.
std::string disassemble(const Kernel& kernel);

}  // namespace gras::isa
