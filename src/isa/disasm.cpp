#include "src/isa/disasm.h"

#include <cstdio>
#include <sstream>

namespace gras::isa {
namespace {

std::string reg(std::uint8_t r) {
  if (r == kRegRZ) return "RZ";
  return "R" + std::to_string(r);
}

std::string pred(std::uint8_t p) {
  if (p == kPredPT) return "PT";
  return "P" + std::to_string(p);
}

std::string operand(const Operand& o, const Kernel* kernel) {
  switch (o.kind) {
    case OperandKind::None:
      return "<none>";
    case OperandKind::Gpr:
      return reg(static_cast<std::uint8_t>(o.value));
    case OperandKind::Imm: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%x", o.value);
      return buf;
    }
    case OperandKind::Param: {
      if (kernel != nullptr) {
        for (const ParamDecl& p : kernel->params) {
          if (p.byte_offset == o.value) return "c[" + p.name + "]";
        }
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "c[0x%x]", o.value);
      return buf;
    }
  }
  return "?";
}

std::string mem_ref(const Instr& ins, const Kernel* kernel) {
  std::string s = "[" + operand(ins.a, kernel);
  if (ins.mem_offset != 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+d", ins.mem_offset);
    s += buf;
  }
  return s + "]";
}

}  // namespace

std::string disassemble(const Instr& ins, const Kernel* kernel) {
  std::ostringstream out;
  if (ins.guard != kPredPT || ins.guard_neg) {
    out << '@' << (ins.guard_neg ? "!" : "") << pred(ins.guard) << ' ';
  }
  switch (ins.op) {
    case Op::S2R:
      out << "S2R " << reg(ins.dst) << ", "
          << sreg_name(static_cast<SpecialReg>(ins.b.value));
      break;
    case Op::MOV:
    case Op::NOT:
    case Op::F2I:
    case Op::I2F:
      out << op_name(ins.op) << ' ' << reg(ins.dst) << ", " << operand(ins.a, kernel);
      break;
    case Op::MUFU:
      out << "MUFU." << mufu_name(ins.mufu) << ' ' << reg(ins.dst) << ", "
          << operand(ins.a, kernel);
      break;
    case Op::IADD:
    case Op::ISUB:
    case Op::IMUL:
    case Op::SHL:
    case Op::SHR:
    case Op::ASR:
    case Op::AND:
    case Op::OR:
    case Op::XOR:
    case Op::IMIN:
    case Op::IMAX:
    case Op::FADD:
    case Op::FSUB:
    case Op::FMUL:
    case Op::FMIN:
    case Op::FMAX:
      out << op_name(ins.op) << ' ' << reg(ins.dst) << ", " << operand(ins.a, kernel)
          << ", " << operand(ins.b, kernel);
      break;
    case Op::IMAD:
    case Op::FFMA:
      out << op_name(ins.op) << ' ' << reg(ins.dst) << ", " << operand(ins.a, kernel)
          << ", " << operand(ins.b, kernel) << ", " << operand(ins.c, kernel);
      break;
    case Op::ISCADD:
      out << "ISCADD " << reg(ins.dst) << ", " << operand(ins.a, kernel) << ", "
          << operand(ins.b, kernel) << ", " << static_cast<int>(ins.shift);
      break;
    case Op::ISETP:
    case Op::FSETP:
      out << op_name(ins.op) << '.' << cmp_name(ins.cmp) << ' ' << pred(ins.pdst)
          << ", " << operand(ins.a, kernel) << ", " << operand(ins.b, kernel);
      break;
    case Op::SEL:
      out << "SEL " << reg(ins.dst) << ", " << operand(ins.a, kernel) << ", "
          << operand(ins.b, kernel) << ", " << (ins.psrc_neg ? "!" : "")
          << pred(ins.psrc);
      break;
    case Op::LDG:
    case Op::LDT:
    case Op::LDS:
      out << op_name(ins.op) << ' ' << reg(ins.dst) << ", " << mem_ref(ins, kernel);
      break;
    case Op::STG:
    case Op::STS:
      out << op_name(ins.op) << ' ' << mem_ref(ins, kernel) << ", "
          << operand(ins.b, kernel);
      break;
    case Op::ATOM_ADD:
      out << "ATOM.ADD " << reg(ins.dst) << ", " << mem_ref(ins, kernel) << ", "
          << operand(ins.b, kernel);
      break;
    case Op::RED_ADD:
      out << "RED.ADD " << mem_ref(ins, kernel) << ", " << operand(ins.b, kernel);
      break;
    case Op::BRA:
    case Op::SSY:
      out << op_name(ins.op) << " #" << ins.target;
      break;
    case Op::SYNC:
    case Op::BAR:
    case Op::EXIT:
    case Op::NOP:
      out << op_name(ins.op);
      break;
  }
  return out.str();
}

std::string disassemble(const Kernel& kernel) {
  std::ostringstream out;
  out << ".kernel " << kernel.name << "  (regs=" << static_cast<int>(kernel.num_regs)
      << ", smem=" << kernel.smem_bytes << ")\n";
  for (std::size_t i = 0; i < kernel.code.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%4zu: ", i);
    out << buf << disassemble(kernel.code[i], &kernel) << '\n';
  }
  return out.str();
}

}  // namespace gras::isa
