// The gras mini-ISA: a SASS-flavoured SIMT instruction set.
//
// Design notes
// ------------
// * 32-bit general-purpose registers R0..R62 plus RZ (always reads zero,
//   writes discarded), exactly like SASS.
// * 1-bit predicate registers P0..P6 plus PT (always true). Any instruction
//   can carry a guard predicate @Pn / @!Pn.
// * Device pointers are 32 bits (the simulated GPU has < 4 GiB of global
//   memory), so a single GPR holds an address. Real Volta SASS pairs two
//   registers; collapsing the pair changes nothing about fault behaviour in
//   the structures the paper studies and halves kernel-authoring noise.
// * Kernel parameters live in constant bank 0 and appear as `c[offset]`
//   source operands, mirroring SASS `c[0x0][0x160]` operands.
// * SIMT control flow uses the pre-Volta SSY/SYNC discipline: SSY pushes a
//   reconvergence point, a divergent predicated BRA splits the warp, each
//   path ends in SYNC, and the warp reconverges at the SSY target.
//
// Faults are never injected into instruction encodings: the paper excludes
// the instruction cache / opcode bits from both AVF and SVF for fairness
// (§II-B), so instructions here are plain structs with no binary encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gras::isa {

/// Opcode of the mini-ISA. Operand shapes are documented per group.
enum class Op : std::uint8_t {
  // --- Special-register / moves ---
  S2R,     ///< Rd = special register (src0 = SpecialReg as imm)
  MOV,     ///< Rd = src0 (reg/imm/param)
  // --- Integer ALU (Rd, Ra, src_b[, src_c]) ---
  IADD,    ///< Rd = Ra + b
  ISUB,    ///< Rd = Ra - b
  IMUL,    ///< Rd = low32(Ra * b), signed
  IMAD,    ///< Rd = Ra * b + c
  ISCADD,  ///< Rd = (Ra << shift) + b   (shift = imm field `shift`)
  SHL,     ///< Rd = Ra << (b & 31)
  SHR,     ///< Rd = Ra >> (b & 31), logical
  ASR,     ///< Rd = Ra >> (b & 31), arithmetic
  AND,     ///< Rd = Ra & b
  OR,      ///< Rd = Ra | b
  XOR,     ///< Rd = Ra ^ b
  NOT,     ///< Rd = ~src0
  IMIN,    ///< Rd = min(Ra, b), signed
  IMAX,    ///< Rd = max(Ra, b), signed
  // --- Integer compare / select ---
  ISETP,   ///< Pd = Ra <cmp> b  (signed compare; cmp in `cmp` field)
  SEL,     ///< Rd = Pguard2 ? Ra : b   (predicate in `psrc` field)
  // --- Float ALU (IEEE-754 binary32 held in GPRs) ---
  FADD, FSUB, FMUL,
  FFMA,    ///< Rd = Ra * b + c (fused on host: computed in double, rounded)
  FMIN, FMAX,
  FSETP,   ///< Pd = Ra <cmp> b (float compare)
  F2I,     ///< Rd = (int32) truncate(float Ra)
  I2F,     ///< Rd = (float) (int32) Ra
  MUFU,    ///< Rd = unary function of Ra (func in `mufu` field)
  // --- Memory ---
  LDG,     ///< Rd = global[Ra + imm]    (via L1D + L2)
  LDT,     ///< Rd = global[Ra + imm]    (read-only/texture path: L1T + L2)
  STG,     ///< global[Ra + imm] = Rb
  LDS,     ///< Rd = shared[Ra + imm]
  STS,     ///< shared[Ra + imm] = Rb
  // --- Control flow / sync ---
  BRA,     ///< branch to `target` (predicated -> possibly divergent)
  SSY,     ///< push reconvergence point `target`
  SYNC,    ///< end of a divergent path; reconverge at the SSY target
  BAR,     ///< CTA-wide barrier
  EXIT,    ///< thread terminates
  NOP,
  // --- Atomics (global memory, via L2) ---
  ATOM_ADD,  ///< Rd = old = global[Ra+imm]; global[Ra+imm] = old + Rb
  RED_ADD,   ///< global[Ra+imm] += Rb (no return value)
};

/// Comparison operators for ISETP/FSETP.
enum class Cmp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/// Unary transcendental functions for MUFU (SFU path on real GPUs).
enum class Mufu : std::uint8_t { RCP, SQRT, RSQRT, EX2, LG2, EXP, LOG, SIN, COS };

/// Special registers readable with S2R.
enum class SpecialReg : std::uint8_t {
  TID_X, TID_Y,       ///< thread index within CTA
  CTAID_X, CTAID_Y, CTAID_Z,  ///< CTA index within grid
  NTID_X, NTID_Y,     ///< CTA dimensions
  NCTAID_X, NCTAID_Y, NCTAID_Z,  ///< grid dimensions
  LANEID,             ///< lane within warp
  WARPID,             ///< warp index within CTA
};

/// Register name constants.
inline constexpr std::uint8_t kNumGpr = 64;     ///< R0..R62 + RZ
inline constexpr std::uint8_t kRegRZ = 63;      ///< hardwired zero
inline constexpr std::uint8_t kNumPred = 8;     ///< P0..P6 + PT
inline constexpr std::uint8_t kPredPT = 7;      ///< hardwired true

/// Operand kinds for ALU sources.
enum class OperandKind : std::uint8_t {
  None,
  Gpr,    ///< value = register index
  Imm,    ///< value = 32-bit immediate (bit pattern; floats use bit casts)
  Param,  ///< value = byte offset into constant bank 0 (kernel params)
};

/// A source operand.
struct Operand {
  OperandKind kind = OperandKind::None;
  std::uint32_t value = 0;

  static Operand gpr(std::uint8_t r) { return {OperandKind::Gpr, r}; }
  static Operand imm(std::uint32_t v) { return {OperandKind::Imm, v}; }
  static Operand fimm(float f);
  static Operand param(std::uint32_t byte_offset) { return {OperandKind::Param, byte_offset}; }
  bool is_gpr() const { return kind == OperandKind::Gpr; }
};

/// One instruction. Fixed-shape struct: unused fields are zero.
struct Instr {
  Op op = Op::NOP;

  // Guard predicate: executes only in lanes where (pred(guard) == !guard_neg).
  std::uint8_t guard = kPredPT;
  bool guard_neg = false;

  std::uint8_t dst = kRegRZ;      ///< GPR destination (or kRegRZ)
  std::uint8_t pdst = kPredPT;    ///< predicate destination (ISETP/FSETP)
  Operand a;                      ///< first source (Ra; base register for memory)
  Operand b;                      ///< second source
  Operand c;                      ///< third source (IMAD/FFMA)
  std::uint8_t psrc = kPredPT;    ///< predicate source (SEL)
  bool psrc_neg = false;
  Cmp cmp = Cmp::EQ;
  Mufu mufu = Mufu::RCP;
  std::uint8_t shift = 0;         ///< ISCADD shift amount
  std::int32_t mem_offset = 0;    ///< immediate byte offset for memory ops
  std::uint32_t target = 0;       ///< branch/SSY target (instruction index)

  /// True if this op writes a general-purpose destination register.
  /// These are the instructions NVBitFI-style software injection targets
  /// (its "general purpose" instruction group).
  bool writes_gpr() const;
  /// True for LDG/LDT/LDS (the SVF-LD injection group).
  bool is_load() const;
  /// True for STG/STS.
  bool is_store() const;
  /// True for LDS/STS (the "SMEM instructions" utilization metric).
  bool is_shared_mem() const;
};

/// Parameter descriptor: kernels declare their parameter layout so the TMR
/// transform knows which params are device pointers it must re-base.
struct ParamDecl {
  std::string name;
  bool is_pointer = false;         ///< device buffer address
  std::uint32_t byte_offset = 0;   ///< offset in constant bank 0 (4-byte slots)
};

/// A kernel: code plus static resource requirements.
struct Kernel {
  std::string name;
  std::vector<Instr> code;
  std::vector<ParamDecl> params;
  std::uint32_t smem_bytes = 0;    ///< static shared memory per CTA
  std::uint8_t num_regs = 0;       ///< registers per thread (max used + 1)

  /// Recomputes num_regs from the code (call after editing code).
  void recount_registers();
  /// Returns the byte offset of a named parameter; throws if unknown.
  std::uint32_t param_offset(const std::string& pname) const;
};

/// Returns the mnemonic for an opcode ("IMAD", ...).
const char* op_name(Op op);
const char* cmp_name(Cmp cmp);
const char* mufu_name(Mufu f);
const char* sreg_name(SpecialReg sr);

}  // namespace gras::isa
